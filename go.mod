module qswitch

go 1.24
