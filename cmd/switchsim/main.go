// Command switchsim runs a single switch simulation and prints its
// metrics. Traffic comes from a named generator or a trace file.
//
// Examples:
//
//	switchsim -model cioq -policy gm -n 8 -load 0.95 -slots 1000
//	switchsim -model crossbar -policy cpg -n 16 -traffic hotspot -values zipf
//	switchsim -model cioq -policy pg -trace burst.qsw
//	switchsim -model oq -n 8 -load 1.2 -ub      # ideal OQ + offline bound
package main

import (
	"flag"
	"fmt"
	"os"

	"qswitch"
	"qswitch/internal/obs/wire"
	"qswitch/internal/offline"
	"qswitch/internal/packet"
)

func main() {
	var (
		model   = flag.String("model", "cioq", "switch model: cioq, crossbar or oq")
		policy  = flag.String("policy", "gm", "scheduling policy name")
		n       = flag.Int("n", 8, "input ports")
		m       = flag.Int("m", 0, "output ports (defaults to -n)")
		bin     = flag.Int("bin", 4, "input queue capacity B(Q_ij)")
		bout    = flag.Int("bout", 4, "output queue capacity B(Q_j)")
		bx      = flag.Int("bx", 2, "crosspoint queue capacity B(C_ij)")
		speedup = flag.Int("speedup", 1, "scheduling cycles per slot")
		slots   = flag.Int("slots", 1000, "arrival slots to generate")
		horizon = flag.Int("horizon", 0, "simulation horizon (0 = drain fully)")
		traffic = flag.String("traffic", "uniform", "traffic: uniform, bursty, hotspot, diagonal, permutation, poissonburst, diurnal, heavytail, burstblock, crossdrain, flowmix")
		values  = flag.String("values", "unit", "values: unit, two, uniform, zipf, geometric")
		load    = flag.Float64("load", 0.9, "offered load per input per slot")
		dense   = flag.Bool("dense", false, "opt out of the event-driven engine and simulate every slot (bit-identical metrics, much slower on sparse traces)")
		seed    = flag.Int64("seed", 1, "RNG seed")
		trace   = flag.String("trace", "", "binary trace file to replay instead of generating")
		stream  = flag.Bool("stream", false, "consume arrivals through the streaming engines: bounded memory on huge traces/horizons, bit-identical metrics")
		ub      = flag.Bool("ub", false, "also compute the offline upper bound")
		lat     = flag.Bool("latency", false, "record and print latency statistics")
		compare = flag.Bool("compare", false, "run ALL policies of the model on the same workload and tabulate")
	)
	// -trace already means "replay this trace file" here, so the runtime
	// execution-trace profile flag is spelled -exectrace.
	obsCLI := wire.Flags(flag.CommandLine, true, "exectrace")
	flag.Parse()
	sess, err := obsCLI.Start()
	if err != nil {
		fatal("%v", err)
	}
	defer sess.Close()
	if *m == 0 {
		*m = *n
	}
	cfg := qswitch.Config{
		Inputs: *n, Outputs: *m,
		InputBuf: *bin, OutputBuf: *bout, CrossBuf: *bx,
		Speedup: *speedup, Slots: *horizon,
		RecordLatency: *lat,
		Dense:         *dense,
	}

	if *stream {
		if *compare {
			fatal("-compare needs the materialized sequence; drop -stream")
		}
		if *ub {
			fatal("-ub needs the materialized sequence; drop -stream")
		}
		cfg.StreamMetrics = *lat
		var src qswitch.ArrivalStream
		if *trace != "" {
			ts, err := qswitch.OpenTraceStream(*trace)
			if err != nil {
				fatal("%v", err)
			}
			defer ts.Close()
			if ts.Inputs != cfg.Inputs || ts.Outputs != cfg.Outputs {
				fmt.Fprintf(os.Stderr, "switchsim: note: trace geometry %dx%d overrides flags\n",
					ts.Inputs, ts.Outputs)
				cfg.Inputs, cfg.Outputs = ts.Inputs, ts.Outputs
			}
			src = ts
		} else {
			gen, err := buildGenerator(*traffic, *values, *load)
			if err != nil {
				fatal("%v", err)
			}
			src = qswitch.StreamTraffic(gen, cfg, *slots, *seed)
		}
		var res *qswitch.Result
		var err error
		switch *model {
		case "cioq":
			res, err = qswitch.SimulateCIOQStream(cfg, *policy, src)
		case "crossbar":
			res, err = qswitch.SimulateCrossbarStream(cfg, *policy, src)
		default:
			fatal("-stream supports models cioq and crossbar (got %q)", *model)
		}
		if err != nil {
			fatal("%v", err)
		}
		printResult(*model, cfg, res, *slots, *lat)
		return
	}

	var seq qswitch.Sequence
	if *trace != "" {
		tr, err := packet.LoadTrace(*trace)
		if err != nil {
			fatal("%v", err)
		}
		if tr.Inputs != cfg.Inputs || tr.Outputs != cfg.Outputs {
			fmt.Fprintf(os.Stderr, "switchsim: note: trace geometry %dx%d overrides flags\n",
				tr.Inputs, tr.Outputs)
			cfg.Inputs, cfg.Outputs = tr.Inputs, tr.Outputs
		}
		seq = tr.Packets
	} else {
		gen, err := buildGenerator(*traffic, *values, *load)
		if err != nil {
			fatal("%v", err)
		}
		seq = qswitch.GenerateTraffic(gen, cfg, *slots, *seed)
	}

	if *compare {
		comparePolicies(*model, cfg, seq, *ub)
		return
	}

	var res *qswitch.Result
	switch *model {
	case "cioq":
		res, err = qswitch.SimulateCIOQ(cfg, *policy, seq)
	case "crossbar":
		res, err = qswitch.SimulateCrossbar(cfg, *policy, seq)
	case "oq":
		res, err = qswitch.SimulateOQ(cfg, seq)
	default:
		fatal("unknown model %q (cioq, crossbar, oq)", *model)
	}
	if err != nil {
		fatal("%v", err)
	}

	printResult(*model, cfg, res, *slots, *lat)
	if *ub {
		bound, err := offline.OQUpperBound(cfg, seq, *model == "crossbar")
		if err != nil {
			fatal("upper bound: %v", err)
		}
		fmt.Printf("offlineUB: %d (policy achieved %.1f%% of the bound)\n",
			bound, 100*float64(res.M.Benefit)/float64(bound))
	}
}

// printResult prints the standard single-run metrics block.
func printResult(model string, cfg qswitch.Config, res *qswitch.Result, slots int, lat bool) {
	fmt.Printf("model    : %s (%dx%d, Bin=%d Bout=%d Bx=%d, speedup %d)\n",
		model, cfg.Inputs, cfg.Outputs, cfg.InputBuf, cfg.OutputBuf, cfg.CrossBuf, cfg.Speedup)
	fmt.Printf("policy   : %s\n", res.Policy)
	fmt.Printf("slots    : %d (arrivals over %d)\n", res.Slots, slots)
	fmt.Printf("arrived  : %d packets, value %d\n", res.M.Arrived, res.M.ArrivedValue)
	fmt.Printf("accepted : %d   rejected: %d\n", res.M.Accepted, res.M.Rejected)
	fmt.Printf("preempted: input=%d cross=%d output=%d\n",
		res.M.PreemptedInput, res.M.PreemptedCross, res.M.PreemptedOutput)
	fmt.Printf("sent     : %d packets (%.1f%% loss)\n", res.M.Sent, 100*res.M.LossRate())
	fmt.Printf("benefit  : %d (%.3f value/slot, %.3f pkts/slot)\n",
		res.M.Benefit, res.GoodputValue(), res.Throughput())
	fmt.Printf("occupancy: input %.2f, output %.2f (mean pkts)\n",
		res.M.MeanInputOccupancy(), res.M.MeanOutputOccupancy())
	if lat {
		fmt.Printf("latency  : mean %.2f slots, max %d\n", res.M.MeanLatency(), res.M.LatencyMax)
	}
}

// comparePolicies runs every registered policy of the model on the same
// workload and prints a leaderboard.
func comparePolicies(model string, cfg qswitch.Config, seq qswitch.Sequence, withUB bool) {
	var names []string
	run := func(name string) (*qswitch.Result, error) { return qswitch.SimulateCIOQ(cfg, name, seq) }
	switch model {
	case "cioq":
		names = qswitch.CIOQPolicyNames()
	case "crossbar":
		names = qswitch.CrossbarPolicyNames()
		run = func(name string) (*qswitch.Result, error) { return qswitch.SimulateCrossbar(cfg, name, seq) }
	default:
		fatal("-compare needs model cioq or crossbar")
	}
	var bound int64 = -1
	if withUB {
		b, err := offline.CombinedUpperBound(cfg, seq, model == "crossbar")
		if err != nil {
			fatal("upper bound: %v", err)
		}
		bound = b
	}
	fmt.Printf("%-16s %12s %10s %10s %10s\n", "policy", "benefit", "sent", "loss%", "of-UB%")
	for _, name := range names {
		res, err := run(name)
		if err != nil {
			fatal("%s: %v", name, err)
		}
		ubCell := "-"
		if bound > 0 {
			ubCell = fmt.Sprintf("%9.1f%%", 100*float64(res.M.Benefit)/float64(bound))
		}
		fmt.Printf("%-16s %12d %10d %9.1f%% %10s\n",
			name, res.M.Benefit, res.M.Sent, 100*res.M.LossRate(), ubCell)
	}
	if bound > 0 {
		fmt.Printf("\noffline upper bound: %d\n", bound)
	}
}

// buildGenerator resolves the shared traffic/value names; the mapping
// lives in internal/packet so switchsim and tracegen always agree.
func buildGenerator(traffic, values string, load float64) (qswitch.Generator, error) {
	return packet.GeneratorByName(traffic, values, load)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "switchsim: "+format+"\n", args...)
	os.Exit(1)
}
