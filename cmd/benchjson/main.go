// Command benchjson converts `go test -bench` output into a stable JSON
// document, so benchmark baselines can be committed (BENCH_*.json) and
// compared across PRs without parsing the free-form text format.
//
// Usage:
//
//	go test -bench 'CIOQ|Crossbar|E5' -benchmem -benchtime 3x | benchjson -label baseline > BENCH_1.json
//	go test -bench Fleet | benchjson -geomean BENCH_9.json > BENCH_9_post.json
//
// Every `Benchmark*` result line is parsed into the iteration count, the
// primary ns/op figure and any additional metrics (B/op, allocs/op and
// custom b.ReportMetric units such as ns/slot).
//
// With -geomean FILE, the parsed results are additionally compared
// against the baseline report in FILE: for every metric present on both
// sides of a name-matched benchmark pair, one summary line per metric is
// printed to stderr with the geometric mean of the baseline/current
// ratios — so for cost-like metrics (ns/op, ns/slot, B/op) values above
// 1.0 mean the current run is faster/leaner than the baseline. The JSON
// on stdout is unaffected.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value, e.g. "ns/op", "ns/slot", "allocs/op".
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the emitted document.
type Report struct {
	Label      string      `json:"label,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	label := flag.String("label", "", "free-form label stored in the output (e.g. baseline, post-bitset)")
	geomean := flag.String("geomean", "", "baseline BENCH_*.json to compare against: print per-metric geomean speedup lines to stderr")
	flag.Parse()

	rep := Report{Label: *label}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *geomean != "" {
		raw, err := os.ReadFile(*geomean)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: -geomean: %v\n", err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: -geomean %s: %v\n", *geomean, err)
			os.Exit(1)
		}
		lines := geomeans(base.Benchmarks, rep.Benchmarks)
		if len(lines) == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: -geomean %s: no benchmark pairs matched\n", *geomean)
			os.Exit(1)
		}
		for _, l := range lines {
			fmt.Fprintf(os.Stderr, "geomean %s: %.2fx vs baseline (%d pairs)\n", l.Unit, l.Speedup, l.Pairs)
		}
	}
}

// geoLine is one per-metric geomean summary: the geometric mean of
// baseline/current ratios over all name-matched pairs carrying the
// metric, so > 1 means the current run improved on a cost-like metric.
type geoLine struct {
	Unit    string
	Speedup float64
	Pairs   int
}

// geomeans matches benchmarks by name and aggregates, per metric unit,
// the geometric mean of baseline/current value ratios. Pairs where
// either side of a metric is non-positive are skipped for that metric
// (zero-alloc runs make B/op and allocs/op legitimately zero, and a log
// of zero would poison the whole mean). Units are emitted in sorted
// order so the output is stable.
func geomeans(base, cur []Benchmark) []geoLine {
	byName := make(map[string]Benchmark, len(base))
	for _, b := range base {
		byName[b.Name] = b
	}
	logSum := map[string]float64{}
	pairs := map[string]int{}
	for _, c := range cur {
		b, ok := byName[c.Name]
		if !ok {
			continue
		}
		for unit, cv := range c.Metrics {
			bv, ok := b.Metrics[unit]
			if !ok || bv <= 0 || cv <= 0 {
				continue
			}
			logSum[unit] += math.Log(bv / cv)
			pairs[unit]++
		}
	}
	units := make([]string, 0, len(logSum))
	for unit := range logSum {
		units = append(units, unit)
	}
	sort.Strings(units)
	out := make([]geoLine, 0, len(units))
	for _, unit := range units {
		out = append(out, geoLine{
			Unit:    unit,
			Speedup: math.Exp(logSum[unit] / float64(pairs[unit])),
			Pairs:   pairs[unit],
		})
	}
	return out
}

// parseLine parses a single result line of the form
//
//	BenchmarkName-8   123   456.7 ns/op   89.0 ns/slot   12 B/op   3 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	// The remainder alternates value/unit pairs.
	for k := 2; k+1 < len(fields); k += 2 {
		v, err := strconv.ParseFloat(fields[k], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[k+1]] = v
	}
	return b, true
}
