// Command benchjson converts `go test -bench` output into a stable JSON
// document, so benchmark baselines can be committed (BENCH_*.json) and
// compared across PRs without parsing the free-form text format.
//
// Usage:
//
//	go test -bench 'CIOQ|Crossbar|E5' -benchmem -benchtime 3x | benchjson -label baseline > BENCH_1.json
//
// Every `Benchmark*` result line is parsed into the iteration count, the
// primary ns/op figure and any additional metrics (B/op, allocs/op and
// custom b.ReportMetric units such as ns/slot).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value, e.g. "ns/op", "ns/slot", "allocs/op".
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the emitted document.
type Report struct {
	Label      string      `json:"label,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	label := flag.String("label", "", "free-form label stored in the output (e.g. baseline, post-bitset)")
	flag.Parse()

	rep := Report{Label: *label}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine parses a single result line of the form
//
//	BenchmarkName-8   123   456.7 ns/op   89.0 ns/slot   12 B/op   3 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	// The remainder alternates value/unit pairs.
	for k := 2; k+1 < len(fields); k += 2 {
		v, err := strconv.ParseFloat(fields[k], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[k+1]] = v
	}
	return b, true
}
