package main

import "testing"

func TestParseLineCustomUnits(t *testing.T) {
	// A probed observability benchmark line: custom b.ReportMetric units
	// (engineruns/op, jumpedfrac, ...) must land in Metrics next to the
	// standard ns/op and -benchmem figures.
	line := "BenchmarkObsProbedE1-8   \t       3\t  10031030 ns/op\t        96.00 engineruns/op\t        96.00 judgesolves/op\t         0.05104 jumpedfrac\t        16.50 jumps/op\t 3949292 B/op\t  140708 allocs/op"
	b, ok := parseLine(line)
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "BenchmarkObsProbedE1" {
		t.Errorf("name = %q, want GOMAXPROCS suffix stripped", b.Name)
	}
	if b.Iterations != 3 {
		t.Errorf("iterations = %d, want 3", b.Iterations)
	}
	want := map[string]float64{
		"ns/op":          10031030,
		"engineruns/op":  96,
		"judgesolves/op": 96,
		"jumpedfrac":     0.05104,
		"jumps/op":       16.5,
		"B/op":           3949292,
		"allocs/op":      140708,
	}
	if len(b.Metrics) != len(want) {
		t.Errorf("metrics = %v, want %d entries", b.Metrics, len(want))
	}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Errorf("metrics[%q] = %v, want %v", unit, b.Metrics[unit], v)
		}
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken-8",
		"BenchmarkBroken-8 notanint 5 ns/op",
		"ok  \tqswitch\t12.3s",
		"PASS",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted a non-result line", line)
		}
	}
}
