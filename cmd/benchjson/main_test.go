package main

import (
	"math"
	"testing"
)

func TestParseLineCustomUnits(t *testing.T) {
	// A probed observability benchmark line: custom b.ReportMetric units
	// (engineruns/op, jumpedfrac, ...) must land in Metrics next to the
	// standard ns/op and -benchmem figures.
	line := "BenchmarkObsProbedE1-8   \t       3\t  10031030 ns/op\t        96.00 engineruns/op\t        96.00 judgesolves/op\t         0.05104 jumpedfrac\t        16.50 jumps/op\t 3949292 B/op\t  140708 allocs/op"
	b, ok := parseLine(line)
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.Name != "BenchmarkObsProbedE1" {
		t.Errorf("name = %q, want GOMAXPROCS suffix stripped", b.Name)
	}
	if b.Iterations != 3 {
		t.Errorf("iterations = %d, want 3", b.Iterations)
	}
	want := map[string]float64{
		"ns/op":          10031030,
		"engineruns/op":  96,
		"judgesolves/op": 96,
		"jumpedfrac":     0.05104,
		"jumps/op":       16.5,
		"B/op":           3949292,
		"allocs/op":      140708,
	}
	if len(b.Metrics) != len(want) {
		t.Errorf("metrics = %v, want %d entries", b.Metrics, len(want))
	}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Errorf("metrics[%q] = %v, want %v", unit, b.Metrics[unit], v)
		}
	}
}

func TestGeomeansPerMetric(t *testing.T) {
	base := []Benchmark{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 400, "ns/slot": 40, "allocs/op": 8}},
		{Name: "BenchmarkB", Metrics: map[string]float64{"ns/op": 900, "ns/slot": 90}},
		{Name: "BenchmarkOnlyInBase", Metrics: map[string]float64{"ns/op": 5}},
	}
	cur := []Benchmark{
		// ns/op ratios 4x and 1x -> geomean 2x; ns/slot ratios 4x and 9x
		// -> geomean 6x; allocs/op pairs with a zero on the current side,
		// so that metric is skipped entirely.
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 100, "ns/slot": 10, "allocs/op": 0}},
		{Name: "BenchmarkB", Metrics: map[string]float64{"ns/op": 900, "ns/slot": 10}},
		{Name: "BenchmarkOnlyInCurrent", Metrics: map[string]float64{"ns/op": 5}},
	}
	lines := geomeans(base, cur)
	want := []geoLine{
		{Unit: "ns/op", Speedup: 2, Pairs: 2},
		{Unit: "ns/slot", Speedup: 6, Pairs: 2},
	}
	if len(lines) != len(want) {
		t.Fatalf("geomeans = %+v, want %d lines", lines, len(want))
	}
	for k, w := range want {
		g := lines[k]
		if g.Unit != w.Unit || g.Pairs != w.Pairs || math.Abs(g.Speedup-w.Speedup) > 1e-9 {
			t.Errorf("line %d = %+v, want %+v", k, g, w)
		}
	}
}

func TestGeomeansNoMatches(t *testing.T) {
	base := []Benchmark{{Name: "BenchmarkX", Metrics: map[string]float64{"ns/op": 1}}}
	cur := []Benchmark{{Name: "BenchmarkY", Metrics: map[string]float64{"ns/op": 1}}}
	if lines := geomeans(base, cur); len(lines) != 0 {
		t.Errorf("disjoint names produced %+v", lines)
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken-8",
		"BenchmarkBroken-8 notanint 5 ns/op",
		"ok  \tqswitch\t12.3s",
		"PASS",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted a non-result line", line)
		}
	}
}
