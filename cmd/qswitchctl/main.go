// Command qswitchctl is the sharded experiment service's coordinator: it
// fans the Monte-Carlo experiments (E1–E4) and adversary hunts out over a
// fleet of qswitchd workers with retries, supervision and crash-safe
// checkpointing, and merges results that are byte-identical to a
// single-process run.
//
// Usage:
//
//	qswitchctl -workers 4 -run e1,e2 -quick            # spawn 4 local workers
//	qswitchctl -connect :7410,:7411 -run e3            # use running qswitchd -listen workers
//	qswitchctl -workers 4 -run e1 -checkpoint e1.ckpt  # kill it, rerun: resumes
//	qswitchctl -workers 2 -chaos seed=7,kill=0.1 -run e1
//	qswitchctl -workers 4 -hunt "pg" -huntjudge exactweighted -maxvalue 8 -restarts 16
//
// With -workers N the coordinator re-executes its own binary in worker
// mode (the hidden -serve flag), so no separate qswitchd binary is
// needed on PATH; -chaos applies to the spawned workers. A run with a
// -checkpoint file can be killed at any point and rerun with the same
// arguments: completed chunks are replayed from the log, only the rest
// execute.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"qswitch/internal/adversary"
	"qswitch/internal/experiments"
	"qswitch/internal/obs"
	"qswitch/internal/obs/wire"
	"qswitch/internal/shard"
	"qswitch/internal/shard/faultinject"
	"qswitch/internal/stats"
	"qswitch/internal/switchsim"
)

func main() {
	var (
		serve      = flag.Bool("serve", false, "worker mode: serve the shard protocol on stdio (used internally by -workers)")
		workers    = flag.Int("workers", 0, "spawn this many local worker processes")
		connect    = flag.String("connect", "", "comma-separated TCP addresses of running qswitchd -listen workers")
		run        = flag.String("run", "", "comma-separated experiment ids to run sharded (of e1,e2,e3,e4)")
		quick      = flag.Bool("quick", false, "reduced workloads")
		seed       = flag.Int64("seed", 1, "base RNG seed")
		chunk      = flag.Int("chunk", 0, "seeds per chunk (0 selects the default)")
		checkpoint = flag.String("checkpoint", "", "checkpoint log path; completed chunks survive coordinator crashes")
		chaos      = flag.String("chaos", "", "fault-injection spec passed to spawned workers")
		timeout    = flag.Duration("chunk-timeout", 0, "per-chunk attempt deadline (default 2m)")
		hbTimeout  = flag.Duration("heartbeat-timeout", 0, "max silence before a worker is presumed dead (default 10s)")
		ciTarget   = flag.Float64("ci-target", 0, "sequential sweeps: stop each ratio estimation once the Student-t CI half-width on the mean ratio is <= this (0 disables); seed chunks keep flowing through the shard service until then")
		confidence = flag.Float64("confidence", 0.95, "confidence level for -ci-target stopping and hunt verdicts")
		hunt       = flag.String("hunt", "", "policy spec to hunt adversarially instead of running experiments")
		huntJudge  = flag.String("huntjudge", "exactunit", "judge spec for -hunt")
		crossbar   = flag.Bool("crossbar", false, "hunt against the buffered-crossbar model")
		restarts   = flag.Int("restarts", 8, "hunt restarts (sharded across workers)")
		iterations = flag.Int("iterations", 400, "hunt hill-climb iterations per restart")
		maxValue   = flag.Int64("maxvalue", 1, "hunt max packet value (1 = unit)")
		verbose    = flag.Bool("v", false, "log supervision events to stderr")
		status     = flag.Bool("status", false, "print a live per-worker health table to stderr while running")
		events     = flag.String("events", "", "append structured JSONL run events to this file")
	)
	obsCLI := wire.Flags(flag.CommandLine, true, "trace")
	flag.Parse()

	if *serve {
		inj, err := faultinject.ParseSpec(*chaos)
		if err != nil {
			fatal(err)
		}
		if err := shard.ServeStdio(shard.ServeOptions{Chaos: inj}); err != nil {
			fatal(err)
		}
		return
	}

	sess, err := obsCLI.Start()
	if err != nil {
		fatal(err)
	}
	defer sess.Close()
	var runLog *slog.Logger
	if *events != "" {
		f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runLog = obs.NewRunLog(f)
		runLog.Info("run start", "args", strings.Join(os.Args[1:], " "))
	}

	opts := shard.CoordinatorOptions{
		ChunkTimeout:     *timeout,
		HeartbeatTimeout: *hbTimeout,
		CheckpointPath:   *checkpoint,
		Metrics:          sess.Reg,
	}
	if *verbose {
		logger := log.New(os.Stderr, "qswitchctl: ", log.Ltime|log.Lmicroseconds)
		opts.Logf = logger.Printf
	}
	exe, err := os.Executable()
	if err != nil {
		fatal(fmt.Errorf("cannot locate own binary for -workers: %w", err))
	}
	if *chaos != "" {
		// Fail fast on a bad spec here rather than in every worker.
		if _, err := faultinject.ParseSpec(*chaos); err != nil {
			fatal(err)
		}
	}
	for i := 0; i < *workers; i++ {
		cmd := []string{exe, "-serve"}
		if *chaos != "" {
			cmd = append(cmd, "-chaos", perWorkerChaos(*chaos, i))
		}
		opts.Workers = append(opts.Workers, shard.WorkerSpec{Cmd: cmd})
	}
	if *connect != "" {
		for _, addr := range strings.Split(*connect, ",") {
			opts.Workers = append(opts.Workers, shard.WorkerSpec{Addr: strings.TrimSpace(addr)})
		}
	}

	coord, err := shard.NewCoordinator(opts)
	if err != nil {
		fatal(err)
	}
	defer coord.Close()

	if *status {
		stop := make(chan struct{})
		defer close(stop)
		go statusLoop(coord, stop)
	}

	start := time.Now()
	switch {
	case *hunt != "":
		runHunt(coord, *hunt, *huntJudge, *crossbar, *restarts, *iterations, *maxValue, *seed, *chunk, *confidence)
	case *run != "":
		runExperiments(coord, sess.Reg, *run, *quick, *seed, *chunk, *ciTarget, *confidence)
	default:
		fmt.Fprintln(os.Stderr, "qswitchctl: nothing to do; use -run or -hunt")
		flag.Usage()
		os.Exit(2)
	}
	st := coord.Stats()
	fmt.Printf("\n%s elapsed — chunks: %d executed, %d from checkpoint, %d local; retries: %d, respawns: %d, excluded workers: %d\n",
		time.Since(start).Round(time.Millisecond),
		st.ChunksExecuted, st.CheckpointHits, st.LocalChunks, st.Retries, st.Respawns, st.Excluded)
	if runLog != nil {
		obs.LogSnapshot(runLog, "run complete", sess.Reg)
	}
}

// statusLoop renders the coordinator's per-worker health table to stderr
// until stop closes — the qswitchctl -status live view.
func statusLoop(coord *shard.Coordinator, stop <-chan struct{}) {
	t := time.NewTicker(2 * time.Second)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			for _, h := range coord.Health() {
				beat := "-"
				if !h.LastBeat.IsZero() {
					beat = time.Since(h.LastBeat).Round(100*time.Millisecond).String() + " ago"
				}
				fmt.Fprintf(os.Stderr, "qswitchctl: worker %d [%s] chunks=%d retries=%d respawns=%d %.1f units/s last=%.0fms beat=%s\n",
					h.Worker, h.State, h.ChunksDone, h.Retries, h.Respawns,
					h.Stats.UnitsPerSec, h.Stats.LastChunkMs, beat)
			}
		}
	}
}

// runExperiments executes the requested ratio experiments with their
// Monte-Carlo estimations sharded through the coordinator; a positive
// ciTarget makes each estimation sequential, issuing seed chunks to the
// workers only until its CI half-width clears the target.
func runExperiments(coord *shard.Coordinator, reg *obs.Registry, ids string, quick bool, seed int64, chunk int,
	ciTarget, confidence float64) {
	opts := experiments.Options{
		Quick: quick, Seed: seed, Shard: coord, ShardChunk: chunk,
		CITarget: stats.Target{AbsWidth: ciTarget, Confidence: confidence},
		SeqChunk: chunk, Probes: reg,
	}
	for _, id := range strings.Split(ids, ",") {
		exp, ok := experiments.ByID(strings.TrimSpace(id))
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q", id))
		}
		tables, err := exp.Run(opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", exp.ID, err))
		}
		for _, tb := range tables {
			fmt.Println()
			tb.Render(os.Stdout)
		}
	}
}

// runHunt shards an adversary hunt's restarts across the workers and
// prints a confidence-annotated verdict alongside the witness.
func runHunt(coord *shard.Coordinator, policy, judge string, crossbar bool,
	restarts, iterations int, maxValue, seed int64, chunk int, confidence float64) {
	cfg := switchsim.Config{Inputs: 2, Outputs: 2, InputBuf: 1, OutputBuf: 1, CrossBuf: 1, Speedup: 1}
	req := shard.HuntRequest{
		Cfg: cfg, Crossbar: crossbar, Policy: policy, Judge: judge,
		Search: adversary.SearchOptions{
			Inputs: cfg.Inputs, Outputs: cfg.Outputs, MaxSlots: 5, MaxPackets: 8,
			MaxValue: maxValue, Iterations: iterations, Seed: seed, Restarts: restarts,
		},
	}
	res, err := coord.Hunt(context.Background(), req, chunk)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("hunt %s vs %s: best ratio %.4f (restart %d, %d accepted, %d tried)\n",
		policy, judge, res.Ratio, res.Restart, res.Accepted, res.Tried)
	fmt.Printf("verdict: %s\n", res.Verdict(restarts, confidence))
	for _, p := range res.Seq {
		fmt.Printf("  t=%d in=%d out=%d v=%d\n", p.Arrival, p.In, p.Out, p.Value)
	}
}

// perWorkerChaos offsets the spec's seed by the worker index, so spawned
// workers draw independent fault schedules. Chunks are dealt to workers
// round-robin, which keeps same-seed schedules in lockstep: every worker
// would reach a kill position at nearly the same moment and a retried
// chunk would land on a worker about to fail the same way, burning the
// whole attempt budget on one correlated fault.
func perWorkerChaos(spec string, worker int) string {
	terms := strings.Split(spec, ",")
	for i, kv := range terms {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if ok && k == "seed" {
			if s, err := strconv.ParseInt(v, 10, 64); err == nil {
				terms[i] = fmt.Sprintf("seed=%d", s+int64(worker))
			}
			return strings.Join(terms, ",")
		}
	}
	// No explicit seed: ParseSpec defaults to 1, so stagger from there.
	return spec + fmt.Sprintf(",seed=%d", 1+worker)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qswitchctl: %v\n", err)
	os.Exit(1)
}
