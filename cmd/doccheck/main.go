// Command doccheck fails when an exported identifier lacks a doc comment.
// It is the documentation gate of the CI docs job: run over the whole
// repository it keeps the godoc layer complete as the API grows.
//
// Usage:
//
//	doccheck [dir ...]    # default: .
//
// For every non-test .go file under the given directories (recursively,
// skipping testdata), each exported top-level identifier — functions,
// methods on exported types, and the specs of type/const/var declarations
// — must carry a doc comment. A comment on a grouped declaration counts
// for all of its specs (the const-block convention). Exit status is 1 if
// any identifier is undocumented, with one "file:line: name" diagnostic
// per finding.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var files []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == "testdata" || strings.HasPrefix(name, ".") && name != "." {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
	}
	fset := token.NewFileSet()
	bad := 0
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		for _, miss := range check(f) {
			pos := fset.Position(miss.pos)
			fmt.Printf("%s:%d: exported %s %s has no doc comment\n", path, pos.Line, miss.kind, miss.name)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

// missing is one undocumented exported identifier.
type missing struct {
	name string
	kind string
	pos  token.Pos
}

// check returns the undocumented exported identifiers of one file.
func check(f *ast.File) []missing {
	var out []missing
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				out = append(out, missing{d.Name.Name, kind, d.Pos()})
			}
		case *ast.GenDecl:
			if d.Doc != nil {
				continue // a group comment covers every spec
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
						out = append(out, missing{s.Name.Name, "type", s.Pos()})
					}
				case *ast.ValueSpec:
					if s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							out = append(out, missing{name.Name, kindOf(d.Tok), name.Pos()})
						}
					}
				}
			}
		}
	}
	return out
}

// exportedReceiver reports whether a function is package-level or a method
// on an exported type; methods on unexported types are not API surface.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

// kindOf names a value declaration's token for diagnostics.
func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
