// Command qswitchd is the sharded experiment service's worker: it
// executes chunk specs — seed-range slices of Monte-Carlo ratio
// estimations, restart-range slices of adversary hunts — sent to it by a
// coordinator (qswitchctl, or any shard.Coordinator) over stdio or TCP,
// heartbeating while it computes.
//
// Usage:
//
//	qswitchd                            # serve stdio (coordinator-spawned)
//	qswitchd -listen 127.0.0.1:7410    # serve TCP
//	qswitchd -chaos seed=7,kill=0.05,corrupt=0.1
//
// The -chaos flag enables deterministic fault injection (see
// internal/shard/faultinject): per chunk request the worker may crash,
// hang silently, delay its reply, or flip a bit in its response frame
// after the checksum is computed. Chaos exercises the coordinator's
// supervision machinery; because chunks are deterministic and retried,
// it never changes merged results.
//
// The observability flags (-metrics-addr, -cpuprofile, -memprofile,
// -trace) expose the worker's engine probes, chunk counters and pprof
// endpoints while it serves; see internal/obs.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"qswitch/internal/obs/wire"
	"qswitch/internal/shard"
	"qswitch/internal/shard/faultinject"
)

func main() {
	var (
		listen    = flag.String("listen", "", "TCP address to serve on (default: serve stdin/stdout)")
		chaos     = flag.String("chaos", "", "fault-injection spec, e.g. seed=7,kill=0.05,hang=0.02,delay=0.2,corrupt=0.1,maxdelayms=20")
		heartbeat = flag.Duration("heartbeat", 0, "heartbeat period while executing a chunk (default 250ms)")
		verbose   = flag.Bool("v", false, "log served chunks and chaos events to stderr")
	)
	obsCLI := wire.Flags(flag.CommandLine, false, "trace")
	flag.Parse()

	inj, err := faultinject.ParseSpec(*chaos)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qswitchd: %v\n", err)
		os.Exit(2)
	}
	sess, err := obsCLI.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "qswitchd: %v\n", err)
		os.Exit(1)
	}
	opts := shard.ServeOptions{
		Chaos:          inj,
		HeartbeatEvery: *heartbeat,
		Metrics:        sess.Reg,
	}
	if *verbose {
		logger := log.New(os.Stderr, fmt.Sprintf("qswitchd[%d]: ", os.Getpid()), log.Ltime|log.Lmicroseconds)
		opts.Logf = logger.Printf
	}

	serveErr := func() error {
		if *listen == "" {
			return shard.ServeStdio(opts)
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "qswitchd: serving on %s\n", ln.Addr())
		return shard.ServeTCP(ln, opts)
	}()
	if err := sess.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "qswitchd: %v\n", err)
	}
	if serveErr != nil {
		fmt.Fprintf(os.Stderr, "qswitchd: %v\n", serveErr)
		os.Exit(1)
	}
}
