// Command tracegen generates, inspects and converts packet traces.
//
// Examples:
//
//	tracegen -o burst.qsw -n 8 -slots 1000 -traffic bursty -values zipf
//	tracegen -inspect burst.qsw
//	tracegen -convert burst.qsw -json burst.json
//
// Sparse workloads (long idle gaps, for the event-driven simulator):
//
//	tracegen -o sparse.qsw -n 16 -slots 1000000 -traffic poissonburst -load 0.01
//	tracegen -o night.qsw  -n 8  -slots 100000  -traffic diurnal -load 0.05
//	tracegen -o tail.qsw   -n 8  -slots 100000  -traffic heavytail -load 0.02
//
// poissonburst emits ~4-packet line-rate bursts separated by geometric
// idle gaps; diurnal modulates Bernoulli traffic through a sinusoidal
// day/night cycle whose troughs go silent; heavytail draws Pareto(1.5)
// interarrival gaps; burstblock converges 16-packet bursts from every
// input onto one hot output (the backlogged-but-quiescent shape for the
// quiescent drain fast path); crossdrain rotates conflict-free
// all-to-all bursts that park the backlog across a buffered crossbar's
// crosspoint matrix. For all five, -load sets the mean per-input
// offered load.
//
// Flow-level traffic (the streaming engines' flagship workload):
//
//	tracegen -o flows.qsw -n 16 -slots 100000 -traffic flowmix -load 0.7
//
// flowmix opens short "rat" and long "elephant" flows per input at a
// stage-varying rate; every open flow emits one packet per slot toward
// its flow destination, so traffic has flow-level trains, a heavy/light
// size mix and a diurnal-style intensity profile. -load sets the
// approximate mean per-input packet load.
package main

import (
	"flag"
	"fmt"
	"os"

	"qswitch/internal/packet"
)

func main() {
	var (
		out     = flag.String("o", "", "output binary trace file")
		inspect = flag.String("inspect", "", "print a summary of an existing binary trace")
		convert = flag.String("convert", "", "binary trace to convert")
		jsonOut = flag.String("json", "", "JSON output path for -convert")
		n       = flag.Int("n", 8, "input ports")
		m       = flag.Int("m", 0, "output ports (defaults to -n)")
		slots   = flag.Int("slots", 1000, "arrival slots")
		traffic = flag.String("traffic", "uniform", "uniform, bursty, hotspot, diagonal, permutation, poissonburst, diurnal, heavytail, burstblock, crossdrain, flowmix")
		values  = flag.String("values", "unit", "unit, two, uniform, zipf, geometric")
		load    = flag.Float64("load", 0.9, "offered load")
		seed    = flag.Int64("seed", 1, "RNG seed")
	)
	flag.Parse()
	if *m == 0 {
		*m = *n
	}

	switch {
	case *inspect != "":
		tr := readTrace(*inspect)
		summarize(tr)
	case *convert != "":
		if *jsonOut == "" {
			fatal("-convert requires -json OUT")
		}
		tr := readTrace(*convert)
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		if err := tr.WriteJSON(f); err != nil {
			fatal("writing json: %v", err)
		}
		fmt.Printf("wrote %s (%d packets)\n", *jsonOut, len(tr.Packets))
	case *out != "":
		gen, err := buildGenerator(*traffic, *values, *load)
		if err != nil {
			fatal("%v", err)
		}
		rng := newRand(*seed)
		seq := gen.Generate(rng, *n, *m, *slots)
		tr := &packet.Trace{Inputs: *n, Outputs: *m, Packets: seq}
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		if err := tr.WriteBinary(f); err != nil {
			fatal("writing trace: %v", err)
		}
		fmt.Printf("wrote %s: %s, %d packets over %d slots\n", *out, gen.Name(), len(seq), *slots)
	default:
		fmt.Fprintln(os.Stderr, "tracegen: nothing to do; use -o, -inspect or -convert")
		flag.Usage()
		os.Exit(2)
	}
}

func readTrace(path string) *packet.Trace {
	tr, err := packet.LoadTrace(path)
	if err != nil {
		fatal("%v", err)
	}
	return tr
}

func summarize(tr *packet.Trace) {
	fmt.Printf("geometry : %dx%d\n", tr.Inputs, tr.Outputs)
	fmt.Printf("packets  : %d\n", len(tr.Packets))
	fmt.Printf("slots    : %d (max arrival)\n", tr.Packets.MaxSlot()+1)
	fmt.Printf("value    : total %d, unit=%v\n", tr.Packets.TotalValue(), tr.Packets.IsUnit())
	cnt := tr.Packets.CountByPair(tr.Inputs, tr.Outputs)
	fmt.Println("traffic matrix (packets in->out):")
	for i := range cnt {
		fmt.Printf("  in%-3d:", i)
		for j := range cnt[i] {
			fmt.Printf(" %6d", cnt[i][j])
		}
		fmt.Println()
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
