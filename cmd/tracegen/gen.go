package main

import (
	"math/rand"

	"qswitch/internal/packet"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// buildGenerator resolves the shared traffic/value names; the mapping
// lives in internal/packet so tracegen and switchsim always agree.
func buildGenerator(traffic, values string, load float64) (packet.Generator, error) {
	return packet.GeneratorByName(traffic, values, load)
}
