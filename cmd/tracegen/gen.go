package main

import (
	"fmt"
	"math/rand"

	"qswitch/internal/packet"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func buildGenerator(traffic, values string, load float64) (packet.Generator, error) {
	var vd packet.ValueDist
	switch values {
	case "unit":
		vd = packet.UnitValues{}
	case "two":
		vd = packet.TwoValued{Alpha: 50, PHigh: 0.2}
	case "uniform":
		vd = packet.UniformValues{Hi: 100}
	case "zipf":
		vd = packet.ZipfValues{Hi: 1000, S: 1.2}
	case "geometric":
		vd = packet.GeometricValues{P: 0.25, Hi: 256}
	default:
		return nil, fmt.Errorf("unknown value distribution %q", values)
	}
	switch traffic {
	case "uniform":
		return packet.Bernoulli{Load: load, Values: vd}, nil
	case "bursty":
		return packet.Bursty{OnLoad: load, POnOff: 0.2, POffOn: 0.2, Values: vd}, nil
	case "hotspot":
		return packet.Hotspot{Load: load, HotFrac: 0.5, Values: vd}, nil
	case "diagonal":
		return packet.Diagonal{Load: load, OffFrac: 0.1, Values: vd}, nil
	case "permutation":
		return packet.Permutation{Load: load, Values: vd}, nil
	default:
		return nil, fmt.Errorf("unknown traffic pattern %q", traffic)
	}
}
