// Command switchbench runs the paper-reproduction experiment suite
// (E1–E12, see DESIGN.md) and renders each experiment's tables as ASCII
// and, optionally, CSV files.
//
// Usage:
//
//	switchbench -list
//	switchbench -run e1,e5 [-quick] [-seed 42] [-csv results/]
//	switchbench -all [-quick] [-csv results/]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"qswitch/internal/experiments"
	"qswitch/internal/obs"
	"qswitch/internal/obs/wire"
	"qswitch/internal/stats"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments and exit")
		run    = flag.String("run", "", "comma-separated experiment ids to run (e.g. e1,e5)")
		all    = flag.Bool("all", false, "run every experiment")
		quick  = flag.Bool("quick", false, "reduced workloads (seconds instead of minutes)")
		dense  = flag.Bool("dense", false, "opt out of the event-driven simulator fast path and simulate every slot (bit-identical results, slower)")
		fleet  = flag.Bool("fleet", false, "route Monte-Carlo ratio estimations through the columnar batched fleet engine (byte-identical results)")
		stream = flag.Bool("stream", false, "route Monte-Carlo ratio estimations through the streaming engines (byte-identical results)")
		ciTgt  = flag.Float64("ci-target", 0, "sequential stopping: stop each ratio estimation once the Student-t CI half-width on the mean ratio is <= this (0 disables; seed budget still caps)")
		conf   = flag.Float64("confidence", 0.95, "confidence level for CI columns and -ci-target stopping")
		chunk  = flag.Int("ci-chunk", 0, "seeds per sequential stopping decision (0 selects the default)")
		paired = flag.Bool("paired", false, "run the E2b beta sweep as a paired fleet (common random numbers, one offline solve per seed; byte-identical table)")
		seed   = flag.Int64("seed", 1, "base RNG seed")
		csv    = flag.String("csv", "", "directory to write per-table CSV files into")
		figs   = flag.Bool("figures", true, "render ASCII charts for figure-type experiments")
		par    = flag.Int("parallel", 1, "run up to this many experiments concurrently (output stays ordered)")
		events = flag.String("events", "", "append structured JSONL run events to this file")
	)
	obsCLI := wire.Flags(flag.CommandLine, true, "trace")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	case *run != "":
		ids = strings.Split(*run, ",")
	default:
		fmt.Fprintln(os.Stderr, "switchbench: nothing to do; use -list, -run or -all")
		flag.Usage()
		os.Exit(2)
	}

	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			fatal("creating csv dir: %v", err)
		}
	}

	sess, err := obsCLI.Start()
	if err != nil {
		fatal("%v", err)
	}
	defer sess.Close()
	var runLog *obsLog
	if *events != "" {
		f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		runLog = &obsLog{l: obs.NewRunLog(f)}
		runLog.l.Info("run start", "args", strings.Join(os.Args[1:], " "))
	}

	opts := experiments.Options{
		Quick: *quick, Seed: *seed, Dense: *dense, Fleet: *fleet, Stream: *stream,
		CITarget: stats.Target{AbsWidth: *ciTgt, Confidence: *conf},
		SeqChunk: *chunk, Paired: *paired, Probes: sess.Reg,
	}
	// Each experiment renders into its own buffer so concurrent runs
	// still print in the requested order.
	type report struct {
		out bytes.Buffer
		err error
	}
	reports := make([]*report, len(ids))
	sem := make(chan struct{}, max(1, *par))
	var wg sync.WaitGroup
	for k, rawID := range ids {
		k := k
		id := strings.TrimSpace(rawID)
		exp, ok := experiments.ByID(id)
		if !ok {
			fatal("unknown experiment %q (use -list)", id)
		}
		reports[k] = &report{}
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			r := reports[k]
			fmt.Fprintf(&r.out, "### %s — %s\n", exp.ID, exp.Title)
			fmt.Fprintf(&r.out, "    %s\n\n", exp.Claim)
			// With concurrent experiments the process-wide probe counters
			// interleave, so the per-experiment attribution is only
			// reported serially.
			var probesBefore map[string]float64
			if *par <= 1 {
				probesBefore = opts.ProbeSnapshot()
			}
			start := time.Now()
			tables, err := exp.Run(opts)
			if err != nil {
				r.err = fmt.Errorf("%s failed: %w", exp.ID, err)
				return
			}
			for ti, tb := range tables {
				tb.Render(&r.out)
				fmt.Fprintln(&r.out)
				if *csv != "" {
					if err := writeCSV(*csv, exp.ID, ti, tb); err != nil {
						r.err = fmt.Errorf("writing csv: %w", err)
						return
					}
				}
			}
			if *figs {
				charts, err := experiments.BuildFigures(exp.ID, tables)
				if err != nil {
					r.err = fmt.Errorf("building figures: %w", err)
					return
				}
				for _, ch := range charts {
					ch.Render(&r.out, 64, 16)
					fmt.Fprintln(&r.out)
				}
			}
			fmt.Fprintf(&r.out, "    (%s in %.2fs)\n\n", exp.ID, time.Since(start).Seconds())
			if probesBefore != nil {
				delta := obs.DiffSnapshot(probesBefore, opts.ProbeSnapshot())
				if line := probeLine(delta); line != "" {
					fmt.Fprintf(&r.out, "    probes: %s\n\n", line)
				}
				runLog.snapshot(exp.ID, delta)
			}
		}()
	}
	wg.Wait()
	for _, r := range reports {
		if r.err != nil {
			fatal("%v", r.err)
		}
		os.Stdout.Write(r.out.Bytes())
	}
	if runLog != nil {
		obs.LogSnapshot(runLog.l, "run complete", sess.Reg)
	}
}

// obsLog wraps the optional -events logger so call sites stay nil-safe.
type obsLog struct {
	l *slog.Logger
	m sync.Mutex
}

func (o *obsLog) snapshot(id string, delta map[string]float64) {
	if o == nil {
		return
	}
	o.m.Lock()
	defer o.m.Unlock()
	attrs := make([]any, 0, 2*len(delta)+2)
	attrs = append(attrs, "experiment", id)
	for _, k := range sortedKeys(delta) {
		attrs = append(attrs, k, delta[k])
	}
	o.l.Info("experiment probes", attrs...)
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// probeLine compresses a probe-counter delta into the one-line summary
// printed under each serially-run experiment: engine work, backend
// split, judge work. Counters the experiment never moved are omitted.
func probeLine(delta map[string]float64) string {
	var parts []string
	add := func(format string, args ...any) { parts = append(parts, fmt.Sprintf(format, args...)) }
	if runs := delta[obs.MetricEngineRuns]; runs > 0 {
		slots := delta[obs.MetricEngineSlots]
		jumped := delta[obs.MetricEngineJumpedSlots]
		add("%.0f engine runs, %.0f slots (%.0f%% jumped)", runs, slots, 100*jumped/max(slots, 1))
	}
	if k := delta[obs.MetricFleetKernel]; k > 0 {
		add("%.0f kernel instances", k)
	}
	if f := delta[obs.MetricFleetFallback]; f > 0 {
		add("%.0f fallback instances", f)
	}
	if s := delta[obs.MetricJudgeSolves]; s > 0 {
		add("%.0f judge solves (%.1f epochs/solve)", s, delta[obs.MetricJudgeEpochs]/s)
	}
	if x := delta[obs.MetricJudgeExactSolves]; x > 0 {
		add("%.0f exact solves", x)
	}
	return strings.Join(parts, " · ")
}

func writeCSV(dir, id string, idx int, tb *stats.Table) error {
	name := fmt.Sprintf("%s_%d.csv", id, idx)
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	tb.RenderCSV(f)
	return nil
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "switchbench: "+format+"\n", args...)
	os.Exit(1)
}
