package qswitch

import (
	"strings"
	"testing"
)

func testCfg() Config {
	return Config{Inputs: 4, Outputs: 4, InputBuf: 2, OutputBuf: 2,
		CrossBuf: 2, Speedup: 1, Validate: true}
}

func TestAllNamedCIOQPoliciesRun(t *testing.T) {
	cfg := testCfg()
	seq := GenerateTraffic(UniformTraffic(1.2), cfg, 20, 1)
	for _, name := range CIOQPolicyNames() {
		t.Run(name, func(t *testing.T) {
			res, err := SimulateCIOQ(cfg, name, seq)
			if err != nil {
				t.Fatal(err)
			}
			if res.M.Sent == 0 {
				t.Error("no packets delivered")
			}
			pol, _ := NewCIOQPolicy(name)
			if pol.Name() == "" {
				t.Error("empty policy name")
			}
		})
	}
}

func TestAllNamedCrossbarPoliciesRun(t *testing.T) {
	cfg := testCfg()
	seq := GenerateTraffic(UniformTraffic(1.2), cfg, 20, 2)
	for _, name := range CrossbarPolicyNames() {
		t.Run(name, func(t *testing.T) {
			res, err := SimulateCrossbar(cfg, name, seq)
			if err != nil {
				t.Fatal(err)
			}
			if res.M.Sent == 0 {
				t.Error("no packets delivered")
			}
		})
	}
}

func TestUnknownPolicyNamesError(t *testing.T) {
	if _, err := NewCIOQPolicy("bogus"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("err = %v", err)
	}
	if _, err := NewCrossbarPolicy("bogus"); err == nil {
		t.Error("bogus crossbar policy accepted")
	}
	if _, err := SimulateCIOQ(testCfg(), 42, nil); err == nil {
		t.Error("non-policy value accepted")
	}
	if _, err := SimulateCrossbar(testCfg(), 42, nil); err == nil {
		t.Error("non-policy value accepted")
	}
}

func TestPolicyValuesAcceptedDirectly(t *testing.T) {
	cfg := testCfg()
	seq := GenerateTraffic(WeightedTraffic(1.0, nil), cfg, 10, 3)
	if _, err := SimulateCIOQ(cfg, NewPG(2.0), seq); err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateCrossbar(cfg, NewCPG(2.0, 3.0), seq); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateOQDominatesCIOQOnline(t *testing.T) {
	// The ideal OQ switch with the same output buffers is an online
	// upper-bound reference for fabric-constrained switches using the
	// same greedy admission. (Not a theorem for every instance — OQ has
	// no input buffers to stash packets in — but on uniform random load
	// it holds comfortably.)
	cfg := testCfg()
	cfg.OutputBuf = 8
	seq := GenerateTraffic(UniformTraffic(1.0), cfg, 50, 4)
	oq, err := SimulateOQ(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	gm, err := SimulateCIOQ(cfg, "gm", seq)
	if err != nil {
		t.Fatal(err)
	}
	if oq.M.Benefit < gm.M.Benefit {
		t.Errorf("OQ %d below GM %d on uniform load", oq.M.Benefit, gm.M.Benefit)
	}
}

func TestOfflineUpperBoundDominatesEveryPolicy(t *testing.T) {
	cfg := testCfg()
	seq := GenerateTraffic(WeightedTraffic(1.5, nil), cfg, 15, 5)
	ub, err := OfflineUpperBound(cfg, seq, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range CIOQPolicyNames() {
		res, err := SimulateCIOQ(cfg, name, seq)
		if err != nil {
			t.Fatal(err)
		}
		if res.M.Benefit > ub {
			t.Errorf("%s benefit %d exceeds offline upper bound %d", name, res.M.Benefit, ub)
		}
	}
	ubX, err := OfflineUpperBound(cfg, seq, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range CrossbarPolicyNames() {
		res, err := SimulateCrossbar(cfg, name, seq)
		if err != nil {
			t.Fatal(err)
		}
		if res.M.Benefit > ubX {
			t.Errorf("%s benefit %d exceeds offline upper bound %d", name, res.M.Benefit, ubX)
		}
	}
}

func TestExactOptimumDispatch(t *testing.T) {
	cfg := Config{Inputs: 2, Outputs: 2, InputBuf: 2, OutputBuf: 2,
		CrossBuf: 2, Speedup: 1}
	unit := Sequence{{ID: 0, Arrival: 0, In: 0, Out: 0, Value: 1}}
	weighted := Sequence{{ID: 0, Arrival: 0, In: 0, Out: 0, Value: 5}}
	for _, crossbar := range []bool{false, true} {
		if got, err := ExactOptimum(cfg, unit, crossbar); err != nil || got != 1 {
			t.Errorf("unit crossbar=%v: got %d err %v", crossbar, got, err)
		}
		if got, err := ExactOptimum(cfg, weighted, crossbar); err != nil || got != 5 {
			t.Errorf("weighted crossbar=%v: got %d err %v", crossbar, got, err)
		}
	}
}

func TestMeasureRatioCIOQEndToEnd(t *testing.T) {
	cfg := Config{Inputs: 2, Outputs: 2, InputBuf: 2, OutputBuf: 2,
		CrossBuf: 1, Speedup: 1, Validate: true, Slots: 5}
	est, err := MeasureRatioCIOQ(cfg, "gm", UniformTraffic(1.5), true, 11, 10)
	if err != nil {
		t.Fatal(err)
	}
	if est.Runs == 0 {
		t.Fatal("no runs measured")
	}
	if est.Max > 3.0+1e-9 || est.Max < 1.0-1e-9 {
		t.Errorf("GM exact ratio %.4f outside [1, 3]", est.Max)
	}
	if _, err := MeasureRatioCIOQ(cfg, "bogus", UniformTraffic(1), true, 1, 1); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestMeasureRatioCrossbarEndToEnd(t *testing.T) {
	cfg := Config{Inputs: 2, Outputs: 2, InputBuf: 1, OutputBuf: 1,
		CrossBuf: 1, Speedup: 1, Validate: true, Slots: 4}
	est, err := MeasureRatioCrossbar(cfg, "cgu", UniformTraffic(1.5), true, 13, 8)
	if err != nil {
		t.Fatal(err)
	}
	if est.Runs == 0 {
		t.Fatal("no runs measured")
	}
	if est.Max > 3.0+1e-9 {
		t.Errorf("CGU exact ratio %.4f exceeds 3", est.Max)
	}
	if _, err := MeasureRatioCrossbar(cfg, "bogus", UniformTraffic(1), true, 1, 1); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestParameterAccessors(t *testing.T) {
	if DefaultBetaPG() <= 2.41 || DefaultBetaPG() >= 2.42 {
		t.Error("beta PG wrong")
	}
	if DefaultBetaCPG() <= 1.8 || DefaultBetaCPG() >= 1.9 {
		t.Errorf("beta CPG = %v", DefaultBetaCPG())
	}
	if DefaultAlphaCPG() <= 2.7 || DefaultAlphaCPG() >= 2.95 {
		t.Errorf("alpha CPG = %v", DefaultAlphaCPG())
	}
}

func TestTrafficHelpers(t *testing.T) {
	cfg := testCfg()
	for _, gen := range []Generator{
		UniformTraffic(0.5),
		WeightedTraffic(0.5, nil),
		BurstyTraffic(0.9, 0.2, 0.2, nil),
		HotspotTraffic(1.0, 0, 0.8, nil),
	} {
		seq := GenerateTraffic(gen, cfg, 20, 9)
		if err := seq.Validate(cfg.Inputs, cfg.Outputs); err != nil {
			t.Errorf("%s: %v", gen.Name(), err)
		}
	}
	// Same seed, same traffic.
	a := GenerateTraffic(UniformTraffic(0.7), cfg, 20, 33)
	b := GenerateTraffic(UniformTraffic(0.7), cfg, 20, 33)
	if len(a) != len(b) {
		t.Error("traffic generation not deterministic")
	}
}
