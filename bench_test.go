package qswitch

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"os"
	"testing"

	"qswitch/internal/adversary"
	"qswitch/internal/core"
	"qswitch/internal/experiments"
	"qswitch/internal/fleet"
	"qswitch/internal/matching"
	"qswitch/internal/obs"
	"qswitch/internal/obs/wire"
	"qswitch/internal/offline"
	"qswitch/internal/packet"
	"qswitch/internal/queue"
	"qswitch/internal/ratio"
	"qswitch/internal/stats"
	"qswitch/internal/switchsim"
)

// ---------------------------------------------------------------------------
// One benchmark per experiment (E1-E12). Each iteration regenerates the
// experiment's tables in quick mode; `go test -bench .` therefore exercises
// the entire reproduction pipeline and reports how expensive each
// table/figure is to produce.
// ---------------------------------------------------------------------------

func benchExperiment(b *testing.B, id string) {
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(experiments.Options{Quick: true, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1GMRatio(b *testing.B)           { benchExperiment(b, "e1") }
func BenchmarkE2PGRatio(b *testing.B)           { benchExperiment(b, "e2") }
func BenchmarkE3CGURatio(b *testing.B)          { benchExperiment(b, "e3") }
func BenchmarkE4CPGParams(b *testing.B)         { benchExperiment(b, "e4") }
func BenchmarkE5MatchingCost(b *testing.B)      { benchExperiment(b, "e5") }
func BenchmarkE6Speedup(b *testing.B)           { benchExperiment(b, "e6") }
func BenchmarkE7Buffers(b *testing.B)           { benchExperiment(b, "e7") }
func BenchmarkE8Adversarial(b *testing.B)       { benchExperiment(b, "e8") }
func BenchmarkE9CIOQvsCrossbar(b *testing.B)    { benchExperiment(b, "e9") }
func BenchmarkE10ValueDists(b *testing.B)       { benchExperiment(b, "e10") }
func BenchmarkE11Rect(b *testing.B)             { benchExperiment(b, "e11") }
func BenchmarkE12MaximalVsMaximum(b *testing.B) { benchExperiment(b, "e12") }
func BenchmarkE13EdgeOrder(b *testing.B)        { benchExperiment(b, "e13") }
func BenchmarkE14Randomization(b *testing.B)    { benchExperiment(b, "e14") }
func BenchmarkE15FIFO(b *testing.B)             { benchExperiment(b, "e15") }
func BenchmarkE16IQModel(b *testing.B)          { benchExperiment(b, "e16") }

// ---------------------------------------------------------------------------
// Micro-benchmarks: per-slot policy cost on realistic switch sizes. These
// back the paper's efficiency claim with end-to-end numbers (E5 measures
// the matching engines in isolation).
// ---------------------------------------------------------------------------

func benchCIOQPolicy(b *testing.B, n int, mk func() switchsim.CIOQPolicy, weighted bool) {
	const slots = 200
	cfg := switchsim.Config{
		Inputs: n, Outputs: n, InputBuf: 4, OutputBuf: 4,
		Speedup: 1, Slots: slots,
	}
	var vd packet.ValueDist = packet.UnitValues{}
	if weighted {
		vd = packet.UniformValues{Hi: 100}
	}
	rng := rand.New(rand.NewSource(1))
	seq := packet.Bernoulli{Load: 0.95, Values: vd}.Generate(rng, n, n, slots)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := switchsim.RunCIOQ(cfg, mk(), seq); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*slots), "ns/slot")
}

func benchCrossbarPolicy(b *testing.B, n int, mk func() switchsim.CrossbarPolicy, weighted bool) {
	const slots = 200
	cfg := switchsim.Config{
		Inputs: n, Outputs: n, InputBuf: 4, OutputBuf: 4, CrossBuf: 2,
		Speedup: 1, Slots: slots,
	}
	var vd packet.ValueDist = packet.UnitValues{}
	if weighted {
		vd = packet.UniformValues{Hi: 100}
	}
	rng := rand.New(rand.NewSource(1))
	seq := packet.Bernoulli{Load: 0.95, Values: vd}.Generate(rng, n, n, slots)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := switchsim.RunCrossbar(cfg, mk(), seq); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*slots), "ns/slot")
}

func BenchmarkCIOQGM32(b *testing.B) {
	benchCIOQPolicy(b, 32, func() switchsim.CIOQPolicy { return &core.GM{} }, false)
}
func BenchmarkCIOQGM64(b *testing.B) {
	benchCIOQPolicy(b, 64, func() switchsim.CIOQPolicy { return &core.GM{} }, false)
}
func BenchmarkCIOQGMRotating64(b *testing.B) {
	benchCIOQPolicy(b, 64, func() switchsim.CIOQPolicy { return &core.GM{Order: core.Rotating} }, false)
}
func BenchmarkCIOQKRMM32(b *testing.B) {
	benchCIOQPolicy(b, 32, func() switchsim.CIOQPolicy { return &core.KRMM{} }, false)
}
func BenchmarkCIOQKRMM64(b *testing.B) {
	benchCIOQPolicy(b, 64, func() switchsim.CIOQPolicy { return &core.KRMM{} }, false)
}
func BenchmarkCIOQPG32(b *testing.B) {
	benchCIOQPolicy(b, 32, func() switchsim.CIOQPolicy { return &core.PG{} }, true)
}
func BenchmarkCIOQPG64(b *testing.B) {
	benchCIOQPolicy(b, 64, func() switchsim.CIOQPolicy { return &core.PG{} }, true)
}
func BenchmarkCIOQKRMWM32(b *testing.B) {
	benchCIOQPolicy(b, 32, func() switchsim.CIOQPolicy { return &core.KRMWM{} }, true)
}
func BenchmarkCIOQRoundRobin32(b *testing.B) {
	benchCIOQPolicy(b, 32, func() switchsim.CIOQPolicy { return &core.RoundRobin{} }, false)
}
func BenchmarkCIOQRoundRobin64(b *testing.B) {
	benchCIOQPolicy(b, 64, func() switchsim.CIOQPolicy { return &core.RoundRobin{} }, false)
}
func BenchmarkCrossbarCGU32(b *testing.B) {
	benchCrossbarPolicy(b, 32, func() switchsim.CrossbarPolicy { return &core.CGU{} }, false)
}
func BenchmarkCrossbarCGU64(b *testing.B) {
	benchCrossbarPolicy(b, 64, func() switchsim.CrossbarPolicy { return &core.CGU{} }, false)
}
func BenchmarkCrossbarCPG32(b *testing.B) {
	benchCrossbarPolicy(b, 32, func() switchsim.CrossbarPolicy { return &core.CPG{} }, true)
}
func BenchmarkCrossbarCPG64(b *testing.B) {
	benchCrossbarPolicy(b, 64, func() switchsim.CrossbarPolicy { return &core.CPG{} }, true)
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.
// ---------------------------------------------------------------------------

func BenchmarkQueuePushPreempt(b *testing.B) {
	q := queue.New(16, queue.ByValue)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.PushPreempt(packet.Packet{ID: int64(i), Value: rng.Int63n(1000) + 1})
		if q.Len() == 16 && i%16 == 0 {
			q.PopHead()
		}
	}
}

func benchMatchingEngine(b *testing.B, n int, engine func(edges []matching.Edge, adj [][]int, w [][]int64)) {
	rng := rand.New(rand.NewSource(2))
	var edges []matching.Edge
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				edges = append(edges, matching.Edge{U: i, V: j, W: rng.Int63n(100) + 1})
			}
		}
	}
	adj := matching.AdjFromEdges(n, edges)
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
	}
	for _, e := range edges {
		w[e.U][e.V] = e.W
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine(edges, adj, w)
	}
}

func BenchmarkMatchingGreedy64(b *testing.B) {
	benchMatchingEngine(b, 64, func(e []matching.Edge, _ [][]int, _ [][]int64) {
		matching.GreedyMaximal(64, 64, e)
	})
}
func BenchmarkMatchingGreedyWeighted64(b *testing.B) {
	benchMatchingEngine(b, 64, func(e []matching.Edge, _ [][]int, _ [][]int64) {
		matching.GreedyMaximalWeighted(64, 64, e)
	})
}
func BenchmarkMatchingHopcroftKarp64(b *testing.B) {
	benchMatchingEngine(b, 64, func(_ []matching.Edge, adj [][]int, _ [][]int64) {
		matching.HopcroftKarp(64, 64, adj)
	})
}
func BenchmarkMatchingHungarian64(b *testing.B) {
	benchMatchingEngine(b, 64, func(_ []matching.Edge, _ [][]int, w [][]int64) {
		matching.Hungarian(w)
	})
}

func BenchmarkExactUnitOPT(b *testing.B) {
	cfg := switchsim.Config{Inputs: 2, Outputs: 2, InputBuf: 2, OutputBuf: 2,
		CrossBuf: 1, Speedup: 1}
	rng := rand.New(rand.NewSource(3))
	seq := packet.Bernoulli{Load: 1.5}.Generate(rng, 2, 2, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := offline.ExactUnitCIOQ(cfg, seq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOfflineUpperBound(b *testing.B) {
	cfg := switchsim.Config{Inputs: 8, Outputs: 8, InputBuf: 4, OutputBuf: 4,
		CrossBuf: 1, Speedup: 1}
	rng := rand.New(rand.NewSource(4))
	seq := packet.Bernoulli{Load: 1.0, Values: packet.UniformValues{Hi: 50}}.
		Generate(rng, 8, 8, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := offline.OQUpperBound(cfg, seq, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceEncodeDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	seq := packet.Bernoulli{Load: 1.0, Values: packet.UniformValues{Hi: 100}}.
		Generate(rng, 8, 8, 200)
	tr := &packet.Trace{Inputs: 8, Outputs: 8, Packets: seq}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := packet.ReadBinary(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Sparse-trace benchmarks: long-horizon, low-load workloads where most
// slots are idle — the regime the event-driven fast path targets. The
// same benchmark names measure both engines: the fast path is the
// default, set QSWITCH_DENSE=1 to measure the dense baseline
// (BENCH_2.json / BENCH_3.json hold dense baselines, the _post files the
// event-driven runs).
// ---------------------------------------------------------------------------

func benchDense() bool { return os.Getenv("QSWITCH_DENSE") != "" }

const sparseBenchSlots = 1_000_000

// sparseBenchSeq caches one 10^6-slot bursty trace per geometry: ~0.003
// offered load per input (bursts of ~6 packets every ~2000 slots), so
// the switch sits empty for the overwhelming majority of slots.
var sparseBenchSeqs = map[int]packet.Sequence{}

func sparseBenchSeq(n int) packet.Sequence {
	if seq, ok := sparseBenchSeqs[n]; ok {
		return seq
	}
	rng := rand.New(rand.NewSource(1))
	seq := packet.PoissonBurst{OffMean: 2000, BurstMean: 6}.Generate(rng, n, n, sparseBenchSlots)
	sparseBenchSeqs[n] = seq
	return seq
}

func benchSparseCIOQ(b *testing.B, n int, mk func() switchsim.CIOQPolicy) {
	cfg := switchsim.Config{
		Inputs: n, Outputs: n, InputBuf: 4, OutputBuf: 4,
		Speedup: 1, Slots: sparseBenchSlots,
		Dense: benchDense(),
	}
	seq := sparseBenchSeq(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := switchsim.RunCIOQ(cfg, mk(), seq); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sparseBenchSlots), "ns/slot")
}

func benchSparseCrossbar(b *testing.B, n int, mk func() switchsim.CrossbarPolicy) {
	cfg := switchsim.Config{
		Inputs: n, Outputs: n, InputBuf: 4, OutputBuf: 4, CrossBuf: 2,
		Speedup: 1, Slots: sparseBenchSlots,
		Dense: benchDense(),
	}
	seq := sparseBenchSeq(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := switchsim.RunCrossbar(cfg, mk(), seq); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sparseBenchSlots), "ns/slot")
}

func BenchmarkSparseCIOQGM16(b *testing.B) {
	benchSparseCIOQ(b, 16, func() switchsim.CIOQPolicy { return &core.GM{} })
}
func BenchmarkSparseCIOQGMRotating16(b *testing.B) {
	benchSparseCIOQ(b, 16, func() switchsim.CIOQPolicy { return &core.GM{Order: core.Rotating} })
}
func BenchmarkSparseCIOQPG16(b *testing.B) {
	benchSparseCIOQ(b, 16, func() switchsim.CIOQPolicy { return &core.PG{} })
}
func BenchmarkSparseCIOQRoundRobin16(b *testing.B) {
	benchSparseCIOQ(b, 16, func() switchsim.CIOQPolicy { return &core.RoundRobin{} })
}
func BenchmarkSparseCrossbarCGU16(b *testing.B) {
	benchSparseCrossbar(b, 16, func() switchsim.CrossbarPolicy { return &core.CGU{} })
}
func BenchmarkSparseCrossbarCPG16(b *testing.B) {
	benchSparseCrossbar(b, 16, func() switchsim.CrossbarPolicy { return &core.CPG{} })
}

// ---------------------------------------------------------------------------
// Quiescent/adversarial-trace benchmarks: converging bursts at speedup 2
// park deep backlogs in the output queues, so most non-idle slots are
// backlogged-but-quiescent — the regime the quiescent drain jump targets
// (the pre-PR fast path only skipped fully-empty stretches). The same
// names measure both engines: set QSWITCH_DENSE=1 for the dense baseline
// (BENCH_3.json), default for the fast path (BENCH_3_post.json).
// ---------------------------------------------------------------------------

const quiescentBenchSlots = 1_000_000

// quiescentBenchSeq caches one 10^6-slot converging-burst trace per
// geometry: every ~2000 slots all n inputs send an 8-packet line-rate
// train into one hot output. At speedup 2 each event leaves a ~64-slot
// drain-only backlog in the hot output queue before the switch empties.
var quiescentBenchSeqs = map[int]packet.Sequence{}

func quiescentBenchSeq(n int) packet.Sequence {
	if seq, ok := quiescentBenchSeqs[n]; ok {
		return seq
	}
	rng := rand.New(rand.NewSource(2))
	seq := packet.BurstyBlocking{OffMean: 2000, Burst: 8, Values: packet.UniformValues{Hi: 20}}.
		Generate(rng, n, n, quiescentBenchSlots)
	quiescentBenchSeqs[n] = seq
	return seq
}

// adversarialBenchSeq caches a classical adversarial construction at
// benchmark scale: HotspotBursts slams every input's burst into output 0
// once per period, then leaves the switch to drain — the burst/drain/idle
// shape of the paper's lower-bound families.
var adversarialBenchSeqs = map[int]packet.Sequence{}

func adversarialBenchSeq(n int) packet.Sequence {
	if seq, ok := adversarialBenchSeqs[n]; ok {
		return seq
	}
	const period = 2048
	seq := adversary.HotspotBursts(n, 6, period, quiescentBenchSlots/period, packet.UniformValues{Hi: 20})
	adversarialBenchSeqs[n] = seq
	return seq
}

// quiescentBenchCfg is the CIOQ geometry for the drain-heavy traces:
// speedup 2 converts input backlog into output backlog twice as fast as
// it drains, and the deep output buffer holds it.
func quiescentBenchCfg(n int) switchsim.Config {
	return switchsim.Config{
		Inputs: n, Outputs: n, InputBuf: 8, OutputBuf: 128, CrossBuf: 2,
		Speedup: 2, Slots: quiescentBenchSlots,
		Dense: benchDense(),
	}
}

func benchQuiescentCIOQ(b *testing.B, seq packet.Sequence, n int, mk func() switchsim.CIOQPolicy) {
	cfg := quiescentBenchCfg(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := switchsim.RunCIOQ(cfg, mk(), seq); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*quiescentBenchSlots), "ns/slot")
}

func benchQuiescentCrossbar(b *testing.B, seq packet.Sequence, n int, mk func() switchsim.CrossbarPolicy) {
	cfg := quiescentBenchCfg(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := switchsim.RunCrossbar(cfg, mk(), seq); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*quiescentBenchSlots), "ns/slot")
}

func BenchmarkQuiescentCIOQGM16(b *testing.B) {
	benchQuiescentCIOQ(b, quiescentBenchSeq(16), 16, func() switchsim.CIOQPolicy { return &core.GM{} })
}
func BenchmarkQuiescentCIOQGMRotating16(b *testing.B) {
	benchQuiescentCIOQ(b, quiescentBenchSeq(16), 16, func() switchsim.CIOQPolicy { return &core.GM{Order: core.Rotating} })
}
func BenchmarkQuiescentCIOQPG16(b *testing.B) {
	benchQuiescentCIOQ(b, quiescentBenchSeq(16), 16, func() switchsim.CIOQPolicy { return &core.PG{} })
}
func BenchmarkQuiescentCIOQRoundRobin16(b *testing.B) {
	benchQuiescentCIOQ(b, quiescentBenchSeq(16), 16, func() switchsim.CIOQPolicy { return &core.RoundRobin{} })
}
func BenchmarkQuiescentCrossbarCGU16(b *testing.B) {
	benchQuiescentCrossbar(b, quiescentBenchSeq(16), 16, func() switchsim.CrossbarPolicy { return &core.CGU{} })
}
func BenchmarkQuiescentCrossbarCPG16(b *testing.B) {
	benchQuiescentCrossbar(b, quiescentBenchSeq(16), 16, func() switchsim.CrossbarPolicy { return &core.CPG{} })
}

// BenchmarkCrossDrain* quantify dense crosspoint-drain time: CrossDrain's
// conflict-free all-to-all rotations stack two packets on every (input,
// output) crosspoint, the input side empties within a couple of cycles,
// and the remainder of every event window is spent draining the full
// n x n crosspoint matrix at one packet per output per cycle — the
// crossbar engines' per-output crosspoint-scan cost in isolation.
func benchCrossDrainCrossbar(b *testing.B, n int, mk func() switchsim.CrossbarPolicy) {
	const slots = 100_000
	cfg := switchsim.Config{
		Inputs: n, Outputs: n, InputBuf: 4, OutputBuf: 4, CrossBuf: 2,
		Speedup: 1, Slots: slots,
		Dense: benchDense(),
	}
	rng := rand.New(rand.NewSource(4))
	seq := packet.CrossDrain{OffMean: 200, Depth: 2, Values: packet.UniformValues{Hi: 20}}.
		Generate(rng, n, n, slots)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := switchsim.RunCrossbar(cfg, mk(), seq); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*slots), "ns/slot")
}

func BenchmarkCrossDrainCrossbarCGU16(b *testing.B) {
	benchCrossDrainCrossbar(b, 16, func() switchsim.CrossbarPolicy { return &core.CGU{} })
}
func BenchmarkCrossDrainCrossbarCPG16(b *testing.B) {
	benchCrossDrainCrossbar(b, 16, func() switchsim.CrossbarPolicy { return &core.CPG{} })
}

func BenchmarkAdversarialCIOQGM16(b *testing.B) {
	benchQuiescentCIOQ(b, adversarialBenchSeq(16), 16, func() switchsim.CIOQPolicy { return &core.GM{} })
}
func BenchmarkAdversarialCIOQPG16(b *testing.B) {
	benchQuiescentCIOQ(b, adversarialBenchSeq(16), 16, func() switchsim.CIOQPolicy { return &core.PG{} })
}

// ---------------------------------------------------------------------------
// Fleet benchmarks: Monte-Carlo batches of B independent seeded instances
// of one small switch, the ratio-harness regime. The same names measure
// both backends: the columnar batched engine (internal/fleet) by default,
// or a loop of per-instance scalar runs with QSWITCH_NOFLEET=1
// (BENCH_4.json holds the looped-scalar baseline, BENCH_4_post.json the
// fleet runs). ns/slot is aggregate: elapsed / (B × slots).
// ---------------------------------------------------------------------------

func fleetLoopedScalar() bool { return os.Getenv("QSWITCH_NOFLEET") != "" }

func fleetBenchSeqs(batch, n, slots int) []packet.Sequence {
	seqs := make([]packet.Sequence, batch)
	for k := range seqs {
		rng := rand.New(rand.NewSource(int64(k + 1)))
		seqs[k] = packet.Bernoulli{Load: 1.5}.Generate(rng, n, n, slots)
	}
	return seqs
}

// fleetBenchSlots is the per-instance horizon: short seeded runs are the
// Monte-Carlo regime the fleet engine exists for (ratio estimations run
// 16-80-slot instances), and the looped-scalar baseline pays its per-run
// switch construction at the same amortization the ratio harness does.
const fleetBenchSlots = 16

func benchFleetCIOQ(b *testing.B, batch int, mk func() switchsim.CIOQPolicy) {
	const n, slots = 16, fleetBenchSlots
	cfg := switchsim.Config{
		Inputs: n, Outputs: n, InputBuf: 2, OutputBuf: 2,
		Speedup: 2, Slots: slots,
	}
	seqs := fleetBenchSeqs(batch, n, slots)
	b.ReportAllocs()
	if fleetLoopedScalar() {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, seq := range seqs {
				if _, err := switchsim.RunCIOQ(cfg, mk(), seq); err != nil {
					b.Fatal(err)
				}
			}
		}
	} else {
		// The fleet's storage amortizes across batches (the ratio harness
		// shape): construct once, Reset per batch.
		fl, err := fleet.NewCIOQFleet(cfg, mk, batch)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := fl.Reset(seqs); err != nil {
				b.Fatal(err)
			}
			for fl.Step() {
			}
			if _, err := fl.Results(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch*slots), "ns/slot")
}

func benchFleetCrossbar(b *testing.B, batch int, mk func() switchsim.CrossbarPolicy) {
	const n, slots = 16, fleetBenchSlots
	cfg := switchsim.Config{
		Inputs: n, Outputs: n, InputBuf: 2, OutputBuf: 2, CrossBuf: 1,
		Speedup: 2, Slots: slots,
	}
	seqs := fleetBenchSeqs(batch, n, slots)
	b.ReportAllocs()
	if fleetLoopedScalar() {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, seq := range seqs {
				if _, err := switchsim.RunCrossbar(cfg, mk(), seq); err != nil {
					b.Fatal(err)
				}
			}
		}
	} else {
		fl, err := fleet.NewCrossbarFleet(cfg, mk, batch)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := fl.Reset(seqs); err != nil {
				b.Fatal(err)
			}
			for fl.Step() {
			}
			if _, err := fl.Results(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch*slots), "ns/slot")
}

func BenchmarkFleetCIOQGM16B16(b *testing.B) {
	benchFleetCIOQ(b, 16, func() switchsim.CIOQPolicy { return &core.GM{} })
}
func BenchmarkFleetCIOQGM16B64(b *testing.B) {
	benchFleetCIOQ(b, 64, func() switchsim.CIOQPolicy { return &core.GM{} })
}
func BenchmarkFleetCIOQGM16B256(b *testing.B) {
	benchFleetCIOQ(b, 256, func() switchsim.CIOQPolicy { return &core.GM{} })
}
func BenchmarkFleetCIOQGMRotating16B256(b *testing.B) {
	benchFleetCIOQ(b, 256, func() switchsim.CIOQPolicy { return &core.GM{Order: core.Rotating} })
}
func BenchmarkFleetCIOQRoundRobin16B256(b *testing.B) {
	benchFleetCIOQ(b, 256, func() switchsim.CIOQPolicy { return &core.RoundRobin{} })
}
func BenchmarkFleetCrossbarCGU16B16(b *testing.B) {
	benchFleetCrossbar(b, 16, func() switchsim.CrossbarPolicy { return &core.CGU{} })
}
func BenchmarkFleetCrossbarCGU16B64(b *testing.B) {
	benchFleetCrossbar(b, 64, func() switchsim.CrossbarPolicy { return &core.CGU{} })
}
func BenchmarkFleetCrossbarCGU16B256(b *testing.B) {
	benchFleetCrossbar(b, 256, func() switchsim.CrossbarPolicy { return &core.CGU{} })
}

// ---------------------------------------------------------------------------
// Weighted and wide fleet benchmarks: the full-coverage columnar engine —
// weighted kernels (PG/CPG/KRMWM, ByValue rings, preemptive transfers) at
// n=64, and the multi-word wide engine at n=256 (occupancy rows spanning
// four words, batched counting-sort matching). Same convention as above:
// QSWITCH_NOFLEET=1 measures the looped-scalar baseline (BENCH_9.json),
// default measures the fleet (BENCH_9_post.json). Run the KRMWM pair
// with -benchtime 1x: the Hungarian oracle is cubic in ports on both
// backends.
// ---------------------------------------------------------------------------

func fleetWeightedBenchSeqs(batch, n, slots int) []packet.Sequence {
	seqs := make([]packet.Sequence, batch)
	for k := range seqs {
		rng := rand.New(rand.NewSource(int64(k + 1)))
		seqs[k] = packet.Bernoulli{Load: 1.5, Values: packet.UniformValues{Hi: 100}}.
			Generate(rng, n, n, slots)
	}
	return seqs
}

func benchFleetWeightedCIOQ(b *testing.B, n, batch int, mk func() switchsim.CIOQPolicy) {
	const slots = fleetBenchSlots
	cfg := switchsim.Config{
		Inputs: n, Outputs: n, InputBuf: 2, OutputBuf: 2,
		Speedup: 2, Slots: slots,
	}
	seqs := fleetWeightedBenchSeqs(batch, n, slots)
	b.ReportAllocs()
	if fleetLoopedScalar() {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, seq := range seqs {
				if _, err := switchsim.RunCIOQ(cfg, mk(), seq); err != nil {
					b.Fatal(err)
				}
			}
		}
	} else {
		// The runner dispatches to the narrow engine at n <= 64 and the
		// wide engine beyond, reusing the fleet across iterations.
		r := fleet.NewCIOQRunner(mk)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Run(cfg, seqs); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch*slots), "ns/slot")
}

func benchFleetWeightedCrossbar(b *testing.B, n, batch int, mk func() switchsim.CrossbarPolicy) {
	const slots = fleetBenchSlots
	cfg := switchsim.Config{
		Inputs: n, Outputs: n, InputBuf: 2, OutputBuf: 2, CrossBuf: 1,
		Speedup: 2, Slots: slots,
	}
	seqs := fleetWeightedBenchSeqs(batch, n, slots)
	b.ReportAllocs()
	if fleetLoopedScalar() {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, seq := range seqs {
				if _, err := switchsim.RunCrossbar(cfg, mk(), seq); err != nil {
					b.Fatal(err)
				}
			}
		}
	} else {
		r := fleet.NewCrossbarRunner(mk)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Run(cfg, seqs); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch*slots), "ns/slot")
}

func BenchmarkFleetWeightedPG64B64(b *testing.B) {
	benchFleetWeightedCIOQ(b, 64, 64, func() switchsim.CIOQPolicy { return &core.PG{} })
}
func BenchmarkFleetWeightedKRMWM64B16(b *testing.B) {
	benchFleetWeightedCIOQ(b, 64, 16, func() switchsim.CIOQPolicy { return &core.KRMWM{} })
}
func BenchmarkFleetWeightedCPG64B64(b *testing.B) {
	benchFleetWeightedCrossbar(b, 64, 64, func() switchsim.CrossbarPolicy { return &core.CPG{} })
}
func BenchmarkFleetWidePG256B16(b *testing.B) {
	benchFleetWeightedCIOQ(b, 256, 16, func() switchsim.CIOQPolicy { return &core.PG{} })
}
func BenchmarkFleetWideKRMWM256B4(b *testing.B) {
	benchFleetWeightedCIOQ(b, 256, 4, func() switchsim.CIOQPolicy { return &core.KRMWM{} })
}
func BenchmarkFleetWideGM256B16(b *testing.B) {
	benchFleetWeightedCIOQ(b, 256, 16, func() switchsim.CIOQPolicy { return &core.GM{} })
}
func BenchmarkFleetWideCPG256B16(b *testing.B) {
	benchFleetWeightedCrossbar(b, 256, 16, func() switchsim.CrossbarPolicy { return &core.CPG{} })
}

// BenchmarkFleetRatioGM16B256 times the wired path end to end: RunFleet
// vs RunParallel(workers=1) on the same seeded ratio estimation, upper
// bound judged (the exact DP would dominate). QSWITCH_NOFLEET=1 selects
// the scalar backend; QSWITCH_MCMF=1 selects the retained min-cost-flow
// judge (the pre-refactor reference; BENCH_5.json holds that baseline,
// BENCH_5_post.json the combinatorial judge).
func BenchmarkFleetRatioGM16B256(b *testing.B) {
	cfg := switchsim.Config{
		Inputs: 16, Outputs: 16, InputBuf: 2, OutputBuf: 2,
		Speedup: 1, Slots: 64,
	}
	gen := packet.Bernoulli{Load: 1.2}
	factory := func() switchsim.CIOQPolicy { return &core.GM{} }
	judge := ratio.JudgeFactory(ratio.UpperBoundCIOQ)
	if judgeFlowReference() {
		judge = flowReferenceJudge(false)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		if fleetLoopedScalar() {
			_, err = ratio.RunParallel(context.Background(), cfg, ratio.CIOQAlg(factory), judge, gen, 1, 256, 1)
		} else {
			_, err = ratio.RunFleet(context.Background(), cfg, ratio.CIOQFleetAlg(factory), judge, gen, 1, 256, 1, 256)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Judge benchmarks: the offline upper-bound solves that dominate
// exact-judged Monte-Carlo estimation. The same names measure both judge
// generations: the combinatorial epoch solver by default, or the retained
// time-expanded min-cost-flow reference with QSWITCH_MCMF=1 (BENCH_5.json
// holds the flow baseline, BENCH_5_post.json the epoch solver; record the
// flow runs with -benchtime 1x — on million-slot traces one reference
// solve takes minutes, which is precisely the point).
// ---------------------------------------------------------------------------

func judgeFlowReference() bool { return os.Getenv("QSWITCH_MCMF") != "" }

// flowReferenceJudge adapts the retained MCMF bound to a ratio judge
// factory for the before/after comparison.
func flowReferenceJudge(crossbar bool) ratio.JudgeFactory {
	return func() ratio.Judge {
		return ratio.JudgeFunc(func(cfg switchsim.Config, seq packet.Sequence) (int64, error) {
			return offline.CombinedUpperBoundFlow(cfg, seq, crossbar)
		})
	}
}

func benchJudgeUB(b *testing.B, cfg switchsim.Config, seq packet.Sequence, crossbar bool) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if judgeFlowReference() {
			_, err = offline.CombinedUpperBoundFlow(cfg, seq, crossbar)
		} else {
			_, err = offline.CombinedUpperBound(cfg, seq, crossbar)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJudgeSparseUB8 judges one 10^6-slot sparse trace (n=8,
// PoissonBurst, ~16 packets per input): the regime PR 2–3 made cheap to
// simulate and the flow judge could not touch — its time-expanded graph
// costs 2·10^6 nodes per port regardless of how few packets arrive.
func BenchmarkJudgeSparseUB8(b *testing.B) {
	cfg := switchsim.Config{Inputs: 8, Outputs: 8, InputBuf: 4, OutputBuf: 4,
		Speedup: 1, Slots: sparseBenchSlots}
	rng := rand.New(rand.NewSource(21))
	seq := packet.PoissonBurst{OffMean: 250_000, BurstMean: 4,
		Values: packet.UniformValues{Hi: 40}}.Generate(rng, 8, 8, sparseBenchSlots)
	benchJudgeUB(b, cfg, seq, false)
}

// BenchmarkJudgeQuiescentUB8 is the converging-burst (BurstyBlocking)
// shape on the same 10^6-slot horizon, judged as a crossbar relaxation.
func BenchmarkJudgeQuiescentUB8(b *testing.B) {
	cfg := switchsim.Config{Inputs: 8, Outputs: 8, InputBuf: 4, OutputBuf: 8,
		CrossBuf: 2, Speedup: 2, Slots: sparseBenchSlots}
	rng := rand.New(rand.NewSource(22))
	seq := packet.BurstyBlocking{OffMean: 200_000, Burst: 4, Fanin: 4}.
		Generate(rng, 8, 8, sparseBenchSlots)
	benchJudgeUB(b, cfg, seq, true)
}

// BenchmarkJudgeDenseUB8 judges a dense weighted 2000-slot trace: here the
// epoch axis is as long as the slot axis, so the win is the O(K log K)
// greedy against per-packet shortest paths, not timeline compression.
func BenchmarkJudgeDenseUB8(b *testing.B) {
	cfg := switchsim.Config{Inputs: 8, Outputs: 8, InputBuf: 4, OutputBuf: 4,
		Speedup: 1, Slots: 2000}
	rng := rand.New(rand.NewSource(23))
	seq := packet.Bernoulli{Load: 1.0, Values: packet.UniformValues{Hi: 50}}.
		Generate(rng, 8, 8, 2000)
	benchJudgeUB(b, cfg, seq, false)
}

// BenchmarkJudgeMonteCarloUB16 is the FleetRatio judging shape in
// isolation: 256 seeded 64-slot 16x16 sequences through one reused judge,
// the per-chunk work a RunFleet worker overlaps with fleet stepping.
func BenchmarkJudgeMonteCarloUB16(b *testing.B) {
	cfg := switchsim.Config{Inputs: 16, Outputs: 16, InputBuf: 2, OutputBuf: 2,
		Speedup: 1, Slots: 64}
	seqs := make([]packet.Sequence, 256)
	for k := range seqs {
		rng := rand.New(rand.NewSource(int64(k + 1)))
		seqs[k] = packet.Bernoulli{Load: 1.2}.Generate(rng, 16, 16, 64)
	}
	judge := ratio.JudgeFactory(ratio.UpperBoundCIOQ)
	if judgeFlowReference() {
		judge = flowReferenceJudge(false)
	}
	j := judge()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, seq := range seqs {
			if _, err := j.Judge(cfg, seq); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAdversaryAdaptiveGM64 times the fully adaptive anti-greedy
// loop (stepper-driven, observing the policy's queues every slot): its
// per-phase drain and catch-up stretch now rides the quiescent StepIdle
// jump. QSWITCH_DENSE=1 disables stepper jumps for the baseline.
func BenchmarkAdversaryAdaptiveGM64(b *testing.B) {
	cfg := adversary.IQLowerBoundCfg(64)
	cfg.Dense = benchDense()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := adversary.AdaptiveAntiGreedy(cfg, &core.GM{}, 48); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdversarySearchGM times the local-search fuzzer hunting
// high-ratio instances against GM on long sparse horizons, judged by the
// exact unit-value optimum — the E8 workload at search scale. The policy
// side of every candidate evaluation rides the fast path.
func BenchmarkAdversarySearchGM(b *testing.B) {
	cfg := switchsim.Config{
		Inputs: 2, Outputs: 2, InputBuf: 1, OutputBuf: 4, CrossBuf: 1,
		Speedup: 2, Dense: benchDense(),
	}
	eval := func(seq packet.Sequence) (float64, bool) {
		r, ok, err := ratio.Single(cfg,
			ratio.CIOQAlg(func() switchsim.CIOQPolicy { return &core.GM{} }),
			ratio.ExactUnitCIOQ(), seq)
		if err != nil {
			return 0, false
		}
		return r, ok
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adversary.Search(adversary.SearchOptions{
			Inputs: 2, Outputs: 2, MaxSlots: 600, MaxPackets: 24,
			MaxValue: 1, Iterations: 120, Seed: int64(i + 1), Restarts: 1,
		}, eval)
	}
}

// ---------------------------------------------------------------------------
// Streaming-engine benchmarks: a 10^8-slot lazily generated sparse workload
// per iteration through RunCIOQStream/RunCrossbarStream — a horizon whose
// materialized form is hundreds of megabytes of Packet structs. The same
// names measure both strategies: streaming by default, or generate-the-
// whole-sequence-then-run with QSWITCH_MATERIALIZE=1 (BENCH_7.json holds
// the materialized baseline, BENCH_7_post.json the streamed runs; record
// with -benchtime 1x). B/op is half the story: the materialized side must
// hold the full sequence, the streamed side runs in O(window) regardless
// of the horizon.
// ---------------------------------------------------------------------------

func streamMaterialized() bool { return os.Getenv("QSWITCH_MATERIALIZE") != "" }

const streamBenchSlots = 100_000_000

// streamBenchDiurnal is a day/night workload whose silent troughs span
// tens of thousands of slots: the streaming engines ride the same idle
// jumps as the materialized event-driven engine, answered from the stream
// head instead of a slice cursor.
func streamBenchDiurnal() packet.Generator {
	return packet.Diurnal{Load: 0.005, Period: 50_000, Amplitude: 4,
		Values: packet.UniformValues{Hi: 20}}
}

// streamBenchFlowMix opens sparse flows whose packet trains arrive in
// line-rate runs separated by long inter-flow gaps — the flow-level shape
// with an open-flow state of a few bytes per input.
func streamBenchFlowMix() packet.Generator {
	return packet.FlowMix{FlowRate: 0.0002, Values: packet.UniformValues{Hi: 20}}
}

func benchStreamCIOQ(b *testing.B, gen packet.Generator, mk func() switchsim.CIOQPolicy) {
	const n = 4
	cfg := switchsim.Config{
		Inputs: n, Outputs: n, InputBuf: 4, OutputBuf: 8,
		Speedup: 2, Slots: streamBenchSlots,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if streamMaterialized() {
			seq := gen.Generate(rand.New(rand.NewSource(7)), n, n, streamBenchSlots)
			_, err = switchsim.RunCIOQ(cfg, mk(), seq)
		} else {
			src := packet.StreamTraffic(gen, rand.New(rand.NewSource(7)), n, n, streamBenchSlots)
			_, err = switchsim.RunCIOQStream(cfg, mk(), src)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/streamBenchSlots, "ns/slot")
}

func benchStreamCrossbar(b *testing.B, gen packet.Generator, mk func() switchsim.CrossbarPolicy) {
	const n = 4
	cfg := switchsim.Config{
		Inputs: n, Outputs: n, InputBuf: 4, OutputBuf: 8, CrossBuf: 2,
		Speedup: 2, Slots: streamBenchSlots,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if streamMaterialized() {
			seq := gen.Generate(rand.New(rand.NewSource(7)), n, n, streamBenchSlots)
			_, err = switchsim.RunCrossbar(cfg, mk(), seq)
		} else {
			src := packet.StreamTraffic(gen, rand.New(rand.NewSource(7)), n, n, streamBenchSlots)
			_, err = switchsim.RunCrossbarStream(cfg, mk(), src)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/streamBenchSlots, "ns/slot")
}

func BenchmarkStreamCIOQGMDiurnal4(b *testing.B) {
	benchStreamCIOQ(b, streamBenchDiurnal(), func() switchsim.CIOQPolicy { return &core.GM{} })
}
func BenchmarkStreamCIOQPGDiurnal4(b *testing.B) {
	benchStreamCIOQ(b, streamBenchDiurnal(), func() switchsim.CIOQPolicy { return &core.PG{} })
}
func BenchmarkStreamCIOQGMFlowMix4(b *testing.B) {
	benchStreamCIOQ(b, streamBenchFlowMix(), func() switchsim.CIOQPolicy { return &core.GM{} })
}
func BenchmarkStreamCrossbarCGUDiurnal4(b *testing.B) {
	benchStreamCrossbar(b, streamBenchDiurnal(), func() switchsim.CrossbarPolicy { return &core.CGU{} })
}
func BenchmarkStreamCrossbarCPGFlowMix4(b *testing.B) {
	benchStreamCrossbar(b, streamBenchFlowMix(), func() switchsim.CrossbarPolicy { return &core.CPG{} })
}

// ---------------------------------------------------------------------------
// BENCH_8: paired fleets vs independent sampling. Both arms drive the same
// policy-vs-policy comparison (GM vs PG on a 4x4 CIOQ switch) to the same
// CI half-width target on the mean ratio difference, and report how many
// switch-slots of simulation they spent getting there. The paired arm
// shares workloads and judge calls across policies (common random
// numbers); the independent arm gives each policy its own seed stream and
// pays the full between-workload variance. Regenerate the JSON records
// with:
//
//	go test -run xxx -bench 'PairedDiffCIOQIndependent' -benchmem -benchtime 1x . \
//	  | go run ./cmd/benchjson -label independent-sampling > BENCH_8.json
//	go test -run xxx -bench 'PairedDiffCIOQ$' -benchmem -benchtime 1x . \
//	  | go run ./cmd/benchjson -label paired-fleet > BENCH_8_post.json
// ---------------------------------------------------------------------------

const (
	pairedBenchTarget = 0.008 // CI half-width target on mean(PG/OPT) - mean(GM/OPT)
	pairedBenchConf   = 0.95
	pairedBenchBudget = 8192 // seeds per arm before giving up
	pairedBenchChunk  = 16   // stopping-rule granularity (seeds)
	pairedBenchBatch  = 32   // fleet sub-batch
)

func pairedBenchSetup() (switchsim.Config, packet.Generator, []ratio.PairedPolicy) {
	cfg := switchsim.Config{Inputs: 4, Outputs: 4, InputBuf: 2, OutputBuf: 2, Speedup: 1, Slots: 32}
	gen := packet.Bernoulli{Load: 1.5}
	pols := []ratio.PairedPolicy{
		{Name: "gm", Alg: ratio.CIOQFleetAlg(func() switchsim.CIOQPolicy { return &core.GM{} })},
		{Name: "pg", Alg: ratio.CIOQFleetAlg(func() switchsim.CIOQPolicy { return &core.PG{} })},
	}
	return cfg, gen, pols
}

// BenchmarkPairedDiffCIOQ measures the paired (common-random-numbers)
// arm: RunPaired stops once the paired-difference CI clears the target.
func BenchmarkPairedDiffCIOQ(b *testing.B) {
	cfg, gen, pols := pairedBenchSetup()
	tgt := stats.Target{AbsWidth: pairedBenchTarget, Confidence: pairedBenchConf}
	b.ReportAllocs()
	var slots int64
	var seeds int
	for i := 0; i < b.N; i++ {
		pe, err := ratio.RunPaired(context.Background(), cfg, pols, ratio.UpperBoundCIOQ, gen, 1,
			ratio.PairedOptions{Batch: pairedBenchBatch, Chunk: pairedBenchChunk, Target: tgt, MaxRuns: pairedBenchBudget})
		if err != nil {
			b.Fatal(err)
		}
		if !pe.TargetMet {
			b.Fatalf("paired arm missed the target within %d seeds (hw=%v)", pairedBenchBudget, pe.Diffs[0].HalfWidth)
		}
		slots, seeds = pe.SlotsSimulated, pe.Seeds
	}
	b.ReportMetric(float64(slots), "slots-to-target")
	b.ReportMetric(float64(seeds), "seeds-to-target")
}

// BenchmarkPairedDiffCIOQIndependent measures the control arm: each
// policy samples its own disjoint seed stream, and the run stops when the
// Welch CI on the difference of the two independent means clears the
// same target. Slots are charged with the same WorkloadSlots accounting
// PairedEstimate.SlotsSimulated uses.
func BenchmarkPairedDiffCIOQIndependent(b *testing.B) {
	cfg, gen, pols := pairedBenchSetup()
	b.ReportAllocs()
	var slots int64
	var seeds int
	for i := 0; i < b.N; i++ {
		var err error
		slots, seeds, err = independentDiffToTarget(cfg, gen, pols)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(slots), "slots-to-target")
	b.ReportMetric(float64(seeds), "seeds-to-target")
}

// independentDiffToTarget advances two independent fleet-backed seed
// streams (disjoint base seeds, one per policy) in lockstep chunks until
// the Welch two-sample CI half-width on the difference of means reaches
// pairedBenchTarget, and returns (switch-slots spent, seeds issued).
func independentDiffToTarget(cfg switchsim.Config, gen packet.Generator, pols []ratio.PairedPolicy) (int64, int, error) {
	const seedA, seedB = 1, 1 << 20 // disjoint streams
	ctx := context.Background()
	evalA := ratio.FleetChunks(cfg, pols[0].Alg, ratio.UpperBoundCIOQ, gen, seedA, pairedBenchBatch)
	evalB := ratio.FleetChunks(cfg, pols[1].Alg, ratio.UpperBoundCIOQ, gen, seedB, pairedBenchBatch)
	var accA, accB stats.Estimator
	fold := func(acc *stats.Estimator, outs []ratio.SeedOutcome) error {
		for _, o := range outs {
			if o.Err != nil {
				return o.Err
			}
			if !o.Skipped {
				acc.Add(o.Ratio)
			}
		}
		return nil
	}
	n := 0
	for n < pairedBenchBudget {
		k1 := n + pairedBenchChunk
		if k1 > pairedBenchBudget {
			k1 = pairedBenchBudget
		}
		outsA, err := evalA(ctx, n, k1)
		if err != nil {
			return 0, 0, err
		}
		outsB, err := evalB(ctx, n, k1)
		if err != nil {
			return 0, 0, err
		}
		if err := fold(&accA, outsA); err != nil {
			return 0, 0, err
		}
		if err := fold(&accB, outsB); err != nil {
			return 0, 0, err
		}
		n = k1
		if welchDiffHalfWidth(&accA, &accB) <= pairedBenchTarget {
			break
		}
	}
	slots := ratio.WorkloadSlots(cfg, gen, seedA, n) + ratio.WorkloadSlots(cfg, gen, seedB, n)
	return slots, 2 * n, nil
}

// welchDiffHalfWidth is the CI half-width on mean(B) - mean(A) for two
// independent samples, using the conservative min(nA,nB)-1 df. It mirrors
// the paired stopping rule's MinSamples floor (returns +Inf below it).
func welchDiffHalfWidth(a, bAcc *stats.Estimator) float64 {
	nA, nB := a.N(), bAcc.N()
	if nA < 8 || nB < 8 {
		return math.Inf(1)
	}
	df := nA - 1
	if nB < nA {
		df = nB - 1
	}
	se := math.Sqrt(a.Var()/float64(nA) + bAcc.Var()/float64(nB))
	return stats.TCrit(df, pairedBenchConf) * se
}

// ---------------------------------------------------------------------------
// Observability layer benchmarks. The counter benchmarks price the probe
// primitives themselves (enabled and disabled paths); the probed pipeline
// benchmark runs E1 with the full probe set installed and reports the
// obs-derived workload counters — quiescent-jump rate, judge solves —
// alongside ns/op, so committed benchmark baselines record what the
// workload did, not just how long it took.
// ---------------------------------------------------------------------------

func BenchmarkObsCounterAdd(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter("bench_ops_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsCounterAddDisabled(b *testing.B) {
	// The probes-uninstalled path: a nil counter must cost one
	// predictable branch and allocate nothing.
	var c *obs.Counter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	reg := obs.NewRegistry()
	h := reg.Histogram("bench_seconds", 0.001, 0.01, 0.1, 1, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) / 100)
	}
}

func BenchmarkObsProbedE1(b *testing.B) {
	exp, ok := experiments.ByID("e1")
	if !ok {
		b.Fatal("e1 missing")
	}
	reg := obs.NewRegistry()
	wire.Up(reg)
	defer wire.Down()
	before := reg.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(experiments.Options{Quick: true, Seed: int64(i + 1), Probes: reg}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	delta := obs.DiffSnapshot(before, reg.Snapshot())
	n := float64(b.N)
	b.ReportMetric(delta[obs.MetricEngineRuns]/n, "engineruns/op")
	b.ReportMetric(delta[obs.MetricJudgeSolves]/n+delta[obs.MetricJudgeExactSolves]/n, "judgesolves/op")
	b.ReportMetric(delta[obs.MetricEngineJumps]/n, "jumps/op")
	if slots := delta[obs.MetricEngineSlots]; slots > 0 {
		b.ReportMetric(delta[obs.MetricEngineJumpedSlots]/slots, "jumpedfrac")
	}
}
