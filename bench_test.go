package qswitch

import (
	"bytes"
	"math/rand"
	"os"
	"testing"

	"qswitch/internal/core"
	"qswitch/internal/experiments"
	"qswitch/internal/matching"
	"qswitch/internal/offline"
	"qswitch/internal/packet"
	"qswitch/internal/queue"
	"qswitch/internal/switchsim"
)

// ---------------------------------------------------------------------------
// One benchmark per experiment (E1-E12). Each iteration regenerates the
// experiment's tables in quick mode; `go test -bench .` therefore exercises
// the entire reproduction pipeline and reports how expensive each
// table/figure is to produce.
// ---------------------------------------------------------------------------

func benchExperiment(b *testing.B, id string) {
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(experiments.Options{Quick: true, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1GMRatio(b *testing.B)           { benchExperiment(b, "e1") }
func BenchmarkE2PGRatio(b *testing.B)           { benchExperiment(b, "e2") }
func BenchmarkE3CGURatio(b *testing.B)          { benchExperiment(b, "e3") }
func BenchmarkE4CPGParams(b *testing.B)         { benchExperiment(b, "e4") }
func BenchmarkE5MatchingCost(b *testing.B)      { benchExperiment(b, "e5") }
func BenchmarkE6Speedup(b *testing.B)           { benchExperiment(b, "e6") }
func BenchmarkE7Buffers(b *testing.B)           { benchExperiment(b, "e7") }
func BenchmarkE8Adversarial(b *testing.B)       { benchExperiment(b, "e8") }
func BenchmarkE9CIOQvsCrossbar(b *testing.B)    { benchExperiment(b, "e9") }
func BenchmarkE10ValueDists(b *testing.B)       { benchExperiment(b, "e10") }
func BenchmarkE11Rect(b *testing.B)             { benchExperiment(b, "e11") }
func BenchmarkE12MaximalVsMaximum(b *testing.B) { benchExperiment(b, "e12") }
func BenchmarkE13EdgeOrder(b *testing.B)        { benchExperiment(b, "e13") }
func BenchmarkE14Randomization(b *testing.B)    { benchExperiment(b, "e14") }
func BenchmarkE15FIFO(b *testing.B)             { benchExperiment(b, "e15") }
func BenchmarkE16IQModel(b *testing.B)          { benchExperiment(b, "e16") }

// ---------------------------------------------------------------------------
// Micro-benchmarks: per-slot policy cost on realistic switch sizes. These
// back the paper's efficiency claim with end-to-end numbers (E5 measures
// the matching engines in isolation).
// ---------------------------------------------------------------------------

func benchCIOQPolicy(b *testing.B, n int, mk func() switchsim.CIOQPolicy, weighted bool) {
	const slots = 200
	cfg := switchsim.Config{
		Inputs: n, Outputs: n, InputBuf: 4, OutputBuf: 4,
		Speedup: 1, Slots: slots,
	}
	var vd packet.ValueDist = packet.UnitValues{}
	if weighted {
		vd = packet.UniformValues{Hi: 100}
	}
	rng := rand.New(rand.NewSource(1))
	seq := packet.Bernoulli{Load: 0.95, Values: vd}.Generate(rng, n, n, slots)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := switchsim.RunCIOQ(cfg, mk(), seq); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*slots), "ns/slot")
}

func benchCrossbarPolicy(b *testing.B, n int, mk func() switchsim.CrossbarPolicy, weighted bool) {
	const slots = 200
	cfg := switchsim.Config{
		Inputs: n, Outputs: n, InputBuf: 4, OutputBuf: 4, CrossBuf: 2,
		Speedup: 1, Slots: slots,
	}
	var vd packet.ValueDist = packet.UnitValues{}
	if weighted {
		vd = packet.UniformValues{Hi: 100}
	}
	rng := rand.New(rand.NewSource(1))
	seq := packet.Bernoulli{Load: 0.95, Values: vd}.Generate(rng, n, n, slots)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := switchsim.RunCrossbar(cfg, mk(), seq); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*slots), "ns/slot")
}

func BenchmarkCIOQGM32(b *testing.B) {
	benchCIOQPolicy(b, 32, func() switchsim.CIOQPolicy { return &core.GM{} }, false)
}
func BenchmarkCIOQGM64(b *testing.B) {
	benchCIOQPolicy(b, 64, func() switchsim.CIOQPolicy { return &core.GM{} }, false)
}
func BenchmarkCIOQGMRotating64(b *testing.B) {
	benchCIOQPolicy(b, 64, func() switchsim.CIOQPolicy { return &core.GM{Order: core.Rotating} }, false)
}
func BenchmarkCIOQKRMM32(b *testing.B) {
	benchCIOQPolicy(b, 32, func() switchsim.CIOQPolicy { return &core.KRMM{} }, false)
}
func BenchmarkCIOQKRMM64(b *testing.B) {
	benchCIOQPolicy(b, 64, func() switchsim.CIOQPolicy { return &core.KRMM{} }, false)
}
func BenchmarkCIOQPG32(b *testing.B) {
	benchCIOQPolicy(b, 32, func() switchsim.CIOQPolicy { return &core.PG{} }, true)
}
func BenchmarkCIOQPG64(b *testing.B) {
	benchCIOQPolicy(b, 64, func() switchsim.CIOQPolicy { return &core.PG{} }, true)
}
func BenchmarkCIOQKRMWM32(b *testing.B) {
	benchCIOQPolicy(b, 32, func() switchsim.CIOQPolicy { return &core.KRMWM{} }, true)
}
func BenchmarkCIOQRoundRobin32(b *testing.B) {
	benchCIOQPolicy(b, 32, func() switchsim.CIOQPolicy { return &core.RoundRobin{} }, false)
}
func BenchmarkCIOQRoundRobin64(b *testing.B) {
	benchCIOQPolicy(b, 64, func() switchsim.CIOQPolicy { return &core.RoundRobin{} }, false)
}
func BenchmarkCrossbarCGU32(b *testing.B) {
	benchCrossbarPolicy(b, 32, func() switchsim.CrossbarPolicy { return &core.CGU{} }, false)
}
func BenchmarkCrossbarCGU64(b *testing.B) {
	benchCrossbarPolicy(b, 64, func() switchsim.CrossbarPolicy { return &core.CGU{} }, false)
}
func BenchmarkCrossbarCPG32(b *testing.B) {
	benchCrossbarPolicy(b, 32, func() switchsim.CrossbarPolicy { return &core.CPG{} }, true)
}
func BenchmarkCrossbarCPG64(b *testing.B) {
	benchCrossbarPolicy(b, 64, func() switchsim.CrossbarPolicy { return &core.CPG{} }, true)
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.
// ---------------------------------------------------------------------------

func BenchmarkQueuePushPreempt(b *testing.B) {
	q := queue.New(16, queue.ByValue)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.PushPreempt(packet.Packet{ID: int64(i), Value: rng.Int63n(1000) + 1})
		if q.Len() == 16 && i%16 == 0 {
			q.PopHead()
		}
	}
}

func benchMatchingEngine(b *testing.B, n int, engine func(edges []matching.Edge, adj [][]int, w [][]int64)) {
	rng := rand.New(rand.NewSource(2))
	var edges []matching.Edge
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				edges = append(edges, matching.Edge{U: i, V: j, W: rng.Int63n(100) + 1})
			}
		}
	}
	adj := matching.AdjFromEdges(n, edges)
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
	}
	for _, e := range edges {
		w[e.U][e.V] = e.W
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine(edges, adj, w)
	}
}

func BenchmarkMatchingGreedy64(b *testing.B) {
	benchMatchingEngine(b, 64, func(e []matching.Edge, _ [][]int, _ [][]int64) {
		matching.GreedyMaximal(64, 64, e)
	})
}
func BenchmarkMatchingGreedyWeighted64(b *testing.B) {
	benchMatchingEngine(b, 64, func(e []matching.Edge, _ [][]int, _ [][]int64) {
		matching.GreedyMaximalWeighted(64, 64, e)
	})
}
func BenchmarkMatchingHopcroftKarp64(b *testing.B) {
	benchMatchingEngine(b, 64, func(_ []matching.Edge, adj [][]int, _ [][]int64) {
		matching.HopcroftKarp(64, 64, adj)
	})
}
func BenchmarkMatchingHungarian64(b *testing.B) {
	benchMatchingEngine(b, 64, func(_ []matching.Edge, _ [][]int, w [][]int64) {
		matching.Hungarian(w)
	})
}

func BenchmarkExactUnitOPT(b *testing.B) {
	cfg := switchsim.Config{Inputs: 2, Outputs: 2, InputBuf: 2, OutputBuf: 2,
		CrossBuf: 1, Speedup: 1}
	rng := rand.New(rand.NewSource(3))
	seq := packet.Bernoulli{Load: 1.5}.Generate(rng, 2, 2, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := offline.ExactUnitCIOQ(cfg, seq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOfflineUpperBound(b *testing.B) {
	cfg := switchsim.Config{Inputs: 8, Outputs: 8, InputBuf: 4, OutputBuf: 4,
		CrossBuf: 1, Speedup: 1}
	rng := rand.New(rand.NewSource(4))
	seq := packet.Bernoulli{Load: 1.0, Values: packet.UniformValues{Hi: 50}}.
		Generate(rng, 8, 8, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := offline.OQUpperBound(cfg, seq, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceEncodeDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	seq := packet.Bernoulli{Load: 1.0, Values: packet.UniformValues{Hi: 100}}.
		Generate(rng, 8, 8, 200)
	tr := &packet.Trace{Inputs: 8, Outputs: 8, Packets: seq}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := packet.ReadBinary(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Sparse-trace benchmarks: long-horizon, low-load workloads where most
// slots are idle — the regime the event-driven fast path targets. The
// same benchmark names measure both engines: set QSWITCH_EVENTDRIVEN=1
// to opt in (BENCH_2.json holds the dense baseline, BENCH_2_post.json
// the event-driven run).
// ---------------------------------------------------------------------------

func sparseBenchEventDriven() bool { return os.Getenv("QSWITCH_EVENTDRIVEN") != "" }

const sparseBenchSlots = 1_000_000

// sparseBenchSeq caches one 10^6-slot bursty trace per geometry: ~0.003
// offered load per input (bursts of ~6 packets every ~2000 slots), so
// the switch sits empty for the overwhelming majority of slots.
var sparseBenchSeqs = map[int]packet.Sequence{}

func sparseBenchSeq(n int) packet.Sequence {
	if seq, ok := sparseBenchSeqs[n]; ok {
		return seq
	}
	rng := rand.New(rand.NewSource(1))
	seq := packet.PoissonBurst{OffMean: 2000, BurstMean: 6}.Generate(rng, n, n, sparseBenchSlots)
	sparseBenchSeqs[n] = seq
	return seq
}

func benchSparseCIOQ(b *testing.B, n int, mk func() switchsim.CIOQPolicy) {
	cfg := switchsim.Config{
		Inputs: n, Outputs: n, InputBuf: 4, OutputBuf: 4,
		Speedup: 1, Slots: sparseBenchSlots,
		EventDriven: sparseBenchEventDriven(),
	}
	seq := sparseBenchSeq(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := switchsim.RunCIOQ(cfg, mk(), seq); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sparseBenchSlots), "ns/slot")
}

func benchSparseCrossbar(b *testing.B, n int, mk func() switchsim.CrossbarPolicy) {
	cfg := switchsim.Config{
		Inputs: n, Outputs: n, InputBuf: 4, OutputBuf: 4, CrossBuf: 2,
		Speedup: 1, Slots: sparseBenchSlots,
		EventDriven: sparseBenchEventDriven(),
	}
	seq := sparseBenchSeq(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := switchsim.RunCrossbar(cfg, mk(), seq); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*sparseBenchSlots), "ns/slot")
}

func BenchmarkSparseCIOQGM16(b *testing.B) {
	benchSparseCIOQ(b, 16, func() switchsim.CIOQPolicy { return &core.GM{} })
}
func BenchmarkSparseCIOQGMRotating16(b *testing.B) {
	benchSparseCIOQ(b, 16, func() switchsim.CIOQPolicy { return &core.GM{Order: core.Rotating} })
}
func BenchmarkSparseCIOQPG16(b *testing.B) {
	benchSparseCIOQ(b, 16, func() switchsim.CIOQPolicy { return &core.PG{} })
}
func BenchmarkSparseCIOQRoundRobin16(b *testing.B) {
	benchSparseCIOQ(b, 16, func() switchsim.CIOQPolicy { return &core.RoundRobin{} })
}
func BenchmarkSparseCrossbarCGU16(b *testing.B) {
	benchSparseCrossbar(b, 16, func() switchsim.CrossbarPolicy { return &core.CGU{} })
}
func BenchmarkSparseCrossbarCPG16(b *testing.B) {
	benchSparseCrossbar(b, 16, func() switchsim.CrossbarPolicy { return &core.CPG{} })
}
