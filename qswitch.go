// Package qswitch is a library of competitive online packet-scheduling
// algorithms for CIOQ (combined input/output queued) and buffered crossbar
// switches, reproducing:
//
//	Al-Bawani, Englert, Westermann.
//	"Online Packet Scheduling for CIOQ and Buffered Crossbar Switches."
//	SPAA 2016 / Algorithmica 2018.
//
// It bundles:
//
//   - the paper's algorithms — GM (unit-value CIOQ, 3-competitive),
//     PG (weighted CIOQ, 3+2√2 ≈ 5.83-competitive), CGU (unit-value
//     crossbar, 3-competitive) and CPG (weighted crossbar,
//     ≈14.83-competitive) — plus the maximum-matching baselines of prior
//     work and practical baselines (iSLIP-style round-robin, FIFO);
//   - a slot/phase-accurate switch simulator that enforces the model's
//     physical constraints (matching property, buffer capacities,
//     speedup cycles) and is event-driven by default: idle and
//     drain-only stretches are jumped in closed form with bit-identical
//     metrics (Config.Dense opts out);
//   - synthetic traffic generators (uniform, bursty, hotspot, diagonal,
//     permutation, flow-level flowmix; unit, two-valued, Zipf, geometric
//     value models) and trace serialization;
//   - a streaming arrival layer (ArrivalStream, SimulateCIOQStream,
//     SimulateCrossbarStream, OpenTraceStream) that simulates horizons of
//     10⁹ slots and beyond in memory bounded by a fixed arrival window,
//     with metrics bit-identical to a materialized run
//     (Config.StreamMetrics swaps latency quantiles for a constant-space
//     P² sketch);
//   - offline optima: exact solvers for small instances and a min-cost
//     flow upper bound for arbitrary ones, enabling empirical
//     competitive-ratio measurement.
//
// # Quick start
//
//	cfg := qswitch.Config{Inputs: 8, Outputs: 8, InputBuf: 4,
//		OutputBuf: 4, Speedup: 1}
//	gen := qswitch.UniformTraffic(0.9)
//	seq := qswitch.GenerateTraffic(gen, cfg, 1000, 42)
//	res, err := qswitch.SimulateCIOQ(cfg, "gm", seq)
//
// See the examples/ directory for complete programs.
package qswitch

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"qswitch/internal/core"
	"qswitch/internal/obs"
	"qswitch/internal/obs/wire"
	"qswitch/internal/offline"
	"qswitch/internal/packet"
	"qswitch/internal/ratio"
	"qswitch/internal/stats"
	"qswitch/internal/switchsim"
)

// Re-exported model types. These aliases are the stable public names; the
// internal packages they point at are implementation detail.
type (
	// Packet is one fixed-size packet with arrival slot, ports and value.
	Packet = packet.Packet
	// Sequence is an arrival sequence sorted by (arrival, id).
	Sequence = packet.Sequence
	// Trace couples a sequence with its port geometry for (de)serialization.
	Trace = packet.Trace
	// Generator produces synthetic arrival sequences.
	Generator = packet.Generator
	// ValueDist draws packet values for generators.
	ValueDist = packet.ValueDist
	// Config describes switch geometry, buffers, speedup and horizon.
	Config = switchsim.Config
	// Result carries the metrics of one simulation run.
	Result = switchsim.Result
	// CIOQPolicy is the scheduling interface for CIOQ switches.
	CIOQPolicy = switchsim.CIOQPolicy
	// CrossbarPolicy is the scheduling interface for buffered crossbars.
	CrossbarPolicy = switchsim.CrossbarPolicy
	// IdleAdvancer is the opt-in hook that lets the (default) event-driven
	// engine jump idle and quiescent stretches for a custom policy; see
	// switchsim.IdleAdvancer for the contract.
	IdleAdvancer = switchsim.IdleAdvancer
	// RatioEstimate aggregates competitive-ratio measurements.
	RatioEstimate = ratio.Estimate
	// PrecisionTarget is a CI-precision stopping rule for sequential
	// ratio estimation (absolute and/or relative Student-t half-width).
	PrecisionTarget = stats.Target
	// RatioReport describes how a sequential estimation stopped.
	RatioReport = ratio.SeqReport
	// PairedEstimate is the result of a paired (common-random-numbers)
	// policy comparison: per-policy marginals plus per-seed difference CIs.
	PairedEstimate = ratio.PairedEstimate
	// RatioDiff is one paired-difference estimate within a PairedEstimate.
	RatioDiff = ratio.DiffEstimate
	// ArrivalStream is the pull-based form of an arrival sequence; the
	// streaming simulators consume it incrementally, so unbounded
	// workloads run in bounded memory.
	ArrivalStream = packet.ArrivalStream
	// TraceStream reads a binary trace file incrementally as an
	// ArrivalStream; see OpenTraceStream.
	TraceStream = packet.TraceStream
	// MetricsRegistry is the observability layer's named-metric registry;
	// see EnableObservability and internal/obs.
	MetricsRegistry = obs.Registry
)

// EnableObservability creates a metrics registry and installs the
// library's probes into it: engine run/slot/jump counters, fleet
// kernel-vs-fallback counters, offline-judge solve counters and
// sequential-estimation chunk telemetry. Until this is called every probe
// is a nil no-op, so simulations pay nothing for the layer's existence.
//
// The returned stop function uninstalls the probes again. Registry reads
// (Snapshot, WritePrometheus) are safe while simulations run. Probes only
// observe — enabling them never changes any simulation or estimate.
func EnableObservability() (*MetricsRegistry, func()) {
	reg := obs.NewRegistry()
	wire.Up(reg)
	return reg, wire.Down
}

// NewCIOQPolicy constructs a CIOQ policy by name:
//
//	gm            — Greedy Matching (paper, unit values, 3-competitive)
//	gm-rotating   — GM with a rotating edge scan
//	gm-colmajor   — GM with column-major scan
//	gm-longest    — GM preferring longest queues
//	gm-random     — GM with a random scan per cycle (open-problem probe)
//	kr-maxmatch   — maximum-matching baseline (Hopcroft–Karp)
//	pg            — Preemptive Greedy (paper, weighted, 5.83-competitive)
//	kr-maxweight  — maximum-weight-matching baseline (Hungarian, β=2)
//	ar-fifo       — FIFO-queue related-work baseline (Azar–Richter line)
//	naive-fifo    — non-preemptive first-fit baseline
//	roundrobin    — iSLIP-style round-robin matching
func NewCIOQPolicy(name string) (CIOQPolicy, error) {
	switch name {
	case "gm":
		return &core.GM{}, nil
	case "gm-rotating":
		return &core.GM{Order: core.Rotating}, nil
	case "gm-colmajor":
		return &core.GM{Order: core.ColMajor}, nil
	case "gm-longest":
		return &core.GM{Order: core.LongestFirst}, nil
	case "kr-maxmatch":
		return &core.KRMM{}, nil
	case "pg":
		return &core.PG{}, nil
	case "kr-maxweight":
		return &core.KRMWM{}, nil
	case "naive-fifo":
		return &core.NaiveFIFO{}, nil
	case "roundrobin":
		return &core.RoundRobin{}, nil
	case "gm-random":
		return &core.RandomizedGM{}, nil
	case "ar-fifo":
		return &core.ARFIFO{}, nil
	default:
		return nil, fmt.Errorf("qswitch: unknown CIOQ policy %q (have %v)", name, CIOQPolicyNames())
	}
}

// NewPG constructs the Preemptive Greedy policy with an explicit β
// (DefaultBetaPG when 0).
func NewPG(beta float64) CIOQPolicy { return &core.PG{Beta: beta} }

// NewCrossbarPolicy constructs a buffered-crossbar policy by name:
//
//	cgu           — Crossbar Greedy Unit (paper, 3-competitive)
//	cgu-rotating  — CGU with rotating picks
//	cpg           — Crossbar Preemptive Greedy (paper, 14.83-competitive)
//	cpg-equal     — CPG with β=α (Kesselman et al.'s parameterization)
//	crossbar-naive— non-preemptive first-fit baseline
//	kks-fifo      — FIFO-queue related-work baseline (KKS line)
func NewCrossbarPolicy(name string) (CrossbarPolicy, error) {
	switch name {
	case "cgu":
		return &core.CGU{}, nil
	case "cgu-rotating":
		return &core.CGU{RotatePick: true}, nil
	case "cpg":
		return &core.CPG{}, nil
	case "cpg-equal":
		return core.CPGEqualParams(), nil
	case "crossbar-naive":
		return &core.CrossbarNaive{}, nil
	case "kks-fifo":
		return &core.KKSFIFO{}, nil
	default:
		return nil, fmt.Errorf("qswitch: unknown crossbar policy %q (have %v)", name, CrossbarPolicyNames())
	}
}

// NewCPG constructs the Crossbar Preemptive Greedy policy with explicit
// parameters (paper defaults when 0).
func NewCPG(beta, alpha float64) CrossbarPolicy { return &core.CPG{Beta: beta, Alpha: alpha} }

// CIOQPolicyNames lists the names accepted by NewCIOQPolicy.
func CIOQPolicyNames() []string {
	names := []string{"gm", "gm-rotating", "gm-colmajor", "gm-longest",
		"gm-random", "kr-maxmatch", "pg", "kr-maxweight", "ar-fifo",
		"naive-fifo", "roundrobin"}
	sort.Strings(names)
	return names
}

// CrossbarPolicyNames lists the names accepted by NewCrossbarPolicy.
func CrossbarPolicyNames() []string {
	names := []string{"cgu", "cgu-rotating", "cpg", "cpg-equal", "crossbar-naive", "kks-fifo"}
	sort.Strings(names)
	return names
}

// SimulateCIOQ runs the named (or given) policy on a CIOQ switch.
// policy may be a string accepted by NewCIOQPolicy or a CIOQPolicy value.
func SimulateCIOQ(cfg Config, policy interface{}, seq Sequence) (*Result, error) {
	pol, err := resolveCIOQ(policy)
	if err != nil {
		return nil, err
	}
	return switchsim.RunCIOQ(cfg, pol, seq)
}

// SimulateCrossbar runs the named (or given) policy on a buffered
// crossbar switch.
func SimulateCrossbar(cfg Config, policy interface{}, seq Sequence) (*Result, error) {
	pol, err := resolveCrossbar(policy)
	if err != nil {
		return nil, err
	}
	return switchsim.RunCrossbar(cfg, pol, seq)
}

// SimulateOQ runs the ideal output-queued reference switch.
func SimulateOQ(cfg Config, seq Sequence) (*Result, error) {
	return switchsim.RunOQ(cfg, seq)
}

// SimulateCIOQStream runs the named (or given) policy on a CIOQ switch,
// consuming arrivals from a stream instead of a materialized sequence.
// Metrics are bit-identical to SimulateCIOQ on the same arrivals; memory
// is bounded by the stream's window rather than the trace length (set
// Config.StreamMetrics to keep latency recording bounded too).
func SimulateCIOQStream(cfg Config, policy interface{}, src ArrivalStream) (*Result, error) {
	pol, err := resolveCIOQ(policy)
	if err != nil {
		return nil, err
	}
	return switchsim.RunCIOQStream(cfg, pol, src)
}

// SimulateCrossbarStream is SimulateCIOQStream for buffered crossbars.
func SimulateCrossbarStream(cfg Config, policy interface{}, src ArrivalStream) (*Result, error) {
	pol, err := resolveCrossbar(policy)
	if err != nil {
		return nil, err
	}
	return switchsim.RunCrossbarStream(cfg, pol, src)
}

// StreamTraffic returns the generator's workload as an ArrivalStream,
// bit-identical to GenerateTraffic with the same arguments. Slot-major
// generators (the Bernoulli family, Diurnal, FlowMix) are synthesized
// lazily in O(window) memory; the per-input renewal generators are
// materialized once and replayed.
func StreamTraffic(gen Generator, cfg Config, slots int, seed int64) ArrivalStream {
	rng := rand.New(rand.NewSource(seed))
	return packet.StreamTraffic(gen, rng, cfg.Inputs, cfg.Outputs, slots)
}

// OpenTraceStream opens a binary trace file for incremental replay
// through the streaming simulators; the caller should Close it when done.
// Record fields, ordering invariants and the CRC64 trailer are verified
// as the stream is consumed.
func OpenTraceStream(path string) (*TraceStream, error) {
	return packet.OpenTraceStream(path)
}

// GenerateTraffic draws a reproducible sequence from a generator for the
// given geometry: `slots` arrival slots seeded by `seed`.
func GenerateTraffic(gen Generator, cfg Config, slots int, seed int64) Sequence {
	rng := rand.New(rand.NewSource(seed))
	return gen.Generate(rng, cfg.Inputs, cfg.Outputs, slots)
}

// UniformTraffic is Bernoulli i.i.d. unit-value traffic at the given
// per-input load.
func UniformTraffic(load float64) Generator { return packet.Bernoulli{Load: load} }

// WeightedTraffic is Bernoulli traffic with values drawn from dist.
func WeightedTraffic(load float64, dist ValueDist) Generator {
	return packet.Bernoulli{Load: load, Values: dist}
}

// BurstyTraffic is ON/OFF Markov-modulated traffic with per-burst
// destinations; the non-Poisson workload of the paper's motivation.
func BurstyTraffic(onLoad, pOnOff, pOffOn float64, dist ValueDist) Generator {
	return packet.Bursty{OnLoad: onLoad, POnOff: pOnOff, POffOn: pOffOn, Values: dist}
}

// HotspotTraffic sends fraction hotFrac of all packets to output hotOut.
func HotspotTraffic(load float64, hotOut int, hotFrac float64, dist ValueDist) Generator {
	return packet.Hotspot{Load: load, HotOut: hotOut, HotFrac: hotFrac, Values: dist}
}

// PoissonBurstTraffic is sparse on/off traffic: line-rate bursts of
// Poisson-distributed size (mean burstMean) separated by geometric idle
// gaps (mean offMean slots). The default event-driven engine simulates
// its long silences in O(1) per gap.
func PoissonBurstTraffic(offMean, burstMean float64, dist ValueDist) Generator {
	return packet.PoissonBurst{OffMean: offMean, BurstMean: burstMean, Values: dist}
}

// DiurnalTraffic is Bernoulli traffic modulated by a sinusoidal
// day/night cycle; amplitude >= 1 silences the troughs entirely.
func DiurnalTraffic(load float64, period int, amplitude float64, dist ValueDist) Generator {
	return packet.Diurnal{Load: load, Period: period, Amplitude: amplitude, Values: dist}
}

// HeavyTailTraffic draws per-input Pareto(alpha, minGap) interarrival
// gaps: self-similar traffic with occasional very long silences.
func HeavyTailTraffic(alpha, minGap float64, dist ValueDist) Generator {
	return packet.HeavyTail{Alpha: alpha, MinGap: minGap, Values: dist}
}

// FlowMixTraffic is flow-level traffic: each input carries a mix of
// short "rat" and long "elephant" flows opening at a stage-varying rate,
// every open flow emitting one packet per slot toward its destination.
// The load argument is the approximate mean per-input packet load under
// the default mix; see packet.FlowMix for the full parameter surface.
// FlowMix is slot-major, so it streams in memory proportional to the
// open-flow state — the flagship workload for the streaming simulators.
func FlowMixTraffic(load float64, dist ValueDist) Generator {
	return packet.FlowMixForLoad(load, dist)
}

// BurstyBlockingTraffic converges line-rate bursts (burst packets from
// each of fanin inputs; fanin <= 0 means all) onto a single hot output,
// separated by geometric quiet gaps of mean offMean slots. At speedup >= 2
// it produces long backlogged-but-quiescent drain stretches — the shape
// the default event-driven engine advances in closed form.
func BurstyBlockingTraffic(offMean float64, burst, fanin int, dist ValueDist) Generator {
	return packet.BurstyBlocking{OffMean: offMean, Burst: burst, Fanin: fanin, Values: dist}
}

// OfflineUpperBound computes a proven upper bound on the benefit of ANY
// schedule (online or offline) for the instance, via a per-output
// time-expanded min-cost-flow relaxation. Set crossbar=true to include
// crosspoint buffer capacity.
func OfflineUpperBound(cfg Config, seq Sequence, crossbar bool) (int64, error) {
	return offline.OQUpperBound(cfg, seq, crossbar)
}

// ExactOptimum computes the exact offline optimum for small instances
// (see internal/offline for the tractability guards); crossbar selects the
// buffered-crossbar model. It returns offline.ErrTooLarge-wrapped errors
// when the instance is out of reach.
func ExactOptimum(cfg Config, seq Sequence, crossbar bool) (int64, error) {
	if seq.IsUnit() {
		if crossbar {
			return offline.ExactUnitCrossbar(cfg, seq)
		}
		return offline.ExactUnitCIOQ(cfg, seq)
	}
	if crossbar {
		return offline.ExactWeightedCrossbar(cfg, seq)
	}
	return offline.ExactWeightedCIOQ(cfg, seq)
}

// MeasureRatioCIOQ estimates the empirical competitive ratio of a named
// CIOQ policy over `runs` seeded workloads, judged by the exact offline
// optimum when tractable (exact=true) or the flow upper bound otherwise.
func MeasureRatioCIOQ(cfg Config, policyName string, gen Generator, exact bool, seed int64, runs int) (RatioEstimate, error) {
	alg := ratio.CIOQAlg(func() CIOQPolicy {
		p, err := NewCIOQPolicy(policyName)
		if err != nil {
			panic(err) // name validated below before first use
		}
		return p
	})
	if _, err := NewCIOQPolicy(policyName); err != nil {
		return RatioEstimate{}, err
	}
	judge := ratio.JudgeFactory(ratio.UpperBoundCIOQ)
	if exact {
		judge = exactJudge(false)
	}
	return ratio.Run(context.Background(), cfg, alg, judge, gen, seed, runs)
}

// exactJudge adapts ExactOptimum to the ratio judge factory contract.
func exactJudge(crossbar bool) ratio.JudgeFactory {
	return func() ratio.Judge {
		return ratio.JudgeFunc(func(cfg Config, seq Sequence) (int64, error) {
			return ExactOptimum(cfg, seq, crossbar)
		})
	}
}

// MeasureRatioCIOQParallel is MeasureRatioCIOQ with the per-seed
// measurements spread over a worker pool (workers <= 0 selects
// GOMAXPROCS). Results are bit-identical to the sequential version.
func MeasureRatioCIOQParallel(cfg Config, policyName string, gen Generator, exact bool, seed int64, runs, workers int) (RatioEstimate, error) {
	if _, err := NewCIOQPolicy(policyName); err != nil {
		return RatioEstimate{}, err
	}
	alg := ratio.CIOQAlg(func() CIOQPolicy {
		p, err := NewCIOQPolicy(policyName)
		if err != nil {
			panic(err)
		}
		return p
	})
	judge := ratio.JudgeFactory(ratio.UpperBoundCIOQ)
	if exact {
		judge = exactJudge(false)
	}
	return ratio.RunParallel(context.Background(), cfg, alg, judge, gen, seed, runs, workers)
}

// MeasureRatioCIOQSequential is MeasureRatioCIOQ with sequential
// stopping: seeds are issued in chunks of `chunk` (<= 0 selects the
// default) until the Student-t CI half-width on the mean ratio clears the
// target or maxRuns seeds have been spent. With a disabled (zero) target
// it is byte-identical to MeasureRatioCIOQ over maxRuns seeds; with a
// target the stopped seed count depends only on (seed, chunk).
func MeasureRatioCIOQSequential(cfg Config, policyName string, gen Generator, exact bool,
	seed int64, target PrecisionTarget, chunk, maxRuns int) (RatioEstimate, RatioReport, error) {
	if _, err := NewCIOQPolicy(policyName); err != nil {
		return RatioEstimate{}, RatioReport{}, err
	}
	alg := ratio.CIOQAlg(func() CIOQPolicy {
		p, err := NewCIOQPolicy(policyName)
		if err != nil {
			panic(err)
		}
		return p
	})
	judge := ratio.JudgeFactory(ratio.UpperBoundCIOQ)
	if exact {
		judge = exactJudge(false)
	}
	return ratio.RunSequential(context.Background(),
		ratio.ScalarChunks(cfg, alg, judge, gen, seed),
		ratio.SequentialOptions{Target: target, Chunk: chunk, MaxRuns: maxRuns})
}

// CompareRatioCIOQPaired compares named CIOQ policies with common random
// numbers: every seed's workload is generated once, judged once, and fed
// to all policies through the fleet engine, and the per-seed ratio
// differences against policyNames[0] get their own Student-t CIs. The
// marginal estimates are byte-identical to MeasureRatioCIOQ per policy on
// the same seeds; the paired differences reach a target half-width with
// far fewer switch-slots than independent sampling (see BENCH_8). A
// non-zero target stops early once every difference CI clears it.
func CompareRatioCIOQPaired(cfg Config, policyNames []string, gen Generator, exact bool,
	seed int64, target PrecisionTarget, maxRuns int) (PairedEstimate, error) {
	pols := make([]ratio.PairedPolicy, len(policyNames))
	for i, name := range policyNames {
		name := name
		if _, err := NewCIOQPolicy(name); err != nil {
			return PairedEstimate{}, err
		}
		pols[i] = ratio.PairedPolicy{Name: name, Alg: ratio.CIOQFleetAlg(func() CIOQPolicy {
			p, err := NewCIOQPolicy(name)
			if err != nil {
				panic(err)
			}
			return p
		})}
	}
	judge := ratio.JudgeFactory(ratio.UpperBoundCIOQ)
	if exact {
		judge = exactJudge(false)
	}
	return ratio.RunPaired(context.Background(), cfg, pols, judge, gen, seed,
		ratio.PairedOptions{Target: target, MaxRuns: maxRuns})
}

// MeasureRatioCrossbar is the buffered-crossbar analogue of
// MeasureRatioCIOQ.
func MeasureRatioCrossbar(cfg Config, policyName string, gen Generator, exact bool, seed int64, runs int) (RatioEstimate, error) {
	alg := ratio.CrossbarAlg(func() CrossbarPolicy {
		p, err := NewCrossbarPolicy(policyName)
		if err != nil {
			panic(err)
		}
		return p
	})
	if _, err := NewCrossbarPolicy(policyName); err != nil {
		return RatioEstimate{}, err
	}
	judge := ratio.JudgeFactory(ratio.UpperBoundCrossbar)
	if exact {
		judge = exactJudge(true)
	}
	return ratio.Run(context.Background(), cfg, alg, judge, gen, seed, runs)
}

// DefaultBetaPG returns β = 1+√2, PG's optimal parameter (Theorem 2).
func DefaultBetaPG() float64 { return core.DefaultBetaPG() }

// DefaultBetaCPG returns CPG's optimal β (Theorem 4).
func DefaultBetaCPG() float64 { return core.DefaultBetaCPG() }

// DefaultAlphaCPG returns CPG's optimal α = 2/(β−1)² (Theorem 4).
func DefaultAlphaCPG() float64 { return core.DefaultAlphaCPG() }

func resolveCIOQ(policy interface{}) (CIOQPolicy, error) {
	switch p := policy.(type) {
	case string:
		return NewCIOQPolicy(p)
	case CIOQPolicy:
		return p, nil
	default:
		return nil, fmt.Errorf("qswitch: policy must be a name or CIOQPolicy, got %T", policy)
	}
}

func resolveCrossbar(policy interface{}) (CrossbarPolicy, error) {
	switch p := policy.(type) {
	case string:
		return NewCrossbarPolicy(p)
	case CrossbarPolicy:
		return p, nil
	default:
		return nil, fmt.Errorf("qswitch: policy must be a name or CrossbarPolicy, got %T", policy)
	}
}
