package qswitch_test

import (
	"fmt"

	"qswitch"
)

// The most common flow: generate traffic, run a policy, inspect metrics.
func ExampleSimulateCIOQ() {
	cfg := qswitch.Config{
		Inputs: 4, Outputs: 4,
		InputBuf: 2, OutputBuf: 2,
		Speedup: 1,
	}
	seq := qswitch.GenerateTraffic(qswitch.UniformTraffic(0.8), cfg, 100, 42)
	res, err := qswitch.SimulateCIOQ(cfg, "gm", seq)
	if err != nil {
		panic(err)
	}
	fmt.Println("delivered all accepted packets:", res.M.Sent == res.M.Accepted)
	fmt.Println("benefit is positive:", res.M.Benefit > 0)
	// Output:
	// delivered all accepted packets: true
	// benefit is positive: true
}

// Crossbar switches run through the same API with crossbar policies.
func ExampleSimulateCrossbar() {
	cfg := qswitch.Config{
		Inputs: 4, Outputs: 4,
		InputBuf: 2, OutputBuf: 2, CrossBuf: 1,
		Speedup: 1,
	}
	seq := qswitch.GenerateTraffic(qswitch.UniformTraffic(0.8), cfg, 100, 42)
	res, err := qswitch.SimulateCrossbar(cfg, "cgu", seq)
	if err != nil {
		panic(err)
	}
	fmt.Println("policy:", res.Policy)
	fmt.Println("no preemption in the unit-value algorithm:",
		res.M.PreemptedInput+res.M.PreemptedCross+res.M.PreemptedOutput == 0)
	// Output:
	// policy: cgu
	// no preemption in the unit-value algorithm: true
}

// Exact offline optima turn simulations into competitive-ratio
// measurements on small instances.
func ExampleExactOptimum() {
	cfg := qswitch.Config{
		Inputs: 2, Outputs: 2,
		InputBuf: 1, OutputBuf: 1,
		Speedup: 1,
	}
	// Two packets racing for the same input queue of capacity 1: any
	// schedule keeps exactly one.
	seq := qswitch.Sequence{
		{ID: 0, Arrival: 0, In: 0, Out: 0, Value: 1},
		{ID: 1, Arrival: 0, In: 0, Out: 0, Value: 1},
	}
	opt, err := qswitch.ExactOptimum(cfg, seq, false)
	if err != nil {
		panic(err)
	}
	fmt.Println("OPT =", opt)
	// Output:
	// OPT = 1
}

// The paper's optimal parameters are exposed as functions.
func ExampleDefaultBetaPG() {
	fmt.Printf("beta* = %.4f\n", qswitch.DefaultBetaPG())
	// Output:
	// beta* = 2.4142
}
