package qswitch_test

import (
	"fmt"
	"reflect"

	"qswitch"
)

// The most common flow: generate traffic, run a policy, inspect metrics.
func ExampleSimulateCIOQ() {
	cfg := qswitch.Config{
		Inputs: 4, Outputs: 4,
		InputBuf: 2, OutputBuf: 2,
		Speedup: 1,
	}
	seq := qswitch.GenerateTraffic(qswitch.UniformTraffic(0.8), cfg, 100, 42)
	res, err := qswitch.SimulateCIOQ(cfg, "gm", seq)
	if err != nil {
		panic(err)
	}
	fmt.Println("delivered all accepted packets:", res.M.Sent == res.M.Accepted)
	fmt.Println("benefit is positive:", res.M.Benefit > 0)
	// Output:
	// delivered all accepted packets: true
	// benefit is positive: true
}

// Crossbar switches run through the same API with crossbar policies.
func ExampleSimulateCrossbar() {
	cfg := qswitch.Config{
		Inputs: 4, Outputs: 4,
		InputBuf: 2, OutputBuf: 2, CrossBuf: 1,
		Speedup: 1,
	}
	seq := qswitch.GenerateTraffic(qswitch.UniformTraffic(0.8), cfg, 100, 42)
	res, err := qswitch.SimulateCrossbar(cfg, "cgu", seq)
	if err != nil {
		panic(err)
	}
	fmt.Println("policy:", res.Policy)
	fmt.Println("no preemption in the unit-value algorithm:",
		res.M.PreemptedInput+res.M.PreemptedCross+res.M.PreemptedOutput == 0)
	// Output:
	// policy: cgu
	// no preemption in the unit-value algorithm: true
}

// Exact offline optima turn simulations into competitive-ratio
// measurements on small instances.
func ExampleExactOptimum() {
	cfg := qswitch.Config{
		Inputs: 2, Outputs: 2,
		InputBuf: 1, OutputBuf: 1,
		Speedup: 1,
	}
	// Two packets racing for the same input queue of capacity 1: any
	// schedule keeps exactly one.
	seq := qswitch.Sequence{
		{ID: 0, Arrival: 0, In: 0, Out: 0, Value: 1},
		{ID: 1, Arrival: 0, In: 0, Out: 0, Value: 1},
	}
	opt, err := qswitch.ExactOptimum(cfg, seq, false)
	if err != nil {
		panic(err)
	}
	fmt.Println("OPT =", opt)
	// Output:
	// OPT = 1
}

// The paper's optimal parameters are exposed as functions.
func ExampleDefaultBetaPG() {
	fmt.Printf("beta* = %.4f\n", qswitch.DefaultBetaPG())
	// Output:
	// beta* = 2.4142
}

// Policies can be constructed explicitly (for parameterization) instead
// of being named by string; both forms run through the same simulator.
func ExampleNewCIOQPolicy() {
	cfg := qswitch.Config{
		Inputs: 4, Outputs: 4,
		InputBuf: 2, OutputBuf: 2,
		Speedup: 1,
	}
	pol, err := qswitch.NewCIOQPolicy("roundrobin")
	if err != nil {
		panic(err)
	}
	seq := qswitch.GenerateTraffic(qswitch.UniformTraffic(0.7), cfg, 200, 9)
	byValue, err := qswitch.SimulateCIOQ(cfg, pol, seq)
	if err != nil {
		panic(err)
	}
	byName, err := qswitch.SimulateCIOQ(cfg, "roundrobin", seq)
	if err != nil {
		panic(err)
	}
	fmt.Println("policy:", byValue.Policy)
	fmt.Println("same result by name and by value:", reflect.DeepEqual(byValue.M, byName.M))
	// Output:
	// policy: roundrobin
	// same result by name and by value: true
}

// Sparse traces run on the event-driven engine by default: long idle and
// drain-only stretches are jumped in closed form, with metrics
// bit-identical to a dense slot-by-slot run (Config.Dense opts out).
func ExampleSimulateCIOQ_sparseEventDriven() {
	cfg := qswitch.Config{
		Inputs: 8, Outputs: 8,
		InputBuf: 8, OutputBuf: 64,
		Speedup: 2, Slots: 100000,
		RecordLatency: true,
	}
	// Converging bursts every ~1000 slots: at speedup 2 each burst parks
	// a backlog in the hot output queue that drains long after the input
	// side is empty — the quiescent shape.
	gen := qswitch.BurstyBlockingTraffic(1000, 8, 0, nil)
	seq := qswitch.GenerateTraffic(gen, cfg, cfg.Slots, 11)

	fast, err := qswitch.SimulateCIOQ(cfg, "gm-rotating", seq) // event-driven (default)
	if err != nil {
		panic(err)
	}
	denseCfg := cfg
	denseCfg.Dense = true
	dense, err := qswitch.SimulateCIOQ(denseCfg, "gm-rotating", seq)
	if err != nil {
		panic(err)
	}
	fmt.Println("bit-identical metrics:", reflect.DeepEqual(fast.M, dense.M))
	fmt.Println("all arrivals delivered:", fast.M.Sent == fast.M.Arrived)
	fmt.Printf("mean latency: %.2f slots\n", fast.M.MeanLatency())
	// Output:
	// bit-identical metrics: true
	// all arrivals delivered: true
	// mean latency: 28.00 slots
}

// Competitive-ratio measurement against the exact offline optimum: the
// empirical ratio of the paper's GM must stay within its proven bound of
// 3 (Theorem 1).
func ExampleMeasureRatioCIOQ() {
	cfg := qswitch.Config{
		Inputs: 2, Outputs: 2,
		InputBuf: 2, OutputBuf: 2,
		Speedup: 1, Slots: 12,
	}
	est, err := qswitch.MeasureRatioCIOQ(cfg, "gm", qswitch.UniformTraffic(1.2), true, 1, 20)
	if err != nil {
		panic(err)
	}
	fmt.Println("measured runs:", est.Runs)
	fmt.Println("max ratio within the proven bound of 3:", est.Max <= 3)
	// Output:
	// measured runs: 20
	// max ratio within the proven bound of 3: true
}
