// Quickstart: simulate the paper's GM algorithm on an 8x8 CIOQ switch
// under uniform traffic and compare it against the ideal output-queued
// switch and the offline upper bound.
package main

import (
	"fmt"
	"log"

	"qswitch"
)

func main() {
	// An 8x8 CIOQ switch: every input port has 8 virtual output queues
	// of capacity 4; every output port has one queue of capacity 4; the
	// fabric runs one scheduling cycle per time slot (speedup 1).
	cfg := qswitch.Config{
		Inputs: 8, Outputs: 8,
		InputBuf: 4, OutputBuf: 4,
		Speedup: 1,
	}

	// Uniform Bernoulli traffic at 95% load for 2000 slots.
	seq := qswitch.GenerateTraffic(qswitch.UniformTraffic(0.95), cfg, 2000, 42)
	fmt.Printf("workload: %d unit-value packets over 2000 slots\n\n", len(seq))

	// Run Greedy Matching — the paper's 3-competitive algorithm.
	res, err := qswitch.SimulateCIOQ(cfg, "gm", seq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("GM result:", res)
	fmt.Printf("  throughput: %.3f packets/slot, mean loss %.2f%%\n",
		res.Throughput(), 100*res.M.LossRate())

	// The ideal output-queued switch as an online reference. An OQ
	// switch has no input queues, so give it the same TOTAL memory per
	// output (8 input VOQs x 4 + 4 = 36) for a fair comparison.
	oqCfg := cfg
	oqCfg.OutputBuf = cfg.Inputs*cfg.InputBuf + cfg.OutputBuf
	oq, err := qswitch.SimulateOQ(oqCfg, seq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nOQ ideal switch (equal memory) sent %d (GM reached %.1f%% of it)\n",
		oq.M.Sent, 100*float64(res.M.Sent)/float64(oq.M.Sent))

	// The offline upper bound dominates every schedule, including the
	// optimum the competitive ratio is measured against.
	ub, err := qswitch.OfflineUpperBound(cfg, seq, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline upper bound %d (GM reached %.1f%%; Theorem 1 guarantees >= %.1f%%)\n",
		ub, 100*float64(res.M.Benefit)/float64(ub), 100.0/3)
}
