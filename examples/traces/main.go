// Trace example: generate a bursty workload, persist it as a checksummed
// binary trace, reload it, and replay it identically against two policies.
// Demonstrates the trace API used to archive and share workloads between
// experiments.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"qswitch"
	"qswitch/internal/packet"
)

func main() {
	cfg := qswitch.Config{
		Inputs: 8, Outputs: 8,
		InputBuf: 4, OutputBuf: 4,
		Speedup: 1,
	}
	gen := qswitch.BurstyTraffic(0.9, 0.2, 0.15, packet.ZipfValues{Hi: 100, S: 1.3})
	seq := qswitch.GenerateTraffic(gen, cfg, 1000, 99)

	// Persist to a temporary file in the compact binary format.
	dir, err := os.MkdirTemp("", "qswitch-traces")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bursty.qsw")

	tr := &qswitch.Trace{Inputs: cfg.Inputs, Outputs: cfg.Outputs, Packets: seq}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.WriteBinary(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(path)
	fmt.Printf("wrote %s: %d packets, %d bytes (%.1f bytes/packet incl. checksum)\n",
		path, len(seq), info.Size(), float64(info.Size())/float64(len(seq)))

	// Reload and verify the round trip is exact.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := packet.ReadBinary(rf)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}
	if len(loaded.Packets) != len(seq) {
		log.Fatalf("round trip lost packets: %d vs %d", len(loaded.Packets), len(seq))
	}

	// JSON form for human inspection.
	var js bytes.Buffer
	if err := tr.WriteJSON(&js); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JSON form is %d bytes; first 120: %.120s...\n\n", js.Len(), js.String())

	// Replay the identical workload against two policies.
	for _, name := range []string{"pg", "naive-fifo"} {
		res, err := qswitch.SimulateCIOQ(cfg, name, loaded.Packets)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s benefit=%-8d loss=%.1f%%\n", name, res.M.Benefit, 100*res.M.LossRate())
	}

	// Sparse workloads and the event-driven engine. The sparse generator
	// family — PoissonBurst (line-rate packet trains between long
	// geometric silences), Diurnal (sinusoidal day/night load whose
	// troughs go quiet) and HeavyTail (Pareto interarrival gaps) — leaves
	// most slots empty or quiescent, and the simulator (event-driven by
	// default) jumps those stretches while producing bit-identical
	// metrics; Config.Dense opts out for comparison.
	sparse := packet.PoissonBurst{OffMean: 500, BurstMean: 5, Values: packet.UniformValues{Hi: 50}}
	longSeq := qswitch.GenerateTraffic(sparse, cfg, 200000, 7)
	sparseCfg := cfg
	sparseCfg.Slots = 200000

	denseCfg := sparseCfg
	denseCfg.Dense = true
	t0 := time.Now()
	dense, err := qswitch.SimulateCIOQ(denseCfg, "gm-rotating", longSeq)
	if err != nil {
		log.Fatal(err)
	}
	denseT := time.Since(t0)

	t0 = time.Now()
	fast, err := qswitch.SimulateCIOQ(sparseCfg, "gm-rotating", longSeq)
	if err != nil {
		log.Fatal(err)
	}
	eventT := time.Since(t0)

	fmt.Printf("\nsparse replay (%d packets over %d slots, %s):\n", len(longSeq), sparseCfg.Slots, sparse.Name())
	fmt.Printf("  dense engine:        benefit=%d in %v\n", dense.M.Benefit, denseT)
	fmt.Printf("  event-driven engine: benefit=%d in %v (%.1fx faster, identical metrics: %v)\n",
		fast.M.Benefit, eventT, float64(denseT)/float64(eventT), reflect.DeepEqual(dense.M, fast.M))
}
