// Trace example: generate a bursty workload, persist it as a checksummed
// binary trace, reload it, and replay it identically against two policies.
// Demonstrates the trace API used to archive and share workloads between
// experiments.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"qswitch"
	"qswitch/internal/packet"
)

func main() {
	cfg := qswitch.Config{
		Inputs: 8, Outputs: 8,
		InputBuf: 4, OutputBuf: 4,
		Speedup: 1,
	}
	gen := qswitch.BurstyTraffic(0.9, 0.2, 0.15, packet.ZipfValues{Hi: 100, S: 1.3})
	seq := qswitch.GenerateTraffic(gen, cfg, 1000, 99)

	// Persist to a temporary file in the compact binary format.
	dir, err := os.MkdirTemp("", "qswitch-traces")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bursty.qsw")

	tr := &qswitch.Trace{Inputs: cfg.Inputs, Outputs: cfg.Outputs, Packets: seq}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.WriteBinary(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(path)
	fmt.Printf("wrote %s: %d packets, %d bytes (%.1f bytes/packet incl. checksum)\n",
		path, len(seq), info.Size(), float64(info.Size())/float64(len(seq)))

	// Reload and verify the round trip is exact.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := packet.ReadBinary(rf)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}
	if len(loaded.Packets) != len(seq) {
		log.Fatalf("round trip lost packets: %d vs %d", len(loaded.Packets), len(seq))
	}

	// JSON form for human inspection.
	var js bytes.Buffer
	if err := tr.WriteJSON(&js); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JSON form is %d bytes; first 120: %.120s...\n\n", js.Len(), js.String())

	// Replay the identical workload against two policies.
	for _, name := range []string{"pg", "naive-fifo"} {
		res, err := qswitch.SimulateCIOQ(cfg, name, loaded.Packets)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s benefit=%-8d loss=%.1f%%\n", name, res.M.Benefit, 100*res.M.LossRate())
	}
}
