// QoS example: a congested edge switch carrying two service classes —
// bulk traffic (value 1) and premium traffic (value 50) — in bursty,
// non-Poisson arrivals. Compares the paper's Preemptive Greedy (PG)
// against the maximum-weight-matching baseline and a value-blind FIFO
// switch, reporting how much premium value each policy preserves.
package main

import (
	"fmt"
	"log"

	"qswitch"
	"qswitch/internal/packet"
)

func main() {
	cfg := qswitch.Config{
		Inputs: 16, Outputs: 16,
		InputBuf: 4, OutputBuf: 4,
		Speedup: 1,
		Slots:   3000, // fixed horizon: the switch stays congested
	}

	// Two-class QoS mix: 15% of packets are premium (value 50); bursts
	// target per-flow destinations, overloading individual outputs.
	gen := qswitch.BurstyTraffic(1.0, 0.15, 0.10,
		packet.TwoValued{Alpha: 50, PHigh: 0.15})
	seq := qswitch.GenerateTraffic(gen, cfg, 2500, 7)

	var premiumOffered, bulkOffered int64
	for _, p := range seq {
		if p.Value > 1 {
			premiumOffered += p.Value
		} else {
			bulkOffered++
		}
	}
	fmt.Printf("offered: %d packets (premium value %d, bulk %d)\n\n",
		len(seq), premiumOffered, bulkOffered)

	ub, err := qswitch.OfflineUpperBound(cfg, seq, false)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %12s %10s %10s %12s\n",
		"policy", "benefit", "%of-UB", "sent", "preempted")
	for _, name := range []string{"pg", "kr-maxweight", "naive-fifo", "roundrobin"} {
		res, err := qswitch.SimulateCIOQ(cfg, name, seq)
		if err != nil {
			log.Fatal(err)
		}
		pre := res.M.PreemptedInput + res.M.PreemptedOutput
		fmt.Printf("%-14s %12d %9.1f%% %10d %12d\n",
			name, res.M.Benefit, 100*float64(res.M.Benefit)/float64(ub), res.M.Sent, pre)
	}

	fmt.Println("\nPG trades bulk packets for premium ones via preemption;")
	fmt.Println("the FIFO baseline drops whatever arrives when buffers are full.")

	// The paper's closing remark: beta should follow the traffic mix.
	fmt.Println("\nbeta sensitivity on this mix:")
	for _, beta := range []float64{1.1, qswitch.DefaultBetaPG(), 6.0} {
		res, err := qswitch.SimulateCIOQ(cfg, qswitch.NewPG(beta), seq)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  beta=%.3f  benefit=%d\n", beta, res.M.Benefit)
	}
}
