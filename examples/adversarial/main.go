// Adversarial example: watch the competitive-analysis machinery work.
// Builds the classical (2 - 1/m) lower-bound sequence against GM, verifies
// the ratio against the exact offline optimum, and then lets the
// local-search fuzzer hunt for worse instances — which it never finds
// beyond the proven bound of 3.
package main

import (
	"fmt"
	"log"

	"qswitch"
	"qswitch/internal/adversary"
	"qswitch/internal/packet"
	"qswitch/internal/ratio"
)

func main() {
	fmt.Println("== hand-crafted lower bound: refills behind GM's back ==")
	for _, m := range []int{2, 3, 8, 32} {
		cfg := adversary.IQLowerBoundCfg(m)
		seq := adversary.IQLowerBound(m, 3)
		res, err := qswitch.SimulateCIOQ(cfg, "gm", seq)
		if err != nil {
			log.Fatal(err)
		}
		// For m <= 3 the exact DP confirms OPT; beyond that the
		// construction's value is analytic (all packets deliverable).
		opt := int64((2*m - 1) * 3)
		if m <= 3 {
			exact, err := qswitch.ExactOptimum(cfg, seq, false)
			if err != nil {
				log.Fatal(err)
			}
			if exact != opt {
				log.Fatalf("analytic OPT %d != exact %d", opt, exact)
			}
		}
		fmt.Printf("  m=%2d: GM=%4d OPT=%4d ratio=%.4f (construction: %.4f, bound: 3)\n",
			m, res.M.Benefit, opt, float64(opt)/float64(res.M.Benefit), 2-1/float64(m))
	}

	fmt.Println("\n== adversarial local search against GM (judge: exact OPT) ==")
	cfg := qswitch.Config{Inputs: 2, Outputs: 2, InputBuf: 1, OutputBuf: 1,
		CrossBuf: 1, Speedup: 1}
	eval := func(seq packet.Sequence) (float64, bool) {
		r, ok, err := ratio.Single(cfg,
			ratio.CIOQAlg(func() qswitch.CIOQPolicy {
				p, _ := qswitch.NewCIOQPolicy("gm")
				return p
			}),
			ratio.ExactUnitCIOQ(), seq)
		if err != nil {
			return 0, false
		}
		return r, ok
	}
	res := adversary.Search(adversary.SearchOptions{
		Inputs: 2, Outputs: 2, MaxSlots: 6, MaxPackets: 10,
		MaxValue: 1, Iterations: 2000, Seed: 3, Restarts: 4,
	}, eval)
	fmt.Printf("  best ratio found: %.4f after %d mutants (proven bound: 3)\n",
		res.Ratio, res.Tried)
	fmt.Printf("  worst instance (%d packets):\n", len(res.Seq))
	for _, p := range res.Seq {
		fmt.Printf("    t=%d  in=%d -> out=%d\n", p.Arrival, p.In, p.Out)
	}
}
