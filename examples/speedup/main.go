// Speedup study: how much fabric speedup do CIOQ and buffered crossbar
// switches need before the output links (not the fabric) become the
// bottleneck? Reproduces the shape of experiment E6 on hotspot traffic
// and shows the crossbar's advantage at speedup 1.
package main

import (
	"fmt"
	"log"

	"qswitch"
	"qswitch/internal/packet"
)

func main() {
	const n = 16
	const slots = 2000

	gen := qswitch.HotspotTraffic(1.0, 0, 0.3, packet.UniformValues{Hi: 20})

	fmt.Println("throughput (packets/slot) on 16x16 hotspot traffic, load 1.0:")
	fmt.Printf("%-8s %-10s %-12s %-12s\n", "speedup", "model", "policy", "throughput")
	for speedup := 1; speedup <= 4; speedup++ {
		cfg := qswitch.Config{
			Inputs: n, Outputs: n,
			InputBuf: 4, OutputBuf: 4, CrossBuf: 2,
			Speedup: speedup, Slots: slots,
		}
		seq := qswitch.GenerateTraffic(gen, cfg, slots*3/4, 11)

		for _, name := range []string{"gm", "pg"} {
			res, err := qswitch.SimulateCIOQ(cfg, name, seq)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8d %-10s %-12s %.4f\n", speedup, "cioq", name, res.Throughput())
		}
		for _, name := range []string{"cgu", "cpg"} {
			res, err := qswitch.SimulateCrossbar(cfg, name, seq)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8d %-10s %-12s %.4f\n", speedup, "crossbar", name, res.Throughput())
		}
	}

	fmt.Println("\nNote how the competitive guarantees (Theorems 1-4) hold at EVERY")
	fmt.Println("speedup; extra cycles only move the operating point closer to the")
	fmt.Println("output-link bound.")
}
