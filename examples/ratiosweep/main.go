// Ratio sweep: measure empirical competitive ratios for every CIOQ
// policy in the registry against the exact offline optimum, in parallel
// across all cores. Demonstrates the measurement API that backs the
// paper-reproduction experiments (E1/E2) and the parallel harness.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"qswitch"
)

func main() {
	cfg := qswitch.Config{
		Inputs: 2, Outputs: 2,
		InputBuf: 2, OutputBuf: 2,
		Speedup: 1,
		Slots:   6, // micro instances keep the exact optimum fast
	}
	gen := qswitch.UniformTraffic(1.8) // overload: contention is where ratios live
	const runs = 200

	fmt.Printf("exact-OPT competitive ratios, %d seeded overload workloads, %d cores\n\n",
		runs, runtime.GOMAXPROCS(0))
	fmt.Printf("%-14s %10s %10s %10s %10s %8s\n", "policy", "max", "mean", "ci95", "t-hw95", "time")

	for _, name := range qswitch.CIOQPolicyNames() {
		start := time.Now()
		est, err := qswitch.MeasureRatioCIOQParallel(cfg, name, gen, true, 1000, runs, 0)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		// CI95 is the streaming 1.96-sigma approximation; HalfWidth is the
		// exact Student-t interval the sequential stopping rules use.
		fmt.Printf("%-14s %10.4f %10.4f %10.4f %10.4f %7.2fs\n",
			name, est.Max, est.Mean, est.CI95, est.HalfWidth(0.95), time.Since(start).Seconds())
	}

	fmt.Println("\nEvery unit-capable policy stays below 3 (Theorem 1's bound for GM);")
	fmt.Println("weighted policies stay below 3+2*sqrt(2) (Theorem 2). The differences")
	fmt.Println("between maximal and maximum matching are invisible here — efficiency")
	fmt.Println("is where they differ (run ./cmd/switchbench -run e5).")
}
