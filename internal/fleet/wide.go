package fleet

import (
	"fmt"
	"math/bits"

	"qswitch/internal/bitset"
	"qswitch/internal/matching"
	"qswitch/internal/packet"
	"qswitch/internal/switchsim"
)

// The wide engine lifts the columnar fleet beyond 64 ports: occupancy
// rows become bitset.Mask-backed multi-word rows behind the same
// word-count-generic layout, while the ≤64-port fleets keep their
// specialized single-uint64 kernels (and their pass-through transmit
// path) byte-for-byte. Both variants sit behind the runner dispatch in
// fleet.go; results are bit-identical to the scalar engines either way.

// maxWidePorts is the wide engine's port limit. It bounds the occupancy
// rows at 8 words; beyond it the runners fall back to scalar runs.
const maxWidePorts = 512

// wideCtr is the per-instance layer-occupancy counters of a wide
// instance (the multi-word masks live in their own flat arrays).
type wideCtr struct {
	in, cross, out int32
}

// wideCIOQFleet is CIOQFleet with multi-word occupancy rows: B CIOQ
// instances with 64 < ports <= maxWidePorts in columnar layout. The slot
// loop is the same admission / kernel-cycles / transmission / quiescent
// jump pipeline; masks are bitset.Mask rows instead of single words, and
// transfers always do the ring store (no pass-through buffer, so
// passCount stays zero).
type wideCIOQFleet struct {
	cfg    switchsim.Config
	policy string
	kern   wideCIOQKernel
	batch  int
	cur    int
	n, m   int
	nm     int
	wn, wm int // words per input-indexed row (wn) and output-indexed row (wm)
	icap   int
	ocap   int
	inBuf  int32
	outBuf int32

	// Columnar switch state: per-instance blocks inside flat arrays.
	voq      bitset.Mask // [(k*n+i)*wm + w]: outputs j with IQ(k,i,j) non-empty
	voqByOut bitset.Mask // [(k*m+j)*wn + w]: inputs i with IQ(k,i,j) non-empty
	outFree  bitset.Mask // [k*wm + w]
	outBusy  bitset.Mask // [k*wm + w]
	st       []wideCtr   // [k]
	iq       []pkt
	iqHdr    []qhdr
	oq       []pkt
	oqHdr    []qhdr
	hot      []hotCtr

	// ID lanes (weighted kernels only); see CIOQFleet.
	iqID []int64
	oqID []int64

	ms      []switchsim.Metrics
	series  [][]int64
	results []*switchsim.Result

	seqs    []packet.Sequence
	next    []int
	horizon []int
	at      []int

	active []int32
	sleep  []sleeper
	slot   int
	live   int
	err    error

	view wideCIOQView

	// Kernel state and scratch.
	rrGrant  []int32     // [k*m+j]
	rrAccept []int32     // [k*n+i]
	grants   bitset.Mask // [i*wm + w] grant rows, one cycle's scratch
	availIn  bitset.Mask // [wn] scratch
	availOut bitset.Mask // [wm] scratch
	edges    []matching.Edge
	sched    matching.WeightedScheduler
	hung     matching.HungarianSolver
	matcher  wideMatcher
}

// wideCIOQView is the per-instance working set of a wide CIOQ instance;
// see cioqView.
type wideCIOQView struct {
	f        *wideCIOQFleet
	k        int
	st       *wideCtr
	hm       *hotCtr
	lat      *switchsim.Metrics
	voq      bitset.Mask
	voqByOut bitset.Mask
	outFree  bitset.Mask
	outBusy  bitset.Mask
	iqHdr    []qhdr
	iq       []pkt
	oqHdr    []qhdr
	oq       []pkt
	iqID     []int64
	oqID     []int64
	series   []int64
	rrG, rrA []int32

	n, m, nm       int
	wn, wm         int
	icapM, ocapM   int32
	icap, ocap     int
	inBuf, outBuf  int32
	speedup        int
	recLat, recSer bool
	wantByOut      bool
	weighted       bool
}

// voqRow returns input i's occupancy row (outputs with queued packets).
func (v *wideCIOQView) voqRow(i int) bitset.Mask {
	return v.voq[i*v.wm : (i+1)*v.wm]
}

// voqByOutRow returns output j's transposed occupancy row.
func (v *wideCIOQView) voqByOutRow(j int) bitset.Mask {
	return v.voqByOut[j*v.wn : (j+1)*v.wn]
}

func (v *wideCIOQView) bind(f *wideCIOQFleet, k int) {
	v.f = f
	v.k = k
	v.st = &f.st[k]
	v.hm = &f.hot[k]
	v.lat = &f.ms[k]
	v.voq = f.voq[k*f.n*f.wm : (k+1)*f.n*f.wm]
	v.voqByOut = f.voqByOut[k*f.m*f.wn : (k+1)*f.m*f.wn]
	v.outFree = f.outFree[k*f.wm : (k+1)*f.wm]
	v.outBusy = f.outBusy[k*f.wm : (k+1)*f.wm]
	v.iqHdr = f.iqHdr[k*f.nm : (k+1)*f.nm]
	v.iq = f.iq[k*f.nm*f.icap : (k+1)*f.nm*f.icap]
	v.oqHdr = f.oqHdr[k*f.m : (k+1)*f.m]
	v.oq = f.oq[k*f.m*f.ocap : (k+1)*f.m*f.ocap]
	if f.cfg.RecordSeries {
		v.series = f.series[k]
	}
	if f.rrGrant != nil {
		v.rrG = f.rrGrant[k*f.m : (k+1)*f.m]
		v.rrA = f.rrAccept[k*f.n : (k+1)*f.n]
	}
	if f.iqID != nil {
		v.iqID = f.iqID[k*f.nm*f.icap : (k+1)*f.nm*f.icap]
		v.oqID = f.oqID[k*f.m*f.ocap : (k+1)*f.m*f.ocap]
	}
}

// newWideCIOQFleet sizes a wide fleet of `batch` instances; see
// NewCIOQFleet. It serves geometries with maxPorts < ports <=
// maxWidePorts (smaller ones take the specialized single-word fleet).
func newWideCIOQFleet(cfg switchsim.Config, factory func() switchsim.CIOQPolicy, batch int) (*wideCIOQFleet, error) {
	if err := cfg.Check(false); err != nil {
		return nil, err
	}
	if batch < 1 {
		return nil, fmt.Errorf("fleet: batch size %d < 1", batch)
	}
	pol := factory()
	kern := wideCIOQKernelFor(pol)
	if kern == nil {
		return nil, fmt.Errorf("fleet: policy %q: %w", pol.Name(), ErrUnsupported)
	}
	if cfg.Inputs > maxWidePorts || cfg.Outputs > maxWidePorts {
		return nil, fmt.Errorf("fleet: geometry %dx%d exceeds %d ports: %w", cfg.Inputs, cfg.Outputs, maxWidePorts, ErrUnsupported)
	}
	n, m := cfg.Inputs, cfg.Outputs
	f := &wideCIOQFleet{
		cfg: cfg, policy: pol.Name(), kern: kern, batch: batch, cur: batch,
		n: n, m: m, nm: n * m,
		wn: bitset.Words(n), wm: bitset.Words(m),
		icap: ceilPow2(cfg.InputBuf), ocap: ceilPow2(cfg.OutputBuf),
		inBuf: int32(cfg.InputBuf), outBuf: int32(cfg.OutputBuf),
	}
	f.voq = make(bitset.Mask, batch*n*f.wm)
	f.voqByOut = make(bitset.Mask, batch*m*f.wn)
	f.outFree = make(bitset.Mask, batch*f.wm)
	f.outBusy = make(bitset.Mask, batch*f.wm)
	f.st = make([]wideCtr, batch)
	f.iq = make([]pkt, batch*f.nm*f.icap)
	f.iqHdr = make([]qhdr, batch*f.nm)
	f.oq = make([]pkt, batch*m*f.ocap)
	f.oqHdr = make([]qhdr, batch*m)
	f.hot = make([]hotCtr, batch)
	f.ms = make([]switchsim.Metrics, batch)
	f.series = make([][]int64, batch)
	f.results = make([]*switchsim.Result, batch)
	f.next = make([]int, batch)
	f.horizon = make([]int, batch)
	f.at = make([]int, batch)
	f.active = make([]int32, 0, batch)
	f.sleep = make([]sleeper, 0, batch)
	f.availIn = make(bitset.Mask, f.wn)
	f.availOut = make(bitset.Mask, f.wm)
	v := &f.view
	v.n, v.m, v.nm = n, m, f.nm
	v.wn, v.wm = f.wn, f.wm
	v.icap, v.ocap = f.icap, f.ocap
	v.icapM, v.ocapM = int32(f.icap-1), int32(f.ocap-1)
	v.inBuf, v.outBuf = f.inBuf, f.outBuf
	v.speedup = cfg.Speedup
	v.recLat, v.recSer = cfg.RecordLatency, cfg.RecordSeries
	v.wantByOut = kern.wantsVOQByOut() || cfg.Validate
	if kern.weighted() {
		v.weighted = true
		f.iqID = make([]int64, batch*f.nm*f.icap)
		f.oqID = make([]int64, batch*m*f.ocap)
	}
	kern.reset(f)
	return f, nil
}

func (f *wideCIOQFleet) batchCap() int { return f.batch }
func (f *wideCIOQFleet) passes() int64 { return 0 }

// Reset loads a new batch of sequences; see (*CIOQFleet).Reset.
func (f *wideCIOQFleet) Reset(seqs []packet.Sequence) error {
	if len(seqs) < 1 || len(seqs) > f.batch {
		return fmt.Errorf("fleet: got %d sequences for a batch of %d", len(seqs), f.batch)
	}
	f.cur = len(seqs)
	f.voq.Zero()
	f.voqByOut.Zero()
	f.outBusy.Zero()
	clear(f.iqHdr)
	clear(f.oqHdr)
	for k := 0; k < f.batch; k++ {
		f.outFree[k*f.wm : (k+1)*f.wm].Fill(f.m)
		f.st[k] = wideCtr{}
		f.hot[k] = hotCtr{}
	}
	f.seqs = seqs
	f.active = f.active[:0]
	f.sleep = f.sleep[:0]
	f.slot = 0
	f.live = f.cur
	f.err = nil
	for k := 0; k < f.cur; k++ {
		f.ms[k] = switchsim.Metrics{}
		if f.cfg.RecordLatency && f.cfg.StreamMetrics {
			f.ms[k].EnableLatencySketch()
		}
		f.results[k] = nil
		f.next[k] = 0
		f.at[k] = 0
		f.horizon[k] = f.cfg.HorizonFor(seqs[k])
		if f.cfg.RecordSeries {
			f.series[k] = make([]int64, f.horizon[k])
		} else {
			f.series[k] = nil
		}
		f.active = append(f.active, int32(k))
	}
	for k := f.cur; k < f.batch; k++ {
		f.ms[k] = switchsim.Metrics{}
		f.results[k] = nil
		f.series[k] = nil
	}
	f.kern.reset(f)
	return nil
}

// Step advances the global clock by one window; see (*CIOQFleet).Step.
func (f *wideCIOQFleet) Step() bool {
	if f.err != nil || f.live == 0 {
		return false
	}
	if len(f.active) == 0 {
		f.slot = f.sleep[0].wake
	}
	end := f.slot + windowSlots
	for len(f.sleep) > 0 && f.sleep[0].wake < end {
		var s sleeper
		f.sleep, s = sleepPop(f.sleep)
		f.at[s.k] = s.wake
		f.active = append(f.active, s.k)
	}
	for idx := 0; idx < len(f.active); idx++ {
		k := f.active[idx]
		switch f.runWindow(k, end) {
		case instActive:
		case instErr:
			return false
		default:
			last := len(f.active) - 1
			f.active[idx] = f.active[last]
			f.active = f.active[:last]
			idx--
		}
	}
	f.slot = end
	return f.live > 0 && f.err == nil
}

func (f *wideCIOQFleet) runWindow(k int32, end int) instStatus {
	kk := int(k)
	v := &f.view
	v.bind(f, kk)
	seq := f.seqs[kk]
	nx := f.next[kk]
	horizon := f.horizon[kk]
	st := v.st
	hm := v.hm
	T := f.at[kk]
	// Window-local metric accumulators; see (*CIOQFleet).runWindow.
	var aArr, aArrV, aAcc, aAccV, aRej, aRejV, aPre, aPreV, tSent, tBen, oIn, oOut, oSamp int64
	flush := func() {
		hm.arrived += aArr
		hm.arrivedVal += aArrV
		hm.accepted += aAcc
		hm.acceptedVal += aAccV
		hm.rejected += aRej
		hm.rejectedVal += aRejV
		hm.preemptedIn += aPre
		hm.preemptedInVal += aPreV
		hm.sent += tSent
		hm.benefit += tBen
		hm.inOccup += oIn
		hm.outOccup += oOut
		hm.sampled += oSamp
	}
	for {
		for nx < len(seq) && seq[nx].Arrival == T {
			p := &seq[nx]
			nx++
			if uint(p.In) >= uint(v.n) || uint(p.Out) >= uint(v.m) || p.Value < 1 {
				f.err = fmt.Errorf("fleet: instance %d: bad packet %v", kk, *p)
				return instErr
			}
			aArr++
			aArrV += p.Value
			q := p.In*v.m + p.Out
			h := &v.iqHdr[q]
			if v.weighted {
				// ByValue preemptive admission; see (*CIOQFleet).runWindow.
				if h.n >= v.inBuf {
					ti := q*v.icap + int((h.head+h.n-1)&v.icapM)
					tv := v.iq[ti].v
					if tv >= p.Value {
						aRej++
						aRejV += p.Value
						continue
					}
					h.n--
					ringInsert(v.iq, v.iqID, h, q*v.icap, v.icapM, pkt{v: p.Value, a: int32(p.Arrival)}, p.ID)
					aAcc++
					aAccV += p.Value
					aPre++
					aPreV += tv
					continue
				}
				ringInsert(v.iq, v.iqID, h, q*v.icap, v.icapM, pkt{v: p.Value, a: int32(p.Arrival)}, p.ID)
			} else {
				if h.n >= v.inBuf {
					aRej++
					aRejV += p.Value
					continue
				}
				v.iq[q*v.icap+int((h.head+h.n)&v.icapM)] = pkt{v: p.Value, a: int32(p.Arrival)}
				h.n++
			}
			v.voqRow(p.In).Set(p.Out)
			if v.wantByOut {
				v.voqByOutRow(p.Out).Set(p.In)
			}
			st.in++
			aAcc++
			aAccV += p.Value
		}

		for c := 0; c < v.speedup; c++ {
			f.kern.cycle(v, T, c)
		}
		if f.err != nil {
			return instErr
		}

		// Transmission: every non-empty output queue sends its head.
		ob := v.outBusy
		for wdx, word := range ob {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				j := wdx<<6 + b
				h := &v.oqHdr[j]
				p := v.oq[j*v.ocap+int(h.head)]
				h.head = (h.head + 1) & v.ocapM
				h.n--
				st.out--
				v.outFree[wdx] |= 1 << uint(b)
				if h.n == 0 {
					ob[wdx] &^= 1 << uint(b)
				}
				tSent++
				tBen += p.v
				if v.recLat {
					v.lat.RecordLatency(T - int(p.a))
				}
				if v.recSer {
					v.series[T] += p.v
				}
			}
		}

		oIn += int64(st.in)
		oOut += int64(st.out)
		oSamp++

		if f.cfg.Validate {
			if err := f.validate(kk, T); err != nil {
				f.err = err
				return instErr
			}
		}

		if !f.cfg.Dense && st.in == 0 {
			to := horizon
			if nx < len(seq) && seq[nx].Arrival < to {
				to = seq[nx].Arrival
			}
			if jump := to - (T + 1); jump > 0 {
				v.quiesce(T, jump)
				if f.cfg.Validate {
					if err := f.validate(kk, T+jump); err != nil {
						f.err = fmt.Errorf("after quiescent jump: %w", err)
						return instErr
					}
				}
				T += jump
			}
		}
		T++
		if T >= horizon {
			flush()
			f.next[kk] = nx
			return f.retire(k)
		}
		if T >= end {
			flush()
			f.next[kk] = nx
			f.at[kk] = T
			if T > end {
				f.sleep = sleepPush(f.sleep, sleeper{wake: T, k: k})
				return instSleep
			}
			return instActive
		}
	}
}

// transfer moves the head packet of IQ(i,j) to OQ(j); see
// (*cioqView).transfer. The wide engine always does the ring store.
func (v *wideCIOQView) transfer(i, j int) {
	q := i*v.m + j
	h := &v.iqHdr[q]
	p := v.iq[q*v.icap+int(h.head)]
	h.head = (h.head + 1) & v.icapM
	h.n--
	if h.n == 0 {
		v.voqRow(i).Clear(j)
		if v.wantByOut {
			v.voqByOutRow(j).Clear(i)
		}
	}
	ho := &v.oqHdr[j]
	v.oq[j*v.ocap+int((ho.head+ho.n)&v.ocapM)] = p
	ho.n++
	st := v.st
	st.in--
	v.outBusy.Set(j)
	if ho.n >= v.outBuf {
		v.outFree.Clear(j)
	}
	st.out++
	v.hm.transferred++
}

// wtransfer is the weighted counterpart of transfer; see
// (*cioqView).wtransfer.
func (v *wideCIOQView) wtransfer(i, j int) {
	q := i*v.m + j
	h := &v.iqHdr[q]
	x := q*v.icap + int(h.head)
	p := v.iq[x]
	id := v.iqID[x]
	h.head = (h.head + 1) & v.icapM
	h.n--
	if h.n == 0 {
		v.voqRow(i).Clear(j)
		if v.wantByOut {
			v.voqByOutRow(j).Clear(i)
		}
	}
	st := v.st
	st.in--
	ho := &v.oqHdr[j]
	base := j * v.ocap
	if ho.n >= v.outBuf {
		ti := base + int((ho.head+ho.n-1)&v.ocapM)
		tv := v.oq[ti].v
		if tv >= p.v {
			v.f.err = fmt.Errorf("fleet: transfer %d->%d of value %d rejected by full OQ (tail %d not worse)", i, j, p.v, tv)
			return
		}
		ho.n--
		ringInsert(v.oq, v.oqID, ho, base, v.ocapM, p, id)
		v.hm.preemptedOut++
		v.hm.preemptedOutVal += tv
	} else {
		ringInsert(v.oq, v.oqID, ho, base, v.ocapM, p, id)
		v.outBusy.Set(j)
		if ho.n >= v.outBuf {
			v.outFree.Clear(j)
		}
		st.out++
	}
	v.hm.transferred++
}

// quiesce advances the bound instance across `jump` arrival-free slots in
// closed form; see (*cioqView).quiesce.
func (v *wideCIOQView) quiesce(T, jump int) {
	st := v.st
	hm := v.hm
	ob := v.outBusy
	for wdx, word := range ob {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			j := wdx<<6 + b
			h := &v.oqHdr[j]
			l := int(h.n)
			d := min(l, jump)
			for x := 1; x <= d; x++ {
				p := v.oq[j*v.ocap+int(h.head)]
				h.head = (h.head + 1) & v.ocapM
				h.n--
				hm.sent++
				hm.benefit += p.v
				if v.recLat {
					v.lat.RecordLatency(T + x - int(p.a))
				}
				if v.recSer {
					v.series[T+x] += p.v
				}
			}
			st.out -= int32(d)
			hm.outOccup += int64(d)*int64(l) - int64(d)*int64(d+1)/2
			if h.n == 0 {
				ob[wdx] &^= 1 << uint(b)
			}
		}
	}
	hm.sampled += int64(jump)
}

func (f *wideCIOQFleet) retire(k int32) instStatus {
	if err := checkResidual(int(k), f.seqs[k], f.next[k], f.horizon[k]); err != nil {
		f.err = err
		return instErr
	}
	hm := &f.hot[k]
	m := &f.ms[k]
	m.Arrived, m.ArrivedValue = hm.arrived, hm.arrivedVal
	m.Accepted, m.AcceptedValue = hm.accepted, hm.acceptedVal
	m.Rejected, m.RejectedValue = hm.rejected, hm.rejectedVal
	m.Transferred = hm.transferred
	m.Sent, m.Benefit = hm.sent, hm.benefit
	m.PreemptedInput, m.PreemptedInputValue = hm.preemptedIn, hm.preemptedInVal
	m.PreemptedOutput, m.PreemptedOutputValue = hm.preemptedOut, hm.preemptedOutVal
	m.InputOccupSum, m.OutputOccupSum = hm.inOccup, hm.outOccup
	m.AddSlotSamples(hm.sampled)
	if f.cfg.RecordSeries {
		m.SlotBenefit = f.series[k]
	}
	if f.cfg.Validate {
		residual := int64(f.st[k].in) + int64(f.st[k].out)
		preempted := m.PreemptedInput + m.PreemptedOutput
		if m.Accepted != m.Sent+preempted+residual {
			f.err = fmt.Errorf("fleet: instance %d: conservation violated: accepted=%d sent=%d preempted=%d residual=%d",
				k, m.Accepted, m.Sent, preempted, residual)
			return instErr
		}
	}
	f.results[k] = &switchsim.Result{Policy: f.policy, Cfg: f.cfg, Slots: f.horizon[k], M: *m}
	f.live--
	return instRetired
}

func (f *wideCIOQFleet) validate(k, T int) error {
	var in, out int32
	st := &f.st[k]
	outFree := f.outFree[k*f.wm : (k+1)*f.wm]
	outBusy := f.outBusy[k*f.wm : (k+1)*f.wm]
	for i := 0; i < f.n; i++ {
		row := f.voq[(k*f.n+i)*f.wm : (k*f.n+i+1)*f.wm]
		for j := 0; j < f.m; j++ {
			q := k*f.nm + i*f.m + j
			l := f.iqHdr[q].n
			in += l
			if l < 0 || l > f.inBuf {
				return fmt.Errorf("fleet: slot %d instance %d: IQ[%d][%d] length %d out of range", T, k, i, j, l)
			}
			if got, want := row.Test(j), l > 0; got != want {
				return fmt.Errorf("fleet: slot %d instance %d: VOQ[%d] bit %d = %v, len=%d", T, k, i, j, got, l)
			}
			if got, want := f.voqByOut[(k*f.m+j)*f.wn:].Test(i), l > 0; got != want {
				return fmt.Errorf("fleet: slot %d instance %d: VOQByOut[%d] bit %d = %v, len=%d", T, k, j, i, got, l)
			}
			if f.iqID != nil && !ringOrdered(f.iq, f.iqID, f.iqHdr[q], q*f.icap, int32(f.icap-1)) {
				return fmt.Errorf("fleet: slot %d instance %d: IQ[%d][%d] not in ByValue order", T, k, i, j)
			}
		}
	}
	for j := 0; j < f.m; j++ {
		l := f.oqHdr[k*f.m+j].n
		out += l
		if l < 0 || l > f.outBuf {
			return fmt.Errorf("fleet: slot %d instance %d: OQ[%d] length %d out of range", T, k, j, l)
		}
		if got, want := outFree.Test(j), l < f.outBuf; got != want {
			return fmt.Errorf("fleet: slot %d instance %d: OutFree bit %d = %v, len=%d", T, k, j, got, l)
		}
		if got, want := outBusy.Test(j), l > 0; got != want {
			return fmt.Errorf("fleet: slot %d instance %d: OutBusy bit %d = %v, len=%d", T, k, j, got, l)
		}
		if f.oqID != nil && !ringOrdered(f.oq, f.oqID, f.oqHdr[k*f.m+j], (k*f.m+j)*f.ocap, int32(f.ocap-1)) {
			return fmt.Errorf("fleet: slot %d instance %d: OQ[%d] not in ByValue order", T, k, j)
		}
	}
	if in != st.in || out != st.out {
		return fmt.Errorf("fleet: slot %d instance %d: counters (in=%d,out=%d) but queues hold (%d,%d)",
			T, k, st.in, st.out, in, out)
	}
	return nil
}

// Results returns one Result per loaded instance; see
// (*CIOQFleet).Results.
func (f *wideCIOQFleet) Results() ([]*switchsim.Result, error) {
	if f.err != nil {
		return nil, f.err
	}
	if f.live > 0 {
		return nil, fmt.Errorf("fleet: %d instances still live", f.live)
	}
	return f.results[:f.cur], nil
}

// wideMatcher is the wide-switch batched matcher: a stable counting-sort
// bucket pass by weight — preserving the kernels' (U,V)-ascending
// enumeration order within each bucket, which is exactly the canonical
// order of matching.GreedyMaximalWeighted (weight desc, ties U asc then
// V asc) — followed by a greedy acceptance sweep over multi-word
// endpoint-availability masks. All scratch (buckets, sorted buffer,
// masks) is owned by the fleet, so it is shared across the batch
// dimension and across cycles. Inputs outside the bucket range delegate
// to the general scheduler, which produces the identical matching via
// its sorting paths.
type wideMatcher struct {
	count  []int32
	sorted []matching.Edge
	usedU  bitset.Mask
	usedV  bitset.Mask
	out    []matching.Edge
}

// wideMatchMaxW bounds the counting buckets, mirroring the scheduler's
// counting-sort fast path.
const wideMatchMaxW = 2048

// match returns the greedy maximal weighted matching of edges, which
// must be enumerated in (U, V)-ascending order. The result aliases
// internal scratch valid until the next call.
func (wm *wideMatcher) match(nU, nV int, edges []matching.Edge, sched *matching.WeightedScheduler) []matching.Edge {
	if len(edges) == 0 {
		return nil
	}
	var maxW int64
	for _, e := range edges {
		if e.W < 0 || e.W > wideMatchMaxW {
			return sched.GreedyMaximalWeighted(nU, nV, edges)
		}
		if e.W > maxW {
			maxW = e.W
		}
	}
	if cap(wm.count) < int(maxW)+1 {
		wm.count = make([]int32, maxW+1)
	}
	cnt := wm.count[:maxW+1]
	clear(cnt)
	for _, e := range edges {
		cnt[e.W]++
	}
	// Bucket offsets by descending weight: the scatter below is stable,
	// so equal-weight edges keep their (U, V)-ascending input order.
	var pos int32
	for w := maxW; w >= 0; w-- {
		c := cnt[w]
		cnt[w] = pos
		pos += c
	}
	if cap(wm.sorted) < len(edges) {
		wm.sorted = make([]matching.Edge, len(edges))
	}
	srt := wm.sorted[:len(edges)]
	for _, e := range edges {
		srt[cnt[e.W]] = e
		cnt[e.W]++
	}
	wU, wV := bitset.Words(nU), bitset.Words(nV)
	if cap(wm.usedU) < wU {
		wm.usedU = make(bitset.Mask, wU)
	}
	if cap(wm.usedV) < wV {
		wm.usedV = make(bitset.Mask, wV)
	}
	uu, vv := wm.usedU[:wU], wm.usedV[:wV]
	uu.Zero()
	vv.Zero()
	out := wm.out[:0]
	for _, e := range srt {
		if uu.Test(e.U) || vv.Test(e.V) {
			continue
		}
		uu.Set(e.U)
		vv.Set(e.V)
		out = append(out, e)
	}
	wm.out = out
	return out
}
