package fleet

import (
	"math"
	"math/bits"

	"qswitch/internal/core"
	"qswitch/internal/matching"
	"qswitch/internal/switchsim"
)

// cioqKernel is the batched counterpart of a scalar CIOQ policy's
// Schedule method. One cycle call computes the policy's matching for the
// bound instance from the columnar occupancy index and executes each
// transfer inline via view.transfer. A kernel must reproduce the scalar
// policy's decisions exactly: eligibility is read from the state the
// scalar engine would expose to the policy at the start of the cycle
// (snapshot words where interleaved execution could otherwise leak into
// later picks), and any slot-dependent state must be derivable from
// (slot, cycle) so quiescent jumps need no per-policy hook.
type cioqKernel interface {
	reset(f *CIOQFleet)
	cycle(v *cioqView, slot, cycle int)
	// wantsVOQByOut reports whether the kernel reads the transposed
	// occupancy rows; when false (and Validate is off) the engine skips
	// maintaining them, saving two index updates per packet move.
	wantsVOQByOut() bool
	// weighted reports whether the kernel's policy family uses the
	// ByValue queue discipline; the engine then allocates ID lanes and
	// switches admission and transfers to preemptive ByValue insertion.
	weighted() bool
}

// crossbarKernel is the batched counterpart of a scalar crossbar policy's
// two subphases, under the same exactness contract as cioqKernel.
type crossbarKernel interface {
	cycle(v *crossbarView, slot, cycle int)
	// weighted is as in cioqKernel.
	weighted() bool
}

// cioqKernelFor maps a scalar policy to its batched kernel, or nil when
// the policy has none (the caller then falls back to the scalar engine).
// Matching is by concrete type, so wrappers and subclasses safely miss.
func cioqKernelFor(pol switchsim.CIOQPolicy) cioqKernel {
	switch p := pol.(type) {
	case *core.GM:
		return &gmKernel{order: p.Order}
	case *core.NaiveFIFO:
		// NaiveFIFO's first-fit matching is exactly GM's row-major scan.
		return &gmKernel{order: core.RowMajor}
	case *core.RoundRobin:
		return &rrKernel{}
	case *core.PG:
		// Replicates (*core.PG).Reset's beta resolution.
		beta := p.Beta
		if beta == 0 {
			beta = core.DefaultBetaPG()
		} else if beta < 1 {
			beta = 1
		}
		return &pgKernel{beta: beta}
	case *core.KRMWM:
		// Replicates (*core.KRMWM).Reset: zero defaults to 2, and unlike
		// PG there is no >=1 clamp.
		beta := p.Beta
		if beta == 0 {
			beta = 2
		}
		return &pgKernel{beta: beta, maxWeight: true}
	}
	return nil
}

// crossbarKernelFor is cioqKernelFor for crossbar policies.
func crossbarKernelFor(pol switchsim.CrossbarPolicy) crossbarKernel {
	switch p := pol.(type) {
	case *core.CGU:
		return &cguKernel{rotate: p.RotatePick}
	case *core.CPG:
		// Replicates (*core.CPG).Reset's parameter resolution (zero means
		// the paper default, anything else clamps to >= 1).
		return &cpgKernel{beta: cpgParam(p.Beta, core.DefaultBetaCPG()), alpha: cpgParam(p.Alpha, core.DefaultAlphaCPG())}
	}
	return nil
}

// cpgParam mirrors core's betaOrDefault: zero picks the default, other
// values clamp to at least 1.
func cpgParam(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return math.Max(v, 1)
}

// gmKernel is the batched GM (and NaiveFIFO) scheduler: a greedy maximal
// matching over the eligibility words {voq row ∧ free outputs} in the
// configured scan order. The Rotating order's tick counter is derived
// from the clock — the scalar policy gains one tick per scheduling cycle
// whether or not any queue is occupied, so ticks == slot*Speedup + cycle.
type gmKernel struct {
	order core.EdgeOrder
}

func (g *gmKernel) reset(f *CIOQFleet) {
	if g.order == core.LongestFirst && cap(f.edges) < f.nm {
		f.edges = make([]matching.Edge, 0, f.nm)
	}
}

func (g *gmKernel) wantsVOQByOut() bool { return g.order == core.ColMajor }

func (g *gmKernel) weighted() bool { return false }

func (g *gmKernel) cycle(v *cioqView, slot, cycle int) {
	n, m := v.n, v.m
	switch g.order {
	case core.ColMajor:
		availIn := v.allIn
		of := v.st.outFree
		for j := 0; j < m; j++ {
			if of&(1<<uint(j)) == 0 {
				continue
			}
			if w := v.voqByOut[j] & availIn; w != 0 {
				i := bits.TrailingZeros64(w)
				availIn &^= 1 << uint(i)
				v.transfer(i, j)
			}
		}
	case core.Rotating:
		ticks := slot*v.speedup + cycle
		oi, oj := ticks%n, ticks%m
		avail := v.st.outFree
		for di := 0; di < n; di++ {
			i := (oi + di) % n
			if j := firstFrom(v.voq[i]&avail, oj); j >= 0 {
				avail &^= 1 << uint(j)
				v.transfer(i, j)
			}
		}
	case core.LongestFirst:
		f := v.f
		f.edges = f.edges[:0]
		of := v.st.outFree
		for i := 0; i < n; i++ {
			w := v.voq[i] & of
			for w != 0 {
				j := bits.TrailingZeros64(w)
				w &= w - 1
				f.edges = append(f.edges, matching.Edge{U: i, V: j, W: int64(v.iqHdr[i*m+j].n)})
			}
		}
		for _, e := range f.sched.GreedyMaximalWeighted(n, m, f.edges) {
			v.transfer(e.U, e.V)
		}
	default: // core.RowMajor
		avail := v.st.outFree
		for i := 0; i < n; i++ {
			if w := v.voq[i] & avail; w != 0 {
				j := bits.TrailingZeros64(w)
				avail &^= 1 << uint(j)
				v.transfer(i, j)
			}
		}
	}
}

// rrKernel is the batched iSLIP-style RoundRobin scheduler: one
// grant/accept round with per-output grant and per-input accept pointers
// that advance only on acceptance, so quiescent stretches leave them
// untouched and no idle hook is needed.
type rrKernel struct{}

func (rrKernel) wantsVOQByOut() bool { return true }

func (rrKernel) weighted() bool { return false }

func (rrKernel) reset(f *CIOQFleet) {
	if len(f.rrGrant) != f.batch*f.m {
		f.rrGrant = make([]int32, f.batch*f.m)
		f.rrAccept = make([]int32, f.batch*f.n)
		f.grants = make([]uint64, f.n)
	}
	clear(f.rrGrant)
	clear(f.rrAccept)
}

func (rrKernel) cycle(v *cioqView, slot, cycle int) {
	n, m := v.n, v.m
	grants := v.f.grants[:n]
	for i := range grants {
		grants[i] = 0
	}
	// Grant: each open output grants the first requesting input at or
	// after its grant pointer.
	of := v.st.outFree
	for j := 0; j < m; j++ {
		if of&(1<<uint(j)) == 0 {
			continue
		}
		if i := firstFrom(v.voqByOut[j], int(v.rrG[j])); i >= 0 {
			grants[i] |= 1 << uint(j)
		}
	}
	// Accept: each input accepts the first granting output at or after
	// its accept pointer; pointers advance only on acceptance.
	for i := 0; i < n; i++ {
		if ch := firstFrom(grants[i], int(v.rrA[i])); ch >= 0 {
			v.transfer(i, ch)
			v.rrA[i] = int32((ch + 1) % m)
			v.rrG[ch] = int32((i + 1) % n)
		}
	}
}

// pgKernel is the batched PG / KRMWM scheduler: enumerate the eligible
// VOQ-head edges (destination open, or the head beats beta times the
// destination's least valuable packet), match — greedy maximal for PG,
// maximum-weight Hungarian for KRMWM — and execute each transfer with
// output-side preemption. Both scalar policies resolve their beta in
// Reset; the kernel bakes the resolved value in at construction. Neither
// policy has slot-dependent state, so no idle hook is needed.
type pgKernel struct {
	beta      float64
	maxWeight bool // KRMWM: maximum-weight matching instead of greedy maximal
}

// pgFastMaxW bounds the packed-key fast path of the greedy PG kernel; it
// matches the counting-sort weight bound inside matching.WeightedScheduler
// so the two paths cover exactly the same instances.
const pgFastMaxW = 2048

func (g *pgKernel) reset(f *CIOQFleet) {
	if cap(f.edges) < f.nm {
		f.edges = make([]matching.Edge, 0, f.nm)
	}
	if !g.maxWeight && (len(f.wcnt) != pgFastMaxW+1 || cap(f.wsorted) < f.nm) {
		f.wkeys = make([]uint32, 0, f.nm)
		f.wsorted = make([]uint32, f.nm)
		f.wcnt = make([]int32, pgFastMaxW+1)
		f.wcntHi = 0
	}
}

func (g *pgKernel) wantsVOQByOut() bool { return false }

func (g *pgKernel) weighted() bool { return true }

func (g *pgKernel) cycle(v *cioqView, slot, cycle int) {
	if !g.maxWeight && g.fastCycle(v) {
		return
	}
	g.genericCycle(v)
}

// fastCycle is the greedy-PG hot path: eligible VOQ-head edges are packed
// into uint32 keys (weight<<12 | input<<6 | output, valid because narrow
// ports fit 6 bits and the fast path requires weight <= pgFastMaxW), a
// stable counting scatter by weight descending reproduces the scheduler's
// contract order (weight desc, ties input asc then output asc — the
// enumeration itself is (input, output)-ascending), and the greedy accept
// runs on two uint64 used-port masks, executing each accepted transfer
// immediately. Decisions are identical to the matching-package path;
// reports false without transferring anything when a head value exceeds
// the packed range, so the caller can rerun the generic path.
func (g *pgKernel) fastCycle(v *cioqView) bool {
	f := v.f
	cnt := f.wcnt
	clear(cnt[:f.wcntHi])
	keys := f.wkeys[:0]
	maxW := int32(0)
	of := v.st.outFree
	// A full output's tail value (and its beta multiple) is shared by
	// every input's eligibility test, so hoist both out of the edge scan
	// and compute them once per cycle.
	var tailV [64]int64
	var tailB [64]float64
	for w := allOnes(v.m) &^ of; w != 0; w &= w - 1 {
		j := bits.TrailingZeros64(w)
		ho := &v.oqHdr[j]
		tv := v.oq[j*v.ocap+int((ho.head+ho.n-1)&v.ocapM)].v
		tailV[j] = tv
		tailB[j] = g.beta * float64(tv)
	}
	for i := 0; i < v.n; i++ {
		w := v.voq[i]
		for w != 0 {
			j := bits.TrailingZeros64(w)
			w &= w - 1
			q := i*v.m + j
			hv := v.iqHV[q]
			if of&(1<<uint(j)) == 0 {
				// beta >= 1, so hv <= tail already fails eligibility;
				// the integer compare keeps the float math off the
				// common rejected path.
				if hv <= tailV[j] || float64(hv) <= tailB[j] {
					continue
				}
			}
			if hv > pgFastMaxW {
				// Out-of-range value: record the partially counted cnt
				// range (the offending head was never counted) so the
				// next clear wipes it.
				f.wcntHi = maxW + 1
				return false
			}
			cnt[hv]++
			maxW = max(maxW, int32(hv))
			keys = append(keys, uint32(hv)<<12|uint32(i)<<6|uint32(j))
		}
	}
	f.wkeys = keys
	f.wcntHi = maxW + 1
	if len(keys) == 0 {
		return true
	}
	// Prefix offsets with heavier weights first, then stable scatter.
	total := int32(0)
	for w := maxW; w >= 1; w-- {
		c := cnt[w]
		cnt[w] = total
		total += c
	}
	sorted := f.wsorted[:len(keys)]
	for _, k := range keys {
		w := k >> 12
		sorted[cnt[w]] = k
		cnt[w]++
	}
	var usedU, usedV uint64
	for _, k := range sorted {
		i := int(k>>6) & 63
		j := int(k) & 63
		bi, bj := uint64(1)<<uint(i), uint64(1)<<uint(j)
		if usedU&bi == 0 && usedV&bj == 0 {
			usedU |= bi
			usedV |= bj
			v.wtransfer(i, j)
		}
	}
	return true
}

// genericCycle enumerates eligible edges as matching.Edge values and
// defers to the shared matchers: Hungarian for KRMWM, the weighted
// scheduler (with its own counting/radix fast paths) for greedy PG edges
// whose values overflow the packed fast path.
func (g *pgKernel) genericCycle(v *cioqView) {
	f := v.f
	edges := f.edges[:0]
	of := v.st.outFree
	for i := 0; i < v.n; i++ {
		w := v.voq[i]
		for w != 0 {
			j := bits.TrailingZeros64(w)
			w &= w - 1
			q := i*v.m + j
			hv := v.iqHV[q]
			if of&(1<<uint(j)) == 0 {
				ho := &v.oqHdr[j]
				tv := v.oq[j*v.ocap+int((ho.head+ho.n-1)&v.ocapM)].v
				if float64(hv) <= g.beta*float64(tv) {
					continue
				}
			}
			edges = append(edges, matching.Edge{U: i, V: j, W: hv})
		}
	}
	f.edges = edges
	var matched []matching.Edge
	if g.maxWeight {
		matched = f.hung.MaxWeightMatching(v.n, v.m, edges)
	} else {
		matched = f.sched.GreedyMaximalWeighted(v.n, v.m, edges)
	}
	for _, e := range matched {
		v.wtransfer(e.U, e.V)
	}
}

// cpgKernel is the batched CPG scheduler. Input subphase: each input
// forwards its best eligible VOQ head (ByValue order over heads;
// eligibility is crosspoint-open or head beats beta times the crosspoint
// tail) to the crosspoint. Output subphase: each output pulls the best
// occupied-crosspoint head, transferring only if the output queue is open
// or the head beats alpha times the output tail. The scalar policy picks
// every input's (and then every output's) move from the subphase-start
// snapshot; picks here execute immediately, which is equivalent because a
// pick reads only state that its own port's transfer mutates.
type cpgKernel struct {
	beta, alpha float64
}

func (c *cpgKernel) weighted() bool { return true }

func (c *cpgKernel) cycle(v *crossbarView, slot, cycle int) {
	for i := 0; i < v.n; i++ {
		w := v.voq[i]
		xfree := v.xFree[i]
		bestJ := -1
		haveID := false
		var bestV, bestID int64
		for w != 0 {
			j := bits.TrailingZeros64(w)
			w &= w - 1
			q := i*v.m + j
			hv := v.iqHV[q]
			if bestJ >= 0 && hv < bestV {
				// A dominated head can never become the pick, eligible
				// or not: skip the crosspoint-tail load and the beta
				// comparison outright.
				continue
			}
			if xfree&(1<<uint(j)) == 0 {
				hx := &v.xqHdr[q]
				tv := v.xq[q*v.xcap+int((hx.head+hx.n-1)&v.xcapM)].v
				// beta >= 1: the integer compare rejects without the
				// float math on the common path.
				if hv <= tv || float64(hv) <= c.beta*float64(tv) {
					continue
				}
			}
			// Head IDs break value ties, so their (header, ring) load
			// pairs are deferred until a tie actually happens.
			if bestJ < 0 || hv > bestV {
				bestJ, bestV = j, hv
				haveID = false
			} else {
				if !haveID {
					bq := i*v.m + bestJ
					bestID = v.iqID[bq*v.icap+int(v.iqHdr[bq].head)]
					haveID = true
				}
				if hid := v.iqID[q*v.icap+int(v.iqHdr[q].head)]; hid < bestID {
					bestJ, bestID = j, hid
				}
			}
		}
		if bestJ >= 0 {
			v.wInputTransfer(i, bestJ)
		}
	}
	for j := 0; j < v.m; j++ {
		w := v.xBusyByOut[j]
		bestI := -1
		haveID := false
		var bestV, bestID int64
		for w != 0 {
			i := bits.TrailingZeros64(w)
			w &= w - 1
			hv := v.xqHV[j*v.n+i] // transposed lane: sequential in i
			if bestI < 0 || hv > bestV {
				bestI, bestV = i, hv
				haveID = false
			} else if hv == bestV {
				// Same lazy tie-break as the input subphase.
				if !haveID {
					bq := bestI*v.m + j
					bestID = v.xqID[bq*v.xcap+int(v.xqHdr[bq].head)]
					haveID = true
				}
				q := i*v.m + j
				if hid := v.xqID[q*v.xcap+int(v.xqHdr[q].head)]; hid < bestID {
					bestI, bestID = i, hid
				}
			}
		}
		if bestI < 0 {
			continue
		}
		if v.st.outFree&(1<<uint(j)) == 0 {
			ho := &v.oqHdr[j]
			tv := v.oq[j*v.ocap+int((ho.head+ho.n-1)&v.ocapM)].v
			// alpha >= 1: same integer pre-reject as the input subphase.
			if bestV <= tv || float64(bestV) <= c.alpha*float64(tv) {
				continue
			}
		}
		v.wOutputTransfer(bestI, j)
	}
}

// cguKernel is the batched CGU scheduler: per input, move the head of the
// first non-empty VOQ whose crosspoint has room; per open output, pull
// from the first non-empty crosspoint. The rotating variant's tick
// counter is clock-derived exactly as GM's.
type cguKernel struct {
	rotate bool
}

func (c *cguKernel) weighted() bool { return false }

func (c *cguKernel) cycle(v *crossbarView, slot, cycle int) {
	n := v.n
	ticks := slot*v.speedup + cycle
	startJ, startI := 0, 0
	if c.rotate {
		startJ, startI = ticks%v.m, ticks%n
	}
	for i := 0; i < n; i++ {
		if j := firstFrom(v.voq[i]&v.xFree[i], startJ); j >= 0 {
			v.inputTransfer(i, j)
		}
	}
	ofw := v.st.outFree
	for ofw != 0 {
		j := bits.TrailingZeros64(ofw)
		ofw &= ofw - 1
		if i := firstFrom(v.xBusyByOut[j], startI); i >= 0 {
			v.outputTransfer(i, j)
		}
	}
}
