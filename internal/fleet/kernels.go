package fleet

import (
	"math/bits"

	"qswitch/internal/core"
	"qswitch/internal/matching"
	"qswitch/internal/switchsim"
)

// cioqKernel is the batched counterpart of a scalar CIOQ policy's
// Schedule method. One cycle call computes the policy's matching for the
// bound instance from the columnar occupancy index and executes each
// transfer inline via view.transfer. A kernel must reproduce the scalar
// policy's decisions exactly: eligibility is read from the state the
// scalar engine would expose to the policy at the start of the cycle
// (snapshot words where interleaved execution could otherwise leak into
// later picks), and any slot-dependent state must be derivable from
// (slot, cycle) so quiescent jumps need no per-policy hook.
type cioqKernel interface {
	reset(f *CIOQFleet)
	cycle(v *cioqView, slot, cycle int)
	// wantsVOQByOut reports whether the kernel reads the transposed
	// occupancy rows; when false (and Validate is off) the engine skips
	// maintaining them, saving two index updates per packet move.
	wantsVOQByOut() bool
}

// crossbarKernel is the batched counterpart of a scalar crossbar policy's
// two subphases, under the same exactness contract as cioqKernel.
type crossbarKernel interface {
	cycle(v *crossbarView, slot, cycle int)
}

// cioqKernelFor maps a scalar policy to its batched kernel, or nil when
// the policy has none (the caller then falls back to the scalar engine).
// Matching is by concrete type, so wrappers and subclasses safely miss.
func cioqKernelFor(pol switchsim.CIOQPolicy) cioqKernel {
	switch p := pol.(type) {
	case *core.GM:
		return &gmKernel{order: p.Order}
	case *core.NaiveFIFO:
		// NaiveFIFO's first-fit matching is exactly GM's row-major scan.
		return &gmKernel{order: core.RowMajor}
	case *core.RoundRobin:
		return &rrKernel{}
	}
	return nil
}

// crossbarKernelFor is cioqKernelFor for crossbar policies.
func crossbarKernelFor(pol switchsim.CrossbarPolicy) crossbarKernel {
	switch p := pol.(type) {
	case *core.CGU:
		return &cguKernel{rotate: p.RotatePick}
	}
	return nil
}

// gmKernel is the batched GM (and NaiveFIFO) scheduler: a greedy maximal
// matching over the eligibility words {voq row ∧ free outputs} in the
// configured scan order. The Rotating order's tick counter is derived
// from the clock — the scalar policy gains one tick per scheduling cycle
// whether or not any queue is occupied, so ticks == slot*Speedup + cycle.
type gmKernel struct {
	order core.EdgeOrder
}

func (g *gmKernel) reset(f *CIOQFleet) {
	if g.order == core.LongestFirst && cap(f.edges) < f.nm {
		f.edges = make([]matching.Edge, 0, f.nm)
	}
}

func (g *gmKernel) wantsVOQByOut() bool { return g.order == core.ColMajor }

func (g *gmKernel) cycle(v *cioqView, slot, cycle int) {
	n, m := v.n, v.m
	switch g.order {
	case core.ColMajor:
		availIn := v.allIn
		of := v.st.outFree
		for j := 0; j < m; j++ {
			if of&(1<<uint(j)) == 0 {
				continue
			}
			if w := v.voqByOut[j] & availIn; w != 0 {
				i := bits.TrailingZeros64(w)
				availIn &^= 1 << uint(i)
				v.transfer(i, j)
			}
		}
	case core.Rotating:
		ticks := slot*v.speedup + cycle
		oi, oj := ticks%n, ticks%m
		avail := v.st.outFree
		for di := 0; di < n; di++ {
			i := (oi + di) % n
			if j := firstFrom(v.voq[i]&avail, oj); j >= 0 {
				avail &^= 1 << uint(j)
				v.transfer(i, j)
			}
		}
	case core.LongestFirst:
		f := v.f
		f.edges = f.edges[:0]
		of := v.st.outFree
		for i := 0; i < n; i++ {
			w := v.voq[i] & of
			for w != 0 {
				j := bits.TrailingZeros64(w)
				w &= w - 1
				f.edges = append(f.edges, matching.Edge{U: i, V: j, W: int64(v.iqHdr[i*m+j].n)})
			}
		}
		for _, e := range f.sched.GreedyMaximalWeighted(n, m, f.edges) {
			v.transfer(e.U, e.V)
		}
	default: // core.RowMajor
		avail := v.st.outFree
		for i := 0; i < n; i++ {
			if w := v.voq[i] & avail; w != 0 {
				j := bits.TrailingZeros64(w)
				avail &^= 1 << uint(j)
				v.transfer(i, j)
			}
		}
	}
}

// rrKernel is the batched iSLIP-style RoundRobin scheduler: one
// grant/accept round with per-output grant and per-input accept pointers
// that advance only on acceptance, so quiescent stretches leave them
// untouched and no idle hook is needed.
type rrKernel struct{}

func (rrKernel) wantsVOQByOut() bool { return true }

func (rrKernel) reset(f *CIOQFleet) {
	if len(f.rrGrant) != f.batch*f.m {
		f.rrGrant = make([]int32, f.batch*f.m)
		f.rrAccept = make([]int32, f.batch*f.n)
		f.grants = make([]uint64, f.n)
	}
	clear(f.rrGrant)
	clear(f.rrAccept)
}

func (rrKernel) cycle(v *cioqView, slot, cycle int) {
	n, m := v.n, v.m
	grants := v.f.grants[:n]
	for i := range grants {
		grants[i] = 0
	}
	// Grant: each open output grants the first requesting input at or
	// after its grant pointer.
	of := v.st.outFree
	for j := 0; j < m; j++ {
		if of&(1<<uint(j)) == 0 {
			continue
		}
		if i := firstFrom(v.voqByOut[j], int(v.rrG[j])); i >= 0 {
			grants[i] |= 1 << uint(j)
		}
	}
	// Accept: each input accepts the first granting output at or after
	// its accept pointer; pointers advance only on acceptance.
	for i := 0; i < n; i++ {
		if ch := firstFrom(grants[i], int(v.rrA[i])); ch >= 0 {
			v.transfer(i, ch)
			v.rrA[i] = int32((ch + 1) % m)
			v.rrG[ch] = int32((i + 1) % n)
		}
	}
}

// cguKernel is the batched CGU scheduler: per input, move the head of the
// first non-empty VOQ whose crosspoint has room; per open output, pull
// from the first non-empty crosspoint. The rotating variant's tick
// counter is clock-derived exactly as GM's.
type cguKernel struct {
	rotate bool
}

func (c *cguKernel) cycle(v *crossbarView, slot, cycle int) {
	n := v.n
	ticks := slot*v.speedup + cycle
	startJ, startI := 0, 0
	if c.rotate {
		startJ, startI = ticks%v.m, ticks%n
	}
	for i := 0; i < n; i++ {
		if j := firstFrom(v.voq[i]&v.xFree[i], startJ); j >= 0 {
			v.inputTransfer(i, j)
		}
	}
	ofw := v.st.outFree
	for ofw != 0 {
		j := bits.TrailingZeros64(ofw)
		ofw &= ofw - 1
		if i := firstFrom(v.xBusyByOut[j], startI); i >= 0 {
			v.outputTransfer(i, j)
		}
	}
}
