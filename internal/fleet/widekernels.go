package fleet

import (
	"math/bits"

	"qswitch/internal/core"
	"qswitch/internal/matching"
	"qswitch/internal/switchsim"
)

// wideCIOQKernel is cioqKernel over multi-word views; the exactness
// contract is identical. Every policy family with a single-word kernel
// has a wide one, so a single Batchable predicate covers both engines.
type wideCIOQKernel interface {
	reset(f *wideCIOQFleet)
	cycle(v *wideCIOQView, slot, cycle int)
	wantsVOQByOut() bool
	weighted() bool
}

// wideCrossbarKernel is crossbarKernel over multi-word views.
type wideCrossbarKernel interface {
	cycle(v *wideCrossbarView, slot, cycle int)
	weighted() bool
}

// wideCIOQKernelFor mirrors cioqKernelFor (the two switches must stay in
// lockstep so narrow and wide coverage agree).
func wideCIOQKernelFor(pol switchsim.CIOQPolicy) wideCIOQKernel {
	switch p := pol.(type) {
	case *core.GM:
		return &wideGMKernel{order: p.Order}
	case *core.NaiveFIFO:
		return &wideGMKernel{order: core.RowMajor}
	case *core.RoundRobin:
		return &wideRRKernel{}
	case *core.PG:
		beta := p.Beta
		if beta == 0 {
			beta = core.DefaultBetaPG()
		} else if beta < 1 {
			beta = 1
		}
		return &widePGKernel{beta: beta}
	case *core.KRMWM:
		beta := p.Beta
		if beta == 0 {
			beta = 2
		}
		return &widePGKernel{beta: beta, maxWeight: true}
	}
	return nil
}

// wideCrossbarKernelFor mirrors crossbarKernelFor.
func wideCrossbarKernelFor(pol switchsim.CrossbarPolicy) wideCrossbarKernel {
	switch p := pol.(type) {
	case *core.CGU:
		return &wideCGUKernel{rotate: p.RotatePick}
	case *core.CPG:
		return &wideCPGKernel{beta: cpgParam(p.Beta, core.DefaultBetaCPG()), alpha: cpgParam(p.Alpha, core.DefaultAlphaCPG())}
	}
	return nil
}

// wideGMKernel is gmKernel over multi-word rows.
type wideGMKernel struct {
	order core.EdgeOrder
}

func (g *wideGMKernel) reset(f *wideCIOQFleet) {
	if g.order == core.LongestFirst && cap(f.edges) < f.nm {
		f.edges = make([]matching.Edge, 0, f.nm)
	}
}

func (g *wideGMKernel) wantsVOQByOut() bool { return g.order == core.ColMajor }

func (g *wideGMKernel) weighted() bool { return false }

func (g *wideGMKernel) cycle(v *wideCIOQView, slot, cycle int) {
	f := v.f
	n, m := v.n, v.m
	switch g.order {
	case core.ColMajor:
		availIn := f.availIn
		availIn.Fill(n)
		for j := 0; j < m; j++ {
			if !v.outFree.Test(j) {
				continue
			}
			if i := v.voqByOutRow(j).FirstAnd(availIn); i >= 0 {
				availIn.Clear(i)
				v.transfer(i, j)
			}
		}
	case core.Rotating:
		ticks := slot*v.speedup + cycle
		oi, oj := ticks%n, ticks%m
		avail := f.availOut
		avail.Copy(v.outFree)
		for di := 0; di < n; di++ {
			i := (oi + di) % n
			if j := v.voqRow(i).FirstAndFrom(avail, oj); j >= 0 {
				avail.Clear(j)
				v.transfer(i, j)
			}
		}
	case core.LongestFirst:
		edges := f.edges[:0]
		for i := 0; i < n; i++ {
			row := v.voqRow(i)
			for wdx, word := range row {
				word &= v.outFree[wdx]
				for word != 0 {
					b := bits.TrailingZeros64(word)
					word &= word - 1
					j := wdx<<6 + b
					edges = append(edges, matching.Edge{U: i, V: j, W: int64(v.iqHdr[i*m+j].n)})
				}
			}
		}
		f.edges = edges
		for _, e := range f.matcher.match(n, m, edges, &f.sched) {
			v.transfer(e.U, e.V)
		}
	default: // core.RowMajor
		avail := f.availOut
		avail.Copy(v.outFree)
		for i := 0; i < n; i++ {
			if j := v.voqRow(i).FirstAnd(avail); j >= 0 {
				avail.Clear(j)
				v.transfer(i, j)
			}
		}
	}
}

// wideRRKernel is rrKernel over multi-word rows: the grant rows become a
// bitset matrix in one flat scratch allocation.
type wideRRKernel struct{}

func (wideRRKernel) wantsVOQByOut() bool { return true }

func (wideRRKernel) weighted() bool { return false }

func (wideRRKernel) reset(f *wideCIOQFleet) {
	if len(f.rrGrant) != f.batch*f.m {
		f.rrGrant = make([]int32, f.batch*f.m)
		f.rrAccept = make([]int32, f.batch*f.n)
		f.grants = make([]uint64, f.n*f.wm)
	}
	clear(f.rrGrant)
	clear(f.rrAccept)
}

func (wideRRKernel) cycle(v *wideCIOQView, slot, cycle int) {
	f := v.f
	n, m, wm := v.n, v.m, v.wm
	grants := f.grants
	grants.Zero()
	// Grant: each open output grants the first requesting input at or
	// after its grant pointer.
	for j := 0; j < m; j++ {
		if !v.outFree.Test(j) {
			continue
		}
		if i := v.voqByOutRow(j).FirstFrom(int(v.rrG[j])); i >= 0 {
			grants[i*wm : (i+1)*wm].Set(j)
		}
	}
	// Accept: each input accepts the first granting output at or after
	// its accept pointer; pointers advance only on acceptance.
	for i := 0; i < n; i++ {
		if ch := grants[i*wm : (i+1)*wm].FirstFrom(int(v.rrA[i])); ch >= 0 {
			v.transfer(i, ch)
			v.rrA[i] = int32((ch + 1) % m)
			v.rrG[ch] = int32((i + 1) % n)
		}
	}
}

// widePGKernel is pgKernel over multi-word rows, with the matching run
// through the wide batched matcher (counting-sort weight buckets plus
// bitset-mask acceptance, scratch shared across the batch).
type widePGKernel struct {
	beta      float64
	maxWeight bool
}

func (g *widePGKernel) reset(f *wideCIOQFleet) {
	if cap(f.edges) < f.nm {
		f.edges = make([]matching.Edge, 0, f.nm)
	}
}

func (g *widePGKernel) wantsVOQByOut() bool { return false }

func (g *widePGKernel) weighted() bool { return true }

func (g *widePGKernel) cycle(v *wideCIOQView, slot, cycle int) {
	f := v.f
	edges := f.edges[:0]
	for i := 0; i < v.n; i++ {
		row := v.voqRow(i)
		for wdx, word := range row {
			of := v.outFree[wdx]
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				j := wdx<<6 + b
				q := i*v.m + j
				hv := v.iq[q*v.icap+int(v.iqHdr[q].head)].v
				if of&(1<<uint(b)) == 0 {
					ho := &v.oqHdr[j]
					tv := v.oq[j*v.ocap+int((ho.head+ho.n-1)&v.ocapM)].v
					if float64(hv) <= g.beta*float64(tv) {
						continue
					}
				}
				edges = append(edges, matching.Edge{U: i, V: j, W: hv})
			}
		}
	}
	f.edges = edges
	var matched []matching.Edge
	if g.maxWeight {
		matched = f.hung.MaxWeightMatching(v.n, v.m, edges)
	} else {
		matched = f.matcher.match(v.n, v.m, edges, &f.sched)
	}
	for _, e := range matched {
		v.wtransfer(e.U, e.V)
	}
}

// wideCGUKernel is cguKernel over multi-word rows.
type wideCGUKernel struct {
	rotate bool
}

func (c *wideCGUKernel) weighted() bool { return false }

func (c *wideCGUKernel) cycle(v *wideCrossbarView, slot, cycle int) {
	n := v.n
	ticks := slot*v.speedup + cycle
	startJ, startI := 0, 0
	if c.rotate {
		startJ, startI = ticks%v.m, ticks%n
	}
	for i := 0; i < n; i++ {
		if j := v.voqRow(i).FirstAndFrom(v.xFreeRow(i), startJ); j >= 0 {
			v.inputTransfer(i, j)
		}
	}
	// Per open output, pull from the first non-empty crosspoint. An
	// output's transfer only mutates its own outFree bit, so word copies
	// are equivalent to a live scan.
	ofr := v.outFree
	for wdx, word := range ofr {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			j := wdx<<6 + b
			if i := v.xBusyByOutRow(j).FirstFrom(startI); i >= 0 {
				v.outputTransfer(i, j)
			}
		}
	}
}

// wideCPGKernel is cpgKernel over multi-word rows.
type wideCPGKernel struct {
	beta, alpha float64
}

func (c *wideCPGKernel) weighted() bool { return true }

func (c *wideCPGKernel) cycle(v *wideCrossbarView, slot, cycle int) {
	for i := 0; i < v.n; i++ {
		row := v.voqRow(i)
		xfree := v.xFreeRow(i)
		bestJ := -1
		var bestV, bestID int64
		for wdx, word := range row {
			xf := xfree[wdx]
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				j := wdx<<6 + b
				q := i*v.m + j
				x := q*v.icap + int(v.iqHdr[q].head)
				hv := v.iq[x].v
				if xf&(1<<uint(b)) == 0 {
					hx := &v.xqHdr[q]
					tv := v.xq[q*v.xcap+int((hx.head+hx.n-1)&v.xcapM)].v
					if float64(hv) <= c.beta*float64(tv) {
						continue
					}
				}
				hid := v.iqID[x]
				if bestJ < 0 || hv > bestV || (hv == bestV && hid < bestID) {
					bestJ, bestV, bestID = j, hv, hid
				}
			}
		}
		if bestJ >= 0 {
			v.wInputTransfer(i, bestJ)
		}
	}
	for j := 0; j < v.m; j++ {
		row := v.xBusyByOutRow(j)
		bestI := -1
		var bestV, bestID int64
		for wdx, word := range row {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				i := wdx<<6 + b
				q := i*v.m + j
				x := q*v.xcap + int(v.xqHdr[q].head)
				hv := v.xq[x].v
				hid := v.xqID[x]
				if bestI < 0 || hv > bestV || (hv == bestV && hid < bestID) {
					bestI, bestV, bestID = i, hv, hid
				}
			}
		}
		if bestI < 0 {
			continue
		}
		if !v.outFree.Test(j) {
			ho := &v.oqHdr[j]
			tv := v.oq[j*v.ocap+int((ho.head+ho.n-1)&v.ocapM)].v
			if float64(bestV) <= c.alpha*float64(tv) {
				continue
			}
		}
		v.wOutputTransfer(bestI, j)
	}
}
