package fleet

import (
	"errors"
	"fmt"
	"math/bits"

	"qswitch/internal/packet"
	"qswitch/internal/switchsim"
)

// ErrUnsupported marks a policy family or geometry the columnar engine
// cannot batch; RunCIOQ and RunCrossbar fall back to per-instance scalar
// runs instead of surfacing it.
var ErrUnsupported = errors.New("fleet: not batchable")

// maxPorts is the single-word engine's port limit: its occupancy rows are
// single uint64 words. Geometries up to maxWidePorts ride the multi-word
// wide engine instead of falling back to scalar.
const maxPorts = 64

// BatchableCIOQ reports whether the policy produced by factory rides a
// columnar engine for this configuration (it has a batched kernel and the
// geometry fits the wide engine's rows). The narrow and wide kernel
// tables cover the same policy families, so one predicate serves both.
func BatchableCIOQ(cfg switchsim.Config, factory func() switchsim.CIOQPolicy) bool {
	return cioqKernelFor(factory()) != nil && cfg.Inputs <= maxWidePorts && cfg.Outputs <= maxWidePorts
}

// BatchableCrossbar is BatchableCIOQ for crossbar policies.
func BatchableCrossbar(cfg switchsim.Config, factory func() switchsim.CrossbarPolicy) bool {
	return crossbarKernelFor(factory()) != nil && cfg.Inputs <= maxWidePorts && cfg.Outputs <= maxWidePorts
}

// fleetEngine is the runner-facing surface shared by the single-word and
// wide engines of each switch type.
type fleetEngine interface {
	Reset(seqs []packet.Sequence) error
	Step() bool
	Results() ([]*switchsim.Result, error)
	batchCap() int
	passes() int64
}

// RunCIOQ simulates the policy family produced by factory on every
// sequence and returns one Result per sequence, in order. Batchable
// policies run on the columnar engine (one construction and one policy
// loop amortized across the whole batch); everything else falls back to
// per-instance switchsim.RunCIOQ with a fresh policy per run. Results are
// bit-identical between the two paths. Callers with a stream of batches
// should hold a CIOQRunner instead, which reuses one fleet across calls.
func RunCIOQ(cfg switchsim.Config, factory func() switchsim.CIOQPolicy, seqs []packet.Sequence) ([]*switchsim.Result, error) {
	return NewCIOQRunner(factory).Run(cfg, seqs)
}

// RunCrossbar is RunCIOQ for buffered-crossbar policies.
func RunCrossbar(cfg switchsim.Config, factory func() switchsim.CrossbarPolicy, seqs []packet.Sequence) ([]*switchsim.Result, error) {
	return NewCrossbarRunner(factory).Run(cfg, seqs)
}

// CIOQRunner runs batch after batch of one CIOQ policy family, reusing a
// single columnar fleet across calls — the ratio-harness chunk-stream
// shape, where constructing a fleet per chunk wastes the construction.
// The fleet is (re)built only when the configuration changes or a batch
// outgrows the current storage; shrinking batches (a chunk stream's short
// final chunk) reuse it. Runners are not safe for concurrent use; results
// are bit-identical to RunCIOQ.
type CIOQRunner struct {
	factory func() switchsim.CIOQPolicy
	cfg     switchsim.Config
	f       fleetEngine
}

// NewCIOQRunner creates a runner for the policy family produced by
// factory. No storage is sized until the first batchable Run.
func NewCIOQRunner(factory func() switchsim.CIOQPolicy) *CIOQRunner {
	return &CIOQRunner{factory: factory}
}

// Run simulates every sequence under cfg and returns one Result per
// sequence, in order, exactly as RunCIOQ. The returned slice and Results
// are valid until the next Run.
func (r *CIOQRunner) Run(cfg switchsim.Config, seqs []packet.Sequence) ([]*switchsim.Result, error) {
	if len(seqs) == 0 {
		return nil, nil
	}
	if !BatchableCIOQ(cfg, r.factory) {
		out := make([]*switchsim.Result, len(seqs))
		for k, seq := range seqs {
			res, err := switchsim.RunCIOQ(cfg, r.factory(), seq)
			if err != nil {
				return nil, err
			}
			out[k] = res
		}
		fleetProbes.Load().RecordFallback(int64(len(seqs)))
		return out, nil
	}
	if r.f == nil || r.cfg != cfg || r.f.batchCap() < len(seqs) {
		var f fleetEngine
		var err error
		if cfg.Inputs <= maxPorts && cfg.Outputs <= maxPorts {
			f, err = NewCIOQFleet(cfg, r.factory, len(seqs))
		} else {
			f, err = newWideCIOQFleet(cfg, r.factory, len(seqs))
		}
		if err != nil {
			return nil, err
		}
		r.f, r.cfg = f, cfg
	}
	if err := r.f.Reset(seqs); err != nil {
		return nil, err
	}
	passBefore := r.f.passes()
	for r.f.Step() {
	}
	out, err := r.f.Results()
	if err != nil {
		return nil, err
	}
	if p := fleetProbes.Load(); p != nil {
		var slots int64
		for _, res := range out {
			slots += int64(res.Slots)
		}
		p.RecordKernel(int64(len(seqs)), slots, r.f.passes()-passBefore)
	}
	return out, nil
}

// CrossbarRunner is CIOQRunner for buffered-crossbar policy families.
type CrossbarRunner struct {
	factory func() switchsim.CrossbarPolicy
	cfg     switchsim.Config
	f       fleetEngine
}

// NewCrossbarRunner creates a runner for the policy family produced by
// factory.
func NewCrossbarRunner(factory func() switchsim.CrossbarPolicy) *CrossbarRunner {
	return &CrossbarRunner{factory: factory}
}

// Run simulates every sequence under cfg and returns one Result per
// sequence, in order, exactly as RunCrossbar. The returned slice and
// Results are valid until the next Run.
func (r *CrossbarRunner) Run(cfg switchsim.Config, seqs []packet.Sequence) ([]*switchsim.Result, error) {
	if len(seqs) == 0 {
		return nil, nil
	}
	if !BatchableCrossbar(cfg, r.factory) {
		out := make([]*switchsim.Result, len(seqs))
		for k, seq := range seqs {
			res, err := switchsim.RunCrossbar(cfg, r.factory(), seq)
			if err != nil {
				return nil, err
			}
			out[k] = res
		}
		fleetProbes.Load().RecordFallback(int64(len(seqs)))
		return out, nil
	}
	if r.f == nil || r.cfg != cfg || r.f.batchCap() < len(seqs) {
		var f fleetEngine
		var err error
		if cfg.Inputs <= maxPorts && cfg.Outputs <= maxPorts {
			f, err = NewCrossbarFleet(cfg, r.factory, len(seqs))
		} else {
			f, err = newWideCrossbarFleet(cfg, r.factory, len(seqs))
		}
		if err != nil {
			return nil, err
		}
		r.f, r.cfg = f, cfg
	}
	if err := r.f.Reset(seqs); err != nil {
		return nil, err
	}
	passBefore := r.f.passes()
	for r.f.Step() {
	}
	out, err := r.f.Results()
	if err != nil {
		return nil, err
	}
	if p := fleetProbes.Load(); p != nil {
		var slots int64
		for _, res := range out {
			slots += int64(res.Slots)
		}
		p.RecordKernel(int64(len(seqs)), slots, r.f.passes()-passBefore)
	}
	return out, nil
}

// checkResidual detects malformed sequences at retirement: once an
// instance reaches its horizon, every unconsumed packet must be due at or
// beyond it — a remaining packet due earlier means the sequence was not
// sorted by arrival (the cursor skipped it), which the streaming
// admission loop cannot see up front without a separate validation pass.
func checkResidual(k int, seq packet.Sequence, next, horizon int) error {
	for x := next; x < len(seq); x++ {
		if seq[x].Arrival < horizon {
			return fmt.Errorf("fleet: instance %d: packet %d due at slot %d was never admitted: sequence not sorted by arrival", k, x, seq[x].Arrival)
		}
	}
	return nil
}

// sleeper is one quiescent instance waiting for its next arrival slot.
type sleeper struct {
	wake int
	k    int32
}

// sleepPush adds s to the min-heap (ordered by wake slot) in place.
func sleepPush(h []sleeper, s sleeper) []sleeper {
	h = append(h, s)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].wake <= h[i].wake {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

// sleepPop removes and returns the earliest-waking sleeper.
func sleepPop(h []sleeper) ([]sleeper, sleeper) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h) && h[l].wake < h[s].wake {
			s = l
		}
		if r < len(h) && h[r].wake < h[s].wake {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	return h, top
}

// firstFrom returns the smallest set bit of w in rotated order starting
// at `start` (the smallest bit >= start if any, else the smallest bit
// overall), or -1 when w is zero. It is bitset.Mask.FirstFrom specialized
// to the fleet's single-word masks; start must be in [0, 64).
func firstFrom(w uint64, start int) int {
	lowMask := uint64(1)<<uint(start) - 1
	if x := w &^ lowMask; x != 0 {
		return bits.TrailingZeros64(x)
	}
	if x := w & lowMask; x != 0 {
		return bits.TrailingZeros64(x)
	}
	return -1
}

// allOnes returns the mask with bits [0, n) set; n in [1, 64].
func allOnes(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(n) - 1
}

// ceilPow2 returns the smallest power of two >= v.
func ceilPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}
