package fleet

import (
	"fmt"
	"math/bits"

	"qswitch/internal/matching"
	"qswitch/internal/packet"
	"qswitch/internal/switchsim"
)

// windowSlots is the lockstep quantum: one Step advances the global clock
// by up to this many slots, each active instance simulating its share of
// the window in one visit. Windowing is what makes the columnar layout
// cache-dense at large batch sizes — an instance's working set (rings,
// headers, masks, counters) is pulled into cache once per window instead
// of once per slot, while the skew between instances stays bounded by the
// window length. Results are independent of the window size; instances
// never read each other's state.
const windowSlots = 32

// pkt is a queued packet: transmission value and arrival slot (the only
// per-packet fields the unit-family policies and the metrics observe).
// One 16-byte entry keeps every queue operation on a single cache line.
type pkt struct {
	v int64
	a int32
	_ int32
}

// qhdr is a queue ring header: position of the head element and current
// length. Ring capacity is a per-fleet power of two.
type qhdr struct {
	head, n int32
}

// ports is the per-instance port-occupancy summary: single-word output
// masks and layer counters, packed so a slot touches one cache line.
type ports struct {
	outFree, outBusy              uint64
	inCount, crossCount, outCount int32
	_                             int32
}

// hotCtr is the per-instance block of metric accumulators updated in the
// per-slot loop, folded into switchsim.Metrics at retirement. The crossbar
// fields stay zero for CIOQ fleets; the preempt fields stay zero for the
// unit-value kernels, whose admission and transfers never evict.
type hotCtr struct {
	arrived, arrivedVal               int64
	accepted, acceptedVal             int64
	rejected, rejectedVal             int64
	transferred, transferredCross     int64
	sent, benefit                     int64
	inOccup, crossOccup, outOccup     int64
	sampled                           int64
	preemptedIn, preemptedInVal       int64
	preemptedCross, preemptedCrossVal int64
	preemptedOut, preemptedOutVal     int64
}

// CIOQFleet is a batch of B independent CIOQ switch instances sharing one
// configuration and one policy kernel, stepped in lockstep windows over a
// global slot clock. All switch state is columnar (see the package
// documentation); storage is sized once at construction and reused across
// Reset, so steady-state stepping never allocates.
type CIOQFleet struct {
	cfg    switchsim.Config
	policy string
	kern   cioqKernel
	batch  int // storage capacity (construction batch size)
	cur    int // instances loaded by the last Reset
	n, m   int
	nm     int
	icap   int // input-queue ring size (power of two)
	ocap   int // output-queue ring size (power of two)
	inBuf  int32
	outBuf int32
	allIn  uint64 // mask of all n input ports

	// passCount tallies pass-through deliveries (pend-buffer parks)
	// across the fleet's lifetime; the runner diffs it around each batch
	// to flush the fleet probes.
	passCount int64

	// Columnar switch state: per-instance blocks inside flat arrays.
	voq      []uint64 // [k*n+i]: outputs j with IQ(k,i,j) non-empty
	voqByOut []uint64 // [k*m+j]: inputs i with IQ(k,i,j) non-empty
	st       []ports  // [k]
	iq       []pkt    // [(k*nm + i*m + j)*icap + pos]
	iqHdr    []qhdr   // [k*nm + i*m + j]
	oq       []pkt    // [(k*m + j)*ocap + pos]
	oqHdr    []qhdr   // [k*m + j]
	hot      []hotCtr // [k]

	// ID lanes, allocated only for weighted kernels: the ByValue queue
	// discipline breaks value ties on packet ID, so weighted rings carry
	// the ID alongside the pkt payload (same indexing as iq/oq).
	iqID []int64
	oqID []int64

	// iqHV caches each input ring's head value ([k*nm + q], weighted
	// kernels only): the schedulers scan every occupied VOQ head per
	// cycle, and the flat lane replaces the dependent header+ring load
	// pair on that path. Entries are refreshed wherever the ring head
	// changes and are read only under a set voq bit.
	iqHV []int64

	ms      []switchsim.Metrics
	series  [][]int64
	results []*switchsim.Result

	seqs    []packet.Sequence
	next    []int
	horizon []int
	at      []int // per-instance next slot to simulate

	// Lockstep scheduling state.
	active []int32
	sleep  []sleeper
	slot   int // current window start
	live   int
	err    error

	view cioqView

	// Kernel state and scratch.
	rrGrant  []int32 // [k*m+j]: RoundRobin per-output grant pointer
	rrAccept []int32 // [k*n+i]: RoundRobin per-input accept pointer
	grants   []uint64
	edges    []matching.Edge
	sched    matching.WeightedScheduler
	hung     matching.HungarianSolver
	wkeys    []uint32 // packed (w<<12|i<<6|j) eligible edges, (i,j)-ascending
	wsorted  []uint32 // counting-scatter output, weight-descending
	wcnt     []int32  // per-weight bucket counts/offsets
	wcntHi   int32    // dirty prefix of wcnt to clear next cycle
}

// cioqView is the per-instance working set bound once per window: small
// slices over the instance's blocks plus copies of the loop constants, so
// the slot body and the kernels index tiny slices instead of recomputing
// global offsets per operation.
type cioqView struct {
	f        *CIOQFleet
	k        int
	st       *ports
	hm       *hotCtr
	lat      *switchsim.Metrics
	voq      []uint64
	voqByOut []uint64
	iqHdr    []qhdr
	iq       []pkt
	oqHdr    []qhdr
	oq       []pkt
	series   []int64
	rrG, rrA []int32
	iqHV     []int64

	n, m, nm       int
	icapM, ocapM   int32 // ring index masks (capacity-1)
	icap, ocap     int
	inBuf, outBuf  int32
	speedup        int
	recLat, recSer bool
	wantByOut      bool // kernel reads voqByOut; maintain it
	weighted       bool // ByValue rings with ID lanes and preemption
	allIn          uint64

	// ID lanes (weighted kernels only); same indexing as iq/oq.
	iqID []int64
	oqID []int64

	// Direct pass-through delivery: a packet transferred into an empty
	// output queue is necessarily that slot's transmit head, so its
	// payload parks in pend[j] (direct bit set) instead of doing a ring
	// store/load round-trip; the header still advances as if it had been
	// written, keeping ring geometry consistent at any speedup. Weighted
	// kernels never use it: a ByValue insertion can land anywhere in the
	// ring, so their transfers always do the ring store.
	direct uint64
	pend   []pkt
}

// bind points the view at instance k.
func (v *cioqView) bind(f *CIOQFleet, k int) {
	v.f = f
	v.k = k
	v.st = &f.st[k]
	v.hm = &f.hot[k]
	v.lat = &f.ms[k]
	v.voq = f.voq[k*f.n : (k+1)*f.n]
	v.voqByOut = f.voqByOut[k*f.m : (k+1)*f.m]
	v.iqHdr = f.iqHdr[k*f.nm : (k+1)*f.nm]
	v.iq = f.iq[k*f.nm*f.icap : (k+1)*f.nm*f.icap]
	v.oqHdr = f.oqHdr[k*f.m : (k+1)*f.m]
	v.oq = f.oq[k*f.m*f.ocap : (k+1)*f.m*f.ocap]
	if f.cfg.RecordSeries {
		v.series = f.series[k]
	}
	if f.rrGrant != nil {
		v.rrG = f.rrGrant[k*f.m : (k+1)*f.m]
		v.rrA = f.rrAccept[k*f.n : (k+1)*f.n]
	}
	if f.iqID != nil {
		v.iqID = f.iqID[k*f.nm*f.icap : (k+1)*f.nm*f.icap]
		v.oqID = f.oqID[k*f.m*f.ocap : (k+1)*f.m*f.ocap]
		v.iqHV = f.iqHV[k*f.nm : (k+1)*f.nm]
	}
}

// NewCIOQFleet sizes a fleet of `batch` instances for the configuration
// and policy family produced by factory. It returns ErrUnsupported
// (possibly wrapped) when the policy has no batched kernel or the
// geometry exceeds the columnar engine's 64-port limit; callers wanting
// transparent fallback use RunCIOQ instead.
func NewCIOQFleet(cfg switchsim.Config, factory func() switchsim.CIOQPolicy, batch int) (*CIOQFleet, error) {
	if err := cfg.Check(false); err != nil {
		return nil, err
	}
	if batch < 1 {
		return nil, fmt.Errorf("fleet: batch size %d < 1", batch)
	}
	pol := factory()
	kern := cioqKernelFor(pol)
	if kern == nil {
		return nil, fmt.Errorf("fleet: policy %q: %w", pol.Name(), ErrUnsupported)
	}
	if cfg.Inputs > maxPorts || cfg.Outputs > maxPorts {
		return nil, fmt.Errorf("fleet: geometry %dx%d exceeds %d ports: %w", cfg.Inputs, cfg.Outputs, maxPorts, ErrUnsupported)
	}
	n, m := cfg.Inputs, cfg.Outputs
	f := &CIOQFleet{
		cfg: cfg, policy: pol.Name(), kern: kern, batch: batch, cur: batch,
		n: n, m: m, nm: n * m,
		icap: ceilPow2(cfg.InputBuf), ocap: ceilPow2(cfg.OutputBuf),
		inBuf: int32(cfg.InputBuf), outBuf: int32(cfg.OutputBuf),
		allIn: allOnes(n),
	}
	f.voq = make([]uint64, batch*n)
	f.voqByOut = make([]uint64, batch*m)
	f.st = make([]ports, batch)
	f.iq = make([]pkt, batch*f.nm*f.icap)
	f.iqHdr = make([]qhdr, batch*f.nm)
	f.oq = make([]pkt, batch*m*f.ocap)
	f.oqHdr = make([]qhdr, batch*m)
	f.hot = make([]hotCtr, batch)
	f.ms = make([]switchsim.Metrics, batch)
	f.series = make([][]int64, batch)
	f.results = make([]*switchsim.Result, batch)
	f.next = make([]int, batch)
	f.horizon = make([]int, batch)
	f.at = make([]int, batch)
	f.active = make([]int32, 0, batch)
	f.sleep = make([]sleeper, 0, batch)
	v := &f.view
	v.n, v.m, v.nm = n, m, f.nm
	v.icap, v.ocap = f.icap, f.ocap
	v.icapM, v.ocapM = int32(f.icap-1), int32(f.ocap-1)
	v.inBuf, v.outBuf = f.inBuf, f.outBuf
	v.speedup = cfg.Speedup
	v.recLat, v.recSer = cfg.RecordLatency, cfg.RecordSeries
	v.wantByOut = kern.wantsVOQByOut() || cfg.Validate
	v.allIn = f.allIn
	v.pend = make([]pkt, m)
	if kern.weighted() {
		v.weighted = true
		f.iqID = make([]int64, batch*f.nm*f.icap)
		f.oqID = make([]int64, batch*m*f.ocap)
		f.iqHV = make([]int64, batch*f.nm)
	}
	kern.reset(f)
	return f, nil
}

// Policy returns the name of the batched policy family.
func (f *CIOQFleet) Policy() string { return f.policy }

// Reset loads a new batch of arrival sequences (one per instance; the
// slice length may be anything up to the construction batch size, so one
// fleet serves a chunk stream whose final chunk runs short) and rewinds
// every loaded instance to slot 0. Switch storage is reused.
//
// Sequences are validated lazily rather than with an up-front pass: port
// and value violations surface as errors when the packet is admitted, and
// an unsorted sequence is detected at the instance's retirement (see
// checkResidual). ID monotonicity — which the FIFO unit-value family
// never observes — is the caller's responsibility, as with every
// generator-produced sequence.
func (f *CIOQFleet) Reset(seqs []packet.Sequence) error {
	if len(seqs) < 1 || len(seqs) > f.batch {
		return fmt.Errorf("fleet: got %d sequences for a batch of %d", len(seqs), f.batch)
	}
	f.cur = len(seqs)
	clear(f.voq)
	clear(f.voqByOut)
	clear(f.iqHdr)
	clear(f.oqHdr)
	for k := range f.st {
		f.st[k] = ports{outFree: allOnes(f.m)}
		f.hot[k] = hotCtr{}
	}
	f.seqs = seqs
	f.active = f.active[:0]
	f.sleep = f.sleep[:0]
	f.slot = 0
	f.live = f.cur
	f.err = nil
	f.view.direct = 0
	for k := 0; k < f.cur; k++ {
		f.ms[k] = switchsim.Metrics{}
		if f.cfg.RecordLatency && f.cfg.StreamMetrics {
			f.ms[k].EnableLatencySketch()
		}
		f.results[k] = nil
		f.next[k] = 0
		f.at[k] = 0
		f.horizon[k] = f.cfg.HorizonFor(seqs[k])
		if f.cfg.RecordSeries {
			f.series[k] = make([]int64, f.horizon[k])
		} else {
			f.series[k] = nil
		}
		f.active = append(f.active, int32(k))
	}
	// Drop any tail a previous larger batch left behind, so a runner
	// idling on a short final chunk does not pin old Results and their
	// latency/series storage.
	for k := f.cur; k < f.batch; k++ {
		f.ms[k] = switchsim.Metrics{}
		f.results[k] = nil
		f.series[k] = nil
	}
	f.kern.reset(f)
	return nil
}

// Step advances the global clock by one window (up to windowSlots slots),
// simulating every active instance's share of the window and waking
// sleepers due within it. It returns false once all instances have
// retired or an error is pending; see Results.
func (f *CIOQFleet) Step() bool {
	if f.err != nil || f.live == 0 {
		return false
	}
	if len(f.active) == 0 {
		// Everyone sleeps: jump the clock to the earliest wake.
		f.slot = f.sleep[0].wake
	}
	end := f.slot + windowSlots
	for len(f.sleep) > 0 && f.sleep[0].wake < end {
		var s sleeper
		f.sleep, s = sleepPop(f.sleep)
		f.at[s.k] = s.wake
		f.active = append(f.active, s.k)
	}
	for idx := 0; idx < len(f.active); idx++ {
		k := f.active[idx]
		switch f.runWindow(k, end) {
		case instActive:
		case instErr:
			return false
		default: // instSleep, instRetired: swap-remove from the dense set
			last := len(f.active) - 1
			f.active[idx] = f.active[last]
			f.active = f.active[:last]
			idx--
		}
	}
	f.slot = end
	return f.live > 0 && f.err == nil
}

type instStatus int

const (
	instActive instStatus = iota
	instSleep
	instRetired
	instErr
)

// runWindow simulates instance k from its current slot up to the window
// end: admissions, Speedup kernel cycles, transmission, occupancy
// sampling and the quiescent fast path, slot by slot, on the bound view.
func (f *CIOQFleet) runWindow(k int32, end int) instStatus {
	kk := int(k)
	v := &f.view
	v.bind(f, kk)
	seq := f.seqs[kk]
	nx := f.next[kk]
	horizon := f.horizon[kk]
	st := v.st
	hm := v.hm
	T := f.at[kk]
	// Window-local metric accumulators: the per-packet counters are
	// register adds here and a single flush into hm at every exit (all
	// Metrics fields are sums, so accumulation order is free).
	var aArr, aArrV, aAcc, aAccV, aRej, aRejV, aPre, aPreV, tSent, tBen, oIn, oOut, oSamp int64
	flush := func() {
		hm.arrived += aArr
		hm.arrivedVal += aArrV
		hm.accepted += aAcc
		hm.acceptedVal += aAccV
		hm.rejected += aRej
		hm.rejectedVal += aRejV
		hm.preemptedIn += aPre
		hm.preemptedInVal += aPreV
		hm.sent += tSent
		hm.benefit += tBen
		hm.inOccup += oIn
		hm.outOccup += oOut
		hm.sampled += oSamp
	}
	for {
		// Admissions: the unit families accept iff the target queue has
		// room; the weighted (ByValue) families additionally preempt the
		// queue's least valuable packet when it is full and strictly worse
		// (queue.Ring.PushPreempt semantics — occupancy is unchanged by a
		// preempting admission, so the index bits stay put).
		for nx < len(seq) && seq[nx].Arrival == T {
			p := &seq[nx]
			nx++
			if uint(p.In) >= uint(v.n) || uint(p.Out) >= uint(v.m) || p.Value < 1 {
				f.err = fmt.Errorf("fleet: instance %d: bad packet %v", kk, *p)
				return instErr
			}
			aArr++
			aArrV += p.Value
			q := p.In*v.m + p.Out
			h := &v.iqHdr[q]
			if v.weighted {
				pre := false
				var preV int64
				if h.n >= v.inBuf {
					ti := q*v.icap + int((h.head+h.n-1)&v.icapM)
					tv := v.iq[ti].v
					if tv >= p.Value {
						aRej++
						aRejV += p.Value
						continue
					}
					h.n--
					pre, preV = true, tv
				}
				// Shallow rings make depths 0/1 the common insert cases;
				// both are inlined here and yield the new head value
				// without reloading the ring.
				np := pkt{v: p.Value, a: int32(p.Arrival)}
				switch h.n {
				case 0:
					ringInsert0(v.iq, v.iqID, h, q*v.icap, np, p.ID)
					v.iqHV[q] = np.v
				case 1:
					b := q * v.icap
					v.iqHV[q] = ringInsert1(v.iq[b:], v.iqID[b:], h, v.icapM, np, p.ID)
				default:
					v.iqInsert(q, np, p.ID)
					v.iqHV[q] = v.iq[q*v.icap+int(h.head)].v
				}
				if pre {
					aAcc++
					aAccV += p.Value
					aPre++
					aPreV += preV
					continue
				}
			} else {
				if h.n >= v.inBuf {
					aRej++
					aRejV += p.Value
					continue
				}
				v.iq[q*v.icap+int((h.head+h.n)&v.icapM)] = pkt{v: p.Value, a: int32(p.Arrival)}
				h.n++
			}
			v.voq[p.In] |= 1 << uint(p.Out)
			if v.wantByOut {
				v.voqByOut[p.Out] |= 1 << uint(p.In)
			}
			st.inCount++
			aAcc++
			aAccV += p.Value
		}

		for c := 0; c < v.speedup; c++ {
			f.kern.cycle(v, T, c)
		}
		if f.err != nil {
			// A weighted transfer hit an ineligible full destination (only
			// possible with a sub-1 user beta, where the scalar engine
			// errors identically).
			return instErr
		}

		// Transmission: every non-empty output queue sends its head.
		w := st.outBusy
		for w != 0 {
			j := bits.TrailingZeros64(w)
			w &= w - 1
			h := &v.oqHdr[j]
			var p pkt
			if v.direct&(1<<uint(j)) != 0 {
				p = v.pend[j]
				v.direct &^= 1 << uint(j)
			} else {
				p = v.oq[j*v.ocap+int(h.head)]
			}
			h.head = (h.head + 1) & v.ocapM
			h.n--
			st.outCount--
			st.outFree |= 1 << uint(j)
			if h.n == 0 {
				st.outBusy &^= 1 << uint(j)
			}
			tSent++
			tBen += p.v
			if v.recLat {
				v.lat.RecordLatency(T - int(p.a))
			}
			if v.recSer {
				v.series[T] += p.v
			}
		}

		oIn += int64(st.inCount)
		oOut += int64(st.outCount)
		oSamp++

		if f.cfg.Validate {
			if err := f.validate(kk, T); err != nil {
				f.err = err
				return instErr
			}
		}

		// Quiescent fast path: with no input-side packets no kernel cycle
		// can produce a transfer, so the stretch until the next arrival is
		// pure output drain advanced in closed form. The ported kernels'
		// only slot-dependent state is derived from the clock (see
		// kernels.go), so no per-policy idle hook is needed.
		if !f.cfg.Dense && st.inCount == 0 {
			to := horizon
			if nx < len(seq) && seq[nx].Arrival < to {
				to = seq[nx].Arrival
			}
			if jump := to - (T + 1); jump > 0 {
				v.quiesce(T, jump)
				if f.cfg.Validate {
					if err := f.validate(kk, T+jump); err != nil {
						f.err = fmt.Errorf("after quiescent jump: %w", err)
						return instErr
					}
				}
				T += jump
			}
		}
		T++
		if T >= horizon {
			flush()
			f.next[kk] = nx
			return f.retire(k)
		}
		if T >= end {
			flush()
			f.next[kk] = nx
			f.at[kk] = T
			if T > end {
				// A quiescent jump crossed the window boundary: nothing
				// happens until slot T, so skip the windows in between.
				f.sleep = sleepPush(f.sleep, sleeper{wake: T, k: k})
				return instSleep
			}
			return instActive
		}
	}
}

// transfer moves the head packet of IQ(i,j) to OQ(j) on the bound
// instance, updating the occupancy index exactly as the scalar engine's
// executeTransfers does. Kernels only produce transfers whose destination
// has room.
func (v *cioqView) transfer(i, j int) {
	q := i*v.m + j
	h := &v.iqHdr[q]
	p := v.iq[q*v.icap+int(h.head)]
	h.head = (h.head + 1) & v.icapM
	h.n--
	if h.n == 0 {
		v.voq[i] &^= 1 << uint(j)
		if v.wantByOut {
			v.voqByOut[j] &^= 1 << uint(i)
		}
	}
	ho := &v.oqHdr[j]
	if ho.n == 0 {
		// Empty destination: the packet is this slot's transmit head, so
		// park it in the pass-through buffer instead of the ring.
		v.pend[j] = p
		v.direct |= 1 << uint(j)
		v.f.passCount++
	} else {
		v.oq[j*v.ocap+int((ho.head+ho.n)&v.ocapM)] = p
	}
	ho.n++
	st := v.st
	st.inCount--
	st.outBusy |= 1 << uint(j)
	if ho.n >= v.outBuf {
		st.outFree &^= 1 << uint(j)
	}
	st.outCount++
	v.hm.transferred++
}

// ringInsert0 is the depth-0 ringInsert special case, small enough to
// inline at the transfer sites where an empty destination ring is the
// common case (the new packet is trivially the head).
func ringInsert0(buf []pkt, ids []int64, h *qhdr, base int, p pkt, id int64) {
	x := base + int(h.head)
	buf[x] = p
	ids[x] = id
	h.n = 1
}

// ringInsert1 is the depth-1 ringInsert special case (buf/ids already
// sliced at the ring base), inlined at the
// admission sites (shallow input rings make depth 1 the common case
// there). It reports the new head value so weighted callers can refresh
// their head-value lane without reloading the ring.
func ringInsert1(buf []pkt, ids []int64, h *qhdr, capM int32, p pkt, id int64) int64 {
	x0 := int(h.head)
	hv := buf[x0].v
	off := int32(1)
	if hv < p.v || (hv == p.v && ids[x0] >= id) {
		h.head = (h.head - 1) & capM
		off = 0
		hv = p.v
	}
	x := int((h.head + off) & capM)
	buf[x] = p
	ids[x] = id
	h.n = 2
	return hv
}

// ringInsert places (p, id) into the ByValue ring at base..base+cap-1
// keeping (value desc, ID asc) order, reproducing queue.Ring.insert: a
// binary search finds the slot, then the shorter side of the ring shifts
// by one to open it. The header must have room (h.n < capacity).
func ringInsert(buf []pkt, ids []int64, h *qhdr, base int, capM int32, p pkt, id int64) {
	n := h.n
	// Weighted rings are shallow in practice (buffer depths of a few
	// packets), so the depth-0/1 cases skip the search-and-shift
	// machinery. Both leave the same head-relative contents as the
	// general path.
	if n == 0 {
		x := base + int(h.head)
		buf[x] = p
		ids[x] = id
		h.n = 1
		return
	}
	if n == 1 {
		x0 := base + int(h.head)
		var x int
		if bv := buf[x0].v; bv > p.v || (bv == p.v && ids[x0] < id) {
			x = base + int((h.head+1)&capM)
		} else {
			h.head = (h.head - 1) & capM
			x = base + int(h.head)
		}
		buf[x] = p
		ids[x] = id
		h.n = 2
		return
	}
	lo, hi := int32(0), n
	for lo < hi {
		mid := (lo + hi) / 2
		x := base + int((h.head+mid)&capM)
		if bv := buf[x].v; bv > p.v || (bv == p.v && ids[x] < id) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo <= n-lo {
		// Shift the head segment [0, lo) one slot back.
		h.head = (h.head - 1) & capM
		for k := int32(0); k < lo; k++ {
			dst := base + int((h.head+k)&capM)
			src := base + int((h.head+k+1)&capM)
			buf[dst] = buf[src]
			ids[dst] = ids[src]
		}
	} else {
		// Shift the tail segment [lo, n) one slot forward.
		for k := n; k > lo; k-- {
			dst := base + int((h.head+k)&capM)
			src := base + int((h.head+k-1)&capM)
			buf[dst] = buf[src]
			ids[dst] = ids[src]
		}
	}
	x := base + int((h.head+lo)&capM)
	buf[x] = p
	ids[x] = id
	h.n++
}

// iqInsert is ringInsert on input ring q of the bound instance. Weighted
// callers must refresh the iqHV head-value lane afterwards.
func (v *cioqView) iqInsert(q int, p pkt, id int64) {
	ringInsert(v.iq, v.iqID, &v.iqHdr[q], q*v.icap, v.icapM, p, id)
}

// wtransfer moves the most valuable packet of IQ(i,j) — the ByValue ring
// head — into output queue j on the bound instance, preempting the
// output's least valuable packet when it is full, exactly as the scalar
// engine's executeTransfers does with PreemptIfFull set. Kernels only
// produce transfers the eligibility rule admits, which with beta >= 1
// guarantees the preemption is profitable; a sub-1 beta can produce an
// unprofitable transfer, which errors here as it does in the scalar
// engine.
func (v *cioqView) wtransfer(i, j int) {
	q := i*v.m + j
	h := &v.iqHdr[q]
	x := q*v.icap + int(h.head)
	p := v.iq[x]
	id := v.iqID[x]
	h.head = (h.head + 1) & v.icapM
	h.n--
	if h.n == 0 {
		v.voq[i] &^= 1 << uint(j)
		if v.wantByOut {
			v.voqByOut[j] &^= 1 << uint(i)
		}
	} else {
		v.iqHV[q] = v.iq[q*v.icap+int(h.head)].v
	}
	st := v.st
	st.inCount--
	ho := &v.oqHdr[j]
	base := j * v.ocap
	if ho.n >= v.outBuf {
		ti := base + int((ho.head+ho.n-1)&v.ocapM)
		tv := v.oq[ti].v
		if tv >= p.v {
			v.f.err = fmt.Errorf("fleet: transfer %d->%d of value %d rejected by full OQ (tail %d not worse)", i, j, p.v, tv)
			return
		}
		ho.n--
		v.hm.preemptedOut++
		v.hm.preemptedOutVal += tv
	} else {
		st.outBusy |= 1 << uint(j)
		st.outCount++
	}
	if ho.n == 0 {
		ringInsert0(v.oq, v.oqID, ho, base, p, id)
	} else {
		ringInsert(v.oq, v.oqID, ho, base, v.ocapM, p, id)
	}
	// A preempting insert leaves the queue full; re-clearing the bit is
	// idempotent, so the fullness check is shared by both branches.
	if ho.n >= v.outBuf {
		st.outFree &^= 1 << uint(j)
	}
	v.hm.transferred++
}

// quiesce advances the bound instance across `jump` arrival-free
// drain-only slots in closed form, mirroring (*switchsim.CIOQ).quiesce:
// each non-empty output queue transmits one head packet per slot until it
// empties, and the occupancy integral gains Σ_{x=1..min(jump,L)} (L-x)
// per queue.
func (v *cioqView) quiesce(T, jump int) {
	st := v.st
	hm := v.hm
	w := st.outBusy
	for w != 0 {
		j := bits.TrailingZeros64(w)
		w &= w - 1
		h := &v.oqHdr[j]
		l := int(h.n)
		d := min(l, jump)
		for x := 1; x <= d; x++ {
			p := v.oq[j*v.ocap+int(h.head)]
			h.head = (h.head + 1) & v.ocapM
			h.n--
			hm.sent++
			hm.benefit += p.v
			if v.recLat {
				v.lat.RecordLatency(T + x - int(p.a))
			}
			if v.recSer {
				v.series[T+x] += p.v
			}
		}
		st.outCount -= int32(d)
		hm.outOccup += int64(d)*int64(l) - int64(d)*int64(d+1)/2
		if h.n == 0 {
			st.outBusy &^= 1 << uint(j)
		}
	}
	hm.sampled += int64(jump)
}

// retire folds instance k's metric accumulators into its Metrics and
// records the final Result.
func (f *CIOQFleet) retire(k int32) instStatus {
	if err := checkResidual(int(k), f.seqs[k], f.next[k], f.horizon[k]); err != nil {
		f.err = err
		return instErr
	}
	hm := &f.hot[k]
	m := &f.ms[k]
	m.Arrived, m.ArrivedValue = hm.arrived, hm.arrivedVal
	m.Accepted, m.AcceptedValue = hm.accepted, hm.acceptedVal
	m.Rejected, m.RejectedValue = hm.rejected, hm.rejectedVal
	m.Transferred = hm.transferred
	m.Sent, m.Benefit = hm.sent, hm.benefit
	m.PreemptedInput, m.PreemptedInputValue = hm.preemptedIn, hm.preemptedInVal
	m.PreemptedOutput, m.PreemptedOutputValue = hm.preemptedOut, hm.preemptedOutVal
	m.InputOccupSum, m.OutputOccupSum = hm.inOccup, hm.outOccup
	m.AddSlotSamples(hm.sampled)
	if f.cfg.RecordSeries {
		m.SlotBenefit = f.series[k]
	}
	if f.cfg.Validate {
		residual := int64(f.st[k].inCount) + int64(f.st[k].outCount)
		preempted := m.PreemptedInput + m.PreemptedOutput
		if m.Accepted != m.Sent+preempted+residual {
			f.err = fmt.Errorf("fleet: instance %d: conservation violated: accepted=%d sent=%d preempted=%d residual=%d",
				k, m.Accepted, m.Sent, preempted, residual)
			return instErr
		}
	}
	f.results[k] = &switchsim.Result{Policy: f.policy, Cfg: f.cfg, Slots: f.horizon[k], M: *m}
	f.live--
	return instRetired
}

// validate cross-checks instance k's occupancy index and counters against
// the ring contents (full rescan; Validate mode only).
func (f *CIOQFleet) validate(k, T int) error {
	var in, out int32
	st := &f.st[k]
	for i := 0; i < f.n; i++ {
		row := f.voq[k*f.n+i]
		for j := 0; j < f.m; j++ {
			l := f.iqHdr[k*f.nm+i*f.m+j].n
			in += l
			if l < 0 || l > f.inBuf {
				return fmt.Errorf("fleet: slot %d instance %d: IQ[%d][%d] length %d out of range", T, k, i, j, l)
			}
			if got, want := row&(1<<uint(j)) != 0, l > 0; got != want {
				return fmt.Errorf("fleet: slot %d instance %d: VOQ[%d] bit %d = %v, len=%d", T, k, i, j, got, l)
			}
			if got, want := f.voqByOut[k*f.m+j]&(1<<uint(i)) != 0, l > 0; got != want {
				return fmt.Errorf("fleet: slot %d instance %d: VOQByOut[%d] bit %d = %v, len=%d", T, k, j, i, got, l)
			}
			if f.iqID != nil && !ringOrdered(f.iq, f.iqID, f.iqHdr[k*f.nm+i*f.m+j], (k*f.nm+i*f.m+j)*f.icap, int32(f.icap-1)) {
				return fmt.Errorf("fleet: slot %d instance %d: IQ[%d][%d] not in ByValue order", T, k, i, j)
			}
		}
	}
	for j := 0; j < f.m; j++ {
		l := f.oqHdr[k*f.m+j].n
		out += l
		if l < 0 || l > f.outBuf {
			return fmt.Errorf("fleet: slot %d instance %d: OQ[%d] length %d out of range", T, k, j, l)
		}
		if f.oqID != nil && !ringOrdered(f.oq, f.oqID, f.oqHdr[k*f.m+j], (k*f.m+j)*f.ocap, int32(f.ocap-1)) {
			return fmt.Errorf("fleet: slot %d instance %d: OQ[%d] not in ByValue order", T, k, j)
		}
		if got, want := st.outFree&(1<<uint(j)) != 0, l < f.outBuf; got != want {
			return fmt.Errorf("fleet: slot %d instance %d: OutFree bit %d = %v, len=%d", T, k, j, got, l)
		}
		if got, want := st.outBusy&(1<<uint(j)) != 0, l > 0; got != want {
			return fmt.Errorf("fleet: slot %d instance %d: OutBusy bit %d = %v, len=%d", T, k, j, got, l)
		}
	}
	if in != st.inCount || out != st.outCount {
		return fmt.Errorf("fleet: slot %d instance %d: counters (in=%d,out=%d) but queues hold (%d,%d)",
			T, k, st.inCount, st.outCount, in, out)
	}
	return nil
}

// ringOrdered reports whether the ring segment holds ByValue order
// (value descending, ties by ascending ID) from head to tail.
func ringOrdered(buf []pkt, ids []int64, h qhdr, base int, capM int32) bool {
	for x := int32(1); x < h.n; x++ {
		a := base + int((h.head+x-1)&capM)
		b := base + int((h.head+x)&capM)
		if buf[a].v < buf[b].v || (buf[a].v == buf[b].v && ids[a] >= ids[b]) {
			return false
		}
	}
	return true
}

// Results returns one Result per loaded instance (in input order) once
// every instance has retired. It errors if the fleet is still running or a
// stepping error is pending. The backing array is reused by the next
// Reset, so callers keeping Results across batches must copy.
func (f *CIOQFleet) Results() ([]*switchsim.Result, error) {
	if f.err != nil {
		return nil, f.err
	}
	if f.live > 0 {
		return nil, fmt.Errorf("fleet: %d instances still live", f.live)
	}
	return f.results[:f.cur], nil
}

func (f *CIOQFleet) batchCap() int { return f.batch }
func (f *CIOQFleet) passes() int64 { return f.passCount }
