package fleet

import (
	"math/rand"
	"reflect"
	"testing"

	"qswitch/internal/core"
	"qswitch/internal/packet"
	"qswitch/internal/switchsim"
)

// Differential suite: for every ported policy family, every fleet run
// must produce Metrics reflect.DeepEqual to per-instance scalar
// switchsim runs of the same sequences — including latency histograms,
// per-slot series and the unexported sample counters. This is the same
// oracle pattern that gated the bitset index (reference_test.go) and the
// event-driven engine (eventdriven_test.go).

func fleetCIOQPolicies() map[string]func() switchsim.CIOQPolicy {
	return map[string]func() switchsim.CIOQPolicy{
		"gm":              func() switchsim.CIOQPolicy { return &core.GM{} },
		"gm-colmajor":     func() switchsim.CIOQPolicy { return &core.GM{Order: core.ColMajor} },
		"gm-rotating":     func() switchsim.CIOQPolicy { return &core.GM{Order: core.Rotating} },
		"gm-longestfirst": func() switchsim.CIOQPolicy { return &core.GM{Order: core.LongestFirst} },
		"naive-fifo":      func() switchsim.CIOQPolicy { return &core.NaiveFIFO{} },
		"roundrobin":      func() switchsim.CIOQPolicy { return &core.RoundRobin{} },
		"pg":              func() switchsim.CIOQPolicy { return &core.PG{} },
		"pg-beta3":        func() switchsim.CIOQPolicy { return &core.PG{Beta: 3} },
		"krmwm":           func() switchsim.CIOQPolicy { return &core.KRMWM{} },
	}
}

func fleetCrossbarPolicies() map[string]func() switchsim.CrossbarPolicy {
	return map[string]func() switchsim.CrossbarPolicy{
		"cgu":             func() switchsim.CrossbarPolicy { return &core.CGU{} },
		"cgu-rotating":    func() switchsim.CrossbarPolicy { return &core.CGU{RotatePick: true} },
		"cpg":             func() switchsim.CrossbarPolicy { return &core.CPG{} },
		"cpg-equalparams": func() switchsim.CrossbarPolicy { return core.CPGEqualParams() },
	}
}

type fleetConfig struct {
	name string
	cfg  switchsim.Config
}

func fleetConfigs() []fleetConfig {
	return []fleetConfig{
		{"4x4", switchsim.Config{Inputs: 4, Outputs: 4, InputBuf: 2, OutputBuf: 2, CrossBuf: 1, Speedup: 1, Validate: true}},
		// Validate off: covers the production path where the transposed
		// occupancy rows are maintained lazily (only for kernels that
		// read them).
		{"4x4-novalidate", switchsim.Config{Inputs: 4, Outputs: 4, InputBuf: 2, OutputBuf: 3, CrossBuf: 1, Speedup: 2, RecordLatency: true}},
		{"5x3-speedup2-latency", switchsim.Config{Inputs: 5, Outputs: 3, InputBuf: 3, OutputBuf: 2, CrossBuf: 2, Speedup: 2, Validate: true, RecordLatency: true}},
		{"8x8-speedup3-series", switchsim.Config{Inputs: 8, Outputs: 8, InputBuf: 4, OutputBuf: 8, CrossBuf: 1, Speedup: 3, Validate: true, RecordSeries: true}},
		// Deep output buffers at speedup 4: converging bursts park long
		// drain-only backlogs, so the per-instance quiescent jump carries
		// most of the work.
		{"6x6-speedup4-drain", switchsim.Config{Inputs: 6, Outputs: 6, InputBuf: 4, OutputBuf: 32, CrossBuf: 2, Speedup: 4, Validate: true, RecordLatency: true, RecordSeries: true}},
	}
}

// fleetWorkloads mixes saturating, bursty and sparse shapes so the
// batched dense loop, the quiescent drain and the idle jump all run, and
// instances in one batch desynchronize (different horizons, different
// quiescent stretches).
func fleetWorkloads() []packet.Generator {
	return []packet.Generator{
		packet.Bernoulli{Load: 0.95, Values: packet.UniformValues{Hi: 20}},
		packet.Bernoulli{Load: 1.5},
		packet.Hotspot{Load: 1.2, HotFrac: 0.8, Values: packet.TwoValued{Alpha: 50, PHigh: 0.2}},
		packet.PoissonBurst{OffMean: 80, BurstMean: 4, Values: packet.UniformValues{Hi: 30}},
		packet.BurstyBlocking{OffMean: 150, Burst: 6, Values: packet.ZipfValues{Hi: 50, S: 1.3}},
	}
}

// fleetSeqs draws one seeded sequence per instance; instance k gets its
// own derived seed so batch members differ, as ratio fleets do.
func fleetSeqs(cfg switchsim.Config, gen packet.Generator, seed int64, batch, slots int) []packet.Sequence {
	seqs := make([]packet.Sequence, batch)
	for k := range seqs {
		rng := rand.New(rand.NewSource(seed + int64(k)*101))
		seqs[k] = gen.Generate(rng, cfg.Inputs, cfg.Outputs, slots)
	}
	return seqs
}

func TestFleetCIOQMatchesScalar(t *testing.T) {
	const batch = 5
	for name, mk := range fleetCIOQPolicies() {
		if !BatchableCIOQ(switchsim.Config{Inputs: 4, Outputs: 4, InputBuf: 1, OutputBuf: 1, Speedup: 1}, mk) {
			t.Fatalf("%s: expected a batched kernel", name)
		}
		for _, rc := range fleetConfigs() {
			for gi, gen := range fleetWorkloads() {
				for seed := int64(1); seed <= 2; seed++ {
					seqs := fleetSeqs(rc.cfg, gen, seed*31+int64(gi), batch, 400)
					fleetRes, err := RunCIOQ(rc.cfg, mk, seqs)
					if err != nil {
						t.Fatalf("%s/%s/%s seed %d fleet: %v", name, rc.name, gen.Name(), seed, err)
					}
					for k, seq := range seqs {
						scalar, err := switchsim.RunCIOQ(rc.cfg, mk(), seq)
						if err != nil {
							t.Fatalf("%s/%s/%s seed %d scalar[%d]: %v", name, rc.name, gen.Name(), seed, k, err)
						}
						if !reflect.DeepEqual(scalar.M, fleetRes[k].M) {
							t.Errorf("%s/%s/%s seed %d instance %d: fleet diverged from scalar:\nscalar: %+v\nfleet:  %+v",
								name, rc.name, gen.Name(), seed, k, scalar.M, fleetRes[k].M)
						}
						if scalar.Slots != fleetRes[k].Slots {
							t.Errorf("%s/%s/%s seed %d instance %d: horizon mismatch %d vs %d",
								name, rc.name, gen.Name(), seed, k, fleetRes[k].Slots, scalar.Slots)
						}
						if scalar.Policy != fleetRes[k].Policy {
							t.Errorf("%s instance %d: policy name %q vs %q", name, k, fleetRes[k].Policy, scalar.Policy)
						}
					}
				}
			}
		}
	}
}

func TestFleetCrossbarMatchesScalar(t *testing.T) {
	const batch = 5
	for name, mk := range fleetCrossbarPolicies() {
		if !BatchableCrossbar(switchsim.Config{Inputs: 4, Outputs: 4, InputBuf: 1, OutputBuf: 1, CrossBuf: 1, Speedup: 1}, mk) {
			t.Fatalf("%s: expected a batched kernel", name)
		}
		for _, rc := range fleetConfigs() {
			for gi, gen := range fleetWorkloads() {
				for seed := int64(1); seed <= 2; seed++ {
					seqs := fleetSeqs(rc.cfg, gen, seed*17+int64(gi), batch, 400)
					fleetRes, err := RunCrossbar(rc.cfg, mk, seqs)
					if err != nil {
						t.Fatalf("%s/%s/%s seed %d fleet: %v", name, rc.name, gen.Name(), seed, err)
					}
					for k, seq := range seqs {
						scalar, err := switchsim.RunCrossbar(rc.cfg, mk(), seq)
						if err != nil {
							t.Fatalf("%s/%s/%s seed %d scalar[%d]: %v", name, rc.name, gen.Name(), seed, k, err)
						}
						if !reflect.DeepEqual(scalar.M, fleetRes[k].M) {
							t.Errorf("%s/%s/%s seed %d instance %d: fleet diverged from scalar:\nscalar: %+v\nfleet:  %+v",
								name, rc.name, gen.Name(), seed, k, scalar.M, fleetRes[k].M)
						}
					}
				}
			}
		}
	}
}

// TestFleetDenseMatchesJumping pins the fleet's own dense escape hatch:
// Config.Dense disables the per-instance quiescent jump but must not
// change a single metric.
func TestFleetDenseMatchesJumping(t *testing.T) {
	cfg := switchsim.Config{Inputs: 4, Outputs: 4, InputBuf: 2, OutputBuf: 8, Speedup: 2, Validate: true, RecordLatency: true}
	gen := packet.BurstyBlocking{OffMean: 120, Burst: 5, Values: packet.UniformValues{Hi: 10}}
	seqs := fleetSeqs(cfg, gen, 9, 4, 1200)
	fast, err := RunCIOQ(cfg, func() switchsim.CIOQPolicy { return &core.GM{Order: core.Rotating} }, seqs)
	if err != nil {
		t.Fatal(err)
	}
	denseCfg := cfg
	denseCfg.Dense = true
	dense, err := RunCIOQ(denseCfg, func() switchsim.CIOQPolicy { return &core.GM{Order: core.Rotating} }, seqs)
	if err != nil {
		t.Fatal(err)
	}
	for k := range seqs {
		if !reflect.DeepEqual(dense[k].M, fast[k].M) {
			t.Errorf("instance %d: dense fleet diverged from jumping fleet:\ndense: %+v\nfast:  %+v", k, dense[k].M, fast[k].M)
		}
	}
}

// TestFleetFallbackUnportedPolicy routes a policy with no batched kernel
// (randomized GM, whose per-cycle shuffles have no columnar port) through
// the fleet entry points and checks the scalar fallback is taken and
// bit-identical.
func TestFleetFallbackUnportedPolicy(t *testing.T) {
	cfg := switchsim.Config{Inputs: 4, Outputs: 4, InputBuf: 2, OutputBuf: 2, CrossBuf: 1, Speedup: 2, Validate: true}
	mk := func() switchsim.CIOQPolicy { return &core.RandomizedGM{} }
	if BatchableCIOQ(cfg, mk) {
		t.Fatal("RandomizedGM unexpectedly reported batchable")
	}
	gen := packet.Bernoulli{Load: 1.0, Values: packet.UniformValues{Hi: 20}}
	seqs := fleetSeqs(cfg, gen, 3, 3, 60)
	rs, err := RunCIOQ(cfg, mk, seqs)
	if err != nil {
		t.Fatal(err)
	}
	for k, seq := range seqs {
		scalar, err := switchsim.RunCIOQ(cfg, mk(), seq)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(scalar.M, rs[k].M) {
			t.Errorf("instance %d: fallback diverged:\nscalar: %+v\nfleet:  %+v", k, scalar.M, rs[k].M)
		}
	}

	mkX := func() switchsim.CrossbarPolicy { return &core.CrossbarNaive{} }
	if BatchableCrossbar(cfg, mkX) {
		t.Fatal("CrossbarNaive unexpectedly reported batchable")
	}
	rsX, err := RunCrossbar(cfg, mkX, seqs)
	if err != nil {
		t.Fatal(err)
	}
	for k, seq := range seqs {
		scalar, err := switchsim.RunCrossbar(cfg, mkX(), seq)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(scalar.M, rsX[k].M) {
			t.Errorf("instance %d: crossbar fallback diverged", k)
		}
	}
}

// TestFleetGeometryFallback checks that geometries beyond the wide
// engine's limit take the scalar path rather than erroring.
func TestFleetGeometryFallback(t *testing.T) {
	const ports = maxWidePorts + 1
	cfg := switchsim.Config{Inputs: ports, Outputs: ports, InputBuf: 1, OutputBuf: 1, Speedup: 1}
	mk := func() switchsim.CIOQPolicy { return &core.GM{} }
	if BatchableCIOQ(cfg, mk) {
		t.Fatalf("%dx%d unexpectedly batchable", ports, ports)
	}
	rng := rand.New(rand.NewSource(1))
	seqs := []packet.Sequence{packet.Bernoulli{Load: 0.1}.Generate(rng, ports, ports, 10)}
	rs, err := RunCIOQ(cfg, mk, seqs)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := switchsim.RunCIOQ(cfg, mk(), seqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scalar.M, rs[0].M) {
		t.Error("geometry fallback diverged from scalar")
	}
}

// wideFleetConfigs are geometries past the single-word limit, so they
// exercise the multi-word wide engine (including a non-square case whose
// input- and output-indexed rows have different word counts).
func wideFleetConfigs() []fleetConfig {
	return []fleetConfig{
		{"65x65", switchsim.Config{Inputs: 65, Outputs: 65, InputBuf: 2, OutputBuf: 2, CrossBuf: 1, Speedup: 1, Validate: true}},
		{"96x70-speedup2", switchsim.Config{Inputs: 96, Outputs: 70, InputBuf: 3, OutputBuf: 2, CrossBuf: 2, Speedup: 2, Validate: true, RecordLatency: true}},
	}
}

// TestFleetWideMatchesScalar is the differential suite for the wide
// engine: every ported policy family, on >64-port geometries, must stay
// bit-identical to per-instance scalar runs.
func TestFleetWideMatchesScalar(t *testing.T) {
	const batch = 3
	gens := []packet.Generator{
		packet.Bernoulli{Load: 0.9, Values: packet.UniformValues{Hi: 20}},
		packet.PoissonBurst{OffMean: 40, BurstMean: 3, Values: packet.ZipfValues{Hi: 50, S: 1.3}},
	}
	for name, mk := range fleetCIOQPolicies() {
		for _, rc := range wideFleetConfigs() {
			if !BatchableCIOQ(rc.cfg, mk) {
				t.Fatalf("%s/%s: expected a batched wide kernel", name, rc.name)
			}
			for gi, gen := range gens {
				seqs := fleetSeqs(rc.cfg, gen, 7+int64(gi), batch, 150)
				fleetRes, err := RunCIOQ(rc.cfg, mk, seqs)
				if err != nil {
					t.Fatalf("%s/%s/%s fleet: %v", name, rc.name, gen.Name(), err)
				}
				for k, seq := range seqs {
					scalar, err := switchsim.RunCIOQ(rc.cfg, mk(), seq)
					if err != nil {
						t.Fatalf("%s/%s/%s scalar[%d]: %v", name, rc.name, gen.Name(), k, err)
					}
					if !reflect.DeepEqual(scalar.M, fleetRes[k].M) {
						t.Errorf("%s/%s/%s instance %d: wide fleet diverged from scalar:\nscalar: %+v\nfleet:  %+v",
							name, rc.name, gen.Name(), k, scalar.M, fleetRes[k].M)
					}
				}
			}
		}
	}
	for name, mk := range fleetCrossbarPolicies() {
		for _, rc := range wideFleetConfigs() {
			if !BatchableCrossbar(rc.cfg, mk) {
				t.Fatalf("%s/%s: expected a batched wide kernel", name, rc.name)
			}
			for gi, gen := range gens {
				seqs := fleetSeqs(rc.cfg, gen, 19+int64(gi), batch, 150)
				fleetRes, err := RunCrossbar(rc.cfg, mk, seqs)
				if err != nil {
					t.Fatalf("%s/%s/%s fleet: %v", name, rc.name, gen.Name(), err)
				}
				for k, seq := range seqs {
					scalar, err := switchsim.RunCrossbar(rc.cfg, mk(), seq)
					if err != nil {
						t.Fatalf("%s/%s/%s scalar[%d]: %v", name, rc.name, gen.Name(), k, err)
					}
					if !reflect.DeepEqual(scalar.M, fleetRes[k].M) {
						t.Errorf("%s/%s/%s instance %d: wide fleet diverged from scalar:\nscalar: %+v\nfleet:  %+v",
							name, rc.name, gen.Name(), k, scalar.M, fleetRes[k].M)
					}
				}
			}
		}
	}
}

// TestFleetWide256MatchesScalar spot-checks the batched-matching regime
// (n = 256: four-word rows, counting-sort weight buckets) against scalar.
// The Hungarian policy is left to the 65–96-port tier above: its scalar
// oracle is cubic in ports.
func TestFleetWide256MatchesScalar(t *testing.T) {
	cfg := switchsim.Config{Inputs: 256, Outputs: 256, InputBuf: 2, OutputBuf: 2, CrossBuf: 1, Speedup: 1, Validate: true}
	gen := packet.Bernoulli{Load: 0.6, Values: packet.UniformValues{Hi: 30}}
	seqs := fleetSeqs(cfg, gen, 3, 2, 60)
	for name, mk := range map[string]func() switchsim.CIOQPolicy{
		"gm-longestfirst": func() switchsim.CIOQPolicy { return &core.GM{Order: core.LongestFirst} },
		"roundrobin":      func() switchsim.CIOQPolicy { return &core.RoundRobin{} },
		"pg":              func() switchsim.CIOQPolicy { return &core.PG{} },
	} {
		fleetRes, err := RunCIOQ(cfg, mk, seqs)
		if err != nil {
			t.Fatalf("%s fleet: %v", name, err)
		}
		for k, seq := range seqs {
			scalar, err := switchsim.RunCIOQ(cfg, mk(), seq)
			if err != nil {
				t.Fatalf("%s scalar[%d]: %v", name, k, err)
			}
			if !reflect.DeepEqual(scalar.M, fleetRes[k].M) {
				t.Errorf("%s instance %d: 256-port fleet diverged from scalar", name, k)
			}
		}
	}
	for name, mk := range map[string]func() switchsim.CrossbarPolicy{
		"cgu": func() switchsim.CrossbarPolicy { return &core.CGU{} },
		"cpg": func() switchsim.CrossbarPolicy { return &core.CPG{} },
	} {
		fleetRes, err := RunCrossbar(cfg, mk, seqs)
		if err != nil {
			t.Fatalf("%s fleet: %v", name, err)
		}
		for k, seq := range seqs {
			scalar, err := switchsim.RunCrossbar(cfg, mk(), seq)
			if err != nil {
				t.Fatalf("%s scalar[%d]: %v", name, k, err)
			}
			if !reflect.DeepEqual(scalar.M, fleetRes[k].M) {
				t.Errorf("%s instance %d: 256-port fleet diverged from scalar", name, k)
			}
		}
	}
}

// TestFleetReuseAcrossResets runs two different batches through one fleet
// and checks the second is unpolluted by the first (storage reuse).
func TestFleetReuseAcrossResets(t *testing.T) {
	cfg := switchsim.Config{Inputs: 4, Outputs: 4, InputBuf: 2, OutputBuf: 4, Speedup: 2, Validate: true, RecordLatency: true}
	mk := func() switchsim.CIOQPolicy { return &core.RoundRobin{} }
	f, err := NewCIOQFleet(cfg, mk, 3)
	if err != nil {
		t.Fatal(err)
	}
	genA := packet.Bernoulli{Load: 1.2}
	genB := packet.BurstyBlocking{OffMean: 60, Burst: 4}
	seqsA := fleetSeqs(cfg, genA, 5, 3, 200)
	seqsB := fleetSeqs(cfg, genB, 11, 3, 500)
	for _, seqs := range [][]packet.Sequence{seqsA, seqsB, seqsA} {
		if err := f.Reset(seqs); err != nil {
			t.Fatal(err)
		}
		for f.Step() {
		}
		rs, err := f.Results()
		if err != nil {
			t.Fatal(err)
		}
		for k, seq := range seqs {
			scalar, err := switchsim.RunCIOQ(cfg, mk(), seq)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(scalar.M, rs[k].M) {
				t.Errorf("instance %d after reset: fleet diverged from scalar:\nscalar: %+v\nfleet:  %+v", k, scalar.M, rs[k].M)
			}
		}
	}
}

// TestRunnerReusesFleetAcrossShrinkingBatches drives one CIOQRunner
// through a chunk stream whose final chunk runs short — the ratio-harness
// shape — and checks every result matches a per-batch scalar run, that
// the fleet object is constructed exactly once, and that partial-batch
// Resets leave no residue for the next full batch.
func TestRunnerReusesFleetAcrossShrinkingBatches(t *testing.T) {
	cfg := switchsim.Config{Inputs: 4, Outputs: 4, InputBuf: 2, OutputBuf: 4, Speedup: 2, Validate: true, RecordLatency: true}
	mk := func() switchsim.CIOQPolicy { return &core.GM{} }
	gen := packet.PoissonBurst{OffMean: 30, BurstMean: 4}
	seqs := fleetSeqs(cfg, gen, 31, 14, 300)
	r := NewCIOQRunner(mk)
	var firstFleet fleetEngine
	for _, chunk := range [][]packet.Sequence{seqs[:6], seqs[6:12], seqs[12:14], seqs[:6]} {
		rs, err := r.Run(cfg, chunk)
		if err != nil {
			t.Fatal(err)
		}
		if firstFleet == nil {
			firstFleet = r.f
		} else if r.f != firstFleet {
			t.Fatal("runner rebuilt its fleet for a batch that fit")
		}
		if len(rs) != len(chunk) {
			t.Fatalf("got %d results for %d sequences", len(rs), len(chunk))
		}
		for k, seq := range chunk {
			scalar, err := switchsim.RunCIOQ(cfg, mk(), seq)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(scalar.M, rs[k].M) {
				t.Errorf("chunk instance %d: runner diverged from scalar:\nscalar: %+v\nrunner: %+v", k, scalar.M, rs[k].M)
			}
		}
	}
	// A larger batch forces one regrow, after which results still match.
	rs, err := r.Run(cfg, seqs)
	if err != nil {
		t.Fatal(err)
	}
	if r.f == firstFleet {
		t.Fatal("runner kept an undersized fleet for a larger batch")
	}
	for k, seq := range seqs {
		scalar, err := switchsim.RunCIOQ(cfg, mk(), seq)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(scalar.M, rs[k].M) {
			t.Errorf("regrown instance %d diverged from scalar", k)
		}
	}
}

// TestCrossbarRunnerReuse is the crossbar analogue of the runner reuse
// check, over a shrinking chunk stream.
func TestCrossbarRunnerReuse(t *testing.T) {
	cfg := switchsim.Config{Inputs: 4, Outputs: 4, InputBuf: 2, OutputBuf: 2, CrossBuf: 1, Speedup: 2, Validate: true}
	mk := func() switchsim.CrossbarPolicy { return &core.CGU{} }
	gen := packet.Hotspot{Load: 1.4, HotFrac: 0.7}
	seqs := fleetSeqs(cfg, gen, 13, 10, 120)
	r := NewCrossbarRunner(mk)
	for _, chunk := range [][]packet.Sequence{seqs[:7], seqs[7:10], seqs[:7]} {
		rs, err := r.Run(cfg, chunk)
		if err != nil {
			t.Fatal(err)
		}
		for k, seq := range chunk {
			scalar, err := switchsim.RunCrossbar(cfg, mk(), seq)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(scalar.M, rs[k].M) {
				t.Errorf("crossbar chunk instance %d: runner diverged from scalar", k)
			}
		}
	}
}

// TestFleetBatchSizeInvariance: the same sequence must produce the same
// metrics whatever batch it is embedded in.
func TestFleetBatchSizeInvariance(t *testing.T) {
	cfg := switchsim.Config{Inputs: 6, Outputs: 6, InputBuf: 3, OutputBuf: 6, Speedup: 2, Validate: true, RecordLatency: true}
	mk := func() switchsim.CIOQPolicy { return &core.GM{Order: core.Rotating} }
	gen := packet.PoissonBurst{OffMean: 50, BurstMean: 5, Values: packet.UniformValues{Hi: 9}}
	seqs := fleetSeqs(cfg, gen, 21, 16, 600)
	whole, err := RunCIOQ(cfg, mk, seqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 3, 16} {
		for at := 0; at+batch <= len(seqs); at += batch {
			part, err := RunCIOQ(cfg, mk, seqs[at:at+batch])
			if err != nil {
				t.Fatal(err)
			}
			for x := range part {
				if !reflect.DeepEqual(whole[at+x].M, part[x].M) {
					t.Errorf("batch %d offset %d: instance metrics depend on batch embedding", batch, at+x)
				}
			}
		}
	}
}
