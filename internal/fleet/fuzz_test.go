package fleet

import (
	"reflect"
	"testing"

	"qswitch/internal/core"
	"qswitch/internal/packet"
	"qswitch/internal/switchsim"
)

// fuzzBatch decodes raw fuzz bytes into a batch of well-formed arrival
// sequences: the stream is dealt round-robin across instances, and within
// an instance each 4-byte group contributes one packet after a 0..255-slot
// gap, so batches mix dense bursts, long silences and unequal horizons.
func fuzzBatch(raw []byte, batch, inputs, outputs int) []packet.Sequence {
	seqs := make([]packet.Sequence, batch)
	slots := make([]int, batch)
	ids := make([]int64, batch)
	for k := 0; k+3 < len(raw); k += 4 {
		b := (k / 4) % batch
		slots[b] += int(raw[k])
		seqs[b] = append(seqs[b], packet.Packet{
			ID:      ids[b],
			Arrival: slots[b],
			In:      int(raw[k+1]) % inputs,
			Out:     int(raw[k+2]) % outputs,
			Value:   int64(raw[k+3]%100) + 1,
		})
		ids[b]++
	}
	return seqs
}

// FuzzFleetEquivalence feeds random batches (fuzzing the batch size along
// with geometry, speedup, buffer depths and sequence shape) through the
// columnar engine with Validate on — so the occupancy index, counters and
// conservation are cross-checked every slot and after every quiescent
// jump — and asserts fleet == scalar bit for bit, per instance, for CIOQ
// and crossbar kernels in both the unit and the weighted families. The
// high bit of each port byte flips that side of the geometry into the
// 65..72-port range, routing the batch through the multi-word wide
// engine.
func FuzzFleetEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0}, uint8(1), uint8(2), uint8(2), uint8(1), uint8(1))
	f.Add([]byte{255, 1, 2, 90, 200, 0, 1, 3, 0, 1, 1, 60}, uint8(3), uint8(3), uint8(2), uint8(2), uint8(3))
	f.Add([]byte{10, 0, 0, 1, 250, 1, 1, 99, 250, 2, 2, 5, 3, 0, 1, 7}, uint8(7), uint8(4), uint8(4), uint8(1), uint8(7))
	// Converging bursts then silence across a batch: quiescent drains at
	// different depths per instance.
	f.Add([]byte{5, 0, 0, 9, 0, 1, 0, 9, 0, 2, 0, 9, 0, 3, 0, 9, 1, 0, 0, 9, 0, 1, 0, 9, 0, 2, 0, 9, 0, 3, 0, 9},
		uint8(2), uint8(4), uint8(1), uint8(3), uint8(12))
	// Value ties into one full VOQ: preempt-vs-reject decisions in the
	// weighted family hinge on tail comparisons and ID tie-breaks.
	f.Add([]byte{0, 0, 0, 9, 0, 0, 0, 9, 0, 0, 0, 42, 0, 0, 0, 9, 1, 0, 0, 99},
		uint8(1), uint8(1), uint8(1), uint8(1), uint8(1))
	// Wide geometry on both sides (65x66 via the high bit), bursty enough
	// to cross word boundaries in the occupancy rows.
	f.Add([]byte{0, 1, 64, 80, 0, 64, 65, 70, 0, 65, 1, 70, 0, 2, 64, 9, 1, 64, 0, 9, 0, 3, 65, 50},
		uint8(2), uint8(129), uint8(130), uint8(2), uint8(2))
	// Wide inputs into narrow outputs: fan-in onto few outputs makes full
	// queues (and weighted preemption) common.
	f.Add([]byte{0, 9, 0, 80, 0, 70, 0, 70, 0, 30, 1, 70, 0, 2, 0, 90, 0, 64, 1, 95, 1, 5, 0, 50},
		uint8(3), uint8(135), uint8(2), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, nBatch, nIn, nOut, speedup, outBuf uint8) {
		batch := int(nBatch)%8 + 1
		inputs := int(nIn)%4 + 1
		if nIn&0x80 != 0 {
			inputs = 65 + int(nIn)%8
		}
		outputs := int(nOut)%4 + 1
		if nOut&0x80 != 0 {
			outputs = 65 + int(nOut)%8
		}
		cfg := switchsim.Config{
			Inputs: inputs, Outputs: outputs,
			InputBuf: 2, OutputBuf: int(outBuf)%16 + 1, CrossBuf: 1,
			Speedup:  int(speedup)%3 + 1,
			Validate: true, RecordLatency: true,
		}
		seqs := fuzzBatch(raw, batch, inputs, outputs)
		for b, seq := range seqs {
			if err := seq.Validate(inputs, outputs); err != nil {
				t.Fatalf("fuzzBatch built invalid sequence %d: %v", b, err)
			}
		}
		for name, mk := range map[string]func() switchsim.CIOQPolicy{
			// Rotating GM covers the clock-derived tick state; RoundRobin
			// covers the only persistent cross-slot kernel state (grant and
			// accept pointer lanes surviving quiescent sleep/wake cycles);
			// PG covers the weighted family (ByValue rings, preemptive
			// admission and transfers, greedy weighted matching).
			"gm-rotating": func() switchsim.CIOQPolicy { return &core.GM{Order: core.Rotating} },
			"roundrobin":  func() switchsim.CIOQPolicy { return &core.RoundRobin{} },
			"pg":          func() switchsim.CIOQPolicy { return &core.PG{} },
		} {
			rs, err := RunCIOQ(cfg, mk, seqs)
			if err != nil {
				t.Fatalf("fleet cioq %s: %v", name, err)
			}
			for k, seq := range seqs {
				scalar, err := switchsim.RunCIOQ(cfg, mk(), seq)
				if err != nil {
					t.Fatalf("scalar cioq %s[%d]: %v", name, k, err)
				}
				if !reflect.DeepEqual(scalar.M, rs[k].M) {
					t.Errorf("cioq %s instance %d diverged:\nscalar: %+v\nfleet:  %+v", name, k, scalar.M, rs[k].M)
				}
			}
		}
		for name, mkX := range map[string]func() switchsim.CrossbarPolicy{
			"cgu-rotating": func() switchsim.CrossbarPolicy { return &core.CGU{RotatePick: true} },
			"cpg":          func() switchsim.CrossbarPolicy { return &core.CPG{} },
		} {
			rsX, err := RunCrossbar(cfg, mkX, seqs)
			if err != nil {
				t.Fatalf("fleet crossbar %s: %v", name, err)
			}
			for k, seq := range seqs {
				scalar, err := switchsim.RunCrossbar(cfg, mkX(), seq)
				if err != nil {
					t.Fatalf("scalar crossbar %s[%d]: %v", name, k, err)
				}
				if !reflect.DeepEqual(scalar.M, rsX[k].M) {
					t.Errorf("crossbar %s instance %d diverged:\nscalar: %+v\nfleet:  %+v", name, k, scalar.M, rsX[k].M)
				}
			}
		}
	})
}
