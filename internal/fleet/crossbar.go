package fleet

import (
	"fmt"
	"math/bits"

	"qswitch/internal/packet"
	"qswitch/internal/switchsim"
)

// CrossbarFleet is the buffered-crossbar counterpart of CIOQFleet: B
// independent crossbar instances in columnar layout, stepped in lockstep
// windows with per-instance quiescent jumps. Quiescence requires both the
// input and the crosspoint layers to be empty — while crosspoints hold
// packets the output subphase still makes policy-specific choices, so
// those slots run densely, exactly as in the scalar engine.
type CrossbarFleet struct {
	cfg      switchsim.Config
	policy   string
	kern     crossbarKernel
	batch    int // storage capacity (construction batch size)
	cur      int // instances loaded by the last Reset
	n, m     int
	nm       int
	icap     int
	xcap     int
	ocap     int
	inBuf    int32
	crossBuf int32
	outBuf   int32

	// passCount tallies pass-through deliveries (pend-buffer parks)
	// across the fleet's lifetime; the runner diffs it around each batch
	// to flush the fleet probes.
	passCount int64

	// Columnar switch state: per-instance blocks inside flat arrays.
	voq        []uint64 // [k*n+i]: outputs j with IQ(k,i,j) non-empty
	xFree      []uint64 // [k*n+i]: outputs j with XQ(k,i,j) not full
	xBusyByOut []uint64 // [k*m+j]: inputs i with XQ(k,i,j) non-empty
	st         []ports  // [k]
	iq         []pkt
	iqHdr      []qhdr
	xq         []pkt
	xqHdr      []qhdr
	oq         []pkt
	oqHdr      []qhdr
	hot        []hotCtr

	ms      []switchsim.Metrics
	series  [][]int64
	results []*switchsim.Result

	seqs    []packet.Sequence
	next    []int
	horizon []int
	at      []int

	active []int32
	sleep  []sleeper
	slot   int
	live   int
	err    error

	view crossbarView
}

// crossbarView is the per-instance working set bound once per window; see
// cioqView.
type crossbarView struct {
	f          *CrossbarFleet
	k          int
	st         *ports
	hm         *hotCtr
	lat        *switchsim.Metrics
	voq        []uint64
	xFree      []uint64
	xBusyByOut []uint64
	iqHdr      []qhdr
	iq         []pkt
	xqHdr      []qhdr
	xq         []pkt
	oqHdr      []qhdr
	oq         []pkt
	series     []int64

	n, m, nm            int
	icap, xcap, ocap    int
	icapM, xcapM, ocapM int32
	inBuf, crossBuf     int32
	outBuf              int32
	speedup             int
	recLat, recSer      bool

	// Direct pass-through delivery into output queues; see cioqView.
	direct uint64
	pend   []pkt
}

func (v *crossbarView) bind(f *CrossbarFleet, k int) {
	v.f = f
	v.k = k
	v.st = &f.st[k]
	v.hm = &f.hot[k]
	v.lat = &f.ms[k]
	v.voq = f.voq[k*f.n : (k+1)*f.n]
	v.xFree = f.xFree[k*f.n : (k+1)*f.n]
	v.xBusyByOut = f.xBusyByOut[k*f.m : (k+1)*f.m]
	v.iqHdr = f.iqHdr[k*f.nm : (k+1)*f.nm]
	v.iq = f.iq[k*f.nm*f.icap : (k+1)*f.nm*f.icap]
	v.xqHdr = f.xqHdr[k*f.nm : (k+1)*f.nm]
	v.xq = f.xq[k*f.nm*f.xcap : (k+1)*f.nm*f.xcap]
	v.oqHdr = f.oqHdr[k*f.m : (k+1)*f.m]
	v.oq = f.oq[k*f.m*f.ocap : (k+1)*f.m*f.ocap]
	if f.cfg.RecordSeries {
		v.series = f.series[k]
	}
}

// NewCrossbarFleet sizes a fleet of `batch` crossbar instances for the
// configuration and policy family produced by factory, returning
// ErrUnsupported (possibly wrapped) when no batched kernel exists or the
// geometry exceeds 64 ports.
func NewCrossbarFleet(cfg switchsim.Config, factory func() switchsim.CrossbarPolicy, batch int) (*CrossbarFleet, error) {
	if err := cfg.Check(true); err != nil {
		return nil, err
	}
	if batch < 1 {
		return nil, fmt.Errorf("fleet: batch size %d < 1", batch)
	}
	pol := factory()
	kern := crossbarKernelFor(pol)
	if kern == nil {
		return nil, fmt.Errorf("fleet: policy %q: %w", pol.Name(), ErrUnsupported)
	}
	if cfg.Inputs > maxPorts || cfg.Outputs > maxPorts {
		return nil, fmt.Errorf("fleet: geometry %dx%d exceeds %d ports: %w", cfg.Inputs, cfg.Outputs, maxPorts, ErrUnsupported)
	}
	n, m := cfg.Inputs, cfg.Outputs
	f := &CrossbarFleet{
		cfg: cfg, policy: pol.Name(), kern: kern, batch: batch, cur: batch,
		n: n, m: m, nm: n * m,
		icap: ceilPow2(cfg.InputBuf), xcap: ceilPow2(cfg.CrossBuf), ocap: ceilPow2(cfg.OutputBuf),
		inBuf: int32(cfg.InputBuf), crossBuf: int32(cfg.CrossBuf), outBuf: int32(cfg.OutputBuf),
	}
	f.voq = make([]uint64, batch*n)
	f.xFree = make([]uint64, batch*n)
	f.xBusyByOut = make([]uint64, batch*m)
	f.st = make([]ports, batch)
	f.iq = make([]pkt, batch*f.nm*f.icap)
	f.iqHdr = make([]qhdr, batch*f.nm)
	f.xq = make([]pkt, batch*f.nm*f.xcap)
	f.xqHdr = make([]qhdr, batch*f.nm)
	f.oq = make([]pkt, batch*m*f.ocap)
	f.oqHdr = make([]qhdr, batch*m)
	f.hot = make([]hotCtr, batch)
	f.ms = make([]switchsim.Metrics, batch)
	f.series = make([][]int64, batch)
	f.results = make([]*switchsim.Result, batch)
	f.next = make([]int, batch)
	f.horizon = make([]int, batch)
	f.at = make([]int, batch)
	f.active = make([]int32, 0, batch)
	f.sleep = make([]sleeper, 0, batch)
	v := &f.view
	v.n, v.m, v.nm = n, m, f.nm
	v.icap, v.xcap, v.ocap = f.icap, f.xcap, f.ocap
	v.icapM, v.xcapM, v.ocapM = int32(f.icap-1), int32(f.xcap-1), int32(f.ocap-1)
	v.inBuf, v.crossBuf, v.outBuf = f.inBuf, f.crossBuf, f.outBuf
	v.speedup = cfg.Speedup
	v.recLat, v.recSer = cfg.RecordLatency, cfg.RecordSeries
	v.pend = make([]pkt, m)
	return f, nil
}

// Policy returns the name of the batched policy family.
func (f *CrossbarFleet) Policy() string { return f.policy }

// Reset loads a new batch of arrival sequences (up to the construction
// batch size) and rewinds every loaded instance to slot 0, reusing the
// fleet's storage. Sequences are validated lazily; see (*CIOQFleet).Reset.
func (f *CrossbarFleet) Reset(seqs []packet.Sequence) error {
	if len(seqs) < 1 || len(seqs) > f.batch {
		return fmt.Errorf("fleet: got %d sequences for a batch of %d", len(seqs), f.batch)
	}
	f.cur = len(seqs)
	clear(f.voq)
	clear(f.xBusyByOut)
	clear(f.iqHdr)
	clear(f.xqHdr)
	clear(f.oqHdr)
	xAll := allOnes(f.m)
	for x := range f.xFree {
		f.xFree[x] = xAll
	}
	for k := range f.st {
		f.st[k] = ports{outFree: allOnes(f.m)}
		f.hot[k] = hotCtr{}
	}
	f.seqs = seqs
	f.active = f.active[:0]
	f.sleep = f.sleep[:0]
	f.slot = 0
	f.live = f.cur
	f.err = nil
	f.view.direct = 0
	for k := 0; k < f.cur; k++ {
		f.ms[k] = switchsim.Metrics{}
		if f.cfg.RecordLatency && f.cfg.StreamMetrics {
			f.ms[k].EnableLatencySketch()
		}
		f.results[k] = nil
		f.next[k] = 0
		f.at[k] = 0
		f.horizon[k] = f.cfg.HorizonFor(seqs[k])
		if f.cfg.RecordSeries {
			f.series[k] = make([]int64, f.horizon[k])
		} else {
			f.series[k] = nil
		}
		f.active = append(f.active, int32(k))
	}
	// Drop any tail a previous larger batch left behind; see
	// (*CIOQFleet).Reset.
	for k := f.cur; k < f.batch; k++ {
		f.ms[k] = switchsim.Metrics{}
		f.results[k] = nil
		f.series[k] = nil
	}
	return nil
}

// Step advances the global clock by one window; see (*CIOQFleet).Step.
func (f *CrossbarFleet) Step() bool {
	if f.err != nil || f.live == 0 {
		return false
	}
	if len(f.active) == 0 {
		f.slot = f.sleep[0].wake
	}
	end := f.slot + windowSlots
	for len(f.sleep) > 0 && f.sleep[0].wake < end {
		var s sleeper
		f.sleep, s = sleepPop(f.sleep)
		f.at[s.k] = s.wake
		f.active = append(f.active, s.k)
	}
	for idx := 0; idx < len(f.active); idx++ {
		k := f.active[idx]
		switch f.runWindow(k, end) {
		case instActive:
		case instErr:
			return false
		default:
			last := len(f.active) - 1
			f.active[idx] = f.active[last]
			f.active = f.active[:last]
			idx--
		}
	}
	f.slot = end
	return f.live > 0 && f.err == nil
}

func (f *CrossbarFleet) runWindow(k int32, end int) instStatus {
	kk := int(k)
	v := &f.view
	v.bind(f, kk)
	seq := f.seqs[kk]
	nx := f.next[kk]
	horizon := f.horizon[kk]
	st := v.st
	hm := v.hm
	T := f.at[kk]
	// Window-local metric accumulators; see (*CIOQFleet).runWindow.
	var aArr, aArrV, aAcc, aAccV, aRej, aRejV, tSent, tBen, oIn, oX, oOut, oSamp int64
	flush := func() {
		hm.arrived += aArr
		hm.arrivedVal += aArrV
		hm.accepted += aAcc
		hm.acceptedVal += aAccV
		hm.rejected += aRej
		hm.rejectedVal += aRejV
		hm.sent += tSent
		hm.benefit += tBen
		hm.inOccup += oIn
		hm.crossOccup += oX
		hm.outOccup += oOut
		hm.sampled += oSamp
	}
	for {
		for nx < len(seq) && seq[nx].Arrival == T {
			p := &seq[nx]
			nx++
			if uint(p.In) >= uint(v.n) || uint(p.Out) >= uint(v.m) || p.Value < 1 {
				f.err = fmt.Errorf("fleet: instance %d: bad packet %v", kk, *p)
				return instErr
			}
			aArr++
			aArrV += p.Value
			q := p.In*v.m + p.Out
			h := &v.iqHdr[q]
			if h.n >= v.inBuf {
				aRej++
				aRejV += p.Value
				continue
			}
			v.iq[q*v.icap+int((h.head+h.n)&v.icapM)] = pkt{v: p.Value, a: int32(p.Arrival)}
			h.n++
			v.voq[p.In] |= 1 << uint(p.Out)
			st.inCount++
			aAcc++
			aAccV += p.Value
		}

		for c := 0; c < v.speedup; c++ {
			f.kern.cycle(v, T, c)
		}

		w := st.outBusy
		for w != 0 {
			j := bits.TrailingZeros64(w)
			w &= w - 1
			h := &v.oqHdr[j]
			var p pkt
			if v.direct&(1<<uint(j)) != 0 {
				p = v.pend[j]
				v.direct &^= 1 << uint(j)
			} else {
				p = v.oq[j*v.ocap+int(h.head)]
			}
			h.head = (h.head + 1) & v.ocapM
			h.n--
			st.outCount--
			st.outFree |= 1 << uint(j)
			if h.n == 0 {
				st.outBusy &^= 1 << uint(j)
			}
			tSent++
			tBen += p.v
			if v.recLat {
				v.lat.RecordLatency(T - int(p.a))
			}
			if v.recSer {
				v.series[T] += p.v
			}
		}

		oIn += int64(st.inCount)
		oX += int64(st.crossCount)
		oOut += int64(st.outCount)
		oSamp++

		if f.cfg.Validate {
			if err := f.validate(kk, T); err != nil {
				f.err = err
				return instErr
			}
		}

		if !f.cfg.Dense && st.inCount == 0 && st.crossCount == 0 {
			to := horizon
			if nx < len(seq) && seq[nx].Arrival < to {
				to = seq[nx].Arrival
			}
			if jump := to - (T + 1); jump > 0 {
				v.quiesce(T, jump)
				if f.cfg.Validate {
					if err := f.validate(kk, T+jump); err != nil {
						f.err = fmt.Errorf("after quiescent jump: %w", err)
						return instErr
					}
				}
				T += jump
			}
		}
		T++
		if T >= horizon {
			flush()
			f.next[kk] = nx
			return f.retire(k)
		}
		if T >= end {
			flush()
			f.next[kk] = nx
			f.at[kk] = T
			if T > end {
				f.sleep = sleepPush(f.sleep, sleeper{wake: T, k: k})
				return instSleep
			}
			return instActive
		}
	}
}

// inputTransfer moves the head packet of IQ(i,j) to XQ(i,j) on the bound
// instance. Kernels only produce transfers whose crosspoint has room.
func (v *crossbarView) inputTransfer(i, j int) {
	q := i*v.m + j
	h := &v.iqHdr[q]
	p := v.iq[q*v.icap+int(h.head)]
	h.head = (h.head + 1) & v.icapM
	h.n--
	if h.n == 0 {
		v.voq[i] &^= 1 << uint(j)
	}
	hx := &v.xqHdr[q]
	v.xq[q*v.xcap+int((hx.head+hx.n)&v.xcapM)] = p
	hx.n++
	v.xBusyByOut[j] |= 1 << uint(i)
	if hx.n >= v.crossBuf {
		v.xFree[i] &^= 1 << uint(j)
	}
	st := v.st
	st.inCount--
	st.crossCount++
	v.hm.transferred++
}

// outputTransfer moves the head packet of XQ(i,j) to OQ(j) on the bound
// instance. Kernels only produce transfers whose output queue has room.
func (v *crossbarView) outputTransfer(i, j int) {
	q := i*v.m + j
	h := &v.xqHdr[q]
	p := v.xq[q*v.xcap+int(h.head)]
	h.head = (h.head + 1) & v.xcapM
	h.n--
	if h.n == 0 {
		v.xBusyByOut[j] &^= 1 << uint(i)
	}
	v.xFree[i] |= 1 << uint(j)
	ho := &v.oqHdr[j]
	if ho.n == 0 {
		// Empty destination: the packet is this slot's transmit head, so
		// park it in the pass-through buffer instead of the ring.
		v.pend[j] = p
		v.direct |= 1 << uint(j)
		v.f.passCount++
	} else {
		v.oq[j*v.ocap+int((ho.head+ho.n)&v.ocapM)] = p
	}
	ho.n++
	st := v.st
	st.crossCount--
	st.outBusy |= 1 << uint(j)
	if ho.n >= v.outBuf {
		st.outFree &^= 1 << uint(j)
	}
	st.outCount++
	v.hm.transferredCross++
}

// quiesce advances the bound instance across `jump` arrival-free
// drain-only slots in closed form; see (*cioqView).quiesce.
func (v *crossbarView) quiesce(T, jump int) {
	st := v.st
	hm := v.hm
	w := st.outBusy
	for w != 0 {
		j := bits.TrailingZeros64(w)
		w &= w - 1
		h := &v.oqHdr[j]
		l := int(h.n)
		d := min(l, jump)
		for x := 1; x <= d; x++ {
			p := v.oq[j*v.ocap+int(h.head)]
			h.head = (h.head + 1) & v.ocapM
			h.n--
			hm.sent++
			hm.benefit += p.v
			if v.recLat {
				v.lat.RecordLatency(T + x - int(p.a))
			}
			if v.recSer {
				v.series[T+x] += p.v
			}
		}
		st.outCount -= int32(d)
		hm.outOccup += int64(d)*int64(l) - int64(d)*int64(d+1)/2
		if h.n == 0 {
			st.outBusy &^= 1 << uint(j)
		}
	}
	hm.sampled += int64(jump)
}

func (f *CrossbarFleet) retire(k int32) instStatus {
	if err := checkResidual(int(k), f.seqs[k], f.next[k], f.horizon[k]); err != nil {
		f.err = err
		return instErr
	}
	hm := &f.hot[k]
	m := &f.ms[k]
	m.Arrived, m.ArrivedValue = hm.arrived, hm.arrivedVal
	m.Accepted, m.AcceptedValue = hm.accepted, hm.acceptedVal
	m.Rejected, m.RejectedValue = hm.rejected, hm.rejectedVal
	m.Transferred, m.TransferredCross = hm.transferred, hm.transferredCross
	m.Sent, m.Benefit = hm.sent, hm.benefit
	m.InputOccupSum, m.CrossOccupSum, m.OutputOccupSum = hm.inOccup, hm.crossOccup, hm.outOccup
	m.AddSlotSamples(hm.sampled)
	if f.cfg.RecordSeries {
		m.SlotBenefit = f.series[k]
	}
	if f.cfg.Validate {
		residual := int64(f.st[k].inCount) + int64(f.st[k].crossCount) + int64(f.st[k].outCount)
		if m.Accepted != m.Sent+residual {
			f.err = fmt.Errorf("fleet: instance %d: conservation violated: accepted=%d sent=%d residual=%d",
				k, m.Accepted, m.Sent, residual)
			return instErr
		}
	}
	f.results[k] = &switchsim.Result{Policy: f.policy, Cfg: f.cfg, Slots: f.horizon[k], M: *m}
	f.live--
	return instRetired
}

func (f *CrossbarFleet) validate(k, T int) error {
	var in, cross, out int32
	st := &f.st[k]
	for i := 0; i < f.n; i++ {
		for j := 0; j < f.m; j++ {
			q := k*f.nm + i*f.m + j
			il, xl := f.iqHdr[q].n, f.xqHdr[q].n
			in += il
			cross += xl
			if il < 0 || il > f.inBuf || xl < 0 || xl > f.crossBuf {
				return fmt.Errorf("fleet: slot %d instance %d: queue (%d,%d) lengths iq=%d xq=%d out of range", T, k, i, j, il, xl)
			}
			if got, want := f.voq[k*f.n+i]&(1<<uint(j)) != 0, il > 0; got != want {
				return fmt.Errorf("fleet: slot %d instance %d: VOQ[%d] bit %d = %v, len=%d", T, k, i, j, got, il)
			}
			if got, want := f.xFree[k*f.n+i]&(1<<uint(j)) != 0, xl < f.crossBuf; got != want {
				return fmt.Errorf("fleet: slot %d instance %d: XFree[%d] bit %d = %v, len=%d", T, k, i, j, got, xl)
			}
			if got, want := f.xBusyByOut[k*f.m+j]&(1<<uint(i)) != 0, xl > 0; got != want {
				return fmt.Errorf("fleet: slot %d instance %d: XBusyByOut[%d] bit %d = %v, len=%d", T, k, j, i, got, xl)
			}
		}
	}
	for j := 0; j < f.m; j++ {
		l := f.oqHdr[k*f.m+j].n
		out += l
		if l < 0 || l > f.outBuf {
			return fmt.Errorf("fleet: slot %d instance %d: OQ[%d] length %d out of range", T, k, j, l)
		}
		if got, want := st.outFree&(1<<uint(j)) != 0, l < f.outBuf; got != want {
			return fmt.Errorf("fleet: slot %d instance %d: OutFree bit %d = %v, len=%d", T, k, j, got, l)
		}
		if got, want := st.outBusy&(1<<uint(j)) != 0, l > 0; got != want {
			return fmt.Errorf("fleet: slot %d instance %d: OutBusy bit %d = %v, len=%d", T, k, j, got, l)
		}
	}
	if in != st.inCount || cross != st.crossCount || out != st.outCount {
		return fmt.Errorf("fleet: slot %d instance %d: counters (in=%d,cross=%d,out=%d) but queues hold (%d,%d,%d)",
			T, k, st.inCount, st.crossCount, st.outCount, in, cross, out)
	}
	return nil
}

// Results returns one Result per loaded instance once every instance
// retired. The backing array is reused by the next Reset; see
// (*CIOQFleet).Results.
func (f *CrossbarFleet) Results() ([]*switchsim.Result, error) {
	if f.err != nil {
		return nil, f.err
	}
	if f.live > 0 {
		return nil, fmt.Errorf("fleet: %d instances still live", f.live)
	}
	return f.results[:f.cur], nil
}
