package fleet

import (
	"sync/atomic"

	"qswitch/internal/obs"
)

// fleetProbes is the process-wide observability receiver for the batch
// runners. Runs flush once per batch (kernel path) or once per fallback
// sweep, so the per-slot cost of probes is zero; the pass-through tally
// rides a plain per-fleet integer that the runner diffs around each
// batch.
var fleetProbes atomic.Pointer[obs.FleetProbes]

// SetProbes installs (or, with nil, removes) the fleet probe bundle.
// Probes only observe: results are bit-identical with probes on or off.
func SetProbes(p *obs.FleetProbes) { fleetProbes.Store(p) }
