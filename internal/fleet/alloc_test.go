package fleet

import (
	"math/rand"
	"testing"

	"qswitch/internal/core"
	"qswitch/internal/obs"
	"qswitch/internal/packet"
	"qswitch/internal/switchsim"
)

// Steady-state allocation tests: after Reset and warm-up (latency
// histograms allocated, active list and sleep heap at their high-water
// sizes), one batched Step — a full window of admissions, kernel cycles,
// transmissions and quiescent jumps across the whole batch — must not
// allocate at all.

// allocSeqs builds moderately loaded bursty sequences whose arrival span
// comfortably covers warm-up plus measurement, exercising the dense loop
// and the sleep/wake machinery together.
func allocSeqs(cfg switchsim.Config, batch, slots int) []packet.Sequence {
	seqs := make([]packet.Sequence, batch)
	for k := range seqs {
		rng := rand.New(rand.NewSource(int64(k + 1)))
		gen := packet.Bursty{OnLoad: 0.8, POnOff: 0.05, POffOn: 0.2, Values: packet.UniformValues{Hi: 9}}
		seqs[k] = gen.Generate(rng, cfg.Inputs, cfg.Outputs, slots)
	}
	return seqs
}

// measureStepAllocs warms the fleet up and returns allocations per Step.
// The workload must span at least (warm+measure+2)*windowSlots slots.
func measureStepAllocs(t *testing.T, step func() bool) float64 {
	t.Helper()
	for w := 0; w < 50; w++ {
		if !step() {
			t.Fatal("fleet drained during warm-up; lengthen the workload")
		}
	}
	return testing.AllocsPerRun(100, func() {
		if !step() {
			t.Fatal("fleet drained during measurement; lengthen the workload")
		}
	})
}

func TestFleetCIOQStepZeroAllocs(t *testing.T) {
	cfg := switchsim.Config{Inputs: 16, Outputs: 16, InputBuf: 4, OutputBuf: 4, Speedup: 2, RecordLatency: true}
	const batch, slots = 8, 8000
	for name, mk := range fleetCIOQPolicies() {
		f, err := NewCIOQFleet(cfg, mk, batch)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Reset(allocSeqs(cfg, batch, slots)); err != nil {
			t.Fatal(err)
		}
		if allocs := measureStepAllocs(t, f.Step); allocs != 0 {
			t.Errorf("%s: %v allocs per batched step in steady state, want 0", name, allocs)
		}
	}
}

func TestFleetCrossbarStepZeroAllocs(t *testing.T) {
	cfg := switchsim.Config{Inputs: 16, Outputs: 16, InputBuf: 4, OutputBuf: 4, CrossBuf: 2, Speedup: 2, RecordLatency: true}
	const batch, slots = 8, 8000
	for name, mk := range fleetCrossbarPolicies() {
		f, err := NewCrossbarFleet(cfg, mk, batch)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Reset(allocSeqs(cfg, batch, slots)); err != nil {
			t.Fatal(err)
		}
		if allocs := measureStepAllocs(t, f.Step); allocs != 0 {
			t.Errorf("%s: %v allocs per batched step in steady state, want 0", name, allocs)
		}
	}
}

func TestFleetQuiescentCycleZeroAllocs(t *testing.T) {
	// Burst/drain/quiesce cycles: deep output buffers at speedup 2 with
	// converging bursts, so steps alternate between dense scheduling,
	// closed-form drains, sleep-heap traffic and wakes.
	cfg := switchsim.Config{Inputs: 8, Outputs: 8, InputBuf: 8, OutputBuf: 64, Speedup: 2, RecordLatency: true}
	const batch, slots = 16, 50000
	seqs := make([]packet.Sequence, batch)
	for k := range seqs {
		rng := rand.New(rand.NewSource(int64(k + 7)))
		seqs[k] = packet.BurstyBlocking{OffMean: 120, Burst: 8, Values: packet.UniformValues{Hi: 5}}.
			Generate(rng, cfg.Inputs, cfg.Outputs, slots)
	}
	f, err := NewCIOQFleet(cfg, func() switchsim.CIOQPolicy { return &core.GM{} }, batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Reset(seqs); err != nil {
		t.Fatal(err)
	}
	if allocs := measureStepAllocs(t, f.Step); allocs != 0 {
		t.Errorf("quiescent burst/drain cycle: %v allocs per batched step, want 0", allocs)
	}
}

// TestFleetStepZeroAllocsWithProbes re-pins the steady-state zero-alloc
// guarantee with the observability probes installed: the per-delivery
// pass-through counting and the runner's flush bookkeeping must not put
// anything on the heap.
func TestFleetStepZeroAllocsWithProbes(t *testing.T) {
	reg := obs.NewRegistry()
	SetProbes(obs.NewFleetProbes(reg))
	defer SetProbes(nil)

	cfg := switchsim.Config{Inputs: 16, Outputs: 16, InputBuf: 4, OutputBuf: 4, Speedup: 2, RecordLatency: true}
	const batch, slots = 8, 8000
	f, err := NewCIOQFleet(cfg, func() switchsim.CIOQPolicy { return &core.GM{} }, batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Reset(allocSeqs(cfg, batch, slots)); err != nil {
		t.Fatal(err)
	}
	if allocs := measureStepAllocs(t, f.Step); allocs != 0 {
		t.Errorf("probed batched step: %v allocs in steady state, want 0", allocs)
	}
}

// TestFleetWeightedStepZeroAllocsWithProbes pins the weighted kernels'
// steady-state Step at zero allocations with the probes installed: the
// ByValue ring insertions, preempt bookkeeping and greedy weighted
// matching must all run on preallocated storage.
func TestFleetWeightedStepZeroAllocsWithProbes(t *testing.T) {
	reg := obs.NewRegistry()
	SetProbes(obs.NewFleetProbes(reg))
	defer SetProbes(nil)

	cfg := switchsim.Config{Inputs: 16, Outputs: 16, InputBuf: 4, OutputBuf: 4, Speedup: 2, RecordLatency: true}
	const batch, slots = 8, 8000
	f, err := NewCIOQFleet(cfg, func() switchsim.CIOQPolicy { return &core.PG{} }, batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Reset(allocSeqs(cfg, batch, slots)); err != nil {
		t.Fatal(err)
	}
	if allocs := measureStepAllocs(t, f.Step); allocs != 0 {
		t.Errorf("probed weighted batched step: %v allocs in steady state, want 0", allocs)
	}

	xcfg := cfg
	xcfg.CrossBuf = 2
	fx, err := NewCrossbarFleet(xcfg, func() switchsim.CrossbarPolicy { return &core.CPG{} }, batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.Reset(allocSeqs(xcfg, batch, slots)); err != nil {
		t.Fatal(err)
	}
	if allocs := measureStepAllocs(t, fx.Step); allocs != 0 {
		t.Errorf("probed weighted crossbar step: %v allocs in steady state, want 0", allocs)
	}
}

// TestFleetWideStepZeroAllocs pins the wide engine's batched Step at zero
// allocations in steady state — multi-word mask scans, the batched
// matcher's counting buckets and the ByValue rings all run on storage
// owned by the fleet.
func TestFleetWideStepZeroAllocs(t *testing.T) {
	cfg := switchsim.Config{Inputs: 80, Outputs: 80, InputBuf: 2, OutputBuf: 2, Speedup: 1, RecordLatency: true}
	const batch, slots = 4, 8000
	for name, mk := range fleetCIOQPolicies() {
		if name == "krmwm" {
			// The Hungarian oracle's augmenting-path scratch grows with the
			// live edge set; it is pinned at 16 ports by the narrow test.
			continue
		}
		f, err := newWideCIOQFleet(cfg, mk, batch)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Reset(allocSeqs(cfg, batch, slots)); err != nil {
			t.Fatal(err)
		}
		if allocs := measureStepAllocs(t, f.Step); allocs != 0 {
			t.Errorf("wide %s: %v allocs per batched step in steady state, want 0", name, allocs)
		}
	}
	xcfg := cfg
	xcfg.CrossBuf = 2
	for name, mk := range fleetCrossbarPolicies() {
		f, err := newWideCrossbarFleet(xcfg, mk, batch)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Reset(allocSeqs(xcfg, batch, slots)); err != nil {
			t.Fatal(err)
		}
		if allocs := measureStepAllocs(t, f.Step); allocs != 0 {
			t.Errorf("wide %s: %v allocs per batched step in steady state, want 0", name, allocs)
		}
	}
}
