// Package fleet batch-simulates fleets of independent small switches.
//
// The competitive-ratio harness (internal/ratio) and the adversary
// restarts validate the paper's claims by Monte-Carlo estimation: many
// seeded runs of *small* switches under the same configuration and policy
// family. Throughput there is governed by aggregate switch-slot updates
// per second across the fleet, not by single-switch latency — exactly the
// regime a batched engine wins.
//
// # Columnar layout
//
// A fleet holds B instances of one geometry in struct-of-arrays form:
// every piece of per-switch state becomes a flat lane indexed by
// instance. Occupancy masks are uint64 words (voq[k*n+i] is instance k's
// non-empty-VOQ mask for input i), queue contents are flat power-of-two
// rings of (value, arrival) pairs — plus a parallel ID lane in the
// weighted family, where rings are kept in ByValue order and admissions
// and transfers may preempt the ring minimum — and the per-slot metric
// accumulators (sent, benefit, occupancy integrals, ...) are []int64
// lanes. The per-slot loop therefore touches dense arrays with no pointer
// chasing, no interface dispatch per queue operation, and no allocation —
// the zero-allocs-per-batched-slot invariant is pinned by alloc_test.go
// for the unit, weighted and wide engines alike.
//
// Two engine widths share this design. The narrow engines (Inputs,
// Outputs ≤ 64) keep every occupancy row in a single word. The wide
// engines (65 ≤ ports ≤ 512) store each row as a multi-word
// internal/bitset span behind row-accessor views, iterate them word by
// word, and batch the weighted matchings through a counting-sort
// bucketing shared across the batch; the narrow 1-word layout is
// untouched. The runner picks the width per configuration.
//
// # Lockstep windows and the active list
//
// All live instances advance through the same global slot clock in
// bounded windows: each Step visits every instance on the dense active
// list once and simulates its share of the window slot by slot —
// admissions from the instance's own arrival sequence, Speedup scheduling
// cycles of the batched policy kernel, transmission, and the end-of-slot
// occupancy sample — so an instance's working set is pulled into cache
// once per window instead of once per slot. An instance whose input side
// empties is quiescent — its remaining backlog drains
// policy-independently — so its drain is accumulated in closed form
// (mirroring the scalar engines' quiesce), and if the stretch crosses the
// window boundary it leaves the active list via a swap-remove and sleeps
// on a wake heap until its next arrival, rejoining the dense set then.
// When every instance sleeps the clock jumps straight to the earliest
// wake slot. Instances retire as they reach their own horizon; Step
// returns false once the fleet drains. Results are independent of the
// window length — instances never read each other's state.
//
// # Kernels and bit-identical semantics
//
// A kernel is the batched counterpart of a scalar policy. Two families
// are ported. The unit family is the policies whose admission rule is
// "accept iff the input queue has room" and whose quiescent-state
// evolution is either frozen (RoundRobin pointers, NaiveFIFO) or
// derivable from the slot clock (GM and CGU rotating-scan ticks). The
// weighted family adds the preemptive disciplines: ByValue rings,
// preempt-the-minimum admission, preemptive transfers and weighted
// matchings (greedy for PG/CPG, Hungarian for KRMWM), whose quiescent
// drains are value-ordered but still policy-independent.
//
// Coverage matrix (policy × geometry; every ✓ is a batched kernel in
// both the narrow ≤ 64-port and the wide 65–512-port engine):
//
//	policy                    CIOQ   crossbar
//	GM (all four edge orders)  ✓        —
//	RoundRobin, NaiveFIFO      ✓        —
//	PG (incl. custom beta)     ✓        —
//	KRMWM (maximum-weight)     ✓        —
//	CGU (plain and rotating)   —        ✓
//	CPG (incl. custom α/β)     —        ✓
//
// Every kernel reproduces its scalar policy's decisions exactly —
// eligibility is read from the same pre-cycle state the scalar engine
// exposes to policies — so fleet Metrics are reflect.DeepEqual to
// per-instance switchsim runs, including latency histograms and per-slot
// series. The differential suite, a fuzz target over batch size, weighted
// tie-breaks, wide geometries and sequence shape, and the ratio-backend
// determinism tests gate this the same way reference_test.go and
// eventdriven_test.go gated PR 1–3.
//
// Policies without a kernel (randomized GM, the FIFO-discipline
// variants, ...) and geometries beyond 512 ports fall back to
// per-instance scalar runs behind the same RunCIOQ/RunCrossbar entry
// points, so callers need not special-case batchability.
package fleet
