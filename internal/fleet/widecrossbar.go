package fleet

import (
	"fmt"
	"math/bits"

	"qswitch/internal/bitset"
	"qswitch/internal/packet"
	"qswitch/internal/switchsim"
)

// wideCrossbarFleet is CrossbarFleet with multi-word occupancy rows; see
// wideCIOQFleet and CrossbarFleet.
type wideCrossbarFleet struct {
	cfg      switchsim.Config
	policy   string
	kern     wideCrossbarKernel
	batch    int
	cur      int
	n, m     int
	nm       int
	wn, wm   int
	icap     int
	xcap     int
	ocap     int
	inBuf    int32
	crossBuf int32
	outBuf   int32

	// Columnar switch state: per-instance blocks inside flat arrays.
	voq        bitset.Mask // [(k*n+i)*wm + w]: outputs j with IQ(k,i,j) non-empty
	xFree      bitset.Mask // [(k*n+i)*wm + w]: outputs j with XQ(k,i,j) not full
	xBusyByOut bitset.Mask // [(k*m+j)*wn + w]: inputs i with XQ(k,i,j) non-empty
	outFree    bitset.Mask // [k*wm + w]
	outBusy    bitset.Mask // [k*wm + w]
	st         []wideCtr   // [k]
	iq         []pkt
	iqHdr      []qhdr
	xq         []pkt
	xqHdr      []qhdr
	oq         []pkt
	oqHdr      []qhdr
	hot        []hotCtr

	// ID lanes (weighted kernels only); see CIOQFleet.
	iqID []int64
	xqID []int64
	oqID []int64

	ms      []switchsim.Metrics
	series  [][]int64
	results []*switchsim.Result

	seqs    []packet.Sequence
	next    []int
	horizon []int
	at      []int

	active []int32
	sleep  []sleeper
	slot   int
	live   int
	err    error

	view wideCrossbarView
}

// wideCrossbarView is the per-instance working set of a wide crossbar
// instance; see crossbarView.
type wideCrossbarView struct {
	f          *wideCrossbarFleet
	k          int
	st         *wideCtr
	hm         *hotCtr
	lat        *switchsim.Metrics
	voq        bitset.Mask
	xFree      bitset.Mask
	xBusyByOut bitset.Mask
	outFree    bitset.Mask
	outBusy    bitset.Mask
	iqHdr      []qhdr
	iq         []pkt
	xqHdr      []qhdr
	xq         []pkt
	oqHdr      []qhdr
	oq         []pkt
	iqID       []int64
	xqID       []int64
	oqID       []int64
	series     []int64

	n, m, nm            int
	wn, wm              int
	icap, xcap, ocap    int
	icapM, xcapM, ocapM int32
	inBuf, crossBuf     int32
	outBuf              int32
	speedup             int
	recLat, recSer      bool
	weighted            bool
}

// voqRow returns input i's VOQ occupancy row.
func (v *wideCrossbarView) voqRow(i int) bitset.Mask {
	return v.voq[i*v.wm : (i+1)*v.wm]
}

// xFreeRow returns input i's crosspoint-has-room row.
func (v *wideCrossbarView) xFreeRow(i int) bitset.Mask {
	return v.xFree[i*v.wm : (i+1)*v.wm]
}

// xBusyByOutRow returns output j's occupied-crosspoint row.
func (v *wideCrossbarView) xBusyByOutRow(j int) bitset.Mask {
	return v.xBusyByOut[j*v.wn : (j+1)*v.wn]
}

func (v *wideCrossbarView) bind(f *wideCrossbarFleet, k int) {
	v.f = f
	v.k = k
	v.st = &f.st[k]
	v.hm = &f.hot[k]
	v.lat = &f.ms[k]
	v.voq = f.voq[k*f.n*f.wm : (k+1)*f.n*f.wm]
	v.xFree = f.xFree[k*f.n*f.wm : (k+1)*f.n*f.wm]
	v.xBusyByOut = f.xBusyByOut[k*f.m*f.wn : (k+1)*f.m*f.wn]
	v.outFree = f.outFree[k*f.wm : (k+1)*f.wm]
	v.outBusy = f.outBusy[k*f.wm : (k+1)*f.wm]
	v.iqHdr = f.iqHdr[k*f.nm : (k+1)*f.nm]
	v.iq = f.iq[k*f.nm*f.icap : (k+1)*f.nm*f.icap]
	v.xqHdr = f.xqHdr[k*f.nm : (k+1)*f.nm]
	v.xq = f.xq[k*f.nm*f.xcap : (k+1)*f.nm*f.xcap]
	v.oqHdr = f.oqHdr[k*f.m : (k+1)*f.m]
	v.oq = f.oq[k*f.m*f.ocap : (k+1)*f.m*f.ocap]
	if f.cfg.RecordSeries {
		v.series = f.series[k]
	}
	if f.iqID != nil {
		v.iqID = f.iqID[k*f.nm*f.icap : (k+1)*f.nm*f.icap]
		v.xqID = f.xqID[k*f.nm*f.xcap : (k+1)*f.nm*f.xcap]
		v.oqID = f.oqID[k*f.m*f.ocap : (k+1)*f.m*f.ocap]
	}
}

// newWideCrossbarFleet sizes a wide crossbar fleet; see NewCrossbarFleet
// and newWideCIOQFleet.
func newWideCrossbarFleet(cfg switchsim.Config, factory func() switchsim.CrossbarPolicy, batch int) (*wideCrossbarFleet, error) {
	if err := cfg.Check(true); err != nil {
		return nil, err
	}
	if batch < 1 {
		return nil, fmt.Errorf("fleet: batch size %d < 1", batch)
	}
	pol := factory()
	kern := wideCrossbarKernelFor(pol)
	if kern == nil {
		return nil, fmt.Errorf("fleet: policy %q: %w", pol.Name(), ErrUnsupported)
	}
	if cfg.Inputs > maxWidePorts || cfg.Outputs > maxWidePorts {
		return nil, fmt.Errorf("fleet: geometry %dx%d exceeds %d ports: %w", cfg.Inputs, cfg.Outputs, maxWidePorts, ErrUnsupported)
	}
	n, m := cfg.Inputs, cfg.Outputs
	f := &wideCrossbarFleet{
		cfg: cfg, policy: pol.Name(), kern: kern, batch: batch, cur: batch,
		n: n, m: m, nm: n * m,
		wn: bitset.Words(n), wm: bitset.Words(m),
		icap: ceilPow2(cfg.InputBuf), xcap: ceilPow2(cfg.CrossBuf), ocap: ceilPow2(cfg.OutputBuf),
		inBuf: int32(cfg.InputBuf), crossBuf: int32(cfg.CrossBuf), outBuf: int32(cfg.OutputBuf),
	}
	f.voq = make(bitset.Mask, batch*n*f.wm)
	f.xFree = make(bitset.Mask, batch*n*f.wm)
	f.xBusyByOut = make(bitset.Mask, batch*m*f.wn)
	f.outFree = make(bitset.Mask, batch*f.wm)
	f.outBusy = make(bitset.Mask, batch*f.wm)
	f.st = make([]wideCtr, batch)
	f.iq = make([]pkt, batch*f.nm*f.icap)
	f.iqHdr = make([]qhdr, batch*f.nm)
	f.xq = make([]pkt, batch*f.nm*f.xcap)
	f.xqHdr = make([]qhdr, batch*f.nm)
	f.oq = make([]pkt, batch*m*f.ocap)
	f.oqHdr = make([]qhdr, batch*m)
	f.hot = make([]hotCtr, batch)
	f.ms = make([]switchsim.Metrics, batch)
	f.series = make([][]int64, batch)
	f.results = make([]*switchsim.Result, batch)
	f.next = make([]int, batch)
	f.horizon = make([]int, batch)
	f.at = make([]int, batch)
	f.active = make([]int32, 0, batch)
	f.sleep = make([]sleeper, 0, batch)
	v := &f.view
	v.n, v.m, v.nm = n, m, f.nm
	v.wn, v.wm = f.wn, f.wm
	v.icap, v.xcap, v.ocap = f.icap, f.xcap, f.ocap
	v.icapM, v.xcapM, v.ocapM = int32(f.icap-1), int32(f.xcap-1), int32(f.ocap-1)
	v.inBuf, v.crossBuf, v.outBuf = f.inBuf, f.crossBuf, f.outBuf
	v.speedup = cfg.Speedup
	v.recLat, v.recSer = cfg.RecordLatency, cfg.RecordSeries
	if kern.weighted() {
		v.weighted = true
		f.iqID = make([]int64, batch*f.nm*f.icap)
		f.xqID = make([]int64, batch*f.nm*f.xcap)
		f.oqID = make([]int64, batch*m*f.ocap)
	}
	return f, nil
}

func (f *wideCrossbarFleet) batchCap() int { return f.batch }
func (f *wideCrossbarFleet) passes() int64 { return 0 }

// Reset loads a new batch of sequences; see (*CrossbarFleet).Reset.
func (f *wideCrossbarFleet) Reset(seqs []packet.Sequence) error {
	if len(seqs) < 1 || len(seqs) > f.batch {
		return fmt.Errorf("fleet: got %d sequences for a batch of %d", len(seqs), f.batch)
	}
	f.cur = len(seqs)
	f.voq.Zero()
	f.xBusyByOut.Zero()
	f.outBusy.Zero()
	clear(f.iqHdr)
	clear(f.xqHdr)
	clear(f.oqHdr)
	for r := 0; r < f.batch*f.n; r++ {
		f.xFree[r*f.wm : (r+1)*f.wm].Fill(f.m)
	}
	for k := 0; k < f.batch; k++ {
		f.outFree[k*f.wm : (k+1)*f.wm].Fill(f.m)
		f.st[k] = wideCtr{}
		f.hot[k] = hotCtr{}
	}
	f.seqs = seqs
	f.active = f.active[:0]
	f.sleep = f.sleep[:0]
	f.slot = 0
	f.live = f.cur
	f.err = nil
	for k := 0; k < f.cur; k++ {
		f.ms[k] = switchsim.Metrics{}
		if f.cfg.RecordLatency && f.cfg.StreamMetrics {
			f.ms[k].EnableLatencySketch()
		}
		f.results[k] = nil
		f.next[k] = 0
		f.at[k] = 0
		f.horizon[k] = f.cfg.HorizonFor(seqs[k])
		if f.cfg.RecordSeries {
			f.series[k] = make([]int64, f.horizon[k])
		} else {
			f.series[k] = nil
		}
		f.active = append(f.active, int32(k))
	}
	for k := f.cur; k < f.batch; k++ {
		f.ms[k] = switchsim.Metrics{}
		f.results[k] = nil
		f.series[k] = nil
	}
	return nil
}

// Step advances the global clock by one window; see (*CIOQFleet).Step.
func (f *wideCrossbarFleet) Step() bool {
	if f.err != nil || f.live == 0 {
		return false
	}
	if len(f.active) == 0 {
		f.slot = f.sleep[0].wake
	}
	end := f.slot + windowSlots
	for len(f.sleep) > 0 && f.sleep[0].wake < end {
		var s sleeper
		f.sleep, s = sleepPop(f.sleep)
		f.at[s.k] = s.wake
		f.active = append(f.active, s.k)
	}
	for idx := 0; idx < len(f.active); idx++ {
		k := f.active[idx]
		switch f.runWindow(k, end) {
		case instActive:
		case instErr:
			return false
		default:
			last := len(f.active) - 1
			f.active[idx] = f.active[last]
			f.active = f.active[:last]
			idx--
		}
	}
	f.slot = end
	return f.live > 0 && f.err == nil
}

func (f *wideCrossbarFleet) runWindow(k int32, end int) instStatus {
	kk := int(k)
	v := &f.view
	v.bind(f, kk)
	seq := f.seqs[kk]
	nx := f.next[kk]
	horizon := f.horizon[kk]
	st := v.st
	hm := v.hm
	T := f.at[kk]
	// Window-local metric accumulators; see (*CIOQFleet).runWindow.
	var aArr, aArrV, aAcc, aAccV, aRej, aRejV, aPre, aPreV, tSent, tBen, oIn, oX, oOut, oSamp int64
	flush := func() {
		hm.arrived += aArr
		hm.arrivedVal += aArrV
		hm.accepted += aAcc
		hm.acceptedVal += aAccV
		hm.rejected += aRej
		hm.rejectedVal += aRejV
		hm.preemptedIn += aPre
		hm.preemptedInVal += aPreV
		hm.sent += tSent
		hm.benefit += tBen
		hm.inOccup += oIn
		hm.crossOccup += oX
		hm.outOccup += oOut
		hm.sampled += oSamp
	}
	for {
		for nx < len(seq) && seq[nx].Arrival == T {
			p := &seq[nx]
			nx++
			if uint(p.In) >= uint(v.n) || uint(p.Out) >= uint(v.m) || p.Value < 1 {
				f.err = fmt.Errorf("fleet: instance %d: bad packet %v", kk, *p)
				return instErr
			}
			aArr++
			aArrV += p.Value
			q := p.In*v.m + p.Out
			h := &v.iqHdr[q]
			if v.weighted {
				// ByValue preemptive admission; see (*CIOQFleet).runWindow.
				if h.n >= v.inBuf {
					ti := q*v.icap + int((h.head+h.n-1)&v.icapM)
					tv := v.iq[ti].v
					if tv >= p.Value {
						aRej++
						aRejV += p.Value
						continue
					}
					h.n--
					ringInsert(v.iq, v.iqID, h, q*v.icap, v.icapM, pkt{v: p.Value, a: int32(p.Arrival)}, p.ID)
					aAcc++
					aAccV += p.Value
					aPre++
					aPreV += tv
					continue
				}
				ringInsert(v.iq, v.iqID, h, q*v.icap, v.icapM, pkt{v: p.Value, a: int32(p.Arrival)}, p.ID)
			} else {
				if h.n >= v.inBuf {
					aRej++
					aRejV += p.Value
					continue
				}
				v.iq[q*v.icap+int((h.head+h.n)&v.icapM)] = pkt{v: p.Value, a: int32(p.Arrival)}
				h.n++
			}
			v.voqRow(p.In).Set(p.Out)
			st.in++
			aAcc++
			aAccV += p.Value
		}

		for c := 0; c < v.speedup; c++ {
			f.kern.cycle(v, T, c)
		}
		if f.err != nil {
			return instErr
		}

		ob := v.outBusy
		for wdx, word := range ob {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				j := wdx<<6 + b
				h := &v.oqHdr[j]
				p := v.oq[j*v.ocap+int(h.head)]
				h.head = (h.head + 1) & v.ocapM
				h.n--
				st.out--
				v.outFree[wdx] |= 1 << uint(b)
				if h.n == 0 {
					ob[wdx] &^= 1 << uint(b)
				}
				tSent++
				tBen += p.v
				if v.recLat {
					v.lat.RecordLatency(T - int(p.a))
				}
				if v.recSer {
					v.series[T] += p.v
				}
			}
		}

		oIn += int64(st.in)
		oX += int64(st.cross)
		oOut += int64(st.out)
		oSamp++

		if f.cfg.Validate {
			if err := f.validate(kk, T); err != nil {
				f.err = err
				return instErr
			}
		}

		if !f.cfg.Dense && st.in == 0 && st.cross == 0 {
			to := horizon
			if nx < len(seq) && seq[nx].Arrival < to {
				to = seq[nx].Arrival
			}
			if jump := to - (T + 1); jump > 0 {
				v.quiesce(T, jump)
				if f.cfg.Validate {
					if err := f.validate(kk, T+jump); err != nil {
						f.err = fmt.Errorf("after quiescent jump: %w", err)
						return instErr
					}
				}
				T += jump
			}
		}
		T++
		if T >= horizon {
			flush()
			f.next[kk] = nx
			return f.retire(k)
		}
		if T >= end {
			flush()
			f.next[kk] = nx
			f.at[kk] = T
			if T > end {
				f.sleep = sleepPush(f.sleep, sleeper{wake: T, k: k})
				return instSleep
			}
			return instActive
		}
	}
}

// inputTransfer moves the head packet of IQ(i,j) to XQ(i,j); see
// (*crossbarView).inputTransfer.
func (v *wideCrossbarView) inputTransfer(i, j int) {
	q := i*v.m + j
	h := &v.iqHdr[q]
	p := v.iq[q*v.icap+int(h.head)]
	h.head = (h.head + 1) & v.icapM
	h.n--
	if h.n == 0 {
		v.voqRow(i).Clear(j)
	}
	hx := &v.xqHdr[q]
	v.xq[q*v.xcap+int((hx.head+hx.n)&v.xcapM)] = p
	hx.n++
	v.xBusyByOutRow(j).Set(i)
	if hx.n >= v.crossBuf {
		v.xFreeRow(i).Clear(j)
	}
	st := v.st
	st.in--
	st.cross++
	v.hm.transferred++
}

// outputTransfer moves the head packet of XQ(i,j) to OQ(j); see
// (*crossbarView).outputTransfer. The wide engine always does the ring
// store.
func (v *wideCrossbarView) outputTransfer(i, j int) {
	q := i*v.m + j
	h := &v.xqHdr[q]
	p := v.xq[q*v.xcap+int(h.head)]
	h.head = (h.head + 1) & v.xcapM
	h.n--
	if h.n == 0 {
		v.xBusyByOutRow(j).Clear(i)
	}
	v.xFreeRow(i).Set(j)
	ho := &v.oqHdr[j]
	v.oq[j*v.ocap+int((ho.head+ho.n)&v.ocapM)] = p
	ho.n++
	st := v.st
	st.cross--
	v.outBusy.Set(j)
	if ho.n >= v.outBuf {
		v.outFree.Clear(j)
	}
	st.out++
	v.hm.transferredCross++
}

// wInputTransfer is the weighted counterpart of inputTransfer; see
// (*crossbarView).wInputTransfer.
func (v *wideCrossbarView) wInputTransfer(i, j int) {
	q := i*v.m + j
	h := &v.iqHdr[q]
	x := q*v.icap + int(h.head)
	p := v.iq[x]
	id := v.iqID[x]
	h.head = (h.head + 1) & v.icapM
	h.n--
	if h.n == 0 {
		v.voqRow(i).Clear(j)
	}
	st := v.st
	st.in--
	hx := &v.xqHdr[q]
	base := q * v.xcap
	if hx.n >= v.crossBuf {
		ti := base + int((hx.head+hx.n-1)&v.xcapM)
		tv := v.xq[ti].v
		if tv >= p.v {
			v.f.err = fmt.Errorf("fleet: transfer %d->%d of value %d rejected by full XQ (tail %d not worse)", i, j, p.v, tv)
			return
		}
		hx.n--
		ringInsert(v.xq, v.xqID, hx, base, v.xcapM, p, id)
		v.hm.preemptedCross++
		v.hm.preemptedCrossVal += tv
	} else {
		ringInsert(v.xq, v.xqID, hx, base, v.xcapM, p, id)
		v.xBusyByOutRow(j).Set(i)
		if hx.n >= v.crossBuf {
			v.xFreeRow(i).Clear(j)
		}
		st.cross++
	}
	v.hm.transferred++
}

// wOutputTransfer is the weighted counterpart of outputTransfer; see
// (*crossbarView).wOutputTransfer.
func (v *wideCrossbarView) wOutputTransfer(i, j int) {
	q := i*v.m + j
	h := &v.xqHdr[q]
	x := q*v.xcap + int(h.head)
	p := v.xq[x]
	id := v.xqID[x]
	h.head = (h.head + 1) & v.xcapM
	h.n--
	if h.n == 0 {
		v.xBusyByOutRow(j).Clear(i)
	}
	v.xFreeRow(i).Set(j)
	st := v.st
	st.cross--
	ho := &v.oqHdr[j]
	base := j * v.ocap
	if ho.n >= v.outBuf {
		ti := base + int((ho.head+ho.n-1)&v.ocapM)
		tv := v.oq[ti].v
		if tv >= p.v {
			v.f.err = fmt.Errorf("fleet: transfer %d->%d of value %d rejected by full OQ (tail %d not worse)", i, j, p.v, tv)
			return
		}
		ho.n--
		ringInsert(v.oq, v.oqID, ho, base, v.ocapM, p, id)
		v.hm.preemptedOut++
		v.hm.preemptedOutVal += tv
	} else {
		ringInsert(v.oq, v.oqID, ho, base, v.ocapM, p, id)
		v.outBusy.Set(j)
		if ho.n >= v.outBuf {
			v.outFree.Clear(j)
		}
		st.out++
	}
	v.hm.transferredCross++
}

// quiesce advances the bound instance across `jump` arrival-free slots;
// see (*cioqView).quiesce.
func (v *wideCrossbarView) quiesce(T, jump int) {
	st := v.st
	hm := v.hm
	ob := v.outBusy
	for wdx, word := range ob {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			j := wdx<<6 + b
			h := &v.oqHdr[j]
			l := int(h.n)
			d := min(l, jump)
			for x := 1; x <= d; x++ {
				p := v.oq[j*v.ocap+int(h.head)]
				h.head = (h.head + 1) & v.ocapM
				h.n--
				hm.sent++
				hm.benefit += p.v
				if v.recLat {
					v.lat.RecordLatency(T + x - int(p.a))
				}
				if v.recSer {
					v.series[T+x] += p.v
				}
			}
			st.out -= int32(d)
			hm.outOccup += int64(d)*int64(l) - int64(d)*int64(d+1)/2
			if h.n == 0 {
				ob[wdx] &^= 1 << uint(b)
			}
		}
	}
	hm.sampled += int64(jump)
}

func (f *wideCrossbarFleet) retire(k int32) instStatus {
	if err := checkResidual(int(k), f.seqs[k], f.next[k], f.horizon[k]); err != nil {
		f.err = err
		return instErr
	}
	hm := &f.hot[k]
	m := &f.ms[k]
	m.Arrived, m.ArrivedValue = hm.arrived, hm.arrivedVal
	m.Accepted, m.AcceptedValue = hm.accepted, hm.acceptedVal
	m.Rejected, m.RejectedValue = hm.rejected, hm.rejectedVal
	m.Transferred, m.TransferredCross = hm.transferred, hm.transferredCross
	m.Sent, m.Benefit = hm.sent, hm.benefit
	m.PreemptedInput, m.PreemptedInputValue = hm.preemptedIn, hm.preemptedInVal
	m.PreemptedCross, m.PreemptedCrossValue = hm.preemptedCross, hm.preemptedCrossVal
	m.PreemptedOutput, m.PreemptedOutputValue = hm.preemptedOut, hm.preemptedOutVal
	m.InputOccupSum, m.CrossOccupSum, m.OutputOccupSum = hm.inOccup, hm.crossOccup, hm.outOccup
	m.AddSlotSamples(hm.sampled)
	if f.cfg.RecordSeries {
		m.SlotBenefit = f.series[k]
	}
	if f.cfg.Validate {
		residual := int64(f.st[k].in) + int64(f.st[k].cross) + int64(f.st[k].out)
		preempted := m.PreemptedInput + m.PreemptedCross + m.PreemptedOutput
		if m.Accepted != m.Sent+preempted+residual {
			f.err = fmt.Errorf("fleet: instance %d: conservation violated: accepted=%d sent=%d preempted=%d residual=%d",
				k, m.Accepted, m.Sent, preempted, residual)
			return instErr
		}
	}
	f.results[k] = &switchsim.Result{Policy: f.policy, Cfg: f.cfg, Slots: f.horizon[k], M: *m}
	f.live--
	return instRetired
}

func (f *wideCrossbarFleet) validate(k, T int) error {
	var in, cross, out int32
	st := &f.st[k]
	outFree := f.outFree[k*f.wm : (k+1)*f.wm]
	outBusy := f.outBusy[k*f.wm : (k+1)*f.wm]
	for i := 0; i < f.n; i++ {
		voqRow := f.voq[(k*f.n+i)*f.wm : (k*f.n+i+1)*f.wm]
		xFreeRow := f.xFree[(k*f.n+i)*f.wm : (k*f.n+i+1)*f.wm]
		for j := 0; j < f.m; j++ {
			q := k*f.nm + i*f.m + j
			il, xl := f.iqHdr[q].n, f.xqHdr[q].n
			in += il
			cross += xl
			if il < 0 || il > f.inBuf || xl < 0 || xl > f.crossBuf {
				return fmt.Errorf("fleet: slot %d instance %d: queue (%d,%d) lengths iq=%d xq=%d out of range", T, k, i, j, il, xl)
			}
			if got, want := voqRow.Test(j), il > 0; got != want {
				return fmt.Errorf("fleet: slot %d instance %d: VOQ[%d] bit %d = %v, len=%d", T, k, i, j, got, il)
			}
			if got, want := xFreeRow.Test(j), xl < f.crossBuf; got != want {
				return fmt.Errorf("fleet: slot %d instance %d: XFree[%d] bit %d = %v, len=%d", T, k, i, j, got, xl)
			}
			if got, want := f.xBusyByOut[(k*f.m+j)*f.wn:].Test(i), xl > 0; got != want {
				return fmt.Errorf("fleet: slot %d instance %d: XBusyByOut[%d] bit %d = %v, len=%d", T, k, j, i, got, xl)
			}
			if f.iqID != nil {
				if !ringOrdered(f.iq, f.iqID, f.iqHdr[q], q*f.icap, int32(f.icap-1)) {
					return fmt.Errorf("fleet: slot %d instance %d: IQ[%d][%d] not in ByValue order", T, k, i, j)
				}
				if !ringOrdered(f.xq, f.xqID, f.xqHdr[q], q*f.xcap, int32(f.xcap-1)) {
					return fmt.Errorf("fleet: slot %d instance %d: XQ[%d][%d] not in ByValue order", T, k, i, j)
				}
			}
		}
	}
	for j := 0; j < f.m; j++ {
		l := f.oqHdr[k*f.m+j].n
		out += l
		if l < 0 || l > f.outBuf {
			return fmt.Errorf("fleet: slot %d instance %d: OQ[%d] length %d out of range", T, k, j, l)
		}
		if got, want := outFree.Test(j), l < f.outBuf; got != want {
			return fmt.Errorf("fleet: slot %d instance %d: OutFree bit %d = %v, len=%d", T, k, j, got, l)
		}
		if got, want := outBusy.Test(j), l > 0; got != want {
			return fmt.Errorf("fleet: slot %d instance %d: OutBusy bit %d = %v, len=%d", T, k, j, got, l)
		}
		if f.oqID != nil && !ringOrdered(f.oq, f.oqID, f.oqHdr[k*f.m+j], (k*f.m+j)*f.ocap, int32(f.ocap-1)) {
			return fmt.Errorf("fleet: slot %d instance %d: OQ[%d] not in ByValue order", T, k, j)
		}
	}
	if in != st.in || cross != st.cross || out != st.out {
		return fmt.Errorf("fleet: slot %d instance %d: counters (in=%d,cross=%d,out=%d) but queues hold (%d,%d,%d)",
			T, k, st.in, st.cross, st.out, in, cross, out)
	}
	return nil
}

// Results returns one Result per loaded instance; see
// (*CIOQFleet).Results.
func (f *wideCrossbarFleet) Results() ([]*switchsim.Result, error) {
	if f.err != nil {
		return nil, f.err
	}
	if f.live > 0 {
		return nil, fmt.Errorf("fleet: %d instances still live", f.live)
	}
	return f.results[:f.cur], nil
}
