// Package scratch provides the one helper every reusable solver object
// in this repo needs: resizing a scratch slice to a requested length
// while keeping its backing array whenever it already fits, so warm
// solvers never allocate. It replaces the per-package growInt/growBool
// copies that accumulated in matching, flow and offline.
package scratch

// Grow returns s resized to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified; callers that need
// zeroed or sentinel-filled scratch overwrite it themselves.
func Grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
