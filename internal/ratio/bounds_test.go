package ratio

import (
	"context"
	"testing"

	"qswitch/internal/core"
	"qswitch/internal/packet"
	"qswitch/internal/switchsim"
)

func TestUpperBoundCrossbarAdaptor(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 8
	alg := CrossbarAlg(func() switchsim.CrossbarPolicy { return &core.CPG{} })
	est, err := Run(context.Background(), cfg, alg, UpperBoundCrossbar, packet.Bernoulli{Load: 1.2,
		Values: packet.UniformValues{Hi: 10}}, 21, 6)
	if err != nil {
		t.Fatal(err)
	}
	if est.Runs == 0 {
		t.Fatal("no runs")
	}
	if est.Max < 1.0-1e-9 {
		t.Errorf("crossbar UB ratio %v below 1", est.Max)
	}
}

func TestSingleSurfacesPolicyErrors(t *testing.T) {
	cfg := microCfg()
	// A policy that errors at runtime: transfer from empty queue.
	bad := Alg(func(cfg switchsim.Config, seq packet.Sequence) (int64, error) {
		return 0, errTest
	})
	seq := packet.Sequence{{ID: 0, Arrival: 0, In: 0, Out: 0, Value: 1}}
	if _, _, err := Single(cfg, bad, ExactUnitCIOQ(), seq); err == nil {
		t.Error("policy error swallowed")
	}
}

func TestSingleFlagsZeroBenefitAgainstPositiveOPT(t *testing.T) {
	cfg := microCfg()
	lazy := Alg(func(cfg switchsim.Config, seq packet.Sequence) (int64, error) {
		return 0, nil // scores nothing
	})
	seq := packet.Sequence{{ID: 0, Arrival: 0, In: 0, Out: 0, Value: 1}}
	if _, _, err := Single(cfg, lazy, ExactUnitCIOQ(), seq); err == nil {
		t.Error("unbounded ratio not surfaced as an error")
	}
}

func TestPickSlotsRespectsConfig(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 9
	if pickSlots(cfg) != 9 {
		t.Error("configured slots ignored")
	}
	cfg.Slots = 0
	if pickSlots(cfg) != 16 {
		t.Error("default window wrong")
	}
}

var errTest = &testErr{}

type testErr struct{}

func (*testErr) Error() string { return "synthetic failure" }
