package ratio

import (
	"context"
	"fmt"
	"math/rand"

	"qswitch/internal/offline"
	"qswitch/internal/packet"
	"qswitch/internal/stats"
	"qswitch/internal/switchsim"
)

// Judge computes an offline benchmark value for a sequence: the exact
// optimum or a proven upper bound. Implementations may carry reusable
// scratch between calls — the upper-bound judges keep their epoch solver
// and partition buckets warm across a whole seed stream — and therefore
// need not be safe for concurrent use; mint one per goroutine via a
// JudgeFactory. Judging is deterministic: every judge returns the same
// value for the same (cfg, seq) regardless of call history.
type Judge interface {
	Judge(cfg switchsim.Config, seq packet.Sequence) (int64, error)
}

// JudgeFactory mints independent judges. Run holds one judge for its whole
// seed stream; RunParallel and RunFleet call the factory once per worker,
// so each worker's judge reuses its scratch across everything that worker
// measures.
type JudgeFactory func() Judge

// JudgeFunc adapts a stateless judging function to the Judge interface.
type JudgeFunc func(cfg switchsim.Config, seq packet.Sequence) (int64, error)

// Judge implements the Judge interface.
func (f JudgeFunc) Judge(cfg switchsim.Config, seq packet.Sequence) (int64, error) {
	return f(cfg, seq)
}

// ExactUnitCIOQ mints the exact unit-value CIOQ DP judge.
func ExactUnitCIOQ() Judge { return JudgeFunc(offline.ExactUnitCIOQ) }

// ExactUnitCrossbar mints the exact unit-value crossbar DP judge.
func ExactUnitCrossbar() Judge { return JudgeFunc(offline.ExactUnitCrossbar) }

// ExactWeightedCIOQ mints the exact weighted micro-search judge.
func ExactWeightedCIOQ() Judge { return JudgeFunc(offline.ExactWeightedCIOQ) }

// ExactWeightedCrossbar mints the exact weighted crossbar micro-search
// judge.
func ExactWeightedCrossbar() Judge { return JudgeFunc(offline.ExactWeightedCrossbar) }

// UpperBoundCIOQ mints a judge for the combined (output-side and
// input-side) relaxation of CIOQ geometries, holding a reusable
// offline.UpperBoundSolver: repeated judging allocates nothing in steady
// state.
func UpperBoundCIOQ() Judge { return &boundJudge{} }

// UpperBoundCrossbar mints the combined-relaxation judge for crossbar
// geometries.
func UpperBoundCrossbar() Judge { return &boundJudge{crossbar: true} }

// boundJudge is the reusable upper-bound judge behind UpperBoundCIOQ and
// UpperBoundCrossbar.
type boundJudge struct {
	crossbar bool
	s        offline.UpperBoundSolver
}

func (b *boundJudge) Judge(cfg switchsim.Config, seq packet.Sequence) (int64, error) {
	return b.s.CombinedUpperBound(cfg, seq, b.crossbar)
}

// Alg runs a policy on a sequence and returns its benefit.
type Alg func(cfg switchsim.Config, seq packet.Sequence) (int64, error)

// CIOQAlg adapts a CIOQ policy factory to the Alg signature. A factory is
// needed (rather than a policy instance) so concurrent or repeated
// evaluations never share mutable policy state.
func CIOQAlg(factory func() switchsim.CIOQPolicy) Alg {
	return func(cfg switchsim.Config, seq packet.Sequence) (int64, error) {
		res, err := switchsim.RunCIOQ(cfg, factory(), seq)
		if err != nil {
			return 0, err
		}
		return res.M.Benefit, nil
	}
}

// CrossbarAlg adapts a crossbar policy factory to the Alg signature.
func CrossbarAlg(factory func() switchsim.CrossbarPolicy) Alg {
	return func(cfg switchsim.Config, seq packet.Sequence) (int64, error) {
		res, err := switchsim.RunCrossbar(cfg, factory(), seq)
		if err != nil {
			return 0, err
		}
		return res.M.Benefit, nil
	}
}

// CIOQStreamAlg is CIOQAlg routed through the streaming engine: the
// sequence is replayed via a SeqStream into RunCIOQStream. The judge side
// of a ratio run needs the materialized sequence anyway, so this backend
// is not about memory — it exists so experiments can exercise the
// streaming engine inside the same harness, with results guaranteed
// bit-identical to the materialized backend.
func CIOQStreamAlg(factory func() switchsim.CIOQPolicy) Alg {
	return func(cfg switchsim.Config, seq packet.Sequence) (int64, error) {
		res, err := switchsim.RunCIOQStream(cfg, factory(), packet.NewSeqStream(seq))
		if err != nil {
			return 0, err
		}
		return res.M.Benefit, nil
	}
}

// CrossbarStreamAlg is CrossbarAlg routed through the streaming engine;
// see CIOQStreamAlg.
func CrossbarStreamAlg(factory func() switchsim.CrossbarPolicy) Alg {
	return func(cfg switchsim.Config, seq packet.Sequence) (int64, error) {
		res, err := switchsim.RunCrossbarStream(cfg, factory(), packet.NewSeqStream(seq))
		if err != nil {
			return 0, err
		}
		return res.M.Benefit, nil
	}
}

// Estimate aggregates ratio measurements over many runs.
type Estimate struct {
	Max       float64
	Mean      float64
	CI95      float64
	Runs      int
	Skipped   int // runs where both OPT and ALG were zero
	WorstSeed int64
	Samples   []float64
}

// String renders a compact summary.
func (e Estimate) String() string {
	return fmt.Sprintf("ratio max=%.4f mean=%.4f±%.4f over %d runs (worst seed %d)",
		e.Max, e.Mean, e.CI95, e.Runs, e.WorstSeed)
}

// HalfWidth returns the Student-t CI half-width on the mean ratio at the
// given confidence level, computed from the retained per-seed samples.
// Unlike the CI95 field (a 1.96-sigma normal approximation kept for
// backward compatibility), this uses the exact t critical value for the
// observed degrees of freedom, so it is safe to stop on at small n.
func (e Estimate) HalfWidth(confidence float64) float64 {
	var acc stats.Estimator
	for _, s := range e.Samples {
		acc.Add(s)
	}
	return acc.HalfWidth(confidence)
}

// TailQuantiles returns the given quantiles (in [0,1]) of the per-seed
// ratio samples — the worst-seed tail view of the marginal distribution
// that paired comparisons report alongside mean differences.
func (e Estimate) TailQuantiles(qs ...float64) []float64 {
	return stats.Quantiles(e.Samples, qs...)
}

// Run measures OPT/ALG over `runs` seeded workloads drawn from gen, with
// one judge minted up front and reused across the whole stream. Sequences
// where OPT = 0 are skipped (the ratio is vacuous); an ALG of 0 with
// positive OPT is a genuine unbounded ratio, surfaced as an error, since
// none of the paper's algorithms can score zero against a positive
// optimum. Cancelling ctx stops the seed stream between evaluations and
// returns the context's error.
func Run(ctx context.Context, cfg switchsim.Config, alg Alg, judge JudgeFactory, gen packet.Generator, baseSeed int64, runs int) (Estimate, error) {
	j := judge()
	outs := make([]SeedOutcome, 0, runs)
	for k := 0; k < runs; k++ {
		if err := ctx.Err(); err != nil {
			return Estimate{}, err
		}
		o := evalSeed(cfg, alg, j, gen, baseSeed+int64(k))
		outs = append(outs, o)
		if o.Err != nil {
			break // merge reports it; later seeds can't change the outcome
		}
	}
	return MergeOutcomes(ctx, outs)
}

// newSeedRand is the one way seeds become RNGs: every backend derives a
// seed's workload from exactly this stream.
func newSeedRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Single measures OPT/ALG on one sequence with an already-minted judge
// (hot loops hold one judge across many Single calls). ok=false when OPT
// is zero.
func Single(cfg switchsim.Config, alg Alg, judge Judge, seq packet.Sequence) (float64, bool, error) {
	optVal, err := judge.Judge(cfg, seq)
	if err != nil {
		return 0, false, fmt.Errorf("offline optimum: %w", err)
	}
	if optVal == 0 {
		return 0, false, nil
	}
	algVal, err := alg(cfg, seq)
	if err != nil {
		return 0, false, fmt.Errorf("policy run: %w", err)
	}
	if algVal == 0 {
		return 0, false, fmt.Errorf("ratio: policy scored 0 against optimum %d", optVal)
	}
	return float64(optVal) / float64(algVal), true, nil
}

// pickSlots caps the generator horizon: when the config pins Slots use it,
// otherwise default to a modest workload window (the simulator itself will
// extend the run until drained).
func pickSlots(cfg switchsim.Config) int {
	if cfg.Slots > 0 {
		return cfg.Slots
	}
	return 16
}
