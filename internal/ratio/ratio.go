package ratio

import (
	"fmt"
	"math/rand"

	"qswitch/internal/offline"
	"qswitch/internal/packet"
	"qswitch/internal/stats"
	"qswitch/internal/switchsim"
)

// Opt computes an offline benchmark value for a sequence: the exact
// optimum or a proven upper bound.
type Opt func(cfg switchsim.Config, seq packet.Sequence) (int64, error)

// ExactUnitCIOQ adapts the exact unit-value DP to the Opt signature.
func ExactUnitCIOQ(cfg switchsim.Config, seq packet.Sequence) (int64, error) {
	return offline.ExactUnitCIOQ(cfg, seq)
}

// ExactUnitCrossbar adapts the exact unit-value crossbar DP.
func ExactUnitCrossbar(cfg switchsim.Config, seq packet.Sequence) (int64, error) {
	return offline.ExactUnitCrossbar(cfg, seq)
}

// ExactWeightedCIOQ adapts the exact weighted micro search.
func ExactWeightedCIOQ(cfg switchsim.Config, seq packet.Sequence) (int64, error) {
	return offline.ExactWeightedCIOQ(cfg, seq)
}

// ExactWeightedCrossbar adapts the exact weighted crossbar micro search.
func ExactWeightedCrossbar(cfg switchsim.Config, seq packet.Sequence) (int64, error) {
	return offline.ExactWeightedCrossbar(cfg, seq)
}

// UpperBoundCIOQ adapts the combined (output-side and input-side) flow
// relaxation for CIOQ geometries.
func UpperBoundCIOQ(cfg switchsim.Config, seq packet.Sequence) (int64, error) {
	return offline.CombinedUpperBound(cfg, seq, false)
}

// UpperBoundCrossbar adapts the combined flow relaxation for crossbar
// geometries.
func UpperBoundCrossbar(cfg switchsim.Config, seq packet.Sequence) (int64, error) {
	return offline.CombinedUpperBound(cfg, seq, true)
}

// Alg runs a policy on a sequence and returns its benefit.
type Alg func(cfg switchsim.Config, seq packet.Sequence) (int64, error)

// CIOQAlg adapts a CIOQ policy factory to the Alg signature. A factory is
// needed (rather than a policy instance) so concurrent or repeated
// evaluations never share mutable policy state.
func CIOQAlg(factory func() switchsim.CIOQPolicy) Alg {
	return func(cfg switchsim.Config, seq packet.Sequence) (int64, error) {
		res, err := switchsim.RunCIOQ(cfg, factory(), seq)
		if err != nil {
			return 0, err
		}
		return res.M.Benefit, nil
	}
}

// CrossbarAlg adapts a crossbar policy factory to the Alg signature.
func CrossbarAlg(factory func() switchsim.CrossbarPolicy) Alg {
	return func(cfg switchsim.Config, seq packet.Sequence) (int64, error) {
		res, err := switchsim.RunCrossbar(cfg, factory(), seq)
		if err != nil {
			return 0, err
		}
		return res.M.Benefit, nil
	}
}

// Estimate aggregates ratio measurements over many runs.
type Estimate struct {
	Max       float64
	Mean      float64
	CI95      float64
	Runs      int
	Skipped   int // runs where both OPT and ALG were zero
	WorstSeed int64
	Samples   []float64
}

// String renders a compact summary.
func (e Estimate) String() string {
	return fmt.Sprintf("ratio max=%.4f mean=%.4f±%.4f over %d runs (worst seed %d)",
		e.Max, e.Mean, e.CI95, e.Runs, e.WorstSeed)
}

// Run measures OPT/ALG over `runs` seeded workloads drawn from gen.
// Sequences where OPT = 0 are skipped (the ratio is vacuous); an ALG of 0
// with positive OPT is reported as +Inf via a very large sentinel would be
// wrong — it is a genuine unbounded ratio, surfaced as an error instead,
// since none of the paper's algorithms can score zero against a positive
// optimum.
func Run(cfg switchsim.Config, alg Alg, opt Opt, gen packet.Generator, baseSeed int64, runs int) (Estimate, error) {
	var est Estimate
	var acc stats.Acc
	for k := 0; k < runs; k++ {
		seed := baseSeed + int64(k)
		rng := rand.New(rand.NewSource(seed))
		seq := gen.Generate(rng, cfg.Inputs, cfg.Outputs, pickSlots(cfg))
		r, ok, err := Single(cfg, alg, opt, seq)
		if err != nil {
			return est, fmt.Errorf("ratio: seed %d: %w", seed, err)
		}
		if !ok {
			est.Skipped++
			continue
		}
		acc.Add(r)
		est.Samples = append(est.Samples, r)
		if r > est.Max {
			est.Max = r
			est.WorstSeed = seed
		}
		est.Runs++
	}
	est.Mean = acc.Mean()
	est.CI95 = acc.CI95()
	return est, nil
}

// Single measures OPT/ALG on one sequence. ok=false when OPT is zero.
func Single(cfg switchsim.Config, alg Alg, opt Opt, seq packet.Sequence) (float64, bool, error) {
	optVal, err := opt(cfg, seq)
	if err != nil {
		return 0, false, fmt.Errorf("offline optimum: %w", err)
	}
	if optVal == 0 {
		return 0, false, nil
	}
	algVal, err := alg(cfg, seq)
	if err != nil {
		return 0, false, fmt.Errorf("policy run: %w", err)
	}
	if algVal == 0 {
		return 0, false, fmt.Errorf("ratio: policy scored 0 against optimum %d", optVal)
	}
	return float64(optVal) / float64(algVal), true, nil
}

// pickSlots caps the generator horizon: when the config pins Slots use it,
// otherwise default to a modest workload window (the simulator itself will
// extend the run until drained).
func pickSlots(cfg switchsim.Config) int {
	if cfg.Slots > 0 {
		return cfg.Slots
	}
	return 16
}
