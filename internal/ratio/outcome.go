package ratio

import (
	"context"
	"fmt"

	"qswitch/internal/packet"
	"qswitch/internal/stats"
	"qswitch/internal/switchsim"
)

// SeedOutcome is one seed's measurement: the currency every ratio backend
// (sequential, parallel, fleet, sharded) produces before the deterministic
// seed-ordered merge. Outcomes are pure functions of (cfg, alg, judge,
// gen, seed), so any backend — including an out-of-process worker — yields
// the same outcome for the same seed, and MergeOutcomes folds them into
// Estimates that are byte-identical across backends.
type SeedOutcome struct {
	// Seed is the RNG seed the workload was drawn from.
	Seed int64
	// Ratio is OPT/ALG for the seed's sequence (meaningful only when
	// neither Skipped nor Err is set).
	Ratio float64
	// Skipped marks seeds whose offline optimum was zero (the ratio is
	// vacuous).
	Skipped bool
	// Err is the seed's evaluation error, if any. Errors are deterministic
	// per seed, so every backend attributes the same error to the same
	// seed.
	Err error
	// NotRun marks seeds that were never evaluated because the run was
	// cancelled first. MergeOutcomes maps them to the context's error.
	NotRun bool
}

// MergeOutcomes folds seed-ordered outcomes into an Estimate exactly the
// way the sequential Run does: scanning in seed order, the first errored
// seed aborts the merge with that seed's error; skipped seeds count as
// Skipped; everything else accumulates into the mean/CI/max statistics.
// A NotRun outcome yields ctx's error (the run was cancelled before the
// seed was evaluated). The fold is what pins all backends byte-identical.
func MergeOutcomes(ctx context.Context, outs []SeedOutcome) (Estimate, error) {
	var est Estimate
	var acc stats.Acc
	for _, o := range outs {
		if o.Err != nil {
			return est, fmt.Errorf("ratio: seed %d: %w", o.Seed, o.Err)
		}
		if o.NotRun {
			if err := ctx.Err(); err != nil {
				return est, err
			}
			return est, fmt.Errorf("ratio: seed %d was not evaluated", o.Seed)
		}
		if o.Skipped {
			est.Skipped++
			continue
		}
		acc.Add(o.Ratio)
		est.Samples = append(est.Samples, o.Ratio)
		if o.Ratio > est.Max {
			est.Max = o.Ratio
			est.WorstSeed = o.Seed
		}
		est.Runs++
	}
	est.Mean = acc.Mean()
	est.CI95 = acc.CI95()
	return est, nil
}

// evalSeed measures one seed with a scalar Alg, producing the outcome
// Run/RunParallel merge. The error text matches EvalChunk's for the same
// seed, so attribution is identical across backends.
func evalSeed(cfg switchsim.Config, alg Alg, j Judge, gen packet.Generator, seed int64) SeedOutcome {
	seq := generateSeq(cfg, gen, seed)
	r, ok, err := Single(cfg, alg, j, seq)
	return SeedOutcome{Seed: seed, Ratio: r, Skipped: !ok && err == nil, Err: err}
}

// generateSeq draws seed's workload; every backend calls exactly this, so
// a seed names the same sequence everywhere (including remote workers).
func generateSeq(cfg switchsim.Config, gen packet.Generator, seed int64) packet.Sequence {
	rng := newSeedRand(seed)
	return gen.Generate(rng, cfg.Inputs, cfg.Outputs, pickSlots(cfg))
}

// EvalChunk evaluates seeds [k0, k1) with a batched FleetAlg and a minted
// Judge, appending one outcome per seed to out (which is reset first).
// The batch's policy runs step on a side goroutine while the judge scores
// the batch's sequences, so judging overlaps fleet stepping.
//
// Error attribution matches the scalar backends exactly: judge errors are
// recorded at their own seed, and when the batched policy call fails the
// chunk falls back to single-sequence policy runs to locate which seeds
// actually fail (per-seed results are deterministic, so the re-run
// reproduces the error at its true seed). Only if no individual run fails
// — a batch-level fault with no per-seed witness — is the batch error
// attributed to the chunk's first eligible seed.
func EvalChunk(cfg switchsim.Config, a FleetAlg, j Judge, gen packet.Generator,
	baseSeed int64, k0, k1 int, out []SeedOutcome) []SeedOutcome {
	out = out[:0]
	n := k1 - k0
	if n <= 0 {
		return out
	}
	seqs := make([]packet.Sequence, 0, n)
	for k := k0; k < k1; k++ {
		seqs = append(seqs, generateSeq(cfg, gen, baseSeed+int64(k)))
	}
	// Policy side first, on its own goroutine: the fleet steps the whole
	// batch while this goroutine judges it.
	type algOut struct {
		benefits []int64
		err      error
	}
	algCh := make(chan algOut, 1)
	go func() {
		benefits, err := a(cfg, seqs)
		if err == nil && len(benefits) != len(seqs) {
			err = fmt.Errorf("fleet alg returned %d benefits for %d sequences", len(benefits), len(seqs))
		}
		algCh <- algOut{benefits, err}
	}()

	optVals := make([]int64, n)
	firstElig := -1
	for i := 0; i < n; i++ {
		seed := baseSeed + int64(k0+i)
		optVal, err := j.Judge(cfg, seqs[i])
		switch {
		case err != nil:
			out = append(out, SeedOutcome{Seed: seed, Err: fmt.Errorf("offline optimum: %w", err)})
		case optVal == 0:
			out = append(out, SeedOutcome{Seed: seed, Skipped: true})
		default:
			if firstElig < 0 {
				firstElig = i
			}
			optVals[i] = optVal
			out = append(out, SeedOutcome{Seed: seed})
		}
	}
	res := <-algCh
	if res.err != nil {
		// The batched call failed; locate the failing seed(s) by re-running
		// each judged-eligible sequence individually. Per-seed evaluations
		// are deterministic, so this reproduces exactly the error the
		// scalar backends would attribute to that seed.
		witnessed := false
		for i := 0; i < n; i++ {
			if out[i].Err != nil || out[i].Skipped {
				continue
			}
			benefits, err := a(cfg, seqs[i:i+1])
			if err != nil {
				out[i].Err = fmt.Errorf("policy run: %w", err)
				witnessed = true
				continue
			}
			if len(benefits) != 1 {
				out[i].Err = fmt.Errorf("policy run: fleet alg returned %d benefits for 1 sequence", len(benefits))
				witnessed = true
				continue
			}
			fillOutcome(&out[i], optVals[i], benefits[0])
		}
		if !witnessed && firstElig >= 0 {
			out[firstElig] = SeedOutcome{Seed: out[firstElig].Seed,
				Err: fmt.Errorf("policy run: %w", res.err)}
		}
		return out
	}
	for i := 0; i < n; i++ {
		if out[i].Err != nil || out[i].Skipped {
			continue
		}
		fillOutcome(&out[i], optVals[i], res.benefits[i])
	}
	return out
}

// fillOutcome finalizes an eligible seed's outcome from its optimum and
// benefit, reproducing Single's zero-benefit error text.
func fillOutcome(o *SeedOutcome, optVal, benefit int64) {
	if benefit == 0 {
		o.Err = fmt.Errorf("ratio: policy scored 0 against optimum %d", optVal)
		return
	}
	o.Ratio = float64(optVal) / float64(benefit)
}
