package ratio

import (
	"context"
	"reflect"
	"testing"

	"qswitch/internal/core"
	"qswitch/internal/packet"
	"qswitch/internal/switchsim"
)

// Determinism across backends: for the same config, generator and seeds,
// the sequential Run, RunParallel at any worker count, and RunFleet at
// any (workers, batch) combination must produce byte-identical Estimates
// — the batched columnar engine is bit-identical to the scalar engines,
// and all three merge in seed order.

func backendCfg() switchsim.Config {
	return switchsim.Config{
		Inputs: 2, Outputs: 2, InputBuf: 2, OutputBuf: 2, CrossBuf: 1,
		Speedup: 1, Slots: 7,
	}
}

func assertSameEstimate(t *testing.T, label string, want, got Estimate) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: estimate diverged:\nwant %+v\ngot  %+v", label, want, got)
	}
}

func TestRunFleetMatchesScalarBackends(t *testing.T) {
	cfg := backendCfg()
	gen := packet.Bernoulli{Load: 1.2}
	factory := func() switchsim.CIOQPolicy { return &core.GM{} }
	const runs = 24

	want, err := Run(context.Background(), cfg, CIOQAlg(factory), ExactUnitCIOQ, gen, 11, runs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		par, err := RunParallel(context.Background(), cfg, CIOQAlg(factory), ExactUnitCIOQ, gen, 11, runs, workers)
		if err != nil {
			t.Fatal(err)
		}
		assertSameEstimate(t, "RunParallel", want, par)
		for _, batch := range []int{1, 5, 24, 100} {
			fl, err := RunFleet(context.Background(), cfg, CIOQFleetAlg(factory), ExactUnitCIOQ, gen, 11, runs, workers, batch)
			if err != nil {
				t.Fatal(err)
			}
			assertSameEstimate(t, "RunFleet", want, fl)
		}
	}
}

func TestRunFleetCrossbarMatchesScalarBackends(t *testing.T) {
	cfg := backendCfg()
	gen := packet.Hotspot{Load: 1.5, HotFrac: 0.8}
	factory := func() switchsim.CrossbarPolicy { return &core.CGU{RotatePick: true} }
	const runs = 16

	want, err := Run(context.Background(), cfg, CrossbarAlg(factory), ExactUnitCrossbar, gen, 5, runs)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 7, 64} {
		fl, err := RunFleet(context.Background(), cfg, CrossbarFleetAlg(factory), ExactUnitCrossbar, gen, 5, runs, 2, batch)
		if err != nil {
			t.Fatal(err)
		}
		assertSameEstimate(t, "RunFleet crossbar", want, fl)
	}
}

// TestRunFleetFallbackPolicy drives RunFleet with a weighted (unported)
// policy family: the fleet layer falls back to per-instance scalar runs
// and the estimate must still match the scalar backends byte for byte.
func TestRunFleetFallbackPolicy(t *testing.T) {
	cfg := backendCfg()
	cfg.Slots = 4
	gen := packet.Bernoulli{Load: 0.8, Values: packet.UniformValues{Hi: 20}}
	factory := func() switchsim.CIOQPolicy { return &core.PG{} }
	const runs = 10

	want, err := Run(context.Background(), cfg, CIOQAlg(factory), ExactWeightedCIOQ, gen, 3, runs)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := RunFleet(context.Background(), cfg, CIOQFleetAlg(factory), ExactWeightedCIOQ, gen, 3, runs, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	assertSameEstimate(t, "RunFleet fallback", want, fl)
}
