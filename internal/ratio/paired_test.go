package ratio

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"qswitch/internal/core"
	"qswitch/internal/packet"
	"qswitch/internal/stats"
	"qswitch/internal/switchsim"
)

func gmPair() []PairedPolicy {
	return []PairedPolicy{
		{Name: "gm", Alg: CIOQFleetAlg(func() switchsim.CIOQPolicy { return &core.GM{} })},
		{Name: "gm-colmajor", Alg: CIOQFleetAlg(func() switchsim.CIOQPolicy { return &core.GM{Order: core.ColMajor} })},
	}
}

// TestPairedMarginalsMatchIndependentRun: each marginal estimate of a
// paired run is byte-identical to an independent Run of that policy over
// the same seeds — at any batch/chunk size, including workloads with
// skipped (OPT = 0) seeds.
func TestPairedMarginalsMatchIndependentRun(t *testing.T) {
	ctx := context.Background()
	algs := []Alg{
		CIOQAlg(func() switchsim.CIOQPolicy { return &core.GM{} }),
		CIOQAlg(func() switchsim.CIOQPolicy { return &core.GM{Order: core.ColMajor} }),
	}
	for _, tc := range []struct {
		name string
		gen  packet.Generator
	}{
		{"dense", packet.Bernoulli{Load: 1.5}},
		{"sparse-with-skips", packet.Bernoulli{Load: 0.05}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := microCfg()
			cfg.Slots = 4
			const baseSeed, runs = 21, 14
			for _, batch := range []int{1, 3, 32} {
				pe, err := RunPaired(ctx, cfg, gmPair(), ExactUnitCIOQ, tc.gen, baseSeed,
					PairedOptions{Batch: batch, MaxRuns: runs})
				if err != nil {
					t.Fatalf("RunPaired batch=%d: %v", batch, err)
				}
				if pe.Seeds != runs {
					t.Errorf("batch=%d: issued %d seeds, want %d", batch, pe.Seeds, runs)
				}
				for p, alg := range algs {
					want, err := Run(ctx, cfg, alg, ExactUnitCIOQ, tc.gen, baseSeed, runs)
					if err != nil {
						t.Fatalf("Run policy %d: %v", p, err)
					}
					if !reflect.DeepEqual(pe.Marginals[p], want) {
						t.Errorf("batch=%d policy %q: marginal differs from Run:\n got %+v\nwant %+v",
							batch, pe.Names[p], pe.Marginals[p], want)
					}
				}
			}
		})
	}
}

// TestPairedDiffMatchesPostHoc: the engine's Diffs are exactly the
// PairedDiff fold over its merged marginals, so post-hoc pairing of
// independently measured estimates gives identical numbers.
func TestPairedDiffMatchesPostHoc(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 4
	gen := packet.Bernoulli{Load: 1.5}
	pe, err := RunPaired(context.Background(), cfg, gmPair(), ExactUnitCIOQ, gen, 5,
		PairedOptions{MaxRuns: 16})
	if err != nil {
		t.Fatalf("RunPaired: %v", err)
	}
	want, err := PairedDiff(pe.Marginals[0], pe.Marginals[1], 0.95)
	if err != nil {
		t.Fatalf("PairedDiff: %v", err)
	}
	want.Name = "gm-colmajor-gm"
	if len(pe.Diffs) != 1 || !reflect.DeepEqual(pe.Diffs[0], want) {
		t.Errorf("Diffs = %+v, want [%+v]", pe.Diffs, want)
	}
}

// TestPairedDiffRejectsMisalignedStreams: PairedDiff refuses estimates
// whose sample counts differ — they cannot be seed-aligned.
func TestPairedDiffRejectsMisalignedStreams(t *testing.T) {
	a := Estimate{Runs: 3, Samples: []float64{1, 2, 3}}
	b := Estimate{Runs: 2, Samples: []float64{1, 2}}
	if _, err := PairedDiff(a, b, 0.95); err == nil {
		t.Error("want error for misaligned sample counts")
	}
}

// TestPairedJudgeOncePerSeed: the offline optimum is solved once per
// seed, shared across all policies — the other half of the paired
// engine's savings.
func TestPairedJudgeOncePerSeed(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 4
	gen := packet.Bernoulli{Load: 1.5}
	var calls atomic.Int64
	countingJudge := func() Judge {
		inner := ExactUnitCIOQ()
		return JudgeFunc(func(c switchsim.Config, seq packet.Sequence) (int64, error) {
			calls.Add(1)
			return inner.Judge(c, seq)
		})
	}
	const runs = 12
	pe, err := RunPaired(context.Background(), cfg, gmPair(), countingJudge, gen, 1,
		PairedOptions{MaxRuns: runs})
	if err != nil {
		t.Fatalf("RunPaired: %v", err)
	}
	if got := calls.Load(); got != runs {
		t.Errorf("judge called %d times for %d seeds x %d policies, want %d (once per seed)",
			got, runs, len(pe.Names), runs)
	}
	if pe.JudgeCalls != runs {
		t.Errorf("JudgeCalls = %d, want %d", pe.JudgeCalls, runs)
	}
}

// TestPairedSlotsAccounting: SlotsSimulated equals k policies times the
// summed workload spans WorkloadSlots reports — the shared accounting
// unit the BENCH_8 paired-vs-independent comparison relies on.
func TestPairedSlotsAccounting(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 4
	gen := packet.Bernoulli{Load: 1.5}
	const baseSeed, runs = 2, 10
	pe, err := RunPaired(context.Background(), cfg, gmPair(), ExactUnitCIOQ, gen, baseSeed,
		PairedOptions{MaxRuns: runs})
	if err != nil {
		t.Fatalf("RunPaired: %v", err)
	}
	want := 2 * WorkloadSlots(cfg, gen, baseSeed, runs)
	if pe.SlotsSimulated != want {
		t.Errorf("SlotsSimulated = %d, want %d (2 policies x workload spans)", pe.SlotsSimulated, want)
	}
}

// TestPairedTargetStopsDeterministically: with a reachable diff target
// the run stops early at a chunk boundary, and the result is independent
// of the fleet batch size.
func TestPairedTargetStopsDeterministically(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 4
	gen := packet.Bernoulli{Load: 1.5}
	const budget, chunk = 96, 8
	opts := PairedOptions{Chunk: chunk, MaxRuns: budget, Target: stats.Target{AbsWidth: 0.15}}
	var want PairedEstimate
	for i, batch := range []int{3, 32} {
		opts.Batch = batch
		pe, err := RunPaired(context.Background(), cfg, gmPair(), ExactUnitCIOQ, gen, 4, opts)
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if !pe.TargetMet {
			t.Fatalf("batch=%d: target not met within %d seeds — test workload mistuned", batch, budget)
		}
		if pe.Seeds >= budget || pe.Seeds%chunk != 0 {
			t.Errorf("batch=%d: stopped at %d seeds, want an early chunk multiple of %d", batch, pe.Seeds, chunk)
		}
		if i == 0 {
			want = pe
			continue
		}
		if !reflect.DeepEqual(pe, want) {
			t.Errorf("batch=%d: result differs from batch=3:\n got %+v\nwant %+v", batch, pe, want)
		}
	}
}

// TestPairedErrorAttribution: a policy failing on one seed surfaces
// Run's exact seed-attributed error text, wrapped with the policy name.
func TestPairedErrorAttribution(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 4
	gen := packet.Bernoulli{Load: 1.0}
	const baseSeed, runs, failIdx = 50, 10, 7
	failSeed := int64(baseSeed + failIdx)
	boom := errors.New("boom")
	failing := func() FleetAlg {
		inner := CIOQFleetAlg(func() switchsim.CIOQPolicy { return &core.GM{Order: core.ColMajor} })()
		return func(c switchsim.Config, seqs []packet.Sequence) ([]int64, error) {
			for _, s := range seqs {
				if fingerprintSeedMatch(c, gen, failSeed, s) {
					return nil, boom
				}
			}
			return inner(c, seqs)
		}
	}
	pols := []PairedPolicy{
		{Name: "gm", Alg: CIOQFleetAlg(func() switchsim.CIOQPolicy { return &core.GM{} })},
		{Name: "gm-colmajor", Alg: failing},
	}
	want := fmt.Sprintf("paired policy %q: ratio: seed %d: policy run: boom", "gm-colmajor", failSeed)
	for _, batch := range []int{3, 16} {
		_, err := RunPaired(context.Background(), cfg, pols, ExactUnitCIOQ, gen, baseSeed,
			PairedOptions{Batch: batch, MaxRuns: runs})
		if err == nil || err.Error() != want {
			t.Errorf("batch=%d: error = %v, want %q", batch, err, want)
		}
	}
}

// TestPairedSinglePolicyTargetsMarginal: with one policy the target
// applies to the marginal mean, reducing RunPaired to a fleet-backed
// sequential estimation.
func TestPairedSinglePolicyTargetsMarginal(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 4
	gen := packet.Bernoulli{Load: 1.0}
	pe, err := RunPaired(context.Background(), cfg, gmPair()[:1], ExactUnitCIOQ, gen, 9,
		PairedOptions{Chunk: 8, MaxRuns: 96, Target: stats.Target{AbsWidth: 0.25}})
	if err != nil {
		t.Fatalf("RunPaired: %v", err)
	}
	if !pe.TargetMet || pe.Seeds >= 96 {
		t.Errorf("single-policy target not applied to marginal: %+v", pe)
	}
	if len(pe.Diffs) != 0 {
		t.Errorf("single policy must produce no diffs, got %+v", pe.Diffs)
	}
}

// TestPairedNoPolicies: degenerate input errors cleanly.
func TestPairedNoPolicies(t *testing.T) {
	cfg := microCfg()
	if _, err := RunPaired(context.Background(), cfg, nil, ExactUnitCIOQ,
		packet.Bernoulli{Load: 1.0}, 1, PairedOptions{MaxRuns: 4}); err == nil {
		t.Error("want error for zero policies")
	}
}

// TestPairedTailQuantiles: the marginals retain their samples, so
// worst-seed tail quantiles are available on both arms.
func TestPairedTailQuantiles(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 4
	gen := packet.Bernoulli{Load: 1.5}
	pe, err := RunPaired(context.Background(), cfg, gmPair(), ExactUnitCIOQ, gen, 5,
		PairedOptions{MaxRuns: 16})
	if err != nil {
		t.Fatalf("RunPaired: %v", err)
	}
	for p, m := range pe.Marginals {
		qs := m.TailQuantiles(0.9, 0.99, 1.0)
		if len(qs) != 3 {
			t.Fatalf("policy %d: got %d quantiles", p, len(qs))
		}
		if qs[0] > qs[1] || qs[1] > qs[2] {
			t.Errorf("policy %d: quantiles not monotone: %v", p, qs)
		}
		if qs[2] != m.Max {
			t.Errorf("policy %d: p100 = %v, want max %v", p, qs[2], m.Max)
		}
	}
}
