package ratio

import (
	"context"
	"fmt"

	"qswitch/internal/packet"
	"qswitch/internal/stats"
	"qswitch/internal/switchsim"
)

// PairedPolicy names one arm of a paired comparison.
type PairedPolicy struct {
	// Name labels the policy in reports and error messages.
	Name string
	// Alg is the policy's batched evaluator; RunPaired mints it once and
	// reuses its fleet storage across the whole run.
	Alg FleetAlgFactory
}

// PairedOptions tunes RunPaired.
type PairedOptions struct {
	// Batch is the fleet batch size within a chunk (<= 0 selects 32).
	Batch int
	// Chunk is the seed-chunk size between stopping decisions (<= 0
	// selects 16); as in RunSequential, stopping only at chunk boundaries
	// is what makes the stopped seed count deterministic.
	Chunk int
	// Target optionally stops the run early once EVERY paired-difference
	// CI half-width (vs the baseline policy) clears it; with a single
	// policy it applies to the marginal mean instead. Disabled runs the
	// full budget.
	Target stats.Target
	// MaxRuns is the hard seed budget.
	MaxRuns int
}

// DiffEstimate is the paired-difference estimate between two policies
// evaluated on identical sequences: mean of the per-seed ratio
// differences (other - base) with a Student-t CI. Because the two ratios
// share every arrival, their difference variance excludes all workload
// noise — the common-random-numbers variance reduction that lets paired
// comparisons reach a target CI width with far fewer switch-slots than
// independent sampling.
type DiffEstimate struct {
	// Name labels the comparison, e.g. "pg(beta=2)-pg".
	Name string
	// Runs is the number of eligible paired seeds.
	Runs int
	// Mean is the mean per-seed ratio difference.
	Mean float64
	// HalfWidth is the Student-t CI half-width on Mean at Confidence.
	HalfWidth float64
	// Confidence is the CI confidence level.
	Confidence float64
	// Min and Max are the extreme per-seed differences.
	Min, Max float64
}

// String renders a compact summary.
func (d DiffEstimate) String() string {
	return fmt.Sprintf("diff %s mean=%+.4f±%.4f@%g%% over %d paired seeds",
		d.Name, d.Mean, d.HalfWidth, 100*d.Confidence, d.Runs)
}

// PairedDiff computes the paired-difference estimate between two marginal
// estimates measured on the SAME seed stream (aligned Samples): sample i
// of both estimates must come from the same sequence, which holds for any
// two policies run over identical (judge, gen, baseSeed, runs) — the
// eligible set is decided by the judge alone. It errors when the sample
// counts differ (the streams cannot have been aligned).
//
// RunPaired uses exactly this fold for its Diffs, so a post-hoc
// PairedDiff over independently produced marginals (same seeds) is
// byte-identical to the paired engine's output.
func PairedDiff(base, other Estimate, confidence float64) (DiffEstimate, error) {
	if base.Runs != other.Runs || len(base.Samples) != len(other.Samples) {
		return DiffEstimate{}, fmt.Errorf("paired diff: sample counts differ (%d vs %d); seed streams not aligned",
			len(base.Samples), len(other.Samples))
	}
	d := DiffEstimate{Confidence: confidence, Runs: base.Runs}
	var acc stats.Estimator
	for i, b := range base.Samples {
		x := other.Samples[i] - b
		acc.Add(x)
	}
	d.Mean = acc.Mean()
	d.HalfWidth = acc.HalfWidth(confidence)
	d.Min = acc.Min()
	d.Max = acc.Max()
	return d, nil
}

// PairedEstimate is the result of a paired (common-random-numbers)
// comparison of k policies on identical seeded workloads.
type PairedEstimate struct {
	// Names are the policy names in input order; Names[0] is the
	// baseline every difference is taken against.
	Names []string
	// Marginals are the per-policy estimates, byte-identical to an
	// independent Run of each policy over the same seeds.
	Marginals []Estimate
	// Diffs[i] is the paired difference of policy i+1 minus the baseline.
	Diffs []DiffEstimate
	// Seeds is the number of seed indices issued (eligible + skipped).
	Seeds int
	// TargetMet reports whether the precision target stopped the run.
	TargetMet bool
	// SlotsSimulated is the switch-slot accounting of the policy side:
	// the arrival span of every (policy, sequence) simulation, summed.
	// Identical accounting over an independent design (each policy on its
	// own seed stream) is what BENCH_8 compares against.
	SlotsSimulated int64
	// JudgeCalls counts offline-optimum solves — one per seed, shared by
	// all k policies (an independent design pays k per seed).
	JudgeCalls int64
}

// seqSpan is the arrival span of a sequence: the number of slots up to
// and including the last arrival. It is the unit SlotsSimulated counts.
func seqSpan(seq packet.Sequence) int64 {
	if len(seq) == 0 {
		return 0
	}
	return int64(seq[len(seq)-1].Arrival) + 1
}

// WorkloadSlots sums the arrival spans of the workloads seeds [0, runs)
// draw from gen — the switch-slot accounting an independent design
// spends simulating ONE policy over that seed stream. It lets callers
// (the BENCH_8 harness) charge independent sampling in exactly the units
// PairedEstimate.SlotsSimulated uses.
func WorkloadSlots(cfg switchsim.Config, gen packet.Generator, baseSeed int64, runs int) int64 {
	var total int64
	for k := 0; k < runs; k++ {
		total += seqSpan(generateSeq(cfg, gen, baseSeed+int64(k)))
	}
	return total
}

// RunPaired compares k policies with common random numbers: every seed's
// sequence is generated once, judged once, and fed to all k policies (the
// columnar fleet engine makes the extra arms nearly free), and the
// per-seed ratio DIFFERENCES against the baseline policy get their own
// Student-t CIs. Marginal estimates are byte-identical to an independent
// Run of each policy over the same seeds; the paired differences are what
// shrink — Var(A-B) on shared sequences excludes all workload variance,
// so policy-vs-policy targets are reached with a fraction of the
// switch-slots.
//
// With opts.Target enabled, seeds are issued chunk by chunk until every
// paired-difference half-width clears the target (the marginal mean's for
// a single policy) or the budget runs out; stopping is decided only at
// chunk boundaries, so the run is deterministic given (baseSeed,
// opts.Chunk). Worst-seed tails on the marginals are available via
// Estimate.TailQuantiles.
func RunPaired(ctx context.Context, cfg switchsim.Config, pols []PairedPolicy, judge JudgeFactory, gen packet.Generator,
	baseSeed int64, opts PairedOptions) (PairedEstimate, error) {
	pe := PairedEstimate{}
	if len(pols) == 0 {
		return pe, fmt.Errorf("paired: no policies")
	}
	for _, p := range pols {
		pe.Names = append(pe.Names, p.Name)
	}
	if opts.MaxRuns <= 0 {
		pe.Marginals = make([]Estimate, len(pols))
		pe.Diffs = make([]DiffEstimate, max(0, len(pols)-1))
		return pe, nil
	}
	chunk := opts.Chunk
	if chunk <= 0 {
		chunk = 16
	}
	batch := opts.Batch
	if batch <= 0 {
		batch = 32
	}
	algs := make([]FleetAlg, len(pols))
	for i, p := range pols {
		algs[i] = p.Alg()
	}
	j := judge()
	conf := opts.Target.ConfidenceLevel()

	outs := make([][]SeedOutcome, len(pols))
	// diffAccs streams the stopping statistics; the final Diffs are
	// recomputed by PairedDiff over the merged marginals (same fold).
	diffAccs := make([]stats.Estimator, max(1, len(pols)-1))
	var marginalAcc stats.Estimator // single-policy stopping
	var scratch pairedScratch
	failed := false
	for k0 := 0; k0 < opts.MaxRuns && !failed; k0 += chunk {
		if err := ctx.Err(); err != nil {
			return pe, err
		}
		k1 := min(opts.MaxRuns, k0+chunk)
		for b0 := k0; b0 < k1 && !failed; b0 += batch {
			b1 := min(k1, b0+batch)
			failed = evalPairedBatch(cfg, algs, j, gen, baseSeed, b0, b1, &pe, outs, &scratch)
		}
		pe.Seeds = min(pe.Seeds, opts.MaxRuns) // evalPairedBatch counts issued seeds
		if failed {
			break
		}
		// Fold the chunk's eligible paired samples into the stopping
		// statistics, in seed order.
		n0 := len(outs[0]) - (k1 - k0)
		for i := n0; i < len(outs[0]); i++ {
			if outs[0][i].Skipped {
				continue
			}
			if len(pols) == 1 {
				marginalAcc.Add(outs[0][i].Ratio)
				continue
			}
			for p := 1; p < len(pols); p++ {
				diffAccs[p-1].Add(outs[p][i].Ratio - outs[0][i].Ratio)
			}
		}
		if opts.Target.Enabled() {
			met := true
			if len(pols) == 1 {
				met = opts.Target.Met(&marginalAcc)
			} else {
				for i := range diffAccs {
					if !opts.Target.Met(&diffAccs[i]) {
						met = false
						break
					}
				}
			}
			if met {
				pe.TargetMet = true
				break
			}
		}
	}

	// Merge marginals; the first error (lowest seed, then lowest policy
	// index) aborts with deterministic attribution.
	pe.Marginals = make([]Estimate, len(pols))
	var firstErr error
	firstSeedIdx, firstPol := -1, -1
	for p := range pols {
		est, err := MergeOutcomes(ctx, outs[p])
		if err != nil {
			idx := erroredIndex(outs[p])
			if firstErr == nil || idx < firstSeedIdx || (idx == firstSeedIdx && p < firstPol) {
				firstErr, firstSeedIdx, firstPol = err, idx, p
			}
			continue
		}
		pe.Marginals[p] = est
	}
	if firstErr != nil {
		return pe, fmt.Errorf("paired policy %q: %w", pols[firstPol].Name, firstErr)
	}
	for p := 1; p < len(pols); p++ {
		d, err := PairedDiff(pe.Marginals[0], pe.Marginals[p], conf)
		if err != nil {
			return pe, fmt.Errorf("paired policy %q: %w", pols[p].Name, err)
		}
		d.Name = pols[p].Name + "-" + pols[0].Name
		pe.Diffs = append(pe.Diffs, d)
	}
	return pe, nil
}

// erroredIndex returns the index of the first outcome carrying an error
// (or NotRun), len(outs) if none.
func erroredIndex(outs []SeedOutcome) int {
	for i, o := range outs {
		if o.Err != nil || o.NotRun {
			return i
		}
	}
	return len(outs)
}

// pairedScratch holds the per-batch buffers evalPairedBatch reuses.
type pairedScratch struct {
	seqs    []packet.Sequence
	optVals []int64
}

// evalPairedBatch evaluates seeds [k0, k1) for every policy on shared
// sequences: each sequence is generated once, judged once, then run
// through all k fleet algs. Per-policy outcomes are appended to outs with
// error semantics identical to EvalChunk (judge errors at their own seed,
// batched policy failures located by per-sequence re-runs, zero-benefit
// surfaced with Single's text), so merged marginals match an independent
// Run of each policy over the same seeds. Returns true when any outcome
// carries an error.
func evalPairedBatch(cfg switchsim.Config, algs []FleetAlg, j Judge, gen packet.Generator,
	baseSeed int64, k0, k1 int, pe *PairedEstimate, outs [][]SeedOutcome, sc *pairedScratch) bool {
	n := k1 - k0
	sc.seqs = sc.seqs[:0]
	sc.optVals = append(sc.optVals[:0], make([]int64, n)...)
	for k := k0; k < k1; k++ {
		sc.seqs = append(sc.seqs, generateSeq(cfg, gen, baseSeed+int64(k)))
	}
	pe.Seeds += n

	// Judge once per sequence; the verdicts are shared by every policy.
	type seedState struct {
		skipped bool
		err     error
	}
	states := make([]seedState, n)
	firstElig := -1
	for i := 0; i < n; i++ {
		optVal, err := j.Judge(cfg, sc.seqs[i])
		pe.JudgeCalls++
		switch {
		case err != nil:
			states[i].err = fmt.Errorf("offline optimum: %w", err)
		case optVal == 0:
			states[i].skipped = true
		default:
			if firstElig < 0 {
				firstElig = i
			}
			sc.optVals[i] = optVal
		}
	}

	anyErr := false
	for p, a := range algs {
		base := len(outs[p])
		for i := 0; i < n; i++ {
			o := SeedOutcome{Seed: baseSeed + int64(k0+i), Skipped: states[i].skipped}
			if states[i].err != nil {
				o.Err = states[i].err
			}
			outs[p] = append(outs[p], o)
		}
		benefits, err := a(cfg, sc.seqs)
		if err == nil && len(benefits) != len(sc.seqs) {
			err = fmt.Errorf("fleet alg returned %d benefits for %d sequences", len(benefits), len(sc.seqs))
		}
		if err != nil {
			// Locate the failing seed(s) by re-running each judged-eligible
			// sequence individually, exactly like EvalChunk.
			witnessed := false
			for i := 0; i < n; i++ {
				o := &outs[p][base+i]
				if o.Err != nil || o.Skipped {
					continue
				}
				pe.SlotsSimulated += seqSpan(sc.seqs[i])
				bs, rerr := a(cfg, sc.seqs[i:i+1])
				if rerr != nil {
					o.Err = fmt.Errorf("policy run: %w", rerr)
					witnessed = true
					continue
				}
				if len(bs) != 1 {
					o.Err = fmt.Errorf("policy run: fleet alg returned %d benefits for 1 sequence", len(bs))
					witnessed = true
					continue
				}
				fillOutcome(o, sc.optVals[i], bs[0])
			}
			if !witnessed && firstElig >= 0 {
				outs[p][base+firstElig] = SeedOutcome{Seed: outs[p][base+firstElig].Seed,
					Err: fmt.Errorf("policy run: %w", err)}
			}
			anyErr = true
			continue
		}
		for i := 0; i < n; i++ {
			pe.SlotsSimulated += seqSpan(sc.seqs[i])
			o := &outs[p][base+i]
			if o.Err != nil || o.Skipped {
				continue
			}
			fillOutcome(o, sc.optVals[i], benefits[i])
		}
		for i := 0; i < n; i++ {
			if outs[p][base+i].Err != nil {
				anyErr = true
			}
		}
	}
	return anyErr
}
