package ratio

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"qswitch/internal/packet"
	"qswitch/internal/switchsim"
)

// RunParallel is Run with the per-seed measurements fanned out over a
// worker pool. Each worker gets its own policy instance (via the Alg
// closure), its own judge (via the factory, so per-worker scratch stays
// warm across the worker's whole seed stream) and its own rand.Rand, so
// runs are fully independent; results are merged deterministically
// (sorted by seed), making RunParallel's output bit-identical to Run's
// for the same inputs.
//
// Cancellation is prompt and attribution stays deterministic: when a seed
// fails, sibling workers stop picking up seeds beyond the failed one
// (those can no longer affect the result — the merge reports the lowest
// failing seed) but still evaluate every queued seed below it, so the
// reported (seed, error) pair is exactly Run's. Cancelling ctx abandons
// all remaining seeds and returns ctx's error.
//
// workers <= 0 selects GOMAXPROCS. The speedup is near-linear because
// each measurement is an independent simulation plus an offline solve.
func RunParallel(ctx context.Context, cfg switchsim.Config, alg Alg, judge JudgeFactory, gen packet.Generator,
	baseSeed int64, runs, workers int) (Estimate, error) {
	outs, err := parallelOutcomes(ctx, cfg, alg, judge, gen, baseSeed, 0, runs, workers)
	if err != nil {
		return Estimate{}, err
	}
	return MergeOutcomes(ctx, outs)
}

// parallelOutcomes evaluates seed indices [k0, k1) over a worker pool and
// returns their outcomes in seed order — the worker-pool core shared by
// RunParallel and ParallelChunks. Per-seed outcomes are pure, so the
// result is independent of the worker count.
func parallelOutcomes(ctx context.Context, cfg switchsim.Config, alg Alg, judge JudgeFactory, gen packet.Generator,
	baseSeed int64, k0, k1, workers int) ([]SeedOutcome, error) {
	runs := k1 - k0
	if runs <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	if workers <= 1 {
		j := judge()
		outs := make([]SeedOutcome, 0, runs)
		for k := k0; k < k1; k++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			o := evalSeed(cfg, alg, j, gen, baseSeed+int64(k))
			outs = append(outs, o)
			if o.Err != nil {
				break // the merge reports it; later seeds can't change the outcome
			}
		}
		return outs, nil
	}

	results := make([]SeedOutcome, runs)
	// errIdx is the smallest seed index known to have failed; seeds above
	// it are moot (the merge reports the lowest failure) and are skipped so
	// siblings wind down promptly instead of running the stream dry.
	errIdx := int64(k1)
	var errMu sync.Mutex
	loadErrIdx := func() int64 {
		errMu.Lock()
		defer errMu.Unlock()
		return errIdx
	}
	var cancelled atomic.Bool
	seedCh := make(chan int, runs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j := judge()
			for k := range seedCh {
				seed := baseSeed + int64(k)
				if cancelled.Load() || ctx.Err() != nil {
					cancelled.Store(true)
					results[k-k0] = SeedOutcome{Seed: seed, NotRun: true}
					continue
				}
				if int64(k) > loadErrIdx() {
					results[k-k0] = SeedOutcome{Seed: seed, NotRun: true}
					continue
				}
				o := evalSeed(cfg, alg, j, gen, seed)
				results[k-k0] = o
				if o.Err != nil {
					errMu.Lock()
					if int64(k) < errIdx {
						errIdx = int64(k)
					}
					errMu.Unlock()
				}
			}
		}()
	}
	for k := k0; k < k1; k++ {
		seedCh <- k
	}
	close(seedCh)
	wg.Wait()
	return results, nil
}

// Sweep evaluates a family of parameterized policies over the same seeded
// workloads in parallel, one Estimate per parameter point. It is the
// engine behind parameter-sweep figures (e.g. ratio vs beta): all points
// see identical sequences, so curves are directly comparable.
//
// The caller's worker budget bounds the total per-seed concurrency: up to
// `workers` parameter points run at once, and each point's RunParallel
// spreads its seeds over the share of the budget the point concurrency
// leaves free, so a sweep of few points over many seeds parallelizes just
// as well as one of many points.
//
// The first failing point cancels the points still running (their
// in-flight seeds wind down promptly); the reported error is the
// alphabetically first failed point's, so attribution is deterministic
// regardless of which point's failure was observed first.
func Sweep(ctx context.Context, cfg switchsim.Config, algs map[string]Alg, judge JudgeFactory, gen packet.Generator,
	baseSeed int64, runs, workers int) (map[string]Estimate, error) {
	names := make([]string, 0, len(algs))
	for name := range algs {
		names = append(names, name)
	}
	sort.Strings(names)
	workers = max(1, workers)
	points := min(workers, max(1, len(names)))
	perPoint := max(1, workers/points)
	out := make(map[string]Estimate, len(algs))
	errs := make(map[string]error, len(algs))
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, points)
	for _, name := range names {
		name := name
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			est, err := RunParallel(sctx, cfg, algs[name], judge, gen, baseSeed, runs, perPoint)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[name] = err
				cancel()
				return
			}
			out[name] = est
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		// Deterministic attribution: prefer the alphabetically first point
		// that failed on its own (not via the cancellation its sibling's
		// failure triggered); fall back to the first failure of any kind.
		var firstAny, firstReal string
		for _, name := range names {
			err, ok := errs[name]
			if !ok {
				continue
			}
			if firstAny == "" {
				firstAny = name
			}
			if firstReal == "" && !errors.Is(err, context.Canceled) {
				firstReal = name
			}
		}
		name := firstReal
		if name == "" {
			name = firstAny
		}
		return nil, fmt.Errorf("sweep %q: %w", name, errs[name])
	}
	return out, nil
}
