package ratio

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"qswitch/internal/packet"
	"qswitch/internal/stats"
	"qswitch/internal/switchsim"
)

// RunParallel is Run with the per-seed measurements fanned out over a
// worker pool. Each worker gets its own policy instance (via the Alg
// closure), its own judge (via the factory, so per-worker scratch stays
// warm across the worker's whole seed stream) and its own rand.Rand, so
// runs are fully independent; results are merged deterministically
// (sorted by seed), making RunParallel's output bit-identical to Run's
// for the same inputs.
//
// workers <= 0 selects GOMAXPROCS. The speedup is near-linear because
// each measurement is an independent simulation plus an offline solve.
func RunParallel(cfg switchsim.Config, alg Alg, judge JudgeFactory, gen packet.Generator,
	baseSeed int64, runs, workers int) (Estimate, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	if workers <= 1 {
		return Run(cfg, alg, judge, gen, baseSeed, runs)
	}

	type outcome struct {
		seed    int64
		ratio   float64
		err     error
		skipped bool
	}
	results := make([]outcome, runs)
	seedCh := make(chan int, runs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j := judge()
			for k := range seedCh {
				seed := baseSeed + int64(k)
				rng := rand.New(rand.NewSource(seed))
				seq := gen.Generate(rng, cfg.Inputs, cfg.Outputs, pickSlots(cfg))
				r, ok, err := Single(cfg, alg, j, seq)
				results[k] = outcome{seed: seed, ratio: r, err: err, skipped: !ok && err == nil}
			}
		}()
	}
	for k := 0; k < runs; k++ {
		seedCh <- k
	}
	close(seedCh)
	wg.Wait()

	var est Estimate
	var acc stats.Acc
	for _, o := range results {
		if o.err != nil {
			return est, fmt.Errorf("ratio: seed %d: %w", o.seed, o.err)
		}
		if o.skipped {
			est.Skipped++
			continue
		}
		acc.Add(o.ratio)
		est.Samples = append(est.Samples, o.ratio)
		if o.ratio > est.Max {
			est.Max = o.ratio
			est.WorstSeed = o.seed
		}
		est.Runs++
	}
	est.Mean = acc.Mean()
	est.CI95 = acc.CI95()
	return est, nil
}

// Sweep evaluates a family of parameterized policies over the same seeded
// workloads in parallel, one Estimate per parameter point. It is the
// engine behind parameter-sweep figures (e.g. ratio vs beta): all points
// see identical sequences, so curves are directly comparable.
//
// The caller's worker budget bounds the total per-seed concurrency: up to
// `workers` parameter points run at once, and each point's RunParallel
// spreads its seeds over the share of the budget the point concurrency
// leaves free, so a sweep of few points over many seeds parallelizes just
// as well as one of many points.
func Sweep(cfg switchsim.Config, algs map[string]Alg, judge JudgeFactory, gen packet.Generator,
	baseSeed int64, runs, workers int) (map[string]Estimate, error) {
	names := make([]string, 0, len(algs))
	for name := range algs {
		names = append(names, name)
	}
	sort.Strings(names)
	workers = max(1, workers)
	points := min(workers, max(1, len(names)))
	perPoint := max(1, workers/points)
	out := make(map[string]Estimate, len(algs))
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	sem := make(chan struct{}, points)
	for _, name := range names {
		name := name
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			est, err := RunParallel(cfg, algs[name], judge, gen, baseSeed, runs, perPoint)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("sweep %q: %w", name, err)
				return
			}
			out[name] = est
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
