package ratio

import (
	"context"
	"fmt"
	"time"

	"qswitch/internal/packet"
	"qswitch/internal/stats"
	"qswitch/internal/switchsim"
)

// ChunkEvaluator evaluates the seed indices [k0, k1) of an estimation and
// returns one SeedOutcome per seed, in seed order. It is the pluggable
// backend of RunSequential: every existing engine — scalar, parallel
// workers, columnar fleet, out-of-process shards — adapts to it, and
// because outcomes are pure per seed, any evaluator yields identical
// outcomes for the same indices. Evaluators may hold reusable scratch
// (judges, fleet storage) across calls and are not safe for concurrent
// use.
type ChunkEvaluator func(ctx context.Context, k0, k1 int) ([]SeedOutcome, error)

// ScalarChunks adapts the sequential scalar engine (one policy run and
// one judge call per seed) to the ChunkEvaluator interface. One judge is
// minted up front and reused across all chunks, exactly like Run.
func ScalarChunks(cfg switchsim.Config, alg Alg, judge JudgeFactory, gen packet.Generator, baseSeed int64) ChunkEvaluator {
	j := judge()
	return func(ctx context.Context, k0, k1 int) ([]SeedOutcome, error) {
		out := make([]SeedOutcome, 0, k1-k0)
		for k := k0; k < k1; k++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			o := evalSeed(cfg, alg, j, gen, baseSeed+int64(k))
			out = append(out, o)
			if o.Err != nil {
				break // the merge reports it; later seeds are moot
			}
		}
		return out, nil
	}
}

// ParallelChunks adapts the worker-pool engine: each chunk's seeds fan
// out over `workers` goroutines (<= 0 selects GOMAXPROCS), each holding
// its own judge for the chunk. Outcomes are identical to ScalarChunks.
func ParallelChunks(cfg switchsim.Config, alg Alg, judge JudgeFactory, gen packet.Generator, baseSeed int64, workers int) ChunkEvaluator {
	return func(ctx context.Context, k0, k1 int) ([]SeedOutcome, error) {
		return parallelOutcomes(ctx, cfg, alg, judge, gen, baseSeed, k0, k1, workers)
	}
}

// FleetChunks adapts the columnar fleet engine: one FleetAlg and one
// judge are minted up front and reused across all chunks (fleet storage
// and judge scratch stay warm for the whole sequential run), and each
// chunk is evaluated in sub-batches of `batch` sequences (<= 0 selects
// 64) via EvalChunk, which overlaps judging with fleet stepping.
func FleetChunks(cfg switchsim.Config, alg FleetAlgFactory, judge JudgeFactory, gen packet.Generator, baseSeed int64, batch int) ChunkEvaluator {
	if batch <= 0 {
		batch = 64
	}
	a := alg()
	j := judge()
	var scratch []SeedOutcome
	return func(ctx context.Context, k0, k1 int) ([]SeedOutcome, error) {
		out := make([]SeedOutcome, 0, k1-k0)
		for b0 := k0; b0 < k1; b0 += batch {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			b1 := min(k1, b0+batch)
			scratch = EvalChunk(cfg, a, j, gen, baseSeed, b0, b1, scratch)
			out = append(out, scratch...)
		}
		return out, nil
	}
}

// ShardedChunks adapts a chunk service (typically a shard coordinator
// fanning work over qswitchd worker processes): each requested range is
// forwarded as one ChunkRequest with K0/K1 overwritten. req.BaseSeed is
// the evaluator's base seed.
func ShardedChunks(svc ChunkService, req ChunkRequest) ChunkEvaluator {
	return func(ctx context.Context, k0, k1 int) ([]SeedOutcome, error) {
		creq := req
		creq.K0, creq.K1 = k0, k1
		out, err := svc.RatioChunk(ctx, creq)
		if err != nil {
			return nil, err
		}
		if len(out) != k1-k0 {
			return nil, fmt.Errorf("chunk service returned %d outcomes for %d seeds", len(out), k1-k0)
		}
		return out, nil
	}
}

// SequentialOptions tunes RunSequential.
type SequentialOptions struct {
	// Target is the precision target; sampling stops at the first chunk
	// boundary where the Student-t CI half-width on the mean ratio clears
	// it. A disabled target runs the full budget, making RunSequential
	// byte-identical to the underlying backend over MaxRuns seeds.
	Target stats.Target
	// Chunk is the seed-chunk size between stopping decisions (<= 0
	// selects 16). The stopped seed count is always a multiple of Chunk
	// (capped by MaxRuns), which is what makes the run deterministic
	// given (baseSeed, Chunk) regardless of evaluator backend.
	Chunk int
	// MaxRuns is the hard seed budget; the run never issues more seeds,
	// target met or not.
	MaxRuns int
}

// SeqReport describes how a sequential run ended.
type SeqReport struct {
	// Seeds is the number of seed indices issued (eligible + skipped).
	Seeds int
	// TargetMet reports whether the precision target was reached within
	// the budget (always false for a disabled target).
	TargetMet bool
	// HalfWidth is the final Student-t CI half-width on the mean ratio at
	// the target's confidence level.
	HalfWidth float64
	// Confidence is the confidence level HalfWidth was computed at.
	Confidence float64
}

// RunSequential estimates the mean ratio with sequential stopping: it
// keeps issuing seed chunks [0,c), [c,2c), ... through the evaluator
// until the Student-t CI half-width on the mean ratio clears the target
// or the seed budget is exhausted, then merges all outcomes in seed order
// exactly like every fixed-N backend. The run is deterministic given
// (evaluator seeds, chunk size): stopping is decided only at chunk
// boundaries from the seed-ordered prefix, so any backend — scalar,
// parallel, fleet or sharded — stops at the same seed count and returns a
// byte-identical Estimate. With the target disabled it is byte-identical
// to the underlying backend over the full budget at any chunk size.
func RunSequential(ctx context.Context, eval ChunkEvaluator, opts SequentialOptions) (Estimate, SeqReport, error) {
	rep := SeqReport{Confidence: opts.Target.ConfidenceLevel()}
	if opts.MaxRuns <= 0 {
		est, err := MergeOutcomes(ctx, nil)
		return est, rep, err
	}
	chunk := opts.Chunk
	if chunk <= 0 {
		chunk = 16
	}
	probes := seqProbes.Load()
	probes.StartRun(int64(opts.MaxRuns), opts.Target.AbsWidth)
	var acc stats.Estimator
	outs := make([]SeedOutcome, 0, min(opts.MaxRuns, 4*chunk))
	for k0 := 0; k0 < opts.MaxRuns; k0 += chunk {
		if err := ctx.Err(); err != nil {
			return Estimate{}, rep, err
		}
		k1 := min(opts.MaxRuns, k0+chunk)
		var t0 time.Time
		if probes != nil {
			t0 = time.Now()
		}
		res, err := eval(ctx, k0, k1)
		if err != nil {
			return Estimate{}, rep, err
		}
		failed := false
		for _, o := range res {
			outs = append(outs, o)
			rep.Seeds++
			if o.Err != nil || o.NotRun {
				failed = true
				break
			}
			if !o.Skipped {
				acc.Add(o.Ratio)
			}
		}
		if probes != nil {
			// HalfWidth is pure (it never feeds back into the run), so
			// computing it here only when probes are installed keeps the
			// probe-off path identical.
			probes.RecordChunk(time.Since(t0), int64(len(res)), int64(rep.Seeds), acc.HalfWidth(rep.Confidence))
		}
		if failed {
			break // the merge attributes the error to its exact seed
		}
		if opts.Target.Met(&acc) {
			rep.TargetMet = true
			break
		}
	}
	rep.HalfWidth = acc.HalfWidth(rep.Confidence)
	est, err := MergeOutcomes(ctx, outs)
	return est, rep, err
}
