package ratio

import (
	"context"
	"math"
	"testing"

	"qswitch/internal/core"
	"qswitch/internal/packet"
	"qswitch/internal/switchsim"
)

func microCfg() switchsim.Config {
	return switchsim.Config{
		Inputs: 2, Outputs: 2,
		InputBuf: 2, OutputBuf: 2, CrossBuf: 2,
		Speedup: 1, Validate: true, Slots: 0,
	}
}

// TestTheorem1GMWithinBound fuzzes unit-value micro instances and checks
// GM's measured competitive ratio against the exact offline optimum never
// exceeds 3 (Theorem 1).
func TestTheorem1GMWithinBound(t *testing.T) {
	cfg := microCfg()
	gens := []packet.Generator{
		packet.Bernoulli{Load: 1.0},
		packet.Bernoulli{Load: 2.0},
		packet.Hotspot{Load: 1.5, HotFrac: 0.8},
		packet.Bursty{OnLoad: 1.0, POnOff: 0.4, POffOn: 0.4},
	}
	alg := CIOQAlg(func() switchsim.CIOQPolicy { return &core.GM{} })
	for gi, gen := range gens {
		c := cfg
		c.Slots = 6 // keep the exact DP fast
		est, err := Run(context.Background(), c, alg, ExactUnitCIOQ, gen, int64(1000*gi), 25)
		if err != nil {
			t.Fatalf("gen %d: %v", gi, err)
		}
		if est.Max > 3.0+1e-9 {
			t.Errorf("gen %s: GM ratio %.4f exceeds Theorem 1 bound 3", gen.Name(), est.Max)
		}
		if est.Runs > 0 && est.Max < 1.0-1e-9 {
			t.Errorf("gen %s: ratio %.4f below 1 — OPT not optimal?", gen.Name(), est.Max)
		}
	}
}

// TestTheorem1SpeedupInvariance repeats the GM check at higher speedups
// ("for any speedup").
func TestTheorem1SpeedupInvariance(t *testing.T) {
	alg := CIOQAlg(func() switchsim.CIOQPolicy { return &core.GM{} })
	for _, speedup := range []int{1, 2, 3} {
		cfg := microCfg()
		cfg.Speedup = speedup
		cfg.Slots = 5
		est, err := Run(context.Background(), cfg, alg, ExactUnitCIOQ, packet.Bernoulli{Load: 1.8}, 42, 20)
		if err != nil {
			t.Fatalf("speedup %d: %v", speedup, err)
		}
		if est.Max > 3.0+1e-9 {
			t.Errorf("speedup %d: GM ratio %.4f exceeds 3", speedup, est.Max)
		}
	}
}

// TestTheorem2PGWithinBound fuzzes weighted micro instances against the
// exact weighted optimum: PG at β=1+√2 must stay within 3+2√2 (Theorem 2).
func TestTheorem2PGWithinBound(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 4
	bound := 3 + 2*math.Sqrt2
	alg := CIOQAlg(func() switchsim.CIOQPolicy { return &core.PG{} })
	gens := []packet.Generator{
		packet.Bernoulli{Load: 0.8, Values: packet.UniformValues{Hi: 20}},
		packet.Bernoulli{Load: 0.8, Values: packet.TwoValued{Alpha: 50, PHigh: 0.3}},
		packet.Hotspot{Load: 0.9, HotFrac: 0.9, Values: packet.GeometricValues{P: 0.3, Hi: 64}},
	}
	for gi, gen := range gens {
		est, err := Run(context.Background(), cfg, alg, ExactWeightedCIOQ, gen, int64(2000*gi), 15)
		if err != nil {
			t.Fatalf("gen %d: %v", gi, err)
		}
		if est.Max > bound+1e-9 {
			t.Errorf("gen %s: PG ratio %.4f exceeds Theorem 2 bound %.4f", gen.Name(), est.Max, bound)
		}
	}
}

// TestTheorem3CGUWithinBound checks CGU against the exact unit crossbar
// optimum: ratio at most 3 (Theorem 3, improving the known 4).
func TestTheorem3CGUWithinBound(t *testing.T) {
	cfg := microCfg()
	cfg.CrossBuf = 1
	cfg.Slots = 5
	alg := CrossbarAlg(func() switchsim.CrossbarPolicy { return &core.CGU{} })
	gens := []packet.Generator{
		packet.Bernoulli{Load: 1.5},
		packet.Hotspot{Load: 1.5, HotFrac: 0.8},
	}
	for gi, gen := range gens {
		est, err := Run(context.Background(), cfg, alg, ExactUnitCrossbar, gen, int64(3000*gi), 20)
		if err != nil {
			t.Fatalf("gen %d: %v", gi, err)
		}
		if est.Max > 3.0+1e-9 {
			t.Errorf("gen %s: CGU ratio %.4f exceeds Theorem 3 bound 3", gen.Name(), est.Max)
		}
	}
}

// TestTheorem4CPGWithinBound checks CPG at (β*, α*) against the exact
// weighted crossbar optimum: ratio at most ≈14.83 (Theorem 4).
func TestTheorem4CPGWithinBound(t *testing.T) {
	cfg := microCfg()
	cfg.CrossBuf = 1
	cfg.Slots = 3
	bound := core.CPGRatioClosedForm()
	alg := CrossbarAlg(func() switchsim.CrossbarPolicy { return &core.CPG{} })
	gens := []packet.Generator{
		packet.Bernoulli{Load: 0.8, Values: packet.UniformValues{Hi: 16}},
		packet.Bernoulli{Load: 0.7, Values: packet.TwoValued{Alpha: 40, PHigh: 0.3}},
	}
	for gi, gen := range gens {
		est, err := Run(context.Background(), cfg, alg, ExactWeightedCrossbar, gen, int64(4000*gi), 10)
		if err != nil {
			t.Fatalf("gen %d: %v", gi, err)
		}
		if est.Max > bound+1e-9 {
			t.Errorf("gen %s: CPG ratio %.4f exceeds Theorem 4 bound %.4f", gen.Name(), est.Max, bound)
		}
	}
}

// TestUpperBoundRatiosAreLooserButFinite sanity-checks the flow relaxation
// pipeline on larger instances where exact OPT is unavailable.
func TestUpperBoundRatiosAreLooserButFinite(t *testing.T) {
	cfg := switchsim.Config{Inputs: 4, Outputs: 4, InputBuf: 2, OutputBuf: 2,
		CrossBuf: 2, Speedup: 1, Validate: true, Slots: 20}
	alg := CIOQAlg(func() switchsim.CIOQPolicy { return &core.GM{} })
	est, err := Run(context.Background(), cfg, alg, UpperBoundCIOQ, packet.Bernoulli{Load: 1.2}, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	if est.Runs == 0 {
		t.Fatal("no successful runs")
	}
	if est.Max < 1.0-1e-9 {
		t.Errorf("UB ratio %.4f below 1: the bound is not a bound", est.Max)
	}
	// The relaxation is loose but must not explode on benign traffic.
	if est.Max > 20 {
		t.Errorf("UB ratio %.4f implausibly loose", est.Max)
	}
}

func TestSingleReportsVacuousInstances(t *testing.T) {
	cfg := microCfg()
	alg := CIOQAlg(func() switchsim.CIOQPolicy { return &core.GM{} })
	_, ok, err := Single(cfg, alg, ExactUnitCIOQ(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("empty sequence should be vacuous")
	}
}

func TestEstimateString(t *testing.T) {
	e := Estimate{Max: 2.5, Mean: 1.7, Runs: 10}
	if e.String() == "" {
		t.Error("empty string")
	}
}
