package ratio

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"qswitch/internal/core"
	"qswitch/internal/packet"
	"qswitch/internal/switchsim"
)

// fakeChunkService runs chunks in process with a fixed alg/judge (it
// ignores the spec strings), optionally failing selected chunks at the
// infrastructure level. It lets the sharded merge and attribution logic be
// tested without worker subprocesses.
type fakeChunkService struct {
	alg    FleetAlgFactory
	judge  JudgeFactory
	failK0 map[int]error // chunk K0 -> injected infrastructure error
}

func (s *fakeChunkService) RatioChunk(ctx context.Context, req ChunkRequest) ([]SeedOutcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err, ok := s.failK0[req.K0]; ok {
		return nil, err
	}
	return EvalChunk(req.Cfg, s.alg(), s.judge(), req.Gen, req.BaseSeed, req.K0, req.K1, nil), nil
}

func gmFleetSvc(fail map[int]error) *fakeChunkService {
	return &fakeChunkService{
		alg:    CIOQFleetAlg(func() switchsim.CIOQPolicy { return &core.GM{} }),
		judge:  ExactUnitCIOQ,
		failK0: fail,
	}
}

// TestPreCancelledContext: every backend must refuse to work under an
// already-cancelled context and return the context's error.
func TestPreCancelledContext(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 4
	alg := CIOQAlg(func() switchsim.CIOQPolicy { return &core.GM{} })
	fleet := CIOQFleetAlg(func() switchsim.CIOQPolicy { return &core.GM{} })
	gen := packet.Bernoulli{Load: 1.0}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	backends := map[string]func() error{
		"Run": func() error {
			_, err := Run(ctx, cfg, alg, ExactUnitCIOQ, gen, 1, 8)
			return err
		},
		"RunParallel": func() error {
			_, err := RunParallel(ctx, cfg, alg, ExactUnitCIOQ, gen, 1, 8, 4)
			return err
		},
		"RunFleet": func() error {
			_, err := RunFleet(ctx, cfg, fleet, ExactUnitCIOQ, gen, 1, 8, 2, 4)
			return err
		},
		"RunSharded": func() error {
			req := ChunkRequest{Cfg: cfg, Gen: gen, BaseSeed: 1}
			_, err := RunSharded(ctx, gmFleetSvc(nil), req, 8, 4)
			return err
		},
		"Sweep": func() error {
			_, err := Sweep(ctx, cfg, map[string]Alg{"gm": alg}, ExactUnitCIOQ, gen, 1, 8, 2)
			return err
		},
	}
	for name, run := range backends {
		if err := run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s under cancelled ctx: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestSeedErrorAttributionDeterministic: an alg failing on one seed must
// surface the identical "ratio: seed N" error from every in-process
// backend, regardless of worker count or batch size.
func TestSeedErrorAttributionDeterministic(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 4
	gen := packet.Bernoulli{Load: 1.0}
	const baseSeed, runs, failIdx = 50, 10, 7
	failSeed := int64(baseSeed + failIdx)

	boom := errors.New("boom")
	alg := func(c switchsim.Config, seq packet.Sequence) (int64, error) {
		if fingerprintSeedMatch(c, gen, failSeed, seq) {
			return 0, boom
		}
		return CIOQAlg(func() switchsim.CIOQPolicy { return &core.GM{} })(c, seq)
	}
	fleet := func() FleetAlg {
		inner := CIOQFleetAlg(func() switchsim.CIOQPolicy { return &core.GM{} })()
		return func(c switchsim.Config, seqs []packet.Sequence) ([]int64, error) {
			for _, s := range seqs {
				if fingerprintSeedMatch(c, gen, failSeed, s) {
					return nil, boom
				}
			}
			return inner(c, seqs)
		}
	}

	want := fmt.Sprintf("ratio: seed %d: policy run: boom", failSeed)
	ctx := context.Background()
	check := func(name string, err error) {
		t.Helper()
		if err == nil || err.Error() != want {
			t.Errorf("%s error = %v, want %q", name, err, want)
		}
	}
	_, err := Run(ctx, cfg, alg, ExactUnitCIOQ, gen, baseSeed, runs)
	check("Run", err)
	for _, workers := range []int{2, 5} {
		_, err = RunParallel(ctx, cfg, alg, ExactUnitCIOQ, gen, baseSeed, runs, workers)
		check(fmt.Sprintf("RunParallel(workers=%d)", workers), err)
	}
	for _, batch := range []int{3, 4, 16} {
		_, err = RunFleet(ctx, cfg, fleet, ExactUnitCIOQ, gen, baseSeed, runs, 2, batch)
		check(fmt.Sprintf("RunFleet(batch=%d)", batch), err)
	}
	svc := &fakeChunkService{alg: fleet, judge: ExactUnitCIOQ}
	for _, chunk := range []int{3, 5} {
		_, err = RunSharded(ctx, svc, ChunkRequest{Cfg: cfg, Gen: gen, BaseSeed: baseSeed}, runs, chunk)
		check(fmt.Sprintf("RunSharded(chunk=%d)", chunk), err)
	}
}

// fingerprintSeedMatch reports whether seq is exactly the workload seed
// draws for cfg — the hook the failing test algs key on.
func fingerprintSeedMatch(cfg switchsim.Config, gen packet.Generator, seed int64, seq packet.Sequence) bool {
	want := generateSeq(cfg, gen, seed)
	if len(want) != len(seq) {
		return false
	}
	for i := range want {
		if want[i] != seq[i] {
			return false
		}
	}
	return true
}

// TestRunShardedInfrastructureAttribution: when chunks fail at the
// infrastructure level, the reported error is a genuine injected failure
// attributed to the chunk that raised it — never a bare cancellation, and
// never an error paired with the wrong chunk index.
func TestRunShardedInfrastructureAttribution(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 4
	gen := packet.Bernoulli{Load: 1.0}
	svc := gmFleetSvc(map[int]error{
		4:  errors.New("worker pool on fire"),
		12: errors.New("also on fire"),
	})
	_, err := RunSharded(context.Background(), svc,
		ChunkRequest{Cfg: cfg, Gen: gen, BaseSeed: 1}, 16, 4)
	if err == nil {
		t.Fatal("no error from failing chunk service")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want an injected infrastructure error, not cancellation", err)
	}
	// Whichever injected failure won the race, it must carry its own chunk's
	// index: K0=4 is chunk 1, K0=12 is chunk 3.
	got := err.Error()
	ok := (strings.Contains(got, "shard chunk 1:") && strings.Contains(got, "worker pool on fire")) ||
		(strings.Contains(got, "shard chunk 3:") && strings.Contains(got, "also on fire"))
	if !ok {
		t.Errorf("err = %q, want an injected error attributed to its own chunk", err)
	}
}

// TestRunShardedSingleFailureAttribution: with exactly one failing chunk the
// attribution is fully deterministic — that chunk's index and error.
func TestRunShardedSingleFailureAttribution(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 4
	gen := packet.Bernoulli{Load: 1.0}
	svc := gmFleetSvc(map[int]error{8: errors.New("worker pool on fire")})
	_, err := RunSharded(context.Background(), svc,
		ChunkRequest{Cfg: cfg, Gen: gen, BaseSeed: 1}, 16, 4)
	if err == nil {
		t.Fatal("no error from failing chunk service")
	}
	if !strings.Contains(err.Error(), "shard chunk 2:") || !strings.Contains(err.Error(), "worker pool on fire") {
		t.Errorf("err = %q, want chunk 2 attributed", err)
	}
}

// TestRunShardedMatchesRunInProcess pins the sharded merge against the
// sequential baseline using an in-process chunk service, across chunk
// sizes that do and do not divide the run count.
func TestRunShardedMatchesRunInProcess(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 5
	gen := packet.Bernoulli{Load: 1.2}
	alg := CIOQAlg(func() switchsim.CIOQPolicy { return &core.GM{} })
	want, err := Run(context.Background(), cfg, alg, ExactUnitCIOQ, gen, 9, 23)
	if err != nil {
		t.Fatal(err)
	}
	svc := gmFleetSvc(nil)
	for _, chunk := range []int{1, 4, 7, 23, 100, 0} {
		got, err := RunSharded(context.Background(), svc,
			ChunkRequest{Cfg: cfg, Gen: gen, BaseSeed: 9}, 23, chunk)
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if got.Max != want.Max || got.Mean != want.Mean || got.CI95 != want.CI95 ||
			got.Runs != want.Runs || got.Skipped != want.Skipped || got.WorstSeed != want.WorstSeed {
			t.Errorf("chunk=%d: sharded %+v != sequential %+v", chunk, got, want)
		}
	}
}
