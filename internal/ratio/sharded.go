package ratio

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"qswitch/internal/packet"
	"qswitch/internal/switchsim"
)

// ChunkRequest names one seed-range chunk of a ratio estimation in a form
// that can cross a process boundary: the policy and judge are registry
// spec strings (resolved by the shard worker's registry — see
// internal/shard) rather than closures. K0/K1 bound the seed indices
// [K0, K1) relative to BaseSeed.
type ChunkRequest struct {
	// Cfg is the switch geometry and horizon.
	Cfg switchsim.Config
	// Crossbar selects the buffered-crossbar model instead of CIOQ; the
	// policy and judge specs must agree with it.
	Crossbar bool
	// Policy is the policy spec string, e.g. "gm" or "pg(beta=2.41)".
	Policy string
	// Judge is the judge spec string: "exactunit", "exactweighted" or
	// "upperbound" (the geometry comes from Crossbar).
	Judge string
	// Gen draws each seed's workload. The shard service serializes it; an
	// unsupported generator fails the chunk with a clear error.
	Gen packet.Generator
	// BaseSeed is the estimation's base seed; seed k is BaseSeed + k.
	BaseSeed int64
	// K0 and K1 delimit the chunk's seed indices [K0, K1).
	K0, K1 int
}

// ChunkService executes ratio chunks, typically out of process with
// retries, checkpointing and fault tolerance (shard.Coordinator is the
// canonical implementation). RatioChunk returns one outcome per seed in
// [req.K0, req.K1), in seed order; the error return is reserved for
// infrastructure failures (no worker could run the chunk), while
// deterministic per-seed evaluation failures travel inside the outcomes
// so they are attributed to their exact seed and never retried.
type ChunkService interface {
	RatioChunk(ctx context.Context, req ChunkRequest) ([]SeedOutcome, error)
}

// RunSharded is Run with the seed stream sharded into chunks of `chunk`
// seeds (<= 0 selects 16) executed by svc — out-of-process workers when
// svc is a shard coordinator. Chunk outcomes are merged deterministically
// in seed order, so the Estimate is byte-identical to Run, RunParallel
// and RunFleet for the same inputs, regardless of chunk size, worker
// count, worker failures or checkpoint resumption. req.K0/K1 are ignored
// and overwritten per chunk.
//
// The first chunk that fails at the infrastructure level cancels the
// remaining chunks; the reported infrastructure error is the lowest such
// chunk's, so attribution is deterministic.
func RunSharded(ctx context.Context, svc ChunkService, req ChunkRequest, runs, chunk int) (Estimate, error) {
	if runs <= 0 {
		return Estimate{}, nil
	}
	if chunk <= 0 {
		chunk = 16
	}
	if chunk > runs {
		chunk = runs
	}
	nChunks := (runs + chunk - 1) / chunk
	outs := make([][]SeedOutcome, nChunks)
	errs := make([]error, nChunks)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for c := 0; c < nChunks; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			creq := req
			creq.K0 = c * chunk
			creq.K1 = min(runs, creq.K0+chunk)
			res, err := svc.RatioChunk(cctx, creq)
			if err != nil {
				errs[c] = err
				cancel()
				return
			}
			if len(res) != creq.K1-creq.K0 {
				errs[c] = fmt.Errorf("chunk service returned %d outcomes for %d seeds", len(res), creq.K1-creq.K0)
				cancel()
				return
			}
			outs[c] = res
		}()
	}
	wg.Wait()
	// Deterministic attribution of infrastructure failures: the lowest
	// chunk that failed on its own, before any cancellation-induced errors.
	var firstAny error
	for c, err := range errs {
		if err == nil {
			continue
		}
		if firstAny == nil {
			firstAny = fmt.Errorf("shard chunk %d: %w", c, err)
		}
		if !errors.Is(err, context.Canceled) {
			return Estimate{}, fmt.Errorf("shard chunk %d: %w", c, err)
		}
	}
	if firstAny != nil {
		if err := ctx.Err(); err != nil {
			return Estimate{}, err
		}
		return Estimate{}, firstAny
	}
	flat := make([]SeedOutcome, 0, runs)
	for _, o := range outs {
		flat = append(flat, o...)
	}
	return MergeOutcomes(ctx, flat)
}
