package ratio

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"qswitch/internal/core"
	"qswitch/internal/obs"
	"qswitch/internal/packet"
	"qswitch/internal/stats"
	"qswitch/internal/switchsim"
)

// seqBackends returns one ChunkEvaluator per backend engine, all
// evaluating the same (cfg, gm, exact-unit judge, gen, baseSeed) stream.
func seqBackends(cfg switchsim.Config, gen packet.Generator, baseSeed int64) map[string]func() ChunkEvaluator {
	alg := CIOQAlg(func() switchsim.CIOQPolicy { return &core.GM{} })
	fleet := CIOQFleetAlg(func() switchsim.CIOQPolicy { return &core.GM{} })
	return map[string]func() ChunkEvaluator{
		"scalar":   func() ChunkEvaluator { return ScalarChunks(cfg, alg, ExactUnitCIOQ, gen, baseSeed) },
		"parallel": func() ChunkEvaluator { return ParallelChunks(cfg, alg, ExactUnitCIOQ, gen, baseSeed, 3) },
		"fleet":    func() ChunkEvaluator { return FleetChunks(cfg, fleet, ExactUnitCIOQ, gen, baseSeed, 5) },
		"sharded": func() ChunkEvaluator {
			return ShardedChunks(gmFleetSvc(nil), ChunkRequest{Cfg: cfg, Gen: gen, BaseSeed: baseSeed})
		},
	}
}

// TestSequentialDisabledTargetIdentity: with the target disabled,
// RunSequential over any backend at any chunk size is byte-identical to
// Run over the full budget.
func TestSequentialDisabledTargetIdentity(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 4
	gen := packet.Bernoulli{Load: 1.0}
	const baseSeed, runs = 30, 12
	ctx := context.Background()

	want, err := Run(ctx, cfg, CIOQAlg(func() switchsim.CIOQPolicy { return &core.GM{} }),
		ExactUnitCIOQ, gen, baseSeed, runs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for name, mk := range seqBackends(cfg, gen, baseSeed) {
		for _, chunk := range []int{1, 3, 5, 16, 100} {
			est, rep, err := RunSequential(ctx, mk(), SequentialOptions{Chunk: chunk, MaxRuns: runs})
			if err != nil {
				t.Fatalf("%s chunk=%d: %v", name, chunk, err)
			}
			if !reflect.DeepEqual(est, want) {
				t.Errorf("%s chunk=%d: estimate differs from Run:\n got %+v\nwant %+v", name, chunk, est, want)
			}
			if rep.Seeds != runs || rep.TargetMet {
				t.Errorf("%s chunk=%d: report = %+v, want %d seeds and target not met", name, chunk, rep, runs)
			}
		}
	}
}

// TestSequentialStopIsBackendInvariant: with a reachable target, every
// backend stops at the same chunk boundary with a byte-identical
// estimate, and the stopped seed count is a multiple of the chunk size.
func TestSequentialStopIsBackendInvariant(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 4
	gen := packet.Bernoulli{Load: 1.0}
	const baseSeed, budget, chunk = 9, 96, 8
	tgt := stats.Target{AbsWidth: 0.25}
	ctx := context.Background()

	var wantEst Estimate
	var wantRep SeqReport
	first := true
	for name, mk := range seqBackends(cfg, gen, baseSeed) {
		est, rep, err := RunSequential(ctx, mk(), SequentialOptions{Target: tgt, Chunk: chunk, MaxRuns: budget})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.TargetMet {
			t.Fatalf("%s: target %v not met within %d seeds (hw=%v) — test workload mistuned",
				name, tgt, budget, rep.HalfWidth)
		}
		if rep.Seeds >= budget {
			t.Errorf("%s: stopped at the full budget; target should bind earlier", name)
		}
		if rep.Seeds%chunk != 0 {
			t.Errorf("%s: stopped at %d seeds, not a chunk multiple of %d", name, rep.Seeds, chunk)
		}
		if first {
			wantEst, wantRep, first = est, rep, false
			continue
		}
		if !reflect.DeepEqual(est, wantEst) || rep != wantRep {
			t.Errorf("%s: stopped run differs:\n got (%+v, %+v)\nwant (%+v, %+v)", name, est, rep, wantEst, wantRep)
		}
	}
}

// TestSequentialImpossibleTargetRunsBudget: an unreachable target spends
// the whole budget and still returns the fixed-N estimate.
func TestSequentialImpossibleTargetRunsBudget(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 4
	gen := packet.Bernoulli{Load: 2.0} // dense traffic: ratios vary, hw stays > 0
	ctx := context.Background()
	const baseSeed, runs = 9, 16

	want, err := Run(ctx, cfg, CIOQAlg(func() switchsim.CIOQPolicy { return &core.GM{} }),
		ExactUnitCIOQ, gen, baseSeed, runs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	est, rep, err := RunSequential(ctx,
		seqBackends(cfg, gen, baseSeed)["scalar"](),
		SequentialOptions{Target: stats.Target{AbsWidth: 1e-12}, Chunk: 4, MaxRuns: runs})
	if err != nil {
		t.Fatalf("RunSequential: %v", err)
	}
	if rep.TargetMet || rep.Seeds != runs {
		t.Errorf("report = %+v, want full budget %d and target unmet", rep, runs)
	}
	if !reflect.DeepEqual(est, want) {
		t.Errorf("estimate differs from Run:\n got %+v\nwant %+v", est, want)
	}
}

// TestSequentialErrorIdentity: a failing seed surfaces the exact same
// "ratio: seed N" error text Run reports, at any chunk size.
func TestSequentialErrorIdentity(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 4
	gen := packet.Bernoulli{Load: 1.0}
	const baseSeed, runs, failIdx = 50, 10, 7
	failSeed := int64(baseSeed + failIdx)
	boom := errors.New("boom")
	alg := func(c switchsim.Config, seq packet.Sequence) (int64, error) {
		if fingerprintSeedMatch(c, gen, failSeed, seq) {
			return 0, boom
		}
		return CIOQAlg(func() switchsim.CIOQPolicy { return &core.GM{} })(c, seq)
	}
	want := fmt.Sprintf("ratio: seed %d: policy run: boom", failSeed)
	for _, chunk := range []int{1, 3, 10} {
		_, _, err := RunSequential(context.Background(),
			ScalarChunks(cfg, alg, ExactUnitCIOQ, gen, baseSeed),
			SequentialOptions{Chunk: chunk, MaxRuns: runs})
		if err == nil || err.Error() != want {
			t.Errorf("chunk=%d: error = %v, want %q", chunk, err, want)
		}
	}
}

// TestSequentialPreCancelled: a cancelled context aborts before any seed.
func TestSequentialPreCancelled(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 4
	gen := packet.Bernoulli{Load: 1.0}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := RunSequential(ctx, seqBackends(cfg, gen, 1)["scalar"](), SequentialOptions{MaxRuns: 8})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// FuzzSequentialMergeIdentity fuzzes the disabled-target identity: for
// any (baseSeed, chunk, runs, load) the sequential driver over the scalar
// backend must reproduce Run byte-for-byte.
func FuzzSequentialMergeIdentity(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(6), uint8(10))
	f.Add(int64(30), uint8(3), uint8(12), uint8(10))
	f.Add(int64(7), uint8(16), uint8(9), uint8(4))
	f.Add(int64(-5), uint8(5), uint8(20), uint8(15))
	f.Fuzz(func(t *testing.T, baseSeed int64, chunk, runs, load uint8) {
		cfg := microCfg()
		cfg.Slots = 4
		nRuns := int(runs%24) + 1
		gen := packet.Bernoulli{Load: float64(load%20+1) / 10}
		alg := CIOQAlg(func() switchsim.CIOQPolicy { return &core.GM{} })
		ctx := context.Background()
		want, wantErr := Run(ctx, cfg, alg, ExactUnitCIOQ, gen, baseSeed, nRuns)
		got, rep, gotErr := RunSequential(ctx,
			ScalarChunks(cfg, alg, ExactUnitCIOQ, gen, baseSeed),
			SequentialOptions{Chunk: int(chunk % 40), MaxRuns: nRuns})
		if (wantErr == nil) != (gotErr == nil) ||
			(wantErr != nil && wantErr.Error() != gotErr.Error()) {
			t.Fatalf("error mismatch: Run=%v sequential=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("estimate mismatch:\n got %+v\nwant %+v", got, want)
		}
		if rep.Seeds != nRuns || rep.TargetMet {
			t.Fatalf("report = %+v, want %d seeds, target unmet", rep, nRuns)
		}
	})
}

// TestSequentialProbed pins the probe contract on the sequential engine:
// with SeqProbes installed the estimate and stopping report stay
// byte-identical (the per-chunk half-width telemetry is observational
// only), while the registry records the run's chunks, seeds and final
// half-width. It is also the probed estimation CI's race job runs.
func TestSequentialProbed(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 4
	gen := packet.Bernoulli{Load: 1.0}
	const baseSeed, budget, chunk = 30, 24, 5
	tgt := stats.Target{AbsWidth: 0.04, Confidence: 0.95}
	ctx := context.Background()
	mk := seqBackends(cfg, gen, baseSeed)["scalar"]

	wantEst, wantRep, err := RunSequential(ctx, mk(), SequentialOptions{Target: tgt, Chunk: chunk, MaxRuns: budget})
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	SetProbes(obs.NewSeqProbes(reg))
	defer SetProbes(nil)
	gotEst, gotRep, err := RunSequential(ctx, mk(), SequentialOptions{Target: tgt, Chunk: chunk, MaxRuns: budget})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotEst, wantEst) || !reflect.DeepEqual(gotRep, wantRep) {
		t.Errorf("probes changed the sequential result:\n got %+v / %+v\nwant %+v / %+v", gotEst, gotRep, wantEst, wantRep)
	}

	snap := reg.Snapshot()
	if snap[obs.MetricSeqRuns] != 1 {
		t.Errorf("seq runs = %v, want 1", snap[obs.MetricSeqRuns])
	}
	wantChunks := float64((wantRep.Seeds + chunk - 1) / chunk)
	if snap[obs.MetricSeqChunks] != wantChunks {
		t.Errorf("seq chunks = %v, want %v", snap[obs.MetricSeqChunks], wantChunks)
	}
	if snap[obs.MetricSeqSeedsTotal] != float64(wantRep.Seeds) {
		t.Errorf("seq seeds = %v, want %d", snap[obs.MetricSeqSeedsTotal], wantRep.Seeds)
	}
	if snap[obs.MetricSeqBudget] != budget {
		t.Errorf("seq budget = %v, want %d", snap[obs.MetricSeqBudget], budget)
	}
	if hw := snap[obs.MetricSeqHalfWidth]; wantRep.TargetMet && hw > tgt.AbsWidth {
		t.Errorf("final half-width gauge = %v after a met %v target", hw, tgt.AbsWidth)
	}
	if snap[obs.MetricSeqChunkSeconds+"_count"] != wantChunks {
		t.Errorf("chunk latency histogram count = %v, want %v", snap[obs.MetricSeqChunkSeconds+"_count"], wantChunks)
	}
}
