// Package ratio estimates empirical competitive ratios: it runs a policy
// and an offline optimum (exact solver where tractable, upper bound
// otherwise) over many seeded workloads and aggregates max/mean ratios.
// This is the measurement core behind experiments E1–E4 and E8.
//
// # Invariants
//
//   - Measurements are deterministic functions of (config, generator,
//     base seed): seed k's sequence is drawn from its own rand source, so
//     RunParallel distributes seeds over workers and still produces an
//     Estimate bit-identical to the sequential Run.
//   - Policy instances are created per evaluation through the Alg
//     factory, never shared, so concurrent or repeated evaluations cannot
//     leak mutable policy state.
//   - Judges are minted per worker through a JudgeFactory and reused
//     across that worker's whole seed stream: judging is deterministic
//     (same value for the same sequence regardless of call history), so
//     scratch reuse never changes an Estimate, only wall-clock. The same
//     holds for the per-worker fleets minted by a FleetAlgFactory, and
//     for RunFleet overlapping each chunk's judging with its fleet
//     stepping.
//   - The simulation engine is whatever the caller's switchsim.Config
//     selects — event-driven by default, dense via Config.Dense — and the
//     measured ratios are identical either way; only wall-clock changes.
//   - A zero optimum skips the sample (the ratio is vacuous); a zero
//     policy benefit against a positive optimum is an error, not an
//     infinite sample, since none of the paper's algorithms can score
//     zero against a positive optimum.
//
// # Sequential stopping
//
// RunSequential replaces the fixed seed budget with a precision target:
// it issues seed chunks through a ChunkEvaluator (ScalarChunks,
// ParallelChunks, FleetChunks or ShardedChunks wrap the four engines)
// and stops at the first chunk boundary where the Student-t CI
// half-width of the mean ratio clears a stats.Target. Because outcomes
// are pure per-seed values merged in seed order and the stopping rule
// only inspects seed-ordered prefixes, the stopped estimate is a
// deterministic function of (base seed, chunk size) — identical across
// backends — and a disabled target reproduces Run byte-for-byte at any
// chunk size (pinned by FuzzSequentialMergeIdentity).
//
// # Paired fleets
//
// RunPaired compares k policies with common random numbers: every
// policy steps the same seeded arrival batches, and each seed's offline
// optimum is solved once and shared. Per-seed ratio differences cancel
// the between-workload variance, so the CI on a policy-vs-policy
// difference shrinks far faster than with independent seed streams
// (≥5× fewer switch-slots to the same target on the BENCH_8 workload).
// Marginal estimates stay byte-identical to an independent Run of each
// policy over the same seeds; skip decisions depend only on the judge,
// so the per-seed sample streams of all k policies stay aligned and
// PairedDiff's fold is sound.
package ratio
