package ratio

import (
	"sync/atomic"

	"qswitch/internal/obs"
)

// seqProbes is the process-wide observability receiver for sequential
// estimation. RunSequential flushes once per chunk boundary — the same
// cadence as its stopping decisions — so probes add nothing to the
// per-seed path and a nil bundle degrades to one branch per chunk.
var seqProbes atomic.Pointer[obs.SeqProbes]

// SetProbes installs (or, with nil, removes) the sequential-estimation
// probe bundle. Probes only observe: estimates and stopping decisions
// are bit-identical with probes on or off.
func SetProbes(p *obs.SeqProbes) { seqProbes.Store(p) }
