package ratio

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"qswitch/internal/fleet"
	"qswitch/internal/packet"
	"qswitch/internal/switchsim"
)

// FleetAlg evaluates a policy family over a whole batch of sequences at
// once, returning one benefit per sequence in order. It is the batched
// counterpart of Alg: the columnar fleet engine amortizes one policy loop
// (and one switch construction) across the batch, and is bit-identical to
// the scalar engines, so estimates built on it are byte-identical to
// Run/RunParallel's. A FleetAlg may hold reusable state (a fleet.Runner)
// across calls and is not safe for concurrent use.
type FleetAlg func(cfg switchsim.Config, seqs []packet.Sequence) ([]int64, error)

// FleetAlgFactory mints independent FleetAlgs — RunFleet calls it once per
// worker, so each worker's fleet storage is constructed once and reused
// across its whole chunk stream.
type FleetAlgFactory func() FleetAlg

// CIOQFleetAlg adapts a CIOQ policy factory to the FleetAlgFactory
// signature: each minted FleetAlg owns a fleet.CIOQRunner (columnar when
// the family is batchable, per-instance scalar otherwise — either way
// bit-identical to CIOQAlg) whose storage survives across batches.
func CIOQFleetAlg(factory func() switchsim.CIOQPolicy) FleetAlgFactory {
	return func() FleetAlg {
		r := fleet.NewCIOQRunner(factory)
		return func(cfg switchsim.Config, seqs []packet.Sequence) ([]int64, error) {
			rs, err := r.Run(cfg, seqs)
			if err != nil {
				return nil, err
			}
			out := make([]int64, len(rs))
			for k, res := range rs {
				out[k] = res.M.Benefit
			}
			return out, nil
		}
	}
}

// CrossbarFleetAlg adapts a crossbar policy factory to the
// FleetAlgFactory signature via fleet.CrossbarRunner.
func CrossbarFleetAlg(factory func() switchsim.CrossbarPolicy) FleetAlgFactory {
	return func() FleetAlg {
		r := fleet.NewCrossbarRunner(factory)
		return func(cfg switchsim.Config, seqs []packet.Sequence) ([]int64, error) {
			rs, err := r.Run(cfg, seqs)
			if err != nil {
				return nil, err
			}
			out := make([]int64, len(rs))
			for k, res := range rs {
				out[k] = res.M.Benefit
			}
			return out, nil
		}
	}
}

// RunFleet is RunParallel with the policy side of the measurements routed
// through a batched FleetAlg: seeds are dealt into contiguous batches of
// `batch` sequences (<= 0 selects 64) and batches fan out over `workers`
// goroutines (<= 0 selects GOMAXPROCS). Each worker mints one FleetAlg
// and one Judge up front — the fleet storage and the judge scratch are
// reused across the worker's whole chunk stream — and evaluates each
// chunk via EvalChunk, which overlaps judging with fleet stepping and
// attributes errors to their exact seed. Results are merged
// deterministically in seed order, so the output is byte-identical to Run
// and RunParallel for the same inputs, regardless of workers or batch
// size.
//
// Cancellation mirrors RunParallel at chunk granularity: a failed chunk
// stops siblings from starting chunks beyond it (chunks below the failure
// still run, keeping attribution exact), and a cancelled ctx abandons all
// remaining chunks.
func RunFleet(ctx context.Context, cfg switchsim.Config, alg FleetAlgFactory, judge JudgeFactory, gen packet.Generator,
	baseSeed int64, runs, workers, batch int) (Estimate, error) {
	if runs <= 0 {
		return Estimate{}, nil
	}
	if batch <= 0 {
		batch = 64
	}
	if batch > runs {
		batch = runs
	}
	nChunks := (runs + batch - 1) / batch
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nChunks {
		workers = nChunks
	}

	results := make([]SeedOutcome, runs)
	// errChunk is the smallest chunk index containing a failed seed;
	// chunks above it cannot affect the merged result and are skipped.
	errChunk := int64(nChunks)
	var errMu sync.Mutex
	loadErrChunk := func() int64 {
		errMu.Lock()
		defer errMu.Unlock()
		return errChunk
	}
	var cancelled atomic.Bool
	// worker drains chunk indices, holding one reusable fleet alg, one
	// reusable judge and one outcome scratch buffer for its whole stream.
	worker := func(chunks <-chan int) {
		a := alg()
		j := judge()
		var outs []SeedOutcome
		for c := range chunks {
			k0 := c * batch
			k1 := min(runs, k0+batch)
			if cancelled.Load() || ctx.Err() != nil {
				cancelled.Store(true)
				for k := k0; k < k1; k++ {
					results[k] = SeedOutcome{Seed: baseSeed + int64(k), NotRun: true}
				}
				continue
			}
			if int64(c) > loadErrChunk() {
				for k := k0; k < k1; k++ {
					results[k] = SeedOutcome{Seed: baseSeed + int64(k), NotRun: true}
				}
				continue
			}
			outs = EvalChunk(cfg, a, j, gen, baseSeed, k0, k1, outs)
			failed := false
			for i, o := range outs {
				results[k0+i] = o
				failed = failed || o.Err != nil
			}
			if failed {
				errMu.Lock()
				if int64(c) < errChunk {
					errChunk = int64(c)
				}
				errMu.Unlock()
			}
		}
	}

	if workers <= 1 {
		chunkCh := make(chan int, nChunks)
		for c := 0; c < nChunks; c++ {
			chunkCh <- c
		}
		close(chunkCh)
		worker(chunkCh)
	} else {
		chunkCh := make(chan int, nChunks)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				worker(chunkCh)
			}()
		}
		for c := 0; c < nChunks; c++ {
			chunkCh <- c
		}
		close(chunkCh)
		wg.Wait()
	}
	return MergeOutcomes(ctx, results)
}
