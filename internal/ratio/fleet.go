package ratio

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"qswitch/internal/fleet"
	"qswitch/internal/packet"
	"qswitch/internal/stats"
	"qswitch/internal/switchsim"
)

// FleetAlg evaluates a policy family over a whole batch of sequences at
// once, returning one benefit per sequence in order. It is the batched
// counterpart of Alg: the columnar fleet engine amortizes one policy loop
// (and one switch construction) across the batch, and is bit-identical to
// the scalar engines, so estimates built on it are byte-identical to
// Run/RunParallel's. A FleetAlg may hold reusable state (a fleet.Runner)
// across calls and is not safe for concurrent use.
type FleetAlg func(cfg switchsim.Config, seqs []packet.Sequence) ([]int64, error)

// FleetAlgFactory mints independent FleetAlgs — RunFleet calls it once per
// worker, so each worker's fleet storage is constructed once and reused
// across its whole chunk stream.
type FleetAlgFactory func() FleetAlg

// CIOQFleetAlg adapts a CIOQ policy factory to the FleetAlgFactory
// signature: each minted FleetAlg owns a fleet.CIOQRunner (columnar when
// the family is batchable, per-instance scalar otherwise — either way
// bit-identical to CIOQAlg) whose storage survives across batches.
func CIOQFleetAlg(factory func() switchsim.CIOQPolicy) FleetAlgFactory {
	return func() FleetAlg {
		r := fleet.NewCIOQRunner(factory)
		return func(cfg switchsim.Config, seqs []packet.Sequence) ([]int64, error) {
			rs, err := r.Run(cfg, seqs)
			if err != nil {
				return nil, err
			}
			out := make([]int64, len(rs))
			for k, res := range rs {
				out[k] = res.M.Benefit
			}
			return out, nil
		}
	}
}

// CrossbarFleetAlg adapts a crossbar policy factory to the
// FleetAlgFactory signature via fleet.CrossbarRunner.
func CrossbarFleetAlg(factory func() switchsim.CrossbarPolicy) FleetAlgFactory {
	return func() FleetAlg {
		r := fleet.NewCrossbarRunner(factory)
		return func(cfg switchsim.Config, seqs []packet.Sequence) ([]int64, error) {
			rs, err := r.Run(cfg, seqs)
			if err != nil {
				return nil, err
			}
			out := make([]int64, len(rs))
			for k, res := range rs {
				out[k] = res.M.Benefit
			}
			return out, nil
		}
	}
}

// RunFleet is RunParallel with the policy side of the measurements routed
// through a batched FleetAlg: seeds are dealt into contiguous batches of
// `batch` sequences (<= 0 selects 64) and batches fan out over `workers`
// goroutines (<= 0 selects GOMAXPROCS). Each worker mints one FleetAlg
// and one Judge up front — the fleet storage and the judge scratch are
// reused across the worker's whole chunk stream — and overlaps the two
// per chunk: the batch's policy runs step on a side goroutine while the
// worker judges the batch's sequences. Results are merged
// deterministically in seed order, so the output is byte-identical to Run
// and RunParallel for the same inputs, regardless of workers or batch
// size.
func RunFleet(cfg switchsim.Config, alg FleetAlgFactory, judge JudgeFactory, gen packet.Generator,
	baseSeed int64, runs, workers, batch int) (Estimate, error) {
	var est Estimate
	if runs <= 0 {
		return est, nil
	}
	if batch <= 0 {
		batch = 64
	}
	if batch > runs {
		batch = runs
	}
	nChunks := (runs + batch - 1) / batch
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nChunks {
		workers = nChunks
	}

	type outcome struct {
		ratio   float64
		skipped bool
		err     error
	}
	type algOut struct {
		benefits []int64
		err      error
	}
	results := make([]outcome, runs)
	// worker drains chunk indices, holding one reusable fleet alg, one
	// reusable judge and one sequence scratch buffer for its whole stream.
	worker := func(chunks <-chan int) {
		a := alg()
		j := judge()
		var seqs []packet.Sequence
		var optVals []int64
		algCh := make(chan algOut, 1)
		for c := range chunks {
			k0 := c * batch
			k1 := min(runs, k0+batch)
			seqs = seqs[:0]
			for k := k0; k < k1; k++ {
				rng := rand.New(rand.NewSource(baseSeed + int64(k)))
				seqs = append(seqs, gen.Generate(rng, cfg.Inputs, cfg.Outputs, pickSlots(cfg)))
			}
			// Policy side first, on its own goroutine: the fleet steps the
			// whole batch while this worker judges it, so judge work
			// overlaps fleet stepping instead of serializing behind it.
			go func() {
				benefits, err := a(cfg, seqs)
				if err == nil && len(benefits) != len(seqs) {
					err = fmt.Errorf("fleet alg returned %d benefits for %d sequences", len(benefits), len(seqs))
				}
				algCh <- algOut{benefits, err}
			}()
			if cap(optVals) < k1-k0 {
				optVals = make([]int64, k1-k0)
			} else {
				optVals = optVals[:k1-k0]
			}
			judgeErr := false
			firstElig := -1
			for k := k0; k < k1; k++ {
				optVal, err := j.Judge(cfg, seqs[k-k0])
				switch {
				case err != nil:
					results[k] = outcome{err: fmt.Errorf("offline optimum: %w", err)}
					judgeErr = true
				case optVal == 0:
					results[k] = outcome{skipped: true}
				default:
					if firstElig < 0 {
						firstElig = k
					}
					optVals[k-k0] = optVal
				}
			}
			out := <-algCh
			if out.err != nil {
				// Deterministic attribution: the first eligible seed in the
				// batch carries the policy error; judge errors (which may
				// have fed the fleet a sequence the old per-eligible path
				// would have excluded) take precedence.
				if firstElig >= 0 && !judgeErr {
					results[firstElig] = outcome{err: fmt.Errorf("policy run: %w", out.err)}
				}
				continue
			}
			for k := k0; k < k1; k++ {
				if o := results[k]; o.err != nil || o.skipped {
					continue
				}
				optVal := optVals[k-k0]
				if benefit := out.benefits[k-k0]; benefit == 0 {
					results[k] = outcome{err: fmt.Errorf("ratio: policy scored 0 against optimum %d", optVal)}
				} else {
					results[k] = outcome{ratio: float64(optVal) / float64(benefit)}
				}
			}
		}
	}

	if workers <= 1 {
		chunkCh := make(chan int, nChunks)
		for c := 0; c < nChunks; c++ {
			chunkCh <- c
		}
		close(chunkCh)
		worker(chunkCh)
	} else {
		chunkCh := make(chan int, nChunks)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				worker(chunkCh)
			}()
		}
		for c := 0; c < nChunks; c++ {
			chunkCh <- c
		}
		close(chunkCh)
		wg.Wait()
	}

	var acc stats.Acc
	for k, o := range results {
		seed := baseSeed + int64(k)
		if o.err != nil {
			return est, fmt.Errorf("ratio: seed %d: %w", seed, o.err)
		}
		if o.skipped {
			est.Skipped++
			continue
		}
		acc.Add(o.ratio)
		est.Samples = append(est.Samples, o.ratio)
		if o.ratio > est.Max {
			est.Max = o.ratio
			est.WorstSeed = seed
		}
		est.Runs++
	}
	est.Mean = acc.Mean()
	est.CI95 = acc.CI95()
	return est, nil
}
