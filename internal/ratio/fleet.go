package ratio

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"qswitch/internal/fleet"
	"qswitch/internal/packet"
	"qswitch/internal/stats"
	"qswitch/internal/switchsim"
)

// FleetAlg evaluates a policy family over a whole batch of sequences at
// once, returning one benefit per sequence in order. It is the batched
// counterpart of Alg: the columnar fleet engine amortizes one policy loop
// (and one switch construction) across the batch, and is bit-identical to
// the scalar engines, so estimates built on it are byte-identical to
// Run/RunParallel's.
type FleetAlg func(cfg switchsim.Config, seqs []packet.Sequence) ([]int64, error)

// CIOQFleetAlg adapts a CIOQ policy factory to the FleetAlg signature via
// fleet.RunCIOQ (columnar when the family is batchable, per-instance
// scalar otherwise — either way bit-identical to CIOQAlg).
func CIOQFleetAlg(factory func() switchsim.CIOQPolicy) FleetAlg {
	return func(cfg switchsim.Config, seqs []packet.Sequence) ([]int64, error) {
		rs, err := fleet.RunCIOQ(cfg, factory, seqs)
		if err != nil {
			return nil, err
		}
		out := make([]int64, len(rs))
		for k, r := range rs {
			out[k] = r.M.Benefit
		}
		return out, nil
	}
}

// CrossbarFleetAlg adapts a crossbar policy factory to the FleetAlg
// signature via fleet.RunCrossbar.
func CrossbarFleetAlg(factory func() switchsim.CrossbarPolicy) FleetAlg {
	return func(cfg switchsim.Config, seqs []packet.Sequence) ([]int64, error) {
		rs, err := fleet.RunCrossbar(cfg, factory, seqs)
		if err != nil {
			return nil, err
		}
		out := make([]int64, len(rs))
		for k, r := range rs {
			out[k] = r.M.Benefit
		}
		return out, nil
	}
}

// RunFleet is RunParallel with the policy side of the measurements routed
// through a batched FleetAlg: seeds are dealt into contiguous batches of
// `batch` sequences (<= 0 selects 64), each batch's offline optima are
// solved per-sequence, the policy runs once over the batch's eligible
// sequences, and batches fan out over `workers` goroutines (<= 0 selects
// GOMAXPROCS). Results are merged deterministically in seed order, so the
// output is byte-identical to Run and RunParallel for the same inputs,
// regardless of workers or batch size.
func RunFleet(cfg switchsim.Config, alg FleetAlg, opt Opt, gen packet.Generator,
	baseSeed int64, runs, workers, batch int) (Estimate, error) {
	var est Estimate
	if runs <= 0 {
		return est, nil
	}
	if batch <= 0 {
		batch = 64
	}
	if batch > runs {
		batch = runs
	}
	nChunks := (runs + batch - 1) / batch
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nChunks {
		workers = nChunks
	}

	type outcome struct {
		ratio   float64
		skipped bool
		err     error
	}
	results := make([]outcome, runs)
	process := func(c int) {
		k0 := c * batch
		k1 := min(runs, k0+batch)
		optVals := make([]int64, k1-k0)
		eligible := make([]packet.Sequence, 0, k1-k0)
		eligIdx := make([]int, 0, k1-k0)
		for k := k0; k < k1; k++ {
			rng := rand.New(rand.NewSource(baseSeed + int64(k)))
			seq := gen.Generate(rng, cfg.Inputs, cfg.Outputs, pickSlots(cfg))
			optVal, err := opt(cfg, seq)
			if err != nil {
				results[k] = outcome{err: fmt.Errorf("offline optimum: %w", err)}
				continue
			}
			optVals[k-k0] = optVal
			if optVal == 0 {
				results[k] = outcome{skipped: true}
				continue
			}
			eligible = append(eligible, seq)
			eligIdx = append(eligIdx, k)
		}
		if len(eligible) == 0 {
			return
		}
		benefits, err := alg(cfg, eligible)
		if err == nil && len(benefits) != len(eligible) {
			err = fmt.Errorf("fleet alg returned %d benefits for %d sequences", len(benefits), len(eligible))
		}
		if err != nil {
			// Deterministic attribution: the first eligible seed in the
			// batch carries the error.
			results[eligIdx[0]] = outcome{err: fmt.Errorf("policy run: %w", err)}
			return
		}
		for x, k := range eligIdx {
			optVal := optVals[k-k0]
			if benefits[x] == 0 {
				results[k] = outcome{err: fmt.Errorf("ratio: policy scored 0 against optimum %d", optVal)}
				continue
			}
			results[k] = outcome{ratio: float64(optVal) / float64(benefits[x])}
		}
	}

	if workers <= 1 {
		for c := 0; c < nChunks; c++ {
			process(c)
		}
	} else {
		chunkCh := make(chan int, nChunks)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for c := range chunkCh {
					process(c)
				}
			}()
		}
		for c := 0; c < nChunks; c++ {
			chunkCh <- c
		}
		close(chunkCh)
		wg.Wait()
	}

	var acc stats.Acc
	for k, o := range results {
		seed := baseSeed + int64(k)
		if o.err != nil {
			return est, fmt.Errorf("ratio: seed %d: %w", seed, o.err)
		}
		if o.skipped {
			est.Skipped++
			continue
		}
		acc.Add(o.ratio)
		est.Samples = append(est.Samples, o.ratio)
		if o.ratio > est.Max {
			est.Max = o.ratio
			est.WorstSeed = seed
		}
		est.Runs++
	}
	est.Mean = acc.Mean()
	est.CI95 = acc.CI95()
	return est, nil
}
