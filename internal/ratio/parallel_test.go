package ratio

import (
	"context"
	"math"
	"testing"

	"qswitch/internal/core"
	"qswitch/internal/packet"
	"qswitch/internal/switchsim"
)

func TestRunParallelMatchesSequential(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 5
	alg := CIOQAlg(func() switchsim.CIOQPolicy { return &core.GM{} })
	gen := packet.Bernoulli{Load: 1.6}
	seq, err := Run(context.Background(), cfg, alg, ExactUnitCIOQ, gen, 77, 24)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(context.Background(), cfg, alg, ExactUnitCIOQ, gen, 77, 24, 8)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Max != par.Max || seq.Runs != par.Runs || seq.Skipped != par.Skipped {
		t.Errorf("parallel (max=%v runs=%d) != sequential (max=%v runs=%d)",
			par.Max, par.Runs, seq.Max, seq.Runs)
	}
	if math.Abs(seq.Mean-par.Mean) > 1e-12 {
		t.Errorf("means differ: %v vs %v", seq.Mean, par.Mean)
	}
	if seq.WorstSeed != par.WorstSeed {
		t.Errorf("worst seeds differ: %d vs %d", seq.WorstSeed, par.WorstSeed)
	}
}

func TestRunParallelWorkerEdgeCases(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 4
	alg := CIOQAlg(func() switchsim.CIOQPolicy { return &core.GM{} })
	gen := packet.Bernoulli{Load: 1.2}
	for _, workers := range []int{0, 1, 3, 100} {
		est, err := RunParallel(context.Background(), cfg, alg, ExactUnitCIOQ, gen, 5, 6, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if est.Runs+est.Skipped != 6 {
			t.Errorf("workers=%d: accounted %d of 6 runs", workers, est.Runs+est.Skipped)
		}
	}
}

func TestSweepComparableAcrossPoints(t *testing.T) {
	cfg := microCfg()
	cfg.Slots = 4
	algs := map[string]Alg{
		"beta=1.5": CIOQAlg(func() switchsim.CIOQPolicy { return &core.PG{Beta: 1.5} }),
		"beta=2.4": CIOQAlg(func() switchsim.CIOQPolicy { return &core.PG{} }),
		"beta=4.0": CIOQAlg(func() switchsim.CIOQPolicy { return &core.PG{Beta: 4} }),
	}
	gen := packet.Bernoulli{Load: 0.8, Values: packet.UniformValues{Hi: 12}}
	out, err := Sweep(context.Background(), cfg, algs, ExactWeightedCIOQ, gen, 3, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d estimates, want 3", len(out))
	}
	bound := core.PGRatio(core.DefaultBetaPG())
	for name, est := range out {
		if est.Runs == 0 {
			t.Errorf("%s: no runs", name)
		}
		// All betas >= 1 keep PG within ITS OWN bound; the shared one
		// at beta* is the tightest, so just sanity-check against the
		// loosest in the sweep.
		if est.Max > core.PGRatio(1.5)+1e-9 {
			t.Errorf("%s: max ratio %v beyond the loosest sweep bound", name, est.Max)
		}
		_ = bound
	}
}

// TestRunParallelEventDrivenMatchesDense checks the Config.Dense
// plumbing end to end through the ratio harness: per-seed measurements,
// and therefore the aggregate Estimate, are bit-identical between the
// default event-driven engine and the dense opt-out on sparse workloads.
func TestRunParallelEventDrivenMatchesDense(t *testing.T) {
	evCfg := microCfg()
	evCfg.Slots = 12
	alg := CIOQAlg(func() switchsim.CIOQPolicy { return &core.GM{Order: core.Rotating} })
	gen := packet.PoissonBurst{OffMean: 8, BurstMean: 2}
	cfg := evCfg
	cfg.Dense = true
	dense, err := RunParallel(context.Background(), cfg, alg, ExactUnitCIOQ, gen, 5, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RunParallel(context.Background(), evCfg, alg, ExactUnitCIOQ, gen, 5, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dense.Max != fast.Max || dense.Mean != fast.Mean || dense.Runs != fast.Runs ||
		dense.Skipped != fast.Skipped || dense.WorstSeed != fast.WorstSeed {
		t.Errorf("event-driven ratio estimate diverged:\ndense: %+v\nevent: %+v", dense, fast)
	}
	algs := map[string]Alg{"gm": alg,
		"rr": CIOQAlg(func() switchsim.CIOQPolicy { return &core.RoundRobin{} })}
	sw1, err := Sweep(context.Background(), cfg, algs, ExactUnitCIOQ, gen, 5, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	sw2, err := Sweep(context.Background(), evCfg, algs, ExactUnitCIOQ, gen, 5, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for name := range algs {
		if sw1[name].Max != sw2[name].Max || sw1[name].Mean != sw2[name].Mean {
			t.Errorf("sweep %q diverged: dense %+v vs event %+v", name, sw1[name], sw2[name])
		}
	}
}
