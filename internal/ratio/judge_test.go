package ratio

import (
	"math/rand"
	"testing"

	"qswitch/internal/packet"
	"qswitch/internal/switchsim"
)

// TestReusedJudgeIsHistoryIndependent drives one judge across a stream of
// differently-shaped sequences and checks every verdict matches a
// freshly-minted judge's: scratch reuse must never leak between calls.
func TestReusedJudgeIsHistoryIndependent(t *testing.T) {
	cfgs := []switchsim.Config{
		{Inputs: 2, Outputs: 2, InputBuf: 2, OutputBuf: 2, CrossBuf: 1, Speedup: 1, Slots: 10},
		{Inputs: 6, Outputs: 3, InputBuf: 1, OutputBuf: 4, CrossBuf: 2, Speedup: 2, Slots: 50},
		{Inputs: 4, Outputs: 4, InputBuf: 3, OutputBuf: 1, CrossBuf: 1, Speedup: 1, Slots: 120},
	}
	gens := []packet.Generator{
		packet.Bernoulli{Load: 1.4},
		packet.PoissonBurst{OffMean: 20, BurstMean: 3, Values: packet.UniformValues{Hi: 25}},
		packet.BurstyBlocking{OffMean: 15, Burst: 5, Fanin: 2},
	}
	for _, factory := range []JudgeFactory{UpperBoundCIOQ, UpperBoundCrossbar} {
		reused := factory()
		for round := 0; round < 3; round++ {
			for gi, gen := range gens {
				for ci, cfg := range cfgs {
					rng := rand.New(rand.NewSource(int64(100*round + 10*gi + ci)))
					seq := gen.Generate(rng, cfg.Inputs, cfg.Outputs, cfg.Slots)
					got, err := reused.Judge(cfg, seq)
					if err != nil {
						t.Fatal(err)
					}
					want, err := factory().Judge(cfg, seq)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("round %d gen %d cfg %d: reused judge %d != fresh %d",
							round, gi, ci, got, want)
					}
				}
			}
		}
	}
}

// TestReusedJudgeZeroAllocsSteadyState pins the Judge refactor's alloc
// contract at the ratio layer: a worker-held upper-bound judge evaluating
// sequence after sequence allocates nothing once warm.
func TestReusedJudgeZeroAllocsSteadyState(t *testing.T) {
	cfg := switchsim.Config{Inputs: 8, Outputs: 8, InputBuf: 2, OutputBuf: 4,
		CrossBuf: 1, Speedup: 2, Slots: 400}
	seqs := make([]packet.Sequence, 8)
	for k := range seqs {
		rng := rand.New(rand.NewSource(int64(k)))
		seqs[k] = packet.PoissonBurst{OffMean: 30, BurstMean: 4,
			Values: packet.UniformValues{Hi: 20}}.Generate(rng, 8, 8, cfg.Slots)
	}
	j := UpperBoundCIOQ()
	k := 0
	judge := func() {
		if _, err := j.Judge(cfg, seqs[k%len(seqs)]); err != nil {
			t.Fatal(err)
		}
		k++
	}
	for w := 0; w < 2*len(seqs); w++ {
		judge()
	}
	if allocs := testing.AllocsPerRun(32, judge); allocs != 0 {
		t.Errorf("reused judge allocates %.1f/sequence, want 0", allocs)
	}
}
