package adversary

import (
	"testing"

	"qswitch/internal/core"
	"qswitch/internal/offline"
	"qswitch/internal/switchsim"
)

func TestAdaptiveAntiGreedyForcesLowerBoundOnDeterministicGM(t *testing.T) {
	for _, m := range []int{2, 3, 4} {
		cfg := IQLowerBoundCfg(m)
		const phases = 2
		seq, benefit, err := AdaptiveAntiGreedy(cfg, &core.GM{}, phases)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		opt, err := offline.ExactUnitCIOQ(cfg, seq)
		if err != nil {
			t.Fatalf("m=%d opt: %v", m, err)
		}
		wantRatio := 2 - 1/float64(m)
		got := float64(opt) / float64(benefit)
		if got < wantRatio-1e-9 {
			t.Errorf("m=%d: adaptive adversary only achieved %.4f, want >= %.4f",
				m, got, wantRatio)
		}
		if float64(opt) > 3*float64(benefit) {
			t.Errorf("m=%d: ratio %.4f exceeds Theorem 1 bound", m, got)
		}
	}
}

func TestAdaptiveAntiGreedyWorksAgainstAnyOrder(t *testing.T) {
	// The adaptive adversary does not rely on knowing the scan order:
	// it must force the same ratio against column-major and rotating GM.
	for _, mk := range []func() switchsim.CIOQPolicy{
		func() switchsim.CIOQPolicy { return &core.GM{Order: core.ColMajor} },
		func() switchsim.CIOQPolicy { return &core.GM{Order: core.Rotating} },
		func() switchsim.CIOQPolicy { return &core.GM{Order: core.LongestFirst} },
	} {
		cfg := IQLowerBoundCfg(3)
		seq, benefit, err := AdaptiveAntiGreedy(cfg, mk(), 2)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := offline.ExactUnitCIOQ(cfg, seq)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(opt) / float64(benefit)
		if got < 2-1.0/3-1e-9 {
			t.Errorf("adaptive adversary achieved only %.4f against order variant", got)
		}
	}
}

func TestAdaptiveAntiGreedyRejectsMultiInput(t *testing.T) {
	cfg := IQLowerBoundCfg(2)
	cfg.Inputs = 2
	if _, _, err := AdaptiveAntiGreedy(cfg, &core.GM{}, 1); err == nil {
		t.Error("multi-input config accepted")
	}
}

func TestObliviousReplayFavorsRandomization(t *testing.T) {
	// The E14b effect, asserted: on the fixed row-major-tuned sequence,
	// randomized GM's expected benefit beats deterministic GM's.
	m := 6
	cfg := IQLowerBoundCfg(m)
	seq := IQLowerBound(m, 3)
	det, err := switchsim.RunCIOQ(cfg, &core.GM{}, seq)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	const trials = 15
	for k := 0; k < trials; k++ {
		res, err := switchsim.RunCIOQ(cfg, &core.RandomizedGM{Seed: int64(k + 1)}, seq)
		if err != nil {
			t.Fatal(err)
		}
		total += res.M.Benefit
	}
	mean := float64(total) / trials
	if mean <= float64(det.M.Benefit) {
		t.Errorf("randomized mean %.1f not better than deterministic %d on oblivious sequence",
			mean, det.M.Benefit)
	}
}
