package adversary

import (
	"reflect"
	"testing"

	"qswitch/internal/packet"
)

// huntEval is a cheap deterministic fitness function: it rewards longer
// sequences with a mild preference, so hunts make progress without a
// simulator.
func huntEval(seq packet.Sequence) (float64, bool) {
	if len(seq) == 0 {
		return 0, false
	}
	var v int64
	for _, p := range seq {
		v += p.Value + int64(p.Arrival)
	}
	return float64(len(seq)) + float64(v%7)/10, true
}

func huntOpts() SearchOptions {
	return SearchOptions{
		Inputs: 2, Outputs: 2, MaxSlots: 4, MaxPackets: 6, MaxValue: 3,
		Iterations: 50, Seed: 42, Restarts: 6,
	}
}

// TestHuntRangeChunksMergeToHunt is the shardability property the service
// tier rests on: any chunking of the restart range, folded with
// MergeHunts, must reproduce Hunt exactly.
func TestHuntRangeChunksMergeToHunt(t *testing.T) {
	opts := huntOpts()
	want := Hunt(opts, huntEval)
	if want.Restart < 0 || want.Ratio <= 0 {
		t.Fatalf("degenerate hunt baseline: %+v", want)
	}
	for _, chunk := range []int{1, 2, 3, 4, 6, 7} {
		got := HuntResult{Ratio: -1, Restart: -1}
		for r0 := 0; r0 < opts.Restarts; r0 += chunk {
			r1 := r0 + chunk
			if r1 > opts.Restarts {
				r1 = opts.Restarts
			}
			got = MergeHunts(got, HuntRange(opts, huntEval, r0, r1))
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("chunk=%d merged hunt differs:\n got  %+v\n want %+v", chunk, got, want)
		}
	}
}

// TestHuntRangeMergeOrderIndependent: folding chunks in any order yields
// the same result, so retried and out-of-order chunks cannot skew a hunt.
func TestHuntRangeMergeOrderIndependent(t *testing.T) {
	opts := huntOpts()
	want := Hunt(opts, huntEval)
	chunks := []HuntResult{
		HuntRange(opts, huntEval, 4, 6),
		HuntRange(opts, huntEval, 0, 2),
		HuntRange(opts, huntEval, 2, 4),
	}
	got := HuntResult{Ratio: -1, Restart: -1}
	for _, c := range chunks {
		got = MergeHunts(got, c)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("out-of-order merge differs:\n got  %+v\n want %+v", got, want)
	}
}

func TestMergeHuntsTieBreaksByRestart(t *testing.T) {
	a := HuntResult{Ratio: 2, Restart: 3, Tried: 10}
	b := HuntResult{Ratio: 2, Restart: 1, Tried: 5}
	m1 := MergeHunts(a, b)
	m2 := MergeHunts(b, a)
	if m1.Restart != 1 || m2.Restart != 1 {
		t.Errorf("tie went to restarts %d/%d, want 1", m1.Restart, m2.Restart)
	}
	if m1.Tried != 15 || m2.Tried != 15 {
		t.Errorf("Tried = %d/%d, want 15", m1.Tried, m2.Tried)
	}
}

func TestMergeHuntsEmptyIdentity(t *testing.T) {
	empty := HuntResult{Ratio: -1, Restart: -1}
	real := HuntResult{Ratio: 1.5, Restart: 0, Tried: 7}
	if got := MergeHunts(empty, real); got.Restart != 0 || got.Ratio != 1.5 || got.Tried != 7 {
		t.Errorf("empty ⊕ real = %+v", got)
	}
	if got := MergeHunts(real, empty); got.Restart != 0 || got.Ratio != 1.5 || got.Tried != 7 {
		t.Errorf("real ⊕ empty = %+v", got)
	}
}

// TestHuntRestartsIndependent: restart r's outcome must not depend on
// which batch ran it, so a lone HuntRange(r, r+1) reproduces the restart's
// contribution exactly.
func TestHuntRestartsIndependent(t *testing.T) {
	opts := huntOpts()
	whole := Hunt(opts, huntEval)
	lone := HuntRange(opts, huntEval, whole.Restart, whole.Restart+1)
	if lone.Ratio != whole.Ratio {
		t.Errorf("winning restart re-run alone scored %v, hunt scored %v", lone.Ratio, whole.Ratio)
	}
	if !reflect.DeepEqual(lone.Seq, whole.Seq) {
		t.Errorf("winning restart re-run alone found a different sequence")
	}
}
