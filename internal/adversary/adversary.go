package adversary

import (
	"qswitch/internal/packet"
	"qswitch/internal/switchsim"
)

// IQLowerBound builds the classical (2 - 1/m)-ratio sequence against
// greedy unit-value schedulers on the IQ model (m queues of capacity 1),
// embedded into a CIOQ switch with one input port and m output ports,
// speedup 1 (the reduction in the paper's Section 1.2).
//
// Each phase spans 2m-1 slots: at the first slot every virtual output
// queue receives one packet; during the next m-1 slots one refill packet
// per slot targets the *last* queue in GM's row-major service order, which
// is still occupied for GM (so GM rejects all refills) but already served
// by the adversary's schedule. GM gains m per phase, OPT gains 2m-1.
//
// Use with Config{Inputs: 1, Outputs: m, InputBuf: 1, OutputBuf: >=1,
// Speedup: 1} and FitCfg returns exactly that.
func IQLowerBound(m, phases int) packet.Sequence {
	var seq packet.Sequence
	var id int64
	period := 2*m - 1
	for ph := 0; ph < phases; ph++ {
		base := ph * period
		for j := 0; j < m; j++ {
			seq = append(seq, packet.Packet{ID: id, Arrival: base, In: 0, Out: j, Value: 1})
			id++
		}
		for k := 1; k < m; k++ {
			seq = append(seq, packet.Packet{ID: id, Arrival: base + k, In: 0, Out: m - 1, Value: 1})
			id++
		}
	}
	return seq.Normalize()
}

// IQLowerBoundCfg returns the switch geometry IQLowerBound is designed
// for.
func IQLowerBoundCfg(m int) switchsim.Config {
	return switchsim.Config{
		Inputs: 1, Outputs: m,
		InputBuf: 1, OutputBuf: 1, CrossBuf: 1,
		Speedup: 1,
	}
}

// HotspotBursts stresses output contention: every `period` slots, all n
// inputs simultaneously send `burst` packets to output 0. With only one
// departure per slot, most of each burst must be buffered or lost; the
// offline optimum spreads admissions across the burst train.
func HotspotBursts(n, burst, period, rounds int, value packet.ValueDist) packet.Sequence {
	var seq packet.Sequence
	var id int64
	if value == nil {
		value = packet.UnitValues{}
	}
	rng := newDetRand(12345)
	for r := 0; r < rounds; r++ {
		t := r * period
		for i := 0; i < n; i++ {
			for b := 0; b < burst; b++ {
				seq = append(seq, packet.Packet{
					ID: id, Arrival: t, In: i, Out: 0, Value: value.Sample(rng),
				})
				id++
			}
		}
	}
	return seq.Normalize()
}

// PreemptionChains targets the weighted algorithms' preemption machinery:
// each input port emits a geometrically increasing value chain (factor
// just above beta) into the same output, in bursts of two packets per slot
// so that buffers overflow and every new arrival preempts its predecessor.
// A preemptive policy keeps chasing the chain and realizes mostly the top
// values; the offline optimum schedules the chain so that intermediate
// values escape too.
func PreemptionChains(n int, beta float64, length int, burst int) packet.Sequence {
	var seq packet.Sequence
	var id int64
	for i := 0; i < n; i++ {
		chain := packet.GeometricChain(1, beta+0.01, length)
		for k, v := range chain {
			for b := 0; b < burst; b++ {
				seq = append(seq, packet.Packet{ID: id, Arrival: k, In: i, Out: 0, Value: v})
				id++
			}
		}
	}
	return seq.Normalize()
}

// DiagonalFlip alternates the traffic matrix between the identity
// permutation and an all-to-one hotspot every `period` slots, defeating
// schedulers whose pointers or orders adapt slowly.
func DiagonalFlip(n, period, rounds int) packet.Sequence {
	var seq packet.Sequence
	var id int64
	for r := 0; r < rounds; r++ {
		base := r * period
		for t := 0; t < period; t++ {
			for i := 0; i < n; i++ {
				out := i
				if r%2 == 1 {
					out = 0
				}
				seq = append(seq, packet.Packet{ID: id, Arrival: base + t, In: i, Out: out, Value: 1})
				id++
			}
		}
	}
	return seq.Normalize()
}
