package adversary

import (
	"testing"

	"qswitch/internal/core"
	"qswitch/internal/offline"
	"qswitch/internal/packet"
	"qswitch/internal/ratio"
	"qswitch/internal/switchsim"
)

// TestIQLowerBoundForcesTwoMinusOneOverM verifies the classical greedy
// lower bound: on the IQ-model embedding, GM achieves exactly ratio
// (2m-1)/m = 2 - 1/m against the exact offline optimum.
func TestIQLowerBoundForcesTwoMinusOneOverM(t *testing.T) {
	for _, m := range []int{2, 3} {
		cfg := IQLowerBoundCfg(m)
		cfg.Validate = true
		const phases = 2
		seq := IQLowerBound(m, phases)
		gm, err := switchsim.RunCIOQ(cfg, &core.GM{}, seq)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		opt, err := offline.ExactUnitCIOQ(cfg, seq)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		wantGM := int64(m * phases)
		wantOPT := int64((2*m - 1) * phases)
		if gm.M.Benefit != wantGM {
			t.Errorf("m=%d: GM benefit %d, want %d", m, gm.M.Benefit, wantGM)
		}
		if opt != wantOPT {
			t.Errorf("m=%d: OPT %d, want %d", m, opt, wantOPT)
		}
		gotRatio := float64(opt) / float64(gm.M.Benefit)
		wantRatio := 2 - 1/float64(m)
		if diff := gotRatio - wantRatio; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("m=%d: ratio %.4f, want %.4f", m, gotRatio, wantRatio)
		}
	}
}

func TestIQLowerBoundStaysUnderTheorem1(t *testing.T) {
	// Even the adversarial family respects the proven upper bound of 3.
	for m := 2; m <= 3; m++ {
		cfg := IQLowerBoundCfg(m)
		seq := IQLowerBound(m, 2)
		gm, err := switchsim.RunCIOQ(cfg, &core.GM{}, seq)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := offline.ExactUnitCIOQ(cfg, seq)
		if err != nil {
			t.Fatal(err)
		}
		if float64(opt) > 3*float64(gm.M.Benefit) {
			t.Errorf("m=%d: ratio %f exceeds 3", m, float64(opt)/float64(gm.M.Benefit))
		}
	}
}

func TestHotspotBurstsShape(t *testing.T) {
	seq := HotspotBursts(3, 4, 5, 2, nil)
	if err := seq.Validate(3, 1); err != nil {
		t.Fatal(err)
	}
	if len(seq) != 3*4*2 {
		t.Errorf("len %d, want 24", len(seq))
	}
	for _, p := range seq {
		if p.Out != 0 {
			t.Fatalf("packet %v not targeting the hotspot", p)
		}
		if p.Arrival%5 != 0 {
			t.Fatalf("packet %v arrives off-burst", p)
		}
	}
}

func TestPreemptionChainsShape(t *testing.T) {
	seq := PreemptionChains(2, 2.414, 5, 2)
	if err := seq.Validate(2, 1); err != nil {
		t.Fatal(err)
	}
	// Values along each input's chain must grow by more than beta.
	byIn := map[int][]packet.Packet{}
	for _, p := range seq {
		byIn[p.In] = append(byIn[p.In], p)
	}
	for in, ps := range byIn {
		var prev int64
		for _, p := range ps {
			if p.Value < prev { // within a slot values repeat (burst)
				if p.Arrival == ps[0].Arrival {
					continue
				}
			}
			prev = p.Value
		}
		if len(ps) != 10 {
			t.Errorf("input %d has %d packets, want 10", in, len(ps))
		}
	}
}

func TestDiagonalFlipShape(t *testing.T) {
	seq := DiagonalFlip(3, 4, 2)
	if err := seq.Validate(3, 3); err != nil {
		t.Fatal(err)
	}
	for _, p := range seq {
		round := p.Arrival / 4
		if round%2 == 0 && p.Out != p.In {
			t.Fatalf("round 0 packet %v should be diagonal", p)
		}
		if round%2 == 1 && p.Out != 0 {
			t.Fatalf("round 1 packet %v should target output 0", p)
		}
	}
}

// TestSearchFindsBadInstancesButRespectsBound runs the adversarial fuzzer
// against GM with the exact optimum as the judge: it must discover
// instances well above ratio 1 while never producing one above 3.
func TestSearchFindsBadInstancesButRespectsBound(t *testing.T) {
	cfg := switchsim.Config{Inputs: 2, Outputs: 2, InputBuf: 1, OutputBuf: 1,
		CrossBuf: 1, Speedup: 1, Validate: true}
	alg := ratio.CIOQAlg(func() switchsim.CIOQPolicy { return &core.GM{} })
	eval := func(seq packet.Sequence) (float64, bool) {
		r, ok, err := ratio.Single(cfg, alg, ratio.ExactUnitCIOQ(), seq)
		if err != nil {
			return 0, false
		}
		return r, ok
	}
	res := Search(SearchOptions{
		Inputs: 2, Outputs: 2, MaxSlots: 5, MaxPackets: 8,
		MaxValue: 1, Iterations: 150, Seed: 99, Restarts: 2,
	}, eval)
	if res.Ratio < 1.2 {
		t.Errorf("fuzzer only reached ratio %.4f; expected to find contention above 1.2", res.Ratio)
	}
	if res.Ratio > 3.0+1e-9 {
		t.Errorf("fuzzer found ratio %.4f above the proven bound 3 — simulator or OPT is wrong", res.Ratio)
	}
	if len(res.Seq) == 0 {
		t.Error("no adversarial sequence retained")
	}
}

// TestSearchWeighted runs the fuzzer against PG with the weighted exact
// optimum: found ratios must stay below 3+2√2.
func TestSearchWeighted(t *testing.T) {
	cfg := switchsim.Config{Inputs: 2, Outputs: 2, InputBuf: 1, OutputBuf: 1,
		CrossBuf: 1, Speedup: 1, Validate: true}
	alg := ratio.CIOQAlg(func() switchsim.CIOQPolicy { return &core.PG{} })
	eval := func(seq packet.Sequence) (float64, bool) {
		r, ok, err := ratio.Single(cfg, alg, ratio.ExactWeightedCIOQ(), seq)
		if err != nil {
			return 0, false
		}
		return r, ok
	}
	res := Search(SearchOptions{
		Inputs: 2, Outputs: 2, MaxSlots: 4, MaxPackets: 7,
		MaxValue: 16, Iterations: 80, Seed: 7, Restarts: 1,
	}, eval)
	if res.Ratio > core.PGRatio(core.DefaultBetaPG())+1e-9 {
		t.Errorf("fuzzer found PG ratio %.4f above the proven bound %.4f",
			res.Ratio, core.PGRatio(core.DefaultBetaPG()))
	}
	if res.Ratio < 1.0 {
		t.Errorf("ratio %.4f below 1", res.Ratio)
	}
}
