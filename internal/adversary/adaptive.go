package adversary

import (
	"fmt"

	"qswitch/internal/packet"
	"qswitch/internal/switchsim"
)

// AdaptiveAntiGreedy plays the adaptive adversary from the classical IQ
// lower-bound proofs against an ARBITRARY unit-value CIOQ policy, using
// the stepper API to observe the policy's queues after every slot.
//
// Strategy (per phase, on a 1-input x m-output switch with unit input
// buffers): burst one packet into every virtual output queue; then, while
// any queue is still occupied in the policy's switch, refill exactly one
// still-occupied queue per slot — the policy must reject it, while a
// schedule that served that queue first accepts it. After the queues
// drain, idle long enough for any alternative schedule to catch up, then
// start the next phase.
//
// Against deterministic greedy policies this regenerates the (2 - 1/m)
// family without knowing the policy's service order; against randomized
// policies the refills sometimes land in emptied queues, which is exactly
// why randomization helps — experiment E14 measures that gap.
//
// It returns the adversarial arrival sequence (for offline evaluation)
// and the policy's online benefit.
func AdaptiveAntiGreedy(cfg switchsim.Config, pol switchsim.CIOQPolicy, phases int) (packet.Sequence, int64, error) {
	if cfg.Inputs != 1 {
		return nil, 0, fmt.Errorf("adversary: adaptive anti-greedy needs a single input port, got %d", cfg.Inputs)
	}
	m := cfg.Outputs
	st, err := switchsim.NewCIOQStepper(cfg, pol)
	if err != nil {
		return nil, 0, err
	}
	var seq packet.Sequence
	var id int64
	record := func(slot, out int) packet.Packet {
		p := packet.Packet{ID: id, Arrival: slot, In: 0, Out: out, Value: 1}
		id++
		seq = append(seq, p)
		return p
	}
	for ph := 0; ph < phases; ph++ {
		// Burst: one packet per queue.
		burst := make([]packet.Packet, 0, m)
		slot := st.Slot()
		for j := 0; j < m; j++ {
			burst = append(burst, record(slot, j))
		}
		if err := st.StepSlot(burst); err != nil {
			return nil, 0, err
		}
		// Refill phase: while some queue is still occupied, target the
		// highest-index occupied queue (any occupied queue works; the
		// policy must drop the refill).
		for k := 0; k < m-1; k++ {
			target := -1
			sw := st.Switch()
			for j := m - 1; j >= 0; j-- {
				if !sw.IQ[0][j].Empty() {
					target = j
					break
				}
			}
			if target < 0 {
				break
			}
			p := record(st.Slot(), target)
			if err := st.StepSlot([]packet.Packet{p}); err != nil {
				return nil, 0, err
			}
		}
		// Idle slots: let any schedule drain before the next phase.
		// Slot-by-slot only while the policy still holds input-side
		// packets (its scheduler may still move them); the remaining
		// output-queue drain plus the m catch-up slots are one quiescent
		// stretch that StepIdle advances in closed form for IdleAdvancer
		// policies — and slot-by-slot, bit-identically, for the rest.
		for st.Switch().InputQueued() > 0 {
			if err := st.StepSlot(nil); err != nil {
				return nil, 0, err
			}
		}
		if err := st.StepIdle(st.Switch().OutputBacklog() + m); err != nil {
			return nil, 0, err
		}
	}
	res, err := st.Finish(2 * m * phases)
	if err != nil {
		return nil, 0, err
	}
	return seq.Normalize(), res.M.Benefit, nil
}
