// Package adversary builds worst-case arrival sequences. It contains
// hand-crafted lower-bound constructions from the literature the paper
// cites (Section 1.2/4: all IQ-model lower bounds carry over to CIOQ and
// buffered crossbar switches), a local-search fuzzer (Search) that
// actively hunts for high-ratio instances against any policy, and a fully
// adaptive adversary (AdaptiveAntiGreedy) that observes the policy's
// queues through the stepper API after every slot.
//
// # Invariants
//
//   - Every construction returns a normalized packet.Sequence valid for
//     the geometry its *Cfg companion describes, so it can be replayed by
//     any engine or judged by any offline solver.
//   - All randomness is seeded: constructions, the fuzzer's restarts and
//     mutations, and therefore every experiment built on them are
//     deterministic.
//   - The fuzzer treats its Ratio evaluator as a black box and discards
//     invalid mutants; it never exceeds a proven upper bound on a correct
//     implementation — E8 uses exactly this as a squeeze test.
//
// Adversarial sequences are bursts separated by draining gaps — the shape
// the simulator's event-driven fast path collapses — so Search and
// AdaptiveAntiGreedy both ride it: Search's candidate evaluations run on
// whatever engine the caller's Config selects (event-driven by default),
// and AdaptiveAntiGreedy advances each phase's drain-and-catch-up stretch
// through the stepper's quiescent StepIdle jump.
package adversary
