package adversary

import (
	"fmt"
	"math/rand"

	"qswitch/internal/packet"
	"qswitch/internal/stats"
)

// HuntResult is the best adversarial instance found by a Hunt, plus enough
// provenance (the winning restart index) to make merging deterministic.
type HuntResult struct {
	// Seq is the best sequence found.
	Seq packet.Sequence
	// Ratio is the best OPT/ALG ratio achieved.
	Ratio float64
	// Restart is the index of the restart that found Seq; -1 in the empty
	// result (no restarts run yet).
	Restart int
	// Accepted counts improving mutations accepted by the winning restart.
	Accepted int
	// Tried counts mutations tried across all restarts merged so far.
	Tried int
}

// Hunt is Search with per-restart seeding: restart r hill-climbs with its
// own rand.Rand seeded opts.Seed + r, so restarts are independent of one
// another and of how they are batched. That independence is what makes
// hunts shardable — HuntRange chunks merged with MergeHunts reproduce
// Hunt's result byte-for-byte regardless of chunk boundaries, worker
// counts or retry history, which Search (one rng threaded through all
// restarts) cannot offer.
func Hunt(opts SearchOptions, eval Ratio) HuntResult {
	r1 := opts.Restarts
	if r1 < 1 {
		r1 = 1
	}
	return HuntRange(opts, eval, 0, r1)
}

// HuntRange runs the restarts [r0, r1) of the hunt named by opts and
// returns their best instance. Splitting [0, Restarts) into ranges and
// folding the results with MergeHunts yields exactly Hunt's result.
func HuntRange(opts SearchOptions, eval Ratio, r0, r1 int) HuntResult {
	if opts.MaxValue < 1 {
		opts.MaxValue = 1
	}
	best := emptyHunt()
	for r := r0; r < r1; r++ {
		rng := rand.New(rand.NewSource(opts.Seed + int64(r)))
		res := searchOnce(opts, eval, rng)
		best = MergeHunts(best, HuntResult{
			Seq: res.Seq, Ratio: res.Ratio, Restart: r,
			Accepted: res.Accepted, Tried: res.Tried,
		})
	}
	return best
}

// MergeHunts combines two hunt results: the higher ratio wins, ties go to
// the lower restart index, and Tried accumulates. The tie-break makes the
// fold order-independent, so chunked hunts merge deterministically.
func MergeHunts(a, b HuntResult) HuntResult {
	out := a
	if better(b, a) {
		out = b
	}
	out.Tried = a.Tried + b.Tried
	return out
}

// emptyHunt is the identity element of MergeHunts.
func emptyHunt() HuntResult { return HuntResult{Ratio: -1, Restart: -1} }

// Verdict is a confidence-annotated hunt conclusion. The witness half is
// certain: the judge is deterministic, so a found sequence with ratio r
// PROVES the policy's competitive ratio is >= r. The statistical half
// bounds what more hunting would buy: if R independent restarts all
// failed to beat r, then with confidence 1-delta the probability that one
// more restart improves on r is at most ImproveBound (rule of three /
// clean-sample bound: 1 - delta^(1/R)).
type Verdict struct {
	// Ratio is the proven counterexample ratio (the witness's).
	Ratio float64
	// Restarts is the number of independent restarts the bound is over.
	Restarts int
	// Confidence is 1-delta.
	Confidence float64
	// ImproveBound bounds P(a fresh restart beats Ratio) at Confidence.
	ImproveBound float64
}

// Verdict annotates the hunt result with the restart-exceedance bound at
// the given confidence (e.g. 0.95). restarts is the total number of
// independent restarts that produced the result (SearchOptions.Restarts,
// or the merged range width for sharded hunts).
func (h HuntResult) Verdict(restarts int, confidence float64) Verdict {
	return Verdict{
		Ratio:        h.Ratio,
		Restarts:     restarts,
		Confidence:   confidence,
		ImproveBound: stats.ExceedanceBound(int64(restarts), 1-confidence),
	}
}

// String renders the verdict in the paper-facing form, e.g.
// "counterexample ratio >= 1.2500 (proven witness); P(fresh restart
// improves) <= 0.0950 at 95% confidence (31 restarts)".
func (v Verdict) String() string {
	return fmt.Sprintf("counterexample ratio >= %.4f (proven witness); P(fresh restart improves) <= %.4f at %g%% confidence (%d restarts)",
		v.Ratio, v.ImproveBound, 100*v.Confidence, v.Restarts)
}

// better reports whether b beats a under the (ratio desc, restart asc)
// order; the empty result (Restart -1) loses to everything real.
func better(b, a HuntResult) bool {
	if b.Restart < 0 {
		return false
	}
	if a.Restart < 0 {
		return true
	}
	if b.Ratio != a.Ratio {
		return b.Ratio > a.Ratio
	}
	return b.Restart < a.Restart
}
