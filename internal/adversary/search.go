package adversary

import (
	"math/rand"

	"qswitch/internal/packet"
)

// newDetRand returns a deterministic rand.Rand for internal use by
// constructions that need arbitrary-but-fixed choices.
func newDetRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Ratio evaluates OPT(seq)/ALG(seq) for the Search fuzzer. Implementations
// must return the achieved ratio and whether the sequence was even valid
// for the target configuration (invalid mutants are discarded).
type Ratio func(seq packet.Sequence) (float64, bool)

// SearchOptions tunes the local-search fuzzer.
type SearchOptions struct {
	Inputs, Outputs int
	MaxSlots        int   // arrival slots available to the adversary
	MaxPackets      int   // sequence length budget
	MaxValue        int64 // 1 for the unit-value case
	Iterations      int
	Seed            int64
	// Restarts controls how many independent hill-climbs are run; the
	// best instance over all restarts wins.
	Restarts int
}

// SearchResult is the best adversarial instance found.
type SearchResult struct {
	Seq      packet.Sequence
	Ratio    float64
	Accepted int // improving mutations accepted
	Tried    int
}

// Search hill-climbs over arrival sequences to maximize the competitive
// ratio achieved against a policy. Mutations add, delete, or perturb
// single packets (arrival slot, ports, value). The fuzzer is a practical
// stand-in for an adaptive adversary: on micro instances with an exact
// offline solver it reliably rediscovers ratios close to the known lower
// bounds, while never exceeding the paper's upper bounds — which is
// exactly what the E8 experiment demonstrates.
func Search(opts SearchOptions, eval Ratio) SearchResult {
	if opts.Restarts < 1 {
		opts.Restarts = 1
	}
	if opts.MaxValue < 1 {
		opts.MaxValue = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var best SearchResult
	for r := 0; r < opts.Restarts; r++ {
		res := searchOnce(opts, eval, rng)
		if res.Ratio > best.Ratio {
			best = res
		}
		best.Tried += res.Tried
	}
	return best
}

func searchOnce(opts SearchOptions, eval Ratio, rng *rand.Rand) SearchResult {
	cur := randomSeq(opts, rng)
	curRatio, ok := eval(cur)
	for !ok {
		cur = randomSeq(opts, rng)
		curRatio, ok = eval(cur)
	}
	res := SearchResult{Seq: cur, Ratio: curRatio}
	for it := 0; it < opts.Iterations; it++ {
		res.Tried++
		cand := mutate(cur, opts, rng)
		r, ok := eval(cand)
		if !ok {
			continue
		}
		if r >= curRatio { // accept sideways moves to escape plateaus
			if r > curRatio {
				res.Accepted++
			}
			cur, curRatio = cand, r
			if r > res.Ratio {
				res.Ratio = r
				res.Seq = cand.Clone()
			}
		}
	}
	return res
}

func randomSeq(opts SearchOptions, rng *rand.Rand) packet.Sequence {
	n := 1 + rng.Intn(opts.MaxPackets)
	seq := make(packet.Sequence, 0, n)
	for k := 0; k < n; k++ {
		seq = append(seq, randomPacket(opts, rng))
	}
	return seq.Normalize()
}

func randomPacket(opts SearchOptions, rng *rand.Rand) packet.Packet {
	v := int64(1)
	if opts.MaxValue > 1 {
		v = 1 + rng.Int63n(opts.MaxValue)
	}
	return packet.Packet{
		Arrival: rng.Intn(opts.MaxSlots),
		In:      rng.Intn(opts.Inputs),
		Out:     rng.Intn(opts.Outputs),
		Value:   v,
	}
}

func mutate(seq packet.Sequence, opts SearchOptions, rng *rand.Rand) packet.Sequence {
	out := seq.Clone()
	op := rng.Intn(4)
	switch {
	case op == 0 && len(out) < opts.MaxPackets: // add
		out = append(out, randomPacket(opts, rng))
	case op == 1 && len(out) > 1: // delete
		k := rng.Intn(len(out))
		out = append(out[:k], out[k+1:]...)
	case op == 2 && len(out) > 0: // move in time
		k := rng.Intn(len(out))
		out[k].Arrival = rng.Intn(opts.MaxSlots)
	default: // redirect or revalue
		if len(out) == 0 {
			out = append(out, randomPacket(opts, rng))
			break
		}
		k := rng.Intn(len(out))
		switch rng.Intn(3) {
		case 0:
			out[k].In = rng.Intn(opts.Inputs)
		case 1:
			out[k].Out = rng.Intn(opts.Outputs)
		default:
			if opts.MaxValue > 1 {
				out[k].Value = 1 + rng.Int63n(opts.MaxValue)
			}
		}
	}
	return out.Normalize()
}
