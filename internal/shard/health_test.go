package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"

	"qswitch/internal/obs"
	"qswitch/internal/ratio"
)

func TestFrameVersionRange(t *testing.T) {
	// Both live protocol versions roundtrip through the codec.
	for v := byte(MinProtocolVersion); v <= ProtocolVersion; v++ {
		frame := appendFrameV(nil, v, ftHeartbeat, []byte(`{"chunks":1}`))
		ft, payload, _, err := readFrame(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("v%d: %v", v, err)
		}
		if ft != ftHeartbeat || string(payload) != `{"chunks":1}` {
			t.Fatalf("v%d: ft=%d payload=%q", v, ft, payload)
		}
	}
	// Versions outside [MinProtocolVersion, ProtocolVersion] are rejected
	// before the CRC is even checked.
	for _, v := range []byte{0, ProtocolVersion + 1} {
		frame := appendFrameV(nil, v, ftHeartbeat, nil)
		_, _, _, err := readFrame(bytes.NewReader(frame))
		if err == nil || !strings.Contains(err.Error(), "protocol version") {
			t.Fatalf("v%d: err = %v, want protocol version error", v, err)
		}
	}
}

func TestWorkerStatsPayloadRoundTrip(t *testing.T) {
	tr := &statsTracker{}
	tr.record(24, 2*time.Second)
	tr.record(8, 2*time.Second)
	payload := marshalMsg(tr.snapshot())
	var got WorkerStats
	if err := json.Unmarshal(payload, &got); err != nil {
		t.Fatalf("heartbeat payload does not decode: %v", err)
	}
	if got.Chunks != 2 || got.Units != 32 {
		t.Fatalf("stats = %+v, want 2 chunks / 32 units", got)
	}
	if got.UnitsPerSec != 8 {
		t.Errorf("UnitsPerSec = %v, want 8 (32 units over 4s busy)", got.UnitsPerSec)
	}
	if got.LastChunkMs != 2000 {
		t.Errorf("LastChunkMs = %v, want 2000", got.LastChunkMs)
	}
	// A v1 heartbeat has an empty payload; the coordinator must treat it
	// as "alive, no stats" — which is what noteBeat does with len()==0.
	if len(marshalMsg(WorkerStats{})) == 0 {
		t.Fatal("even zero stats marshal non-empty; emptiness is the v1 marker")
	}
}

// TestServeNegotiatesV1 handshakes at protocol version 1 and checks the
// worker frames the whole session — ack, heartbeats, result — at v1 with
// empty heartbeat payloads, the pre-telemetry wire format.
func TestServeNegotiatesV1(t *testing.T) {
	raw, w, _ := pipeSession(t, ServeOptions{HeartbeatEvery: time.Millisecond})
	var tee bytes.Buffer
	r := io.TeeReader(raw, &tee)

	hello := appendFrameV(nil, 1, ftHello, marshalMsg(helloMsg{Version: 1}))
	if _, err := w.Write(hello); err != nil {
		t.Fatal(err)
	}
	ft, payload, _, err := readFrame(r)
	if err != nil || ft != ftHelloAck {
		t.Fatalf("handshake: ft=%d err=%v", ft, err)
	}
	var ack helloMsg
	if err := json.Unmarshal(payload, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Version != 1 {
		t.Fatalf("ack version = %d, want the negotiated 1", ack.Version)
	}
	if got := tee.Bytes()[4]; got != 1 {
		t.Fatalf("ack framed at version %d, want 1", got)
	}

	req := microReq()
	req.K0, req.K1 = 0, 256
	msg, err := encodeRatioChunk(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(appendFrameV(nil, 1, ftRatioChunk, marshalMsg(msg))); err != nil {
		t.Fatal(err)
	}
	frameStart := tee.Len()
	for {
		ft, payload, n, err := readFrame(r)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if got := tee.Bytes()[frameStart+4]; got != 1 {
			t.Fatalf("worker sent a version-%d frame on a v1 session", got)
		}
		frameStart += n
		if ft == ftHeartbeat {
			if len(payload) != 0 {
				t.Fatalf("v1 heartbeat carries %d payload bytes, want 0", len(payload))
			}
			continue
		}
		if ft != ftResult {
			t.Fatalf("got frame type %d, want result", ft)
		}
		break
	}
}

// TestServeV2HeartbeatStats checks that on a current-version session the
// heartbeats sent while a later chunk executes carry the session's
// cumulative WorkerStats.
func TestServeV2HeartbeatStats(t *testing.T) {
	r, w, _ := pipeSession(t, ServeOptions{HeartbeatEvery: 50 * time.Microsecond})
	handshake(t, r, w)

	// sendChunk returns the stats from the last heartbeat seen while the
	// chunk ran, and whether any heartbeat fired at all (fast chunks can
	// finish inside one heartbeat period).
	sendChunk := func(k0, k1 int) (WorkerStats, bool) {
		t.Helper()
		req := microReq()
		req.K0, req.K1 = k0, k1
		msg, err := encodeRatioChunk(req)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(w, ftRatioChunk, marshalMsg(msg)); err != nil {
			t.Fatal(err)
		}
		var last WorkerStats
		beat := false
		for {
			ft, payload, _, err := readFrame(r)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			switch ft {
			case ftHeartbeat:
				if len(payload) == 0 {
					t.Fatal("v2 heartbeat with empty payload")
				}
				if err := json.Unmarshal(payload, &last); err != nil {
					t.Fatalf("heartbeat stats do not decode: %v", err)
				}
				beat = true
			case ftResult:
				return last, beat
			default:
				t.Fatalf("unexpected frame type %d", ft)
			}
		}
	}

	sendChunk(0, 8)
	// Heartbeats during later chunks must report the prior chunks' work.
	for attempt := 0; attempt < 50; attempt++ {
		k0 := 8 + attempt*512
		stats, beat := sendChunk(k0, k0+512)
		if !beat {
			continue
		}
		if stats.Chunks < 1 || stats.Units < 8 {
			t.Fatalf("heartbeat stats %+v, want >=1 chunk / >=8 units from prior chunks", stats)
		}
		return
	}
	t.Fatal("no heartbeat observed across 50 chunks")
}

// TestCoordinatorHealthAndMetrics runs a sharded estimation over real
// worker subprocesses with a metrics registry installed and checks the
// per-worker health table and labeled coordinator counters add up.
func TestCoordinatorHealthAndMetrics(t *testing.T) {
	const runs = 24
	reg := obs.NewRegistry()
	c := newTestCoordinator(t, CoordinatorOptions{
		Workers: workerSpecs(t, "", ""),
		Metrics: reg,
	})
	if _, err := ratio.RunSharded(context.Background(), c, microReq(), runs, 4); err != nil {
		t.Fatalf("RunSharded: %v", err)
	}

	health := c.Health()
	if len(health) != 2 {
		t.Fatalf("Health() has %d rows, want 2", len(health))
	}
	var done int64
	for _, h := range health {
		if h.Worker != 0 && h.Worker != 1 {
			t.Errorf("unexpected worker index %d", h.Worker)
		}
		if h.State != "serving" {
			t.Errorf("worker %d state = %q, want serving", h.Worker, h.State)
		}
		if h.Retries != 0 || h.Respawns != 0 {
			t.Errorf("worker %d: retries=%d respawns=%d, want 0/0 (no chaos)", h.Worker, h.Retries, h.Respawns)
		}
		done += h.ChunksDone
	}
	if done != 6 {
		t.Errorf("sum of ChunksDone = %d, want 6", done)
	}

	snap := reg.Snapshot()
	var counted float64
	for i := 0; i < 2; i++ {
		counted += snap[MetricShardWorkerChunks+`{worker="`+string(rune('0'+i))+`"}`]
	}
	if counted != 6 {
		t.Errorf("labeled chunk counters sum to %v, want 6; snapshot: %v", counted, snap)
	}
	// The registry must render as strictly parseable Prometheus text —
	// the same validation CI runs against a live qswitchd scrape.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ParsePrometheus(&buf); err != nil {
		t.Fatalf("coordinator registry is not parseable: %v", err)
	}
}
