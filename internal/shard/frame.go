package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
)

// The wire format is a stream of self-delimiting checksummed frames:
//
//	magic   [4]byte  "QSWF"
//	version uint8    ProtocolVersion
//	type    uint8    frameType
//	reserved uint16  zero
//	length  uint32   payload length in bytes
//	payload [length]byte (JSON message, empty for heartbeats)
//	crc     uint64   CRC64/ECMA over header+payload
//
// The same codec frames both the worker protocol and the coordinator's
// checkpoint log, so corruption anywhere — a chaos-flipped response bit, a
// torn checkpoint tail — is caught by the same CRC check.

// ProtocolVersion is the shard wire-format version this build speaks.
// Version history:
//
//	1: initial format; heartbeat frames carry no payload.
//	2: heartbeat frames may carry a WorkerStats JSON payload (empty
//	   payloads remain valid, so v1 peers stay readable).
//
// Peers negotiate down during the hello handshake: a session with a v1
// peer is framed at version 1 with empty heartbeats.
const ProtocolVersion = 2

// MinProtocolVersion is the oldest peer version still accepted; frames
// and hellos outside [MinProtocolVersion, ProtocolVersion] are rejected.
const MinProtocolVersion = 1

// maxFramePayload bounds a frame's payload so a corrupted length field
// cannot trigger an absurd allocation.
const maxFramePayload = 64 << 20

// frameHeaderLen is the fixed prefix before the payload; frameTrailerLen
// the CRC suffix.
const (
	frameHeaderLen  = 12
	frameTrailerLen = 8
)

var frameMagic = [4]byte{'Q', 'S', 'W', 'F'}

var crcTable = crc64.MakeTable(crc64.ECMA)

// frameType tags a frame's payload.
type frameType uint8

const (
	ftHello frameType = iota + 1
	ftHelloAck
	ftRatioChunk
	ftHuntChunk
	ftResult
	ftChunkError
	ftHeartbeat
	ftShutdown
	ftCheckpoint
)

// appendFrame appends one encoded frame at the current protocol version
// to dst and returns it.
func appendFrame(dst []byte, ft frameType, payload []byte) []byte {
	return appendFrameV(dst, ProtocolVersion, ft, payload)
}

// appendFrameV appends one encoded frame at an explicit version — the
// negotiated session version when talking to an older peer.
func appendFrameV(dst []byte, version byte, ft frameType, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, frameMagic[:]...)
	dst = append(dst, version, byte(ft), 0, 0)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	crc := crc64.Checksum(dst[start:], crcTable)
	return binary.BigEndian.AppendUint64(dst, crc)
}

// writeFrame encodes and writes one frame.
func writeFrame(w io.Writer, ft frameType, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("shard: frame payload %d bytes exceeds limit %d", len(payload), maxFramePayload)
	}
	_, err := w.Write(appendFrame(nil, ft, payload))
	return err
}

// readFrame reads and verifies one frame, returning its type, payload and
// total encoded size. io.EOF is returned verbatim when the stream ends
// cleanly on a frame boundary; any other failure (short read, bad magic,
// version skew, oversized length, CRC mismatch) is an error that poisons
// the stream — framing cannot be resynchronized, so callers must tear the
// connection down.
func readFrame(r io.Reader) (frameType, []byte, int, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, 0, io.EOF
		}
		return 0, nil, 0, fmt.Errorf("shard: short frame header: %w", err)
	}
	if [4]byte(hdr[:4]) != frameMagic {
		return 0, nil, 0, fmt.Errorf("shard: bad frame magic %x", hdr[:4])
	}
	if hdr[4] < MinProtocolVersion || hdr[4] > ProtocolVersion {
		return 0, nil, 0, fmt.Errorf("shard: protocol version %d, want %d..%d", hdr[4], MinProtocolVersion, ProtocolVersion)
	}
	n := binary.BigEndian.Uint32(hdr[8:12])
	if n > maxFramePayload {
		return 0, nil, 0, fmt.Errorf("shard: frame payload %d bytes exceeds limit %d", n, maxFramePayload)
	}
	body := make([]byte, int(n)+frameTrailerLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, 0, fmt.Errorf("shard: short frame body: %w", err)
	}
	crc := crc64.Checksum(hdr[:], crcTable)
	crc = crc64.Update(crc, crcTable, body[:n])
	if got := binary.BigEndian.Uint64(body[n:]); got != crc {
		return 0, nil, 0, fmt.Errorf("shard: frame checksum mismatch (got %016x, want %016x)", got, crc)
	}
	total := frameHeaderLen + int(n) + frameTrailerLen
	return frameType(hdr[5]), body[:n:n], total, nil
}
