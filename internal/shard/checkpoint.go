package shard

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// The checkpoint log is an append-only file of CRC-framed records, one per
// completed chunk, written with an fsync per append so a completed chunk
// survives a coordinator crash. A record maps a chunk's canonical spec
// bytes (its checkpoint key) to its verified result bytes. Loading
// tolerates a torn tail — a crash mid-append leaves a final partial frame,
// which is detected by the frame CRC and truncated away — so a restarted
// coordinator resumes from exactly the set of chunks that fully committed,
// re-executing only the rest.

// checkpointRecord is the JSON payload of one log frame.
type checkpointRecord struct {
	// Type is the chunk's request frame type (ratio or hunt chunk).
	Type uint8 `json:"type"`
	// Key is the chunk's canonical spec payload.
	Key json.RawMessage `json:"key"`
	// Result is the chunk's result payload.
	Result json.RawMessage `json:"result"`
}

// checkpointLog appends records to the log file. Appends are serialized
// and fsync'd before they are reported durable.
type checkpointLog struct {
	mu sync.Mutex
	f  *os.File
}

// ckptKey builds the in-memory cache key for a chunk: the request frame
// type joined with the canonical spec bytes.
func ckptKey(ft frameType, payload []byte) string {
	return string([]byte{byte(ft)}) + string(payload)
}

// openCheckpointLog opens (creating if needed) the log at path, replays
// the committed records into a key -> result map, truncates any torn tail
// and positions the file for appending.
func openCheckpointLog(path string) (*checkpointLog, map[string][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("shard: open checkpoint log: %w", err)
	}
	cache := map[string][]byte{}
	br := bufio.NewReader(f)
	var good int64
	for {
		ft, payload, n, err := readFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn tail (crash mid-append) or corruption: keep the committed
			// prefix, drop the rest.
			break
		}
		if ft != ftCheckpoint {
			break
		}
		var rec checkpointRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		cache[ckptKey(frameType(rec.Type), rec.Key)] = bytes.Clone(rec.Result)
		good += int64(n)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("shard: truncate checkpoint tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("shard: seek checkpoint log: %w", err)
	}
	return &checkpointLog{f: f}, cache, nil
}

// append commits one record: frame, write, fsync. The record is durable
// when append returns.
func (l *checkpointLog) append(ft frameType, key, result []byte) error {
	payload := marshalMsg(checkpointRecord{Type: uint8(ft), Key: key, Result: result})
	frame := appendFrame(nil, ftCheckpoint, payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("shard: append checkpoint: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("shard: sync checkpoint: %w", err)
	}
	return nil
}

// close closes the log file.
func (l *checkpointLog) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
