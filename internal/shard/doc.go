// Package shard is the crash-tolerant sharded experiment service: it
// distributes Monte-Carlo ratio estimations and adversary hunts over a
// fleet of qswitchd worker processes while guaranteeing results that are
// byte-identical to a single-process run, no matter what fails.
//
// The package has three tiers:
//
//   - A versioned, checksummed wire format (frame.go, spec.go): chunk
//     specs name a unit of work — switch config, policy and judge registry
//     specs, generator parameters, and a seed or restart range — in
//     canonical JSON inside CRC64-framed messages. Specs are pure data, so
//     a chunk executes identically wherever and whenever it runs; the
//     encoded spec doubles as the chunk's checkpoint key.
//
//   - A worker (worker.go, Executor in exec.go): qswitchd serves chunk
//     specs over stdio or TCP, heartbeating while it computes and caching
//     resolved policy fleets and judges per spec across its chunk stream.
//     Fault injection (qswitchd -chaos, internal/shard/faultinject) can
//     deterministically kill, hang, delay or bit-corrupt the worker per
//     request.
//
//   - A coordinator (coordinator.go): shards work over the fleet with
//     per-chunk deadlines and heartbeat supervision, retries transport
//     failures with bounded exponential backoff (chunks are deterministic,
//     so retries are always safe), respawns or excludes crashed workers,
//     falls back to in-process execution when no worker is reachable, and
//     appends completed chunks to a crash-safe fsync'd checkpoint log so a
//     killed coordinator resumes without recomputing. Corrupted responses
//     never reach a merge: the frame CRC rejects them and the chunk is
//     retried.
//
// Determinism is the load-bearing property: per-seed outcomes are pure
// functions of the chunk spec, merges are seed-ordered (ratio.RunSharded)
// or restart-ordered (adversary.MergeHunts), and error attribution is
// pinned to the lowest failing seed/chunk. Faults can therefore change
// only the execution schedule — never the result.
package shard
