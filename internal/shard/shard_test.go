package shard

// The integration tests here exercise the whole service tier with real
// worker subprocesses: the test binary re-execs itself as a qswitchd-style
// worker when QSWITCH_SHARD_WORKER=1 (see TestMain), so every test runs
// chunks across genuine process boundaries, under fault injection, exactly
// as the CLI deployment does — in ordinary `go test`, no external binaries
// needed.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"reflect"
	"testing"
	"time"

	"qswitch/internal/adversary"
	"qswitch/internal/experiments"
	"qswitch/internal/packet"
	"qswitch/internal/ratio"
	"qswitch/internal/shard/faultinject"
	"qswitch/internal/switchsim"
)

// TestMain re-execs as a shard worker when asked: the coordinator tests
// spawn this very test binary with QSWITCH_SHARD_WORKER=1 (and optionally
// QSWITCH_SHARD_CHAOS) in the environment, and it serves the stdio worker
// protocol instead of running tests.
func TestMain(m *testing.M) {
	if os.Getenv("QSWITCH_SHARD_WORKER") == "1" {
		inj, err := faultinject.ParseSpec(os.Getenv("QSWITCH_SHARD_CHAOS"))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := ServeStdio(ServeOptions{
			Chaos:          inj,
			HeartbeatEvery: 50 * time.Millisecond,
			HangFor:        5 * time.Second,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// workerSpecs builds n self-exec worker specs; chaos[i] (when non-empty)
// becomes worker i's fault-injection spec.
func workerSpecs(t testing.TB, chaos ...string) []WorkerSpec {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	specs := make([]WorkerSpec, len(chaos))
	for i, cs := range chaos {
		env := []string{"QSWITCH_SHARD_WORKER=1"}
		if cs != "" {
			env = append(env, "QSWITCH_SHARD_CHAOS="+cs)
		}
		specs[i] = WorkerSpec{Cmd: []string{exe}, Env: env}
	}
	return specs
}

// newTestCoordinator builds a coordinator with test-friendly timing and
// closes it with the test.
func newTestCoordinator(t testing.TB, opts CoordinatorOptions) *Coordinator {
	t.Helper()
	if opts.HeartbeatTimeout == 0 {
		opts.HeartbeatTimeout = 2 * time.Second
	}
	if opts.RetryBase == 0 {
		opts.RetryBase = 5 * time.Millisecond
	}
	if opts.RetryMax == 0 {
		opts.RetryMax = 50 * time.Millisecond
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// microCfg is a 2x2 switch small enough for the exact DP judge to be fast.
var microCfg = switchsim.Config{
	Inputs: 2, Outputs: 2,
	InputBuf: 2, OutputBuf: 2, CrossBuf: 1,
	Speedup: 1, Slots: 8,
}

var microGen = packet.Bernoulli{Load: 0.7}

// microReq names the canonical test estimation; K0/K1 are filled per chunk
// by RunSharded.
func microReq() ratio.ChunkRequest {
	return ratio.ChunkRequest{
		Cfg: microCfg, Policy: "gm", Judge: "exactunit",
		Gen: microGen, BaseSeed: 1,
	}
}

// microBaseline is the in-process sequential Run the sharded runs must
// reproduce byte-for-byte.
func microBaseline(t *testing.T, runs int) ratio.Estimate {
	t.Helper()
	alg, _, err := ResolvePolicy("gm", false)
	if err != nil {
		t.Fatalf("ResolvePolicy: %v", err)
	}
	judge, err := ResolveJudge("exactunit", false)
	if err != nil {
		t.Fatalf("ResolveJudge: %v", err)
	}
	want, err := ratio.Run(context.Background(), microCfg, alg, judge, microGen, 1, runs)
	if err != nil {
		t.Fatalf("baseline Run: %v", err)
	}
	return want
}

func TestShardedRatioMatchesRun(t *testing.T) {
	const runs = 24
	want := microBaseline(t, runs)
	c := newTestCoordinator(t, CoordinatorOptions{Workers: workerSpecs(t, "", "")})
	got, err := ratio.RunSharded(context.Background(), c, microReq(), runs, 4)
	if err != nil {
		t.Fatalf("RunSharded: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sharded estimate differs from sequential Run:\n got  %+v\n want %+v", got, want)
	}
	st := c.Stats()
	if st.ChunksExecuted != 6 {
		t.Errorf("ChunksExecuted = %d, want 6", st.ChunksExecuted)
	}
	if st.LocalChunks != 0 {
		t.Errorf("LocalChunks = %d, want 0 (workers were healthy)", st.LocalChunks)
	}
}

// TestShardedExperimentsMatchSingleProcess is the PR's acceptance test:
// E1–E4 sharded across two qswitchd worker processes must render the
// byte-identical tables a single-process run produces.
func TestShardedExperimentsMatchSingleProcess(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorOptions{Workers: workerSpecs(t, "", "")})
	for _, exp := range experiments.All() {
		switch exp.ID {
		case "e1", "e2", "e3", "e4":
		default:
			continue
		}
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			want := renderTables(t, exp, experiments.Options{Quick: true, Seed: 1})
			got := renderTables(t, exp, experiments.Options{Quick: true, Seed: 1, Shard: c, ShardChunk: 8})
			if got != want {
				t.Errorf("sharded %s tables differ from single-process:\n--- sharded ---\n%s\n--- single ---\n%s",
					exp.ID, got, want)
			}
		})
	}
}

func renderTables(t *testing.T, exp experiments.Experiment, opts experiments.Options) string {
	t.Helper()
	tables, err := exp.Run(opts)
	if err != nil {
		t.Fatalf("%s: %v", exp.ID, err)
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		tb.Render(&buf)
	}
	return buf.String()
}

// TestShardedChaosIdentity runs an estimation over a deliberately hostile
// fleet — one worker that always crashes, one that always corrupts its
// response frame, one that always hangs, and one that always delays — and
// demands the result still be byte-identical to the sequential run. The
// pure saboteurs fail every chunk they touch (the per-process chaos
// schedule restarts at request 0 on respawn), so the attempt budget must
// absorb at most (saboteurs) x (MaxRespawns+1) = 6 failures before every
// slot is excluded; the delay worker always completes, so the run can
// never starve.
func TestShardedChaosIdentity(t *testing.T) {
	const runs = 32
	want := microBaseline(t, runs)
	c := newTestCoordinator(t, CoordinatorOptions{
		Workers: workerSpecs(t,
			"seed=1,kill=1",
			"seed=2,corrupt=1",
			"seed=3,hang=1",
			"seed=4,delay=1,maxdelayms=30",
		),
		HeartbeatTimeout: 700 * time.Millisecond,
		MaxAttempts:      8,
		MaxRespawns:      1,
	})
	got, err := ratio.RunSharded(context.Background(), c, microReq(), runs, 2)
	if err != nil {
		t.Fatalf("RunSharded under chaos: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("chaotic sharded estimate differs from sequential Run:\n got  %+v\n want %+v", got, want)
	}
	st := c.Stats()
	if st.Retries == 0 {
		t.Errorf("Retries = 0, want > 0 (saboteur workers fail every chunk they receive)")
	}
	t.Logf("chaos stats: %+v", st)
}

// TestCheckpointResume simulates a coordinator crash and restart: a first
// coordinator completes a prefix of the workload against a checkpoint log,
// "crashes" (closes) with a torn partial record appended — as a crash
// mid-append would leave — and a second coordinator over the same log must
// answer the already-committed chunks from the checkpoint without
// re-executing them, finishing the rest to the byte-identical estimate.
func TestCheckpointResume(t *testing.T) {
	path := t.TempDir() + "/checkpoint.qswf"

	// Phase 1: run the first 12 seeds (3 chunks of 4) and "crash".
	c1 := newTestCoordinator(t, CoordinatorOptions{
		Workers: workerSpecs(t, ""), CheckpointPath: path,
	})
	if _, err := ratio.RunSharded(context.Background(), c1, microReq(), 12, 4); err != nil {
		t.Fatalf("phase 1 RunSharded: %v", err)
	}
	if err := c1.Close(); err != nil {
		t.Fatalf("phase 1 Close: %v", err)
	}

	// The crash tore a partial frame onto the tail of the log.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open checkpoint: %v", err)
	}
	if _, err := f.Write([]byte("QSWF\x01torn-partial-append")); err != nil {
		t.Fatalf("append torn tail: %v", err)
	}
	f.Close()

	// Phase 2: a fresh coordinator resumes over the same log and extends the
	// workload to 24 seeds (6 chunks): the 3 committed chunks must be
	// checkpoint hits, the rest executed.
	c2 := newTestCoordinator(t, CoordinatorOptions{
		Workers: workerSpecs(t, ""), CheckpointPath: path,
	})
	got, err := ratio.RunSharded(context.Background(), c2, microReq(), 24, 4)
	if err != nil {
		t.Fatalf("phase 2 RunSharded: %v", err)
	}
	want := microBaseline(t, 24)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed estimate differs from sequential Run:\n got  %+v\n want %+v", got, want)
	}
	st := c2.Stats()
	if st.CheckpointHits != 3 {
		t.Errorf("CheckpointHits = %d, want 3", st.CheckpointHits)
	}
	if st.ChunksExecuted != 3 {
		t.Errorf("ChunksExecuted = %d, want 3", st.ChunksExecuted)
	}
}

// TestLocalFallbackIdentity exercises graceful degradation: when no worker
// slot is reachable the coordinator executes chunks in process — through
// the same encoded specs a worker would receive — and the estimate is
// still byte-identical.
func TestLocalFallbackIdentity(t *testing.T) {
	const runs = 12
	want := microBaseline(t, runs)
	c := newTestCoordinator(t, CoordinatorOptions{
		Workers: []WorkerSpec{
			{Cmd: []string{"/nonexistent/qswitchd-for-shard-test"}},
			{Cmd: []string{"/nonexistent/qswitchd-for-shard-test"}},
		},
		MaxRespawns: 1,
	})
	got, err := ratio.RunSharded(context.Background(), c, microReq(), runs, 4)
	if err != nil {
		t.Fatalf("RunSharded: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("local-fallback estimate differs from sequential Run:\n got  %+v\n want %+v", got, want)
	}
	st := c.Stats()
	if st.LocalChunks != 3 {
		t.Errorf("LocalChunks = %d, want 3", st.LocalChunks)
	}
	if st.Excluded != 2 {
		t.Errorf("Excluded = %d, want 2", st.Excluded)
	}
}

// TestZeroWorkersRunsLocally: a coordinator configured with no workers at
// all serves chunks in process from the start.
func TestZeroWorkersRunsLocally(t *testing.T) {
	const runs = 8
	want := microBaseline(t, runs)
	c := newTestCoordinator(t, CoordinatorOptions{})
	got, err := ratio.RunSharded(context.Background(), c, microReq(), runs, 4)
	if err != nil {
		t.Fatalf("RunSharded: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("no-worker estimate differs from sequential Run:\n got  %+v\n want %+v", got, want)
	}
	if st := c.Stats(); st.LocalChunks != 2 {
		t.Errorf("LocalChunks = %d, want 2", st.LocalChunks)
	}
}

func TestShardedTCPWorkers(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go ServeTCP(ln, ServeOptions{HeartbeatEvery: 50 * time.Millisecond})

	const runs = 16
	want := microBaseline(t, runs)
	addr := ln.Addr().String()
	c := newTestCoordinator(t, CoordinatorOptions{
		Workers: []WorkerSpec{{Addr: addr}, {Addr: addr}},
	})
	got, err := ratio.RunSharded(context.Background(), c, microReq(), runs, 4)
	if err != nil {
		t.Fatalf("RunSharded over TCP: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TCP sharded estimate differs from sequential Run:\n got  %+v\n want %+v", got, want)
	}
}

// TestShardedHuntMatchesHunt: a hunt sharded over two worker processes
// must reproduce adversary.Hunt byte-for-byte, including the winning
// sequence and its provenance.
func TestShardedHuntMatchesHunt(t *testing.T) {
	req := HuntRequest{
		Cfg:    switchsim.Config{Inputs: 2, Outputs: 2, InputBuf: 2, OutputBuf: 2, CrossBuf: 1, Speedup: 1},
		Policy: "gm", Judge: "exactunit",
		Search: adversary.SearchOptions{
			Inputs: 2, Outputs: 2, MaxSlots: 4, MaxPackets: 5, MaxValue: 1,
			Iterations: 60, Seed: 11, Restarts: 5,
		},
	}
	eval, err := HuntEval(req.Cfg, req.Crossbar, req.Policy, req.Judge)
	if err != nil {
		t.Fatalf("HuntEval: %v", err)
	}
	want := adversary.Hunt(req.Search, eval)

	c := newTestCoordinator(t, CoordinatorOptions{Workers: workerSpecs(t, "", "")})
	got, err := c.Hunt(context.Background(), req, 2)
	if err != nil {
		t.Fatalf("Hunt: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sharded hunt differs from adversary.Hunt:\n got  %+v\n want %+v", got, want)
	}
}

// TestErrorAttributionParity is satellite 3: a Judge or Alg injected to
// fail on one specific seed's sequence must surface the identical error —
// same text, same seed — from Run, RunParallel (any workers), RunFleet
// (any batch) and RunSharded (real worker subprocesses, where the batched
// fleet rejection must fall back to pin the true failing seed).
func TestErrorAttributionParity(t *testing.T) {
	const baseSeed, runs = 100, 10
	const targetSeed = baseSeed + 6
	rng := rand.New(rand.NewSource(targetSeed))
	seq := microGen.Generate(rng, microCfg.Inputs, microCfg.Outputs, microCfg.Slots)
	fp := SequenceFingerprint(seq)
	for k := int64(0); k < runs; k++ {
		if s := baseSeed + k; s != targetSeed {
			other := microGen.Generate(rand.New(rand.NewSource(s)), microCfg.Inputs, microCfg.Outputs, microCfg.Slots)
			if SequenceFingerprint(other) == fp {
				t.Fatalf("fingerprint collision between seeds %d and %d", s, targetSeed)
			}
		}
	}

	cases := []struct {
		name, policy, judge, wantErr string
	}{
		{
			name:    "failing-policy",
			policy:  fmt.Sprintf("failpolicy(fp=%d)", fp),
			judge:   "exactunit",
			wantErr: fmt.Sprintf("ratio: seed %d: policy run: injected policy failure (fp=%d)", targetSeed, fp),
		},
		{
			name:    "failing-judge",
			policy:  "gm",
			judge:   fmt.Sprintf("failjudge(fp=%d)", fp),
			wantErr: fmt.Sprintf("ratio: seed %d: offline optimum: injected judge failure (fp=%d)", targetSeed, fp),
		},
	}
	coord := newTestCoordinator(t, CoordinatorOptions{Workers: workerSpecs(t, "", "")})
	ctx := context.Background()
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			alg, fleet, err := ResolvePolicy(tc.policy, false)
			if err != nil {
				t.Fatalf("ResolvePolicy: %v", err)
			}
			judge, err := ResolveJudge(tc.judge, false)
			if err != nil {
				t.Fatalf("ResolveJudge: %v", err)
			}
			backends := map[string]func() error{
				"Run": func() error {
					_, err := ratio.Run(ctx, microCfg, alg, judge, microGen, baseSeed, runs)
					return err
				},
				"RunParallel": func() error {
					_, err := ratio.RunParallel(ctx, microCfg, alg, judge, microGen, baseSeed, runs, 3)
					return err
				},
				"RunFleet": func() error {
					_, err := ratio.RunFleet(ctx, microCfg, fleet, judge, microGen, baseSeed, runs, 2, 4)
					return err
				},
				"RunSharded": func() error {
					req := ratio.ChunkRequest{
						Cfg: microCfg, Policy: tc.policy, Judge: tc.judge,
						Gen: microGen, BaseSeed: baseSeed,
					}
					_, err := ratio.RunSharded(ctx, coord, req, runs, 3)
					return err
				},
			}
			for name, run := range backends {
				err := run()
				if err == nil {
					t.Errorf("%s: no error, want %q", name, tc.wantErr)
					continue
				}
				if err.Error() != tc.wantErr {
					t.Errorf("%s error = %q, want %q", name, err.Error(), tc.wantErr)
				}
			}
		})
	}
}

// TestChunkErrorNotRetried: deterministic chunk failures (an unknown
// policy spec) must fail immediately, not burn the retry budget.
func TestChunkErrorNotRetried(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorOptions{Workers: workerSpecs(t, "")})
	req := microReq()
	req.Policy = "no-such-policy"
	_, err := ratio.RunSharded(context.Background(), c, req, 4, 4)
	if err == nil {
		t.Fatal("no error for unknown policy spec")
	}
	if st := c.Stats(); st.Retries != 0 {
		t.Errorf("Retries = %d, want 0 (deterministic failures are terminal)", st.Retries)
	}
}

func TestCoordinatorClosedRejectsChunks(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorOptions{})
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, err := c.RatioChunk(context.Background(), func() ratio.ChunkRequest {
		r := microReq()
		r.K1 = 2
		return r
	}())
	if err == nil {
		t.Fatal("RatioChunk on closed coordinator succeeded")
	}
}

func TestCoordinatorRejectsBadWorkerSpec(t *testing.T) {
	for _, ws := range []WorkerSpec{{}, {Cmd: []string{"x"}, Addr: "y"}} {
		if _, err := NewCoordinator(CoordinatorOptions{Workers: []WorkerSpec{ws}}); err == nil {
			t.Errorf("NewCoordinator accepted spec %+v", ws)
		}
	}
}

// TestContextCancelPromptlyAborts: a cancelled context must abort a
// sharded run with the context's error even while workers are unreachable
// and chunks are stuck in retry loops.
func TestContextCancelPromptlyAborts(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorOptions{
		Workers:     []WorkerSpec{{Cmd: []string{"/nonexistent/qswitchd-for-shard-test"}}},
		MaxRespawns: 1000, // keep the slot retrying so nothing ever executes
		RetryBase:   time.Second,
		RetryMax:    time.Second,
	})
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := ratio.RunSharded(ctx, c, microReq(), 8, 4)
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunSharded did not return after cancel")
	}
}
