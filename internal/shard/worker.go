package shard

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"qswitch/internal/obs"
	"qswitch/internal/shard/faultinject"
)

// ServeOptions tunes a worker's serve loop.
type ServeOptions struct {
	// Chaos injects deterministic faults per chunk request; nil disables
	// fault injection.
	Chaos *faultinject.Injector
	// HeartbeatEvery is the heartbeat period while a chunk executes
	// (default 250ms; the coordinator's HeartbeatTimeout should be a
	// comfortable multiple).
	HeartbeatEvery time.Duration
	// HangFor bounds the Hang fault's stall before the process exits, so a
	// hung worker the supervisor cannot kill (TCP mode) does not leak
	// forever (default 10 minutes).
	HangFor time.Duration
	// Exit replaces os.Exit for the Kill and Hang faults (tests only).
	Exit func(code int)
	// Logf receives serve-loop diagnostics; nil discards them.
	Logf func(format string, args ...any)
	// Metrics, when set, receives the worker-side counters
	// (qswitch_worker_chunks_total, _units_total, _chunk_seconds) — the
	// registry a qswitchd -metrics-addr endpoint serves.
	Metrics *obs.Registry
}

func (o ServeOptions) heartbeatEvery() time.Duration {
	if o.HeartbeatEvery > 0 {
		return o.HeartbeatEvery
	}
	return 250 * time.Millisecond
}

func (o ServeOptions) hangFor() time.Duration {
	if o.HangFor > 0 {
		return o.HangFor
	}
	return 10 * time.Minute
}

func (o ServeOptions) exit(code int) {
	if o.Exit != nil {
		o.Exit(code)
		return
	}
	os.Exit(code)
}

func (o ServeOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// ServeStdio serves the worker protocol over stdin/stdout — the transport
// a coordinator-spawned qswitchd uses.
func ServeStdio(opts ServeOptions) error {
	return Serve(os.Stdin, os.Stdout, opts)
}

// ServeTCP accepts connections and serves each in its own goroutine until
// the listener closes. Chaos kills still terminate the whole process —
// that is the point of the fault.
func ServeTCP(ln net.Listener, opts ServeOptions) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		go func() {
			defer conn.Close()
			if err := Serve(conn, conn, opts); err != nil {
				opts.logf("shard: conn %v: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// Serve runs one worker protocol session: hello handshake, then a loop of
// chunk requests, each answered with a result or chunk-error frame while
// heartbeats flow. It returns nil when the peer shuts the session down
// (shutdown frame or clean EOF) and the transport error otherwise.
//
// The executor persists across the whole session, so resolved policy
// fleets and judges stay warm between chunks from the same coordinator.
func Serve(r io.Reader, w io.Writer, opts ServeOptions) error {
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	var wmu sync.Mutex
	// ver is the negotiated session version: ProtocolVersion until the
	// hello handshake proves the peer older. It is written only from the
	// serve loop before any chunk runs, so the heartbeat goroutine reads
	// it race-free.
	ver := byte(ProtocolVersion)
	writeRaw := func(frame []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		if _, err := bw.Write(frame); err != nil {
			return err
		}
		return bw.Flush()
	}
	write := func(ft frameType, payload []byte) error {
		return writeRaw(appendFrameV(nil, ver, ft, payload))
	}

	tel := &workerTelemetry{
		tr:           &statsTracker{},
		chunks:       opts.Metrics.Counter(MetricWorkerChunks),
		units:        opts.Metrics.Counter(MetricWorkerUnits),
		chunkSeconds: opts.Metrics.Histogram(MetricWorkerChunkSeconds, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60),
	}
	exec := NewExecutor()
	for {
		ft, payload, _, err := readFrame(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch ft {
		case ftHello:
			var hello helloMsg
			if err := json.Unmarshal(payload, &hello); err != nil {
				return fmt.Errorf("shard: bad hello: %w", err)
			}
			if hello.Version < MinProtocolVersion || hello.Version > ProtocolVersion {
				return fmt.Errorf("shard: peer protocol version %d, want %d..%d", hello.Version, MinProtocolVersion, ProtocolVersion)
			}
			// Frame the whole session (this ack included) at the peer's
			// version; v1 peers reject anything newer.
			ver = byte(hello.Version)
			if err := write(ftHelloAck, marshalMsg(helloMsg{Version: hello.Version, PID: os.Getpid()})); err != nil {
				return err
			}
		case ftShutdown:
			return nil
		case ftRatioChunk, ftHuntChunk:
			if err := serveChunk(exec, ft, payload, opts, tel, ver, write, writeRaw); err != nil {
				return err
			}
		case ftHeartbeat:
			// Peers do not heartbeat toward workers; ignore.
		default:
			return fmt.Errorf("shard: unexpected frame type %d", ft)
		}
	}
}

// workerTelemetry bundles one serve session's stats tracker with the
// optional registry-backed counters (nil-safe when ServeOptions.Metrics
// is unset).
type workerTelemetry struct {
	tr           *statsTracker
	chunks       *obs.Counter
	units        *obs.Counter
	chunkSeconds *obs.Histogram
}

// serveChunk executes one chunk request, applying the chaos plan drawn
// for it and heartbeating while the evaluation runs. On v2 sessions the
// heartbeats carry the session's WorkerStats so the coordinator can tell
// a slow worker from a dead one *and* see how fast it is going.
func serveChunk(exec *Executor, ft frameType, payload []byte, opts ServeOptions,
	tel *workerTelemetry, ver byte,
	write func(frameType, []byte) error, writeRaw func([]byte) error) error {
	v2 := ver >= 2
	plan := opts.Chaos.Next()
	switch plan.Action {
	case faultinject.Kill:
		opts.logf("shard: chaos kill")
		opts.exit(3)
		return fmt.Errorf("shard: chaos kill did not exit")
	case faultinject.Hang:
		// No heartbeats: the supervisor's heartbeat timeout must fire. The
		// bounded stall keeps unkillable (TCP) workers from leaking forever.
		opts.logf("shard: chaos hang")
		time.Sleep(opts.hangFor())
		opts.exit(4)
		return fmt.Errorf("shard: chaos hang did not exit")
	case faultinject.Delay:
		opts.logf("shard: chaos delay %v", plan.Delay)
		time.Sleep(plan.Delay)
	}

	// Heartbeat while the chunk executes so slow chunks are distinguishable
	// from dead workers.
	stop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(opts.heartbeatEvery())
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				var stats []byte
				if v2 {
					stats = marshalMsg(tel.tr.snapshot())
				}
				if err := write(ftHeartbeat, stats); err != nil {
					return
				}
			}
		}
	}()

	t0 := time.Now()
	resFT, resPayload, units := executeChunk(exec, ft, payload)
	elapsed := time.Since(t0)
	close(stop)
	hbWG.Wait()
	tel.tr.record(units, elapsed)
	tel.chunks.Inc()
	tel.units.Add(units)
	tel.chunkSeconds.Observe(elapsed.Seconds())

	frame := appendFrameV(nil, ver, resFT, resPayload)
	if plan.Action == faultinject.Corrupt {
		// Flip one payload bit after the CRC was computed: the receiver's
		// checksum check must reject the frame.
		opts.logf("shard: chaos corrupt")
		if n := len(frame); n > 0 {
			bit := plan.CorruptBit % (n * 8)
			frame[bit/8] ^= 1 << (bit % 8)
		}
	}
	return writeRaw(frame)
}

// executeChunk decodes and runs one chunk, mapping deterministic failures
// to a chunk-error frame. units reports the work done — seeds for ratio
// chunks, restarts for hunt chunks, 0 on failure — feeding the telemetry
// trackers.
func executeChunk(exec *Executor, ft frameType, payload []byte) (_ frameType, _ []byte, units int64) {
	fail := func(err error) (frameType, []byte, int64) {
		return ftChunkError, marshalMsg(chunkErrorMsg{Msg: err.Error()}), 0
	}
	switch ft {
	case ftRatioChunk:
		var msg ratioChunkMsg
		if err := json.Unmarshal(payload, &msg); err != nil {
			return fail(fmt.Errorf("shard: bad ratio chunk spec: %w", err))
		}
		res, err := exec.RatioChunk(&msg)
		if err != nil {
			return fail(err)
		}
		return ftResult, marshalMsg(res), int64(msg.K1 - msg.K0)
	default:
		var msg huntChunkMsg
		if err := json.Unmarshal(payload, &msg); err != nil {
			return fail(fmt.Errorf("shard: bad hunt chunk spec: %w", err))
		}
		res, err := exec.HuntChunk(&msg)
		if err != nil {
			return fail(err)
		}
		return ftResult, marshalMsg(res), int64(msg.R1 - msg.R0)
	}
}
