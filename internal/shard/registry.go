package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"sort"
	"strconv"
	"strings"

	"qswitch/internal/core"
	"qswitch/internal/packet"
	"qswitch/internal/ratio"
	"qswitch/internal/switchsim"
)

// The registry maps policy and judge spec strings — "gm", "pg(beta=2.41)",
// "cpg(beta=13.8,alpha=15.9)", "exactunit" — to executable objects. Spec
// strings are the only way algorithms cross the process boundary: the
// coordinator ships the string, the worker resolves it here, and because
// the same resolver backs the coordinator's in-process fallback, local and
// remote execution are behaviorally identical by construction.
//
// The grammar is name or name(key=value,...), keys lowercase, values
// floats formatted with strconv 'g'/-1 so they round-trip exactly.

// ParsePolicySpec splits a spec string into its name and parameter map.
func ParsePolicySpec(spec string) (string, map[string]float64, error) {
	name, rest, found := strings.Cut(spec, "(")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", nil, fmt.Errorf("shard: empty spec %q", spec)
	}
	if !found {
		return name, nil, nil
	}
	body, ok := strings.CutSuffix(rest, ")")
	if !ok {
		return "", nil, fmt.Errorf("shard: unterminated parameter list in spec %q", spec)
	}
	params := map[string]float64{}
	for _, kv := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return "", nil, fmt.Errorf("shard: bad parameter %q in spec %q (want key=value)", kv, spec)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return "", nil, fmt.Errorf("shard: bad value for %q in spec %q: %v", k, spec, err)
		}
		params[strings.TrimSpace(k)] = f
	}
	return name, params, nil
}

// take pops a parameter, returning def when absent.
func take(params map[string]float64, key string, def float64) float64 {
	if v, ok := params[key]; ok {
		delete(params, key)
		return v
	}
	return def
}

// leftover rejects unknown parameters so typos fail loudly instead of
// silently running the default parameterization.
func leftover(spec string, params map[string]float64) error {
	if len(params) == 0 {
		return nil
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return fmt.Errorf("shard: unknown parameters %v in spec %q", keys, spec)
}

// ResolvePolicy resolves a policy spec for the given switch model,
// returning both the scalar Alg and the batched FleetAlgFactory so every
// execution backend can be driven from one resolution.
func ResolvePolicy(spec string, crossbar bool) (ratio.Alg, ratio.FleetAlgFactory, error) {
	name, params, err := ParsePolicySpec(spec)
	if err != nil {
		return nil, nil, err
	}
	if name == "failpolicy" {
		fp := uint64(take(params, "fp", 0))
		if err := leftover(spec, params); err != nil {
			return nil, nil, err
		}
		alg, fleet := failPolicy(fp, crossbar)
		return alg, fleet, nil
	}
	if crossbar {
		f, err := crossbarFactory(name, spec, params)
		if err != nil {
			return nil, nil, err
		}
		return ratio.CrossbarAlg(f), ratio.CrossbarFleetAlg(f), nil
	}
	f, err := cioqFactory(name, spec, params)
	if err != nil {
		return nil, nil, err
	}
	return ratio.CIOQAlg(f), ratio.CIOQFleetAlg(f), nil
}

// cioqFactory resolves the CIOQ policy families.
func cioqFactory(name, spec string, params map[string]float64) (func() switchsim.CIOQPolicy, error) {
	var f func() switchsim.CIOQPolicy
	switch name {
	case "gm":
		f = func() switchsim.CIOQPolicy { return &core.GM{} }
	case "gm-colmajor":
		f = func() switchsim.CIOQPolicy { return &core.GM{Order: core.ColMajor} }
	case "gm-rotating":
		f = func() switchsim.CIOQPolicy { return &core.GM{Order: core.Rotating} }
	case "gm-longestfirst":
		f = func() switchsim.CIOQPolicy { return &core.GM{Order: core.LongestFirst} }
	case "pg":
		beta := take(params, "beta", 0)
		f = func() switchsim.CIOQPolicy { return &core.PG{Beta: beta} }
	case "krmwm":
		beta := take(params, "beta", 0)
		f = func() switchsim.CIOQPolicy { return &core.KRMWM{Beta: beta} }
	case "roundrobin":
		f = func() switchsim.CIOQPolicy { return &core.RoundRobin{} }
	case "naivefifo":
		f = func() switchsim.CIOQPolicy { return &core.NaiveFIFO{} }
	default:
		return nil, fmt.Errorf("shard: unknown CIOQ policy spec %q", spec)
	}
	return f, leftover(spec, params)
}

// crossbarFactory resolves the buffered-crossbar policy families.
func crossbarFactory(name, spec string, params map[string]float64) (func() switchsim.CrossbarPolicy, error) {
	var f func() switchsim.CrossbarPolicy
	switch name {
	case "cgu":
		f = func() switchsim.CrossbarPolicy { return &core.CGU{} }
	case "cgu-rotating":
		f = func() switchsim.CrossbarPolicy { return &core.CGU{RotatePick: true} }
	case "cpg":
		beta := take(params, "beta", 0)
		alpha := take(params, "alpha", 0)
		f = func() switchsim.CrossbarPolicy { return &core.CPG{Beta: beta, Alpha: alpha} }
	case "kksfifo":
		f = func() switchsim.CrossbarPolicy { return &core.KKSFIFO{} }
	case "crossbar-naive":
		f = func() switchsim.CrossbarPolicy { return &core.CrossbarNaive{} }
	default:
		return nil, fmt.Errorf("shard: unknown crossbar policy spec %q", spec)
	}
	return f, leftover(spec, params)
}

// ResolveJudge resolves a judge spec for the given switch model.
func ResolveJudge(spec string, crossbar bool) (ratio.JudgeFactory, error) {
	name, params, err := ParsePolicySpec(spec)
	if err != nil {
		return nil, err
	}
	switch name {
	case "exactunit":
		if err := leftover(spec, params); err != nil {
			return nil, err
		}
		if crossbar {
			return ratio.ExactUnitCrossbar, nil
		}
		return ratio.ExactUnitCIOQ, nil
	case "exactweighted":
		if err := leftover(spec, params); err != nil {
			return nil, err
		}
		if crossbar {
			return ratio.ExactWeightedCrossbar, nil
		}
		return ratio.ExactWeightedCIOQ, nil
	case "upperbound":
		if err := leftover(spec, params); err != nil {
			return nil, err
		}
		if crossbar {
			return ratio.UpperBoundCrossbar, nil
		}
		return ratio.UpperBoundCIOQ, nil
	case "failjudge":
		fp := uint64(take(params, "fp", 0))
		if err := leftover(spec, params); err != nil {
			return nil, err
		}
		return failJudge(fp, crossbar), nil
	default:
		return nil, fmt.Errorf("shard: unknown judge spec %q", spec)
	}
}

// SequenceFingerprint names a sequence content-addressably: a CRC64 over
// its packets, folded below 2^30 so the fingerprint survives the float64
// parameter grammar exactly. It exists for the failpolicy/failjudge test
// hooks, which must trip on one specific seed's sequence in every backend
// — in-process, batched, or on a remote worker.
func SequenceFingerprint(seq packet.Sequence) uint64 {
	buf := make([]byte, 0, 40*len(seq))
	for _, p := range seq {
		buf = binary.BigEndian.AppendUint64(buf, uint64(p.ID))
		buf = binary.BigEndian.AppendUint64(buf, uint64(p.Arrival))
		buf = binary.BigEndian.AppendUint64(buf, uint64(p.In))
		buf = binary.BigEndian.AppendUint64(buf, uint64(p.Out))
		buf = binary.BigEndian.AppendUint64(buf, uint64(p.Value))
	}
	return crc64.Checksum(buf, crcTable) % (1 << 30)
}

// failPolicy is the "failpolicy(fp=N)" test hook: it behaves exactly like
// the model's baseline greedy policy except that any sequence whose
// fingerprint equals fp fails with a deterministic error. The scalar and
// batched forms produce the identical error text — the batched form
// rejects whole batches, relying on EvalChunk's single-sequence fallback
// to pin the failure to its true seed, which is precisely the attribution
// path the tests exercise.
func failPolicy(fp uint64, crossbar bool) (ratio.Alg, ratio.FleetAlgFactory) {
	var inner ratio.Alg
	var innerFleet ratio.FleetAlgFactory
	if crossbar {
		f := func() switchsim.CrossbarPolicy { return &core.CGU{} }
		inner, innerFleet = ratio.CrossbarAlg(f), ratio.CrossbarFleetAlg(f)
	} else {
		f := func() switchsim.CIOQPolicy { return &core.GM{} }
		inner, innerFleet = ratio.CIOQAlg(f), ratio.CIOQFleetAlg(f)
	}
	failErr := func() error { return fmt.Errorf("injected policy failure (fp=%d)", fp) }
	alg := func(cfg switchsim.Config, seq packet.Sequence) (int64, error) {
		if SequenceFingerprint(seq) == fp {
			return 0, failErr()
		}
		return inner(cfg, seq)
	}
	fleet := func() ratio.FleetAlg {
		fa := innerFleet()
		return func(cfg switchsim.Config, seqs []packet.Sequence) ([]int64, error) {
			for _, s := range seqs {
				if SequenceFingerprint(s) == fp {
					return nil, failErr()
				}
			}
			return fa(cfg, seqs)
		}
	}
	return alg, fleet
}

// failJudge is the "failjudge(fp=N)" test hook: the model's exact
// unit-value judge, except sequences with fingerprint fp fail
// deterministically.
func failJudge(fp uint64, crossbar bool) ratio.JudgeFactory {
	base := ratio.ExactUnitCIOQ
	if crossbar {
		base = ratio.ExactUnitCrossbar
	}
	return func() ratio.Judge {
		inner := base()
		return ratio.JudgeFunc(func(cfg switchsim.Config, seq packet.Sequence) (int64, error) {
			if SequenceFingerprint(seq) == fp {
				return 0, fmt.Errorf("injected judge failure (fp=%d)", fp)
			}
			return inner.Judge(cfg, seq)
		})
	}
}
