package shard

import (
	"bytes"
	"os"
	"testing"
)

func TestCheckpointLogRoundTrip(t *testing.T) {
	path := t.TempDir() + "/log.qswf"
	l, cache, err := openCheckpointLog(path)
	if err != nil {
		t.Fatalf("open fresh: %v", err)
	}
	if len(cache) != 0 {
		t.Errorf("fresh log has %d cached records", len(cache))
	}
	if err := l.append(ftRatioChunk, []byte(`{"k":1}`), []byte(`{"r":1}`)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.append(ftHuntChunk, []byte(`{"k":2}`), []byte(`{"r":2}`)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, cache, err := openCheckpointLog(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.close()
	if len(cache) != 2 {
		t.Fatalf("reopened cache has %d records, want 2", len(cache))
	}
	if got := cache[ckptKey(ftRatioChunk, []byte(`{"k":1}`))]; !bytes.Equal(got, []byte(`{"r":1}`)) {
		t.Errorf("record 1 result = %q", got)
	}
	if got := cache[ckptKey(ftHuntChunk, []byte(`{"k":2}`))]; !bytes.Equal(got, []byte(`{"r":2}`)) {
		t.Errorf("record 2 result = %q", got)
	}
	// The same key under a different frame type must be a distinct record.
	if _, ok := cache[ckptKey(ftRatioChunk, []byte(`{"k":2}`))]; ok {
		t.Error("hunt record visible under ratio key")
	}
}

// TestCheckpointLogTruncatesTornTail: a crash mid-append leaves a partial
// final frame; reopening must keep the committed prefix, drop the tail,
// and leave the file positioned so later appends commit cleanly.
func TestCheckpointLogTruncatesTornTail(t *testing.T) {
	path := t.TempDir() + "/log.qswf"
	l, _, err := openCheckpointLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.append(ftRatioChunk, []byte(`{"k":1}`), []byte(`{"r":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}
	goodSize := fileSize(t, path)

	// Simulate the torn append.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	whole := appendFrame(nil, ftCheckpoint, marshalMsg(checkpointRecord{
		Type: uint8(ftRatioChunk), Key: []byte(`{"k":2}`), Result: []byte(`{"r":2}`),
	}))
	if _, err := f.Write(whole[:len(whole)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, cache, err := openCheckpointLog(path)
	if err != nil {
		t.Fatalf("reopen torn log: %v", err)
	}
	if len(cache) != 1 {
		t.Errorf("torn log replayed %d records, want 1", len(cache))
	}
	if got := fileSize(t, path); got != goodSize {
		t.Errorf("torn tail not truncated: size %d, want %d", got, goodSize)
	}
	// Appends after recovery must land after the good prefix and replay.
	if err := l2.append(ftRatioChunk, []byte(`{"k":3}`), []byte(`{"r":3}`)); err != nil {
		t.Fatal(err)
	}
	if err := l2.close(); err != nil {
		t.Fatal(err)
	}
	l3, cache, err := openCheckpointLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.close()
	if len(cache) != 2 {
		t.Errorf("after recovery+append, replayed %d records, want 2", len(cache))
	}
}

// TestCheckpointLogStopsAtCorruption: a bit flip inside a committed frame
// invalidates that frame and everything after it, never yielding a bad
// record.
func TestCheckpointLogStopsAtCorruption(t *testing.T) {
	path := t.TempDir() + "/log.qswf"
	l, _, err := openCheckpointLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := byte('a'); i < 'd'; i++ {
		if err := l.append(ftRatioChunk, []byte{'{', '"', i, '"', ':', '1', '}'}, []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte in the middle record.
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, cache, err := openCheckpointLog(path)
	if err != nil {
		t.Fatalf("reopen corrupted log: %v", err)
	}
	defer l2.close()
	if len(cache) >= 3 {
		t.Fatalf("corrupted log replayed %d records, want < 3", len(cache))
	}
	for _, res := range cache {
		if !bytes.Equal(res, []byte(`{}`)) {
			t.Errorf("corrupted record surfaced: %q", res)
		}
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
