package shard

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte(`{"a":1}`), nil, bytes.Repeat([]byte("x"), 4096)}
	types := []frameType{ftHello, ftHeartbeat, ftResult}
	for i, p := range payloads {
		if err := writeFrame(&buf, types[i], p); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i, p := range payloads {
		ft, got, n, err := readFrame(r)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if ft != types[i] {
			t.Errorf("frame %d: type %d, want %d", i, ft, types[i])
		}
		if !bytes.Equal(got, p) {
			t.Errorf("frame %d: payload mismatch", i)
		}
		if want := frameHeaderLen + len(p) + frameTrailerLen; n != want {
			t.Errorf("frame %d: size %d, want %d", i, n, want)
		}
	}
	if _, _, _, err := readFrame(r); err != io.EOF {
		t.Errorf("after last frame: err = %v, want io.EOF", err)
	}
}

// TestFrameDetectsEveryBitFlip is the checksum guarantee the chaos
// Corrupt fault relies on: no single-bit corruption of an encoded frame
// may decode successfully.
func TestFrameDetectsEveryBitFlip(t *testing.T) {
	frame := appendFrame(nil, ftResult, []byte(`{"seeds":[{"seed":7,"ratio":1.5}]}`))
	for bit := 0; bit < len(frame)*8; bit++ {
		mut := bytes.Clone(frame)
		mut[bit/8] ^= 1 << (bit % 8)
		_, _, _, err := readFrame(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("bit flip at %d decoded successfully", bit)
		}
	}
}

func TestFrameTruncation(t *testing.T) {
	frame := appendFrame(nil, ftResult, []byte("payload"))
	for cut := 1; cut < len(frame); cut++ {
		_, _, _, err := readFrame(bytes.NewReader(frame[:cut]))
		if err == nil || err == io.EOF {
			t.Fatalf("truncation at %d bytes: err = %v, want decode error", cut, err)
		}
	}
}

func TestFrameRejectsVersionSkew(t *testing.T) {
	frame := appendFrame(nil, ftHello, []byte(`{}`))
	frame[4]++ // bump version; CRC now also mismatches, but version is checked first
	_, _, _, err := readFrame(bytes.NewReader(frame))
	if err == nil || !strings.Contains(err.Error(), "protocol version") {
		t.Fatalf("err = %v, want protocol version error", err)
	}
}

func TestFrameRejectsOversizedLength(t *testing.T) {
	frame := appendFrame(nil, ftResult, []byte("p"))
	frame[8], frame[9], frame[10], frame[11] = 0xff, 0xff, 0xff, 0xff
	_, _, _, err := readFrame(bytes.NewReader(frame))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("err = %v, want payload limit error", err)
	}
}
