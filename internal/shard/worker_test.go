package shard

import (
	"encoding/json"
	"io"
	"reflect"
	"testing"
	"time"

	"qswitch/internal/ratio"
)

// pipeSession drives Serve in process over pipes, returning the client's
// ends and a channel carrying Serve's return.
func pipeSession(t *testing.T, opts ServeOptions) (io.Reader, io.Writer, chan error) {
	t.Helper()
	toWorkerR, toWorkerW := io.Pipe()
	fromWorkerR, fromWorkerW := io.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- Serve(toWorkerR, fromWorkerW, opts)
		fromWorkerW.Close()
	}()
	t.Cleanup(func() {
		toWorkerW.Close()
		toWorkerR.Close()
	})
	return fromWorkerR, toWorkerW, done
}

func handshake(t *testing.T, r io.Reader, w io.Writer) {
	t.Helper()
	if err := writeFrame(w, ftHello, marshalMsg(helloMsg{Version: ProtocolVersion})); err != nil {
		t.Fatalf("send hello: %v", err)
	}
	ft, _, _, err := readFrame(r)
	if err != nil || ft != ftHelloAck {
		t.Fatalf("handshake: ft=%d err=%v", ft, err)
	}
}

// TestServeAnswersRatioChunk drives one chunk through the worker protocol
// in process and checks the outcomes equal a direct EvalChunk.
func TestServeAnswersRatioChunk(t *testing.T) {
	r, w, done := pipeSession(t, ServeOptions{HeartbeatEvery: 10 * time.Millisecond})
	handshake(t, r, w)

	req := microReq()
	req.K0, req.K1 = 0, 4
	msg, err := encodeRatioChunk(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(w, ftRatioChunk, marshalMsg(msg)); err != nil {
		t.Fatal(err)
	}
	// Skip heartbeats until the result lands.
	var payload []byte
	for {
		ft, p, _, err := readFrame(r)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if ft == ftHeartbeat {
			continue
		}
		if ft != ftResult {
			t.Fatalf("got frame type %d, want result", ft)
		}
		payload = p
		break
	}
	var res ratioResultMsg
	if err := json.Unmarshal(payload, &res); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	got := decodeOutcomes(&res)

	_, fleet, err := ResolvePolicy("gm", false)
	if err != nil {
		t.Fatal(err)
	}
	judge, err := ResolveJudge("exactunit", false)
	if err != nil {
		t.Fatal(err)
	}
	want := ratio.EvalChunk(microCfg, fleet(), judge(), microGen, 1, 0, 4, nil)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("served outcomes differ from direct EvalChunk:\n got  %+v\n want %+v", got, want)
	}

	// Clean shutdown: the worker returns nil.
	if err := writeFrame(w, ftShutdown, nil); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Errorf("Serve returned %v after shutdown, want nil", err)
	}
}

func TestServeRejectsVersionSkew(t *testing.T) {
	_, w, done := pipeSession(t, ServeOptions{})
	if err := writeFrame(w, ftHello, marshalMsg(helloMsg{Version: ProtocolVersion + 1})); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("Serve accepted a mismatched protocol version")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not reject the version skew")
	}
}

func TestServeChunkErrorForBadSpec(t *testing.T) {
	r, w, _ := pipeSession(t, ServeOptions{})
	handshake(t, r, w)
	req := microReq()
	req.Policy = "no-such-policy"
	req.K1 = 1
	msg, err := encodeRatioChunk(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(w, ftRatioChunk, marshalMsg(msg)); err != nil {
		t.Fatal(err)
	}
	for {
		ft, payload, _, err := readFrame(r)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if ft == ftHeartbeat {
			continue
		}
		if ft != ftChunkError {
			t.Fatalf("got frame type %d, want chunk error", ft)
		}
		var ce chunkErrorMsg
		if err := json.Unmarshal(payload, &ce); err != nil {
			t.Fatal(err)
		}
		if ce.Msg == "" {
			t.Error("empty chunk error message")
		}
		return
	}
}
