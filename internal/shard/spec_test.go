package shard

import (
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"qswitch/internal/packet"
	"qswitch/internal/ratio"
)

// TestGenCodecRoundTrip: every catalog generator must survive
// encode -> JSON -> decode field-identically, so a worker draws exactly
// the coordinator's workloads.
func TestGenCodecRoundTrip(t *testing.T) {
	gens := []packet.Generator{
		packet.Bernoulli{Load: 0.9},
		packet.Bernoulli{Load: 0.55, Values: packet.UnitValues{}},
		packet.Hotspot{Load: 0.8, HotOut: 1, HotFrac: 0.6, Values: packet.TwoValued{Alpha: 7, PHigh: 0.25}},
		packet.Diagonal{Load: 0.7, OffFrac: 0.125, Values: packet.UniformValues{Hi: 100}},
		packet.Bursty{OnLoad: 0.95, POnOff: 0.1, POffOn: 0.3, Uniform: true, Values: packet.ZipfValues{Hi: 64, S: 1.25}},
		packet.Permutation{Load: 0.85, Values: packet.GeometricValues{P: 0.5, Hi: 32}},
		packet.PoissonBurst{OffMean: 40, BurstMean: 4.5},
		packet.Diurnal{Load: 0.3, Period: 200, Amplitude: 0.9},
		packet.HeavyTail{Alpha: 1.5, MinGap: 2.25},
		packet.BurstyBlocking{OffMean: 30, Burst: 16, Fanin: 4,
			Values: packet.BimodalValues{LowHi: 4, HighLo: 90, HighHi: 110, PHigh: 0.05}},
		packet.CrossDrain{OffMean: 45, Sweep: 8, Depth: 2, Values: packet.UniformValues{Hi: 50}},
		packet.Fixed{Label: "handcrafted", Seq: packet.Sequence{{Arrival: 0, In: 0, Out: 1, Value: 3, ID: 0}}},
	}
	for _, g := range gens {
		gs, err := encodeGen(g)
		if err != nil {
			t.Errorf("encodeGen(%T): %v", g, err)
			continue
		}
		// Through JSON, as the wire would carry it.
		var wire genSpec
		if err := json.Unmarshal(marshalMsg(gs), &wire); err != nil {
			t.Errorf("json round trip %T: %v", g, err)
			continue
		}
		got, err := decodeGen(wire)
		if err != nil {
			t.Errorf("decodeGen(%T): %v", g, err)
			continue
		}
		if !reflect.DeepEqual(got, g) {
			t.Errorf("generator round trip:\n got  %#v\n want %#v", got, g)
		}
	}
}

func TestGenCodecRejectsUnknown(t *testing.T) {
	if _, err := encodeGen(nil); err == nil {
		t.Error("encodeGen(nil) succeeded")
	}
	if _, err := decodeGen(genSpec{Type: "no-such-generator"}); err == nil {
		t.Error("decodeGen of unknown type succeeded")
	}
	if _, err := decodeValues(&valueSpec{Type: "no-such-dist"}); err == nil {
		t.Error("decodeValues of unknown type succeeded")
	}
	// An unregistered ValueDist is tagged at encode and must fail at decode.
	gs, err := encodeGen(packet.Bernoulli{Load: 0.5, Values: oddDist{}})
	if err != nil {
		t.Fatalf("encodeGen with odd dist: %v", err)
	}
	if _, err := decodeGen(gs); err == nil {
		t.Error("decodeGen of unknown value distribution succeeded")
	}
}

type oddDist struct{}

func (oddDist) Name() string              { return "odd" }
func (oddDist) Sample(_ *rand.Rand) int64 { return 1 }
func (oddDist) Max() int64                { return 1 }

// TestEncodeRatioChunkFailsFast: a generator that cannot cross the
// process boundary must be rejected before any dispatch.
func TestEncodeRatioChunkFailsFast(t *testing.T) {
	_, err := encodeRatioChunk(ratio.ChunkRequest{Gen: nil})
	if err == nil {
		t.Fatal("encodeRatioChunk with nil generator succeeded")
	}
}

func TestOutcomeCodecRoundTrip(t *testing.T) {
	outs := []ratio.SeedOutcome{
		{Seed: 1, Ratio: 1.25},
		{Seed: 2, Skipped: true},
		{Seed: 3, Err: errors.New("offline optimum: boom")},
	}
	msg := encodeOutcomes(outs)
	var wire ratioResultMsg
	if err := json.Unmarshal(marshalMsg(msg), &wire); err != nil {
		t.Fatalf("json round trip: %v", err)
	}
	got := decodeOutcomes(&wire)
	if len(got) != len(outs) {
		t.Fatalf("got %d outcomes, want %d", len(got), len(outs))
	}
	if got[0] != (ratio.SeedOutcome{Seed: 1, Ratio: 1.25}) {
		t.Errorf("outcome 0 = %+v", got[0])
	}
	if got[1] != (ratio.SeedOutcome{Seed: 2, Skipped: true}) {
		t.Errorf("outcome 1 = %+v", got[1])
	}
	if got[2].Err == nil || got[2].Err.Error() != "offline optimum: boom" {
		t.Errorf("outcome 2 error = %v, want the original text", got[2].Err)
	}
}

// TestCanonicalEncoding: the checkpoint key is the encoded spec, so
// encoding the same request twice must yield identical bytes.
func TestCanonicalEncoding(t *testing.T) {
	req := microReq()
	req.K0, req.K1 = 4, 8
	a, err := encodeRatioChunk(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := encodeRatioChunk(req)
	if err != nil {
		t.Fatal(err)
	}
	if string(marshalMsg(a)) != string(marshalMsg(b)) {
		t.Error("encoding the same chunk request twice produced different bytes")
	}
}
