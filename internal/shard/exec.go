package shard

import (
	"fmt"

	"qswitch/internal/adversary"
	"qswitch/internal/packet"
	"qswitch/internal/ratio"
	"qswitch/internal/switchsim"
)

// Executor evaluates decoded chunk specs. It is the one execution engine
// behind both qswitchd workers and the coordinator's in-process fallback,
// so "execute remotely" and "execute locally" are the same code path fed
// the same decoded spec. Resolved policy fleets and judges are cached per
// spec — the PR 5 reuse discipline — so a worker's storage stays warm
// across its whole chunk stream. An Executor is not safe for concurrent
// use; callers serialize (workers handle one chunk at a time).
type Executor struct {
	algs   map[execKey]ratio.FleetAlg
	judges map[execKey]ratio.Judge
	outs   []ratio.SeedOutcome
}

type execKey struct {
	spec     string
	crossbar bool
}

// NewExecutor builds an empty executor.
func NewExecutor() *Executor {
	return &Executor{
		algs:   map[execKey]ratio.FleetAlg{},
		judges: map[execKey]ratio.Judge{},
	}
}

// RatioChunk evaluates the seeds [K0, K1) named by the spec. Per-seed
// failures travel inside the results; the error return is reserved for
// spec-resolution failures, which are deterministic and must not be
// retried.
func (e *Executor) RatioChunk(msg *ratioChunkMsg) (*ratioResultMsg, error) {
	a, err := e.alg(msg.Policy, msg.Crossbar)
	if err != nil {
		return nil, err
	}
	j, err := e.judge(msg.Judge, msg.Crossbar)
	if err != nil {
		return nil, err
	}
	gen, err := decodeGen(msg.Gen)
	if err != nil {
		return nil, err
	}
	if msg.K0 < 0 || msg.K1 < msg.K0 {
		return nil, fmt.Errorf("shard: bad seed range [%d, %d)", msg.K0, msg.K1)
	}
	e.outs = ratio.EvalChunk(msg.Cfg, a, j, gen, msg.BaseSeed, msg.K0, msg.K1, e.outs)
	return encodeOutcomes(e.outs), nil
}

// HuntChunk runs the restarts [R0, R1) of the adversary hunt named by the
// spec.
func (e *Executor) HuntChunk(msg *huntChunkMsg) (*huntResultMsg, error) {
	eval, err := HuntEval(msg.Cfg, msg.Crossbar, msg.Policy, msg.Judge)
	if err != nil {
		return nil, err
	}
	if msg.R0 < 0 || msg.R1 < msg.R0 {
		return nil, fmt.Errorf("shard: bad restart range [%d, %d)", msg.R0, msg.R1)
	}
	res := adversary.HuntRange(msg.Search, eval, msg.R0, msg.R1)
	return &huntResultMsg{
		Seq: res.Seq, Ratio: res.Ratio, Restart: res.Restart,
		Accepted: res.Accepted, Tried: res.Tried,
	}, nil
}

// alg resolves and caches a policy spec's fleet alg.
func (e *Executor) alg(spec string, crossbar bool) (ratio.FleetAlg, error) {
	k := execKey{spec, crossbar}
	if a, ok := e.algs[k]; ok {
		return a, nil
	}
	_, fleet, err := ResolvePolicy(spec, crossbar)
	if err != nil {
		return nil, err
	}
	a := fleet()
	e.algs[k] = a
	return a, nil
}

// judge resolves and caches a judge spec's judge.
func (e *Executor) judge(spec string, crossbar bool) (ratio.Judge, error) {
	k := execKey{spec, crossbar}
	if j, ok := e.judges[k]; ok {
		return j, nil
	}
	factory, err := ResolveJudge(spec, crossbar)
	if err != nil {
		return nil, err
	}
	j := factory()
	e.judges[k] = j
	return j, nil
}

// HuntEval builds the adversary fitness function for a (cfg, policy,
// judge) triple: OPT/ALG on valid sequences, with invalid or failing
// candidates discarded. Every hunt backend — adversary.Hunt in process,
// chunked hunts on workers — evaluates candidates through exactly this
// closure, which is what makes sharded hunts byte-identical to local
// ones.
func HuntEval(cfg switchsim.Config, crossbar bool, policy, judge string) (adversary.Ratio, error) {
	alg, _, err := ResolvePolicy(policy, crossbar)
	if err != nil {
		return nil, err
	}
	factory, err := ResolveJudge(judge, crossbar)
	if err != nil {
		return nil, err
	}
	j := factory()
	return func(seq packet.Sequence) (float64, bool) {
		if err := seq.Validate(cfg.Inputs, cfg.Outputs); err != nil {
			return 0, false
		}
		r, ok, err := ratio.Single(cfg, alg, j, seq)
		if err != nil {
			return 0, false
		}
		return r, ok
	}, nil
}
