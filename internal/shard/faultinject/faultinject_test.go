package faultinject

import (
	"testing"
	"time"
)

// TestScheduleDeterminism: two injectors with the same spec must draw the
// identical plan sequence — chaotic runs replay exactly.
func TestScheduleDeterminism(t *testing.T) {
	a := New(7, 0.1, 0.1, 0.3, 0.2)
	b := New(7, 0.1, 0.1, 0.3, 0.2)
	for i := 0; i < 200; i++ {
		pa, pb := a.Next(), b.Next()
		if pa != pb {
			t.Fatalf("plan %d diverged: %+v vs %+v", i, pa, pb)
		}
	}
}

func TestScheduleMixesActions(t *testing.T) {
	in := New(7, 0.1, 0.1, 0.3, 0.2)
	counts := map[Action]int{}
	for i := 0; i < 500; i++ {
		counts[in.Next().Action]++
	}
	for _, a := range []Action{None, Kill, Hang, Delay, Corrupt} {
		if counts[a] == 0 {
			t.Errorf("action %v never drawn in 500 plans", a)
		}
	}
}

func TestDegenerateProbabilities(t *testing.T) {
	kill := New(1, 1, 0, 0, 0)
	for i := 0; i < 20; i++ {
		if p := kill.Next(); p.Action != Kill {
			t.Fatalf("plan %d: %v, want kill", i, p.Action)
		}
	}
	none := New(1, 0, 0, 0, 0)
	for i := 0; i < 20; i++ {
		if p := none.Next(); p.Action != None {
			t.Fatalf("plan %d: %v, want none", i, p.Action)
		}
	}
}

func TestNilInjectorIsNoFault(t *testing.T) {
	var in *Injector
	if p := in.Next(); p != (Plan{}) {
		t.Errorf("nil injector drew %+v", p)
	}
}

func TestParseSpec(t *testing.T) {
	in, err := ParseSpec("seed=7,kill=0.05,hang=0.02,delay=0.2,corrupt=0.1,maxdelayms=20")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	want := New(7, 0.05, 0.02, 0.2, 0.1)
	want.maxDelay = 20 * time.Millisecond
	for i := 0; i < 100; i++ {
		if got, exp := in.Next(), want.Next(); got != exp {
			t.Fatalf("plan %d: parsed spec draws %+v, equivalent New draws %+v", i, got, exp)
		}
	}
}

func TestParseSpecEmptyDisablesChaos(t *testing.T) {
	in, err := ParseSpec("  ")
	if err != nil {
		t.Fatalf("ParseSpec(blank): %v", err)
	}
	if in != nil {
		t.Error("blank spec built an injector")
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"kill", "kill=2", "kill=-0.1", "kill=x",
		"seed=abc", "maxdelayms=-5", "unknown=1",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", spec)
		}
	}
}

func TestActionString(t *testing.T) {
	for a, want := range map[Action]string{
		None: "none", Kill: "kill", Hang: "hang", Delay: "delay", Corrupt: "corrupt",
	} {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
	}
	if Action(99).String() == "" {
		t.Error("out-of-range action has empty String")
	}
}

// TestDelayBounded: delay plans respect the configured cap.
func TestDelayBounded(t *testing.T) {
	in := New(3, 0, 0, 1, 0)
	in.maxDelay = 5 * time.Millisecond
	for i := 0; i < 100; i++ {
		p := in.Next()
		if p.Action != Delay {
			t.Fatalf("plan %d: %v, want delay", i, p.Action)
		}
		if p.Delay < 0 || p.Delay > 5*time.Millisecond {
			t.Fatalf("plan %d: delay %v out of [0, 5ms]", i, p.Delay)
		}
	}
}
