// Package faultinject supplies the deterministic chaos schedule behind
// qswitchd's -chaos flag: given a seed and per-fault probabilities, it
// decides — reproducibly, per chunk request — whether the worker should
// crash, hang, delay its reply or bit-corrupt its response frame. The
// schedule is a pure function of (seed, request index), so a chaotic run
// can be replayed exactly, and because coordinator retries re-execute
// deterministic chunks, chaos perturbs only the execution schedule, never
// the merged results. The injector is exercised in ordinary `go test`
// runs (see internal/shard's chaos tests) as well as from the CLI.
package faultinject

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Action is the fault chosen for one request.
type Action int

const (
	// None leaves the request undisturbed.
	None Action = iota
	// Kill exits the worker process before replying.
	Kill
	// Hang suppresses heartbeats and stalls until the supervisor gives up.
	Hang
	// Delay sleeps before executing (heartbeats keep flowing).
	Delay
	// Corrupt flips one bit in the response frame after its checksum is
	// computed, so the receiver's CRC check must catch it.
	Corrupt
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case None:
		return "none"
	case Kill:
		return "kill"
	case Hang:
		return "hang"
	case Delay:
		return "delay"
	case Corrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Plan is one request's fault decision.
type Plan struct {
	Action Action
	// Delay is how long to stall (Delay action only).
	Delay time.Duration
	// CorruptBit selects which response bit to flip (Corrupt action only);
	// the worker reduces it modulo the frame length.
	CorruptBit int
}

// Injector draws fault plans from a seeded schedule. The n-th Next call
// returns the same plan for the same (seed, probabilities, n), regardless
// of timing, so chaotic runs replay exactly. Next is safe for concurrent
// use.
type Injector struct {
	seed     int64
	pKill    float64
	pHang    float64
	pDelay   float64
	pCorrupt float64
	maxDelay time.Duration

	mu sync.Mutex
	n  int64
}

// New builds an injector with the given per-request fault probabilities
// (each in [0, 1]; they are tried in kill, hang, delay, corrupt order
// against a single uniform draw, so their sum should stay <= 1).
func New(seed int64, pKill, pHang, pDelay, pCorrupt float64) *Injector {
	return &Injector{
		seed: seed, pKill: pKill, pHang: pHang, pDelay: pDelay, pCorrupt: pCorrupt,
		maxDelay: 50 * time.Millisecond,
	}
}

// ParseSpec parses the -chaos flag grammar: comma-separated k=v pairs with
// keys seed (int), kill, hang, delay, corrupt (probabilities in [0,1]) and
// maxdelayms (the delay fault's cap, in milliseconds). Example:
//
//	seed=7,kill=0.05,hang=0.02,delay=0.2,corrupt=0.1,maxdelayms=20
//
// An empty spec yields a nil injector (chaos off).
func ParseSpec(spec string) (*Injector, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	in := New(1, 0, 0, 0, 0)
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: bad spec term %q (want k=v)", kv)
		}
		switch k {
		case "seed":
			s, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q: %v", v, err)
			}
			in.seed = s
		case "maxdelayms":
			ms, err := strconv.ParseInt(v, 10, 64)
			if err != nil || ms < 0 {
				return nil, fmt.Errorf("faultinject: bad maxdelayms %q", v)
			}
			in.maxDelay = time.Duration(ms) * time.Millisecond
		case "kill", "hang", "delay", "corrupt":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("faultinject: bad probability %s=%q", k, v)
			}
			switch k {
			case "kill":
				in.pKill = p
			case "hang":
				in.pHang = p
			case "delay":
				in.pDelay = p
			case "corrupt":
				in.pCorrupt = p
			}
		default:
			return nil, fmt.Errorf("faultinject: unknown spec key %q", k)
		}
	}
	return in, nil
}

// Next draws the plan for the next request. A nil injector always returns
// the no-fault plan, so callers need not guard the chaos-off case.
func (in *Injector) Next() Plan {
	if in == nil {
		return Plan{}
	}
	in.mu.Lock()
	n := in.n
	in.n++
	in.mu.Unlock()
	return in.planAt(n)
}

// planAt computes request n's plan; it is the pure function Next exposes
// statefully.
func (in *Injector) planAt(n int64) Plan {
	// Mix the request index into the seed (splitmix-style odd constant) so
	// consecutive requests draw decorrelated streams.
	mix := int64(uint64(n+1) * 0x9e3779b97f4a7c15)
	rng := rand.New(rand.NewSource(in.seed ^ mix))
	u := rng.Float64()
	switch {
	case u < in.pKill:
		return Plan{Action: Kill}
	case u < in.pKill+in.pHang:
		return Plan{Action: Hang}
	case u < in.pKill+in.pHang+in.pDelay:
		d := time.Duration(rng.Int63n(int64(in.maxDelay) + 1))
		return Plan{Action: Delay, Delay: d}
	case u < in.pKill+in.pHang+in.pDelay+in.pCorrupt:
		return Plan{Action: Corrupt, CorruptBit: rng.Intn(1 << 30)}
	default:
		return Plan{}
	}
}
