package shard

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"qswitch/internal/packet"
	"qswitch/internal/ratio"
	"qswitch/internal/switchsim"
)

// The BenchmarkShardedRatio* family measures what the service tier costs:
// the same upper-bound-judged Monte-Carlo ratio estimation run through a
// coordinator with N live qswitchd-style worker processes versus the
// in-process ratio.RunFleet path at the same parallelism. QSWITCH_SHARD_LOCAL=1
// selects the in-process baseline (BENCH_6.json); unset, chunks travel the
// full encode -> stdio -> worker -> decode -> merge loop (BENCH_6_post.json).
// Worker processes are spawned once per benchmark, outside the timed
// region, so the numbers are steady-state dispatch + serialization +
// compute, not process startup.

// benchCfg is large enough that each chunk carries real simulation and
// judging work, so the overhead measurement is in the regime the service
// is for.
var benchCfg = switchsim.Config{
	Inputs: 8, Outputs: 8,
	InputBuf: 4, OutputBuf: 4, CrossBuf: 1,
	Speedup: 1, Slots: 256,
}

var benchGen = packet.Bernoulli{Load: 0.9}

const (
	benchRuns  = 64
	benchChunk = 4
)

func benchShardLocal() bool { return os.Getenv("QSWITCH_SHARD_LOCAL") == "1" }

func benchmarkShardedRatio(b *testing.B, workers int) {
	req := ratio.ChunkRequest{
		Cfg: benchCfg, Policy: "gm", Judge: "upperbound",
		Gen: benchGen, BaseSeed: 1,
	}
	ctx := context.Background()
	var estimate func(baseSeed int64) (ratio.Estimate, error)
	if benchShardLocal() {
		_, fleet, err := ResolvePolicy(req.Policy, req.Crossbar)
		if err != nil {
			b.Fatal(err)
		}
		judge, err := ResolveJudge(req.Judge, req.Crossbar)
		if err != nil {
			b.Fatal(err)
		}
		estimate = func(baseSeed int64) (ratio.Estimate, error) {
			return ratio.RunFleet(ctx, benchCfg, fleet, judge, benchGen,
				baseSeed, benchRuns, workers, benchChunk)
		}
	} else {
		c := newTestCoordinator(b, CoordinatorOptions{
			Workers: workerSpecs(b, make([]string, workers)...),
		})
		estimate = func(baseSeed int64) (ratio.Estimate, error) {
			r := req
			r.BaseSeed = baseSeed
			return ratio.RunSharded(ctx, c, r, benchRuns, benchChunk)
		}
	}
	// Warm the workers (and the fleet storage) before timing.
	if _, err := estimate(1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := estimate(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardedRatioW1(b *testing.B) { benchmarkShardedRatio(b, 1) }
func BenchmarkShardedRatioW2(b *testing.B) { benchmarkShardedRatio(b, 2) }
func BenchmarkShardedRatioW4(b *testing.B) { benchmarkShardedRatio(b, 4) }

// BenchmarkShardedChunkCodec isolates the wire cost of one chunk spec:
// encode + CRC framing + JSON parse + generator rebuild, no execution.
func BenchmarkShardedChunkCodec(b *testing.B) {
	req := ratio.ChunkRequest{
		Cfg: benchCfg, Policy: "gm", Judge: "upperbound",
		Gen: benchGen, BaseSeed: 1, K0: 0, K1: benchChunk,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		msg, err := encodeRatioChunk(req)
		if err != nil {
			b.Fatal(err)
		}
		frame := appendFrame(nil, ftRatioChunk, marshalMsg(msg))
		if len(frame) == 0 {
			b.Fatal("empty frame")
		}
		var wire ratioChunkMsg
		if err := json.Unmarshal(marshalMsg(msg), &wire); err != nil {
			b.Fatal(err)
		}
		if _, err := decodeGen(wire.Gen); err != nil {
			b.Fatal(err)
		}
	}
}
