package shard

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"qswitch/internal/adversary"
	"qswitch/internal/obs"
	"qswitch/internal/ratio"
	"qswitch/internal/switchsim"
)

// ErrClosed is returned for chunks submitted to a closed coordinator.
var ErrClosed = errors.New("shard: coordinator closed")

// WorkerSpec names one worker slot: either a command to spawn (stdio
// protocol over its pipes) or a TCP address to dial. Exactly one of Cmd
// and Addr must be set.
type WorkerSpec struct {
	// Cmd spawns a worker subprocess speaking the stdio protocol, e.g.
	// {"qswitchd"} or {"qswitchd", "-chaos", "seed=1,kill=0.1"}.
	Cmd []string
	// Env appends extra environment variables ("K=V") to a spawned
	// worker's inherited environment.
	Env []string
	// Addr dials an already-running qswitchd -listen worker.
	Addr string
}

// CoordinatorOptions tunes supervision, retry and checkpointing.
type CoordinatorOptions struct {
	// Workers are the worker slots to supervise. With none, every chunk
	// executes in process.
	Workers []WorkerSpec
	// ChunkTimeout bounds one chunk attempt end to end (default 2m).
	ChunkTimeout time.Duration
	// HeartbeatTimeout bounds the silence between worker frames during an
	// attempt; a worker that stops heartbeating is presumed dead and its
	// chunk is retried elsewhere (default 10s).
	HeartbeatTimeout time.Duration
	// MaxAttempts bounds how many times a chunk is dispatched before its
	// infrastructure failure is reported (default 4).
	MaxAttempts int
	// RetryBase and RetryMax bound the exponential backoff between a
	// chunk's attempts (defaults 50ms and 2s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// MaxRespawns bounds how many times a worker slot is restarted after
	// connection failures before the slot is excluded (default 3).
	MaxRespawns int
	// CheckpointPath enables the crash-safe completion log: completed
	// chunks are appended (fsync'd) and never re-executed, including by a
	// coordinator restarted over the same path.
	CheckpointPath string
	// Logf receives supervision diagnostics; nil discards them.
	Logf func(format string, args ...any)
	// Metrics, when set, receives the per-slot supervision counters
	// (qswitch_shard_worker_*{worker="i"}) a qswitchctl -metrics-addr
	// endpoint serves alongside the in-process probe families.
	Metrics *obs.Registry
}

func (o CoordinatorOptions) chunkTimeout() time.Duration {
	if o.ChunkTimeout > 0 {
		return o.ChunkTimeout
	}
	return 2 * time.Minute
}

func (o CoordinatorOptions) heartbeatTimeout() time.Duration {
	if o.HeartbeatTimeout > 0 {
		return o.HeartbeatTimeout
	}
	return 10 * time.Second
}

func (o CoordinatorOptions) maxAttempts() int {
	if o.MaxAttempts > 0 {
		return o.MaxAttempts
	}
	return 4
}

func (o CoordinatorOptions) retryBase() time.Duration {
	if o.RetryBase > 0 {
		return o.RetryBase
	}
	return 50 * time.Millisecond
}

func (o CoordinatorOptions) retryMax() time.Duration {
	if o.RetryMax > 0 {
		return o.RetryMax
	}
	return 2 * time.Second
}

func (o CoordinatorOptions) maxRespawns() int {
	if o.MaxRespawns > 0 {
		return o.MaxRespawns
	}
	return 3
}

// CoordinatorStats counts supervision events; read them with Stats.
type CoordinatorStats struct {
	// ChunksExecuted counts chunks completed by a worker or locally.
	ChunksExecuted int64
	// CheckpointHits counts chunks answered from the checkpoint log
	// without execution.
	CheckpointHits int64
	// Retries counts chunk attempts that failed at the transport level and
	// were requeued.
	Retries int64
	// Respawns counts worker reconnect/restart attempts.
	Respawns int64
	// Excluded counts worker slots given up on.
	Excluded int64
	// LocalChunks counts chunks executed by the in-process fallback.
	LocalChunks int64
}

// Coordinator shards ratio estimations and adversary hunts over a fleet
// of qswitchd workers, surviving worker crashes, hangs and corrupted
// responses (bounded-backoff retries against deterministic chunks), its
// own crashes (fsync'd checkpoint log), and total worker loss (in-process
// fallback). It implements ratio.ChunkService, so ratio.RunSharded and
// experiments.Options.Shard plug it straight into the estimation
// pipeline; results are byte-identical to the in-process backends no
// matter what faults occurred. Safe for concurrent use.
type Coordinator struct {
	opts CoordinatorOptions

	jobs chan *job
	done chan struct{}
	wg   sync.WaitGroup

	ckpt    *checkpointLog
	cacheMu sync.Mutex
	cache   map[string][]byte

	health []*workerHealthState

	active    atomic.Int64 // worker slots not yet excluded
	localOnce sync.Once
	closeOnce sync.Once

	stats struct {
		executed, ckptHits, retries, respawns, excluded, local atomic.Int64
	}
}

// job is one chunk dispatch: spec payload in, result payload (or a
// terminal error) out on resp.
type job struct {
	ft       frameType
	payload  []byte
	attempts int
	resp     chan jobResult
}

type jobResult struct {
	payload []byte
	err     error
}

// NewCoordinator starts the worker supervisors (and the checkpoint log,
// when configured) and returns a serving coordinator. Workers that cannot
// be reached are retried with backoff and eventually excluded; if every
// slot is excluded — or none was configured — chunks execute in process,
// so the service degrades gracefully instead of failing.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	c := &Coordinator{
		opts:  opts,
		jobs:  make(chan *job),
		done:  make(chan struct{}),
		cache: map[string][]byte{},
	}
	for _, ws := range opts.Workers {
		if (len(ws.Cmd) == 0) == (ws.Addr == "") {
			return nil, fmt.Errorf("shard: worker spec must set exactly one of Cmd and Addr")
		}
	}
	if opts.CheckpointPath != "" {
		ckpt, cache, err := openCheckpointLog(opts.CheckpointPath)
		if err != nil {
			return nil, err
		}
		c.ckpt = ckpt
		c.cache = cache
	}
	c.active.Store(int64(len(opts.Workers)))
	if len(opts.Workers) == 0 {
		c.startLocal()
	}
	c.health = make([]*workerHealthState, len(opts.Workers))
	for i, ws := range opts.Workers {
		c.health[i] = &workerHealthState{h: WorkerHealth{Worker: i, State: "connecting"}}
		h := &workerHandle{c: c, spec: ws, idx: i, hs: c.health[i]}
		if reg := opts.Metrics; reg != nil {
			label := fmt.Sprintf(`{worker="%d"}`, i)
			h.mChunks = reg.Counter(MetricShardWorkerChunks + label)
			h.mRetries = reg.Counter(MetricShardWorkerRetries + label)
			h.mRespawns = reg.Counter(MetricShardWorkerRespawns + label)
			h.mUnitsPerSec = reg.FloatGauge(MetricShardWorkerUnitsPerSec + label)
			h.mLastChunkMs = reg.FloatGauge(MetricShardWorkerLastChunkMs + label)
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			h.loop()
		}()
	}
	return c, nil
}

// Health snapshots the per-worker supervision table: one row per
// configured worker slot, indexed by slot. The rows combine what the
// coordinator observes (state, chunks done, retries, respawns) with what
// each worker self-reports in its heartbeats (WorkerStats).
func (c *Coordinator) Health() []WorkerHealth {
	out := make([]WorkerHealth, len(c.health))
	for i, hs := range c.health {
		out[i] = hs.snapshot()
	}
	return out
}

// Close stops supervision, tears down spawned workers and closes the
// checkpoint log. In-flight chunks receive ErrClosed.
func (c *Coordinator) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	c.wg.Wait()
	if c.ckpt != nil {
		return c.ckpt.close()
	}
	return nil
}

// Stats snapshots the supervision counters.
func (c *Coordinator) Stats() CoordinatorStats {
	return CoordinatorStats{
		ChunksExecuted: c.stats.executed.Load(),
		CheckpointHits: c.stats.ckptHits.Load(),
		Retries:        c.stats.retries.Load(),
		Respawns:       c.stats.respawns.Load(),
		Excluded:       c.stats.excluded.Load(),
		LocalChunks:    c.stats.local.Load(),
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// RatioChunk implements ratio.ChunkService: it executes (or recalls from
// the checkpoint) one seed-range chunk.
func (c *Coordinator) RatioChunk(ctx context.Context, req ratio.ChunkRequest) ([]ratio.SeedOutcome, error) {
	msg, err := encodeRatioChunk(req)
	if err != nil {
		return nil, err
	}
	resPayload, err := c.execute(ctx, ftRatioChunk, marshalMsg(msg))
	if err != nil {
		return nil, err
	}
	var res ratioResultMsg
	if err := json.Unmarshal(resPayload, &res); err != nil {
		return nil, fmt.Errorf("shard: bad chunk result: %w", err)
	}
	if len(res.Seeds) != msg.K1-msg.K0 {
		return nil, fmt.Errorf("shard: chunk result has %d seeds, want %d", len(res.Seeds), msg.K1-msg.K0)
	}
	return decodeOutcomes(&res), nil
}

// HuntRequest names a shardable adversary hunt: the policy under attack
// and the judge scoring it as registry specs, plus the search space. The
// restart budget in Search.Restarts is what Hunt() shards.
type HuntRequest struct {
	Cfg      switchsim.Config
	Crossbar bool
	Policy   string
	Judge    string
	Search   adversary.SearchOptions
}

// Hunt runs the hunt's restarts in chunks of `chunk` (<= 0 selects 4)
// across the workers and merges the per-chunk bests deterministically;
// the result is byte-identical to adversary.Hunt with the same options
// run in one process, regardless of chunking, worker count or faults.
func (c *Coordinator) Hunt(ctx context.Context, req HuntRequest, chunk int) (adversary.HuntResult, error) {
	restarts := req.Search.Restarts
	if restarts < 1 {
		restarts = 1
	}
	if chunk <= 0 {
		chunk = 4
	}
	if chunk > restarts {
		chunk = restarts
	}
	nChunks := (restarts + chunk - 1) / chunk
	results := make([]*huntResultMsg, nChunks)
	errs := make([]error, nChunks)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < nChunks; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			msg := &huntChunkMsg{
				Cfg: req.Cfg, Crossbar: req.Crossbar, Policy: req.Policy, Judge: req.Judge,
				Search: req.Search, R0: i * chunk, R1: min(restarts, (i+1)*chunk),
			}
			payload, err := c.execute(cctx, ftHuntChunk, marshalMsg(msg))
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			var res huntResultMsg
			if err := json.Unmarshal(payload, &res); err != nil {
				errs[i] = fmt.Errorf("shard: bad hunt result: %w", err)
				cancel()
				return
			}
			results[i] = &res
		}()
	}
	wg.Wait()
	var firstAny error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if firstAny == nil {
			firstAny = fmt.Errorf("hunt chunk %d: %w", i, err)
		}
		if !errors.Is(err, context.Canceled) {
			return adversary.HuntResult{}, fmt.Errorf("hunt chunk %d: %w", i, err)
		}
	}
	if firstAny != nil {
		if err := ctx.Err(); err != nil {
			return adversary.HuntResult{}, err
		}
		return adversary.HuntResult{}, firstAny
	}
	best := adversary.HuntResult{Ratio: -1, Restart: -1}
	for _, r := range results {
		best = adversary.MergeHunts(best, adversary.HuntResult{
			Seq: r.Seq, Ratio: r.Ratio, Restart: r.Restart,
			Accepted: r.Accepted, Tried: r.Tried,
		})
	}
	return best, nil
}

// execute answers one chunk: from the checkpoint cache when possible,
// otherwise by dispatching it (with retries) and committing the verified
// result to the checkpoint before returning it.
func (c *Coordinator) execute(ctx context.Context, ft frameType, payload []byte) ([]byte, error) {
	key := ckptKey(ft, payload)
	c.cacheMu.Lock()
	cached, ok := c.cache[key]
	c.cacheMu.Unlock()
	if ok {
		c.stats.ckptHits.Add(1)
		return cached, nil
	}

	jb := &job{ft: ft, payload: payload, resp: make(chan jobResult, 1)}
	select {
	case c.jobs <- jb:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.done:
		return nil, ErrClosed
	}
	select {
	case res := <-jb.resp:
		if res.err != nil {
			return nil, res.err
		}
		c.commit(ft, key, payload, res.payload)
		c.stats.executed.Add(1)
		return res.payload, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// commit stores a verified chunk result in the cache and checkpoint log.
func (c *Coordinator) commit(ft frameType, key string, spec, result []byte) {
	c.cacheMu.Lock()
	c.cache[key] = result
	c.cacheMu.Unlock()
	if c.ckpt != nil {
		if err := c.ckpt.append(ft, spec, result); err != nil {
			c.logf("shard: checkpoint append failed: %v", err)
		}
	}
}

// requeue schedules a failed attempt's retry with exponential backoff, or
// fails the chunk once its attempt budget is spent.
func (c *Coordinator) requeue(jb *job, cause error) {
	jb.attempts++
	c.stats.retries.Add(1)
	if jb.attempts >= c.opts.maxAttempts() {
		jb.resp <- jobResult{err: fmt.Errorf("shard: chunk failed after %d attempts: %w", jb.attempts, cause)}
		return
	}
	backoff := c.opts.retryBase() << (jb.attempts - 1)
	if backoff > c.opts.retryMax() {
		backoff = c.opts.retryMax()
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTimer(backoff)
		defer t.Stop()
		select {
		case <-t.C:
		case <-c.done:
			jb.resp <- jobResult{err: ErrClosed}
			return
		}
		select {
		case c.jobs <- jb:
		case <-c.done:
			jb.resp <- jobResult{err: ErrClosed}
		}
	}()
}

// startLocal starts the in-process drain loop: the graceful-degradation
// path when no worker slot is serving. The local executor round-trips
// every chunk through the same encoded spec a worker would receive, so
// local execution is behaviorally identical to remote.
func (c *Coordinator) startLocal() {
	c.localOnce.Do(func() {
		c.logf("shard: no reachable workers; executing chunks in process")
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			exec := NewExecutor()
			for {
				select {
				case <-c.done:
					return
				case jb := <-c.jobs:
					c.stats.local.Add(1)
					ft, payload, _ := executeChunk(exec, jb.ft, jb.payload)
					if ft == ftChunkError {
						var msg chunkErrorMsg
						if err := json.Unmarshal(payload, &msg); err != nil {
							jb.resp <- jobResult{err: fmt.Errorf("shard: bad local chunk error: %w", err)}
							continue
						}
						jb.resp <- jobResult{err: errors.New(msg.Msg)}
						continue
					}
					jb.resp <- jobResult{payload: payload}
				}
			}
		}()
	})
}

// retire removes a worker slot from the active set, starting the local
// fallback when the last slot retires.
func (c *Coordinator) retire() {
	c.stats.excluded.Add(1)
	if c.active.Add(-1) == 0 {
		c.startLocal()
	}
}

// recvFrame is one frame (or transport error) from a worker's reader
// goroutine.
type recvFrame struct {
	ft      frameType
	payload []byte
	err     error
}

// workerHandle supervises one worker slot across its spawn/connect,
// serve, crash and respawn lifecycle.
type workerHandle struct {
	c        *Coordinator
	spec     WorkerSpec
	idx      int
	respawns int
	hs       *workerHealthState

	// Per-slot labeled metrics; nil (and no-op) without
	// CoordinatorOptions.Metrics.
	mChunks      *obs.Counter
	mRetries     *obs.Counter
	mRespawns    *obs.Counter
	mUnitsPerSec *obs.FloatGauge
	mLastChunkMs *obs.FloatGauge

	cmd    *exec.Cmd
	conn   io.Closer
	wr     *bufio.Writer
	frames chan recvFrame
}

// noteRespawn records one reconnect/restart attempt everywhere it is
// visible: the coordinator stats, the health table, the metrics.
func (h *workerHandle) noteRespawn() {
	h.respawns++
	h.c.stats.respawns.Add(1)
	h.mRespawns.Inc()
	if h.hs != nil {
		h.hs.mu.Lock()
		h.hs.h.Respawns++
		h.hs.mu.Unlock()
	}
}

// noteBeat records a heartbeat, decoding the WorkerStats payload v2
// workers attach. Undecodable stats are ignored — telemetry is advisory
// and must never poison a healthy stream.
func (h *workerHandle) noteBeat(payload []byte) {
	if h.hs == nil {
		return
	}
	h.hs.mu.Lock()
	h.hs.h.LastBeat = time.Now()
	if len(payload) > 0 {
		var stats WorkerStats
		if err := json.Unmarshal(payload, &stats); err == nil {
			h.hs.h.Stats = stats
			h.mUnitsPerSec.Set(stats.UnitsPerSec)
			h.mLastChunkMs.Set(stats.LastChunkMs)
		}
	}
	h.hs.mu.Unlock()
}

// loop serves jobs on the worker until the coordinator closes or the slot
// exhausts its respawn budget.
func (h *workerHandle) loop() {
	defer h.teardown()
	for {
		if h.frames == nil {
			if h.respawns > h.c.opts.maxRespawns() {
				h.c.logf("shard: worker %d: excluded after %d respawns", h.idx, h.respawns-1)
				h.hs.setState("excluded")
				h.c.retire()
				return
			}
			if h.respawns > 0 {
				backoff := h.c.opts.retryBase() << (h.respawns - 1)
				if backoff > h.c.opts.retryMax() {
					backoff = h.c.opts.retryMax()
				}
				select {
				case <-time.After(backoff):
				case <-h.c.done:
					return
				}
			}
			if err := h.connect(); err != nil {
				h.noteRespawn()
				h.c.logf("shard: worker %d: connect: %v", h.idx, err)
				continue
			}
			h.hs.setState("serving")
		}
		select {
		case <-h.c.done:
			return
		case jb := <-h.c.jobs:
			payload, err, terminal := h.do(jb)
			if err != nil && !terminal {
				// Transport-level failure: the connection is unusable and the
				// chunk is retried (it is deterministic, so a retry is safe).
				h.c.logf("shard: worker %d: chunk attempt failed: %v", h.idx, err)
				h.teardown()
				h.hs.setState("connecting")
				h.noteRespawn()
				h.mRetries.Inc()
				if h.hs != nil {
					h.hs.mu.Lock()
					h.hs.h.Retries++
					h.hs.mu.Unlock()
				}
				h.c.requeue(jb, err)
				continue
			}
			if err == nil {
				h.mChunks.Inc()
				if h.hs != nil {
					h.hs.mu.Lock()
					h.hs.h.ChunksDone++
					h.hs.mu.Unlock()
				}
			}
			jb.resp <- jobResult{payload: payload, err: err}
		}
	}
}

// connect spawns or dials the worker and completes the hello handshake.
func (h *workerHandle) connect() error {
	var r io.Reader
	if len(h.spec.Cmd) > 0 {
		cmd := exec.Command(h.spec.Cmd[0], h.spec.Cmd[1:]...)
		if len(h.spec.Env) > 0 {
			cmd.Env = append(os.Environ(), h.spec.Env...)
		}
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return err
		}
		h.cmd = cmd
		h.conn = stdin
		h.wr = bufio.NewWriter(stdin)
		r = stdout
	} else {
		conn, err := net.DialTimeout("tcp", h.spec.Addr, h.c.opts.heartbeatTimeout())
		if err != nil {
			return err
		}
		h.cmd = nil
		h.conn = conn
		h.wr = bufio.NewWriter(conn)
		r = conn
	}
	h.frames = make(chan recvFrame, 8)
	h.c.wg.Add(1)
	go func(frames chan<- recvFrame, r io.Reader) {
		defer h.c.wg.Done()
		br := bufio.NewReader(r)
		for {
			ft, payload, _, err := readFrame(br)
			if err != nil {
				frames <- recvFrame{err: err}
				close(frames)
				return
			}
			select {
			case frames <- recvFrame{ft: ft, payload: payload}:
			case <-h.c.done:
				close(frames)
				return
			}
		}
	}(h.frames, r)

	if err := h.send(ftHello, marshalMsg(helloMsg{Version: ProtocolVersion, PID: os.Getpid()})); err != nil {
		h.teardown()
		return err
	}
	select {
	case fr, ok := <-h.frames:
		if !ok || fr.err != nil {
			h.teardown()
			return fmt.Errorf("shard: handshake read: %v", fr.err)
		}
		if fr.ft != ftHelloAck {
			h.teardown()
			return fmt.Errorf("shard: handshake got frame type %d", fr.ft)
		}
	case <-time.After(h.c.opts.heartbeatTimeout()):
		h.teardown()
		return fmt.Errorf("shard: handshake timeout")
	case <-h.c.done:
		h.teardown()
		return ErrClosed
	}
	return nil
}

// send writes one frame to the worker.
func (h *workerHandle) send(ft frameType, payload []byte) error {
	if _, err := h.wr.Write(appendFrame(nil, ft, payload)); err != nil {
		return err
	}
	return h.wr.Flush()
}

// do runs one chunk attempt on the connected worker. terminal=true marks
// deterministic chunk failures (and successes); terminal=false marks
// transport failures whose chunk should be retried.
func (h *workerHandle) do(jb *job) (payload []byte, err error, terminal bool) {
	if err := h.send(jb.ft, jb.payload); err != nil {
		return nil, fmt.Errorf("shard: send chunk: %w", err), false
	}
	chunkTimer := time.NewTimer(h.c.opts.chunkTimeout())
	defer chunkTimer.Stop()
	hbTimer := time.NewTimer(h.c.opts.heartbeatTimeout())
	defer hbTimer.Stop()
	for {
		select {
		case fr, ok := <-h.frames:
			if !ok {
				return nil, fmt.Errorf("shard: worker connection closed mid-chunk"), false
			}
			if fr.err != nil {
				// Includes CRC mismatches from chaos-corrupted responses: the
				// result is discarded, never merged, and the chunk retried.
				return nil, fmt.Errorf("shard: worker stream: %w", fr.err), false
			}
			switch fr.ft {
			case ftHeartbeat:
				if !hbTimer.Stop() {
					<-hbTimer.C
				}
				hbTimer.Reset(h.c.opts.heartbeatTimeout())
				h.noteBeat(fr.payload)
			case ftResult:
				return fr.payload, nil, true
			case ftChunkError:
				var msg chunkErrorMsg
				if err := json.Unmarshal(fr.payload, &msg); err != nil {
					return nil, fmt.Errorf("shard: bad chunk error frame: %w", err), false
				}
				return nil, errors.New(msg.Msg), true
			default:
				return nil, fmt.Errorf("shard: unexpected frame type %d mid-chunk", fr.ft), false
			}
		case <-hbTimer.C:
			return nil, fmt.Errorf("shard: worker heartbeat timeout (%v)", h.c.opts.heartbeatTimeout()), false
		case <-chunkTimer.C:
			return nil, fmt.Errorf("shard: chunk timeout (%v)", h.c.opts.chunkTimeout()), false
		case <-h.c.done:
			return nil, ErrClosed, true
		}
	}
}

// teardown closes the connection and reaps a spawned worker process.
func (h *workerHandle) teardown() {
	if h.conn != nil {
		h.conn.Close()
		h.conn = nil
	}
	if h.cmd != nil {
		h.cmd.Process.Kill()
		h.cmd.Wait()
		h.cmd = nil
	}
	if h.frames != nil {
		// Drain so the reader goroutine can exit.
		go func(frames <-chan recvFrame) {
			for range frames {
			}
		}(h.frames)
		h.frames = nil
	}
	h.wr = nil
}
