package shard

import (
	"strings"
	"testing"

	"qswitch/internal/packet"
)

func TestParsePolicySpec(t *testing.T) {
	cases := []struct {
		spec   string
		name   string
		params map[string]float64
		bad    bool
	}{
		{spec: "gm", name: "gm"},
		{spec: " gm ", name: "gm"},
		{spec: "pg(beta=2.41)", name: "pg", params: map[string]float64{"beta": 2.41}},
		{spec: "cpg(beta=13.8, alpha=15.9)", name: "cpg", params: map[string]float64{"beta": 13.8, "alpha": 15.9}},
		{spec: "", bad: true},
		{spec: "pg(beta=2.41", bad: true},
		{spec: "pg(beta)", bad: true},
		{spec: "pg(beta=abc)", bad: true},
	}
	for _, tc := range cases {
		name, params, err := ParsePolicySpec(tc.spec)
		if tc.bad {
			if err == nil {
				t.Errorf("ParsePolicySpec(%q) succeeded, want error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePolicySpec(%q): %v", tc.spec, err)
			continue
		}
		if name != tc.name {
			t.Errorf("ParsePolicySpec(%q) name = %q, want %q", tc.spec, name, tc.name)
		}
		if len(params) != len(tc.params) {
			t.Errorf("ParsePolicySpec(%q) params = %v, want %v", tc.spec, params, tc.params)
			continue
		}
		for k, v := range tc.params {
			if params[k] != v {
				t.Errorf("ParsePolicySpec(%q) params[%q] = %v, want %v", tc.spec, k, params[k], v)
			}
		}
	}
}

// TestResolveAllKnownSpecs: every spec string the experiments and CLI use
// must resolve in its model.
func TestResolveAllKnownSpecs(t *testing.T) {
	cioq := []string{"gm", "gm-colmajor", "gm-rotating", "gm-longestfirst",
		"pg(beta=2.41)", "krmwm(beta=3)", "roundrobin", "naivefifo", "failpolicy(fp=7)"}
	for _, spec := range cioq {
		if _, _, err := ResolvePolicy(spec, false); err != nil {
			t.Errorf("ResolvePolicy(%q, cioq): %v", spec, err)
		}
	}
	crossbar := []string{"cgu", "cgu-rotating", "cpg(beta=13.8,alpha=15.9)",
		"kksfifo", "crossbar-naive", "failpolicy(fp=7)"}
	for _, spec := range crossbar {
		if _, _, err := ResolvePolicy(spec, true); err != nil {
			t.Errorf("ResolvePolicy(%q, crossbar): %v", spec, err)
		}
	}
	for _, spec := range []string{"exactunit", "exactweighted", "upperbound", "failjudge(fp=9)"} {
		for _, crossbar := range []bool{false, true} {
			if _, err := ResolveJudge(spec, crossbar); err != nil {
				t.Errorf("ResolveJudge(%q, crossbar=%v): %v", spec, crossbar, err)
			}
		}
	}
}

func TestResolveRejectsUnknownAndTypos(t *testing.T) {
	if _, _, err := ResolvePolicy("no-such-policy", false); err == nil {
		t.Error("unknown CIOQ policy resolved")
	}
	if _, _, err := ResolvePolicy("no-such-policy", true); err == nil {
		t.Error("unknown crossbar policy resolved")
	}
	if _, err := ResolveJudge("no-such-judge", false); err == nil {
		t.Error("unknown judge resolved")
	}
	// A typo'd parameter must fail loudly, not run a default silently.
	_, _, err := ResolvePolicy("pg(betta=2.41)", false)
	if err == nil || !strings.Contains(err.Error(), "unknown parameters") {
		t.Errorf("typo'd parameter: err = %v, want unknown-parameters error", err)
	}
	if _, err := ResolveJudge("exactunit(x=1)", false); err == nil {
		t.Error("judge with stray parameter resolved")
	}
}

func TestSequenceFingerprint(t *testing.T) {
	a := packet.Sequence{{Arrival: 0, In: 0, Out: 1, Value: 2, ID: 0}, {Arrival: 1, In: 1, Out: 0, Value: 1, ID: 1}}
	b := packet.Sequence{{Arrival: 0, In: 0, Out: 1, Value: 2, ID: 0}, {Arrival: 1, In: 1, Out: 0, Value: 1, ID: 1}}
	if SequenceFingerprint(a) != SequenceFingerprint(b) {
		t.Error("identical sequences fingerprint differently")
	}
	b[1].Value = 3
	if SequenceFingerprint(a) == SequenceFingerprint(b) {
		t.Error("differing sequences fingerprint identically")
	}
	if fp := SequenceFingerprint(a); fp >= 1<<30 {
		t.Errorf("fingerprint %d does not fit the float64 parameter grammar", fp)
	}
}
