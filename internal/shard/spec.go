package shard

import (
	"encoding/json"
	"fmt"

	"qswitch/internal/adversary"
	"qswitch/internal/packet"
	"qswitch/internal/ratio"
	"qswitch/internal/switchsim"
)

// Wire messages. All payloads are JSON: Go's encoder emits struct fields
// in declaration order and renders float64 with the shortest
// exactly-round-tripping representation, so encoding is canonical — the
// encoded bytes of a chunk spec double as its checkpoint key — and
// numeric parameters survive the process boundary bit-for-bit.

// helloMsg opens a connection in both directions: the coordinator
// announces its protocol version, the worker acknowledges with its own.
type helloMsg struct {
	Version int `json:"version"`
	PID     int `json:"pid,omitempty"`
}

// ratioChunkMsg is the wire form of ratio.ChunkRequest: policy and judge
// are registry spec strings and the generator is flattened to a genSpec,
// so the worker can rebuild the exact evaluation closure the coordinator
// named.
type ratioChunkMsg struct {
	Cfg      switchsim.Config `json:"cfg"`
	Crossbar bool             `json:"crossbar,omitempty"`
	Policy   string           `json:"policy"`
	Judge    string           `json:"judge"`
	Gen      genSpec          `json:"gen"`
	BaseSeed int64            `json:"baseSeed"`
	K0       int              `json:"k0"`
	K1       int              `json:"k1"`
}

// seedResult is one seed's outcome on the wire. Err carries the error's
// text: per-seed errors are deterministic, so the text (not the Go error
// identity) is the contract, and the coordinator rebuilds an error with
// the same message.
type seedResult struct {
	Seed    int64   `json:"seed"`
	Ratio   float64 `json:"ratio,omitempty"`
	Skipped bool    `json:"skipped,omitempty"`
	Err     string  `json:"err,omitempty"`
}

// ratioResultMsg answers a ratioChunkMsg with one result per seed in
// [K0, K1), in seed order.
type ratioResultMsg struct {
	Seeds []seedResult `json:"seeds"`
}

// chunkErrorMsg reports a deterministic chunk-level failure (unknown
// policy spec, unsupported generator). The coordinator fails the chunk
// immediately instead of retrying: re-running a deterministic failure
// cannot help.
type chunkErrorMsg struct {
	Msg string `json:"msg"`
}

// huntChunkMsg asks for restarts [R0, R1) of an adversary hunt.
type huntChunkMsg struct {
	Cfg      switchsim.Config        `json:"cfg"`
	Crossbar bool                    `json:"crossbar,omitempty"`
	Policy   string                  `json:"policy"`
	Judge    string                  `json:"judge"`
	Search   adversary.SearchOptions `json:"search"`
	R0       int                     `json:"r0"`
	R1       int                     `json:"r1"`
}

// huntResultMsg is the wire form of adversary.HuntResult.
type huntResultMsg struct {
	Seq      packet.Sequence `json:"seq"`
	Ratio    float64         `json:"ratio"`
	Restart  int             `json:"restart"`
	Accepted int             `json:"accepted"`
	Tried    int             `json:"tried"`
}

// encodeRatioChunk converts a ratio.ChunkRequest to its wire form; it
// fails fast (before any dispatch) on generators the codec cannot name.
func encodeRatioChunk(req ratio.ChunkRequest) (*ratioChunkMsg, error) {
	gs, err := encodeGen(req.Gen)
	if err != nil {
		return nil, err
	}
	return &ratioChunkMsg{
		Cfg: req.Cfg, Crossbar: req.Crossbar,
		Policy: req.Policy, Judge: req.Judge, Gen: gs,
		BaseSeed: req.BaseSeed, K0: req.K0, K1: req.K1,
	}, nil
}

// encodeOutcomes converts executor outcomes to wire results.
func encodeOutcomes(outs []ratio.SeedOutcome) *ratioResultMsg {
	res := &ratioResultMsg{Seeds: make([]seedResult, len(outs))}
	for i, o := range outs {
		sr := seedResult{Seed: o.Seed, Ratio: o.Ratio, Skipped: o.Skipped}
		if o.Err != nil {
			sr.Err = o.Err.Error()
			sr.Ratio = 0
		}
		res.Seeds[i] = sr
	}
	return res
}

// decodeOutcomes is encodeOutcomes' inverse; the rebuilt errors carry the
// original text, so the merged Estimate and its error messages match the
// in-process backends exactly.
func decodeOutcomes(res *ratioResultMsg) []ratio.SeedOutcome {
	outs := make([]ratio.SeedOutcome, len(res.Seeds))
	for i, sr := range res.Seeds {
		o := ratio.SeedOutcome{Seed: sr.Seed, Ratio: sr.Ratio, Skipped: sr.Skipped}
		if sr.Err != "" {
			o.Err = fmt.Errorf("%s", sr.Err)
			o.Ratio = 0
		}
		outs[i] = o
	}
	return outs
}

// genSpec is the flattened wire form of a packet.Generator: a type tag
// plus the union of all generator parameters (zero values omitted). The
// decoded generator is field-identical to the encoded one, so seeded
// workloads drawn on a worker match the coordinator's exactly.
type genSpec struct {
	Type      string          `json:"type"`
	Load      float64         `json:"load,omitempty"`
	OnLoad    float64         `json:"onLoad,omitempty"`
	POnOff    float64         `json:"pOnOff,omitempty"`
	POffOn    float64         `json:"pOffOn,omitempty"`
	Uniform   bool            `json:"uniform,omitempty"`
	HotOut    int             `json:"hotOut,omitempty"`
	HotFrac   float64         `json:"hotFrac,omitempty"`
	OffFrac   float64         `json:"offFrac,omitempty"`
	OffMean   float64         `json:"offMean,omitempty"`
	BurstMean float64         `json:"burstMean,omitempty"`
	Burst     int             `json:"burst,omitempty"`
	Fanin     int             `json:"fanin,omitempty"`
	Sweep     int             `json:"sweep,omitempty"`
	Depth     int             `json:"depth,omitempty"`
	Period    int             `json:"period,omitempty"`
	Amplitude float64         `json:"amplitude,omitempty"`
	Alpha     float64         `json:"alpha,omitempty"`
	MinGap    float64         `json:"minGap,omitempty"`
	FlowRate  float64         `json:"flowRate,omitempty"`
	EFrac     float64         `json:"eFrac,omitempty"`
	RatPkts   int             `json:"ratPkts,omitempty"`
	EPkts     int             `json:"ePkts,omitempty"`
	Stages    []float64       `json:"stages,omitempty"`
	StageLen  int             `json:"stageLen,omitempty"`
	MaxActive int             `json:"maxActive,omitempty"`
	Label     string          `json:"label,omitempty"`
	Seq       packet.Sequence `json:"seq,omitempty"`
	Values    *valueSpec      `json:"values,omitempty"`
}

// valueSpec is the flattened wire form of a packet.ValueDist.
type valueSpec struct {
	Type   string  `json:"type"`
	Alpha  int64   `json:"alpha,omitempty"`
	PHigh  float64 `json:"pHigh,omitempty"`
	Hi     int64   `json:"hi,omitempty"`
	P      float64 `json:"p,omitempty"`
	S      float64 `json:"s,omitempty"`
	LowHi  int64   `json:"lowHi,omitempty"`
	HighLo int64   `json:"highLo,omitempty"`
	HighHi int64   `json:"highHi,omitempty"`
}

// encodeGen names a generator on the wire; generators outside the packet
// package's catalog are rejected (the process boundary cannot carry
// arbitrary code).
func encodeGen(g packet.Generator) (genSpec, error) {
	switch g := g.(type) {
	case packet.Bernoulli:
		return genSpec{Type: "bernoulli", Load: g.Load, Values: encodeValues(g.Values)}, nil
	case packet.Hotspot:
		return genSpec{Type: "hotspot", Load: g.Load, HotOut: g.HotOut, HotFrac: g.HotFrac,
			Values: encodeValues(g.Values)}, nil
	case packet.Diagonal:
		return genSpec{Type: "diagonal", Load: g.Load, OffFrac: g.OffFrac,
			Values: encodeValues(g.Values)}, nil
	case packet.Bursty:
		return genSpec{Type: "bursty", OnLoad: g.OnLoad, POnOff: g.POnOff, POffOn: g.POffOn,
			Uniform: g.Uniform, Values: encodeValues(g.Values)}, nil
	case packet.Permutation:
		return genSpec{Type: "permutation", Load: g.Load, Values: encodeValues(g.Values)}, nil
	case packet.PoissonBurst:
		return genSpec{Type: "poissonburst", OffMean: g.OffMean, BurstMean: g.BurstMean,
			Values: encodeValues(g.Values)}, nil
	case packet.Diurnal:
		return genSpec{Type: "diurnal", Load: g.Load, Period: g.Period, Amplitude: g.Amplitude,
			Values: encodeValues(g.Values)}, nil
	case packet.HeavyTail:
		return genSpec{Type: "heavytail", Alpha: g.Alpha, MinGap: g.MinGap,
			Values: encodeValues(g.Values)}, nil
	case packet.BurstyBlocking:
		return genSpec{Type: "burstyblocking", OffMean: g.OffMean, Burst: g.Burst, Fanin: g.Fanin,
			Values: encodeValues(g.Values)}, nil
	case packet.CrossDrain:
		return genSpec{Type: "crossdrain", OffMean: g.OffMean, Sweep: g.Sweep, Depth: g.Depth,
			Values: encodeValues(g.Values)}, nil
	case packet.FlowMix:
		return genSpec{Type: "flowmix", FlowRate: g.FlowRate, EFrac: g.ElephantFrac,
			RatPkts: g.RatPackets, EPkts: g.ElephantPackets, Stages: g.Stages,
			StageLen: g.StageSlots, MaxActive: g.MaxActive, Values: encodeValues(g.Values)}, nil
	case packet.Fixed:
		return genSpec{Type: "fixed", Label: g.Label, Seq: g.Seq}, nil
	default:
		if g == nil {
			return genSpec{}, fmt.Errorf("shard: nil generator")
		}
		return genSpec{}, fmt.Errorf("shard: generator %T cannot cross a process boundary", g)
	}
}

// decodeGen rebuilds the generator a genSpec names.
func decodeGen(gs genSpec) (packet.Generator, error) {
	vd, err := decodeValues(gs.Values)
	if err != nil {
		return nil, err
	}
	switch gs.Type {
	case "bernoulli":
		return packet.Bernoulli{Load: gs.Load, Values: vd}, nil
	case "hotspot":
		return packet.Hotspot{Load: gs.Load, HotOut: gs.HotOut, HotFrac: gs.HotFrac, Values: vd}, nil
	case "diagonal":
		return packet.Diagonal{Load: gs.Load, OffFrac: gs.OffFrac, Values: vd}, nil
	case "bursty":
		return packet.Bursty{OnLoad: gs.OnLoad, POnOff: gs.POnOff, POffOn: gs.POffOn,
			Uniform: gs.Uniform, Values: vd}, nil
	case "permutation":
		return packet.Permutation{Load: gs.Load, Values: vd}, nil
	case "poissonburst":
		return packet.PoissonBurst{OffMean: gs.OffMean, BurstMean: gs.BurstMean, Values: vd}, nil
	case "diurnal":
		return packet.Diurnal{Load: gs.Load, Period: gs.Period, Amplitude: gs.Amplitude, Values: vd}, nil
	case "heavytail":
		return packet.HeavyTail{Alpha: gs.Alpha, MinGap: gs.MinGap, Values: vd}, nil
	case "burstyblocking":
		return packet.BurstyBlocking{OffMean: gs.OffMean, Burst: gs.Burst, Fanin: gs.Fanin, Values: vd}, nil
	case "crossdrain":
		return packet.CrossDrain{OffMean: gs.OffMean, Sweep: gs.Sweep, Depth: gs.Depth, Values: vd}, nil
	case "flowmix":
		return packet.FlowMix{FlowRate: gs.FlowRate, ElephantFrac: gs.EFrac,
			RatPackets: gs.RatPkts, ElephantPackets: gs.EPkts, Stages: gs.Stages,
			StageSlots: gs.StageLen, MaxActive: gs.MaxActive, Values: vd}, nil
	case "fixed":
		return packet.Fixed{Label: gs.Label, Seq: gs.Seq}, nil
	default:
		return nil, fmt.Errorf("shard: unknown generator spec %q", gs.Type)
	}
}

// encodeValues names a value distribution; nil stays nil (the generators
// default nil to unit values themselves).
func encodeValues(v packet.ValueDist) *valueSpec {
	switch v := v.(type) {
	case nil:
		return nil
	case packet.UnitValues:
		return &valueSpec{Type: "unit"}
	case packet.TwoValued:
		return &valueSpec{Type: "two", Alpha: v.Alpha, PHigh: v.PHigh}
	case packet.UniformValues:
		return &valueSpec{Type: "uniform", Hi: v.Hi}
	case packet.ZipfValues:
		return &valueSpec{Type: "zipf", Hi: v.Hi, S: v.S}
	case packet.GeometricValues:
		return &valueSpec{Type: "geometric", P: v.P, Hi: v.Hi}
	case packet.BimodalValues:
		return &valueSpec{Type: "bimodal", LowHi: v.LowHi, HighLo: v.HighLo,
			HighHi: v.HighHi, PHigh: v.PHigh}
	default:
		// Unknown distributions are caught at decode; name the type so the
		// error is actionable.
		return &valueSpec{Type: fmt.Sprintf("!%T", v)}
	}
}

// decodeValues rebuilds the value distribution a valueSpec names.
func decodeValues(vs *valueSpec) (packet.ValueDist, error) {
	if vs == nil {
		return nil, nil
	}
	switch vs.Type {
	case "unit":
		return packet.UnitValues{}, nil
	case "two":
		return packet.TwoValued{Alpha: vs.Alpha, PHigh: vs.PHigh}, nil
	case "uniform":
		return packet.UniformValues{Hi: vs.Hi}, nil
	case "zipf":
		return packet.ZipfValues{Hi: vs.Hi, S: vs.S}, nil
	case "geometric":
		return packet.GeometricValues{P: vs.P, Hi: vs.Hi}, nil
	case "bimodal":
		return packet.BimodalValues{LowHi: vs.LowHi, HighLo: vs.HighLo,
			HighHi: vs.HighHi, PHigh: vs.PHigh}, nil
	default:
		return nil, fmt.Errorf("shard: unknown value distribution spec %q", vs.Type)
	}
}

// marshalMsg encodes a wire message, panicking on the impossible (all
// message types marshal cleanly).
func marshalMsg(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("shard: marshal %T: %v", v, err))
	}
	return b
}
