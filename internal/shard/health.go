package shard

import (
	"sync"
	"time"
)

// Shard-tier metric names. The worker-side family is registered by a
// qswitchd serving with ServeOptions.Metrics; the per-slot family is
// registered (with a worker="i" label) by a coordinator created with
// CoordinatorOptions.Metrics.
const (
	MetricWorkerChunks       = "qswitch_worker_chunks_total"
	MetricWorkerUnits        = "qswitch_worker_units_total"
	MetricWorkerChunkSeconds = "qswitch_worker_chunk_seconds"

	MetricShardWorkerChunks      = "qswitch_shard_worker_chunks_total"
	MetricShardWorkerRetries     = "qswitch_shard_worker_retries_total"
	MetricShardWorkerRespawns    = "qswitch_shard_worker_respawns_total"
	MetricShardWorkerUnitsPerSec = "qswitch_shard_worker_units_per_sec"
	MetricShardWorkerLastChunkMs = "qswitch_shard_worker_last_chunk_ms"
)

// WorkerStats is the telemetry payload a protocol-v2 worker attaches to
// its heartbeat frames: cumulative work done this session plus the
// freshest throughput figures. Units are seeds for ratio chunks and
// restarts for hunt chunks, so UnitsPerSec is the worker's slots-driving
// rate regardless of chunk kind.
type WorkerStats struct {
	// Chunks counts chunk requests completed this session.
	Chunks int64 `json:"chunks"`
	// Units counts work units (seeds or restarts) completed this session.
	Units int64 `json:"units"`
	// UnitsPerSec is Units over the total busy time, 0 until the first
	// chunk completes.
	UnitsPerSec float64 `json:"unitsPerSec,omitempty"`
	// LastChunkMs is the wall-clock latency of the most recent chunk.
	LastChunkMs float64 `json:"lastChunkMs,omitempty"`
}

// statsTracker accumulates one worker session's WorkerStats. Heartbeats
// snapshot it concurrently with the serve loop recording into it.
type statsTracker struct {
	mu    sync.Mutex
	stats WorkerStats
	busy  time.Duration
}

func (t *statsTracker) record(units int64, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Chunks++
	t.stats.Units += units
	t.busy += d
	t.stats.LastChunkMs = float64(d) / float64(time.Millisecond)
	if s := t.busy.Seconds(); s > 0 {
		t.stats.UnitsPerSec = float64(t.stats.Units) / s
	}
}

func (t *statsTracker) snapshot() WorkerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// WorkerHealth is one worker slot's live supervision state, as seen by
// the coordinator; read it with Coordinator.Health.
type WorkerHealth struct {
	// Worker is the slot index into CoordinatorOptions.Workers.
	Worker int
	// State is "connecting" (not yet serving, or between respawns),
	// "serving", or "excluded" (respawn budget exhausted).
	State string
	// ChunksDone counts chunks this slot completed successfully.
	ChunksDone int64
	// Retries counts chunk attempts this slot failed at the transport
	// level (the chunks were requeued elsewhere).
	Retries int64
	// Respawns counts reconnect/restart attempts for this slot.
	Respawns int64
	// LastBeat is when the slot last heartbeat during a chunk (zero
	// before the first one).
	LastBeat time.Time
	// Stats is the worker's self-reported telemetry from its latest
	// heartbeat (zero for v1 workers, which send empty heartbeats).
	Stats WorkerStats
}

// workerHealthState is the coordinator-side mutable slot behind one
// WorkerHealth row.
type workerHealthState struct {
	mu sync.Mutex
	h  WorkerHealth
}

func (s *workerHealthState) setState(state string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.h.State = state
	s.mu.Unlock()
}

func (s *workerHealthState) snapshot() WorkerHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.h
}
