package stats

import (
	"bytes"
	"strings"
	"testing"
)

func TestChartRenderBasics(t *testing.T) {
	ch := &Chart{
		Title:  "demo",
		XLabel: "n",
		YLabel: "cost",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}},
			{Name: "b", X: []float64{0, 1, 2}, Y: []float64{4, 1, 0}},
		},
	}
	var buf bytes.Buffer
	ch.Render(&buf, 40, 10)
	out := buf.String()
	for _, want := range []string{"demo", "* = a", "o = b", "x: n, y: cost"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("series glyphs not plotted")
	}
}

func TestChartRenderEmpty(t *testing.T) {
	ch := &Chart{Title: "empty"}
	var buf bytes.Buffer
	ch.Render(&buf, 40, 10)
	if !strings.Contains(buf.String(), "no data") {
		t.Errorf("empty chart rendered: %q", buf.String())
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	// Single point: ranges collapse; render must not panic or divide by
	// zero.
	ch := &Chart{Series: []Series{{Name: "p", X: []float64{3}, Y: []float64{7}}}}
	var buf bytes.Buffer
	ch.Render(&buf, 20, 8)
	if buf.Len() == 0 {
		t.Error("nothing rendered")
	}
}

func TestChartFromTable(t *testing.T) {
	tb := NewTable("t", "n", "policy", "cost")
	tb.AddRow(1, "gm", 10.0)
	tb.AddRow(2, "gm", 20.0)
	tb.AddRow(1, "pg", 30.0)
	tb.AddRow(2, "pg", 40.0)
	ch, err := ChartFromTable(tb, "n", "cost", "policy")
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Series) != 2 {
		t.Fatalf("got %d series, want 2", len(ch.Series))
	}
	if ch.Series[0].Name != "gm" || len(ch.Series[0].X) != 2 {
		t.Errorf("series 0 = %+v", ch.Series[0])
	}
	if ch.Series[1].Name != "pg" || ch.Series[1].Y[1] != 40 {
		t.Errorf("series 1 = %+v", ch.Series[1])
	}
}

func TestChartFromTableSkipsNonNumeric(t *testing.T) {
	tb := NewTable("t", "x", "y")
	tb.AddRow("oops", 1.0)
	tb.AddRow(2, "+Inf")
	tb.AddRow(3, 9.0)
	ch, err := ChartFromTable(tb, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Series) != 1 || len(ch.Series[0].X) != 1 {
		t.Fatalf("expected exactly one numeric point, got %+v", ch.Series)
	}
}

func TestChartFromTableMissingColumns(t *testing.T) {
	tb := NewTable("t", "a", "b")
	if _, err := ChartFromTable(tb, "nope", "b"); err == nil {
		t.Error("missing x column accepted")
	}
	if _, err := ChartFromTable(tb, "a", "nope"); err == nil {
		t.Error("missing y column accepted")
	}
	if _, err := ChartFromTable(tb, "a", "b", "nope"); err == nil {
		t.Error("missing group column accepted")
	}
}
