package stats

import "sort"

// QuantileSketch estimates a fixed set of quantiles from a stream of
// observations in O(1) memory, using the P² algorithm (Jain & Chlamtac,
// "The P² algorithm for dynamic calculation of quantiles and histograms
// without storing observations", CACM 1985). Each tracked quantile keeps
// five markers whose heights approximate the quantile as observations
// arrive; the first five observations are held exactly and answered
// exactly.
//
// The sketch is fully deterministic: feeding two sketches the same
// observations in the same order leaves them in identical states, so the
// streaming engines' differential tests can compare sketches with
// reflect.DeepEqual the same way they compare every other metric.
type QuantileSketch struct {
	qs    []float64
	count int64
	first [5]float64 // exact buffer for the first five observations
	est   []p2est
}

// p2est is the five-marker P² state for one tracked quantile.
type p2est struct {
	q  float64
	h  [5]float64 // marker heights
	n  [5]float64 // actual marker positions (1-based)
	np [5]float64 // desired marker positions
	dn [5]float64 // desired-position increments per observation
}

// NewQuantileSketch tracks the given quantile probabilities, each in
// (0, 1). Duplicates are tolerated; order is preserved for Targets.
func NewQuantileSketch(qs ...float64) *QuantileSketch {
	s := &QuantileSketch{qs: append([]float64(nil), qs...), est: make([]p2est, len(qs))}
	for i, q := range qs {
		s.est[i].q = q
	}
	return s
}

// Targets returns the tracked quantile probabilities, in construction
// order.
func (s *QuantileSketch) Targets() []float64 { return append([]float64(nil), s.qs...) }

// Count returns the number of observations added.
func (s *QuantileSketch) Count() int64 { return s.count }

// Add folds one observation into every tracked quantile's markers.
func (s *QuantileSketch) Add(x float64) {
	if s.count < 5 {
		s.first[s.count] = x
		s.count++
		if s.count == 5 {
			s.initMarkers()
		}
		return
	}
	s.count++
	for i := range s.est {
		s.est[i].add(x)
	}
}

// initMarkers seeds each quantile's markers from the sorted first five
// observations, per the P² initialization step.
func (s *QuantileSketch) initMarkers() {
	var sorted [5]float64
	copy(sorted[:], s.first[:])
	sort.Float64s(sorted[:])
	for i := range s.est {
		e := &s.est[i]
		e.h = sorted
		e.n = [5]float64{1, 2, 3, 4, 5}
		q := e.q
		e.np = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
		e.dn = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	}
}

// add runs one P² update: locate the cell containing x (extending the
// extreme markers if x falls outside them), shift the positions, and
// nudge each interior marker toward its desired position with a
// piecewise-parabolic (falling back to linear) height adjustment.
func (e *p2est) add(x float64) {
	var k int
	switch {
	case x < e.h[0]:
		e.h[0] = x
		k = 0
	case x >= e.h[4]:
		e.h[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.h[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := 0; i < 5; i++ {
		e.np[i] += e.dn[i]
	}
	for i := 1; i <= 3; i++ {
		d := e.np[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := e.parabolic(i, sign)
			if !(e.h[i-1] < h && h < e.h[i+1]) {
				h = e.linear(i, sign)
			}
			e.h[i] = h
			e.n[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i by d (±1).
func (e *p2est) parabolic(i int, d float64) float64 {
	return e.h[i] + d/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+d)*(e.h[i+1]-e.h[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-d)*(e.h[i]-e.h[i-1])/(e.n[i]-e.n[i-1]))
}

// linear is the fallback height prediction when the parabola would break
// marker monotonicity.
func (e *p2est) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.h[i] + d*(e.h[j]-e.h[i])/(e.n[j]-e.n[i])
}

// estimate returns the current height of the center marker — the P²
// quantile estimate.
func (e *p2est) estimate() float64 { return e.h[2] }

// Query returns the estimate for probability q. Tracked probabilities
// answer directly from their markers; other probabilities interpolate
// piecewise-linearly through the tracked estimates, anchored at the
// observed minimum (q=0) and maximum (q=1), so the whole [0, 1] range is
// answerable the way the histogram-backed path is. With five or fewer
// observations the answer is exact.
func (s *QuantileSketch) Query(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if s.count <= 5 {
		exact := append([]float64(nil), s.first[:s.count]...)
		sort.Float64s(exact)
		return quantileSorted(exact, q)
	}
	if len(s.est) == 0 {
		return 0
	}
	// Assemble the known (probability, estimate) anchors: min, each
	// tracked quantile, max — sorted by probability.
	type anchor struct{ p, v float64 }
	anchors := make([]anchor, 0, len(s.est)+2)
	anchors = append(anchors, anchor{0, s.est[0].h[0]})
	for i := range s.est {
		anchors = append(anchors, anchor{s.est[i].q, s.est[i].estimate()})
	}
	anchors = append(anchors, anchor{1, s.est[0].h[4]})
	sort.Slice(anchors, func(a, b int) bool { return anchors[a].p < anchors[b].p })
	if q <= anchors[0].p {
		return anchors[0].v
	}
	for i := 1; i < len(anchors); i++ {
		if q <= anchors[i].p {
			lo, hi := anchors[i-1], anchors[i]
			if hi.p == lo.p {
				return hi.v
			}
			frac := (q - lo.p) / (hi.p - lo.p)
			return lo.v*(1-frac) + hi.v*frac
		}
	}
	return anchors[len(anchors)-1].v
}
