package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of strings and renders them as an aligned ASCII
// table or as CSV. It is the output vehicle for every experiment in the
// benchmark harness.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case float32:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the aligned ASCII form.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	var sb strings.Builder
	for i, h := range t.Headers {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], h)
	}
	fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	sb.Reset()
	for i := range t.Headers {
		sb.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	for _, row := range t.Rows {
		sb.Reset()
		for i, c := range row {
			width := len(c)
			if i < len(widths) {
				width = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s  ", width, c)
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
}

// RenderCSV writes the table as RFC-4180-ish CSV (quotes only when
// needed).
func (t *Table) RenderCSV(w io.Writer) {
	writeCSVRow(w, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			io.WriteString(w, ",")
		}
		if strings.ContainsAny(c, ",\"\n") {
			io.WriteString(w, `"`+strings.ReplaceAll(c, `"`, `""`)+`"`)
		} else {
			io.WriteString(w, c)
		}
	}
	io.WriteString(w, "\n")
}
