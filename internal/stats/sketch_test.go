package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestQuantilesMatchesRepeatedQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 5, 100, 1001} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 50
		}
		orig := make([]float64, len(xs))
		copy(orig, xs)
		qs := []float64{-0.1, 0, 0.25, 0.5, 0.9, 0.99, 1, 1.5}
		got := Quantiles(xs, qs...)
		if len(got) != len(qs) {
			t.Fatalf("n=%d: %d results for %d probabilities", n, len(got), len(qs))
		}
		for i, q := range qs {
			if want := Quantile(xs, q); got[i] != want {
				t.Errorf("n=%d q=%g: Quantiles %g, Quantile %g", n, q, got[i], want)
			}
		}
		if !reflect.DeepEqual(xs, orig) {
			t.Errorf("n=%d: Quantiles mutated its input", n)
		}
	}
}

func TestQuantileSketchExactUpToFive(t *testing.T) {
	// With five or fewer observations the sketch answers from its exact
	// buffer, so it must agree with Quantile bit for bit.
	obs := []float64{9, 1, 4, 7, 2}
	for n := 0; n <= len(obs); n++ {
		s := NewQuantileSketch(0.5, 0.9)
		for _, x := range obs[:n] {
			s.Add(x)
		}
		if s.Count() != int64(n) {
			t.Fatalf("Count = %d, want %d", s.Count(), n)
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
			if got, want := s.Query(q), Quantile(obs[:n], q); got != want {
				t.Errorf("n=%d q=%g: sketch %g, exact %g", n, q, got, want)
			}
		}
	}
}

func TestQuantileSketchDeterministic(t *testing.T) {
	mk := func() *QuantileSketch {
		s := NewQuantileSketch(0.5, 0.9, 0.99)
		rng := rand.New(rand.NewSource(8))
		for i := 0; i < 5000; i++ {
			s.Add(rng.ExpFloat64() * 100)
		}
		return s
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Error("identical input orders produced different sketch states")
	}
}

// TestQuantileSketchAccuracy: P² estimates on smooth distributions land
// within a few percent of the exact sample quantiles; the min/max anchors
// make the extremes exact.
func TestQuantileSketchAccuracy(t *testing.T) {
	for _, tc := range []struct {
		name string
		draw func(*rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 1000 }},
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() * 100 }},
		{"normal", func(r *rand.Rand) float64 { return 500 + 50*r.NormFloat64() }},
	} {
		s := NewQuantileSketch(0.5, 0.9, 0.99)
		rng := rand.New(rand.NewSource(17))
		xs := make([]float64, 0, 200000)
		for i := 0; i < cap(xs); i++ {
			x := tc.draw(rng)
			s.Add(x)
			xs = append(xs, x)
		}
		exact := Quantiles(xs, 0.5, 0.9, 0.99)
		for i, q := range []float64{0.5, 0.9, 0.99} {
			got := s.Query(q)
			want := exact[i]
			spread := Quantile(xs, 1) - Quantile(xs, 0)
			if math.Abs(got-want) > 0.05*spread {
				t.Errorf("%s q=%g: sketch %g vs exact %g (spread %g)", tc.name, q, got, want, spread)
			}
		}
		if got, want := s.Query(0), Quantile(xs, 0); got != want {
			t.Errorf("%s: min anchor %g, want %g", tc.name, got, want)
		}
		if got, want := s.Query(1), Quantile(xs, 1); got != want {
			t.Errorf("%s: max anchor %g, want %g", tc.name, got, want)
		}
	}
}

// TestQuantileSketchMonotone: queries across probabilities never decrease,
// even between tracked markers (the interpolation is piecewise linear
// through sorted anchors).
func TestQuantileSketchMonotone(t *testing.T) {
	s := NewQuantileSketch(0.5, 0.9, 0.99)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 10000; i++ {
		s.Add(rng.Float64() * 100)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := s.Query(q)
		if v < prev {
			t.Fatalf("Query(%g) = %g < previous %g", q, v, prev)
		}
		prev = v
	}
}

func TestQuantileSketchDegenerate(t *testing.T) {
	// No tracked quantiles: queries fall back to the exact buffer while it
	// lasts, then 0 — but never panic.
	s := NewQuantileSketch()
	for i := 0; i < 10; i++ {
		s.Add(float64(i))
	}
	_ = s.Query(0.5)

	// Constant stream: every quantile is that constant.
	c := NewQuantileSketch(0.5, 0.9)
	for i := 0; i < 1000; i++ {
		c.Add(42)
	}
	for _, q := range []float64{0, 0.5, 0.9, 1} {
		if got := c.Query(q); got != 42 {
			t.Errorf("constant stream Query(%g) = %g, want 42", q, got)
		}
	}

	// Empty sketch.
	if got := NewQuantileSketch(0.5).Query(0.5); got != 0 {
		t.Errorf("empty sketch Query = %g, want 0", got)
	}
}
