package stats

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccAgainstNaive(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		rng := rand.New(rand.NewSource(seed))
		var a Acc
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
			a.Add(xs[i])
		}
		var sum float64
		mn, mx := xs[0], xs[0]
		for _, x := range xs {
			sum += x
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(n-1)
		return math.Abs(a.Mean()-mean) < 1e-9 &&
			math.Abs(a.Var()-variance) < 1e-6 &&
			a.Min() == mn && a.Max() == mx && a.N() == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAccEmptyAndSingle(t *testing.T) {
	var a Acc
	if a.Mean() != 0 || a.Var() != 0 || a.Min() != 0 || a.Max() != 0 || a.CI95() != 0 {
		t.Error("empty accumulator not all-zero")
	}
	a.Add(4)
	if a.Mean() != 4 || a.Var() != 0 || a.Min() != 4 || a.Max() != 4 {
		t.Error("single-observation accumulator wrong")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var small, large Acc
	for i := 0; i < 10; i++ {
		small.Add(rng.NormFloat64())
	}
	for i := 0; i < 1000; i++ {
		large.Add(rng.NormFloat64())
	}
	if large.CI95() >= small.CI95() {
		t.Errorf("CI95 did not shrink: %f vs %f", large.CI95(), small.CI95())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q, want float64
	}{{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}}
	for _, tc := range tests {
		if got := Quantile(xs, tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%.2f) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile not 0")
	}
	if Quantile([]float64{7}, 0.3) != 7 {
		t.Error("single-element quantile wrong")
	}
	// Input must not be reordered.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 50} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under=%d over=%d, want 1,2", h.Under, h.Over)
	}
	if h.Buckets[0] != 2 { // 0 and 1.9
		t.Errorf("bucket0 = %d, want 2", h.Buckets[0])
	}
	if h.Buckets[1] != 1 { // 2
		t.Errorf("bucket1 = %d, want 1", h.Buckets[1])
	}
	if h.Buckets[4] != 1 { // 9.99
		t.Errorf("bucket4 = %d, want 1", h.Buckets[4])
	}
	if h.Total() != 7 {
		t.Errorf("total = %d, want 7", h.Total())
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta-longer-name", 42)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "beta-longer-name") || !strings.Contains(out, "1.5000") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`say "hi"`, "x,y")
	tb.AddRow("plain", 3)
	var buf bytes.Buffer
	tb.RenderCSV(&buf)
	want := "a,b\n\"say \"\"hi\"\"\",\"x,y\"\nplain,3\n"
	if buf.String() != want {
		t.Errorf("csv:\n%q\nwant:\n%q", buf.String(), want)
	}
}
