// Package stats provides the small statistics toolkit used by the
// benchmark harness: streaming moments (Welford), quantiles (exact and
// the constant-space P² sketch), confidence intervals (normal CI95 and
// exact Student-t via Estimator/TCrit), sequential precision Targets,
// rule-of-three exceedance bounds, histograms, and ASCII/CSV table
// rendering.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Acc is a streaming accumulator for mean and variance (Welford's
// algorithm), plus min/max. The zero value is ready to use.
type Acc struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the accumulator.
func (a *Acc) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of observations.
func (a *Acc) N() int64 { return a.n }

// Mean returns the sample mean (0 when empty).
func (a *Acc) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance.
func (a *Acc) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Acc) Std() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest observation (0 when empty).
func (a *Acc) Min() float64 {
	if a.n == 0 {
		return 0
	}
	return a.min
}

// Max returns the largest observation (0 when empty).
func (a *Acc) Max() float64 {
	if a.n == 0 {
		return 0
	}
	return a.max
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func (a *Acc) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return 1.96 * a.Std() / math.Sqrt(float64(a.n))
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs is not modified.
//
// Each call copies and sorts xs; callers extracting several quantiles
// from the same data should use Quantiles, which sorts once.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// Quantiles returns the quantiles of xs at each probability in qs, using
// the same interpolation as Quantile but copying and sorting xs only
// once — per-call cost O(n log n + |qs|) instead of |qs|·O(n log n).
// xs is not modified.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, q := range qs {
		out[i] = quantileSorted(s, q)
	}
	return out
}

// quantileSorted reads the q-th quantile off already-sorted data.
func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Histogram bins observations into equal-width buckets over [lo, hi].
type Histogram struct {
	Lo, Hi  float64
	Buckets []int64
	Under   int64
	Over    int64
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		panic("stats: histogram needs at least one bucket")
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram range [%g,%g)", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int64, n)}
}

// Add bins one observation.
func (h *Histogram) Add(x float64) {
	if x < h.Lo {
		h.Under++
		return
	}
	if x >= h.Hi {
		h.Over++
		return
	}
	k := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
	if k == len(h.Buckets) {
		k--
	}
	h.Buckets[k]++
}

// Total returns the number of observations including out-of-range ones.
func (h *Histogram) Total() int64 {
	t := h.Under + h.Over
	for _, b := range h.Buckets {
		t += b
	}
	return t
}
