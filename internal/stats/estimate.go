package stats

import (
	"fmt"
	"math"
)

// Estimator is a streaming mean estimator with Student-t confidence
// intervals: an Acc (Welford moments) plus the t-critical machinery the
// sequential ratio driver stops on. The zero value is ready to use.
//
// The Acc.CI95 normal approximation undercovers at small n (1.96 vs the
// t critical value 2.26 at n=10); Estimator.HalfWidth uses the exact
// Student-t quantile for the observed degrees of freedom, so its
// intervals achieve nominal coverage — which the estimate_test.go
// coverage suite verifies against known distributions.
type Estimator struct {
	Acc
}

// HalfWidth returns the half-width of the two-sided Student-t confidence
// interval for the mean at the given confidence level (e.g. 0.95). It is
// 0 until two observations exist.
func (e *Estimator) HalfWidth(confidence float64) float64 {
	n := e.N()
	if n < 2 {
		return 0
	}
	return TCrit(n-1, confidence) * e.Std() / math.Sqrt(float64(n))
}

// Interval returns the two-sided Student-t confidence interval for the
// mean at the given confidence level.
func (e *Estimator) Interval(confidence float64) (lo, hi float64) {
	hw := e.HalfWidth(confidence)
	return e.Mean() - hw, e.Mean() + hw
}

// Target is a precision target for a sequential estimation: keep sampling
// until the Student-t CI half-width on the mean clears the absolute
// and/or relative width, then stop. The zero value is disabled (sampling
// runs to its budget).
type Target struct {
	// Confidence is the CI confidence level; 0 selects 0.95.
	Confidence float64
	// AbsWidth stops sampling once the CI half-width is <= AbsWidth.
	// 0 disables the absolute criterion.
	AbsWidth float64
	// RelWidth stops sampling once the CI half-width is <= RelWidth *
	// |mean|. 0 disables the relative criterion.
	RelWidth float64
	// MinSamples refuses to stop before this many observations, guarding
	// against freak early agreement; 0 selects 8.
	MinSamples int64
}

// Enabled reports whether the target imposes any stopping criterion.
func (t Target) Enabled() bool { return t.AbsWidth > 0 || t.RelWidth > 0 }

// ConfidenceLevel returns the effective confidence level (0.95 default).
func (t Target) ConfidenceLevel() float64 {
	if t.Confidence <= 0 || t.Confidence >= 1 {
		return 0.95
	}
	return t.Confidence
}

// minSamples returns the effective MinSamples floor.
func (t Target) minSamples() int64 {
	if t.MinSamples <= 0 {
		return 8
	}
	return t.MinSamples
}

// Met reports whether the estimator has reached the target: at least
// MinSamples observations and a Student-t half-width inside any enabled
// width criterion. A disabled target is never met.
func (t Target) Met(e *Estimator) bool {
	if !t.Enabled() || e.N() < max(2, t.minSamples()) {
		return false
	}
	hw := e.HalfWidth(t.ConfidenceLevel())
	if t.AbsWidth > 0 && hw <= t.AbsWidth {
		return true
	}
	return t.RelWidth > 0 && hw <= t.RelWidth*math.Abs(e.Mean())
}

// String renders the target compactly, e.g. "hw<=0.0100@95%".
func (t Target) String() string {
	if !t.Enabled() {
		return "no target"
	}
	s := ""
	if t.AbsWidth > 0 {
		s = fmt.Sprintf("hw<=%.4g", t.AbsWidth)
	}
	if t.RelWidth > 0 {
		if s != "" {
			s += " or "
		}
		s += fmt.Sprintf("hw<=%.4g*|mean|", t.RelWidth)
	}
	return fmt.Sprintf("%s@%g%%", s, 100*t.ConfidenceLevel())
}

// TCrit returns the two-sided Student-t critical value for the given
// degrees of freedom and confidence level: the t with
// P(|T_df| <= t) = confidence. Large df converge to the normal critical
// value (1.9600 at 95%).
func TCrit(df int64, confidence float64) float64 {
	if df < 1 {
		df = 1
	}
	if confidence <= 0 {
		return 0
	}
	if confidence >= 1 {
		return math.Inf(1)
	}
	// P(|T| <= t) = 1 - I_{df/(df+t^2)}(df/2, 1/2), monotone increasing in
	// t, so bisection on the CDF is exact to float precision and needs no
	// special-cased quantile series.
	want := confidence
	lo, hi := 0.0, 2.0
	for tTwoSided(df, hi) < want {
		hi *= 2
		if hi > 1e10 {
			return hi
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if mid == lo || mid == hi {
			break
		}
		if tTwoSided(df, mid) < want {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// tTwoSided returns P(|T_df| <= t) for t >= 0.
func tTwoSided(df int64, t float64) float64 {
	if t <= 0 {
		return 0
	}
	x := float64(df) / (float64(df) + t*t)
	return 1 - regIncBeta(float64(df)/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// via the standard continued-fraction expansion (Lentz's method), using
// the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) to stay in the region where
// the fraction converges fast.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	// ln of the prefactor x^a (1-x)^b / (a B(a,b)).
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lnPre := lbeta - la - lb + a*math.Log(x) + b*math.Log1p(-x)
	if x < (a+1)/(a+b+2) {
		return math.Exp(lnPre) * betaCF(a, b, x) / a
	}
	return 1 - math.Exp(lnPre)*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the incomplete-beta continued fraction (Numerical
// Recipes form) with modified Lentz iteration.
func betaCF(a, b, x float64) float64 {
	const (
		tiny    = 1e-300
		eps     = 1e-15
		maxIter = 300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// ExceedanceBound returns the rule-of-three-style frequency bound for a
// clean sample: if none of n independent trials exceeded a threshold,
// then with confidence 1-delta the per-trial exceedance probability is at
// most the returned p (the largest p with (1-p)^n >= delta). It backs
// statements like "no counterexample above r in n seeds => a random seed
// exceeds r with probability <= p at confidence 1-delta".
func ExceedanceBound(n int64, delta float64) float64 {
	if n <= 0 {
		return 1
	}
	if delta <= 0 {
		return 1
	}
	if delta >= 1 {
		return 0
	}
	return 1 - math.Pow(delta, 1/float64(n))
}
