package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestTCritKnownValues pins the Student-t critical values against
// standard table entries.
func TestTCritKnownValues(t *testing.T) {
	cases := []struct {
		df   int64
		conf float64
		want float64
	}{
		{1, 0.95, 12.7062},
		{2, 0.95, 4.3027},
		{4, 0.95, 2.7764},
		{9, 0.95, 2.2622},
		{10, 0.95, 2.2281},
		{30, 0.95, 2.0423},
		{100, 0.95, 1.9840},
		{1000, 0.95, 1.9623},
		{9, 0.99, 3.2498},
		{9, 0.90, 1.8331},
	}
	for _, c := range cases {
		got := TCrit(c.df, c.conf)
		if math.Abs(got-c.want) > 2e-3 {
			t.Errorf("TCrit(%d, %v) = %.4f, want %.4f", c.df, c.conf, got, c.want)
		}
	}
	if TCrit(10, 0) != 0 {
		t.Errorf("TCrit at confidence 0 should be 0")
	}
	if !math.IsInf(TCrit(10, 1), 1) {
		t.Errorf("TCrit at confidence 1 should be +Inf")
	}
	// df < 1 clamps to 1 rather than misbehaving.
	if got, want := TCrit(0, 0.95), TCrit(1, 0.95); got != want {
		t.Errorf("TCrit(0) = %v, want clamp to TCrit(1) = %v", got, want)
	}
}

// TestTCritMatchesNormalLimit checks convergence to the normal critical
// value for large df.
func TestTCritMatchesNormalLimit(t *testing.T) {
	if got := TCrit(1_000_000, 0.95); math.Abs(got-1.95996) > 1e-3 {
		t.Errorf("TCrit(1e6, 0.95) = %.5f, want ~1.95996", got)
	}
}

// coverage runs `resamples` independent experiments drawing n samples
// from draw and reports the fraction of Student-t intervals (at conf)
// containing trueMean.
func coverage(t *testing.T, rng *rand.Rand, draw func(*rand.Rand) float64,
	trueMean float64, n, resamples int, conf float64) float64 {
	t.Helper()
	hits := 0
	for r := 0; r < resamples; r++ {
		var e Estimator
		for i := 0; i < n; i++ {
			e.Add(draw(rng))
		}
		lo, hi := e.Interval(conf)
		if lo <= trueMean && trueMean <= hi {
			hits++
		}
	}
	return float64(hits) / float64(resamples)
}

// TestCoverageNominal asserts the t-CI achieves nominal 95% coverage
// within ±2% over 1000 fixed-seed resamples of three known
// distributions: normal (exact t theory), lognormal (skewed) and
// two-point (discrete).
func TestCoverageNominal(t *testing.T) {
	const (
		resamples = 1000
		conf      = 0.95
		tol       = 0.02
	)
	cases := []struct {
		name     string
		n        int
		trueMean float64
		draw     func(*rand.Rand) float64
	}{
		{"normal", 15, 3.0, func(r *rand.Rand) float64 { return 3.0 + 2.0*r.NormFloat64() }},
		{"lognormal", 60, math.Exp(0.125), func(r *rand.Rand) float64 { return math.Exp(0.5 * r.NormFloat64()) }},
		{"two-point", 40, 0.5, func(r *rand.Rand) float64 {
			if r.Float64() < 0.5 {
				return 0
			}
			return 1
		}},
	}
	for i, c := range cases {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		cov := coverage(t, rng, c.draw, c.trueMean, c.n, resamples, conf)
		if math.Abs(cov-conf) > tol {
			t.Errorf("%s: coverage %.3f outside nominal %.2f±%.2f (n=%d, %d resamples)",
				c.name, cov, conf, tol, c.n, resamples)
		}
	}
}

// TestNormalApproxUndercoversSmallN documents why Estimator exists: at
// n=5 the Acc.CI95 1.96-sigma interval undercovers while the t interval
// stays nominal.
func TestNormalApproxUndercoversSmallN(t *testing.T) {
	const resamples = 2000
	rng := rand.New(rand.NewSource(7))
	tHits, zHits := 0, 0
	for r := 0; r < resamples; r++ {
		var e Estimator
		for i := 0; i < 5; i++ {
			e.Add(rng.NormFloat64())
		}
		if lo, hi := e.Interval(0.95); lo <= 0 && 0 <= hi {
			tHits++
		}
		if ci := e.CI95(); e.Mean()-ci <= 0 && 0 <= e.Mean()+ci {
			zHits++
		}
	}
	tCov := float64(tHits) / resamples
	zCov := float64(zHits) / resamples
	if tCov < 0.93 {
		t.Errorf("t coverage at n=5: %.3f, want >= 0.93", tCov)
	}
	if zCov >= tCov {
		t.Errorf("normal approx coverage %.3f should undercover vs t %.3f at n=5", zCov, tCov)
	}
}

// TestPairedShrinkage asserts the core variance-reduction claim: on a
// strongly correlated pair, the CI of the paired per-sample difference is
// >= 5x narrower than the CI of the difference of independent samples.
func TestPairedShrinkage(t *testing.T) {
	const n = 200
	rng := rand.New(rand.NewSource(11))
	var paired, indep Estimator
	for i := 0; i < n; i++ {
		z := rng.NormFloat64() // shared workload noise
		x := z + 0.05*rng.NormFloat64()
		y := z + 0.1 + 0.05*rng.NormFloat64()
		paired.Add(y - x)
		// Independent arms: two unrelated workload draws.
		zx, zy := rng.NormFloat64(), rng.NormFloat64()
		indep.Add((zy + 0.1 + 0.05*rng.NormFloat64()) - (zx + 0.05*rng.NormFloat64()))
	}
	hwP := paired.HalfWidth(0.95)
	hwI := indep.HalfWidth(0.95)
	if hwP <= 0 || hwI <= 0 {
		t.Fatalf("half-widths must be positive, got paired=%v indep=%v", hwP, hwI)
	}
	if hwI < 5*hwP {
		t.Errorf("paired CI should shrink >=5x: paired hw=%.4f indep hw=%.4f (ratio %.1fx)",
			hwP, hwI, hwI/hwP)
	}
}

func TestEstimatorHalfWidthSmallN(t *testing.T) {
	var e Estimator
	if hw := e.HalfWidth(0.95); hw != 0 {
		t.Errorf("empty estimator half-width = %v, want 0", hw)
	}
	e.Add(1)
	if hw := e.HalfWidth(0.95); hw != 0 {
		t.Errorf("n=1 half-width = %v, want 0", hw)
	}
	e.Add(3)
	// n=2, df=1: hw = 12.706 * std/sqrt(2); std = sqrt(2) for {1,3}.
	want := 12.7062 * math.Sqrt2 / math.Sqrt2
	if hw := e.HalfWidth(0.95); math.Abs(hw-want) > 1e-2 {
		t.Errorf("n=2 half-width = %v, want %v", hw, want)
	}
}

func TestTargetSemantics(t *testing.T) {
	if (Target{}).Enabled() {
		t.Error("zero target must be disabled")
	}
	if (Target{}).Met(&Estimator{}) {
		t.Error("disabled target must never be met")
	}
	if got := (Target{}).ConfidenceLevel(); got != 0.95 {
		t.Errorf("default confidence = %v, want 0.95", got)
	}
	if got := (Target{Confidence: 0.9}).ConfidenceLevel(); got != 0.9 {
		t.Errorf("explicit confidence = %v, want 0.9", got)
	}

	tgt := Target{AbsWidth: 0.5}
	var e Estimator
	for i := 0; i < 7; i++ {
		e.Add(10) // zero variance: hw = 0 immediately
	}
	if tgt.Met(&e) {
		t.Error("target met before MinSamples floor (default 8)")
	}
	e.Add(10)
	if !tgt.Met(&e) {
		t.Error("zero-variance sample should meet an absolute target at n=8")
	}

	rel := Target{RelWidth: 0.01, MinSamples: 2}
	var f Estimator
	f.Add(99.9)
	f.Add(100.1)
	// hw = 12.706*std/sqrt(2) ~ 1.27; 1% of mean is 1.0 => not met.
	if rel.Met(&f) {
		t.Error("relative target met too early")
	}
	for i := 0; i < 20; i++ {
		f.Add(100)
	}
	if !rel.Met(&f) {
		t.Errorf("relative target should be met at n=%d (hw=%v)", f.N(), f.HalfWidth(0.95))
	}

	if s := (Target{}).String(); s != "no target" {
		t.Errorf("disabled target string = %q", s)
	}
	both := Target{AbsWidth: 0.01, RelWidth: 0.05}
	if s := both.String(); s == "" || s == "no target" {
		t.Errorf("enabled target string = %q", s)
	}
}

func TestExceedanceBound(t *testing.T) {
	// Rule of three: at 95% confidence and large n, bound ~ 3/n.
	if got := ExceedanceBound(1000, 0.05); math.Abs(got-3.0/1000) > 3e-4 {
		t.Errorf("ExceedanceBound(1000, 0.05) = %v, want ~0.003", got)
	}
	// Exact identity: (1-p)^n = delta at the returned p.
	for _, n := range []int64{1, 2, 10, 59} {
		p := ExceedanceBound(n, 0.05)
		if back := math.Pow(1-p, float64(n)); math.Abs(back-0.05) > 1e-12 {
			t.Errorf("n=%d: (1-p)^n = %v, want 0.05", n, back)
		}
	}
	// More trials => tighter bound.
	if ExceedanceBound(10, 0.05) <= ExceedanceBound(100, 0.05) {
		t.Error("bound must tighten with n")
	}
	if ExceedanceBound(0, 0.05) != 1 || ExceedanceBound(10, 0) != 1 {
		t.Error("degenerate inputs must return the vacuous bound 1")
	}
	if ExceedanceBound(10, 1) != 0 {
		t.Error("delta=1 must return 0")
	}
}

func TestRegIncBetaEdges(t *testing.T) {
	if got := regIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v, want 0", got)
	}
	if got := regIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v, want 1", got)
	}
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
	// Symmetry: I_x(a,b) + I_{1-x}(b,a) = 1.
	if got := regIncBeta(3, 5, 0.3) + regIncBeta(5, 3, 0.7); math.Abs(got-1) > 1e-12 {
		t.Errorf("symmetry sum = %v, want 1", got)
	}
}
