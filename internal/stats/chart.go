package stats

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Chart is a multi-series scatter/line chart rendered as ASCII art. It is
// how the benchmark harness draws the paper's "figures" in a terminal;
// the same data is exported as CSV for external plotting.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Series is one named line of (x, y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// seriesMarks are the glyphs assigned to series in order.
const seriesMarks = "*o+x#@%&"

// Render draws the chart into an ASCII grid of the given size
// (characters). Each series gets a distinct glyph; a legend follows.
func (c *Chart) Render(w io.Writer, width, height int) {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range c.Series {
		for i := range s.X {
			any = true
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if !any {
		fmt.Fprintf(w, "%s: (no data)\n", c.Title)
		return
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i := range s.X {
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = mark
			}
		}
	}
	if c.Title != "" {
		fmt.Fprintf(w, "-- %s --\n", c.Title)
	}
	yHi := trimFloat(maxY)
	yLo := trimFloat(minY)
	margin := len(yHi)
	if len(yLo) > margin {
		margin = len(yLo)
	}
	for r, line := range grid {
		label := strings.Repeat(" ", margin)
		if r == 0 {
			label = fmt.Sprintf("%*s", margin, yHi)
		}
		if r == height-1 {
			label = fmt.Sprintf("%*s", margin, yLo)
		}
		fmt.Fprintf(w, "%s |%s|\n", label, string(line))
	}
	fmt.Fprintf(w, "%s +%s+\n", strings.Repeat(" ", margin), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s  %-*s%s\n", strings.Repeat(" ", margin), width-len(trimFloat(maxX)), trimFloat(minX), trimFloat(maxX))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(w, "%s  x: %s, y: %s\n", strings.Repeat(" ", margin), c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(w, "%s  %c = %s\n", strings.Repeat(" ", margin), seriesMarks[si%len(seriesMarks)], s.Name)
	}
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', 4, 64)
	return s
}

// ChartFromTable builds a chart from a rendered table: xCol and yCol name
// the numeric columns; groupCols (optional) name columns whose joined
// values split the rows into series. Non-numeric cells are skipped.
func ChartFromTable(tb *Table, xCol, yCol string, groupCols ...string) (*Chart, error) {
	xi := colIndex(tb, xCol)
	yi := colIndex(tb, yCol)
	if xi < 0 || yi < 0 {
		return nil, fmt.Errorf("stats: chart columns %q/%q not found in table %q", xCol, yCol, tb.Title)
	}
	var gis []int
	for _, g := range groupCols {
		gi := colIndex(tb, g)
		if gi < 0 {
			return nil, fmt.Errorf("stats: group column %q not found in table %q", g, tb.Title)
		}
		gis = append(gis, gi)
	}
	bySeries := map[string]*Series{}
	var order []string
	for _, row := range tb.Rows {
		if xi >= len(row) || yi >= len(row) {
			continue
		}
		x, errX := strconv.ParseFloat(row[xi], 64)
		y, errY := strconv.ParseFloat(row[yi], 64)
		if errX != nil || errY != nil ||
			math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsNaN(x) || math.IsNaN(y) {
			continue
		}
		name := yCol
		if len(gis) > 0 {
			var parts []string
			for _, gi := range gis {
				parts = append(parts, row[gi])
			}
			name = strings.Join(parts, "/")
		}
		s, ok := bySeries[name]
		if !ok {
			s = &Series{Name: name}
			bySeries[name] = s
			order = append(order, name)
		}
		s.X = append(s.X, x)
		s.Y = append(s.Y, y)
	}
	// Series keep first-appearance order, which is deterministic because
	// table rows are.
	ch := &Chart{Title: tb.Title, XLabel: xCol, YLabel: yCol}
	for _, name := range order {
		ch.Series = append(ch.Series, *bySeries[name])
	}
	return ch, nil
}

func colIndex(tb *Table, name string) int {
	for i, h := range tb.Headers {
		if h == name {
			return i
		}
	}
	return -1
}
