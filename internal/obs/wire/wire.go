// Package wire connects the obs metrics core to every instrumented
// layer: Up installs one registry's probe bundles into switchsim, fleet,
// offline and ratio process-wide, Down removes them, and CLI/Session
// give the four CLIs one shared implementation of the
// -progress/-metrics-addr/-cpuprofile/-memprofile/-trace flag surface.
// It lives below cmd/ and the test suites but above the instrumented
// packages, which only ever see their own probe bundle.
package wire

import (
	"flag"
	"fmt"
	"os"
	"time"

	"qswitch/internal/fleet"
	"qswitch/internal/obs"
	"qswitch/internal/offline"
	"qswitch/internal/ratio"
	"qswitch/internal/switchsim"
)

// Up installs probe bundles registered in reg into every instrumented
// in-process layer (switchsim engines, fleet runners, offline judges,
// sequential estimation). Passing a nil registry installs no-op bundles,
// which is equivalent to Down.
func Up(reg *obs.Registry) {
	switchsim.SetProbes(obs.NewEngineProbes(reg))
	fleet.SetProbes(obs.NewFleetProbes(reg))
	offline.SetProbes(obs.NewJudgeProbes(reg))
	ratio.SetProbes(obs.NewSeqProbes(reg))
}

// Down removes all probe bundles, restoring the uninstrumented state.
func Down() {
	switchsim.SetProbes(nil)
	fleet.SetProbes(nil)
	offline.SetProbes(nil)
	ratio.SetProbes(nil)
}

// CLI holds the parsed observability flags (see Flags).
type CLI struct {
	// Progress forces the throttled stderr progress line even when
	// stderr is not a TTY; nil when the flag was not registered.
	Progress *bool
	// MetricsAddr serves /metrics, /debug/vars and /debug/pprof on this
	// address while the process runs ("" disables).
	MetricsAddr *string
	// CPUProfile, MemProfile and Trace are the profiling output paths
	// ("" disables each).
	CPUProfile *string
	MemProfile *string
	Trace      *string
}

// Flags registers the shared observability flags on fs. withProgress
// controls whether -progress is offered (qswitchd has no foreground run
// to report on); traceFlag names the execution-trace flag, letting
// switchsim keep its preexisting -trace (trace replay) flag and expose
// the profiler as -exectrace instead.
func Flags(fs *flag.FlagSet, withProgress bool, traceFlag string) *CLI {
	c := &CLI{
		MetricsAddr: fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while running (e.g. 127.0.0.1:9410)"),
		CPUProfile:  fs.String("cpuprofile", "", "write a pprof CPU profile to this file"),
		MemProfile:  fs.String("memprofile", "", "write a pprof heap profile to this file at exit"),
		Trace:       fs.String(traceFlag, "", "write a runtime execution trace to this file"),
	}
	if withProgress {
		c.Progress = fs.Bool("progress", false, "force the throttled stderr progress line (default: only when stderr is a TTY)")
	}
	return c
}

// Session is the per-process observability state Start wires up from the
// parsed flags. Close tears everything down in order (progress line,
// endpoint, profiles) and returns any profile-write error.
type Session struct {
	// Reg is the process registry every probe bundle flushes into.
	Reg *obs.Registry

	tracker     *obs.Tracker
	server      *obs.Server
	stopProfile func() error
}

// Start installs probes into a fresh registry and activates whatever the
// flags asked for: the metrics endpoint, the profile captures, and — when
// -progress is set or stderr is a TTY — the progress tracker. It always
// returns a usable session; the error reports endpoint/profile setup
// failures after local cleanup.
func (c *CLI) Start() (*Session, error) {
	reg := obs.NewRegistry()
	Up(reg)
	s := &Session{Reg: reg}
	if *c.MetricsAddr != "" {
		srv, err := obs.StartServer(*c.MetricsAddr, reg)
		if err != nil {
			return s, fmt.Errorf("metrics endpoint: %w", err)
		}
		s.server = srv
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics\n", srv.Addr())
	}
	stop, err := obs.Profiles{CPU: *c.CPUProfile, Mem: *c.MemProfile, Trace: *c.Trace}.Start()
	if err != nil {
		s.server.Close()
		return s, err
	}
	s.stopProfile = stop
	if c.Progress != nil {
		tty := obs.IsTerminal(os.Stderr)
		if *c.Progress || tty {
			s.tracker = obs.StartTracker(os.Stderr, reg, 500*time.Millisecond, tty)
		}
	}
	return s, nil
}

// Close stops the tracker, endpoint and profile captures. Safe on a nil
// receiver and after a failed Start.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	s.tracker.Stop()
	s.server.Close()
	if s.stopProfile != nil {
		return s.stopProfile()
	}
	return nil
}
