// Package obs is the dependency-free observability core: atomic
// counters, gauges and fixed-bucket histograms in a named registry, a
// hand-rolled Prometheus text-format / JSON vars encoder, an HTTP
// endpoint bundling /metrics, /debug/vars and /debug/pprof, structured
// JSONL run-event logging over log/slog, a throttled progress tracker
// (seeds done, slots/sec, CI half-width, ETA) and profiling hooks
// (CPU/heap profiles, execution traces).
//
// # The zero-overhead contract
//
// Instrumented hot loops must stay exactly as fast, allocation-free and
// decision-identical as their uninstrumented form. Three rules enforce
// that:
//
//   - Every metric method is safe on a nil receiver and compiles to a
//     predictably-taken branch, so "probes disabled" costs one compare
//     per flush site — never per slot.
//   - Engines accumulate probe data in function-local integers and flush
//     once per run (or per batch/chunk), so the per-slot cost of "probes
//     enabled" is zero: no atomics, no allocations, no extra branches in
//     the slot body. AllocsPerRun pins in internal/core, internal/fleet
//     and this package hold the line.
//   - Probes only ever observe; they are never read back by the code
//     under measurement. Differential suites (probes on vs off must be
//     byte-identical across every ratio backend) enforce
//     decision-neutrality.
//
// The typed probe bundles (EngineProbes, FleetProbes, JudgeProbes,
// SeqProbes) name the metrics each instrumented layer flushes;
// internal/obs/wire installs them process-wide.
package obs
