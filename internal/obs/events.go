package obs

import (
	"io"
	"log/slog"
	"sort"
)

// NewRunLog returns a structured JSONL event logger writing one JSON
// object per line to w — the -events sink of switchbench and qswitchctl.
// Events carry a time, level, msg and whatever attributes the call site
// attaches; downstream tooling gets machine-readable run telemetry
// without scraping human log text.
func NewRunLog(w io.Writer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, nil))
}

// LogSnapshot emits one event carrying every sample of the registry as
// sorted attributes. Nil loggers and registries are no-ops.
func LogSnapshot(l *slog.Logger, msg string, reg *Registry) {
	if l == nil {
		return
	}
	snap := reg.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	attrs := make([]any, 0, len(keys))
	for _, k := range keys {
		attrs = append(attrs, slog.Float64(k, snap[k]))
	}
	l.Info(msg, attrs...)
}
