package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods are
// safe on a nil receiver (no-ops / zero), so disabled probes cost one
// predictable branch at each flush site.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous integer value. All methods are safe
// on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add shifts the gauge's value by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (zero on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an atomic instantaneous float64 value. All methods are
// safe on a nil receiver.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *FloatGauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (zero on a nil receiver).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket atomic histogram: observations are counted
// into the first bucket whose upper bound is >= the value, with an
// implicit +Inf overflow bucket. All methods are safe on a nil receiver;
// Observe never allocates.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (zero on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (zero on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// metricKind tags what a registered name holds, so one name cannot be
// registered as two different kinds.
type metricKind uint8

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindFloatGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindFloatGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry is a named set of metrics. Metric getters are get-or-create
// and safe for concurrent use; all methods are safe on a nil receiver
// (they return nil metrics, whose methods are no-ops), which is how a
// whole probe bundle degrades to predictable-branch no-ops when
// observability is off.
//
// Names follow the Prometheus data model: a base name of
// [a-zA-Z_:][a-zA-Z0-9_:]* optionally followed by a {key="value",...}
// label set, e.g. `qswitch_shard_worker_chunks_total{worker="0"}`.
// Samples sharing a base name form one family and must share a kind.
type Registry struct {
	mu       sync.Mutex
	kinds    map[string]metricKind // by base name
	counters map[string]*Counter
	gauges   map[string]*Gauge
	fgauges  map[string]*FloatGauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:    map[string]metricKind{},
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		fgauges:  map[string]*FloatGauge{},
		hists:    map[string]*Histogram{},
	}
}

// baseName strips a trailing {labels} block.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// checkName panics on malformed metric names: metric registration is
// programmer-controlled, so a bad name is a bug, not an input error.
func checkName(name string) {
	if err := validateSampleName(name); err != nil {
		panic(fmt.Sprintf("obs: bad metric name %q: %v", name, err))
	}
}

// register reserves name under kind, panicking on cross-kind collisions.
func (r *Registry) register(name string, kind metricKind) {
	checkName(name)
	base := baseName(name)
	if prev, ok := r.kinds[base]; ok && prev != kind {
		panic(fmt.Sprintf("obs: metric family %q registered as both %s and %s", base, prev, kind))
	}
	r.kinds[base] = kind
}

// Counter returns the named counter, creating it on first use. Nil
// registries return a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.register(name, kindCounter)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named integer gauge, creating it on first use. Nil
// registries return a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.register(name, kindGauge)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
// Nil registries return a nil (no-op) gauge.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.fgauges[name]; ok {
		return g
	}
	r.register(name, kindFloatGauge)
	g := &FloatGauge{}
	r.fgauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the given ascending bucket upper bounds (a +Inf bucket is implicit;
// bounds are ignored when the histogram already exists). Nil registries
// return a nil (no-op) histogram. Histogram names must not carry labels.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	if strings.IndexByte(name, '{') >= 0 {
		panic(fmt.Sprintf("obs: histogram %q: labeled histograms are not supported", name))
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram %q: bucket bounds not ascending", name))
		}
	}
	r.register(name, kindHistogram)
	h := &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]atomic.Int64, len(bounds)+1)}
	r.hists[name] = h
	return h
}

// Snapshot returns every sample as a flat name -> value map: counters and
// gauges under their own names, histograms as name_count and name_sum.
// Nil registries return nil.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+len(r.fgauges)+2*len(r.hists))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = float64(g.Value())
	}
	for name, g := range r.fgauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name+"_count"] = float64(h.Count())
		out[name+"_sum"] = h.Sum()
	}
	return out
}

// DiffSnapshot returns after - before for every key of after whose delta
// is nonzero (keys absent from before count from zero). It is how run
// reports turn two Snapshot calls into a per-run probe delta.
func DiffSnapshot(before, after map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// family is one base name's samples, ordered for deterministic output.
type family struct {
	base    string
	kind    metricKind
	samples []sample
	hist    *Histogram
}

type sample struct {
	name  string
	value float64
	isInt bool
}

// families snapshots the registry grouped and sorted by base name.
func (r *Registry) families() []family {
	r.mu.Lock()
	defer r.mu.Unlock()
	byBase := map[string]*family{}
	get := func(name string, kind metricKind) *family {
		base := baseName(name)
		f, ok := byBase[base]
		if !ok {
			f = &family{base: base, kind: kind}
			byBase[base] = f
		}
		return f
	}
	for name, c := range r.counters {
		f := get(name, kindCounter)
		f.samples = append(f.samples, sample{name, float64(c.Value()), true})
	}
	for name, g := range r.gauges {
		f := get(name, kindGauge)
		f.samples = append(f.samples, sample{name, float64(g.Value()), true})
	}
	for name, g := range r.fgauges {
		f := get(name, kindFloatGauge)
		f.samples = append(f.samples, sample{name, g.Value(), false})
	}
	for name, h := range r.hists {
		f := get(name, kindHistogram)
		f.hist = h
	}
	out := make([]family, 0, len(byBase))
	for _, f := range byBase {
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].name < f.samples[j].name })
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].base < out[j].base })
	return out
}

func formatValue(v float64, isInt bool) string {
	if isInt {
		return strconv.FormatInt(int64(v), 10)
	}
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if math.IsNaN(v) {
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per family, samples sorted by
// name, histograms as cumulative _bucket/_sum/_count series. The output
// is deterministic given the sample values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, f := range r.families() {
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.base, f.kind)
		if f.kind == kindHistogram {
			h := f.hist
			cum := int64(0)
			for i := range h.counts {
				cum += h.counts[i].Load()
				le := "+Inf"
				if i < len(h.bounds) {
					le = formatValue(h.bounds[i], false)
				}
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", f.base, le, cum)
			}
			fmt.Fprintf(&b, "%s_sum %s\n", f.base, formatValue(h.Sum(), false))
			fmt.Fprintf(&b, "%s_count %d\n", f.base, h.Count())
			continue
		}
		for _, s := range f.samples {
			fmt.Fprintf(&b, "%s %s\n", s.name, formatValue(s.value, s.isInt))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteVars renders the registry's Snapshot as one sorted JSON object —
// the /debug/vars payload.
func (r *Registry) WriteVars(w io.Writer) error {
	snap := r.Snapshot()
	if snap == nil {
		snap = map[string]float64{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap) // encoding/json sorts map keys
}
