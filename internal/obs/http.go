package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewHandler bundles the observability endpoints over one registry:
//
//	/metrics     Prometheus text exposition format
//	/debug/vars  the same samples as one JSON object
//	/debug/pprof the standard runtime profiles (heap, goroutine, CPU, ...)
func NewHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		reg.WriteVars(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint (see StartServer).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer listens on addr (e.g. "127.0.0.1:9410", or ":0" for an
// ephemeral port) and serves NewHandler(reg) until Close. It is the
// -metrics-addr implementation shared by qswitchd, qswitchctl,
// switchbench and switchsim.
func StartServer(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewHandler(reg), ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server. Safe on a nil receiver.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
