package obs

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profiles names the profiling outputs a run should capture; empty paths
// disable the corresponding capture, so the zero value is a no-op. It
// backs the -cpuprofile/-memprofile/-trace CLI flags.
type Profiles struct {
	// CPU receives a pprof CPU profile spanning Start..stop.
	CPU string
	// Mem receives a pprof heap profile taken at stop, after a GC.
	Mem string
	// Trace receives a runtime execution trace spanning Start..stop.
	Trace string
}

// Start begins the configured captures and returns the stop function
// that finishes them (stops the CPU profile and trace, writes the heap
// profile, closes the files). On error, anything already started is
// stopped before returning.
func (p Profiles) Start() (stop func() error, err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
	}
	if p.CPU != "" {
		cpuF, err = os.Create(p.CPU)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			cpuF = nil
			cleanup()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	if p.Trace != "" {
		traceF, err = os.Create(p.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("trace: %w", err)
		}
		if err := trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("trace: %w", err)
		}
	}
	return func() error {
		var errs []error
		if cpuF != nil {
			pprof.StopCPUProfile()
			errs = append(errs, cpuF.Close())
		}
		if traceF != nil {
			trace.Stop()
			errs = append(errs, traceF.Close())
		}
		if p.Mem != "" {
			f, err := os.Create(p.Mem)
			if err != nil {
				errs = append(errs, fmt.Errorf("mem profile: %w", err))
			} else {
				runtime.GC() // materialize final live-heap state
				if err := pprof.WriteHeapProfile(f); err != nil {
					errs = append(errs, fmt.Errorf("mem profile: %w", err))
				}
				errs = append(errs, f.Close())
			}
		}
		return errors.Join(errs...)
	}, nil
}
