package obs

import (
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"sync"
	"time"
)

// IsTerminal reports whether f is attached to a character device (a
// TTY). The progress tracker is only enabled by default when stderr is
// one, so redirected output never changes unless -progress forces it.
func IsTerminal(f *os.File) bool {
	st, err := f.Stat()
	if err != nil {
		return false
	}
	return st.Mode()&os.ModeCharDevice != 0
}

// Tracker emits a throttled progress line from a registry's probe
// counters: seeds done, seed and slot rates, the current CI half-width
// against its target, and an ETA extrapolated from the half-width's
// 1/sqrt(n) decay. It samples on its own goroutine, so instrumented code
// pays nothing beyond the probe flushes it already does.
type Tracker struct {
	reg   *Registry
	w     io.Writer
	every time.Duration
	cr    bool

	done chan struct{}
	wg   sync.WaitGroup
}

// StartTracker starts a tracker writing to w every `every` (<= 0 selects
// 500ms). With cr set, lines overwrite in place with carriage returns
// (TTY mode) and Stop leaves a final newline-terminated line; without
// it, each sample is its own line.
func StartTracker(w io.Writer, reg *Registry, every time.Duration, cr bool) *Tracker {
	if every <= 0 {
		every = 500 * time.Millisecond
	}
	t := &Tracker{reg: reg, w: w, every: every, cr: cr, done: make(chan struct{})}
	t.wg.Add(1)
	go t.loop()
	return t
}

func (t *Tracker) loop() {
	defer t.wg.Done()
	tick := time.NewTicker(t.every)
	defer tick.Stop()
	prev := t.reg.Snapshot()
	prevAt := time.Now()
	for {
		select {
		case <-t.done:
			return
		case <-tick.C:
			cur := t.reg.Snapshot()
			now := time.Now()
			t.emit(progressLine(prev, cur, now.Sub(prevAt)), false)
			prev, prevAt = cur, now
		}
	}
}

// Stop halts sampling and, in carriage-return mode, finishes the line.
func (t *Tracker) Stop() {
	if t == nil {
		return
	}
	close(t.done)
	t.wg.Wait()
	t.emit(progressLine(nil, t.reg.Snapshot(), 0), true)
}

func (t *Tracker) emit(line string, last bool) {
	if t.cr {
		fmt.Fprintf(t.w, "\r\x1b[2K%s", line)
		if last {
			fmt.Fprintln(t.w)
		}
		return
	}
	if !last {
		fmt.Fprintln(t.w, line)
	}
}

// progressLine renders one sample. prev may be nil (rates are omitted).
func progressLine(prev, cur map[string]float64, dt time.Duration) string {
	var b strings.Builder
	b.WriteString("progress:")
	seeds := cur[MetricSeqSeeds]
	budget := cur[MetricSeqBudget]
	if budget > 0 {
		fmt.Fprintf(&b, " seeds %.0f/%.0f", seeds, budget)
	} else {
		fmt.Fprintf(&b, " seeds %.0f", cur[MetricSeqSeedsTotal])
	}
	var seedRate float64
	if prev != nil && dt > 0 {
		sec := dt.Seconds()
		seedRate = (cur[MetricSeqSeedsTotal] - prev[MetricSeqSeedsTotal]) / sec
		if seedRate > 0 {
			fmt.Fprintf(&b, " · %s seeds/s", humanRate(seedRate))
		}
		slotRate := (cur[MetricEngineSlots] + cur[MetricFleetSlots] -
			prev[MetricEngineSlots] - prev[MetricFleetSlots]) / sec
		if slotRate > 0 {
			fmt.Fprintf(&b, " · %s slots/s", humanRate(slotRate))
		}
	}
	hw := cur[MetricSeqHalfWidth]
	target := cur[MetricSeqTarget]
	if hw > 0 {
		fmt.Fprintf(&b, " · ci ±%.4g", hw)
		if target > 0 {
			fmt.Fprintf(&b, " (target %.4g)", target)
		}
	}
	if eta, ok := progressETA(seeds, budget, hw, target, seedRate); ok {
		fmt.Fprintf(&b, " · eta %s", eta.Round(time.Second))
	}
	return b.String()
}

// progressETA extrapolates the current estimation's remaining wall time.
// The Student-t half-width shrinks like 1/sqrt(n), so clearing a target
// from half-width hw at n seeds needs about n*(hw/target)^2 seeds,
// capped by the seed budget.
func progressETA(seeds, budget, hw, target, seedRate float64) (time.Duration, bool) {
	if seedRate <= 0 || seeds <= 1 {
		return 0, false
	}
	needed := budget
	if target > 0 && hw > target {
		est := seeds * (hw / target) * (hw / target)
		if budget <= 0 || est < budget {
			needed = est
		}
	} else if target > 0 && hw > 0 {
		return 0, true // target already met; stop is imminent
	}
	if needed <= seeds {
		return 0, false
	}
	sec := (needed - seeds) / seedRate
	if math.IsNaN(sec) || math.IsInf(sec, 0) || sec > 365*24*3600 {
		return 0, false
	}
	return time.Duration(sec * float64(time.Second)), true
}

// humanRate renders a per-second rate compactly (812, 4.2k, 1.3M, 2.1G).
func humanRate(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
