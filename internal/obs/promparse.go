package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ParsePrometheus strictly parses Prometheus text exposition format
// (version 0.0.4) and returns every sample keyed by its full name
// (including the label block, _bucket/_sum/_count suffixes and all). It
// is the validator behind the CI /metrics scrape check: malformed names,
// label syntax, values, duplicate samples, unknown TYPE keywords and
// samples typed inconsistently with their family's TYPE line are all
// errors.
func ParsePrometheus(r io.Reader) (map[string]float64, error) {
	samples := map[string]float64{}
	types := map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, types); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if _, dup := samples[name]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %q", lineNo, name)
		}
		if err := checkSampleFamily(name, types); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples[name] = value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

// parseComment handles # TYPE / # HELP lines (free comments pass).
func parseComment(line string, types map[string]string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		if err := validateBaseName(name); err != nil {
			return fmt.Errorf("TYPE line: %w", err)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("duplicate TYPE line for %q", name)
		}
		types[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		if err := validateBaseName(fields[2]); err != nil {
			return fmt.Errorf("HELP line: %w", err)
		}
	}
	return nil
}

// parseSample splits one sample line into its full name and value; an
// optional trailing timestamp is accepted and dropped.
func parseSample(line string) (string, float64, error) {
	name := line
	rest := ""
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", 0, fmt.Errorf("unterminated label block in %q", line)
		}
		name, rest = line[:j+1], line[j+1:]
	} else if i := strings.IndexAny(line, " \t"); i >= 0 {
		name, rest = line[:i], line[i:]
	}
	if err := validateSampleName(name); err != nil {
		return "", 0, err
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 && len(fields) != 2 {
		return "", 0, fmt.Errorf("want `name value [timestamp]`, got %q", line)
	}
	value, err := parsePromValue(fields[0])
	if err != nil {
		return "", 0, err
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, value, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}

// checkSampleFamily verifies a sample against its family's TYPE line
// when one was declared; undeclared families are allowed (TYPE lines are
// optional in the format), mismatched histogram/summary series are not.
func checkSampleFamily(name string, types map[string]string) error {
	base := baseName(name)
	if typ, ok := types[base]; ok {
		if typ == "histogram" || typ == "summary" {
			return fmt.Errorf("sample %q collides with declared %s family %q", name, typ, base)
		}
		return nil
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		trimmed, ok := strings.CutSuffix(base, suffix)
		if !ok {
			continue
		}
		if typ, ok := types[trimmed]; ok {
			if typ != "histogram" && typ != "summary" {
				return fmt.Errorf("sample %q uses series suffix %q but family %q is a %s", name, suffix, trimmed, typ)
			}
			return nil
		}
	}
	return nil
}

// validateBaseName checks a bare metric name against the Prometheus data
// model ([a-zA-Z_:][a-zA-Z0-9_:]*).
func validateBaseName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return fmt.Errorf("metric name %q starts with a digit", name)
			}
		default:
			return fmt.Errorf("metric name %q has invalid character %q", name, c)
		}
	}
	return nil
}

// validateSampleName checks a full sample name: a base name optionally
// followed by one well-formed {key="value",...} label block.
func validateSampleName(name string) error {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return validateBaseName(name)
	}
	if err := validateBaseName(name[:i]); err != nil {
		return err
	}
	rest := name[i+1:]
	if !strings.HasSuffix(rest, "}") {
		return fmt.Errorf("unterminated label block in %q", name)
	}
	rest = strings.TrimSuffix(rest, "}")
	if strings.ContainsAny(rest, "{}") {
		return fmt.Errorf("nested label block in %q", name)
	}
	if rest == "" {
		return nil
	}
	for len(rest) > 0 {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return fmt.Errorf("label without value in %q", name)
		}
		if err := validateBaseName(rest[:eq]); err != nil {
			return fmt.Errorf("bad label name in %q: %w", name, err)
		}
		rest = rest[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value in %q", name)
		}
		rest = rest[1:]
		end := -1
		for j := 0; j < len(rest); j++ {
			switch rest[j] {
			case '\\':
				j++ // escaped character
			case '"':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value in %q", name)
		}
		rest = rest[end+1:]
		if rest == "" {
			return nil
		}
		if rest[0] != ',' {
			return fmt.Errorf("malformed label separator in %q", name)
		}
		rest = rest[1:]
	}
	return fmt.Errorf("trailing label separator in %q", name)
}
