package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

func TestRegistryMetrics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("test_ops_total") != c {
		t.Fatal("same name should return the same counter")
	}

	g := r.Gauge("test_depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}

	fg := r.FloatGauge("test_ratio")
	fg.Set(1.25)
	if got := fg.Value(); got != 1.25 {
		t.Fatalf("float gauge = %v, want 1.25", got)
	}

	h := r.Histogram("test_seconds", 0.1, 1, 10)
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("histogram count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-55.55) > 1e-9 {
		t.Fatalf("histogram sum = %v, want 55.55", h.Sum())
	}

	snap := r.Snapshot()
	want := map[string]float64{
		"test_ops_total":     5,
		"test_depth":         5,
		"test_ratio":         1.25,
		"test_seconds_count": 4,
		"test_seconds_sum":   55.55,
	}
	for k, v := range want {
		if math.Abs(snap[k]-v) > 1e-9 {
			t.Errorf("snapshot[%q] = %v, want %v", k, snap[k], v)
		}
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_dual")
	defer func() {
		if recover() == nil {
			t.Fatal("registering test_dual as a gauge after a counter should panic")
		}
	}()
	r.Gauge("test_dual")
}

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	fg := r.FloatGauge("x_f")
	h := r.Histogram("x_seconds", 1)
	if c != nil || g != nil || fg != nil || h != nil {
		t.Fatal("nil registry should hand out nil metrics")
	}
	// All of these must be safe no-ops on nil receivers: this is the
	// probes-disabled hot path.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	fg.Set(2)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || fg.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics should read zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	var p *EngineProbes
	p.RecordRun(1, 1, 1)
	var fp *FleetProbes
	fp.RecordKernel(1, 1, 1)
	fp.RecordFallback(1)
	var jp *JudgeProbes
	jp.RecordSolve(1, 1)
	jp.RecordExactSolve()
	var sp *SeqProbes
	sp.StartRun(1, 0.1)
	sp.RecordChunk(time.Millisecond, 1, 1, 0.5)
}

func TestDiffSnapshot(t *testing.T) {
	before := map[string]float64{"a": 1, "b": 2}
	after := map[string]float64{"a": 4, "b": 2, "c": 7}
	got := DiffSnapshot(before, after)
	if len(got) != 2 || got["a"] != 3 || got["c"] != 7 {
		t.Fatalf("DiffSnapshot = %v, want map[a:3 c:7]", got)
	}
}

func TestPrometheusRoundtrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_ops_total").Add(11)
	r.Counter(`rt_worker_chunks_total{worker="0"}`).Add(3)
	r.Counter(`rt_worker_chunks_total{worker="1"}`).Add(4)
	r.Gauge("rt_depth").Set(-2)
	r.FloatGauge("rt_halfwidth").Set(0.125)
	h := r.Histogram("rt_seconds", 0.1, 1)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "# TYPE rt_worker_chunks_total counter") {
		t.Fatalf("labeled samples should share one TYPE line:\n%s", text)
	}
	samples, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("own output should parse strictly: %v\n%s", err, text)
	}
	want := map[string]float64{
		"rt_ops_total":                       11,
		`rt_worker_chunks_total{worker="0"}`: 3,
		`rt_worker_chunks_total{worker="1"}`: 4,
		"rt_depth":                           -2,
		"rt_halfwidth":                       0.125,
		`rt_seconds_bucket{le="0.1"}`:        1,
		`rt_seconds_bucket{le="1"}`:          2,
		`rt_seconds_bucket{le="+Inf"}`:       3,
		"rt_seconds_count":                   3,
		"rt_seconds_sum":                     5.55,
	}
	for k, v := range want {
		got, ok := samples[k]
		if !ok {
			t.Errorf("missing sample %q in:\n%s", k, text)
			continue
		}
		if math.Abs(got-v) > 1e-9 {
			t.Errorf("sample %q = %v, want %v", k, got, v)
		}
	}
	// Deterministic output: a second render must be byte-identical.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != text {
		t.Fatal("WritePrometheus output is not deterministic")
	}
}

func TestParsePrometheusRejects(t *testing.T) {
	cases := map[string]string{
		"bad name":            "9bad_name 1\n",
		"bad value":           "ok_metric one\n",
		"duplicate sample":    "ok_metric 1\nok_metric 2\n",
		"bad TYPE":            "# TYPE ok_metric enum\n",
		"duplicate TYPE":      "# TYPE m counter\n# TYPE m counter\n",
		"histogram collision": "# TYPE m histogram\nm 1\n",
		"bucket on counter":   "# TYPE m counter\nm_bucket{le=\"1\"} 1\n",
		"unterminated label":  "m{worker=\"0 1\n",
		"unquoted label":      "m{worker=0} 1\n",
		"missing value":       "ok_metric\n",
		"bad timestamp":       "ok_metric 1 soon\n",
	}
	for name, in := range cases {
		if _, err := ParsePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ParsePrometheus(%q) should fail", name, in)
		}
	}
	// Non-error forms: timestamps, comments, +Inf/NaN values.
	ok := "# scrape note\n# TYPE m counter\nm 1 1700000000\nn +Inf\no NaN\n"
	if _, err := ParsePrometheus(strings.NewReader(ok)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

func TestWriteVars(t *testing.T) {
	r := NewRegistry()
	r.Counter("v_ops_total").Add(2)
	var buf bytes.Buffer
	if err := r.WriteVars(&buf); err != nil {
		t.Fatal(err)
	}
	var vars map[string]float64
	if err := json.Unmarshal(buf.Bytes(), &vars); err != nil {
		t.Fatalf("WriteVars output is not JSON: %v\n%s", err, buf.String())
	}
	if vars["v_ops_total"] != 2 {
		t.Fatalf("vars = %v", vars)
	}
}

func TestProbeBundles(t *testing.T) {
	r := NewRegistry()
	NewEngineProbes(r).RecordRun(100, 80, 5)
	NewFleetProbes(r).RecordKernel(64, 6400, 300)
	NewFleetProbes(r).RecordFallback(3)
	NewJudgeProbes(r).RecordSolve(20, 4)
	NewJudgeProbes(r).RecordExactSolve()
	sp := NewSeqProbes(r)
	sp.StartRun(4096, 0.05)
	sp.RecordChunk(2*time.Millisecond, 64, 64, 0.2)

	snap := r.Snapshot()
	want := map[string]float64{
		MetricEngineRuns:        1,
		MetricEngineSlots:       100,
		MetricEngineDenseSlots:  20,
		MetricEngineJumpedSlots: 80,
		MetricEngineJumps:       5,
		MetricFleetBatches:      2,
		MetricFleetKernel:       64,
		MetricFleetFallback:     3,
		MetricFleetSlots:        6400,
		MetricFleetPassThrough:  300,
		MetricJudgeSolves:       1,
		MetricJudgePackets:      20,
		MetricJudgeEpochs:       4,
		MetricJudgeExactSolves:  1,
		MetricSeqRuns:           1,
		MetricSeqChunks:         1,
		MetricSeqSeedsTotal:     64,
		MetricSeqSeeds:          64,
		MetricSeqBudget:         4096,
		MetricSeqHalfWidth:      0.2,
		MetricSeqTarget:         0.05,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("snapshot[%q] = %v, want %v", k, snap[k], v)
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("http_ops_total").Add(9)
	srv, err := StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		return body
	}

	samples, err := ParsePrometheus(bytes.NewReader(get("/metrics")))
	if err != nil {
		t.Fatalf("/metrics is not strictly parseable: %v", err)
	}
	if samples["http_ops_total"] != 9 {
		t.Fatalf("/metrics samples = %v", samples)
	}
	var vars map[string]float64
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if vars["http_ops_total"] != 9 {
		t.Fatalf("/debug/vars = %v", vars)
	}
	if body := get("/debug/pprof/"); !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("/debug/pprof/ index looks wrong:\n%s", body)
	}
}

func TestProgressLine(t *testing.T) {
	prev := map[string]float64{MetricSeqSeeds: 0, MetricSeqSeedsTotal: 0}
	cur := map[string]float64{
		MetricSeqSeeds: 640, MetricSeqSeedsTotal: 640, MetricSeqBudget: 4096,
		MetricSeqHalfWidth: 0.08, MetricSeqTarget: 0.05, MetricSeqRuns: 1,
	}
	line := progressLine(prev, cur, time.Second)
	for _, want := range []string{"640", "4096", "0.08"} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line %q should mention %s", line, want)
		}
	}
	if line == "" {
		t.Fatal("progress line empty with active sequential run")
	}
}

func TestProgressETA(t *testing.T) {
	// Halving the half-width needs 4x the seeds: from 640 seeds at
	// hw=0.10 toward target 0.05 needs ~2560 total, 1920 more at 640
	// seeds/s => ~3s.
	eta, ok := progressETA(640, 4096, 0.10, 0.05, 640)
	if !ok {
		t.Fatal("ETA should be computable")
	}
	if eta < 2*time.Second || eta > 4*time.Second {
		t.Fatalf("eta = %v, want ~3s", eta)
	}
	// No usable half-width or target: fall back to the seed budget,
	// (4096-640)/640 ≈ 5.4s.
	eta, ok = progressETA(640, 4096, 0, 0.05, 640)
	if !ok || eta < 5*time.Second || eta > 6*time.Second {
		t.Fatalf("budget eta = %v ok=%v, want ~5.4s", eta, ok)
	}
	if _, ok := progressETA(640, 4096, 0.1, 0.05, 0); ok {
		t.Fatal("zero seed rate should not produce an ETA")
	}
	if _, ok := progressETA(1, 4096, 0.1, 0.05, 640); ok {
		t.Fatal("a single seed should not produce an ETA")
	}
}

func TestHumanRate(t *testing.T) {
	cases := map[float64]string{
		3:         "3",
		45000:     "45.0k",
		2_000_000: "2.0M",
	}
	for v, want := range cases {
		if got := humanRate(v); !strings.HasPrefix(got, want) {
			t.Errorf("humanRate(%v) = %q, want prefix %q", v, got, want)
		}
	}
}

// TestPromFile validates an externally captured Prometheus exposition
// (e.g. CI's curl of a live qswitchd /metrics) with the strict parser.
// It is a no-op unless QSWITCH_PROMFILE points at a scrape to check.
func TestPromFile(t *testing.T) {
	path := os.Getenv("QSWITCH_PROMFILE")
	if path == "" {
		t.Skip("QSWITCH_PROMFILE not set")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	samples, err := ParsePrometheus(f)
	if err != nil {
		t.Fatalf("scrape %s is not valid Prometheus text format: %v", path, err)
	}
	if len(samples) == 0 {
		t.Fatalf("scrape %s contains no samples", path)
	}
	t.Logf("scrape %s: %d samples valid", path, len(samples))
}
