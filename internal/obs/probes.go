package obs

import "time"

// Metric names flushed by the probe bundles. They are constants so the
// progress tracker, CLIs and tests can read them back without stringly
// drift.
const (
	// Engine probes (switchsim run functions).
	MetricEngineRuns        = "qswitch_engine_runs_total"
	MetricEngineSlots       = "qswitch_engine_slots_total"
	MetricEngineDenseSlots  = "qswitch_engine_dense_slots_total"
	MetricEngineJumpedSlots = "qswitch_engine_jumped_slots_total"
	MetricEngineJumps       = "qswitch_engine_jumps_total"

	// Fleet probes (columnar engine runners).
	MetricFleetBatches     = "qswitch_fleet_batches_total"
	MetricFleetKernel      = "qswitch_fleet_kernel_instances_total"
	MetricFleetFallback    = "qswitch_fleet_fallback_instances_total"
	MetricFleetSlots       = "qswitch_fleet_slots_total"
	MetricFleetPassThrough = "qswitch_fleet_passthrough_deliveries_total"

	// Judge probes (offline optimum solvers).
	MetricJudgeSolves      = "qswitch_judge_solves_total"
	MetricJudgePackets     = "qswitch_judge_packets_total"
	MetricJudgeEpochs      = "qswitch_judge_epochs_total"
	MetricJudgeExactSolves = "qswitch_judge_exact_solves_total"

	// Sequential-estimation probes (ratio.RunSequential).
	MetricSeqRuns         = "qswitch_seq_runs_total"
	MetricSeqChunks       = "qswitch_seq_chunks_total"
	MetricSeqSeedsTotal   = "qswitch_seq_seeds_total"
	MetricSeqSeeds        = "qswitch_seq_seeds"
	MetricSeqBudget       = "qswitch_seq_budget"
	MetricSeqHalfWidth    = "qswitch_seq_halfwidth"
	MetricSeqTarget       = "qswitch_seq_target_halfwidth"
	MetricSeqChunkSeconds = "qswitch_seq_chunk_seconds"
)

// EngineProbes is the scalar/stream engines' probe bundle: run counts and
// the dense-slot vs quiescent-jump breakdown. Engines accumulate in
// function-local integers and flush once per run via RecordRun, so the
// per-slot overhead is zero. The zero and nil values are no-ops.
type EngineProbes struct {
	// Runs counts completed engine runs.
	Runs *Counter
	// Slots counts simulated switch slots, including jumped ones.
	Slots *Counter
	// DenseSlots counts slots that ran the full per-slot body.
	DenseSlots *Counter
	// JumpedSlots counts slots advanced in closed form by quiescent/idle
	// jumps.
	JumpedSlots *Counter
	// Jumps counts individual quiescent/idle jumps taken.
	Jumps *Counter
}

// NewEngineProbes registers the engine metrics in r (nil r yields a
// fully disabled bundle).
func NewEngineProbes(r *Registry) *EngineProbes {
	return &EngineProbes{
		Runs:        r.Counter(MetricEngineRuns),
		Slots:       r.Counter(MetricEngineSlots),
		DenseSlots:  r.Counter(MetricEngineDenseSlots),
		JumpedSlots: r.Counter(MetricEngineJumpedSlots),
		Jumps:       r.Counter(MetricEngineJumps),
	}
}

// RecordRun flushes one finished run: slots simulated in total, how many
// of them were jumped, and how many jumps covered them. Safe on a nil
// receiver.
func (p *EngineProbes) RecordRun(slots, jumped, jumps int64) {
	if p == nil {
		return
	}
	p.Runs.Inc()
	p.Slots.Add(slots)
	p.DenseSlots.Add(slots - jumped)
	p.JumpedSlots.Add(jumped)
	p.Jumps.Add(jumps)
}

// FleetProbes is the columnar fleet engine's probe bundle: how many
// instances rode a batched kernel vs fell back to scalar runs, and how
// many output deliveries took the pass-through shortcut. The zero and
// nil values are no-ops.
type FleetProbes struct {
	// Batches counts Runner.Run calls.
	Batches *Counter
	// KernelInstances counts instances stepped by a batched kernel.
	KernelInstances *Counter
	// FallbackInstances counts instances that fell back to scalar runs
	// (their slots land in the engine probes instead of Slots here).
	FallbackInstances *Counter
	// Slots counts switch slots covered by kernel-batched instances.
	Slots *Counter
	// PassThrough counts output deliveries that parked in the pend
	// buffer instead of round-tripping through the output ring.
	PassThrough *Counter
}

// NewFleetProbes registers the fleet metrics in r (nil r yields a fully
// disabled bundle).
func NewFleetProbes(r *Registry) *FleetProbes {
	return &FleetProbes{
		Batches:           r.Counter(MetricFleetBatches),
		KernelInstances:   r.Counter(MetricFleetKernel),
		FallbackInstances: r.Counter(MetricFleetFallback),
		Slots:             r.Counter(MetricFleetSlots),
		PassThrough:       r.Counter(MetricFleetPassThrough),
	}
}

// RecordKernel flushes one kernel-batched run: instances stepped, total
// switch slots they covered, and pass-through deliveries taken. Safe on
// a nil receiver.
func (p *FleetProbes) RecordKernel(instances, slots, passThrough int64) {
	if p == nil {
		return
	}
	p.Batches.Inc()
	p.KernelInstances.Add(instances)
	p.Slots.Add(slots)
	p.PassThrough.Add(passThrough)
}

// RecordFallback flushes one scalar-fallback run of `instances`
// per-instance engine runs. Safe on a nil receiver.
func (p *FleetProbes) RecordFallback(instances int64) {
	if p == nil {
		return
	}
	p.Batches.Inc()
	p.FallbackInstances.Add(instances)
}

// JudgeProbes is the offline judge layer's probe bundle: solve counts
// and the epoch-compression sizes that explain why judging is
// horizon-independent. The zero and nil values are no-ops.
type JudgeProbes struct {
	// Solves counts QueueOPTSolver.Solve calls (the per-port engine
	// behind every upper-bound judge).
	Solves *Counter
	// Packets counts packets fed to those solves.
	Packets *Counter
	// Epochs counts distinct arrival epochs actually solved over — the
	// compressed timeline; Epochs/Packets is the compression ratio.
	Epochs *Counter
	// ExactSolves counts exact DP judge solves (ExactUnit*/ExactWeighted*).
	ExactSolves *Counter
}

// NewJudgeProbes registers the judge metrics in r (nil r yields a fully
// disabled bundle).
func NewJudgeProbes(r *Registry) *JudgeProbes {
	return &JudgeProbes{
		Solves:      r.Counter(MetricJudgeSolves),
		Packets:     r.Counter(MetricJudgePackets),
		Epochs:      r.Counter(MetricJudgeEpochs),
		ExactSolves: r.Counter(MetricJudgeExactSolves),
	}
}

// RecordSolve flushes one epoch solve over `packets` packets compressed
// to `epochs` distinct arrival slots. Safe on a nil receiver.
func (p *JudgeProbes) RecordSolve(packets, epochs int64) {
	if p == nil {
		return
	}
	p.Solves.Inc()
	p.Packets.Add(packets)
	p.Epochs.Add(epochs)
}

// RecordExactSolve flushes one exact DP judge solve. Safe on a nil
// receiver.
func (p *JudgeProbes) RecordExactSolve() {
	if p == nil {
		return
	}
	p.ExactSolves.Inc()
}

// SeqProbes is the sequential-estimation probe bundle: chunk latencies
// and the half-width trajectory RunSequential walks toward its precision
// target, plus the seed counters the progress tracker derives rates and
// ETA from. The zero and nil values are no-ops.
type SeqProbes struct {
	// Runs counts RunSequential invocations.
	Runs *Counter
	// Chunks counts evaluated seed chunks.
	Chunks *Counter
	// SeedsTotal counts seeds issued across all runs.
	SeedsTotal *Counter
	// Seeds is the current run's issued seed count.
	Seeds *Gauge
	// Budget is the current run's seed budget (MaxRuns).
	Budget *Gauge
	// HalfWidth is the current run's latest CI half-width.
	HalfWidth *FloatGauge
	// Target is the current run's absolute half-width target (0 when
	// disabled or relative).
	Target *FloatGauge
	// ChunkSeconds is the per-chunk evaluation latency distribution.
	ChunkSeconds *Histogram
}

// NewSeqProbes registers the sequential-estimation metrics in r (nil r
// yields a fully disabled bundle).
func NewSeqProbes(r *Registry) *SeqProbes {
	return &SeqProbes{
		Runs:       r.Counter(MetricSeqRuns),
		Chunks:     r.Counter(MetricSeqChunks),
		SeedsTotal: r.Counter(MetricSeqSeedsTotal),
		Seeds:      r.Gauge(MetricSeqSeeds),
		Budget:     r.Gauge(MetricSeqBudget),
		HalfWidth:  r.FloatGauge(MetricSeqHalfWidth),
		Target:     r.FloatGauge(MetricSeqTarget),
		ChunkSeconds: r.Histogram(MetricSeqChunkSeconds,
			0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10),
	}
}

// StartRun flushes a sequential run's start: its seed budget and
// absolute half-width target. Safe on a nil receiver.
func (p *SeqProbes) StartRun(budget int64, target float64) {
	if p == nil {
		return
	}
	p.Runs.Inc()
	p.Seeds.Set(0)
	p.Budget.Set(budget)
	p.HalfWidth.Set(0)
	p.Target.Set(target)
}

// RecordChunk flushes one evaluated chunk: its latency, how many seeds
// it brought the run to, how many of them it issued, and the CI
// half-width after folding it in. Safe on a nil receiver.
func (p *SeqProbes) RecordChunk(d time.Duration, seedsIssued, seedsRun int64, halfWidth float64) {
	if p == nil {
		return
	}
	p.Chunks.Inc()
	p.SeedsTotal.Add(seedsIssued)
	p.Seeds.Set(seedsRun)
	p.HalfWidth.Set(halfWidth)
	p.ChunkSeconds.Observe(d.Seconds())
}
