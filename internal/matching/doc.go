// Package matching provides the bipartite matching engines that drive the
// scheduling phase of the simulated switches.
//
// The paper's central efficiency claim is that *greedy maximal* matchings
// (constructed by scanning edges once) achieve the same competitive ratios
// as the *maximum* matchings used in prior work while being far cheaper to
// compute. This package implements both families so the claim can be
// benchmarked head-to-head:
//
//   - GreedyMaximal / GreedyMaximalWeighted — the paper's engines,
//   - HopcroftKarp — maximum-cardinality matching (Kesselman–Rosén style),
//   - Hungarian — maximum-weight matching (for the 6-competitive baseline),
//   - Kuhn — a simple augmenting-path maximum matching used as a test
//     cross-check,
//   - BruteForceMax / BruteForceMaxWeight — exponential verifiers for
//     property tests on small graphs.
//
// The scheduling policies in internal/core no longer hand this package a
// full Inputs×Outputs edge scan: they enumerate candidate edges from the
// switch's bitset occupancy index (see internal/switchsim and
// internal/bitset), so the edge lists arriving here are proportional to
// the number of occupied queues. On the engine side, Matcher,
// WeightedScheduler, HKMatcher and HungarianSolver are the reusable
// (scratch-carrying, zero-allocation after warm-up) counterparts of the
// one-shot functions, which remain for tests and offline callers.
//
// # Invariants
//
//   - Every engine returns a valid matching: at most one edge per left
//     and per right vertex, drawn from the supplied edge list.
//   - Engines are deterministic: ties break by the caller's edge order
//     (greedy) or by fixed internal order (exact engines), so simulations
//     are reproducible bit for bit.
//   - Reusable engines retain only scratch between calls — results never
//     alias earlier returns once the next call begins, matching the
//     simulator's consume-before-next-call contract.
package matching
