package matching

// BruteForceMax returns the size of a maximum matching by exhaustive
// search. Exponential; intended only for property tests on small graphs
// (len(edges) <= ~20).
func BruteForceMax(nU, nV int, edges []Edge) int {
	return int(bruteRec(nU, nV, edges, 0, make([]bool, nU), make([]bool, nV), func(Edge) int64 { return 1 }))
}

// BruteForceMaxWeight returns the weight of a maximum-weight matching by
// exhaustive search. Exponential; property tests only.
func BruteForceMaxWeight(nU, nV int, edges []Edge) int64 {
	return bruteRec(nU, nV, edges, 0, make([]bool, nU), make([]bool, nV), func(e Edge) int64 { return e.W })
}

func bruteRec(nU, nV int, edges []Edge, k int, usedU, usedV []bool, gain func(Edge) int64) int64 {
	if k == len(edges) {
		return 0
	}
	// Skip edge k.
	best := bruteRec(nU, nV, edges, k+1, usedU, usedV, gain)
	e := edges[k]
	if !usedU[e.U] && !usedV[e.V] {
		usedU[e.U], usedV[e.V] = true, true
		if with := gain(e) + bruteRec(nU, nV, edges, k+1, usedU, usedV, gain); with > best {
			best = with
		}
		usedU[e.U], usedV[e.V] = false, false
	}
	return best
}
