package matching

import (
	"fmt"
	"sort"
)

// Edge is a candidate pairing between left vertex U and right vertex V with
// weight W. Unit-value engines ignore W.
type Edge struct {
	U, V int
	W    int64
}

// GreedyMaximal scans the edges in the order given and adds each edge whose
// endpoints are both unmatched, producing an (inclusion-)maximal matching.
// Complexity O(E). The scan order is the caller's tie-breaking policy.
func GreedyMaximal(nU, nV int, edges []Edge) []Edge {
	usedU := make([]bool, nU)
	usedV := make([]bool, nV)
	var out []Edge
	for _, e := range edges {
		if !usedU[e.U] && !usedV[e.V] {
			usedU[e.U] = true
			usedV[e.V] = true
			out = append(out, e)
		}
	}
	return out
}

// Matcher is a reusable greedy-maximal matcher. It keeps epoch-stamped
// vertex marks and the output buffer alive across scheduling cycles, so
// the per-cycle cost is a pure O(E) pass with no allocation after
// warm-up. The zero value is ready to use.
type Matcher struct {
	markU, markV []int
	epoch        int
	out          []Edge
}

// GreedyMaximal computes the same matching as the package-level
// GreedyMaximal. The returned slice is scratch, valid until the next call.
func (mt *Matcher) GreedyMaximal(nU, nV int, edges []Edge) []Edge {
	if len(mt.markU) < nU || len(mt.markV) < nV {
		// Grow both sides together: a fresh zeroed array next to a
		// surviving one with stale stamps would collide with the
		// restarted epoch counter.
		mt.markU = make([]int, nU)
		mt.markV = make([]int, nV)
		mt.epoch = 0
	}
	mt.epoch++
	mt.out = mt.out[:0]
	for _, e := range edges {
		if mt.markU[e.U] != mt.epoch && mt.markV[e.V] != mt.epoch {
			mt.markU[e.U] = mt.epoch
			mt.markV[e.V] = mt.epoch
			mt.out = append(mt.out, e)
		}
	}
	return mt.out
}

// GreedyMaximalWeighted sorts the edges by weight descending (ties: smaller
// U, then smaller V first — a fixed, deterministic order) and then greedily
// adds non-conflicting edges. This is the engine of the paper's PG
// algorithm. The classical guarantee is that the result has at least half
// the weight of a maximum-weight matching. Complexity O(E log E).
//
// The input slice is not modified.
func GreedyMaximalWeighted(nU, nV int, edges []Edge) []Edge {
	var s WeightedScheduler
	return s.GreedyMaximalWeighted(nU, nV, edges)
}

// WeightedScheduler is a reusable greedy-maximal-weighted matcher. It
// keeps the radix-sort scratch buffers alive across scheduling cycles, the
// way a real switch scheduler would, so the per-cycle cost is a pure
// O(E) pass with no allocation. The zero value is ready to use.
//
// The hot path packs (weight desc, U asc, V asc) into one uint64 key and
// LSD-radix-sorts; out-of-range weights (>= 2^40) or ports (>= 4096) fall
// back to a comparison sort.
type WeightedScheduler struct {
	keys, tmp []uint64
	sorted    []Edge
	counts    []int32
	mt        Matcher
}

// GreedyMaximalWeighted computes the greedy maximal matching by
// descending weight. The returned slice is scratch, valid until the next
// call.
func (s *WeightedScheduler) GreedyMaximalWeighted(nU, nV int, edges []Edge) []Edge {
	if sorted, ok := s.countingSortEdges(edges); ok {
		return s.mt.GreedyMaximal(nU, nV, sorted)
	}
	if sorted, ok := s.radixSortEdges(edges); ok {
		return s.mt.GreedyMaximal(nU, nV, sorted)
	}
	s.sorted = append(s.sorted[:0], edges...)
	sort.Sort(edgesByWeight(s.sorted))
	return s.mt.GreedyMaximal(nU, nV, s.sorted)
}

// countingMaxWeight bounds the weight range of the counting-sort fast
// path; the count array is reused scratch of this size at most.
const countingMaxWeight = 2048

// countingSortEdges is the fastest sorting path: when the caller already
// enumerates edges in (U, V) ascending order — as every policy driven by
// the bitset occupancy index does — and weights are small non-negative
// integers, a single stable counting pass by weight descending yields
// exactly the contract order (weight desc, ties U asc then V asc).
func (s *WeightedScheduler) countingSortEdges(edges []Edge) ([]Edge, bool) {
	n := len(edges)
	if n == 0 {
		return edges, true
	}
	maxW := int64(0)
	for i, e := range edges {
		if e.W < 0 || e.W > countingMaxWeight {
			return nil, false
		}
		if i > 0 {
			if p := edges[i-1]; p.U > e.U || (p.U == e.U && p.V >= e.V) {
				return nil, false
			}
		}
		if e.W > maxW {
			maxW = e.W
		}
	}
	if cap(s.counts) < int(maxW)+1 {
		s.counts = make([]int32, maxW+1)
	}
	cnt := s.counts[:maxW+1]
	for i := range cnt {
		cnt[i] = 0
	}
	for _, e := range edges {
		cnt[e.W]++
	}
	// Prefix offsets with heavier weights first.
	total := int32(0)
	for w := maxW; w >= 0; w-- {
		c := cnt[w]
		cnt[w] = total
		total += c
	}
	if cap(s.sorted) < n {
		s.sorted = make([]Edge, n)
	}
	out := s.sorted[:n]
	for _, e := range edges {
		out[cnt[e.W]] = e
		cnt[e.W]++
	}
	return out, true
}

// Key layout for the radix path: 40 bits of weight, then 12 bits of
// complemented U and 12 bits of complemented V. Keys are sorted ascending
// and read back in reverse, which yields weight descending with (U, V)
// ascending tie-breaks. Leaving the weight un-complemented keeps the high
// key bytes zero for typical packet values, so the corresponding radix
// passes are skipped entirely.
const (
	radixMaxWeight = int64(1)<<40 - 1
	radixMaxPort   = 1 << 12
)

func (s *WeightedScheduler) radixSortEdges(edges []Edge) ([]Edge, bool) {
	n := len(edges)
	if cap(s.keys) < n {
		s.keys = make([]uint64, n)
		s.tmp = make([]uint64, n)
	}
	keys, tmp := s.keys[:n], s.tmp[:n]
	var maxKey uint64
	for i, e := range edges {
		if e.W < 0 || e.W > radixMaxWeight || e.U >= radixMaxPort || e.V >= radixMaxPort || e.U < 0 || e.V < 0 {
			return nil, false
		}
		u := uint64(radixMaxPort - 1 - e.U)
		v := uint64(radixMaxPort - 1 - e.V)
		k := uint64(e.W)<<24 | u<<12 | v
		keys[i] = k
		if k > maxKey {
			maxKey = k
		}
	}
	// LSD radix sort, 8-bit digits, only over the significant bytes
	// (typical packet values keep the high weight bytes zero).
	var count [256]int
	for shift := 0; maxKey>>shift > 0; shift += 8 {
		for i := range count {
			count[i] = 0
		}
		for _, k := range keys {
			count[(k>>shift)&0xFF]++
		}
		total := 0
		for i := range count {
			c := count[i]
			count[i] = total
			total += c
		}
		for _, k := range keys {
			d := (k >> shift) & 0xFF
			tmp[count[d]] = k
			count[d]++
		}
		keys, tmp = tmp, keys
	}
	s.keys, s.tmp = keys, tmp // keep ownership straight after swaps
	if cap(s.sorted) < n {
		s.sorted = make([]Edge, n)
	}
	out := s.sorted[:n]
	for i := range keys {
		k := keys[n-1-i] // reverse: weight descending
		u := radixMaxPort - 1 - int(k>>12)&(radixMaxPort-1)
		v := radixMaxPort - 1 - int(k)&(radixMaxPort-1)
		out[i] = Edge{U: u, V: v, W: int64(k >> 24)}
	}
	return out, true
}

// edgesByWeight orders edges by weight descending, ties by (U, V)
// ascending. A concrete sort.Interface implementation avoids the
// reflection overhead of sort.Slice in the scheduler's hot path (the sort
// runs once per scheduling cycle).
type edgesByWeight []Edge

func (e edgesByWeight) Len() int { return len(e) }
func (e edgesByWeight) Less(a, b int) bool {
	if e[a].W != e[b].W {
		return e[a].W > e[b].W
	}
	if e[a].U != e[b].U {
		return e[a].U < e[b].U
	}
	return e[a].V < e[b].V
}
func (e edgesByWeight) Swap(a, b int) { e[a], e[b] = e[b], e[a] }

// IsMatching verifies the matching property: no two edges share a left or
// right endpoint and all endpoints are in range.
func IsMatching(nU, nV int, edges []Edge) error {
	usedU := make([]bool, nU)
	usedV := make([]bool, nV)
	for _, e := range edges {
		if e.U < 0 || e.U >= nU || e.V < 0 || e.V >= nV {
			return fmt.Errorf("matching: edge (%d,%d) out of range %dx%d", e.U, e.V, nU, nV)
		}
		if usedU[e.U] {
			return fmt.Errorf("matching: left vertex %d matched twice", e.U)
		}
		if usedV[e.V] {
			return fmt.Errorf("matching: right vertex %d matched twice", e.V)
		}
		usedU[e.U] = true
		usedV[e.V] = true
	}
	return nil
}

// IsMaximal reports whether m is maximal with respect to the candidate
// edge set: no candidate edge has both endpoints unmatched.
func IsMaximal(nU, nV int, candidates, m []Edge) bool {
	usedU := make([]bool, nU)
	usedV := make([]bool, nV)
	for _, e := range m {
		usedU[e.U] = true
		usedV[e.V] = true
	}
	for _, e := range candidates {
		if !usedU[e.U] && !usedV[e.V] {
			return false
		}
	}
	return true
}

// Weight sums the edge weights of a matching.
func Weight(m []Edge) int64 {
	var w int64
	for _, e := range m {
		w += e.W
	}
	return w
}
