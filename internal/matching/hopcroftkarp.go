package matching

// HopcroftKarp computes a maximum-cardinality bipartite matching in
// O(E sqrt(V)). adj[u] lists the right-side neighbors of left vertex u.
// It returns matchU (matchU[u] = matched right vertex or -1) and the
// matching size.
//
// This is the engine behind the Kesselman–Rosén-style unit-value baseline
// (KR-MM): prior CIOQ scheduling results compute a maximum matching in
// every scheduling cycle, which the paper replaces with the much cheaper
// greedy maximal matching at no loss in competitiveness.
func HopcroftKarp(nU, nV int, adj [][]int) (matchU []int, size int) {
	const inf = int(^uint(0) >> 1)
	matchU = make([]int, nU)
	matchV := make([]int, nV)
	for i := range matchU {
		matchU[i] = -1
	}
	for i := range matchV {
		matchV[i] = -1
	}
	dist := make([]int, nU)
	queue := make([]int, 0, nU)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < nU; u++ {
			if matchU[u] == -1 {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range adj[u] {
				w := matchV[v]
				if w == -1 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range adj[u] {
			w := matchV[v]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchU[u] = v
				matchV[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	for bfs() {
		for u := 0; u < nU; u++ {
			if matchU[u] == -1 && dfs(u) {
				size++
			}
		}
	}
	return matchU, size
}

// Kuhn computes a maximum-cardinality matching with the simple O(V*E)
// augmenting-path algorithm. It exists as an independent implementation to
// cross-check HopcroftKarp in tests.
func Kuhn(nU, nV int, adj [][]int) (matchU []int, size int) {
	matchU = make([]int, nU)
	matchV := make([]int, nV)
	for i := range matchU {
		matchU[i] = -1
	}
	for i := range matchV {
		matchV[i] = -1
	}
	seen := make([]bool, nV)
	var try func(u int) bool
	try = func(u int) bool {
		for _, v := range adj[u] {
			if seen[v] {
				continue
			}
			seen[v] = true
			if matchV[v] == -1 || try(matchV[v]) {
				matchU[u] = v
				matchV[v] = u
				return true
			}
		}
		return false
	}
	for u := 0; u < nU; u++ {
		for i := range seen {
			seen[i] = false
		}
		if try(u) {
			size++
		}
	}
	return matchU, size
}

// AdjFromEdges converts an edge list to the adjacency-list form consumed by
// the maximum-matching engines, preserving edge order per vertex.
func AdjFromEdges(nU int, edges []Edge) [][]int {
	adj := make([][]int, nU)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
	}
	return adj
}
