package matching

// HopcroftKarp computes a maximum-cardinality bipartite matching in
// O(E sqrt(V)). adj[u] lists the right-side neighbors of left vertex u.
// It returns matchU (matchU[u] = matched right vertex or -1) and the
// matching size.
//
// This is the engine behind the Kesselman–Rosén-style unit-value baseline
// (KR-MM): prior CIOQ scheduling results compute a maximum matching in
// every scheduling cycle, which the paper replaces with the much cheaper
// greedy maximal matching at no loss in competitiveness.
func HopcroftKarp(nU, nV int, adj [][]int) (matchU []int, size int) {
	var h HKMatcher
	return h.MaxMatching(nU, nV, adj)
}

// HKMatcher is a reusable Hopcroft–Karp engine: its vertex arrays and
// BFS queue survive across scheduling cycles, so repeated calls allocate
// nothing after warm-up. The zero value is ready to use. The returned
// matchU slice is scratch, valid until the next call.
type HKMatcher struct {
	matchU, matchV []int
	dist, queue    []int
	adj            [][]int
}

const hkInf = int(^uint(0) >> 1)

// MaxMatching computes a maximum-cardinality matching of adj as
// HopcroftKarp does.
func (h *HKMatcher) MaxMatching(nU, nV int, adj [][]int) (matchU []int, size int) {
	if cap(h.matchU) < nU {
		h.matchU = make([]int, nU)
		h.dist = make([]int, nU)
		h.queue = make([]int, 0, nU)
	}
	if cap(h.matchV) < nV {
		h.matchV = make([]int, nV)
	}
	h.matchU = h.matchU[:nU]
	h.matchV = h.matchV[:nV]
	h.dist = h.dist[:nU]
	h.adj = adj
	for i := range h.matchU {
		h.matchU[i] = -1
	}
	for i := range h.matchV {
		h.matchV[i] = -1
	}
	for h.bfs() {
		for u := 0; u < nU; u++ {
			if h.matchU[u] == -1 && h.dfs(u) {
				size++
			}
		}
	}
	h.adj = nil
	return h.matchU, size
}

func (h *HKMatcher) bfs() bool {
	h.queue = h.queue[:0]
	for u := range h.matchU {
		if h.matchU[u] == -1 {
			h.dist[u] = 0
			h.queue = append(h.queue, u)
		} else {
			h.dist[u] = hkInf
		}
	}
	found := false
	for head := 0; head < len(h.queue); head++ {
		u := h.queue[head]
		for _, v := range h.adj[u] {
			w := h.matchV[v]
			if w == -1 {
				found = true
			} else if h.dist[w] == hkInf {
				h.dist[w] = h.dist[u] + 1
				h.queue = append(h.queue, w)
			}
		}
	}
	return found
}

func (h *HKMatcher) dfs(u int) bool {
	for _, v := range h.adj[u] {
		w := h.matchV[v]
		if w == -1 || (h.dist[w] == h.dist[u]+1 && h.dfs(w)) {
			h.matchU[u] = v
			h.matchV[v] = u
			return true
		}
	}
	h.dist[u] = hkInf
	return false
}

// Kuhn computes a maximum-cardinality matching with the simple O(V*E)
// augmenting-path algorithm. It exists as an independent implementation to
// cross-check HopcroftKarp in tests.
func Kuhn(nU, nV int, adj [][]int) (matchU []int, size int) {
	matchU = make([]int, nU)
	matchV := make([]int, nV)
	for i := range matchU {
		matchU[i] = -1
	}
	for i := range matchV {
		matchV[i] = -1
	}
	seen := make([]bool, nV)
	var try func(u int) bool
	try = func(u int) bool {
		for _, v := range adj[u] {
			if seen[v] {
				continue
			}
			seen[v] = true
			if matchV[v] == -1 || try(matchV[v]) {
				matchU[u] = v
				matchV[v] = u
				return true
			}
		}
		return false
	}
	for u := 0; u < nU; u++ {
		for i := range seen {
			seen[i] = false
		}
		if try(u) {
			size++
		}
	}
	return matchU, size
}

// AdjFromEdges converts an edge list to the adjacency-list form consumed by
// the maximum-matching engines, preserving edge order per vertex.
func AdjFromEdges(nU int, edges []Edge) [][]int {
	adj := make([][]int, nU)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
	}
	return adj
}
