package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randGraph(rng *rand.Rand, nU, nV, maxEdges int, maxW int64) []Edge {
	n := rng.Intn(maxEdges + 1)
	edges := make([]Edge, 0, n)
	seen := map[[2]int]bool{}
	for k := 0; k < n; k++ {
		e := Edge{U: rng.Intn(nU), V: rng.Intn(nV), W: 1}
		if maxW > 1 {
			e.W = 1 + rng.Int63n(maxW)
		}
		if seen[[2]int{e.U, e.V}] {
			continue
		}
		seen[[2]int{e.U, e.V}] = true
		edges = append(edges, e)
	}
	return edges
}

func TestGreedyMaximalBasics(t *testing.T) {
	edges := []Edge{{U: 0, V: 0}, {U: 0, V: 1}, {U: 1, V: 0}, {U: 1, V: 1}}
	m := GreedyMaximal(2, 2, edges)
	if len(m) != 2 {
		t.Fatalf("greedy found %d edges, want 2", len(m))
	}
	if err := IsMatching(2, 2, m); err != nil {
		t.Fatal(err)
	}
	if !IsMaximal(2, 2, edges, m) {
		t.Error("greedy result not maximal")
	}
	// First edge in scan order must be taken.
	if m[0] != edges[0] {
		t.Errorf("greedy skipped the first edge: %v", m)
	}
}

func TestGreedyMaximalEmpty(t *testing.T) {
	if m := GreedyMaximal(3, 3, nil); len(m) != 0 {
		t.Errorf("empty edge set produced matching %v", m)
	}
}

func TestGreedyMaximalIsAlwaysMaximalAndValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nU, nV := rng.Intn(6)+1, rng.Intn(6)+1
		edges := randGraph(rng, nU, nV, 14, 1)
		m := GreedyMaximal(nU, nV, edges)
		return IsMatching(nU, nV, m) == nil && IsMaximal(nU, nV, edges, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGreedyMaximalAtLeastHalfOfMaximum(t *testing.T) {
	// Classical guarantee: any maximal matching has at least half the
	// edges of a maximum matching.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nU, nV := rng.Intn(5)+1, rng.Intn(5)+1
		edges := randGraph(rng, nU, nV, 12, 1)
		m := GreedyMaximal(nU, nV, edges)
		maxSize := BruteForceMax(nU, nV, edges)
		return 2*len(m) >= maxSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestGreedyWeightedSortsDescending(t *testing.T) {
	edges := []Edge{
		{U: 0, V: 0, W: 1},
		{U: 0, V: 1, W: 10},
		{U: 1, V: 1, W: 5},
		{U: 1, V: 0, W: 7},
	}
	m := GreedyMaximalWeighted(2, 2, edges)
	if Weight(m) != 17 { // picks (0,1,10) then (1,0,7)
		t.Fatalf("weighted greedy weight %d, want 17: %v", Weight(m), m)
	}
	// Input order must be preserved (no mutation).
	if edges[0].W != 1 || edges[1].W != 10 {
		t.Error("GreedyMaximalWeighted mutated its input")
	}
}

func TestGreedyWeightedDeterministicTieBreak(t *testing.T) {
	edges := []Edge{
		{U: 1, V: 0, W: 5},
		{U: 0, V: 1, W: 5},
		{U: 0, V: 0, W: 5},
		{U: 1, V: 1, W: 5},
	}
	a := GreedyMaximalWeighted(2, 2, edges)
	// Ties break by (U asc, V asc): (0,0) first, then (1,1).
	if len(a) != 2 || a[0].U != 0 || a[0].V != 0 || a[1].U != 1 || a[1].V != 1 {
		t.Errorf("tie-break order wrong: %v", a)
	}
}

func TestGreedyWeightedAtLeastHalfOptimal(t *testing.T) {
	// Classical guarantee: greedy-by-weight achieves >= 1/2 of the
	// maximum weight matching.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nU, nV := rng.Intn(5)+1, rng.Intn(5)+1
		edges := randGraph(rng, nU, nV, 12, 50)
		m := GreedyMaximalWeighted(nU, nV, edges)
		opt := BruteForceMaxWeight(nU, nV, edges)
		return 2*Weight(m) >= opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestIsMatchingRejects(t *testing.T) {
	if err := IsMatching(2, 2, []Edge{{U: 0, V: 0}, {U: 0, V: 1}}); err == nil {
		t.Error("duplicate left endpoint accepted")
	}
	if err := IsMatching(2, 2, []Edge{{U: 0, V: 1}, {U: 1, V: 1}}); err == nil {
		t.Error("duplicate right endpoint accepted")
	}
	if err := IsMatching(2, 2, []Edge{{U: 5, V: 0}}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestHopcroftKarpKnownGraphs(t *testing.T) {
	tests := []struct {
		name  string
		nU    int
		nV    int
		edges []Edge
		want  int
	}{
		{"perfect 3x3", 3, 3, []Edge{{U: 0, V: 0}, {U: 1, V: 1}, {U: 2, V: 2}}, 3},
		{"star", 3, 3, []Edge{{U: 0, V: 0}, {U: 1, V: 0}, {U: 2, V: 0}}, 1},
		{"augmenting path needed", 2, 2, []Edge{{U: 0, V: 0}, {U: 0, V: 1}, {U: 1, V: 0}}, 2},
		{"empty", 2, 2, nil, 0},
		{"rectangular", 2, 4, []Edge{{U: 0, V: 3}, {U: 1, V: 3}, {U: 1, V: 0}}, 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, size := HopcroftKarp(tc.nU, tc.nV, AdjFromEdges(tc.nU, tc.edges))
			if size != tc.want {
				t.Errorf("HK size %d, want %d", size, tc.want)
			}
		})
	}
}

func TestHopcroftKarpMatchesKuhnAndBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nU, nV := rng.Intn(6)+1, rng.Intn(6)+1
		edges := randGraph(rng, nU, nV, 14, 1)
		adj := AdjFromEdges(nU, edges)
		matchU, hk := HopcroftKarp(nU, nV, adj)
		_, kuhn := Kuhn(nU, nV, adj)
		bf := BruteForceMax(nU, nV, edges)
		// Also verify matchU is a consistent matching.
		seen := map[int]bool{}
		count := 0
		for _, v := range matchU {
			if v >= 0 {
				if seen[v] {
					return false
				}
				seen[v] = true
				count++
			}
		}
		return hk == kuhn && hk == bf && count == hk
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHungarianKnownCases(t *testing.T) {
	tests := []struct {
		name string
		w    [][]int64
		want int64
	}{
		{"diagonal best", [][]int64{{10, 1}, {1, 10}}, 20},
		{"anti-diagonal best", [][]int64{{1, 10}, {10, 1}}, 20},
		{"conflict", [][]int64{{10, 9}, {10, 1}}, 19},
		{"single", [][]int64{{7}}, 7},
		{"rect wide", [][]int64{{1, 5, 3}}, 5},
		{"rect tall", [][]int64{{1}, {5}, {3}}, 5},
		{"zeros mean unmatched", [][]int64{{0, 0}, {0, 0}}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m := Hungarian(tc.w)
			if Weight(m) != tc.want {
				t.Errorf("Hungarian weight %d, want %d (%v)", Weight(m), tc.want, m)
			}
			if err := IsMatching(len(tc.w), len(tc.w[0]), m); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestMaxWeightMatchingMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nU, nV := rng.Intn(5)+1, rng.Intn(5)+1
		edges := randGraph(rng, nU, nV, 12, 40)
		m := MaxWeightMatching(nU, nV, edges)
		if IsMatching(nU, nV, m) != nil {
			return false
		}
		return Weight(m) == BruteForceMaxWeight(nU, nV, edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMaxWeightMatchingEmpty(t *testing.T) {
	if m := MaxWeightMatching(3, 3, nil); len(m) != 0 {
		t.Errorf("empty graph produced %v", m)
	}
}

func TestWeight(t *testing.T) {
	if Weight([]Edge{{W: 3}, {W: 4}}) != 7 {
		t.Error("Weight sum wrong")
	}
	if Weight(nil) != 0 {
		t.Error("Weight(nil) != 0")
	}
}

// TestMatcherReuseAcrossGraphSizes guards the scratch-growth path: when a
// reused Matcher sees a graph that grows on one side only, the freshly
// zeroed mark array must not collide with stale epoch stamps on the
// surviving side (a bug caught in review: edges were silently dropped).
func TestMatcherReuseAcrossGraphSizes(t *testing.T) {
	var mt Matcher
	small := []Edge{{U: 0, V: 0}, {U: 1, V: 1}}
	for k := 0; k < 3; k++ {
		if got := mt.GreedyMaximal(4, 4, small); len(got) != 2 {
			t.Fatalf("warm-up %d: got %d edges, want 2", k, len(got))
		}
	}
	// Grow U only; V keeps its old array with stamps from the warm-ups.
	big := []Edge{{U: 5, V: 0}, {U: 6, V: 1}}
	if got := mt.GreedyMaximal(8, 4, big); len(got) != 2 {
		t.Fatalf("after one-sided growth: got %d edges, want 2 (stale epoch stamps)", len(got))
	}
	// And shrink again — results must match the one-shot function.
	for k := 0; k < 3; k++ {
		got := mt.GreedyMaximal(4, 4, small)
		want := GreedyMaximal(4, 4, small)
		if len(got) != len(want) {
			t.Fatalf("after shrink, round %d: got %d edges, want %d", k, len(got), len(want))
		}
	}
}

// TestHungarianSolverReuseMatchesOneShot drives one solver across many
// random graphs of varying geometry and checks every result against a
// fresh one-shot solve: reused scratch must never leak state between
// calls.
func TestHungarianSolverReuseMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var h HungarianSolver
	for k := 0; k < 200; k++ {
		nU := rng.Intn(6) + 1
		nV := rng.Intn(6) + 1
		edges := randGraph(rng, nU, nV, nU*nV, 40)
		got := h.MaxWeightMatching(nU, nV, edges)
		want := MaxWeightMatching(nU, nV, edges)
		if len(got) != len(want) {
			t.Fatalf("iter %d (%dx%d): reused solver found %d edges, one-shot %d", k, nU, nV, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("iter %d (%dx%d): edge %d mismatch: %+v vs %+v", k, nU, nV, i, got[i], want[i])
			}
		}
	}
}

// TestHungarianSolverSteadyStateZeroAllocs pins the reusable-scratch
// contract: once warm, maximum-weight solves allocate nothing.
func TestHungarianSolverSteadyStateZeroAllocs(t *testing.T) {
	const n = 16
	rng := rand.New(rand.NewSource(5))
	graphs := make([][]Edge, 8)
	for g := range graphs {
		graphs[g] = randGraph(rng, n, n, n*n/2, 100)
		if len(graphs[g]) == 0 {
			graphs[g] = []Edge{{U: 0, V: 0, W: 1}}
		}
	}
	var h HungarianSolver
	for _, g := range graphs { // warm-up to high-water scratch sizes
		h.MaxWeightMatching(n, n, g)
	}
	k := 0
	if allocs := testing.AllocsPerRun(100, func() {
		h.MaxWeightMatching(n, n, graphs[k%len(graphs)])
		k++
	}); allocs != 0 {
		t.Errorf("HungarianSolver: %v allocs/solve in steady state, want 0", allocs)
	}
}
