package matching

// Hungarian solves the rectangular assignment problem: given an nU x nV
// weight matrix w (weights >= 0), it finds an assignment of left to right
// vertices maximizing total weight, leaving vertices unassigned where that
// is better (equivalently, missing edges have weight 0 and zero-weight
// assignments are dropped from the result).
//
// This is the engine behind the maximum-weight-matching baseline (KR-MWM,
// the 6-competitive predecessor of PG). Complexity O(n^2 m) with the
// classical potentials formulation (Jonker–Volgenant style row-by-row
// augmentation, adapted to maximization by negating weights).
func Hungarian(w [][]int64) []Edge {
	nU := len(w)
	if nU == 0 {
		return nil
	}
	nV := len(w[0])
	// The potentials formulation solves min-cost perfect assignment on a
	// square matrix with rows <= cols; pad with zero rows/cols as needed
	// and use cost = -weight shifted to be >= 0.
	n := nU
	m := nV
	transposed := false
	if n > m {
		// Transpose so rows <= cols.
		wt := make([][]int64, m)
		for j := 0; j < m; j++ {
			wt[j] = make([]int64, n)
			for i := 0; i < n; i++ {
				wt[j][i] = w[i][j]
			}
		}
		w = wt
		n, m = m, n
		transposed = true
	}
	const inf = int64(1) << 62
	// u, v are potentials; p[j] = row matched to column j (1-based internal
	// indexing with a virtual column 0).
	u := make([]int64, n+1)
	v := make([]int64, m+1)
	p := make([]int, m+1)
	way := make([]int, m+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]int64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			var delta int64 = inf
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				// cost(i0, j) = -w[i0-1][j-1]; maximization via negation.
				cur := -w[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}
	var out []Edge
	for j := 1; j <= m; j++ {
		i := p[j]
		if i == 0 {
			continue
		}
		var e Edge
		if transposed {
			e = Edge{U: j - 1, V: i - 1, W: w[i-1][j-1]}
		} else {
			e = Edge{U: i - 1, V: j - 1, W: w[i-1][j-1]}
		}
		if e.W > 0 { // zero-weight pairings are "unmatched" in our model
			out = append(out, e)
		}
	}
	return out
}

// MaxWeightMatching finds a maximum-weight bipartite matching for an edge
// list with non-negative weights, via Hungarian on the induced dense
// matrix. Vertices absent from any edge contribute nothing.
func MaxWeightMatching(nU, nV int, edges []Edge) []Edge {
	if len(edges) == 0 {
		return nil
	}
	w := make([][]int64, nU)
	for i := range w {
		w[i] = make([]int64, nV)
	}
	for _, e := range edges {
		if e.W > w[e.U][e.V] {
			w[e.U][e.V] = e.W
		}
	}
	return Hungarian(w)
}
