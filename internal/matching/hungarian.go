package matching

import "qswitch/internal/scratch"

// HungarianSolver solves rectangular assignment problems with reusable
// scratch, mirroring HKMatcher: a zero value is ready to use, and a
// solver kept across scheduling cycles reaches a steady state where
// solving allocates nothing. The returned edge slice is scratch owned by
// the solver, valid until the next call — callers that retain results
// must copy them (the simulation engines consume transfers before the
// next policy call, so policies hand the slice straight through).
type HungarianSolver struct {
	u, v   []int64 // potentials
	minv   []int64
	p, way []int
	used   []bool
	w      [][]int64 // dense weight scratch (MaxWeightMatching)
	wrows  []int64   // backing storage for w
	wt     [][]int64 // transposed-input scratch
	wtrows []int64
	out    []Edge
}

// Solve finds an assignment of left to right vertices maximizing total
// weight for an nU x nV matrix w (weights >= 0), leaving vertices
// unassigned where that is better (missing edges have weight 0 and
// zero-weight assignments are dropped from the result).
//
// This is the engine behind the maximum-weight-matching baseline (KR-MWM,
// the 6-competitive predecessor of PG). Complexity O(n^2 m) with the
// classical potentials formulation (Jonker–Volgenant style row-by-row
// augmentation, adapted to maximization by negating weights).
func (h *HungarianSolver) Solve(w [][]int64) []Edge {
	nU := len(w)
	if nU == 0 {
		return nil
	}
	nV := len(w[0])
	// The potentials formulation solves min-cost perfect assignment on a
	// square matrix with rows <= cols; transpose as needed and use
	// cost = -weight.
	n := nU
	m := nV
	transposed := false
	if n > m {
		h.wt, h.wtrows = growMatrix(h.wt, h.wtrows, m, n)
		for j := 0; j < m; j++ {
			for i := 0; i < n; i++ {
				h.wt[j][i] = w[i][j]
			}
		}
		w = h.wt[:m]
		n, m = m, n
		transposed = true
	}
	const inf = int64(1) << 62
	// u, v are potentials; p[j] = row matched to column j (1-based
	// internal indexing with a virtual column 0).
	h.u = scratch.Grow(h.u, n+1)
	h.v = scratch.Grow(h.v, m+1)
	h.minv = scratch.Grow(h.minv, m+1)
	h.p = scratch.Grow(h.p, m+1)
	h.way = scratch.Grow(h.way, m+1)
	h.used = scratch.Grow(h.used, m+1)
	u, v, p, way := h.u, h.v, h.p, h.way
	for j := 0; j <= m; j++ {
		v[j] = 0
		p[j] = 0
		way[j] = 0
	}
	for i := 0; i <= n; i++ {
		u[i] = 0
	}
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv, used := h.minv, h.used
		for j := 0; j <= m; j++ {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			var delta int64 = inf
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				// cost(i0, j) = -w[i0-1][j-1]; maximization via negation.
				cur := -w[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}
	h.out = h.out[:0]
	for j := 1; j <= m; j++ {
		i := p[j]
		if i == 0 {
			continue
		}
		var e Edge
		if transposed {
			e = Edge{U: j - 1, V: i - 1, W: w[i-1][j-1]}
		} else {
			e = Edge{U: i - 1, V: j - 1, W: w[i-1][j-1]}
		}
		if e.W > 0 { // zero-weight pairings are "unmatched" in our model
			h.out = append(h.out, e)
		}
	}
	return h.out
}

// MaxWeightMatching finds a maximum-weight bipartite matching for an edge
// list with non-negative weights, via Solve on the induced dense matrix.
// Vertices absent from any edge contribute nothing. The result aliases
// solver scratch; see the type comment.
func (h *HungarianSolver) MaxWeightMatching(nU, nV int, edges []Edge) []Edge {
	if len(edges) == 0 {
		return nil
	}
	h.w, h.wrows = growMatrix(h.w, h.wrows, nU, nV)
	for i := 0; i < nU; i++ {
		row := h.w[i]
		for j := 0; j < nV; j++ {
			row[j] = 0
		}
	}
	for _, e := range edges {
		if e.W > h.w[e.U][e.V] {
			h.w[e.U][e.V] = e.W
		}
	}
	return h.Solve(h.w[:nU])
}

// Hungarian is the one-shot convenience wrapper around HungarianSolver.
func Hungarian(w [][]int64) []Edge {
	var h HungarianSolver
	return h.Solve(w)
}

// MaxWeightMatching is the one-shot convenience wrapper around
// HungarianSolver.MaxWeightMatching.
func MaxWeightMatching(nU, nV int, edges []Edge) []Edge {
	var h HungarianSolver
	return h.MaxWeightMatching(nU, nV, edges)
}

// growMatrix returns a rows x cols matrix reusing prior backing storage
// when large enough. Contents are unspecified; callers overwrite.
func growMatrix(m [][]int64, backing []int64, rows, cols int) ([][]int64, []int64) {
	if cap(backing) < rows*cols {
		backing = make([]int64, rows*cols)
	}
	backing = backing[:rows*cols]
	if cap(m) < rows {
		m = make([][]int64, rows)
	}
	m = m[:rows]
	for i := 0; i < rows; i++ {
		m[i] = backing[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return m, backing
}
