package experiments

import (
	"fmt"
	"math/rand"

	"qswitch/internal/adversary"
	"qswitch/internal/core"
	"qswitch/internal/offline"
	"qswitch/internal/packet"
	"qswitch/internal/ratio"
	"qswitch/internal/stats"
	"qswitch/internal/switchsim"
)

// E8Adversarial exercises the lower-bound machinery: the hand-crafted
// (2-1/m) IQ-model family hits its ratio exactly, and the local-search
// fuzzer pushes GM and PG as high as it can while never crossing the
// proven upper bounds — the empirical squeeze between lower and upper
// bounds that frames the paper's open problem (Section 4).
func E8Adversarial(opts Options) ([]*stats.Table, error) {
	tbA := stats.NewTable("E8a: IQ-model greedy lower bound family (GM)",
		"m", "phases", "gm_benefit", "opt", "ratio", "construction_ratio", "upper_bound")
	phases := opts.pick(2, 6)
	for _, m := range []int{2, 3} {
		cfg := adversary.IQLowerBoundCfg(m)
		seq := adversary.IQLowerBound(m, phases)
		res, err := switchsim.RunCIOQ(cfg, &core.GM{}, seq)
		if err != nil {
			return nil, fmt.Errorf("e8a: %w", err)
		}
		opt, err := offline.ExactUnitCIOQ(cfg, seq)
		if err != nil {
			return nil, fmt.Errorf("e8a: %w", err)
		}
		tbA.AddRow(m, phases, res.M.Benefit, opt,
			float64(opt)/float64(res.M.Benefit), 2-1/float64(m), 3.0)
	}
	// Larger m: OPT is analytic — the construction delivers all 2m-1
	// packets per phase (proved in the adversary package docs), and the
	// exact DP confirms it for m <= 3 above.
	for _, m := range []int{4, 8, 16} {
		cfg := adversary.IQLowerBoundCfg(m)
		seq := adversary.IQLowerBound(m, phases)
		res, err := switchsim.RunCIOQ(cfg, &core.GM{}, seq)
		if err != nil {
			return nil, fmt.Errorf("e8a: %w", err)
		}
		opt := int64((2*m - 1) * phases)
		tbA.AddRow(m, phases, res.M.Benefit, opt,
			float64(opt)/float64(res.M.Benefit), 2-1/float64(m), 3.0)
	}

	// improve_bound is the clean-sample confidence annotation on each hunt
	// verdict: with R independent restarts all topping out at best_ratio,
	// P(a fresh restart improves) <= improve_bound at the table's
	// confidence level (the found ratio itself is a proven witness).
	tbB := stats.NewTable("E8b: adversarial local search (fuzzer)",
		"target", "judge", "iterations", "best_ratio", "improve_bound", "proven_bound", "within")
	iters := opts.pick(60, 1500)
	cfg := opts.cfg(switchsim.Config{Inputs: 2, Outputs: 2, InputBuf: 1, OutputBuf: 1,
		CrossBuf: 1, Speedup: 1})
	gmJudge := ratio.ExactUnitCIOQ()
	gmEval := func(seq packet.Sequence) (float64, bool) {
		r, ok, err := ratio.Single(cfg,
			ratio.CIOQAlg(func() switchsim.CIOQPolicy { return &core.GM{} }),
			gmJudge, seq)
		if err != nil {
			return 0, false
		}
		return r, ok
	}
	resGM := adversary.Search(adversary.SearchOptions{
		Inputs: 2, Outputs: 2, MaxSlots: 5, MaxPackets: 8,
		MaxValue: 1, Iterations: iters, Seed: opts.Seed, Restarts: 2,
	}, gmEval)
	huntBound := stats.ExceedanceBound(2, 1-opts.confidence())
	tbB.AddRow("gm (unit)", "exact OPT", resGM.Tried, resGM.Ratio, huntBound, 3.0,
		boolMark(resGM.Ratio <= 3.0+1e-9))

	pgJudge := ratio.ExactWeightedCIOQ()
	pgEval := func(seq packet.Sequence) (float64, bool) {
		r, ok, err := ratio.Single(cfg,
			ratio.CIOQAlg(func() switchsim.CIOQPolicy { return &core.PG{} }),
			pgJudge, seq)
		if err != nil {
			return 0, false
		}
		return r, ok
	}
	resPG := adversary.Search(adversary.SearchOptions{
		Inputs: 2, Outputs: 2, MaxSlots: 4, MaxPackets: 7,
		MaxValue: 16, Iterations: iters / 2, Seed: opts.Seed + 1, Restarts: 2,
	}, pgEval)
	bound := core.PGRatio(core.DefaultBetaPG())
	tbB.AddRow("pg (weighted)", "exact OPT", resPG.Tried, resPG.Ratio, huntBound, bound,
		boolMark(resPG.Ratio <= bound+1e-9))

	// Structured constructions: geometric preemption chains aimed at the
	// weighted algorithms' β machinery, and pattern flips aimed at
	// pointer-based schedulers. Judged by the exact weighted optimum on
	// micro variants and the combined upper bound at size.
	tbC := stats.NewTable("E8c: structured adversarial constructions",
		"construction", "target", "judge", "ratio", "proven_bound", "within")
	{
		// Speedup 2 with a unit output buffer is the regime where the
		// beta gate (and hence output preemption) actually binds.
		cfgW := opts.cfg(switchsim.Config{Inputs: 2, Outputs: 1, InputBuf: 1, OutputBuf: 1,
			CrossBuf: 1, Speedup: 2})
		seq := adversary.PreemptionChains(2, core.DefaultBetaPG(), 3, 2)
		r, ok, err := ratio.Single(cfgW,
			ratio.CIOQAlg(func() switchsim.CIOQPolicy { return &core.PG{} }),
			ratio.ExactWeightedCIOQ(), seq)
		if err != nil {
			return nil, fmt.Errorf("e8c chains: %w", err)
		}
		if ok {
			tbC.AddRow("preemption-chains(beta*)", "pg", "exact OPT", r, bound,
				boolMark(r <= bound+1e-9))
		}
	}
	{
		n := opts.pick(4, 8)
		cfgF := opts.cfg(switchsim.Config{Inputs: n, Outputs: n, InputBuf: 2, OutputBuf: 2,
			CrossBuf: 1, Speedup: 1})
		seq := adversary.DiagonalFlip(n, 6, opts.pick(3, 8))
		ubJudge := ratio.UpperBoundCIOQ()
		r, ok, err := ratio.Single(cfgF,
			ratio.CIOQAlg(func() switchsim.CIOQPolicy { return &core.RoundRobin{} }),
			ubJudge, seq)
		if err != nil {
			return nil, fmt.Errorf("e8c flip: %w", err)
		}
		if ok {
			tbC.AddRow("diagonal-flip", "roundrobin", "combined UB", r, 0.0, "n/a (UB judge)")
		}
		r2, ok2, err := ratio.Single(cfgF,
			ratio.CIOQAlg(func() switchsim.CIOQPolicy { return &core.GM{} }),
			ubJudge, seq)
		if err != nil {
			return nil, fmt.Errorf("e8c flip gm: %w", err)
		}
		if ok2 {
			tbC.AddRow("diagonal-flip", "gm", "combined UB", r2, 0.0, "n/a (UB judge)")
		}
	}
	return []*stats.Table{tbA, tbB, tbC}, nil
}

// E10ValueDists studies the weighted algorithms across value models and
// reproduces the paper's closing practical guidance (Section 4): when
// high-value packets are frequent, smaller beta wins (admit aggressively);
// when preemption churn dominates, larger beta wins.
func E10ValueDists(opts Options) ([]*stats.Table, error) {
	n := opts.pick(4, 8)
	slots := opts.pick(60, 300)
	tbA := stats.NewTable("E10a: value-distribution robustness (benefit / offline UB)",
		"values", "policy", "benefit", "ub", "fraction_of_ub")
	dists := []packet.ValueDist{
		packet.TwoValued{Alpha: 2, PHigh: 0.3},
		packet.TwoValued{Alpha: 100, PHigh: 0.1},
		packet.UniformValues{Hi: 50},
		packet.ZipfValues{Hi: 1000, S: 1.2},
		packet.GeometricValues{P: 0.2, Hi: 256},
	}
	cfg := opts.cfg(switchsim.Config{Inputs: n, Outputs: n, InputBuf: 2, OutputBuf: 2,
		CrossBuf: 2, Speedup: 1, Slots: slots})
	for di, dist := range dists {
		rng := rand.New(rand.NewSource(opts.Seed + int64(di)))
		seq := packet.Hotspot{Load: 1.4, HotFrac: 0.5, Values: dist}.Generate(rng, n, n, slots/2)
		ub, err := offline.OQUpperBound(cfg, seq, false)
		if err != nil {
			return nil, fmt.Errorf("e10a: %w", err)
		}
		for _, pol := range []switchsim.CIOQPolicy{&core.PG{}, &core.KRMWM{}, &core.NaiveFIFO{}} {
			res, err := switchsim.RunCIOQ(cfg, pol, seq)
			if err != nil {
				return nil, fmt.Errorf("e10a: %w", err)
			}
			frac := 0.0
			if ub > 0 {
				frac = float64(res.M.Benefit) / float64(ub)
			}
			tbA.AddRow(dist.Name(), pol.Name(), res.M.Benefit, ub, frac)
		}
	}

	// The beta threshold gates transfers into FULL output queues, so it
	// only matters when the fabric can overfill them: speedup >= 2 and a
	// small output buffer. (At speedup 1 an output queue gains at most
	// one packet per slot and transmits one — it never fills, and every
	// beta behaves identically.)
	tbB := stats.NewTable("E10b: practical beta vs traffic mix (speedup 4, Section 4 guidance)",
		"mix", "beta", "benefit", "output_preemptions")
	cfgB := cfg
	cfgB.Speedup = 4
	cfgB.OutputBuf = 2
	// Note: a two-valued {1, alpha} distribution cannot discriminate
	// between betas inside (1, alpha) — the gate v(g) > beta*v(l) gives
	// the same verdict for every such beta. The mixes below use value
	// CONTINUA so the threshold actually moves.
	mixes := []struct {
		name string
		gen  packet.Generator
	}{
		{"uniform values, hot output", packet.Hotspot{Load: 1.8, HotFrac: 0.8,
			Values: packet.UniformValues{Hi: 64}}},
		{"heavy-tail values, hot output", packet.Hotspot{Load: 1.8, HotFrac: 0.8,
			Values: packet.ZipfValues{Hi: 512, S: 1.1}}},
		{"geometric values, bursty", packet.Bursty{OnLoad: 1.0, POnOff: 0.15, POffOn: 0.1,
			Values: packet.GeometricValues{P: 0.15, Hi: 256}}},
	}
	betas := []float64{1.0, 1.5, core.DefaultBetaPG(), 4.0, 8.0, 32.0}
	for mi, mix := range mixes {
		rng := rand.New(rand.NewSource(opts.Seed + int64(100+mi)))
		seq := mix.gen.Generate(rng, n, n, slots/2)
		for _, b := range betas {
			res, err := switchsim.RunCIOQ(cfgB, &core.PG{Beta: b}, seq)
			if err != nil {
				return nil, fmt.Errorf("e10b: %w", err)
			}
			tbB.AddRow(mix.name, fmt.Sprintf("%.3f", b), res.M.Benefit, res.M.PreemptedOutput)
		}
	}
	return []*stats.Table{tbA, tbB}, nil
}

// E11Rect exercises rectangular N x M switches (paper Section 4: the
// results generalize beyond square geometries), checking that both
// architectures run correctly and deliver sensible throughput relative to
// the offline upper bound.
func E11Rect(opts Options) ([]*stats.Table, error) {
	slots := opts.pick(40, 200)
	tb := stats.NewTable("E11: rectangular switches",
		"geometry", "policy", "model", "benefit", "ub", "fraction_of_ub")
	geoms := [][2]int{{2, 8}, {8, 2}, {4, 16}}
	for gi, g := range geoms {
		n, m := g[0], g[1]
		cfg := opts.cfg(switchsim.Config{Inputs: n, Outputs: m, InputBuf: 2, OutputBuf: 2,
			CrossBuf: 2, Speedup: 1, Slots: slots})
		rng := rand.New(rand.NewSource(opts.Seed + int64(gi)))
		seq := packet.Bernoulli{Load: 1.0, Values: packet.UniformValues{Hi: 10}}.
			Generate(rng, n, m, slots/2)
		ub, err := offline.OQUpperBound(cfg, seq, false)
		if err != nil {
			return nil, fmt.Errorf("e11: %w", err)
		}
		ubX, err := offline.OQUpperBound(cfg, seq, true)
		if err != nil {
			return nil, fmt.Errorf("e11: %w", err)
		}
		cioq, err := switchsim.RunCIOQ(cfg, &core.PG{}, seq)
		if err != nil {
			return nil, fmt.Errorf("e11: %w", err)
		}
		xbar, err := switchsim.RunCrossbar(cfg, &core.CPG{}, seq)
		if err != nil {
			return nil, fmt.Errorf("e11: %w", err)
		}
		tb.AddRow(fmt.Sprintf("%dx%d", n, m), "pg", "cioq", cioq.M.Benefit, ub,
			float64(cioq.M.Benefit)/float64(max(ub, 1)))
		tb.AddRow(fmt.Sprintf("%dx%d", n, m), "cpg", "crossbar", xbar.M.Benefit, ubX,
			float64(xbar.M.Benefit)/float64(max(ubX, 1)))
	}
	return []*stats.Table{tb}, nil
}

// E12MaximalVsMaximum pits the paper's greedy maximal engines against the
// maximum(-matching) engines of prior work on identical traffic: benefits
// agree within a few percent (both are 3- resp. ~6-competitive) while E5
// shows the cost gap — together they reproduce the paper's core
// efficiency-without-loss message.
func E12MaximalVsMaximum(opts Options) ([]*stats.Table, error) {
	n := opts.pick(4, 8)
	slots := opts.pick(60, 300)
	seeds := opts.pick(3, 10)
	tb := stats.NewTable("E12: greedy maximal vs maximum matching (benefit parity)",
		"traffic", "seeds", "gm/kr-maxmatch", "pg/kr-maxweight")
	gens := []packet.Generator{
		packet.Bernoulli{Load: 1.1, Values: packet.UniformValues{Hi: 20}},
		packet.Hotspot{Load: 1.3, HotFrac: 0.6, Values: packet.UniformValues{Hi: 20}},
		packet.Bursty{OnLoad: 1.0, POnOff: 0.25, POffOn: 0.25, Values: packet.UniformValues{Hi: 20}},
	}
	cfg := opts.cfg(switchsim.Config{Inputs: n, Outputs: n, InputBuf: 3, OutputBuf: 3,
		CrossBuf: 1, Speedup: 1, Slots: slots})
	for gi, gen := range gens {
		var accGM, accPG stats.Acc
		for s := 0; s < seeds; s++ {
			rng := rand.New(rand.NewSource(opts.Seed + int64(1000*gi+s)))
			seq := gen.Generate(rng, n, n, slots/2)
			unit := seq.Clone()
			for k := range unit {
				unit[k].Value = 1
			}
			gm, err := switchsim.RunCIOQ(cfg, &core.GM{}, unit)
			if err != nil {
				return nil, fmt.Errorf("e12: %w", err)
			}
			krm, err := switchsim.RunCIOQ(cfg, &core.KRMM{}, unit)
			if err != nil {
				return nil, fmt.Errorf("e12: %w", err)
			}
			pg, err := switchsim.RunCIOQ(cfg, &core.PG{}, seq)
			if err != nil {
				return nil, fmt.Errorf("e12: %w", err)
			}
			mwm, err := switchsim.RunCIOQ(cfg, &core.KRMWM{}, seq)
			if err != nil {
				return nil, fmt.Errorf("e12: %w", err)
			}
			accGM.Add(float64(gm.M.Benefit) / float64(max(krm.M.Benefit, 1)))
			accPG.Add(float64(pg.M.Benefit) / float64(max(mwm.M.Benefit, 1)))
		}
		tb.AddRow(gen.Name(), seeds, accGM.Mean(), accPG.Mean())
	}
	return []*stats.Table{tb}, nil
}
