// Package experiments implements the paper-reproduction experiment suite
// E1–E12 defined in DESIGN.md. Each experiment regenerates one table or
// figure's worth of data: competitive-ratio measurements against exact
// offline optima (E1–E4, E8), scheduling-cost comparisons backing the
// paper's efficiency claim (E5, E9, E12), and throughput studies across
// speedup, buffers, traffic and value distributions (E6, E7, E10, E11).
//
// Experiments are pure functions from Options to stats.Tables so the same
// code serves the switchbench CLI, the test suite (quick mode) and the
// root benchmark harness.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"qswitch/internal/obs"
	"qswitch/internal/packet"
	"qswitch/internal/ratio"
	"qswitch/internal/stats"
	"qswitch/internal/switchsim"
)

// Options controls experiment scale.
type Options struct {
	// Quick shrinks workloads by roughly an order of magnitude so every
	// experiment finishes in well under a second (used by tests and
	// benchmarks). Full mode is the CLI default.
	Quick bool
	// Seed is the base RNG seed; all experiments are deterministic
	// given a seed.
	Seed int64
	// Dense opts every simulation OUT of the event-driven engine fast
	// path (switchsim.Config.Dense); by default experiments run
	// event-driven, which matters for the adversarial workloads (E8, E14)
	// whose burst/drain/idle shape is exactly what the quiescent jump
	// accelerates. Results are bit-identical either way; it is purely a
	// wall-clock lever.
	Dense bool
	// Fleet routes the Monte-Carlo ratio estimations (E1-E4) through the
	// columnar batched engine (ratio.RunFleet over internal/fleet):
	// batchable policy families amortize one policy loop across a whole
	// batch of seeded instances, everything else falls back to scalar
	// runs. Estimates are byte-identical either way; like Dense, it is
	// purely a wall-clock lever.
	Fleet bool
	// Shard routes the Monte-Carlo ratio estimations (E1-E4) through an
	// out-of-process chunk service — typically a shard.Coordinator
	// fanning seed-range chunks over qswitchd worker processes with
	// retries and checkpointing. Estimates are byte-identical to every
	// in-process backend; like Dense and Fleet, it is purely an
	// operational lever. Takes precedence over Fleet.
	Shard ratio.ChunkService
	// ShardChunk is the seeds-per-chunk granularity handed to
	// ratio.RunSharded when Shard is set (<= 0 selects the default).
	ShardChunk int
	// Stream routes the Monte-Carlo ratio estimations (E1-E4) through the
	// streaming engines (switchsim.RunCIOQStream/RunCrossbarStream), with
	// each seed's sequence replayed as an arrival stream. Estimates are
	// byte-identical to every other backend; it exists to exercise the
	// streaming engines across the whole experiment surface. Shard and
	// Fleet take precedence.
	Stream bool
	// CITarget enables sequential stopping for the Monte-Carlo ratio
	// estimations (E1-E4): seed chunks are issued through whichever
	// backend the other levers select (scalar, stream, fleet or shard)
	// until the Student-t CI half-width on the mean ratio clears the
	// target, capped at the experiment's usual seed budget. The stopped
	// seed count depends only on (Seed, SeqChunk), never on the backend.
	// A disabled (zero) target reproduces the fixed-N estimates
	// byte-identically.
	CITarget stats.Target
	// SeqChunk is the seeds-per-stopping-decision granularity when
	// CITarget is enabled (<= 0 selects the ratio package default).
	SeqChunk int
	// Paired routes the E2b beta sweep through ratio.RunPaired: every
	// beta steps identical arrival sequences via the fleet engine with
	// ONE offline-optimum solve per seed (instead of one per beta), and
	// the sweep's paired-difference columns come from the same
	// ratio.PairedDiff fold either way — so the table is byte-identical
	// to the independent path and, like Fleet, this is purely a
	// wall-clock/sample-efficiency lever. Shard takes precedence (paired
	// mode is in-process).
	Paired bool
	// Probes, when set, is the observability registry the process's
	// probe bundles flush into (see internal/obs/wire.Up). Experiments
	// never read it — probes only observe, and tables are byte-identical
	// with or without it — but runners snapshot it around each
	// experiment (ProbeSnapshot) to report run telemetry next to the
	// tables.
	Probes *obs.Registry
}

// ProbeSnapshot captures the current probe counters; nil without a
// Probes registry. Diff two snapshots with obs.DiffSnapshot to attribute
// work (slots simulated, judge solves, quiescent jumps) to one
// experiment.
func (o Options) ProbeSnapshot() map[string]float64 { return o.Probes.Snapshot() }

// fleetBatch is the batch size Options.Fleet hands to ratio.RunFleet.
const fleetBatch = 64

// ratioCIOQ measures OPT/ALG for a CIOQ policy family over seeded
// workloads, honoring Options.Shard and Options.Fleet. The policy and
// judge carry both an in-process constructor and the registry spec string
// shard workers resolve; results are byte-identical across backends.
func (o Options) ratioCIOQ(cfg switchsim.Config, pol cioqPolicyRef,
	judge judgeRef, gen packet.Generator, seed int64, runs int) (ratio.Estimate, error) {
	if o.CITarget.Enabled() {
		est, _, err := ratio.RunSequential(o.ctx(), o.cioqEvaluator(cfg, pol, judge, gen, seed),
			ratio.SequentialOptions{Target: o.CITarget, Chunk: o.SeqChunk, MaxRuns: runs})
		return est, err
	}
	if o.Shard != nil {
		return ratio.RunSharded(o.ctx(), o.Shard, ratio.ChunkRequest{
			Cfg: cfg, Policy: pol.spec, Judge: judge.spec, Gen: gen, BaseSeed: seed,
		}, runs, o.ShardChunk)
	}
	if o.Fleet {
		return ratio.RunFleet(o.ctx(), cfg, ratio.CIOQFleetAlg(pol.factory), judge.factory, gen, seed, runs, 1, fleetBatch)
	}
	if o.Stream {
		return ratio.Run(o.ctx(), cfg, ratio.CIOQStreamAlg(pol.factory), judge.factory, gen, seed, runs)
	}
	return ratio.Run(o.ctx(), cfg, ratio.CIOQAlg(pol.factory), judge.factory, gen, seed, runs)
}

// cioqEvaluator adapts the backend the options select to the sequential
// driver's chunk interface, honoring the same precedence as ratioCIOQ.
func (o Options) cioqEvaluator(cfg switchsim.Config, pol cioqPolicyRef,
	judge judgeRef, gen packet.Generator, seed int64) ratio.ChunkEvaluator {
	if o.Shard != nil {
		return ratio.ShardedChunks(o.Shard, ratio.ChunkRequest{
			Cfg: cfg, Policy: pol.spec, Judge: judge.spec, Gen: gen, BaseSeed: seed,
		})
	}
	if o.Fleet {
		return ratio.FleetChunks(cfg, ratio.CIOQFleetAlg(pol.factory), judge.factory, gen, seed, fleetBatch)
	}
	if o.Stream {
		return ratio.ScalarChunks(cfg, ratio.CIOQStreamAlg(pol.factory), judge.factory, gen, seed)
	}
	return ratio.ScalarChunks(cfg, ratio.CIOQAlg(pol.factory), judge.factory, gen, seed)
}

// ratioCrossbar is ratioCIOQ for crossbar policy families.
func (o Options) ratioCrossbar(cfg switchsim.Config, pol crossbarPolicyRef,
	judge judgeRef, gen packet.Generator, seed int64, runs int) (ratio.Estimate, error) {
	if o.CITarget.Enabled() {
		est, _, err := ratio.RunSequential(o.ctx(), o.crossbarEvaluator(cfg, pol, judge, gen, seed),
			ratio.SequentialOptions{Target: o.CITarget, Chunk: o.SeqChunk, MaxRuns: runs})
		return est, err
	}
	if o.Shard != nil {
		return ratio.RunSharded(o.ctx(), o.Shard, ratio.ChunkRequest{
			Cfg: cfg, Crossbar: true, Policy: pol.spec, Judge: judge.spec, Gen: gen, BaseSeed: seed,
		}, runs, o.ShardChunk)
	}
	if o.Fleet {
		return ratio.RunFleet(o.ctx(), cfg, ratio.CrossbarFleetAlg(pol.factory), judge.factory, gen, seed, runs, 1, fleetBatch)
	}
	if o.Stream {
		return ratio.Run(o.ctx(), cfg, ratio.CrossbarStreamAlg(pol.factory), judge.factory, gen, seed, runs)
	}
	return ratio.Run(o.ctx(), cfg, ratio.CrossbarAlg(pol.factory), judge.factory, gen, seed, runs)
}

// crossbarEvaluator is cioqEvaluator for crossbar policy families.
func (o Options) crossbarEvaluator(cfg switchsim.Config, pol crossbarPolicyRef,
	judge judgeRef, gen packet.Generator, seed int64) ratio.ChunkEvaluator {
	if o.Shard != nil {
		return ratio.ShardedChunks(o.Shard, ratio.ChunkRequest{
			Cfg: cfg, Crossbar: true, Policy: pol.spec, Judge: judge.spec, Gen: gen, BaseSeed: seed,
		})
	}
	if o.Fleet {
		return ratio.FleetChunks(cfg, ratio.CrossbarFleetAlg(pol.factory), judge.factory, gen, seed, fleetBatch)
	}
	if o.Stream {
		return ratio.ScalarChunks(cfg, ratio.CrossbarStreamAlg(pol.factory), judge.factory, gen, seed)
	}
	return ratio.ScalarChunks(cfg, ratio.CrossbarAlg(pol.factory), judge.factory, gen, seed)
}

// ctx is the context experiment runs execute under; experiments are
// synchronous today, so it is the background context.
func (o Options) ctx() context.Context { return context.Background() }

// confidence is the CI confidence level the ratio tables annotate at:
// the CITarget's level, 0.95 when no target is set.
func (o Options) confidence() float64 { return o.CITarget.ConfidenceLevel() }

// cioqPolicyRef couples a CIOQ policy family's in-process factory with
// the registry spec string a shard worker resolves to the same family.
type cioqPolicyRef struct {
	spec    string
	factory func() switchsim.CIOQPolicy
}

// crossbarPolicyRef is cioqPolicyRef for crossbar families.
type crossbarPolicyRef struct {
	spec    string
	factory func() switchsim.CrossbarPolicy
}

// judgeRef couples a judge factory with its registry spec string.
type judgeRef struct {
	spec    string
	factory ratio.JudgeFactory
}

// fmtParam renders a float policy parameter so it round-trips exactly
// through a registry spec string.
func fmtParam(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// cfg applies the experiment-wide simulation options to a config.
func (o Options) cfg(c switchsim.Config) switchsim.Config {
	c.Dense = o.Dense
	return c
}

// pick returns quick or full depending on the mode.
func (o Options) pick(quick, full int) int {
	if o.Quick {
		return quick
	}
	return full
}

// Experiment couples an experiment's identity with its runner.
type Experiment struct {
	ID    string
	Title string
	Claim string // the paper claim this experiment reproduces
	Run   func(Options) ([]*stats.Table, error)
}

// All returns the registry in ID order.
func All() []Experiment {
	exps := []Experiment{
		{"e1", "GM competitive ratio (unit CIOQ)",
			"Theorem 1: GM is 3-competitive for any speedup", E1GMRatio},
		{"e2", "PG competitive ratio and beta sweep (weighted CIOQ)",
			"Theorem 2: PG is (3+2*sqrt(2))-competitive at beta=1+sqrt(2)", E2PGRatio},
		{"e3", "CGU competitive ratio (unit crossbar)",
			"Theorem 3: CGU is 3-competitive (improves the known 4)", E3CGURatio},
		{"e4", "CPG parameters and ratio (weighted crossbar)",
			"Theorem 4: CPG is ~14.83-competitive at the asymmetric optimum", E4CPGParams},
		{"e5", "scheduling cost: greedy maximal vs maximum matching",
			"Section 1.1: greedy maximal matching is significantly more efficient", E5MatchingCost},
		{"e6", "throughput vs speedup",
			"Theorems 1-4 hold for any speedup; throughput saturates with s", E6Speedup},
		{"e7", "throughput vs buffer size",
			"buffer sensitivity of all four algorithms", E7Buffers},
		{"e8", "adversarial lower bounds",
			"Section 1.2/4: IQ lower bounds carry over; fuzzer stays below proven bounds", E8Adversarial},
		{"e9", "CIOQ vs buffered crossbar",
			"Section 1: crossbar buffers decrease scheduling overhead", E9CIOQvsCrossbar},
		{"e10", "value-distribution robustness and practical beta",
			"Section 4: choosing beta by traffic mix", E10ValueDists},
		{"e11", "rectangular N x M switches",
			"Section 4: all results generalize to N x M", E11Rect},
		{"e12", "maximal vs maximum matching: equal competitiveness",
			"Section 1.1: cheap maximal matchings lose no benefit in practice", E12MaximalVsMaximum},
		{"e13", "GM edge-order ablation",
			"the greedy scan order is a free choice; quantify its effect", E13EdgeOrder},
		{"e14", "randomization vs the adaptive adversary",
			"Section 4 open problem: randomized algorithms for CIOQ (empirical probe)", E14Randomization},
		{"e15", "non-FIFO vs FIFO queues",
			"the paper's non-FIFO model vs the FIFO related-work line", E15FIFOComparison},
		{"e16", "IQ model reduction and bounds at scale",
			"Section 1.2/4: GM/PG reduce to the classical IQ algorithms; IQ bounds carry over", E16IQModel},
	}
	sort.Slice(exps, func(a, b int) bool { return exps[a].ID < exps[b].ID })
	return exps
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// microCfg is the shared geometry for exact-optimum experiments.
func microCfg(o Options, slots int) switchsim.Config {
	return o.cfg(switchsim.Config{
		Inputs: 2, Outputs: 2,
		InputBuf: 2, OutputBuf: 2, CrossBuf: 1,
		Speedup: 1, Slots: slots,
	})
}

func boolMark(ok bool) string {
	if ok {
		return "ok"
	}
	return "VIOLATED"
}

func fmtCfg(c switchsim.Config) string {
	return fmt.Sprintf("%dx%d Bin=%d Bout=%d Bx=%d s=%d",
		c.Inputs, c.Outputs, c.InputBuf, c.OutputBuf, c.CrossBuf, c.Speedup)
}
