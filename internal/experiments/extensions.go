package experiments

import (
	"fmt"
	"math/rand"

	"qswitch/internal/adversary"
	"qswitch/internal/core"
	"qswitch/internal/offline"
	"qswitch/internal/packet"
	"qswitch/internal/stats"
	"qswitch/internal/switchsim"
)

// E13EdgeOrder is the ablation for GM's one free design choice: the edge
// scan order of the greedy maximal matching. The paper allows any fixed
// order; this experiment quantifies how much the choice matters on benign
// and adversarial traffic (answer: little on random traffic, a lot
// against an adversary tuned to the order — see E14).
func E13EdgeOrder(opts Options) ([]*stats.Table, error) {
	n := opts.pick(4, 8)
	slots := opts.pick(60, 400)
	seeds := opts.pick(3, 10)
	tb := stats.NewTable("E13: GM edge-order ablation",
		"traffic", "order", "mean_throughput", "mean_loss_pct")
	orders := []struct {
		name string
		mk   func() switchsim.CIOQPolicy
	}{
		{"rowmajor", func() switchsim.CIOQPolicy { return &core.GM{} }},
		{"colmajor", func() switchsim.CIOQPolicy { return &core.GM{Order: core.ColMajor} }},
		{"rotating", func() switchsim.CIOQPolicy { return &core.GM{Order: core.Rotating} }},
		{"longestfirst", func() switchsim.CIOQPolicy { return &core.GM{Order: core.LongestFirst} }},
		{"random", func() switchsim.CIOQPolicy { return &core.RandomizedGM{} }},
	}
	gens := []packet.Generator{
		packet.Bernoulli{Load: 1.0},
		packet.Hotspot{Load: 1.1, HotFrac: 0.5},
		packet.Diagonal{Load: 1.0, OffFrac: 0.1},
	}
	cfg := opts.cfg(switchsim.Config{Inputs: n, Outputs: n, InputBuf: 2, OutputBuf: 2,
		CrossBuf: 1, Speedup: 1, Slots: slots})
	for gi, gen := range gens {
		for _, ord := range orders {
			var thr, loss stats.Acc
			for s := 0; s < seeds; s++ {
				rng := rand.New(rand.NewSource(opts.Seed + int64(100*gi+s)))
				seq := gen.Generate(rng, n, n, slots*3/4)
				res, err := switchsim.RunCIOQ(cfg, ord.mk(), seq)
				if err != nil {
					return nil, fmt.Errorf("e13: %w", err)
				}
				thr.Add(res.Throughput())
				loss.Add(100 * res.M.LossRate())
			}
			tb.AddRow(gen.Name(), ord.name, thr.Mean(), loss.Mean())
		}
	}
	return []*stats.Table{tb}, nil
}

// E14Randomization probes the paper's open problem (Section 4: "no result
// is known on any randomized algorithm in these models") from both sides
// of the adversary model:
//
//   - Against a fully ADAPTIVE adversary — one that observes the policy's
//     queues after every slot (via the stepper API) and refills a queue
//     that is provably still occupied — randomization cannot help: every
//     policy, deterministic or randomized, is forced to exactly 2 - 1/m.
//     This is the classical reason randomized competitive analysis
//     assumes oblivious adversaries.
//
//   - Against the OBLIVIOUS lower-bound sequence (fixed in advance,
//     tuned to row-major GM), the randomized scan dodges many refill
//     traps and its expected ratio drops well below 2 - 1/m, while the
//     deterministic orders the sequence was not tuned to may or may not
//     escape. This is the empirical signal that randomization has room
//     to beat the deterministic lower bounds — exactly the open problem.
func E14Randomization(opts Options) ([]*stats.Table, error) {
	phases := opts.pick(2, 4)
	tbA := stats.NewTable("E14a: fully adaptive (observing) adversary",
		"m", "policy", "alg_benefit", "exact_opt", "ratio", "deterministic_lb")
	policies := []struct {
		name string
		mk   func() switchsim.CIOQPolicy
	}{
		{"gm (rowmajor)", func() switchsim.CIOQPolicy { return &core.GM{} }},
		{"gm (rotating)", func() switchsim.CIOQPolicy { return &core.GM{Order: core.Rotating} }},
		{"gm-random", func() switchsim.CIOQPolicy { return &core.RandomizedGM{Seed: opts.Seed + 5} }},
	}
	for _, m := range []int{4, 6, 8} {
		cfg := opts.cfg(adversary.IQLowerBoundCfg(m))
		for _, pol := range policies {
			seq, benefit, err := adversary.AdaptiveAntiGreedy(cfg, pol.mk(), phases)
			if err != nil {
				return nil, fmt.Errorf("e14a m=%d %s: %w", m, pol.name, err)
			}
			opt, err := offline.ExactUnitCIOQ(cfg, seq)
			if err != nil {
				return nil, fmt.Errorf("e14a m=%d opt: %w", m, err)
			}
			ratio := 0.0
			if benefit > 0 {
				ratio = float64(opt) / float64(benefit)
			}
			tbA.AddRow(m, pol.name, benefit, opt, ratio, 2-1/float64(m))
		}
	}

	tbB := stats.NewTable("E14b: oblivious lower-bound sequence (tuned to row-major GM)",
		"m", "policy", "mean_benefit", "exact_opt", "ratio", "deterministic_lb")
	trials := opts.pick(5, 20)
	for _, m := range []int{4, 6, 8} {
		cfg := opts.cfg(adversary.IQLowerBoundCfg(m))
		seq := adversary.IQLowerBound(m, phases)
		opt, err := offline.ExactUnitCIOQ(cfg, seq)
		if err != nil {
			return nil, fmt.Errorf("e14b m=%d opt: %w", m, err)
		}
		// Deterministic target: the order the sequence was built for.
		det, err := switchsim.RunCIOQ(cfg, &core.GM{}, seq)
		if err != nil {
			return nil, fmt.Errorf("e14b: %w", err)
		}
		tbB.AddRow(m, "gm (rowmajor)", float64(det.M.Benefit), opt,
			float64(opt)/float64(det.M.Benefit), 2-1/float64(m))
		// Randomized: expected benefit over independent coin sequences.
		var acc stats.Acc
		for tr := 0; tr < trials; tr++ {
			res, err := switchsim.RunCIOQ(cfg,
				&core.RandomizedGM{Seed: opts.Seed + int64(tr+1)}, seq)
			if err != nil {
				return nil, fmt.Errorf("e14b: %w", err)
			}
			acc.Add(float64(res.M.Benefit))
		}
		tbB.AddRow(m, fmt.Sprintf("gm-random (E over %d runs)", trials),
			acc.Mean(), opt, float64(opt)/acc.Mean(), 2-1/float64(m))
	}
	return []*stats.Table{tbA, tbB}, nil
}

// E15FIFOComparison contrasts the paper's non-FIFO model with the FIFO
// related-work line (Azar–Richter / Kesselman et al.): value-ordered
// queues with tail preemption (PG) versus strict arrival-order queues
// with minimum preemption (AR-FIFO) on identical weighted traffic. The
// non-FIFO freedom is where PG's tighter ratio comes from; the measured
// gap quantifies it.
func E15FIFOComparison(opts Options) ([]*stats.Table, error) {
	n := opts.pick(4, 8)
	slots := opts.pick(60, 300)
	seeds := opts.pick(3, 8)
	tb := stats.NewTable("E15: non-FIFO (paper) vs FIFO (related work) queues",
		"traffic", "policy", "mean_benefit", "mean_frac_of_ub", "mean_latency")
	cfg := opts.cfg(switchsim.Config{Inputs: n, Outputs: n, InputBuf: 3, OutputBuf: 3,
		CrossBuf: 1, Speedup: 1, Slots: slots, RecordLatency: true})
	gens := []packet.Generator{
		packet.Hotspot{Load: 1.5, HotFrac: 0.6, Values: packet.ZipfValues{Hi: 500, S: 1.1}},
		packet.Bursty{OnLoad: 1.0, POnOff: 0.2, POffOn: 0.15, Values: packet.UniformValues{Hi: 50}},
	}
	policies := []struct {
		name string
		mk   func() switchsim.CIOQPolicy
	}{
		{"pg (non-FIFO)", func() switchsim.CIOQPolicy { return &core.PG{} }},
		{"ar-fifo (FIFO)", func() switchsim.CIOQPolicy { return &core.ARFIFO{} }},
		{"naive-fifo", func() switchsim.CIOQPolicy { return &core.NaiveFIFO{} }},
	}
	for gi, gen := range gens {
		for _, pol := range policies {
			var ben, frac, lat stats.Acc
			for s := 0; s < seeds; s++ {
				rng := rand.New(rand.NewSource(opts.Seed + int64(100*gi+s)))
				seq := gen.Generate(rng, n, n, slots/2)
				ub, err := offline.OQUpperBound(cfg, seq, false)
				if err != nil {
					return nil, fmt.Errorf("e15: %w", err)
				}
				res, err := switchsim.RunCIOQ(cfg, pol.mk(), seq)
				if err != nil {
					return nil, fmt.Errorf("e15: %w", err)
				}
				ben.Add(float64(res.M.Benefit))
				if ub > 0 {
					frac.Add(float64(res.M.Benefit) / float64(ub))
				}
				lat.Add(res.M.MeanLatency())
			}
			tb.AddRow(gen.Name(), pol.name, ben.Mean(), frac.Mean(), lat.Mean())
		}
	}

	// Crossbar side: CPG (non-FIFO) vs the KKS-style FIFO baseline.
	tbX := stats.NewTable("E15b: crossbar: non-FIFO (CPG) vs FIFO (KKS line)",
		"traffic", "policy", "mean_benefit", "mean_frac_of_ub", "mean_latency")
	xbarPolicies := []struct {
		name string
		mk   func() switchsim.CrossbarPolicy
	}{
		{"cpg (non-FIFO)", func() switchsim.CrossbarPolicy { return &core.CPG{} }},
		{"kks-fifo (FIFO)", func() switchsim.CrossbarPolicy { return &core.KKSFIFO{} }},
		{"crossbar-naive", func() switchsim.CrossbarPolicy { return &core.CrossbarNaive{} }},
	}
	for gi, gen := range gens {
		for _, pol := range xbarPolicies {
			var ben, frac, lat stats.Acc
			for s := 0; s < seeds; s++ {
				rng := rand.New(rand.NewSource(opts.Seed + int64(100*gi+s)))
				seq := gen.Generate(rng, n, n, slots/2)
				ub, err := offline.OQUpperBound(cfg, seq, true)
				if err != nil {
					return nil, fmt.Errorf("e15b: %w", err)
				}
				res, err := switchsim.RunCrossbar(cfg, pol.mk(), seq)
				if err != nil {
					return nil, fmt.Errorf("e15b: %w", err)
				}
				ben.Add(float64(res.M.Benefit))
				if ub > 0 {
					frac.Add(float64(res.M.Benefit) / float64(ub))
				}
				lat.Add(res.M.MeanLatency())
			}
			tbX.AddRow(gen.Name(), pol.name, ben.Mean(), frac.Mean(), lat.Mean())
		}
	}
	return []*stats.Table{tb, tbX}, nil
}
