package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"qswitch/internal/core"
	"qswitch/internal/matching"
	"qswitch/internal/packet"
	"qswitch/internal/stats"
	"qswitch/internal/switchsim"
)

// E5MatchingCost times one scheduling decision for each matching engine
// over random dense eligibility graphs of growing size — the paper's
// efficiency argument (Section 1.1): greedy maximal matchings beat the
// maximum(-weight) matchings of prior work by orders of magnitude as N
// grows, which is what makes GM/PG practical in real switches.
func E5MatchingCost(opts Options) ([]*stats.Table, error) {
	sizes := []int{8, 16, 32, 64}
	if !opts.Quick {
		sizes = append(sizes, 128, 256)
	}
	baseReps := opts.pick(20, 200)
	tb := stats.NewTable("E5: scheduling cost per cycle (ns; figure: cost vs N)",
		"N", "edges", "greedy_ns", "greedy_weighted_ns", "hopcroft_karp_ns", "hungarian_ns",
		"hk_vs_greedy", "hungarian_vs_greedyw")
	rng := rand.New(rand.NewSource(opts.Seed))
	for _, n := range sizes {
		// Scale repetitions inversely with size so small-N timings are
		// not dominated by timer noise.
		reps := baseReps * 256 / n
		edges := denseEligibility(rng, n, 0.5)
		adj := matching.AdjFromEdges(n, edges)
		w := make([][]int64, n)
		for i := range w {
			w[i] = make([]int64, n)
		}
		for _, e := range edges {
			w[e.U][e.V] = e.W
		}
		var sched matching.WeightedScheduler
		g := timeIt(reps, func() { matching.GreedyMaximal(n, n, edges) })
		gw := timeIt(reps, func() { sched.GreedyMaximalWeighted(n, n, edges) })
		hk := timeIt(reps, func() { matching.HopcroftKarp(n, n, adj) })
		hungReps := reps
		if n >= 128 {
			hungReps = reps / 10
			if hungReps == 0 {
				hungReps = 1
			}
		}
		hu := timeIt(hungReps, func() { matching.Hungarian(w) })
		tb.AddRow(n, len(edges), g, gw, hk, hu,
			fmt.Sprintf("%.1fx", float64(hk)/float64(max(g, 1))),
			fmt.Sprintf("%.1fx", float64(hu)/float64(max(gw, 1))))
	}
	return []*stats.Table{tb}, nil
}

func denseEligibility(rng *rand.Rand, n int, p float64) []matching.Edge {
	var edges []matching.Edge
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < p {
				edges = append(edges, matching.Edge{U: i, V: j, W: rng.Int63n(100) + 1})
			}
		}
	}
	return edges
}

func timeIt(reps int, f func()) int64 {
	start := time.Now()
	for k := 0; k < reps; k++ {
		f()
	}
	return time.Since(start).Nanoseconds() / int64(reps)
}

// E6Speedup sweeps the speedup s = 1..4 for all four paper algorithms
// under overload, reproducing the "any speedup" robustness: ratios and
// throughput improve monotonically and saturate once the fabric stops
// being the bottleneck.
func E6Speedup(opts Options) ([]*stats.Table, error) {
	n := opts.pick(4, 8)
	slots := opts.pick(60, 400)
	tb := stats.NewTable("E6: throughput vs speedup (figure)",
		"traffic", "speedup", "policy", "model", "throughput", "loss_pct")
	gens := []packet.Generator{
		packet.Bernoulli{Load: 1.0, Values: packet.UniformValues{Hi: 20}},
		packet.Bursty{OnLoad: 1.0, POnOff: 0.2, POffOn: 0.2, Values: packet.UniformValues{Hi: 20}},
		packet.Hotspot{Load: 1.0, HotFrac: 0.5, Values: packet.UniformValues{Hi: 20}},
	}
	for gi, gen := range gens {
		for speedup := 1; speedup <= 4; speedup++ {
			cfg := opts.cfg(switchsim.Config{
				Inputs: n, Outputs: n, InputBuf: 4, OutputBuf: 4, CrossBuf: 2,
				Speedup: speedup, Slots: slots,
			})
			rng := rand.New(rand.NewSource(opts.Seed + int64(gi)))
			seq := gen.Generate(rng, n, n, slots*3/4)
			for _, pol := range []switchsim.CIOQPolicy{&core.GM{}, &core.PG{}} {
				res, err := switchsim.RunCIOQ(cfg, pol, seq)
				if err != nil {
					return nil, fmt.Errorf("e6: %w", err)
				}
				tb.AddRow(gen.Name(), speedup, pol.Name(), "cioq",
					res.Throughput(), 100*res.M.LossRate())
			}
			for _, pol := range []switchsim.CrossbarPolicy{&core.CGU{}, &core.CPG{}} {
				res, err := switchsim.RunCrossbar(cfg, pol, seq)
				if err != nil {
					return nil, fmt.Errorf("e6: %w", err)
				}
				tb.AddRow(gen.Name(), speedup, pol.Name(), "crossbar",
					res.Throughput(), 100*res.M.LossRate())
			}
		}
	}
	return []*stats.Table{tb}, nil
}

// E7Buffers sweeps buffer capacity for the four algorithms at fixed
// overload, reproducing the buffer-sensitivity figure: throughput climbs
// with B and saturates near the offered load.
func E7Buffers(opts Options) ([]*stats.Table, error) {
	n := opts.pick(4, 8)
	slots := opts.pick(60, 400)
	bufs := []int{1, 2, 4, 8}
	if !opts.Quick {
		bufs = append(bufs, 16, 32)
	}
	tb := stats.NewTable("E7: throughput vs buffer size (figure)",
		"buffer", "policy", "model", "throughput", "loss_pct", "mean_latency")
	gen := packet.Bursty{OnLoad: 1.0, POnOff: 0.25, POffOn: 0.25, Values: packet.UniformValues{Hi: 20}}
	for _, b := range bufs {
		cfg := opts.cfg(switchsim.Config{
			Inputs: n, Outputs: n, InputBuf: b, OutputBuf: b, CrossBuf: b,
			Speedup: 1, Slots: slots, RecordLatency: true,
		})
		rng := rand.New(rand.NewSource(opts.Seed))
		seq := gen.Generate(rng, n, n, slots*3/4)
		for _, pol := range []switchsim.CIOQPolicy{&core.GM{}, &core.PG{}} {
			res, err := switchsim.RunCIOQ(cfg, pol, seq)
			if err != nil {
				return nil, fmt.Errorf("e7: %w", err)
			}
			tb.AddRow(b, pol.Name(), "cioq", res.Throughput(), 100*res.M.LossRate(), res.M.MeanLatency())
		}
		for _, pol := range []switchsim.CrossbarPolicy{&core.CGU{}, &core.CPG{}} {
			res, err := switchsim.RunCrossbar(cfg, pol, seq)
			if err != nil {
				return nil, fmt.Errorf("e7: %w", err)
			}
			tb.AddRow(b, pol.Name(), "crossbar", res.Throughput(), 100*res.M.LossRate(), res.M.MeanLatency())
		}
	}
	return []*stats.Table{tb}, nil
}

// E9CIOQvsCrossbar compares the two architectures at matched buffer
// budgets and measures wall-clock scheduling cost, reproducing the paper's
// motivation for buffered crossbars: per-port greedy subphases avoid even
// the greedy matching computation, cutting scheduling overhead while
// matching (or beating) CIOQ throughput on contended traffic.
func E9CIOQvsCrossbar(opts Options) ([]*stats.Table, error) {
	sizes := []int{4, 8}
	if !opts.Quick {
		sizes = append(sizes, 16, 32)
	}
	slots := opts.pick(50, 300)
	tb := stats.NewTable("E9: CIOQ vs buffered crossbar (figure: benefit and cost vs N)",
		"N", "policy", "model", "benefit", "throughput", "sim_ns_per_slot")
	gen := packet.Hotspot{Load: 1.0, HotFrac: 0.4, Values: packet.UniformValues{Hi: 20}}
	for _, n := range sizes {
		cfg := opts.cfg(switchsim.Config{
			Inputs: n, Outputs: n, InputBuf: 4, OutputBuf: 4, CrossBuf: 2,
			Speedup: 1, Slots: slots,
		})
		rng := rand.New(rand.NewSource(opts.Seed + int64(n)))
		seq := gen.Generate(rng, n, n, slots*3/4)
		type runner struct {
			name, model string
			run         func() (*switchsim.Result, error)
		}
		runners := []runner{
			{"gm", "cioq", func() (*switchsim.Result, error) { return switchsim.RunCIOQ(cfg, &core.GM{}, seq) }},
			{"kr-maxmatch", "cioq", func() (*switchsim.Result, error) { return switchsim.RunCIOQ(cfg, &core.KRMM{}, seq) }},
			{"pg", "cioq", func() (*switchsim.Result, error) { return switchsim.RunCIOQ(cfg, &core.PG{}, seq) }},
			{"cgu", "crossbar", func() (*switchsim.Result, error) { return switchsim.RunCrossbar(cfg, &core.CGU{}, seq) }},
			{"cpg", "crossbar", func() (*switchsim.Result, error) { return switchsim.RunCrossbar(cfg, &core.CPG{}, seq) }},
		}
		for _, r := range runners {
			// Time the best of three runs to damp scheduler noise.
			var res *switchsim.Result
			best := int64(1) << 62
			for rep := 0; rep < 3; rep++ {
				start := time.Now()
				out, err := r.run()
				if err != nil {
					return nil, fmt.Errorf("e9: %w", err)
				}
				if el := time.Since(start).Nanoseconds(); el < best {
					best = el
				}
				res = out
			}
			tb.AddRow(n, r.name, r.model, res.M.Benefit, res.Throughput(), best/int64(slots))
		}
	}
	return []*stats.Table{tb}, nil
}
