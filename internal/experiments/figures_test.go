package experiments

import (
	"bytes"
	"testing"
)

func TestFiguresSpecsResolve(t *testing.T) {
	// Every figure spec must address an existing table and existing
	// columns — run each figure-bearing experiment in quick mode and
	// build its charts.
	for _, e := range All() {
		specs := Figures(e.ID)
		if len(specs) == 0 {
			continue
		}
		tables, err := e.Run(Options{Quick: true, Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		charts, err := BuildFigures(e.ID, tables)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(charts) == 0 {
			t.Errorf("%s: specs present but no charts built", e.ID)
		}
		for _, ch := range charts {
			if len(ch.Series) == 0 {
				t.Errorf("%s: chart %q has no series", e.ID, ch.Title)
				continue
			}
			var buf bytes.Buffer
			ch.Render(&buf, 48, 12)
			if buf.Len() == 0 {
				t.Errorf("%s: chart %q rendered empty", e.ID, ch.Title)
			}
		}
	}
}

func TestFiguresUnknownID(t *testing.T) {
	if specs := Figures("nope"); specs != nil {
		t.Errorf("unknown id returned specs: %v", specs)
	}
	charts, err := BuildFigures("nope", nil)
	if err != nil || len(charts) != 0 {
		t.Errorf("unknown id built charts: %v, %v", charts, err)
	}
}
