package experiments

import (
	"fmt"
	"math"

	"qswitch/internal/core"
	"qswitch/internal/packet"
	"qswitch/internal/ratio"
	"qswitch/internal/stats"
	"qswitch/internal/switchsim"
)

// E1GMRatio measures GM's competitive ratio against the exact unit-value
// offline optimum on micro instances across traffic classes, buffer sizes
// and speedups. Reproduces the shape of Theorem 1: every measured ratio
// is at most 3, typically far below.
func E1GMRatio(opts Options) ([]*stats.Table, error) {
	runs := opts.pick(8, 120)
	slots := opts.pick(5, 7)
	tb := stats.NewTable("E1: GM vs exact OPT (bound 3)",
		"config", "traffic", "runs", "max_ratio", "mean_ratio", "ci_hw", "bound", "within")
	gens := []packet.Generator{
		packet.Bernoulli{Load: 1.0},
		packet.Bernoulli{Load: 2.0},
		packet.Hotspot{Load: 1.5, HotFrac: 0.8},
		packet.Bursty{OnLoad: 1.0, POnOff: 0.4, POffOn: 0.4},
	}
	alg := cioqPolicyRef{"gm", func() switchsim.CIOQPolicy { return &core.GM{} }}
	cfgs := []switchsim.Config{microCfg(opts, slots)}
	{
		c := microCfg(opts, slots)
		c.InputBuf, c.OutputBuf = 1, 1
		cfgs = append(cfgs, c)
		c2 := microCfg(opts, slots)
		c2.Speedup = 2
		cfgs = append(cfgs, c2)
	}
	for ci, cfg := range cfgs {
		for gi, gen := range gens {
			est, err := opts.ratioCIOQ(cfg, alg, judgeRef{"exactunit", ratio.ExactUnitCIOQ}, gen,
				opts.Seed+int64(1000*ci+100*gi), runs)
			if err != nil {
				return nil, fmt.Errorf("e1: %w", err)
			}
			tb.AddRow(fmtCfg(cfg), gen.Name(), est.Runs, est.Max, est.Mean,
				est.HalfWidth(opts.confidence()), 3.0, boolMark(est.Max <= 3.0+1e-9))
		}
	}
	return []*stats.Table{tb}, nil
}

// E2PGRatio measures PG against the exact weighted optimum and sweeps the
// threshold beta, reproducing two shapes from Theorem 2: the bound
// beta + 2*beta/(beta-1) is respected everywhere, and beta = 1+sqrt(2)
// minimizes the theoretical curve (the empirical curve is flat near the
// optimum, as the paper's worst cases are adversarial, not random).
func E2PGRatio(opts Options) ([]*stats.Table, error) {
	runs := opts.pick(6, 60)
	slots := opts.pick(3, 4)
	bound := core.PGRatio(core.DefaultBetaPG())
	tbA := stats.NewTable(fmt.Sprintf("E2a: PG (beta=1+sqrt2) vs exact OPT (bound %.4f)", bound),
		"traffic", "runs", "max_ratio", "mean_ratio", "ci_hw", "bound", "within")
	gens := []packet.Generator{
		packet.Bernoulli{Load: 0.8, Values: packet.UniformValues{Hi: 20}},
		packet.Bernoulli{Load: 0.8, Values: packet.TwoValued{Alpha: 50, PHigh: 0.3}},
		packet.Hotspot{Load: 0.9, HotFrac: 0.9, Values: packet.GeometricValues{P: 0.3, Hi: 64}},
		packet.Bursty{OnLoad: 0.8, POnOff: 0.3, POffOn: 0.3, Values: packet.ZipfValues{Hi: 100, S: 1.2}},
	}
	cfg := microCfg(opts, slots)
	alg := cioqPolicyRef{"pg", func() switchsim.CIOQPolicy { return &core.PG{} }}
	for gi, gen := range gens {
		est, err := opts.ratioCIOQ(cfg, alg, judgeRef{"exactweighted", ratio.ExactWeightedCIOQ}, gen,
			opts.Seed+int64(100*gi), runs)
		if err != nil {
			return nil, fmt.Errorf("e2a: %w", err)
		}
		tbA.AddRow(gen.Name(), est.Runs, est.Max, est.Mean,
			est.HalfWidth(opts.confidence()), bound, boolMark(est.Max <= bound+1e-9))
	}

	// The beta gate only binds when output queues can actually fill,
	// which requires speedup >= 2 (with one cycle per slot, an output
	// queue gains at most one packet per slot and sends one). The sweep
	// therefore runs at speedup 2 with a tight output buffer.
	// The beta sweep is the natural paired comparison: every beta sees the
	// SAME seed stream (all points at opts.Seed+7), so per-seed ratio
	// differences against the baseline beta cancel all workload noise.
	// The dmean/dci_hw columns report that paired difference; with
	// Options.Paired the points share one generated sequence and one
	// offline solve per seed via ratio.RunPaired, and the diff fold is the
	// same ratio.PairedDiff either way, so the table is byte-identical.
	tbB := stats.NewTable("E2b: beta sweep at speedup 2 (figure: ratio vs beta)",
		"beta", "theory_bound", "max_ratio", "mean_ratio", "ci_hw", "dmean", "dci_hw", "within")
	cfgB := cfg
	cfgB.Speedup = 2
	cfgB.OutputBuf = 1
	betas := []float64{1.0, 1.2, 1.5, 1.8, 2.1, 1 + math.Sqrt2, 2.8, 3.2, 4.0, 6.0}
	gen := packet.Hotspot{Load: 1.2, HotFrac: 0.8, Values: packet.GeometricValues{P: 0.35, Hi: 64}}
	pols := make([]cioqPolicyRef, len(betas))
	for i, beta := range betas {
		b := beta
		pols[i] = cioqPolicyRef{fmt.Sprintf("pg(beta=%s)", fmtParam(b)),
			func() switchsim.CIOQPolicy { return &core.PG{Beta: b} }}
	}
	ests, err := opts.betaSweepEstimates(cfgB, pols, gen, opts.Seed+7, runs)
	if err != nil {
		return nil, fmt.Errorf("e2b: %w", err)
	}
	conf := opts.confidence()
	for i, beta := range betas {
		est := ests[i]
		theory := core.PGRatio(beta)
		if beta <= 1 {
			theory = math.Inf(1)
		}
		d := prefixDiff(ests[0], est, conf)
		tbB.AddRow(fmt.Sprintf("%.4f", beta), theory, est.Max, est.Mean,
			est.HalfWidth(conf), d.Mean, d.HalfWidth,
			boolMark(beta <= 1 || est.Max <= theory+1e-9))
	}
	return []*stats.Table{tbA, tbB}, nil
}

// betaSweepEstimates measures every point of a policy family over the
// same seed stream: independently through ratioCIOQ, or — with
// Options.Paired and no shard — through ratio.RunPaired, which steps all
// points on shared sequences with one judge call per seed. Marginal
// estimates are byte-identical either way.
func (o Options) betaSweepEstimates(cfg switchsim.Config, pols []cioqPolicyRef,
	gen packet.Generator, seed int64, runs int) ([]ratio.Estimate, error) {
	if o.Paired && o.Shard == nil {
		ppols := make([]ratio.PairedPolicy, len(pols))
		for i, p := range pols {
			ppols[i] = ratio.PairedPolicy{Name: p.spec, Alg: ratio.CIOQFleetAlg(p.factory)}
		}
		pe, err := ratio.RunPaired(o.ctx(), cfg, ppols, ratio.ExactWeightedCIOQ, gen, seed,
			ratio.PairedOptions{Batch: fleetBatch, Chunk: o.SeqChunk, Target: o.CITarget, MaxRuns: runs})
		if err != nil {
			return nil, err
		}
		return pe.Marginals, nil
	}
	ests := make([]ratio.Estimate, len(pols))
	for i, pol := range pols {
		est, err := o.ratioCIOQ(cfg, pol, judgeRef{"exactweighted", ratio.ExactWeightedCIOQ}, gen, seed, runs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pol.spec, err)
		}
		ests[i] = est
	}
	return ests, nil
}

// prefixDiff is ratio.PairedDiff over the aligned sample prefix: two
// estimates on the same seed stream share their skip set (the judge
// decides it alone), so sample i of both is the same seed even when
// sequential stopping issued different seed counts — truncating to the
// common prefix keeps the pairing exact.
func prefixDiff(base, other ratio.Estimate, conf float64) ratio.DiffEstimate {
	n := min(len(base.Samples), len(other.Samples))
	base.Samples, other.Samples = base.Samples[:n], other.Samples[:n]
	base.Runs, other.Runs = n, n
	d, err := ratio.PairedDiff(base, other, conf)
	if err != nil {
		return ratio.DiffEstimate{Confidence: conf}
	}
	return d
}

// E3CGURatio measures CGU against the exact unit-value crossbar optimum:
// Theorem 3's bound of 3 (improving the previously proven 4) holds on
// every instance.
func E3CGURatio(opts Options) ([]*stats.Table, error) {
	runs := opts.pick(8, 100)
	slots := opts.pick(4, 6)
	tb := stats.NewTable("E3: CGU vs exact OPT (bound 3; prior analysis gave 4)",
		"config", "traffic", "runs", "max_ratio", "mean_ratio", "ci_hw", "bound", "within")
	gens := []packet.Generator{
		packet.Bernoulli{Load: 1.5},
		packet.Hotspot{Load: 1.5, HotFrac: 0.8},
		packet.Bursty{OnLoad: 1.0, POnOff: 0.4, POffOn: 0.4},
	}
	alg := crossbarPolicyRef{"cgu", func() switchsim.CrossbarPolicy { return &core.CGU{} }}
	cfgs := []switchsim.Config{microCfg(opts, slots)}
	{
		c := microCfg(opts, slots)
		c.Speedup = 2
		cfgs = append(cfgs, c)
	}
	for ci, cfg := range cfgs {
		for gi, gen := range gens {
			est, err := opts.ratioCrossbar(cfg, alg, judgeRef{"exactunit", ratio.ExactUnitCrossbar}, gen,
				opts.Seed+int64(1000*ci+100*gi), runs)
			if err != nil {
				return nil, fmt.Errorf("e3: %w", err)
			}
			tb.AddRow(fmtCfg(cfg), gen.Name(), est.Runs, est.Max, est.Mean,
				est.HalfWidth(opts.confidence()), 3.0, boolMark(est.Max <= 3.0+1e-9))
		}
	}
	return []*stats.Table{tb}, nil
}

// E4CPGParams reproduces Theorem 4's parameter analysis: the closed-form
// optimum (beta*, alpha*) and its ratio ~14.83, the strictly worse beta =
// alpha restriction (~15.59 under this bound; 16.24 as originally proven),
// a grid showing no parameter pair beats the closed form, and empirical
// micro-instance ratios for both parameterizations.
func E4CPGParams(opts Options) ([]*stats.Table, error) {
	tbA := stats.NewTable("E4a: CPG parameter analysis (Theorem 4)",
		"variant", "beta", "alpha", "ratio_bound")
	bStar, aStar := core.DefaultBetaCPG(), core.DefaultAlphaCPG()
	tbA.AddRow("paper optimum (closed form)", bStar, aStar, core.CPGRatio(bStar, aStar))
	bEq, rEq := core.MinimizeCPGEqualParams()
	tbA.AddRow("beta=alpha (Kesselman et al.)", bEq, bEq, rEq)
	bn, an, rn := core.MinimizeCPG()
	tbA.AddRow("numeric 2-d minimum", bn, an, rn)

	tbB := stats.NewTable("E4b: bound over a (beta, alpha) grid (heatmap figure)",
		"beta", "alpha", "ratio_bound")
	gridB := []float64{1.4, 1.6, bStar, 2.1, 2.5}
	gridA := []float64{1.8, 2.2, aStar, 3.4, 4.2}
	for _, b := range gridB {
		for _, a := range gridA {
			tbB.AddRow(b, a, core.CPGRatio(b, a))
		}
	}

	runs := opts.pick(4, 30)
	slots := opts.pick(3, 3)
	cfg := microCfg(opts, slots)
	gen := packet.Bernoulli{Load: 0.7, Values: packet.UniformValues{Hi: 16}}
	tbC := stats.NewTable("E4c: empirical ratio vs exact OPT (micro instances)",
		"variant", "runs", "max_ratio", "mean_ratio", "ci_hw", "bound", "within")
	variants := []struct {
		name  string
		pol   crossbarPolicyRef
		bound float64
	}{
		{"cpg (beta*, alpha*)",
			crossbarPolicyRef{"cpg", func() switchsim.CrossbarPolicy { return &core.CPG{} }},
			core.CPGRatioClosedForm()},
		{"cpg (beta=alpha)",
			crossbarPolicyRef{fmt.Sprintf("cpg(beta=%s,alpha=%s)", fmtParam(bEq), fmtParam(bEq)),
				func() switchsim.CrossbarPolicy { return core.CPGEqualParams() }},
			rEq},
	}
	for vi, v := range variants {
		est, err := opts.ratioCrossbar(cfg, v.pol, judgeRef{"exactweighted", ratio.ExactWeightedCrossbar},
			gen, opts.Seed+int64(100*vi), runs)
		if err != nil {
			return nil, fmt.Errorf("e4c: %w", err)
		}
		tbC.AddRow(v.name, est.Runs, est.Max, est.Mean,
			est.HalfWidth(opts.confidence()), v.bound,
			boolMark(est.Max <= v.bound+1e-9))
	}
	return []*stats.Table{tbA, tbB, tbC}, nil
}
