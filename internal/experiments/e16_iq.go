package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"qswitch/internal/adversary"
	"qswitch/internal/iq"
	"qswitch/internal/packet"
	"qswitch/internal/stats"
)

// E16IQModel grounds the paper's Section 1.2/4 claims about the IQ model:
//
//   - GM and PG collapse to the classical IQ algorithms on the reduction
//     (verified exactly by the test suite; here the measured ratios of
//     the IQ policies against the exact flow optimum are reported),
//   - the known IQ bounds frame everything: any greedy is 2-competitive
//     with a (2 - 1/B) greedy lower bound, TLH is 3-competitive, and the
//     e/(e-1) ≈ 1.58 randomized lower bound applies to ALL policies —
//     and therefore to CIOQ and buffered crossbars too.
//
// Because the IQ optimum is a single min-cost flow, the measurement runs
// at real scale (m up to 32, hundreds of slots), unlike the micro-scale
// CIOQ optima.
func E16IQModel(opts Options) ([]*stats.Table, error) {
	slots := opts.pick(40, 200)
	runs := opts.pick(5, 30)
	tbA := stats.NewTable("E16a: IQ policies vs exact flow OPT",
		"m", "B", "policy", "runs", "max_ratio", "mean_ratio", "bound")
	type polSpec struct {
		name  string
		mk    func() iq.Policy
		bound float64
	}
	pols := []polSpec{
		{"iq-greedy-longest", func() iq.Policy { return &iq.Greedy{} }, 2},
		{"iq-greedy-first", func() iq.Policy { return &iq.Greedy{Order: iq.FirstNonEmpty} }, 2},
		{"iq-tlh", func() iq.Policy { return &iq.TLH{} }, 3},
		{"iq-maxhead", func() iq.Policy { return &iq.MaxHead{} }, 3},
	}
	geoms := [][2]int{{4, 2}, {16, 4}}
	if !opts.Quick {
		geoms = append(geoms, [2]int{32, 8})
	}
	for _, geom := range geoms {
		m, b := geom[0], geom[1]
		// Bounded horizon: arrivals plus a short drain window. Under
		// overload the unbounded horizon would grow with the backlog
		// and blow up the flow network for no analytic gain (both OPT
		// and the policies see the same truncation).
		horizon := slots + 2*m
		for _, valueClass := range []struct {
			values packet.ValueDist
			bound  float64
		}{
			{packet.UnitValues{}, 2},
			{packet.UniformValues{Hi: 50}, 3},
		} {
			// One exact OPT per workload, shared by the class's
			// policies.
			type sample struct {
				seq packet.Sequence
				opt int64
				err error
			}
			// The exact flow optima are independent; fan them out.
			samples := make([]sample, runs)
			var wg sync.WaitGroup
			sem := make(chan struct{}, runtime.GOMAXPROCS(0))
			for r := 0; r < runs; r++ {
				r := r
				wg.Add(1)
				sem <- struct{}{}
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					rng := rand.New(rand.NewSource(opts.Seed + int64(r)))
					seq := packet.Bernoulli{Load: 1.8, Values: valueClass.values}.
						Generate(rng, 1, m, slots)
					opt, err := iq.ExactOPT(m, b, seq, horizon)
					samples[r] = sample{seq, opt, err}
				}()
			}
			wg.Wait()
			for _, s := range samples {
				if s.err != nil {
					return nil, fmt.Errorf("e16a: %w", s.err)
				}
			}
			for _, ps := range pols {
				if ps.bound != valueClass.bound {
					continue
				}
				var acc stats.Acc
				maxRatio := 0.0
				for _, s := range samples {
					if s.opt == 0 {
						continue
					}
					res, err := iq.Run(m, b, ps.mk(), s.seq, horizon)
					if err != nil {
						return nil, fmt.Errorf("e16a: %w", err)
					}
					ratio := float64(s.opt) / float64(res.Benefit)
					acc.Add(ratio)
					maxRatio = math.Max(maxRatio, ratio)
				}
				tbA.AddRow(m, b, ps.name, acc.N(), maxRatio, acc.Mean(), ps.bound)
			}
		}
	}

	// The adversarial family at scale: exact flow OPT confirms the
	// construction value for every m (no DP size limits here).
	tbB := stats.NewTable("E16b: greedy lower-bound family at scale (exact flow OPT)",
		"m", "greedy_benefit", "exact_opt", "ratio", "2-1/m", "randomized_lb_e/(e-1)")
	phases := opts.pick(2, 5)
	for _, m := range []int{2, 4, 8, 16, 32} {
		seq := adversary.IQLowerBound(m, phases)
		opt, err := iq.ExactOPT(m, 1, seq, seq.MaxSlot()+2*m)
		if err != nil {
			return nil, fmt.Errorf("e16b: %w", err)
		}
		res, err := iq.Run(m, 1, &iq.Greedy{Order: iq.FirstNonEmpty}, seq, seq.MaxSlot()+2*m)
		if err != nil {
			return nil, fmt.Errorf("e16b: %w", err)
		}
		tbB.AddRow(m, res.Benefit, opt,
			float64(opt)/float64(res.Benefit), 2-1/float64(m), math.E/(math.E-1))
	}
	return []*stats.Table{tbA, tbB}, nil
}
