package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"qswitch/internal/stats"
)

var update = flag.Bool("update", false, "rewrite the golden experiment CSVs")

// renderCSVs renders an experiment's tables the same way switchbench's
// -csv mode does, concatenated with table headers.
func renderCSVs(t *testing.T, id string, opts Options) []byte {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s missing", id)
	}
	tables, err := e.Run(opts)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var buf bytes.Buffer
	for i, tb := range tables {
		fmt.Fprintf(&buf, "# table %d: %s\n", i, tb.Title)
		tb.RenderCSV(&buf)
	}
	return buf.Bytes()
}

// TestGoldenExperimentCSVs pins the E1-E4 CSV output (quick mode, fixed
// seed) against checked-in goldens, so changes to table shape — column
// order, CI annotations, formatting — are always explicit. Regenerate
// with:
//
//	go test ./internal/experiments -run TestGoldenExperimentCSVs -update
func TestGoldenExperimentCSVs(t *testing.T) {
	for _, id := range []string{"e1", "e2", "e3", "e4"} {
		got := renderCSVs(t, id, Options{Quick: true, Seed: 5})
		path := filepath.Join("testdata", "golden", id+".csv")
		if *update {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: reading golden (run with -update to create): %v", id, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: CSV output diverged from golden %s (regenerate with -update if intended):\n got:\n%s\nwant:\n%s",
				id, path, got, want)
		}
	}
}

// TestPairedOptionBitIdentical renders E2 with and without Options.Paired
// and requires byte-identical tables: the paired fleet backend shares
// sequences and judge calls but must never change a number.
func TestPairedOptionBitIdentical(t *testing.T) {
	independent := renderCSVs(t, "e2", Options{Quick: true, Seed: 5})
	paired := renderCSVs(t, "e2", Options{Quick: true, Seed: 5, Paired: true})
	if !bytes.Equal(independent, paired) {
		t.Errorf("Paired option changed results:\nindependent:\n%s\npaired:\n%s", independent, paired)
	}
}

// TestSequentialOptionDisabledTargetBitIdentical: a disabled CI target
// routes through the sequential driver but must reproduce the fixed-N
// tables byte-for-byte. (SeqChunk alone must never matter either.)
func TestSequentialOptionDisabledTargetBitIdentical(t *testing.T) {
	for _, id := range []string{"e1", "e3"} {
		base := renderCSVs(t, id, Options{Quick: true, Seed: 5})
		seq := renderCSVs(t, id, Options{Quick: true, Seed: 5, SeqChunk: 3})
		if !bytes.Equal(base, seq) {
			t.Errorf("%s: SeqChunk with disabled target changed results", id)
		}
	}
}

// TestSequentialTargetStopsEarly: an easy CI target must reduce the seed
// count actually spent (visible in the runs column) without breaking any
// bound check.
func TestSequentialTargetStopsEarly(t *testing.T) {
	e, found := ByID("e1")
	if !found {
		t.Fatal("e1 missing")
	}
	tablesFull, err := e.Run(Options{Quick: true, Seed: 5})
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	tablesSeq, err := e.Run(Options{Quick: true, Seed: 5,
		CITarget: stats.Target{AbsWidth: 0.6, MinSamples: 2}, SeqChunk: 2})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	var bf, bs bytes.Buffer
	tablesFull[0].RenderCSV(&bf)
	tablesSeq[0].RenderCSV(&bs)
	if bf.String() == bs.String() {
		t.Error("an AbsWidth=0.6 target should stop at least one estimation early, but tables are identical")
	}
	// Bound checks must survive sequential stopping.
	if bytes.Contains(bs.Bytes(), []byte("VIOLATED")) {
		t.Errorf("sequential run reports a bound violation:\n%s", bs.String())
	}
}
