package experiments

import (
	"bytes"
	"testing"

	"qswitch/internal/obs"
	"qswitch/internal/obs/wire"
	"qswitch/internal/shard"
	"qswitch/internal/stats"
)

// renderAll renders every table of an experiment run as CSV bytes — the
// byte-level surface the neutrality suite compares.
func renderAll(t *testing.T, e Experiment, opts Options) string {
	t.Helper()
	tables, err := e.Run(opts)
	if err != nil {
		t.Fatalf("%s: %v", e.ID, err)
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		tb.RenderCSV(&buf)
	}
	return buf.String()
}

// TestProbesDecisionNeutral is the observability layer's core guarantee:
// installing the probes changes NO experiment output, on any ratio
// backend. Each backend variant runs E1 once with probes uninstalled and
// once with the full probe set live, and the rendered CSV bytes must be
// identical — while the probe counters must actually have moved, proving
// the instrumented paths ran.
func TestProbesDecisionNeutral(t *testing.T) {
	e, ok := ByID("e1")
	if !ok {
		t.Fatal("e1 missing")
	}
	localShard := func(t *testing.T) *shard.Coordinator {
		t.Helper()
		c, err := shard.NewCoordinator(shard.CoordinatorOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	base := Options{Quick: true, Seed: 5}
	variants := []struct {
		name string
		opts func(t *testing.T) Options
	}{
		{"scalar", func(t *testing.T) Options { return base }},
		{"fleet", func(t *testing.T) Options { o := base; o.Fleet = true; return o }},
		{"stream", func(t *testing.T) Options { o := base; o.Stream = true; return o }},
		{"shard", func(t *testing.T) Options { o := base; o.Shard = localShard(t); return o }},
		{"sequential", func(t *testing.T) Options {
			o := base
			o.CITarget = stats.Target{AbsWidth: 0.02, Confidence: 0.95}
			return o
		}},
		{"sequential-fleet", func(t *testing.T) Options {
			o := base
			o.Fleet = true
			o.CITarget = stats.Target{AbsWidth: 0.02, Confidence: 0.95}
			return o
		}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			off := renderAll(t, e, v.opts(t))

			reg := obs.NewRegistry()
			wire.Up(reg)
			defer wire.Down()
			before := reg.Snapshot()
			opts := v.opts(t)
			opts.Probes = reg
			on := renderAll(t, e, opts)

			if on != off {
				t.Errorf("probes changed %s output:\nprobes off:\n%s\nprobes on:\n%s", v.name, off, on)
			}
			delta := obs.DiffSnapshot(before, reg.Snapshot())
			// Kernel-batched instances count in the fleet probes instead of
			// the engine probes, and quick-mode E1 uses the exact judges.
			if delta[obs.MetricEngineRuns] == 0 && delta[obs.MetricFleetKernel] == 0 {
				t.Errorf("neither engine nor fleet probes fired; delta: %v", delta)
			}
			if delta[obs.MetricJudgeSolves] == 0 && delta[obs.MetricJudgeExactSolves] == 0 {
				t.Errorf("judge probes never fired; delta: %v", delta)
			}
			switch v.name {
			case "fleet", "sequential-fleet":
				if delta[obs.MetricFleetKernel] == 0 && delta[obs.MetricFleetFallback] == 0 {
					t.Errorf("fleet probes never fired; delta: %v", delta)
				}
			case "sequential":
				if delta[obs.MetricSeqChunks] == 0 {
					t.Errorf("sequential probes never fired; delta: %v", delta)
				}
			}
		})
	}
}

// TestProbeSnapshotNilSafe pins the Options accessor contract: without a
// registry, ProbeSnapshot returns nil and costs nothing.
func TestProbeSnapshotNilSafe(t *testing.T) {
	if snap := (Options{}).ProbeSnapshot(); snap != nil {
		t.Fatalf("ProbeSnapshot without registry = %v, want nil", snap)
	}
}
