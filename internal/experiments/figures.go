package experiments

import "qswitch/internal/stats"

// FigureSpec maps one of an experiment's tables onto a chart: which
// table (by index in the Run result), which columns are x and y, and
// which columns name the series.
type FigureSpec struct {
	TableIndex int
	X, Y       string
	GroupBy    []string
}

// Figures returns the chart specifications for an experiment, keyed by
// the experiment id. Experiments without figure semantics return nil.
func Figures(id string) []FigureSpec {
	switch id {
	case "e2":
		return []FigureSpec{{TableIndex: 1, X: "beta", Y: "theory_bound"}}
	case "e4":
		return []FigureSpec{{TableIndex: 1, X: "beta", Y: "ratio_bound", GroupBy: []string{"alpha"}}}
	case "e5":
		return []FigureSpec{
			{TableIndex: 0, X: "N", Y: "greedy_weighted_ns"},
			{TableIndex: 0, X: "N", Y: "hungarian_ns"},
		}
	case "e6":
		return []FigureSpec{{TableIndex: 0, X: "speedup", Y: "throughput", GroupBy: []string{"policy"}}}
	case "e7":
		return []FigureSpec{{TableIndex: 0, X: "buffer", Y: "throughput", GroupBy: []string{"policy", "model"}}}
	case "e8":
		return []FigureSpec{{TableIndex: 0, X: "m", Y: "ratio"}}
	case "e9":
		return []FigureSpec{{TableIndex: 0, X: "N", Y: "sim_ns_per_slot", GroupBy: []string{"policy"}}}
	case "e14":
		return []FigureSpec{{TableIndex: 1, X: "m", Y: "ratio", GroupBy: []string{"policy"}}}
	default:
		return nil
	}
}

// BuildFigures converts an experiment's tables into charts according to
// its figure specs. Tables out of range or missing columns yield errors;
// experiments without specs yield an empty slice.
func BuildFigures(id string, tables []*stats.Table) ([]*stats.Chart, error) {
	var out []*stats.Chart
	for _, spec := range Figures(id) {
		if spec.TableIndex >= len(tables) {
			continue
		}
		ch, err := stats.ChartFromTable(tables[spec.TableIndex], spec.X, spec.Y, spec.GroupBy...)
		if err != nil {
			return nil, err
		}
		out = append(out, ch)
	}
	return out, nil
}
