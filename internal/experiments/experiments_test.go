package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	exps := All()
	if len(exps) != 16 {
		t.Fatalf("registry has %d experiments, want 16", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("e1"); !ok {
		t.Error("e1 not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("bogus id found")
	}
}

// TestAllExperimentsRunQuick executes every experiment in quick mode and
// sanity-checks the produced tables. This is the end-to-end test of the
// whole reproduction pipeline.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(Options{Quick: true, Seed: 12345})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("%s: table %q empty", e.ID, tb.Title)
				}
				var buf bytes.Buffer
				tb.Render(&buf)
				if buf.Len() == 0 {
					t.Errorf("%s: table %q rendered empty", e.ID, tb.Title)
				}
			}
		})
	}
}

// TestBoundExperimentsReportNoViolations scans the ratio experiments'
// "within" columns: a VIOLATED cell means a measured competitive ratio
// exceeded a proven bound, i.e. a bug in simulator, policy or optimum.
func TestBoundExperimentsReportNoViolations(t *testing.T) {
	for _, id := range []string{"e1", "e2", "e3", "e4", "e8"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		tables, err := e.Run(Options{Quick: true, Seed: 999})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, tb := range tables {
			var buf bytes.Buffer
			tb.Render(&buf)
			if strings.Contains(buf.String(), "VIOLATED") {
				t.Errorf("%s: bound violation reported:\n%s", id, buf.String())
			}
		}
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	e, _ := ByID("e1")
	a, err := e.Run(Options{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(Options{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	for _, tb := range a {
		tb.RenderCSV(&ba)
	}
	for _, tb := range b {
		tb.RenderCSV(&bb)
	}
	if ba.String() != bb.String() {
		t.Error("e1 not deterministic across runs with the same seed")
	}
}

// TestFleetOptionBitIdentical renders the ratio experiments with and
// without Options.Fleet and requires byte-identical tables: the columnar
// batched backend must change wall-clock only, never a number.
func TestFleetOptionBitIdentical(t *testing.T) {
	for _, id := range []string{"e1", "e2", "e3", "e4"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		scalar, err := e.Run(Options{Quick: true, Seed: 5})
		if err != nil {
			t.Fatalf("%s scalar: %v", id, err)
		}
		fleet, err := e.Run(Options{Quick: true, Seed: 5, Fleet: true})
		if err != nil {
			t.Fatalf("%s fleet: %v", id, err)
		}
		var bs, bf bytes.Buffer
		for _, tb := range scalar {
			tb.RenderCSV(&bs)
		}
		for _, tb := range fleet {
			tb.RenderCSV(&bf)
		}
		if bs.String() != bf.String() {
			t.Errorf("%s: Fleet option changed results:\nscalar:\n%s\nfleet:\n%s", id, bs.String(), bf.String())
		}
	}
}

// TestStreamOptionBitIdentical renders the ratio experiments with and
// without Options.Stream and requires byte-identical tables: the streaming
// engine backend must change the execution strategy only, never a number.
func TestStreamOptionBitIdentical(t *testing.T) {
	for _, id := range []string{"e1", "e3"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		scalar, err := e.Run(Options{Quick: true, Seed: 5})
		if err != nil {
			t.Fatalf("%s scalar: %v", id, err)
		}
		stream, err := e.Run(Options{Quick: true, Seed: 5, Stream: true})
		if err != nil {
			t.Fatalf("%s stream: %v", id, err)
		}
		var bs, bt bytes.Buffer
		for _, tb := range scalar {
			tb.RenderCSV(&bs)
		}
		for _, tb := range stream {
			tb.RenderCSV(&bt)
		}
		if bs.String() != bt.String() {
			t.Errorf("%s: Stream option changed results:\nscalar:\n%s\nstream:\n%s", id, bs.String(), bt.String())
		}
	}
}
