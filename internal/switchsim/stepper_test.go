package switchsim

import (
	"testing"

	"qswitch/internal/packet"
)

func TestStepperMatchesBatchRun(t *testing.T) {
	cfg := baseCfg()
	rngSeq := seqOf(
		packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 1},
		packet.Packet{Arrival: 0, In: 1, Out: 1, Value: 1},
		packet.Packet{Arrival: 1, In: 0, Out: 1, Value: 1},
		packet.Packet{Arrival: 3, In: 1, Out: 0, Value: 1},
	)
	batch, err := RunCIOQ(cfg, &passPolicy{}, rngSeq)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewCIOQStepper(cfg, &passPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	by := rngSeq.BySlot(4)
	for slot := 0; slot < 4; slot++ {
		// Strip arrival/ID: the stepper assigns them.
		var arr []packet.Packet
		for _, p := range by[slot] {
			arr = append(arr, packet.Packet{In: p.In, Out: p.Out, Value: p.Value})
		}
		if err := st.StepSlot(arr); err != nil {
			t.Fatal(err)
		}
	}
	res, err := st.Finish(50)
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Benefit != batch.M.Benefit || res.M.Sent != batch.M.Sent {
		t.Errorf("stepper benefit=%d sent=%d, batch benefit=%d sent=%d",
			res.M.Benefit, res.M.Sent, batch.M.Benefit, batch.M.Sent)
	}
}

func TestStepperRejectsBadArrivals(t *testing.T) {
	st, err := NewCIOQStepper(baseCfg(), &passPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.StepSlot([]packet.Packet{{In: 9, Out: 0, Value: 1}}); err == nil {
		t.Error("out-of-range input accepted")
	}
	st2, _ := NewCIOQStepper(baseCfg(), &passPolicy{})
	if err := st2.StepSlot([]packet.Packet{{In: 0, Out: 0, Value: 0}}); err == nil {
		t.Error("zero value accepted")
	}
}

func TestStepperLifecycle(t *testing.T) {
	st, err := NewCIOQStepper(baseCfg(), &passPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Slot() != 0 {
		t.Errorf("fresh stepper at slot %d", st.Slot())
	}
	if err := st.StepSlot([]packet.Packet{{In: 0, Out: 0, Value: 1}}); err != nil {
		t.Fatal(err)
	}
	if st.Slot() != 1 {
		t.Errorf("after one step at slot %d", st.Slot())
	}
	if st.Benefit() != 1 {
		t.Errorf("benefit %d after first slot (packet should flow through)", st.Benefit())
	}
	if _, err := st.Finish(10); err != nil {
		t.Fatal(err)
	}
	if err := st.StepSlot(nil); err == nil {
		t.Error("step after finish accepted")
	}
	if _, err := st.Finish(1); err == nil {
		t.Error("double finish accepted")
	}
}

func TestStepperRejectsRecordSeries(t *testing.T) {
	cfg := baseCfg()
	cfg.RecordSeries = true
	if _, err := NewCIOQStepper(cfg, &passPolicy{}); err == nil {
		t.Error("RecordSeries stepper accepted")
	}
}

func TestAcceptPreemptMinAdmission(t *testing.T) {
	cfg := baseCfg()
	cfg.InputBuf = 2
	pol := &passPolicy{
		admit: func(sw *CIOQ, p packet.Packet) AdmitAction { return AcceptPreemptMin },
		sched: func(*CIOQ, int, int) []Transfer { return nil },
	}
	cfg.Slots = 1
	seq := seqOf(
		packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 5},
		packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 2},
		packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 7}, // preempts the 2 (min), even under FIFO
	)
	res, err := RunCIOQ(cfg, pol, seq)
	if err != nil {
		t.Fatal(err)
	}
	if res.M.PreemptedInput != 1 || res.M.PreemptedInputValue != 2 {
		t.Errorf("preempted %d (value %d), want the value-2 minimum",
			res.M.PreemptedInput, res.M.PreemptedInputValue)
	}
}

func TestTransferPreemptMinIfFull(t *testing.T) {
	// Output queue (FIFO) holds 3 then 8; a transfer of 5 with
	// PreemptMinIfFull must drop the 3 (minimum), not the 8 (tail).
	cfg := Config{Inputs: 2, Outputs: 1, InputBuf: 2, OutputBuf: 2,
		Speedup: 3, Validate: true, Slots: 1}
	seq := seqOf(
		packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 3},
		packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 8},
		packet.Packet{Arrival: 0, In: 1, Out: 0, Value: 5},
	)
	pol := &passPolicy{
		sched: func(sw *CIOQ, slot, cycle int) []Transfer {
			switch cycle {
			case 0, 1:
				if !sw.IQ[0][0].Empty() {
					return []Transfer{{In: 0, Out: 0}}
				}
			case 2:
				return []Transfer{{In: 1, Out: 0, PreemptMinIfFull: true}}
			}
			return nil
		},
	}
	res, err := RunCIOQ(cfg, pol, seq)
	if err != nil {
		t.Fatal(err)
	}
	if res.M.PreemptedOutputValue != 3 {
		t.Errorf("preempted value %d, want 3 (the minimum)", res.M.PreemptedOutputValue)
	}
	// FIFO transmission order: only slot 0 exists, sending the head (8);
	// the 5 remains queued when the truncated horizon ends.
	if res.M.Benefit != 8 {
		t.Errorf("benefit %d, want 8", res.M.Benefit)
	}
}
