// Package switchsim implements slot- and phase-accurate simulators for the
// three switch architectures the paper discusses:
//
//   - CIOQ switches (input virtual-output queues + output queues),
//   - buffered crossbar switches (additional per-crosspoint queues), and
//   - an ideal output-queued (OQ) switch used as a reference point.
//
// Each time slot consists of an arrival phase, ŝ scheduling cycles
// (ŝ = speedup; each cycle transfers a *matching* of packets), and a
// transmission phase that sends at most one packet per output port.
// Scheduling decisions are delegated to policies (package internal/core);
// the engine owns the queues, enforces the physical constraints (matching
// property, buffer capacities, phase ordering) and collects metrics, so a
// buggy policy produces an error instead of silently cheating.
//
// # The occupancy index
//
// Every switch maintains bitmask summaries of its queue state (package
// internal/bitset) that the engine updates in O(1) at each push, pop and
// preemption: per-input masks of non-empty virtual output queues (and
// their transpose), masks of non-full and non-empty output queues, and —
// on the buffered crossbar — per-input masks of non-full crosspoint
// queues plus per-output masks of occupied crosspoints. Policies derive
// their eligibility graphs from word-wise ANDs of these masks (e.g.
// VOQ.Row(i) & OutFree enumerates GM's edges for input i), so a
// scheduling cycle costs time proportional to the number of occupied
// queues rather than Inputs×Outputs, and the transmission phase visits
// only non-empty outputs. In validation mode the engine re-derives the
// index from the queues each slot and fails loudly on any divergence.
//
// The engine never retains a policy's []Transfer slice across calls, so
// policies return reusable scratch buffers; together with the
// epoch-stamped matching-validation marks this keeps the steady-state
// scheduling path allocation-free.
//
// # Event-driven simulation and the quiescent fast path
//
// By default the engines exploit the occupancy index's global counters to
// skip slots whose outcome is already determined; Config.Dense opts out
// and simulates every slot. Two shapes are recognized, both detected in
// O(1) from the incrementally-maintained packet counters:
//
//   - Empty: the switch holds no packets at the end of a slot. The
//     remaining slots until the next arrival (the input sequence is
//     sorted, so the lookup is O(1)) are skipped in a single jump.
//
//   - Quiescent: the switch still holds a backlog, but no scheduling
//     decision can move a packet — on a CIOQ switch all input-side
//     virtual output queues are empty, on a buffered crossbar the
//     crosspoint queues are empty as well. (These are the only
//     *persistent* no-eligible-edge states: a non-empty VOQ blocked on a
//     full output or crosspoint unblocks within one slot, because every
//     non-empty output transmits — and therefore un-fills — each slot.)
//     What remains is pure drain dynamics: each non-empty output queue
//     transmits one head packet per slot, independent of the policy. The
//     engine advances that drain in closed form — popping each departing
//     packet once and accumulating transmission, latency, series and
//     occupancy-integral metrics arithmetically — and jumps to the next
//     arrival without invoking the scheduler at all.
//
// Slot-dependent policy state is advanced across either jump through the
// IdleAdvancer hook; policies that do not implement it are simulated
// densely, so results are bit-identical to a dense run either way — the
// differential and fuzz suites in internal/core assert this for every
// shipped policy on both idle-heavy and backlogged-but-quiescent
// workloads. Sparse and bursty traces (the natural shape of adversarial
// sequences, whose lower-bound constructions alternate bursts with long
// draining gaps) simulate orders of magnitude faster this way.
//
// # Streaming arrivals
//
// RunCIOQStream and RunCrossbarStream run the same event-driven loop
// against a packet.ArrivalStream instead of a materialized Sequence: a
// streamCursor pulls arrivals on demand, validates ordering incrementally
// (with exactly the error texts Sequence.Validate would produce), and
// lets the idle/quiescent jumps peek at the next arrival epoch without
// consuming it. Memory is bounded by the stream's window plus switch
// state — independent of the horizon — and the resulting Metrics are
// deeply equal to the materialized engines' output, asserted by the
// differential, fuzz and allocation suites in internal/core. With
// Config.StreamMetrics set, latency quantiles come from a constant-space
// P² sketch (package internal/stats) instead of the per-packet
// histogram; all engines honor the flag identically so sketch-mode runs
// stay comparable across engines.
package switchsim
