package switchsim

import (
	"math/rand"
	"testing"

	"qswitch/internal/obs"
	"qswitch/internal/packet"
)

// TestProbesAddZeroAllocs is the zero-overhead pin for the engine probes:
// a full simulation run with probes installed must allocate exactly as
// much as one without. The probes accumulate in function-local integers
// and flush once per run into atomic counters, so nothing per-slot (or
// even per-run) may escape to the heap.
func TestProbesAddZeroAllocs(t *testing.T) {
	cfg := Config{Inputs: 8, Outputs: 8, InputBuf: 4, OutputBuf: 4, CrossBuf: 2, Speedup: 1}
	rng := rand.New(rand.NewSource(3))
	gen := packet.Bursty{OnLoad: 0.8, POnOff: 0.05, POffOn: 0.2, Values: packet.UniformValues{Hi: 9}}
	seq := gen.Generate(rng, cfg.Inputs, cfg.Outputs, 2000)

	measure := func(run func()) float64 {
		run() // warm up policy/result pools outside the measurement
		return testing.AllocsPerRun(20, run)
	}

	runs := map[string]func(){
		"cioq": func() {
			if _, err := RunCIOQ(cfg, &passPolicy{}, seq); err != nil {
				t.Fatal(err)
			}
		},
		"crossbar": func() {
			if _, err := RunCrossbar(cfg, &xbarPolicy{}, seq); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, run := range runs {
		SetProbes(nil)
		base := measure(run)

		reg := obs.NewRegistry()
		SetProbes(obs.NewEngineProbes(reg))
		probed := measure(run)
		SetProbes(nil)

		if probed > base {
			t.Errorf("%s: %v allocs/run with probes vs %v without — probes must add zero", name, probed, base)
		}
		if reg.Snapshot()[obs.MetricEngineRuns] == 0 {
			t.Errorf("%s: probes installed but never recorded", name)
		}
	}
}
