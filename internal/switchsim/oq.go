package switchsim

import (
	"fmt"

	"qswitch/internal/packet"
	"qswitch/internal/queue"
)

// RunOQ simulates an ideal output-queued switch: arriving packets are
// placed directly into their output queue (as if the fabric had infinite
// speedup), with greedy preemptive admission, and each output transmits its
// most valuable packet every slot.
//
// An OQ switch with the same output buffers dominates any CIOQ or crossbar
// schedule that has to squeeze packets through a matching-constrained
// fabric, so its benefit is a useful *online* reference point (the offline
// upper bound lives in internal/offline). Input and crossbar buffers do
// not exist in this architecture; to compare against a CIOQ switch at
// equal memory, set OutputBuf accordingly.
func RunOQ(cfg Config, seq packet.Sequence) (*Result, error) {
	if err := cfg.Check(false); err != nil {
		return nil, err
	}
	if err := seq.Validate(cfg.Inputs, cfg.Outputs); err != nil {
		return nil, fmt.Errorf("switchsim: bad sequence: %w", err)
	}
	slots := cfg.HorizonFor(seq)
	oq := make([]*queue.Queue, cfg.Outputs)
	for j := range oq {
		oq[j] = queue.New(cfg.OutputBuf, queue.ByValue)
	}
	var m Metrics
	if cfg.RecordLatency && cfg.StreamMetrics {
		m.EnableLatencySketch()
	}
	if cfg.RecordSeries {
		m.SlotBenefit = make([]int64, slots)
	}
	arrivals := seq.BySlot(slots)
	for slot := 0; slot < slots; slot++ {
		for _, p := range arrivals[slot] {
			m.Arrived++
			m.ArrivedValue += p.Value
			victim, preempted, accepted := oq[p.Out].PushPreempt(p)
			if !accepted {
				m.Rejected++
				m.RejectedValue += p.Value
				continue
			}
			m.Accepted++
			m.AcceptedValue += p.Value
			if preempted {
				m.PreemptedOutput++
				m.PreemptedOutputValue += victim.Value
			}
		}
		for j := range oq {
			if p, ok := oq[j].PopHead(); ok {
				m.Sent++
				m.Benefit += p.Value
				if cfg.RecordLatency {
					m.recordLatency(slot - p.Arrival)
				}
				if cfg.RecordSeries {
					m.SlotBenefit[slot] += p.Value
				}
			}
		}
		var occ int64
		for j := range oq {
			occ += int64(oq[j].Len())
		}
		m.OutputOccupSum += occ
		m.slotsSampled++
		if cfg.Validate {
			for j := range oq {
				if err := oq[j].CheckInvariants(); err != nil {
					return nil, fmt.Errorf("switchsim: OQ[%d] slot %d: %w", j, slot, err)
				}
			}
		}
	}
	if cfg.Validate {
		var residual int64
		for j := range oq {
			residual += int64(oq[j].Len())
		}
		if err := m.conservationCheck(residual); err != nil {
			return nil, err
		}
	}
	return &Result{Policy: "oq-greedy", Cfg: cfg, Slots: slots, M: m}, nil
}
