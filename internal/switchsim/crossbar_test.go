package switchsim

import (
	"strings"
	"testing"

	"qswitch/internal/packet"
	"qswitch/internal/queue"
)

// xbarPolicy is a configurable well-behaved crossbar policy.
type xbarPolicy struct {
	cfg    Config
	admit  func(sw *Crossbar, p packet.Packet) AdmitAction
	inSub  func(sw *Crossbar, slot, cycle int) []Transfer
	outSub func(sw *Crossbar, slot, cycle int) []Transfer
}

func (s *xbarPolicy) Name() string { return "test-xbar" }
func (s *xbarPolicy) Disciplines() (queue.Discipline, queue.Discipline, queue.Discipline) {
	return queue.FIFO, queue.FIFO, queue.FIFO
}
func (s *xbarPolicy) Reset(cfg Config) { s.cfg = cfg }
func (s *xbarPolicy) Admit(sw *Crossbar, p packet.Packet) AdmitAction {
	if s.admit != nil {
		return s.admit(sw, p)
	}
	if sw.IQ[p.In][p.Out].Full() {
		return Reject
	}
	return Accept
}
func (s *xbarPolicy) InputSubphase(sw *Crossbar, slot, cycle int) []Transfer {
	if s.inSub != nil {
		return s.inSub(sw, slot, cycle)
	}
	var out []Transfer
	for i := 0; i < s.cfg.Inputs; i++ {
		for j := 0; j < s.cfg.Outputs; j++ {
			if !sw.IQ[i][j].Empty() && !sw.XQ[i][j].Full() {
				out = append(out, Transfer{In: i, Out: j})
				break
			}
		}
	}
	return out
}
func (s *xbarPolicy) OutputSubphase(sw *Crossbar, slot, cycle int) []Transfer {
	if s.outSub != nil {
		return s.outSub(sw, slot, cycle)
	}
	var out []Transfer
	for j := 0; j < s.cfg.Outputs; j++ {
		if sw.OQ[j].Full() {
			continue
		}
		for i := 0; i < s.cfg.Inputs; i++ {
			if !sw.XQ[i][j].Empty() {
				out = append(out, Transfer{In: i, Out: j})
				break
			}
		}
	}
	return out
}

func TestCrossbarFlowThrough(t *testing.T) {
	cfg := baseCfg()
	seq := seqOf(
		packet.Packet{Arrival: 0, In: 0, Out: 1, Value: 1},
		packet.Packet{Arrival: 0, In: 1, Out: 0, Value: 1},
	)
	res, err := RunCrossbar(cfg, &xbarPolicy{}, seq)
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Sent != 2 {
		t.Errorf("sent %d, want 2", res.M.Sent)
	}
	if res.M.Transferred != 2 || res.M.TransferredCross != 2 {
		t.Errorf("transfers in=%d out=%d, want 2,2", res.M.Transferred, res.M.TransferredCross)
	}
}

func TestCrossbarPacketTraversesBothSubphasesInOneCycle(t *testing.T) {
	// A packet can move IQ -> XQ -> OQ within one cycle (input subphase
	// then output subphase), and be transmitted the same slot.
	cfg := Config{Inputs: 1, Outputs: 1, InputBuf: 1, OutputBuf: 1, CrossBuf: 1,
		Speedup: 1, Validate: true, RecordLatency: true}
	seq := seqOf(packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 1})
	res, err := RunCrossbar(cfg, &xbarPolicy{}, seq)
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Sent != 1 || res.M.LatencySum != 0 {
		t.Errorf("sent=%d latency=%d, want same-slot delivery", res.M.Sent, res.M.LatencySum)
	}
}

func TestCrossbarSubphaseConstraints(t *testing.T) {
	cfg := baseCfg()
	seq := seqOf(
		packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 1},
		packet.Packet{Arrival: 0, In: 0, Out: 1, Value: 1},
		packet.Packet{Arrival: 0, In: 1, Out: 0, Value: 1},
	)
	t.Run("two input transfers from one port", func(t *testing.T) {
		bad := &xbarPolicy{inSub: func(sw *Crossbar, slot, cycle int) []Transfer {
			if slot == 0 {
				return []Transfer{{In: 0, Out: 0}, {In: 0, Out: 1}}
			}
			return nil
		}}
		_, err := RunCrossbar(cfg, bad, seq)
		if err == nil || !strings.Contains(err.Error(), "input") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("two output transfers to one port", func(t *testing.T) {
		bad := &xbarPolicy{outSub: func(sw *Crossbar, slot, cycle int) []Transfer {
			if slot == 1 {
				return []Transfer{{In: 0, Out: 0}, {In: 1, Out: 0}}
			}
			return nil
		}}
		_, err := RunCrossbar(cfg, bad, seq)
		if err == nil || !strings.Contains(err.Error(), "output") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("transfer from empty crosspoint", func(t *testing.T) {
		bad := &xbarPolicy{outSub: func(sw *Crossbar, slot, cycle int) []Transfer {
			return []Transfer{{In: 1, Out: 1}}
		}}
		_, err := RunCrossbar(cfg, bad, seq)
		if err == nil || !strings.Contains(err.Error(), "empty") {
			t.Errorf("err = %v", err)
		}
	})
}

func TestCrossbarDistinctOutputsViaSameInputDifferentCycles(t *testing.T) {
	// Input subphase allows only one transfer per input per cycle; with
	// speedup 2 both packets of one input move within a slot.
	cfg := baseCfg()
	cfg.Speedup = 2
	seq := seqOf(
		packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 1},
		packet.Packet{Arrival: 0, In: 0, Out: 1, Value: 1},
	)
	res, err := RunCrossbar(cfg, &xbarPolicy{}, seq)
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Sent != 2 {
		t.Errorf("sent %d, want 2", res.M.Sent)
	}
	// Both must have been transmitted in slot 0 (latency 0) because both
	// subphases ran twice.
	if res.Slots < 1 || res.M.Benefit != 2 {
		t.Errorf("unexpected result %+v", res.M)
	}
}

func TestCrossbarConservation(t *testing.T) {
	cfg := baseCfg()
	cfg.InputBuf, cfg.CrossBuf, cfg.OutputBuf = 1, 1, 1
	var ps []packet.Packet
	for k := 0; k < 12; k++ {
		ps = append(ps, packet.Packet{Arrival: k % 3, In: k % 2, Out: 0, Value: 1})
	}
	res, err := RunCrossbar(cfg, &xbarPolicy{}, seqOf(ps...))
	if err != nil {
		t.Fatal(err) // Validate mode runs the conservation check internally
	}
	if res.M.Accepted != res.M.Sent {
		t.Errorf("non-preemptive crossbar run lost accepted packets: acc=%d sent=%d",
			res.M.Accepted, res.M.Sent)
	}
}
