package switchsim

import (
	"fmt"
	"math/bits"

	"qswitch/internal/bitset"
	"qswitch/internal/packet"
	"qswitch/internal/queue"
)

// CrossbarPolicy is the decision interface for buffered crossbar switches.
// Each scheduling cycle is split into an input subphase (moves from input
// queues to crosspoint queues, at most one per input port) and an output
// subphase (moves from crosspoint queues to output queues, at most one per
// output port), per the paper's model (§1.3).
type CrossbarPolicy interface {
	// Name identifies the policy in results.
	Name() string
	// Disciplines returns the queue orderings for input, crosspoint and
	// output queues.
	Disciplines() (input, cross, output queue.Discipline)
	// Reset prepares the policy for a fresh run.
	Reset(cfg Config)
	// Admit decides the fate of an arriving packet.
	Admit(sw *Crossbar, p packet.Packet) AdmitAction
	// InputSubphase returns transfers Q_{In,Out} -> C_{In,Out}; at most
	// one per input port (Out may repeat across different inputs). The
	// engine consumes the slice before the next policy call, so a
	// reusable scratch buffer may be returned.
	InputSubphase(sw *Crossbar, slot, cycle int) []Transfer
	// OutputSubphase returns transfers C_{In,Out} -> Q_Out; at most one
	// per output port.
	OutputSubphase(sw *Crossbar, slot, cycle int) []Transfer
}

// Crossbar is the state of a buffered crossbar switch.
//
// Like CIOQ it maintains an incrementally-updated occupancy index over
// its three queue layers, so subphase policies touch only occupied
// queues. Policies must treat the index as read-only.
type Crossbar struct {
	Cfg Config
	// IQ[i][j]: input queue at port i for output j.
	IQ [][]*queue.Queue
	// XQ[i][j]: crosspoint queue C_ij.
	XQ [][]*queue.Queue
	// OQ[j]: output queue at port j.
	OQ []*queue.Queue
	M  Metrics

	// VOQ.Row(i) is the mask over outputs j with IQ[i][j] non-empty.
	VOQ bitset.Matrix
	// XFree.Row(i) is the mask over outputs j with XQ[i][j] not full.
	XFree bitset.Matrix
	// XBusyByOut.Row(j) is the mask over inputs i with XQ[i][j] non-empty.
	XBusyByOut bitset.Matrix
	// OutFree is the mask over outputs j with OQ[j] not full.
	OutFree bitset.Mask
	// OutBusy is the mask over outputs j with OQ[j] non-empty.
	OutBusy bitset.Mask

	inCount    int64 // packets across all input queues
	crossCount int64 // packets across all crosspoint queues
	outCount   int64 // packets across all output queues

	usedIn, usedOut []int
	epochIn         int
	epochOut        int
}

// NewCrossbar builds an empty buffered crossbar switch.
func NewCrossbar(cfg Config, inDisc, crossDisc, outDisc queue.Discipline) *Crossbar {
	sw := &Crossbar{Cfg: cfg}
	n, m := cfg.Inputs, cfg.Outputs
	iqs := queue.NewBatch(n*m, cfg.InputBuf, inDisc)
	xqs := queue.NewBatch(n*m, cfg.CrossBuf, crossDisc)
	ptrs := make([]*queue.Queue, 2*n*m)
	for x := 0; x < n*m; x++ {
		ptrs[x] = &iqs[x]
		ptrs[n*m+x] = &xqs[x]
	}
	sw.IQ = make([][]*queue.Queue, n)
	sw.XQ = make([][]*queue.Queue, n)
	for i := 0; i < n; i++ {
		sw.IQ[i] = ptrs[i*m : (i+1)*m : (i+1)*m]
		sw.XQ[i] = ptrs[n*m+i*m : n*m+(i+1)*m : n*m+(i+1)*m]
	}
	oqs := queue.NewBatch(m, cfg.OutputBuf, outDisc)
	sw.OQ = make([]*queue.Queue, m)
	for j := range sw.OQ {
		sw.OQ[j] = &oqs[j]
	}
	sw.VOQ = bitset.NewMatrix(cfg.Inputs, cfg.Outputs)
	sw.XFree = bitset.NewMatrix(cfg.Inputs, cfg.Outputs)
	for i := 0; i < cfg.Inputs; i++ {
		sw.XFree.Row(i).Fill(cfg.Outputs)
	}
	sw.XBusyByOut = bitset.NewMatrix(cfg.Outputs, cfg.Inputs)
	sw.OutFree = bitset.New(cfg.Outputs)
	sw.OutFree.Fill(cfg.Outputs)
	sw.OutBusy = bitset.New(cfg.Outputs)
	sw.usedIn = make([]int, cfg.Inputs)
	sw.usedOut = make([]int, cfg.Outputs)
	return sw
}

// QueuedPackets returns the number of packets currently stored anywhere.
func (sw *Crossbar) QueuedPackets() int64 { return sw.inCount + sw.crossCount + sw.outCount }

// InputQueued returns the number of packets currently stored in the input
// virtual output queues.
func (sw *Crossbar) InputQueued() int64 { return sw.inCount }

// CrossQueued returns the number of packets currently stored in the
// crosspoint queues. The crossbar is quiescent — no subphase can move a
// packet — exactly when both InputQueued and CrossQueued are zero; while
// crosspoints hold packets the output subphase still makes policy-specific
// choices, so those slots are always simulated densely.
func (sw *Crossbar) CrossQueued() int64 { return sw.crossCount }

// OutputBacklog returns the length of the longest output queue — the
// number of drain-only slots needed to empty the switch once the input
// and crosspoint layers are empty and no further arrivals occur.
func (sw *Crossbar) OutputBacklog() int {
	backlog := 0
	for _, q := range sw.OQ {
		backlog = max(backlog, q.Len())
	}
	return backlog
}

func (sw *Crossbar) checkInvariants() error {
	for i := range sw.IQ {
		for j := range sw.IQ[i] {
			if err := sw.IQ[i][j].CheckInvariants(); err != nil {
				return fmt.Errorf("IQ[%d][%d]: %w", i, j, err)
			}
			if err := sw.XQ[i][j].CheckInvariants(); err != nil {
				return fmt.Errorf("XQ[%d][%d]: %w", i, j, err)
			}
		}
	}
	for j := range sw.OQ {
		if err := sw.OQ[j].CheckInvariants(); err != nil {
			return fmt.Errorf("OQ[%d]: %w", j, err)
		}
	}
	return sw.checkIndex()
}

// checkIndex verifies the occupancy bitmasks and counters against the
// actual queue contents (full rescan; validation mode only).
func (sw *Crossbar) checkIndex() error {
	var in, cross, out int64
	for i := range sw.IQ {
		for j := range sw.IQ[i] {
			in += int64(sw.IQ[i][j].Len())
			cross += int64(sw.XQ[i][j].Len())
			if got, want := sw.VOQ.Row(i).Test(j), !sw.IQ[i][j].Empty(); got != want {
				return fmt.Errorf("index: VOQ[%d] bit %d = %v, queue empty=%v", i, j, got, !want)
			}
			if got, want := sw.XFree.Row(i).Test(j), !sw.XQ[i][j].Full(); got != want {
				return fmt.Errorf("index: XFree[%d] bit %d = %v, queue full=%v", i, j, got, !want)
			}
			if got, want := sw.XBusyByOut.Row(j).Test(i), !sw.XQ[i][j].Empty(); got != want {
				return fmt.Errorf("index: XBusyByOut[%d] bit %d = %v, queue empty=%v", j, i, got, !want)
			}
		}
	}
	for j := range sw.OQ {
		out += int64(sw.OQ[j].Len())
		if got, want := sw.OutFree.Test(j), !sw.OQ[j].Full(); got != want {
			return fmt.Errorf("index: OutFree bit %d = %v, queue full=%v", j, got, !want)
		}
		if got, want := sw.OutBusy.Test(j), !sw.OQ[j].Empty(); got != want {
			return fmt.Errorf("index: OutBusy bit %d = %v, queue empty=%v", j, got, !want)
		}
	}
	if in != sw.inCount || cross != sw.crossCount || out != sw.outCount {
		return fmt.Errorf("index: counters (in=%d,cross=%d,out=%d) but queues hold (%d,%d,%d)",
			sw.inCount, sw.crossCount, sw.outCount, in, cross, out)
	}
	return nil
}

func (sw *Crossbar) admit(p packet.Packet, action AdmitAction) error {
	sw.M.Arrived++
	sw.M.ArrivedValue += p.Value
	q := sw.IQ[p.In][p.Out]
	switch action {
	case Reject:
		sw.M.Rejected++
		sw.M.RejectedValue += p.Value
		return nil
	case Accept:
		if err := q.Push(p); err != nil {
			return fmt.Errorf("switchsim: policy accepted %v into full IQ[%d][%d]", p, p.In, p.Out)
		}
		sw.VOQ.Row(p.In).Set(p.Out)
		sw.inCount++
		sw.M.Accepted++
		sw.M.AcceptedValue += p.Value
		return nil
	case AcceptPreempt, AcceptPreemptMin:
		var victim packet.Packet
		var preempted, accepted bool
		if action == AcceptPreemptMin {
			victim, preempted, accepted = q.PushPreemptMin(p)
		} else {
			victim, preempted, accepted = q.PushPreempt(p)
		}
		if !accepted {
			sw.M.Rejected++
			sw.M.RejectedValue += p.Value
			return nil
		}
		sw.M.Accepted++
		sw.M.AcceptedValue += p.Value
		if preempted {
			// Replacement: occupancy unchanged.
			sw.M.PreemptedInput++
			sw.M.PreemptedInputValue += victim.Value
		} else {
			sw.VOQ.Row(p.In).Set(p.Out)
			sw.inCount++
		}
		return nil
	default:
		return fmt.Errorf("switchsim: unknown admit action %d", action)
	}
}

// executeInputSubphase moves head packets Q_ij -> C_ij with at most one
// transfer per input port.
func (sw *Crossbar) executeInputSubphase(ts []Transfer) error {
	sw.epochIn++
	for _, t := range ts {
		if t.In < 0 || t.In >= sw.Cfg.Inputs || t.Out < 0 || t.Out >= sw.Cfg.Outputs {
			return fmt.Errorf("switchsim: input-subphase transfer (%d->%d) out of range", t.In, t.Out)
		}
		if sw.usedIn[t.In] == sw.epochIn {
			return fmt.Errorf("switchsim: two input-subphase transfers from input %d", t.In)
		}
		sw.usedIn[t.In] = sw.epochIn
	}
	for _, t := range ts {
		src := sw.IQ[t.In][t.Out]
		dst := sw.XQ[t.In][t.Out]
		p, ok := src.PopHead()
		if !ok {
			return fmt.Errorf("switchsim: input-subphase transfer from empty IQ[%d][%d]", t.In, t.Out)
		}
		if src.Empty() {
			sw.VOQ.Row(t.In).Clear(t.Out)
		}
		sw.inCount--
		if (t.PreemptIfFull || t.PreemptMinIfFull) && dst.Full() {
			var victim packet.Packet
			var preempted, accepted bool
			if t.PreemptMinIfFull {
				victim, preempted, accepted = dst.PushPreemptMin(p)
			} else {
				victim, preempted, accepted = dst.PushPreempt(p)
			}
			if !accepted {
				return fmt.Errorf("switchsim: transfer of %v into C[%d][%d] rejected", p, t.In, t.Out)
			}
			if preempted {
				// Replacement: the crosspoint stays full and non-empty.
				sw.M.PreemptedCross++
				sw.M.PreemptedCrossValue += victim.Value
			}
		} else if err := dst.Push(p); err != nil {
			return fmt.Errorf("switchsim: transfer of %v into full C[%d][%d]", p, t.In, t.Out)
		} else {
			sw.XBusyByOut.Row(t.Out).Set(t.In)
			if dst.Full() {
				sw.XFree.Row(t.In).Clear(t.Out)
			}
			sw.crossCount++
		}
		sw.M.Transferred++
	}
	return nil
}

// executeOutputSubphase moves head packets C_ij -> Q_j with at most one
// transfer per output port.
func (sw *Crossbar) executeOutputSubphase(ts []Transfer) error {
	sw.epochOut++
	for _, t := range ts {
		if t.In < 0 || t.In >= sw.Cfg.Inputs || t.Out < 0 || t.Out >= sw.Cfg.Outputs {
			return fmt.Errorf("switchsim: output-subphase transfer (%d->%d) out of range", t.In, t.Out)
		}
		if sw.usedOut[t.Out] == sw.epochOut {
			return fmt.Errorf("switchsim: two output-subphase transfers to output %d", t.Out)
		}
		sw.usedOut[t.Out] = sw.epochOut
	}
	for _, t := range ts {
		src := sw.XQ[t.In][t.Out]
		dst := sw.OQ[t.Out]
		p, ok := src.PopHead()
		if !ok {
			return fmt.Errorf("switchsim: output-subphase transfer from empty C[%d][%d]", t.In, t.Out)
		}
		if src.Empty() {
			sw.XBusyByOut.Row(t.Out).Clear(t.In)
		}
		sw.XFree.Row(t.In).Set(t.Out)
		sw.crossCount--
		if (t.PreemptIfFull || t.PreemptMinIfFull) && dst.Full() {
			var victim packet.Packet
			var preempted, accepted bool
			if t.PreemptMinIfFull {
				victim, preempted, accepted = dst.PushPreemptMin(p)
			} else {
				victim, preempted, accepted = dst.PushPreempt(p)
			}
			if !accepted {
				return fmt.Errorf("switchsim: transfer of %v into OQ[%d] rejected", p, t.Out)
			}
			if preempted {
				sw.M.PreemptedOutput++
				sw.M.PreemptedOutputValue += victim.Value
			}
		} else if err := dst.Push(p); err != nil {
			return fmt.Errorf("switchsim: transfer of %v into full OQ[%d]", p, t.Out)
		} else {
			sw.OutBusy.Set(t.Out)
			if dst.Full() {
				sw.OutFree.Clear(t.Out)
			}
			sw.outCount++
		}
		sw.M.TransferredCross++
	}
	return nil
}

func (sw *Crossbar) transmit(slot int) {
	for w, word := range sw.OutBusy {
		for word != 0 {
			j := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			p, _ := sw.OQ[j].PopHead()
			sw.outCount--
			sw.OutFree.Set(j)
			if sw.OQ[j].Empty() {
				sw.OutBusy.Clear(j)
			}
			sw.M.Sent++
			sw.M.Benefit += p.Value
			if sw.Cfg.RecordLatency {
				sw.M.recordLatency(slot - p.Arrival)
			}
			if sw.Cfg.RecordSeries {
				sw.M.SlotBenefit[slot] += p.Value
			}
		}
	}
}

func (sw *Crossbar) sampleOccupancy() {
	sw.M.InputOccupSum += sw.inCount
	sw.M.CrossOccupSum += sw.crossCount
	sw.M.OutputOccupSum += sw.outCount
	sw.M.slotsSampled++
}

// quiesce advances the crossbar across k arrival-free slots during which
// neither subphase can produce a transfer (inCount == crossCount == 0), in
// closed form; see (*CIOQ).quiesce for the accounting. Crosspoint slots
// with a backlog are never jumped: which crosspoint an output pulls from
// is a policy decision, so those slots run densely until the crosspoint
// layer empties.
func (sw *Crossbar) quiesce(slot, k int) {
	for w, word := range sw.OutBusy {
		for word != 0 {
			j := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			q := sw.OQ[j]
			l := q.Len()
			d := l
			if k < l {
				d = k
			}
			for x := 1; x <= d; x++ {
				p, _ := q.PopHead()
				sw.M.Sent++
				sw.M.Benefit += p.Value
				if sw.Cfg.RecordLatency {
					sw.M.recordLatency(slot + x - p.Arrival)
				}
				if sw.Cfg.RecordSeries {
					sw.M.SlotBenefit[slot+x] += p.Value
				}
			}
			sw.outCount -= int64(d)
			sw.M.OutputOccupSum += int64(d)*int64(l) - int64(d)*int64(d+1)/2
			if q.Empty() {
				sw.OutBusy.Clear(j)
			}
		}
	}
	sw.M.slotsSampled += int64(k)
}

// RunCrossbar simulates a crossbar policy on the sequence.
func RunCrossbar(cfg Config, pol CrossbarPolicy, seq packet.Sequence) (*Result, error) {
	if err := cfg.Check(true); err != nil {
		return nil, err
	}
	if err := seq.Validate(cfg.Inputs, cfg.Outputs); err != nil {
		return nil, fmt.Errorf("switchsim: bad sequence: %w", err)
	}
	slots := cfg.HorizonFor(seq)
	inDisc, crossDisc, outDisc := pol.Disciplines()
	sw := NewCrossbar(cfg, inDisc, crossDisc, outDisc)
	if cfg.RecordLatency && cfg.StreamMetrics {
		sw.M.EnableLatencySketch()
	}
	if cfg.RecordSeries {
		sw.M.SlotBenefit = make([]int64, slots)
	}
	pol.Reset(cfg)
	var idle IdleAdvancer
	if !cfg.Dense {
		idle, _ = pol.(IdleAdvancer)
	}
	var probeJumped, probeJumps int64
	next := 0
	for slot := 0; slot < slots; slot++ {
		for next < len(seq) && seq[next].Arrival == slot {
			p := seq[next]
			next++
			if err := sw.admit(p, pol.Admit(sw, p)); err != nil {
				return nil, err
			}
		}
		for cycle := 0; cycle < cfg.Speedup; cycle++ {
			if err := sw.executeInputSubphase(pol.InputSubphase(sw, slot, cycle)); err != nil {
				return nil, err
			}
			if err := sw.executeOutputSubphase(pol.OutputSubphase(sw, slot, cycle)); err != nil {
				return nil, err
			}
		}
		sw.transmit(slot)
		sw.sampleOccupancy()
		if cfg.Validate {
			if err := sw.checkInvariants(); err != nil {
				return nil, fmt.Errorf("switchsim: slot %d: %w", slot, err)
			}
		}
		// Quiescent fast path: with the input and crosspoint layers empty
		// no subphase can produce a transfer, so the stretch until the
		// next arrival is pure output drain (or fully idle) and is
		// advanced in closed form.
		if idle != nil && sw.inCount == 0 && sw.crossCount == 0 {
			if jump := idleJump(seq, next, slot, slots); jump > 0 {
				sw.quiesce(slot, jump)
				idle.IdleAdvance(jump)
				slot += jump
				probeJumps++
				probeJumped += int64(jump)
				if cfg.Validate {
					if err := sw.checkInvariants(); err != nil {
						return nil, fmt.Errorf("switchsim: after quiescent jump to slot %d: %w", slot, err)
					}
				}
			}
		}
	}
	if cfg.Validate {
		if err := sw.M.conservationCheck(sw.QueuedPackets()); err != nil {
			return nil, err
		}
	}
	engineProbes.Load().RecordRun(int64(slots), probeJumped, probeJumps)
	return &Result{Policy: pol.Name(), Cfg: cfg, Slots: slots, M: sw.M}, nil
}
