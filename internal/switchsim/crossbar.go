package switchsim

import (
	"fmt"

	"qswitch/internal/packet"
	"qswitch/internal/queue"
)

// CrossbarPolicy is the decision interface for buffered crossbar switches.
// Each scheduling cycle is split into an input subphase (moves from input
// queues to crosspoint queues, at most one per input port) and an output
// subphase (moves from crosspoint queues to output queues, at most one per
// output port), per the paper's model (§1.3).
type CrossbarPolicy interface {
	// Name identifies the policy in results.
	Name() string
	// Disciplines returns the queue orderings for input, crosspoint and
	// output queues.
	Disciplines() (input, cross, output queue.Discipline)
	// Reset prepares the policy for a fresh run.
	Reset(cfg Config)
	// Admit decides the fate of an arriving packet.
	Admit(sw *Crossbar, p packet.Packet) AdmitAction
	// InputSubphase returns transfers Q_{In,Out} -> C_{In,Out}; at most
	// one per input port (Out may repeat across different inputs).
	InputSubphase(sw *Crossbar, slot, cycle int) []Transfer
	// OutputSubphase returns transfers C_{In,Out} -> Q_Out; at most one
	// per output port.
	OutputSubphase(sw *Crossbar, slot, cycle int) []Transfer
}

// Crossbar is the state of a buffered crossbar switch.
type Crossbar struct {
	Cfg Config
	// IQ[i][j]: input queue at port i for output j.
	IQ [][]*queue.Queue
	// XQ[i][j]: crosspoint queue C_ij.
	XQ [][]*queue.Queue
	// OQ[j]: output queue at port j.
	OQ []*queue.Queue
	M  Metrics
}

// NewCrossbar builds an empty buffered crossbar switch.
func NewCrossbar(cfg Config, inDisc, crossDisc, outDisc queue.Discipline) *Crossbar {
	sw := &Crossbar{Cfg: cfg}
	sw.IQ = make([][]*queue.Queue, cfg.Inputs)
	sw.XQ = make([][]*queue.Queue, cfg.Inputs)
	for i := 0; i < cfg.Inputs; i++ {
		sw.IQ[i] = make([]*queue.Queue, cfg.Outputs)
		sw.XQ[i] = make([]*queue.Queue, cfg.Outputs)
		for j := 0; j < cfg.Outputs; j++ {
			sw.IQ[i][j] = queue.New(cfg.InputBuf, inDisc)
			sw.XQ[i][j] = queue.New(cfg.CrossBuf, crossDisc)
		}
	}
	sw.OQ = make([]*queue.Queue, cfg.Outputs)
	for j := range sw.OQ {
		sw.OQ[j] = queue.New(cfg.OutputBuf, outDisc)
	}
	return sw
}

// QueuedPackets returns the number of packets currently stored anywhere.
func (sw *Crossbar) QueuedPackets() int64 {
	var n int64
	for i := range sw.IQ {
		for j := range sw.IQ[i] {
			n += int64(sw.IQ[i][j].Len() + sw.XQ[i][j].Len())
		}
	}
	for j := range sw.OQ {
		n += int64(sw.OQ[j].Len())
	}
	return n
}

func (sw *Crossbar) checkInvariants() error {
	for i := range sw.IQ {
		for j := range sw.IQ[i] {
			if err := sw.IQ[i][j].CheckInvariants(); err != nil {
				return fmt.Errorf("IQ[%d][%d]: %w", i, j, err)
			}
			if err := sw.XQ[i][j].CheckInvariants(); err != nil {
				return fmt.Errorf("XQ[%d][%d]: %w", i, j, err)
			}
		}
	}
	for j := range sw.OQ {
		if err := sw.OQ[j].CheckInvariants(); err != nil {
			return fmt.Errorf("OQ[%d]: %w", j, err)
		}
	}
	return nil
}

func (sw *Crossbar) admit(p packet.Packet, action AdmitAction) error {
	sw.M.Arrived++
	sw.M.ArrivedValue += p.Value
	q := sw.IQ[p.In][p.Out]
	switch action {
	case Reject:
		sw.M.Rejected++
		sw.M.RejectedValue += p.Value
		return nil
	case Accept:
		if err := q.Push(p); err != nil {
			return fmt.Errorf("switchsim: policy accepted %v into full IQ[%d][%d]", p, p.In, p.Out)
		}
		sw.M.Accepted++
		sw.M.AcceptedValue += p.Value
		return nil
	case AcceptPreempt, AcceptPreemptMin:
		var victim packet.Packet
		var preempted, accepted bool
		if action == AcceptPreemptMin {
			victim, preempted, accepted = q.PushPreemptMin(p)
		} else {
			victim, preempted, accepted = q.PushPreempt(p)
		}
		if !accepted {
			sw.M.Rejected++
			sw.M.RejectedValue += p.Value
			return nil
		}
		sw.M.Accepted++
		sw.M.AcceptedValue += p.Value
		if preempted {
			sw.M.PreemptedInput++
			sw.M.PreemptedInputValue += victim.Value
		}
		return nil
	default:
		return fmt.Errorf("switchsim: unknown admit action %d", action)
	}
}

// executeInputSubphase moves head packets Q_ij -> C_ij with at most one
// transfer per input port.
func (sw *Crossbar) executeInputSubphase(ts []Transfer) error {
	usedIn := make([]bool, sw.Cfg.Inputs)
	for _, t := range ts {
		if t.In < 0 || t.In >= sw.Cfg.Inputs || t.Out < 0 || t.Out >= sw.Cfg.Outputs {
			return fmt.Errorf("switchsim: input-subphase transfer (%d->%d) out of range", t.In, t.Out)
		}
		if usedIn[t.In] {
			return fmt.Errorf("switchsim: two input-subphase transfers from input %d", t.In)
		}
		usedIn[t.In] = true
	}
	for _, t := range ts {
		src := sw.IQ[t.In][t.Out]
		dst := sw.XQ[t.In][t.Out]
		p, ok := src.PopHead()
		if !ok {
			return fmt.Errorf("switchsim: input-subphase transfer from empty IQ[%d][%d]", t.In, t.Out)
		}
		if (t.PreemptIfFull || t.PreemptMinIfFull) && dst.Full() {
			var victim packet.Packet
			var preempted, accepted bool
			if t.PreemptMinIfFull {
				victim, preempted, accepted = dst.PushPreemptMin(p)
			} else {
				victim, preempted, accepted = dst.PushPreempt(p)
			}
			if !accepted {
				return fmt.Errorf("switchsim: transfer of %v into C[%d][%d] rejected", p, t.In, t.Out)
			}
			if preempted {
				sw.M.PreemptedCross++
				sw.M.PreemptedCrossValue += victim.Value
			}
		} else if err := dst.Push(p); err != nil {
			return fmt.Errorf("switchsim: transfer of %v into full C[%d][%d]", p, t.In, t.Out)
		}
		sw.M.Transferred++
	}
	return nil
}

// executeOutputSubphase moves head packets C_ij -> Q_j with at most one
// transfer per output port.
func (sw *Crossbar) executeOutputSubphase(ts []Transfer) error {
	usedOut := make([]bool, sw.Cfg.Outputs)
	for _, t := range ts {
		if t.In < 0 || t.In >= sw.Cfg.Inputs || t.Out < 0 || t.Out >= sw.Cfg.Outputs {
			return fmt.Errorf("switchsim: output-subphase transfer (%d->%d) out of range", t.In, t.Out)
		}
		if usedOut[t.Out] {
			return fmt.Errorf("switchsim: two output-subphase transfers to output %d", t.Out)
		}
		usedOut[t.Out] = true
	}
	for _, t := range ts {
		src := sw.XQ[t.In][t.Out]
		dst := sw.OQ[t.Out]
		p, ok := src.PopHead()
		if !ok {
			return fmt.Errorf("switchsim: output-subphase transfer from empty C[%d][%d]", t.In, t.Out)
		}
		if (t.PreemptIfFull || t.PreemptMinIfFull) && dst.Full() {
			var victim packet.Packet
			var preempted, accepted bool
			if t.PreemptMinIfFull {
				victim, preempted, accepted = dst.PushPreemptMin(p)
			} else {
				victim, preempted, accepted = dst.PushPreempt(p)
			}
			if !accepted {
				return fmt.Errorf("switchsim: transfer of %v into OQ[%d] rejected", p, t.Out)
			}
			if preempted {
				sw.M.PreemptedOutput++
				sw.M.PreemptedOutputValue += victim.Value
			}
		} else if err := dst.Push(p); err != nil {
			return fmt.Errorf("switchsim: transfer of %v into full OQ[%d]", p, t.Out)
		}
		sw.M.TransferredCross++
	}
	return nil
}

func (sw *Crossbar) transmit(slot int) {
	for j := range sw.OQ {
		if p, ok := sw.OQ[j].PopHead(); ok {
			sw.M.Sent++
			sw.M.Benefit += p.Value
			if sw.Cfg.RecordLatency {
				sw.M.recordLatency(slot - p.Arrival)
			}
			if sw.Cfg.RecordSeries {
				sw.M.SlotBenefit[slot] += p.Value
			}
		}
	}
}

func (sw *Crossbar) sampleOccupancy() {
	var in, cross, out int64
	for i := range sw.IQ {
		for j := range sw.IQ[i] {
			in += int64(sw.IQ[i][j].Len())
			cross += int64(sw.XQ[i][j].Len())
		}
	}
	for j := range sw.OQ {
		out += int64(sw.OQ[j].Len())
	}
	sw.M.InputOccupSum += in
	sw.M.CrossOccupSum += cross
	sw.M.OutputOccupSum += out
	sw.M.slotsSampled++
}

// RunCrossbar simulates a crossbar policy on the sequence.
func RunCrossbar(cfg Config, pol CrossbarPolicy, seq packet.Sequence) (*Result, error) {
	if err := cfg.Check(true); err != nil {
		return nil, err
	}
	if err := seq.Validate(cfg.Inputs, cfg.Outputs); err != nil {
		return nil, fmt.Errorf("switchsim: bad sequence: %w", err)
	}
	slots := cfg.HorizonFor(seq)
	inDisc, crossDisc, outDisc := pol.Disciplines()
	sw := NewCrossbar(cfg, inDisc, crossDisc, outDisc)
	if cfg.RecordSeries {
		sw.M.SlotBenefit = make([]int64, slots)
	}
	pol.Reset(cfg)
	arrivals := seq.BySlot(slots)
	for slot := 0; slot < slots; slot++ {
		for _, p := range arrivals[slot] {
			if err := sw.admit(p, pol.Admit(sw, p)); err != nil {
				return nil, err
			}
		}
		for cycle := 0; cycle < cfg.Speedup; cycle++ {
			if err := sw.executeInputSubphase(pol.InputSubphase(sw, slot, cycle)); err != nil {
				return nil, err
			}
			if err := sw.executeOutputSubphase(pol.OutputSubphase(sw, slot, cycle)); err != nil {
				return nil, err
			}
		}
		sw.transmit(slot)
		sw.sampleOccupancy()
		if cfg.Validate {
			if err := sw.checkInvariants(); err != nil {
				return nil, fmt.Errorf("switchsim: slot %d: %w", slot, err)
			}
		}
	}
	if cfg.Validate {
		if err := sw.M.conservationCheck(sw.QueuedPackets()); err != nil {
			return nil, err
		}
	}
	return &Result{Policy: pol.Name(), Cfg: cfg, Slots: slots, M: sw.M}, nil
}
