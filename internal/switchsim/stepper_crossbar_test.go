package switchsim

import (
	"testing"

	"qswitch/internal/packet"
)

func TestCrossbarStepperMatchesBatchRun(t *testing.T) {
	cfg := baseCfg()
	seq := seqOf(
		packet.Packet{Arrival: 0, In: 0, Out: 1, Value: 1},
		packet.Packet{Arrival: 0, In: 1, Out: 0, Value: 1},
		packet.Packet{Arrival: 2, In: 0, Out: 0, Value: 1},
	)
	batch, err := RunCrossbar(cfg, &xbarPolicy{}, seq)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewCrossbarStepper(cfg, &xbarPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	by := seq.BySlot(3)
	for slot := 0; slot < 3; slot++ {
		var arr []packet.Packet
		for _, p := range by[slot] {
			arr = append(arr, packet.Packet{In: p.In, Out: p.Out, Value: p.Value})
		}
		if err := st.StepSlot(arr); err != nil {
			t.Fatal(err)
		}
	}
	res, err := st.Finish(20)
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Benefit != batch.M.Benefit || res.M.Sent != batch.M.Sent {
		t.Errorf("stepper sent=%d benefit=%d, batch sent=%d benefit=%d",
			res.M.Sent, res.M.Benefit, batch.M.Sent, batch.M.Benefit)
	}
}

func TestCrossbarStepperLifecycle(t *testing.T) {
	st, err := NewCrossbarStepper(baseCfg(), &xbarPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.StepSlot([]packet.Packet{{In: 0, Out: 0, Value: 1}}); err != nil {
		t.Fatal(err)
	}
	if st.Slot() != 1 || st.Benefit() != 1 {
		t.Errorf("slot=%d benefit=%d after one step", st.Slot(), st.Benefit())
	}
	if st.Switch() == nil {
		t.Error("no switch exposed")
	}
	if _, err := st.Finish(5); err != nil {
		t.Fatal(err)
	}
	if err := st.StepSlot(nil); err == nil {
		t.Error("step after finish accepted")
	}
}

func TestCrossbarStepperValidation(t *testing.T) {
	st, err := NewCrossbarStepper(baseCfg(), &xbarPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.StepSlot([]packet.Packet{{In: 5, Out: 0, Value: 1}}); err == nil {
		t.Error("out-of-range arrival accepted")
	}
	cfg := baseCfg()
	cfg.RecordSeries = true
	if _, err := NewCrossbarStepper(cfg, &xbarPolicy{}); err == nil {
		t.Error("RecordSeries stepper accepted")
	}
}
