package switchsim

import (
	"fmt"

	"qswitch/internal/packet"
)

// CIOQStepper drives a CIOQ simulation one slot at a time, with arrivals
// supplied interactively. It enables adaptive adversaries — inputs chosen
// after observing the policy's state — and incremental/streaming use of
// the simulator (e.g. feeding live traces).
//
// The caller supplies each slot's arrivals via StepSlot; packets must
// carry strictly increasing IDs and the current slot's index as Arrival.
// Finish drains the backlog and returns the final result.
type CIOQStepper struct {
	cfg    Config
	pol    CIOQPolicy
	sw     *CIOQ
	slot   int
	nextID int64
	done   bool
}

// NewCIOQStepper creates a stepper for the policy. Config.Slots is
// ignored — the horizon is determined by how often StepSlot is called
// (plus draining in Finish).
func NewCIOQStepper(cfg Config, pol CIOQPolicy) (*CIOQStepper, error) {
	if err := cfg.Check(false); err != nil {
		return nil, err
	}
	if cfg.RecordSeries {
		return nil, fmt.Errorf("switchsim: stepper does not support RecordSeries (unknown horizon)")
	}
	inDisc, outDisc := pol.Disciplines()
	sw := NewCIOQ(cfg, inDisc, outDisc)
	pol.Reset(cfg)
	return &CIOQStepper{cfg: cfg, pol: pol, sw: sw}, nil
}

// Slot returns the index of the next slot to be simulated.
func (st *CIOQStepper) Slot() int { return st.slot }

// Switch exposes the live switch state (read-only use expected); adaptive
// adversaries inspect queue occupancy through it.
func (st *CIOQStepper) Switch() *CIOQ { return st.sw }

// StepSlot runs one full time slot: the given arrivals (ports and values
// only need to be set; Arrival and ID are assigned by the stepper), the
// speedup's scheduling cycles, and the transmission phase.
func (st *CIOQStepper) StepSlot(arrivals []packet.Packet) error {
	if st.done {
		return fmt.Errorf("switchsim: stepper already finished")
	}
	for _, p := range arrivals {
		p.Arrival = st.slot
		p.ID = st.nextID
		st.nextID++
		if p.In < 0 || p.In >= st.cfg.Inputs || p.Out < 0 || p.Out >= st.cfg.Outputs {
			return fmt.Errorf("switchsim: stepper arrival %v out of range", p)
		}
		if p.Value < 1 {
			return fmt.Errorf("switchsim: stepper arrival %v has value < 1", p)
		}
		if err := st.sw.admit(p, st.pol.Admit(st.sw, p)); err != nil {
			return err
		}
	}
	for cycle := 0; cycle < st.cfg.Speedup; cycle++ {
		if err := st.sw.executeTransfers(st.pol.Schedule(st.sw, st.slot, cycle)); err != nil {
			return err
		}
	}
	st.sw.transmit(st.slot)
	st.sw.sampleOccupancy()
	if st.cfg.Validate {
		if err := st.sw.checkInvariants(); err != nil {
			return fmt.Errorf("switchsim: slot %d: %w", st.slot, err)
		}
	}
	st.slot++
	return nil
}

// StepIdle advances the simulation across idleSlots slots with no
// arrivals — the stepper-side event-driven fast path, used by adaptive
// adversaries and trace replayers whose arrival streams have long quiet
// gaps. Slots are simulated one by one while input-side packets remain
// (transfers still happen); as soon as the switch is quiescent — any
// remaining backlog confined to the output queues — a policy implementing
// IdleAdvancer has the whole remaining stretch advanced in closed form
// (the drain is policy-independent; see (*CIOQ).quiesce). Config.Dense
// disables the jump and steps every slot. Metrics are bit-identical to
// per-slot stepping either way.
func (st *CIOQStepper) StepIdle(idleSlots int) error {
	if st.done {
		return fmt.Errorf("switchsim: stepper already finished")
	}
	idle, canJump := st.pol.(IdleAdvancer)
	canJump = canJump && !st.cfg.Dense
	for idleSlots > 0 {
		if canJump && st.sw.inCount == 0 {
			// st.slot is the next slot to simulate, so the skipped
			// transmissions land at st.slot .. st.slot+idleSlots-1.
			st.sw.quiesce(st.slot-1, idleSlots)
			idle.IdleAdvance(idleSlots)
			st.slot += idleSlots
			if st.cfg.Validate {
				if err := st.sw.checkInvariants(); err != nil {
					return fmt.Errorf("switchsim: after quiescent jump to slot %d: %w", st.slot, err)
				}
			}
			return nil
		}
		if err := st.StepSlot(nil); err != nil {
			return err
		}
		idleSlots--
	}
	return nil
}

// Finish runs empty slots until the switch drains (or maxDrain slots have
// passed) and returns the final result. Draining uses the same quiescent
// fast path as StepIdle once the input side is empty. The stepper cannot
// be used afterwards.
func (st *CIOQStepper) Finish(maxDrain int) (*Result, error) {
	if st.done {
		return nil, fmt.Errorf("switchsim: stepper already finished")
	}
	_, canJump := st.pol.(IdleAdvancer)
	canJump = canJump && !st.cfg.Dense
	for d := 0; d < maxDrain && st.sw.QueuedPackets() > 0; {
		if canJump && st.sw.inCount == 0 {
			k := st.sw.OutputBacklog()
			if k > maxDrain-d {
				k = maxDrain - d
			}
			if err := st.StepIdle(k); err != nil {
				return nil, err
			}
			d += k
			continue
		}
		if err := st.StepSlot(nil); err != nil {
			return nil, err
		}
		d++
	}
	st.done = true
	if st.cfg.Validate {
		if err := st.sw.M.conservationCheck(st.sw.QueuedPackets()); err != nil {
			return nil, err
		}
	}
	return &Result{Policy: st.pol.Name(), Cfg: st.cfg, Slots: st.slot, M: st.sw.M}, nil
}

// Benefit returns the value transmitted so far.
func (st *CIOQStepper) Benefit() int64 { return st.sw.M.Benefit }
