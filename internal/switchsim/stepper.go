package switchsim

import (
	"fmt"

	"qswitch/internal/packet"
)

// CIOQStepper drives a CIOQ simulation one slot at a time, with arrivals
// supplied interactively. It enables adaptive adversaries — inputs chosen
// after observing the policy's state — and incremental/streaming use of
// the simulator (e.g. feeding live traces).
//
// The caller supplies each slot's arrivals via StepSlot; packets must
// carry strictly increasing IDs and the current slot's index as Arrival.
// Finish drains the backlog and returns the final result.
type CIOQStepper struct {
	cfg    Config
	pol    CIOQPolicy
	sw     *CIOQ
	slot   int
	nextID int64
	done   bool
}

// NewCIOQStepper creates a stepper for the policy. Config.Slots is
// ignored — the horizon is determined by how often StepSlot is called
// (plus draining in Finish).
func NewCIOQStepper(cfg Config, pol CIOQPolicy) (*CIOQStepper, error) {
	if err := cfg.Check(false); err != nil {
		return nil, err
	}
	if cfg.RecordSeries {
		return nil, fmt.Errorf("switchsim: stepper does not support RecordSeries (unknown horizon)")
	}
	inDisc, outDisc := pol.Disciplines()
	sw := NewCIOQ(cfg, inDisc, outDisc)
	pol.Reset(cfg)
	return &CIOQStepper{cfg: cfg, pol: pol, sw: sw}, nil
}

// Slot returns the index of the next slot to be simulated.
func (st *CIOQStepper) Slot() int { return st.slot }

// Switch exposes the live switch state (read-only use expected); adaptive
// adversaries inspect queue occupancy through it.
func (st *CIOQStepper) Switch() *CIOQ { return st.sw }

// StepSlot runs one full time slot: the given arrivals (ports and values
// only need to be set; Arrival and ID are assigned by the stepper), the
// speedup's scheduling cycles, and the transmission phase.
func (st *CIOQStepper) StepSlot(arrivals []packet.Packet) error {
	if st.done {
		return fmt.Errorf("switchsim: stepper already finished")
	}
	for _, p := range arrivals {
		p.Arrival = st.slot
		p.ID = st.nextID
		st.nextID++
		if p.In < 0 || p.In >= st.cfg.Inputs || p.Out < 0 || p.Out >= st.cfg.Outputs {
			return fmt.Errorf("switchsim: stepper arrival %v out of range", p)
		}
		if p.Value < 1 {
			return fmt.Errorf("switchsim: stepper arrival %v has value < 1", p)
		}
		if err := st.sw.admit(p, st.pol.Admit(st.sw, p)); err != nil {
			return err
		}
	}
	for cycle := 0; cycle < st.cfg.Speedup; cycle++ {
		if err := st.sw.executeTransfers(st.pol.Schedule(st.sw, st.slot, cycle)); err != nil {
			return err
		}
	}
	st.sw.transmit(st.slot)
	st.sw.sampleOccupancy()
	if st.cfg.Validate {
		if err := st.sw.checkInvariants(); err != nil {
			return fmt.Errorf("switchsim: slot %d: %w", st.slot, err)
		}
	}
	st.slot++
	return nil
}

// StepIdle advances the simulation across idleSlots slots with no
// arrivals — the stepper-side event-driven fast path, used by adaptive
// adversaries and trace replayers whose arrival streams have long quiet
// gaps. Slots are simulated one by one while a backlog remains
// (transfers and transmissions still happen); as soon as the switch is
// empty, a policy implementing IdleAdvancer has the remaining stretch
// jumped in O(1). Metrics are bit-identical to per-slot stepping either
// way.
func (st *CIOQStepper) StepIdle(idleSlots int) error {
	if st.done {
		return fmt.Errorf("switchsim: stepper already finished")
	}
	idle, canJump := st.pol.(IdleAdvancer)
	for idleSlots > 0 {
		if canJump && st.sw.QueuedPackets() == 0 {
			idle.IdleAdvance(idleSlots)
			st.sw.M.noteIdleSlots(idleSlots)
			st.slot += idleSlots
			if st.cfg.Validate {
				if err := st.sw.checkInvariants(); err != nil {
					return fmt.Errorf("switchsim: after idle jump to slot %d: %w", st.slot, err)
				}
			}
			return nil
		}
		if err := st.StepSlot(nil); err != nil {
			return err
		}
		idleSlots--
	}
	return nil
}

// Finish runs empty slots until the switch drains (or maxDrain slots have
// passed) and returns the final result. The stepper cannot be used
// afterwards.
func (st *CIOQStepper) Finish(maxDrain int) (*Result, error) {
	if st.done {
		return nil, fmt.Errorf("switchsim: stepper already finished")
	}
	for d := 0; d < maxDrain && st.sw.QueuedPackets() > 0; d++ {
		if err := st.StepSlot(nil); err != nil {
			return nil, err
		}
	}
	st.done = true
	if st.cfg.Validate {
		if err := st.sw.M.conservationCheck(st.sw.QueuedPackets()); err != nil {
			return nil, err
		}
	}
	return &Result{Policy: st.pol.Name(), Cfg: st.cfg, Slots: st.slot, M: st.sw.M}, nil
}

// Benefit returns the value transmitted so far.
func (st *CIOQStepper) Benefit() int64 { return st.sw.M.Benefit }
