package switchsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qswitch/internal/packet"
	"qswitch/internal/queue"
)

// chaosPolicy makes random but LEGAL decisions: the engine must uphold
// all invariants for any well-formed policy, not just the sensible ones.
type chaosPolicy struct {
	rng     *rand.Rand
	cfg     Config
	byValue bool
}

func (c *chaosPolicy) Name() string { return "chaos" }
func (c *chaosPolicy) Disciplines() (queue.Discipline, queue.Discipline) {
	if c.byValue {
		return queue.ByValue, queue.ByValue
	}
	return queue.FIFO, queue.FIFO
}
func (c *chaosPolicy) Reset(cfg Config) { c.cfg = cfg }
func (c *chaosPolicy) Admit(sw *CIOQ, p packet.Packet) AdmitAction {
	switch c.rng.Intn(4) {
	case 0:
		return Reject
	case 1:
		return AcceptPreempt
	case 2:
		return AcceptPreemptMin
	default:
		if sw.IQ[p.In][p.Out].Full() {
			return Reject
		}
		return Accept
	}
}
func (c *chaosPolicy) Schedule(sw *CIOQ, slot, cycle int) []Transfer {
	usedIn := make([]bool, c.cfg.Inputs)
	usedOut := make([]bool, c.cfg.Outputs)
	var out []Transfer
	// Random subset of a random matching over currently legal moves.
	for _, i := range c.rng.Perm(c.cfg.Inputs) {
		if c.rng.Intn(3) == 0 {
			continue // leave this input idle
		}
		for _, j := range c.rng.Perm(c.cfg.Outputs) {
			if usedIn[i] || usedOut[j] {
				continue
			}
			src := sw.IQ[i][j]
			if src.Empty() {
				continue
			}
			dst := sw.OQ[j]
			if !dst.Full() {
				usedIn[i], usedOut[j] = true, true
				out = append(out, Transfer{In: i, Out: j})
				break
			}
			// Full destination: only legal with a strictly better head.
			head, _ := src.Head()
			if min, ok := dst.MinValue(); ok && head.Value > min.Value {
				usedIn[i], usedOut[j] = true, true
				out = append(out, Transfer{In: i, Out: j, PreemptMinIfFull: true})
				break
			}
		}
	}
	return out
}

// TestEngineInvariantsUnderChaosPolicies drives the validating engine
// with hundreds of random-but-legal policies over random traffic: any
// invariant violation (queue order, capacity, conservation) fails the
// run. This is the simulator's strongest correctness test.
func TestEngineInvariantsUnderChaosPolicies(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			Inputs:    rng.Intn(3) + 1,
			Outputs:   rng.Intn(3) + 1,
			InputBuf:  rng.Intn(3) + 1,
			OutputBuf: rng.Intn(3) + 1,
			CrossBuf:  1,
			Speedup:   rng.Intn(3) + 1,
			Validate:  true,
		}
		gen := packet.Bernoulli{Load: 0.5 + rng.Float64()*1.5,
			Values: packet.UniformValues{Hi: int64(rng.Intn(20) + 1)}}
		seq := gen.Generate(rng, cfg.Inputs, cfg.Outputs, rng.Intn(12)+2)
		pol := &chaosPolicy{rng: rng, byValue: rng.Intn(2) == 0}
		res, err := RunCIOQ(cfg, pol, seq)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Benefit can never exceed total offered value.
		return res.M.Benefit <= seq.TotalValue()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// chaosXbarPolicy is the crossbar counterpart.
type chaosXbarPolicy struct {
	rng *rand.Rand
	cfg Config
}

func (c *chaosXbarPolicy) Name() string { return "chaos-xbar" }
func (c *chaosXbarPolicy) Disciplines() (queue.Discipline, queue.Discipline, queue.Discipline) {
	return queue.ByValue, queue.ByValue, queue.ByValue
}
func (c *chaosXbarPolicy) Reset(cfg Config) { c.cfg = cfg }
func (c *chaosXbarPolicy) Admit(sw *Crossbar, p packet.Packet) AdmitAction {
	if c.rng.Intn(2) == 0 {
		return AcceptPreempt
	}
	if sw.IQ[p.In][p.Out].Full() {
		return Reject
	}
	return Accept
}
func (c *chaosXbarPolicy) InputSubphase(sw *Crossbar, slot, cycle int) []Transfer {
	var out []Transfer
	for i := 0; i < c.cfg.Inputs; i++ {
		if c.rng.Intn(3) == 0 {
			continue
		}
		for _, j := range c.rng.Perm(c.cfg.Outputs) {
			src := sw.IQ[i][j]
			if src.Empty() {
				continue
			}
			dst := sw.XQ[i][j]
			if !dst.Full() {
				out = append(out, Transfer{In: i, Out: j})
				break
			}
			head, _ := src.Head()
			if tail, ok := dst.Tail(); ok && head.Value > tail.Value {
				out = append(out, Transfer{In: i, Out: j, PreemptIfFull: true})
				break
			}
		}
	}
	return out
}
func (c *chaosXbarPolicy) OutputSubphase(sw *Crossbar, slot, cycle int) []Transfer {
	var out []Transfer
	for j := 0; j < c.cfg.Outputs; j++ {
		if c.rng.Intn(3) == 0 {
			continue
		}
		for _, i := range c.rng.Perm(c.cfg.Inputs) {
			src := sw.XQ[i][j]
			if src.Empty() {
				continue
			}
			dst := sw.OQ[j]
			if !dst.Full() {
				out = append(out, Transfer{In: i, Out: j})
				break
			}
			head, _ := src.Head()
			if tail, ok := dst.Tail(); ok && head.Value > tail.Value {
				out = append(out, Transfer{In: i, Out: j, PreemptIfFull: true})
				break
			}
		}
	}
	return out
}

func TestCrossbarEngineInvariantsUnderChaos(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			Inputs:    rng.Intn(3) + 1,
			Outputs:   rng.Intn(3) + 1,
			InputBuf:  rng.Intn(3) + 1,
			OutputBuf: rng.Intn(3) + 1,
			CrossBuf:  rng.Intn(2) + 1,
			Speedup:   rng.Intn(3) + 1,
			Validate:  true,
		}
		gen := packet.Bernoulli{Load: 0.5 + rng.Float64()*1.5,
			Values: packet.UniformValues{Hi: int64(rng.Intn(20) + 1)}}
		seq := gen.Generate(rng, cfg.Inputs, cfg.Outputs, rng.Intn(12)+2)
		pol := &chaosXbarPolicy{rng: rng}
		res, err := RunCrossbar(cfg, pol, seq)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return res.M.Benefit <= seq.TotalValue()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
