package switchsim

import (
	"fmt"

	"qswitch/internal/packet"
	"qswitch/internal/queue"
)

// CIOQPolicy is the decision interface for CIOQ switches. The engine calls
// Admit once per arriving packet and Schedule once per scheduling cycle;
// transmission is not a policy decision: the engine always transmits the
// head packet of every non-empty output queue (all the paper's algorithms,
// and WLOG the offline optimum, are work-conserving and greedy at outputs).
type CIOQPolicy interface {
	// Name identifies the policy in results.
	Name() string
	// Disciplines returns the queue orderings the policy requires for
	// input and output queues (FIFO for unit-value algorithms, ByValue
	// for weighted ones).
	Disciplines() (input, output queue.Discipline)
	// Reset prepares the policy for a fresh run on the given config.
	Reset(cfg Config)
	// Admit decides the fate of an arriving packet.
	Admit(sw *CIOQ, p packet.Packet) AdmitAction
	// Schedule returns the set of transfers for scheduling cycle
	// `cycle` (0-based) of slot `slot`. The set must form a matching:
	// at most one transfer out of each input port and at most one into
	// each output port.
	Schedule(sw *CIOQ, slot, cycle int) []Transfer
}

// CIOQ is the state of a combined input/output queued switch.
type CIOQ struct {
	Cfg Config
	// IQ[i][j] is the input queue at port i holding packets for output j.
	IQ [][]*queue.Queue
	// OQ[j] is the queue at output port j.
	OQ []*queue.Queue
	M  Metrics
}

// NewCIOQ builds an empty switch with the queue disciplines requested by
// the policy.
func NewCIOQ(cfg Config, inDisc, outDisc queue.Discipline) *CIOQ {
	sw := &CIOQ{Cfg: cfg}
	sw.IQ = make([][]*queue.Queue, cfg.Inputs)
	for i := range sw.IQ {
		sw.IQ[i] = make([]*queue.Queue, cfg.Outputs)
		for j := range sw.IQ[i] {
			sw.IQ[i][j] = queue.New(cfg.InputBuf, inDisc)
		}
	}
	sw.OQ = make([]*queue.Queue, cfg.Outputs)
	for j := range sw.OQ {
		sw.OQ[j] = queue.New(cfg.OutputBuf, outDisc)
	}
	return sw
}

// QueuedPackets returns the number of packets currently stored anywhere in
// the switch.
func (sw *CIOQ) QueuedPackets() int64 {
	var n int64
	for i := range sw.IQ {
		for j := range sw.IQ[i] {
			n += int64(sw.IQ[i][j].Len())
		}
	}
	for j := range sw.OQ {
		n += int64(sw.OQ[j].Len())
	}
	return n
}

func (sw *CIOQ) checkInvariants() error {
	for i := range sw.IQ {
		for j := range sw.IQ[i] {
			if err := sw.IQ[i][j].CheckInvariants(); err != nil {
				return fmt.Errorf("IQ[%d][%d]: %w", i, j, err)
			}
		}
	}
	for j := range sw.OQ {
		if err := sw.OQ[j].CheckInvariants(); err != nil {
			return fmt.Errorf("OQ[%d]: %w", j, err)
		}
	}
	return nil
}

// admit executes an admission decision, updating metrics.
func (sw *CIOQ) admit(p packet.Packet, action AdmitAction) error {
	sw.M.Arrived++
	sw.M.ArrivedValue += p.Value
	q := sw.IQ[p.In][p.Out]
	switch action {
	case Reject:
		sw.M.Rejected++
		sw.M.RejectedValue += p.Value
		return nil
	case Accept:
		if err := q.Push(p); err != nil {
			return fmt.Errorf("switchsim: policy accepted %v into full IQ[%d][%d]", p, p.In, p.Out)
		}
		sw.M.Accepted++
		sw.M.AcceptedValue += p.Value
		return nil
	case AcceptPreempt, AcceptPreemptMin:
		var victim packet.Packet
		var preempted, accepted bool
		if action == AcceptPreemptMin {
			victim, preempted, accepted = q.PushPreemptMin(p)
		} else {
			victim, preempted, accepted = q.PushPreempt(p)
		}
		if !accepted {
			sw.M.Rejected++
			sw.M.RejectedValue += p.Value
			return nil
		}
		sw.M.Accepted++
		sw.M.AcceptedValue += p.Value
		if preempted {
			sw.M.PreemptedInput++
			sw.M.PreemptedInputValue += victim.Value
		}
		return nil
	default:
		return fmt.Errorf("switchsim: unknown admit action %d", action)
	}
}

// executeTransfers applies one scheduling cycle's matching, enforcing the
// matching property and capacities.
func (sw *CIOQ) executeTransfers(ts []Transfer) error {
	usedIn := make([]bool, sw.Cfg.Inputs)
	usedOut := make([]bool, sw.Cfg.Outputs)
	for _, t := range ts {
		if t.In < 0 || t.In >= sw.Cfg.Inputs || t.Out < 0 || t.Out >= sw.Cfg.Outputs {
			return fmt.Errorf("switchsim: transfer (%d->%d) out of range", t.In, t.Out)
		}
		if usedIn[t.In] {
			return fmt.Errorf("switchsim: matching violation: two transfers from input %d", t.In)
		}
		if usedOut[t.Out] {
			return fmt.Errorf("switchsim: matching violation: two transfers to output %d", t.Out)
		}
		usedIn[t.In], usedOut[t.Out] = true, true
	}
	for _, t := range ts {
		src := sw.IQ[t.In][t.Out]
		dst := sw.OQ[t.Out]
		p, ok := src.PopHead()
		if !ok {
			return fmt.Errorf("switchsim: transfer from empty IQ[%d][%d]", t.In, t.Out)
		}
		if (t.PreemptIfFull || t.PreemptMinIfFull) && dst.Full() {
			var victim packet.Packet
			var preempted, accepted bool
			if t.PreemptMinIfFull {
				victim, preempted, accepted = dst.PushPreemptMin(p)
			} else {
				victim, preempted, accepted = dst.PushPreempt(p)
			}
			if !accepted {
				return fmt.Errorf("switchsim: transfer of %v into OQ[%d] rejected (victim %v not worse)", p, t.Out, victim)
			}
			if preempted {
				sw.M.PreemptedOutput++
				sw.M.PreemptedOutputValue += victim.Value
			}
		} else if err := dst.Push(p); err != nil {
			return fmt.Errorf("switchsim: transfer of %v into full OQ[%d]", p, t.Out)
		}
		sw.M.Transferred++
	}
	return nil
}

// transmit performs the transmission phase of slot `slot`.
func (sw *CIOQ) transmit(slot int) {
	for j := range sw.OQ {
		if p, ok := sw.OQ[j].PopHead(); ok {
			sw.M.Sent++
			sw.M.Benefit += p.Value
			if sw.Cfg.RecordLatency {
				sw.M.recordLatency(slot - p.Arrival)
			}
			if sw.Cfg.RecordSeries {
				sw.M.SlotBenefit[slot] += p.Value
			}
		}
	}
}

func (sw *CIOQ) sampleOccupancy() {
	var in, out int64
	for i := range sw.IQ {
		for j := range sw.IQ[i] {
			in += int64(sw.IQ[i][j].Len())
		}
	}
	for j := range sw.OQ {
		out += int64(sw.OQ[j].Len())
	}
	sw.M.InputOccupSum += in
	sw.M.OutputOccupSum += out
	sw.M.slotsSampled++
}

// RunCIOQ simulates the policy on the sequence and returns the result.
// The sequence must be valid for the configured geometry.
func RunCIOQ(cfg Config, pol CIOQPolicy, seq packet.Sequence) (*Result, error) {
	if err := cfg.Check(false); err != nil {
		return nil, err
	}
	if err := seq.Validate(cfg.Inputs, cfg.Outputs); err != nil {
		return nil, fmt.Errorf("switchsim: bad sequence: %w", err)
	}
	slots := cfg.HorizonFor(seq)
	inDisc, outDisc := pol.Disciplines()
	sw := NewCIOQ(cfg, inDisc, outDisc)
	if cfg.RecordSeries {
		sw.M.SlotBenefit = make([]int64, slots)
	}
	pol.Reset(cfg)
	arrivals := seq.BySlot(slots)
	for slot := 0; slot < slots; slot++ {
		for _, p := range arrivals[slot] {
			if err := sw.admit(p, pol.Admit(sw, p)); err != nil {
				return nil, err
			}
		}
		for cycle := 0; cycle < cfg.Speedup; cycle++ {
			if err := sw.executeTransfers(pol.Schedule(sw, slot, cycle)); err != nil {
				return nil, err
			}
		}
		sw.transmit(slot)
		sw.sampleOccupancy()
		if cfg.Validate {
			if err := sw.checkInvariants(); err != nil {
				return nil, fmt.Errorf("switchsim: slot %d: %w", slot, err)
			}
		}
	}
	if cfg.Validate {
		if err := sw.M.conservationCheck(sw.QueuedPackets()); err != nil {
			return nil, err
		}
	}
	return &Result{Policy: pol.Name(), Cfg: cfg, Slots: slots, M: sw.M}, nil
}
