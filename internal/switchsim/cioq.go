package switchsim

import (
	"fmt"
	"math/bits"

	"qswitch/internal/bitset"
	"qswitch/internal/packet"
	"qswitch/internal/queue"
)

// CIOQPolicy is the decision interface for CIOQ switches. The engine calls
// Admit once per arriving packet and Schedule once per scheduling cycle;
// transmission is not a policy decision: the engine always transmits the
// head packet of every non-empty output queue (all the paper's algorithms,
// and WLOG the offline optimum, are work-conserving and greedy at outputs).
type CIOQPolicy interface {
	// Name identifies the policy in results.
	Name() string
	// Disciplines returns the queue orderings the policy requires for
	// input and output queues (FIFO for unit-value algorithms, ByValue
	// for weighted ones).
	Disciplines() (input, output queue.Discipline)
	// Reset prepares the policy for a fresh run on the given config.
	Reset(cfg Config)
	// Admit decides the fate of an arriving packet.
	Admit(sw *CIOQ, p packet.Packet) AdmitAction
	// Schedule returns the set of transfers for scheduling cycle
	// `cycle` (0-based) of slot `slot`. The set must form a matching:
	// at most one transfer out of each input port and at most one into
	// each output port. The engine consumes the slice before the next
	// policy call, so policies may return a reusable scratch buffer.
	Schedule(sw *CIOQ, slot, cycle int) []Transfer
}

// CIOQ is the state of a combined input/output queued switch.
//
// Alongside the queues it maintains an incrementally-updated occupancy
// index — bitmasks over ports, kept exact by the engine on every push,
// pop and preemption — that lets policies enumerate the eligible edges
// {(i,j) : Q_ij non-empty, Q_j not full} in time proportional to the
// number of occupied queues instead of scanning all Inputs×Outputs pairs.
// Policies must treat the index as read-only.
type CIOQ struct {
	Cfg Config
	// IQ[i][j] is the input queue at port i holding packets for output j.
	IQ [][]*queue.Queue
	// OQ[j] is the queue at output port j.
	OQ []*queue.Queue
	M  Metrics

	// VOQ.Row(i) is the mask over outputs j with IQ[i][j] non-empty.
	VOQ bitset.Matrix
	// VOQByOut.Row(j) is the transpose: inputs i with IQ[i][j] non-empty.
	VOQByOut bitset.Matrix
	// OutFree is the mask over outputs j with OQ[j] not full.
	OutFree bitset.Mask
	// OutBusy is the mask over outputs j with OQ[j] non-empty.
	OutBusy bitset.Mask

	inCount  int64 // packets across all input queues
	outCount int64 // packets across all output queues

	// Matching-validation scratch: epoch-stamped marks avoid clearing
	// per cycle.
	usedIn, usedOut []int
	epoch           int
}

// NewCIOQ builds an empty switch with the queue disciplines requested by
// the policy.
func NewCIOQ(cfg Config, inDisc, outDisc queue.Discipline) *CIOQ {
	sw := &CIOQ{Cfg: cfg}
	n, m := cfg.Inputs, cfg.Outputs
	iqs := queue.NewBatch(n*m, cfg.InputBuf, inDisc)
	iqPtrs := make([]*queue.Queue, n*m)
	for x := range iqPtrs {
		iqPtrs[x] = &iqs[x]
	}
	sw.IQ = make([][]*queue.Queue, n)
	for i := range sw.IQ {
		sw.IQ[i] = iqPtrs[i*m : (i+1)*m : (i+1)*m]
	}
	oqs := queue.NewBatch(m, cfg.OutputBuf, outDisc)
	sw.OQ = make([]*queue.Queue, m)
	for j := range sw.OQ {
		sw.OQ[j] = &oqs[j]
	}
	sw.VOQ = bitset.NewMatrix(cfg.Inputs, cfg.Outputs)
	sw.VOQByOut = bitset.NewMatrix(cfg.Outputs, cfg.Inputs)
	sw.OutFree = bitset.New(cfg.Outputs)
	sw.OutFree.Fill(cfg.Outputs)
	sw.OutBusy = bitset.New(cfg.Outputs)
	sw.usedIn = make([]int, cfg.Inputs)
	sw.usedOut = make([]int, cfg.Outputs)
	return sw
}

// QueuedPackets returns the number of packets currently stored anywhere in
// the switch.
func (sw *CIOQ) QueuedPackets() int64 { return sw.inCount + sw.outCount }

// InputQueued returns the number of packets currently stored in the input
// virtual output queues. Zero means the switch is quiescent: no scheduling
// decision can move a packet, and any remaining backlog sits in the output
// queues draining policy-independently.
func (sw *CIOQ) InputQueued() int64 { return sw.inCount }

// OutputBacklog returns the length of the longest output queue — the
// number of drain-only slots needed to empty the switch once InputQueued
// reaches zero and no further arrivals occur.
func (sw *CIOQ) OutputBacklog() int {
	backlog := 0
	for _, q := range sw.OQ {
		backlog = max(backlog, q.Len())
	}
	return backlog
}

func (sw *CIOQ) checkInvariants() error {
	for i := range sw.IQ {
		for j := range sw.IQ[i] {
			if err := sw.IQ[i][j].CheckInvariants(); err != nil {
				return fmt.Errorf("IQ[%d][%d]: %w", i, j, err)
			}
		}
	}
	for j := range sw.OQ {
		if err := sw.OQ[j].CheckInvariants(); err != nil {
			return fmt.Errorf("OQ[%d]: %w", j, err)
		}
	}
	return sw.checkIndex()
}

// checkIndex verifies that the occupancy bitmasks and counters agree with
// the actual queue contents (full rescan; validation mode only).
func (sw *CIOQ) checkIndex() error {
	var in, out int64
	for i := range sw.IQ {
		for j := range sw.IQ[i] {
			in += int64(sw.IQ[i][j].Len())
			if got, want := sw.VOQ.Row(i).Test(j), !sw.IQ[i][j].Empty(); got != want {
				return fmt.Errorf("index: VOQ[%d] bit %d = %v, queue empty=%v", i, j, got, !want)
			}
			if got, want := sw.VOQByOut.Row(j).Test(i), !sw.IQ[i][j].Empty(); got != want {
				return fmt.Errorf("index: VOQByOut[%d] bit %d = %v, queue empty=%v", j, i, got, !want)
			}
		}
	}
	for j := range sw.OQ {
		out += int64(sw.OQ[j].Len())
		if got, want := sw.OutFree.Test(j), !sw.OQ[j].Full(); got != want {
			return fmt.Errorf("index: OutFree bit %d = %v, queue full=%v", j, got, !want)
		}
		if got, want := sw.OutBusy.Test(j), !sw.OQ[j].Empty(); got != want {
			return fmt.Errorf("index: OutBusy bit %d = %v, queue empty=%v", j, got, !want)
		}
	}
	if in != sw.inCount || out != sw.outCount {
		return fmt.Errorf("index: counters (in=%d,out=%d) but queues hold (%d,%d)", sw.inCount, sw.outCount, in, out)
	}
	return nil
}

// admit executes an admission decision, updating metrics and the index.
func (sw *CIOQ) admit(p packet.Packet, action AdmitAction) error {
	sw.M.Arrived++
	sw.M.ArrivedValue += p.Value
	q := sw.IQ[p.In][p.Out]
	switch action {
	case Reject:
		sw.M.Rejected++
		sw.M.RejectedValue += p.Value
		return nil
	case Accept:
		if err := q.Push(p); err != nil {
			return fmt.Errorf("switchsim: policy accepted %v into full IQ[%d][%d]", p, p.In, p.Out)
		}
		sw.noteIQPush(p.In, p.Out)
		sw.M.Accepted++
		sw.M.AcceptedValue += p.Value
		return nil
	case AcceptPreempt, AcceptPreemptMin:
		var victim packet.Packet
		var preempted, accepted bool
		if action == AcceptPreemptMin {
			victim, preempted, accepted = q.PushPreemptMin(p)
		} else {
			victim, preempted, accepted = q.PushPreempt(p)
		}
		if !accepted {
			sw.M.Rejected++
			sw.M.RejectedValue += p.Value
			return nil
		}
		sw.M.Accepted++
		sw.M.AcceptedValue += p.Value
		if preempted {
			// One packet replaced another: occupancy unchanged.
			sw.M.PreemptedInput++
			sw.M.PreemptedInputValue += victim.Value
		} else {
			sw.noteIQPush(p.In, p.Out)
		}
		return nil
	default:
		return fmt.Errorf("switchsim: unknown admit action %d", action)
	}
}

// noteIQPush records a net insertion into IQ[i][j].
func (sw *CIOQ) noteIQPush(i, j int) {
	sw.VOQ.Row(i).Set(j)
	sw.VOQByOut.Row(j).Set(i)
	sw.inCount++
}

// noteIQPop records a removal from IQ[i][j].
func (sw *CIOQ) noteIQPop(i, j int) {
	if sw.IQ[i][j].Empty() {
		sw.VOQ.Row(i).Clear(j)
		sw.VOQByOut.Row(j).Clear(i)
	}
	sw.inCount--
}

// executeTransfers applies one scheduling cycle's matching, enforcing the
// matching property and capacities.
func (sw *CIOQ) executeTransfers(ts []Transfer) error {
	sw.epoch++
	for _, t := range ts {
		if t.In < 0 || t.In >= sw.Cfg.Inputs || t.Out < 0 || t.Out >= sw.Cfg.Outputs {
			return fmt.Errorf("switchsim: transfer (%d->%d) out of range", t.In, t.Out)
		}
		if sw.usedIn[t.In] == sw.epoch {
			return fmt.Errorf("switchsim: matching violation: two transfers from input %d", t.In)
		}
		if sw.usedOut[t.Out] == sw.epoch {
			return fmt.Errorf("switchsim: matching violation: two transfers to output %d", t.Out)
		}
		sw.usedIn[t.In], sw.usedOut[t.Out] = sw.epoch, sw.epoch
	}
	for _, t := range ts {
		src := sw.IQ[t.In][t.Out]
		dst := sw.OQ[t.Out]
		p, ok := src.PopHead()
		if !ok {
			return fmt.Errorf("switchsim: transfer from empty IQ[%d][%d]", t.In, t.Out)
		}
		sw.noteIQPop(t.In, t.Out)
		if (t.PreemptIfFull || t.PreemptMinIfFull) && dst.Full() {
			var victim packet.Packet
			var preempted, accepted bool
			if t.PreemptMinIfFull {
				victim, preempted, accepted = dst.PushPreemptMin(p)
			} else {
				victim, preempted, accepted = dst.PushPreempt(p)
			}
			if !accepted {
				return fmt.Errorf("switchsim: transfer of %v into OQ[%d] rejected (victim %v not worse)", p, t.Out, victim)
			}
			if preempted {
				// Replacement: the queue stays full and non-empty.
				sw.M.PreemptedOutput++
				sw.M.PreemptedOutputValue += victim.Value
			}
		} else if err := dst.Push(p); err != nil {
			return fmt.Errorf("switchsim: transfer of %v into full OQ[%d]", p, t.Out)
		} else {
			sw.OutBusy.Set(t.Out)
			if dst.Full() {
				sw.OutFree.Clear(t.Out)
			}
			sw.outCount++
		}
		sw.M.Transferred++
	}
	return nil
}

// transmit performs the transmission phase of slot `slot`, visiting only
// the non-empty output queues via the occupancy mask.
func (sw *CIOQ) transmit(slot int) {
	for w, word := range sw.OutBusy {
		for word != 0 {
			j := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			p, _ := sw.OQ[j].PopHead()
			sw.outCount--
			sw.OutFree.Set(j)
			if sw.OQ[j].Empty() {
				sw.OutBusy.Clear(j)
			}
			sw.M.Sent++
			sw.M.Benefit += p.Value
			if sw.Cfg.RecordLatency {
				sw.M.recordLatency(slot - p.Arrival)
			}
			if sw.Cfg.RecordSeries {
				sw.M.SlotBenefit[slot] += p.Value
			}
		}
	}
}

func (sw *CIOQ) sampleOccupancy() {
	sw.M.InputOccupSum += sw.inCount
	sw.M.OutputOccupSum += sw.outCount
	sw.M.slotsSampled++
}

// quiesce advances the switch across k arrival-free slots during which no
// scheduling transfer is possible (inCount == 0), in closed form: each
// non-empty output queue transmits one head packet per slot until it
// empties, and nothing else moves. The caller has just finished `slot`, so
// the skipped transmissions happen at slots slot+1 .. slot+k. Per-slot
// metrics (transmission counts, latency, series, occupancy integrals) are
// accumulated exactly as k dense iterations would have recorded them:
// after the x-th skipped slot an output that held L packets holds
// max(0, L-x), so its occupancy contribution is Σ_{x=1..min(k,L)} (L-x).
//
// Every output queue is non-full here — the slot just finished transmitted
// from each non-empty queue — so OutFree is already correct and only
// OutBusy needs clearing as queues empty. The switch is left in exactly
// the state a dense simulation of those k slots would produce.
func (sw *CIOQ) quiesce(slot, k int) {
	for w, word := range sw.OutBusy {
		for word != 0 {
			j := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			q := sw.OQ[j]
			l := q.Len()
			d := l
			if k < l {
				d = k
			}
			for x := 1; x <= d; x++ {
				p, _ := q.PopHead()
				sw.M.Sent++
				sw.M.Benefit += p.Value
				if sw.Cfg.RecordLatency {
					sw.M.recordLatency(slot + x - p.Arrival)
				}
				if sw.Cfg.RecordSeries {
					sw.M.SlotBenefit[slot+x] += p.Value
				}
			}
			sw.outCount -= int64(d)
			sw.M.OutputOccupSum += int64(d)*int64(l) - int64(d)*int64(d+1)/2
			if q.Empty() {
				sw.OutBusy.Clear(j)
			}
		}
	}
	sw.M.slotsSampled += int64(k)
}

// idleJump returns how many upcoming slots the event-driven engine may
// skip after finishing `slot` on an empty or quiescent switch: the number
// of slots strictly between `slot` and the earlier of the next arrival
// (seq[next], the first not-yet-admitted packet) and the horizon. The
// sequence is sorted, so this is the O(1) next-arrival lookup.
func idleJump(seq packet.Sequence, next, slot, slots int) int {
	to := slots
	if next < len(seq) && seq[next].Arrival < slots {
		to = seq[next].Arrival
	}
	return to - (slot + 1)
}

// RunCIOQ simulates the policy on the sequence and returns the result.
// The sequence must be valid for the configured geometry.
func RunCIOQ(cfg Config, pol CIOQPolicy, seq packet.Sequence) (*Result, error) {
	if err := cfg.Check(false); err != nil {
		return nil, err
	}
	if err := seq.Validate(cfg.Inputs, cfg.Outputs); err != nil {
		return nil, fmt.Errorf("switchsim: bad sequence: %w", err)
	}
	slots := cfg.HorizonFor(seq)
	inDisc, outDisc := pol.Disciplines()
	sw := NewCIOQ(cfg, inDisc, outDisc)
	if cfg.RecordLatency && cfg.StreamMetrics {
		sw.M.EnableLatencySketch()
	}
	if cfg.RecordSeries {
		sw.M.SlotBenefit = make([]int64, slots)
	}
	pol.Reset(cfg)
	// Idle and quiescent jumps require the policy's cooperation; without
	// it every slot is simulated densely even with cfg.Dense unset.
	var idle IdleAdvancer
	if !cfg.Dense {
		idle, _ = pol.(IdleAdvancer)
	}
	// The sequence is sorted by (Arrival, ID), so a cursor yields each
	// slot's arrivals in admission order with no per-slot grouping.
	var probeJumped, probeJumps int64
	next := 0
	for slot := 0; slot < slots; slot++ {
		for next < len(seq) && seq[next].Arrival == slot {
			p := seq[next]
			next++
			if err := sw.admit(p, pol.Admit(sw, p)); err != nil {
				return nil, err
			}
		}
		for cycle := 0; cycle < cfg.Speedup; cycle++ {
			if err := sw.executeTransfers(pol.Schedule(sw, slot, cycle)); err != nil {
				return nil, err
			}
		}
		sw.transmit(slot)
		sw.sampleOccupancy()
		if cfg.Validate {
			if err := sw.checkInvariants(); err != nil {
				return nil, fmt.Errorf("switchsim: slot %d: %w", slot, err)
			}
		}
		// Quiescent fast path: with no input-side packets no scheduling
		// cycle can produce a transfer, so the stretch until the next
		// arrival is pure output drain (possibly zero-length, i.e. a fully
		// idle gap) and is advanced in closed form.
		if idle != nil && sw.inCount == 0 {
			if jump := idleJump(seq, next, slot, slots); jump > 0 {
				sw.quiesce(slot, jump)
				idle.IdleAdvance(jump)
				slot += jump
				probeJumps++
				probeJumped += int64(jump)
				if cfg.Validate {
					if err := sw.checkInvariants(); err != nil {
						return nil, fmt.Errorf("switchsim: after quiescent jump to slot %d: %w", slot, err)
					}
				}
			}
		}
	}
	if cfg.Validate {
		if err := sw.M.conservationCheck(sw.QueuedPackets()); err != nil {
			return nil, err
		}
	}
	engineProbes.Load().RecordRun(int64(slots), probeJumped, probeJumps)
	return &Result{Policy: pol.Name(), Cfg: cfg, Slots: slots, M: sw.M}, nil
}
