package switchsim

import (
	"fmt"

	"qswitch/internal/packet"
)

// CrossbarStepper drives a buffered-crossbar simulation one slot at a
// time, mirroring CIOQStepper: arrivals are supplied interactively and
// adaptive adversaries may inspect the live switch between slots.
type CrossbarStepper struct {
	cfg    Config
	pol    CrossbarPolicy
	sw     *Crossbar
	slot   int
	nextID int64
	done   bool
}

// NewCrossbarStepper creates a stepper for the policy.
func NewCrossbarStepper(cfg Config, pol CrossbarPolicy) (*CrossbarStepper, error) {
	if err := cfg.Check(true); err != nil {
		return nil, err
	}
	if cfg.RecordSeries {
		return nil, fmt.Errorf("switchsim: stepper does not support RecordSeries (unknown horizon)")
	}
	inDisc, crossDisc, outDisc := pol.Disciplines()
	sw := NewCrossbar(cfg, inDisc, crossDisc, outDisc)
	pol.Reset(cfg)
	return &CrossbarStepper{cfg: cfg, pol: pol, sw: sw}, nil
}

// Slot returns the index of the next slot to be simulated.
func (st *CrossbarStepper) Slot() int { return st.slot }

// Switch exposes the live switch state for adaptive callers.
func (st *CrossbarStepper) Switch() *Crossbar { return st.sw }

// Benefit returns the value transmitted so far.
func (st *CrossbarStepper) Benefit() int64 { return st.sw.M.Benefit }

// StepSlot runs one full time slot with the given arrivals (ports and
// values; Arrival and ID are assigned by the stepper).
func (st *CrossbarStepper) StepSlot(arrivals []packet.Packet) error {
	if st.done {
		return fmt.Errorf("switchsim: stepper already finished")
	}
	for _, p := range arrivals {
		p.Arrival = st.slot
		p.ID = st.nextID
		st.nextID++
		if p.In < 0 || p.In >= st.cfg.Inputs || p.Out < 0 || p.Out >= st.cfg.Outputs {
			return fmt.Errorf("switchsim: stepper arrival %v out of range", p)
		}
		if p.Value < 1 {
			return fmt.Errorf("switchsim: stepper arrival %v has value < 1", p)
		}
		if err := st.sw.admit(p, st.pol.Admit(st.sw, p)); err != nil {
			return err
		}
	}
	for cycle := 0; cycle < st.cfg.Speedup; cycle++ {
		if err := st.sw.executeInputSubphase(st.pol.InputSubphase(st.sw, st.slot, cycle)); err != nil {
			return err
		}
		if err := st.sw.executeOutputSubphase(st.pol.OutputSubphase(st.sw, st.slot, cycle)); err != nil {
			return err
		}
	}
	st.sw.transmit(st.slot)
	st.sw.sampleOccupancy()
	if st.cfg.Validate {
		if err := st.sw.checkInvariants(); err != nil {
			return fmt.Errorf("switchsim: slot %d: %w", st.slot, err)
		}
	}
	st.slot++
	return nil
}

// StepIdle advances the simulation across idleSlots slots with no
// arrivals: per-slot while input or crosspoint packets remain, then one
// closed-form jump for the rest once the switch is quiescent — any
// remaining backlog confined to the output queues (IdleAdvancer policies
// only); see CIOQStepper.StepIdle.
func (st *CrossbarStepper) StepIdle(idleSlots int) error {
	if st.done {
		return fmt.Errorf("switchsim: stepper already finished")
	}
	idle, canJump := st.pol.(IdleAdvancer)
	canJump = canJump && !st.cfg.Dense
	for idleSlots > 0 {
		if canJump && st.sw.inCount == 0 && st.sw.crossCount == 0 {
			st.sw.quiesce(st.slot-1, idleSlots)
			idle.IdleAdvance(idleSlots)
			st.slot += idleSlots
			if st.cfg.Validate {
				if err := st.sw.checkInvariants(); err != nil {
					return fmt.Errorf("switchsim: after quiescent jump to slot %d: %w", st.slot, err)
				}
			}
			return nil
		}
		if err := st.StepSlot(nil); err != nil {
			return err
		}
		idleSlots--
	}
	return nil
}

// Finish drains the backlog (bounded by maxDrain slots) and returns the
// final result, using the quiescent fast path once only output queues
// hold packets.
func (st *CrossbarStepper) Finish(maxDrain int) (*Result, error) {
	if st.done {
		return nil, fmt.Errorf("switchsim: stepper already finished")
	}
	_, canJump := st.pol.(IdleAdvancer)
	canJump = canJump && !st.cfg.Dense
	for d := 0; d < maxDrain && st.sw.QueuedPackets() > 0; {
		if canJump && st.sw.inCount == 0 && st.sw.crossCount == 0 {
			k := st.sw.OutputBacklog()
			if k > maxDrain-d {
				k = maxDrain - d
			}
			if err := st.StepIdle(k); err != nil {
				return nil, err
			}
			d += k
			continue
		}
		if err := st.StepSlot(nil); err != nil {
			return nil, err
		}
		d++
	}
	st.done = true
	if st.cfg.Validate {
		if err := st.sw.M.conservationCheck(st.sw.QueuedPackets()); err != nil {
			return nil, err
		}
	}
	return &Result{Policy: st.pol.Name(), Cfg: st.cfg, Slots: st.slot, M: st.sw.M}, nil
}
