package switchsim

import (
	"fmt"

	"qswitch/internal/packet"
)

// Streaming engines. RunCIOQStream and RunCrossbarStream are the
// event-driven engines' pull-based twins: instead of a materialized
// Sequence they consume a packet.ArrivalStream, admitting arrivals as the
// stream yields them and answering "when is the next arrival?" from the
// stream's head. Everything else — the speedup cycles, the transmit and
// occupancy sampling, the quiescent closed-form jumps, the IdleAdvancer
// contract — is the exact machinery of RunCIOQ/RunCrossbar, so a
// streaming run produces Metrics bit-identical to a materialized run of
// the same arrivals while holding only the stream's read-ahead window in
// memory.
//
// The sequence invariants a materialized run checks up front
// (Sequence.Validate) are enforced incrementally as packets are pulled,
// with identical error text, so an out-of-order or out-of-range stream
// fails the same way a bad sequence does.
//
// Horizon semantics match Config.HorizonFor: with Slots > 0 the run is
// truncated there (unconsumed stream packets are simply never pulled);
// with Slots == 0 the horizon is last arrival + 1 + packet count —
// discovered when the stream ends — which drains any backlog completely.
//
// Bounded memory holds for every metric except one: RecordSeries retains
// a per-slot series whose length is the horizon, so it is O(slots) by
// definition. For unbounded runs leave it off and use StreamMetrics to
// keep RecordLatency in constant memory too.

// streamCursor is the streaming counterpart of the engines' sequence
// cursor: it holds the stream's head packet and validates the sequence
// invariants incrementally.
type streamCursor struct {
	src             packet.ArrivalStream
	inputs, outputs int

	head packet.Packet
	ok   bool // head is valid; false after clean exhaustion

	count       int64 // packets pulled so far
	prevArrival int
	prevID      int64
}

func newStreamCursor(src packet.ArrivalStream, inputs, outputs int) (*streamCursor, error) {
	c := &streamCursor{src: src, inputs: inputs, outputs: outputs, prevID: -1}
	if err := c.pull(); err != nil {
		return nil, err
	}
	return c, nil
}

// pull loads the next packet into head, applying the same checks (and
// error text) as Sequence.Validate, indexed by the packet's position in
// the stream. A clean end of stream clears ok; a stream error fails the
// run.
func (c *streamCursor) pull() error {
	p, ok := c.src.Next()
	if !ok {
		c.ok = false
		if err := c.src.Err(); err != nil {
			return fmt.Errorf("switchsim: arrival stream: %w", err)
		}
		return nil
	}
	k := c.count
	switch {
	case p.Arrival < c.prevArrival:
		return fmt.Errorf("switchsim: bad sequence: packet %d: arrival %d before previous %d", k, p.Arrival, c.prevArrival)
	case p.ID <= c.prevID:
		return fmt.Errorf("switchsim: bad sequence: packet %d: id %d not ascending (prev %d)", k, p.ID, c.prevID)
	case p.In < 0 || p.In >= c.inputs:
		return fmt.Errorf("switchsim: bad sequence: packet %d: input port %d out of range [0,%d)", k, p.In, c.inputs)
	case p.Out < 0 || p.Out >= c.outputs:
		return fmt.Errorf("switchsim: bad sequence: packet %d: output port %d out of range [0,%d)", k, p.Out, c.outputs)
	case p.Value < 1:
		return fmt.Errorf("switchsim: bad sequence: packet %d: value %d < 1", k, p.Value)
	}
	c.prevArrival, c.prevID = p.Arrival, p.ID
	c.count++
	c.head, c.ok = p, true
	return nil
}

// finalHorizon is Sequence.Horizon computed from the cursor's running
// tallies: last arrival + 1 + count, at least 1. Only meaningful once the
// stream is exhausted.
func (c *streamCursor) finalHorizon() int {
	if c.count == 0 {
		return 1
	}
	h := int64(c.prevArrival) + 1 + c.count
	if h < 1 {
		return 1
	}
	return int(h)
}

// jumpTarget mirrors idleJump's bound: the slot the engine may fast-
// forward to after finishing `slot` — the earlier of the next arrival and
// the horizon. With the stream alive the head packet *is* the next
// arrival; exhausted, the target is the (now known, or configured)
// horizon.
func (c *streamCursor) jumpTarget(cfg Config) int {
	if c.ok {
		to := c.head.Arrival
		if cfg.Slots > 0 && cfg.Slots < to {
			to = cfg.Slots
		}
		return to
	}
	if cfg.Slots > 0 {
		return cfg.Slots
	}
	return c.finalHorizon()
}

// atHorizon reports whether the run is complete after `slot` slots have
// been simulated. With Slots == 0 and the stream still alive the answer
// is always no: the eventual horizon exceeds every pending arrival.
func (c *streamCursor) atHorizon(cfg Config, slot int) bool {
	if cfg.Slots > 0 {
		return slot >= cfg.Slots
	}
	return !c.ok && slot >= c.finalHorizon()
}

// growSeries extends the per-slot benefit series to n entries. The
// streaming engines cannot size it up front (the horizon may be unknown),
// so it grows as slots complete and is padded to the final horizon at the
// end, leaving exactly the series a materialized run allocates.
func growSeries(m *Metrics, n int) {
	if len(m.SlotBenefit) >= n {
		return
	}
	if cap(m.SlotBenefit) >= n {
		m.SlotBenefit = m.SlotBenefit[:n]
		return
	}
	grown := make([]int64, n, max(n, 2*cap(m.SlotBenefit)))
	copy(grown, m.SlotBenefit)
	m.SlotBenefit = grown
}

// RunCIOQStream simulates the policy on an arrival stream; see the
// package comments above for the equivalence contract with RunCIOQ.
func RunCIOQStream(cfg Config, pol CIOQPolicy, src packet.ArrivalStream) (*Result, error) {
	if err := cfg.Check(false); err != nil {
		return nil, err
	}
	cur, err := newStreamCursor(src, cfg.Inputs, cfg.Outputs)
	if err != nil {
		return nil, err
	}
	inDisc, outDisc := pol.Disciplines()
	sw := NewCIOQ(cfg, inDisc, outDisc)
	if cfg.RecordLatency && cfg.StreamMetrics {
		sw.M.EnableLatencySketch()
	}
	pol.Reset(cfg)
	var idle IdleAdvancer
	if !cfg.Dense {
		idle, _ = pol.(IdleAdvancer)
	}
	var probeJumped, probeJumps int64
	slot := 0
	for {
		for cur.ok && cur.head.Arrival == slot {
			p := cur.head
			if err := cur.pull(); err != nil {
				return nil, err
			}
			if err := sw.admit(p, pol.Admit(sw, p)); err != nil {
				return nil, err
			}
		}
		for cycle := 0; cycle < cfg.Speedup; cycle++ {
			if err := sw.executeTransfers(pol.Schedule(sw, slot, cycle)); err != nil {
				return nil, err
			}
		}
		if cfg.RecordSeries {
			growSeries(&sw.M, slot+1)
		}
		sw.transmit(slot)
		sw.sampleOccupancy()
		if cfg.Validate {
			if err := sw.checkInvariants(); err != nil {
				return nil, fmt.Errorf("switchsim: slot %d: %w", slot, err)
			}
		}
		if idle != nil && sw.inCount == 0 {
			if to := cur.jumpTarget(cfg); to > slot+1 {
				jump := to - (slot + 1)
				if cfg.RecordSeries {
					growSeries(&sw.M, to)
				}
				sw.quiesce(slot, jump)
				idle.IdleAdvance(jump)
				slot += jump
				probeJumps++
				probeJumped += int64(jump)
				if cfg.Validate {
					if err := sw.checkInvariants(); err != nil {
						return nil, fmt.Errorf("switchsim: after quiescent jump to slot %d: %w", slot, err)
					}
				}
			}
		}
		slot++
		if cur.atHorizon(cfg, slot) {
			break
		}
	}
	if cfg.Validate {
		if err := sw.M.conservationCheck(sw.QueuedPackets()); err != nil {
			return nil, err
		}
	}
	slots := cfg.Slots
	if slots <= 0 {
		slots = cur.finalHorizon()
	}
	if cfg.RecordSeries {
		growSeries(&sw.M, slots)
	}
	engineProbes.Load().RecordRun(int64(slots), probeJumped, probeJumps)
	return &Result{Policy: pol.Name(), Cfg: cfg, Slots: slots, M: sw.M}, nil
}

// RunCrossbarStream simulates a crossbar policy on an arrival stream; see
// the package comments above for the equivalence contract with
// RunCrossbar.
func RunCrossbarStream(cfg Config, pol CrossbarPolicy, src packet.ArrivalStream) (*Result, error) {
	if err := cfg.Check(true); err != nil {
		return nil, err
	}
	cur, err := newStreamCursor(src, cfg.Inputs, cfg.Outputs)
	if err != nil {
		return nil, err
	}
	inDisc, crossDisc, outDisc := pol.Disciplines()
	sw := NewCrossbar(cfg, inDisc, crossDisc, outDisc)
	if cfg.RecordLatency && cfg.StreamMetrics {
		sw.M.EnableLatencySketch()
	}
	pol.Reset(cfg)
	var idle IdleAdvancer
	if !cfg.Dense {
		idle, _ = pol.(IdleAdvancer)
	}
	var probeJumped, probeJumps int64
	slot := 0
	for {
		for cur.ok && cur.head.Arrival == slot {
			p := cur.head
			if err := cur.pull(); err != nil {
				return nil, err
			}
			if err := sw.admit(p, pol.Admit(sw, p)); err != nil {
				return nil, err
			}
		}
		for cycle := 0; cycle < cfg.Speedup; cycle++ {
			if err := sw.executeInputSubphase(pol.InputSubphase(sw, slot, cycle)); err != nil {
				return nil, err
			}
			if err := sw.executeOutputSubphase(pol.OutputSubphase(sw, slot, cycle)); err != nil {
				return nil, err
			}
		}
		if cfg.RecordSeries {
			growSeries(&sw.M, slot+1)
		}
		sw.transmit(slot)
		sw.sampleOccupancy()
		if cfg.Validate {
			if err := sw.checkInvariants(); err != nil {
				return nil, fmt.Errorf("switchsim: slot %d: %w", slot, err)
			}
		}
		if idle != nil && sw.inCount == 0 && sw.crossCount == 0 {
			if to := cur.jumpTarget(cfg); to > slot+1 {
				jump := to - (slot + 1)
				if cfg.RecordSeries {
					growSeries(&sw.M, to)
				}
				sw.quiesce(slot, jump)
				idle.IdleAdvance(jump)
				slot += jump
				probeJumps++
				probeJumped += int64(jump)
				if cfg.Validate {
					if err := sw.checkInvariants(); err != nil {
						return nil, fmt.Errorf("switchsim: after quiescent jump to slot %d: %w", slot, err)
					}
				}
			}
		}
		slot++
		if cur.atHorizon(cfg, slot) {
			break
		}
	}
	if cfg.Validate {
		if err := sw.M.conservationCheck(sw.QueuedPackets()); err != nil {
			return nil, err
		}
	}
	slots := cfg.Slots
	if slots <= 0 {
		slots = cur.finalHorizon()
	}
	if cfg.RecordSeries {
		growSeries(&sw.M, slots)
	}
	engineProbes.Load().RecordRun(int64(slots), probeJumped, probeJumps)
	return &Result{Policy: pol.Name(), Cfg: cfg, Slots: slots, M: sw.M}, nil
}
