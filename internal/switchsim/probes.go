package switchsim

import (
	"sync/atomic"

	"qswitch/internal/obs"
)

// engineProbes is the process-wide observability receiver for the run
// functions. Runs load it once at entry, accumulate in function-local
// integers, and flush once at a successful return — so the per-slot cost
// of probes is zero and a nil bundle degrades to one predictable branch
// per run.
var engineProbes atomic.Pointer[obs.EngineProbes]

// SetProbes installs (or, with nil, removes) the engine probe bundle.
// Probes only observe: results are bit-identical with probes on or off.
func SetProbes(p *obs.EngineProbes) { engineProbes.Store(p) }
