// Package switchsim implements slot- and phase-accurate simulators for the
// three switch architectures the paper discusses:
//
//   - CIOQ switches (input virtual-output queues + output queues),
//   - buffered crossbar switches (additional per-crosspoint queues), and
//   - an ideal output-queued (OQ) switch used as a reference point.
//
// Each time slot consists of an arrival phase, ŝ scheduling cycles
// (ŝ = speedup; each cycle transfers a *matching* of packets), and a
// transmission phase that sends at most one packet per output port.
// Scheduling decisions are delegated to policies (package internal/core);
// the engine owns the queues, enforces the physical constraints (matching
// property, buffer capacities, phase ordering) and collects metrics, so a
// buggy policy produces an error instead of silently cheating.
//
// # The occupancy index
//
// Every switch maintains bitmask summaries of its queue state (package
// internal/bitset) that the engine updates in O(1) at each push, pop and
// preemption: per-input masks of non-empty virtual output queues (and
// their transpose), masks of non-full and non-empty output queues, and —
// on the buffered crossbar — per-input masks of non-full crosspoint
// queues plus per-output masks of occupied crosspoints. Policies derive
// their eligibility graphs from word-wise ANDs of these masks (e.g.
// VOQ.Row(i) & OutFree enumerates GM's edges for input i), so a
// scheduling cycle costs time proportional to the number of occupied
// queues rather than Inputs×Outputs, and the transmission phase visits
// only non-empty outputs. In validation mode the engine re-derives the
// index from the queues each slot and fails loudly on any divergence.
//
// The engine never retains a policy's []Transfer slice across calls, so
// policies return reusable scratch buffers; together with the
// epoch-stamped matching-validation marks this keeps the steady-state
// scheduling path allocation-free.
//
// # Event-driven simulation
//
// With Config.EventDriven set, the engines exploit the occupancy index's
// global counters: whenever the switch holds no packets at the end of a
// slot, the remaining slots until the next arrival (the input sequence is
// sorted, so the lookup is O(1)) are skipped in a single jump instead of
// being simulated one by one. Slot-dependent policy state is advanced in
// closed form through the IdleAdvancer hook; policies that do not
// implement it are simulated densely, so results are bit-identical to a
// dense run either way — the differential and fuzz suites in
// internal/core assert this for every shipped policy. Sparse and bursty
// traces (the natural shape of adversarial sequences) simulate orders of
// magnitude faster this way.
package switchsim

import (
	"fmt"

	"qswitch/internal/packet"
)

// Config describes the switch geometry and the simulation horizon.
type Config struct {
	// Inputs and Outputs are the port counts (N and M). The paper focuses
	// on N = M but all results generalize to rectangular switches (§4).
	Inputs  int
	Outputs int

	// InputBuf is B(Q_ij), the capacity of each input-side virtual output
	// queue. OutputBuf is B(Q_j). CrossBuf is B(C_ij) and only used by the
	// buffered crossbar model.
	InputBuf  int
	OutputBuf int
	CrossBuf  int

	// Speedup ŝ is the number of scheduling cycles per time slot.
	Speedup int

	// Slots is the simulation horizon. Zero means "derive from the
	// sequence": last arrival + number of packets, enough to drain any
	// backlog completely.
	Slots int

	// Validate enables per-phase invariant checking (queue ordering and
	// capacities, conservation at the end). Simulations are ~2x slower
	// with it on; tests enable it everywhere.
	Validate bool

	// EventDriven enables the sparse-trace fast path: whenever the switch
	// is completely empty and the next arrival is known, the engine jumps
	// directly to the next arrival slot instead of simulating the idle
	// slots one by one. The jump is taken only for policies that implement
	// IdleAdvancer (so slot-dependent policy state advances in closed
	// form); other policies fall back to per-slot simulation, so metrics
	// are bit-identical to a dense run in every case.
	EventDriven bool

	// RecordSeries collects the per-slot transmitted value (for figures).
	RecordSeries bool

	// RecordLatency collects a latency histogram (slots between arrival
	// and transmission).
	RecordLatency bool
}

// Check validates the configuration, applying no defaults.
func (c Config) Check(needCross bool) error {
	if c.Inputs < 1 || c.Outputs < 1 {
		return fmt.Errorf("switchsim: need at least 1 input and 1 output, got %dx%d", c.Inputs, c.Outputs)
	}
	if c.InputBuf < 1 {
		return fmt.Errorf("switchsim: input buffer capacity %d < 1", c.InputBuf)
	}
	if c.OutputBuf < 1 {
		return fmt.Errorf("switchsim: output buffer capacity %d < 1", c.OutputBuf)
	}
	if needCross && c.CrossBuf < 1 {
		return fmt.Errorf("switchsim: crossbar buffer capacity %d < 1", c.CrossBuf)
	}
	if c.Speedup < 1 {
		return fmt.Errorf("switchsim: speedup %d < 1", c.Speedup)
	}
	if c.Slots < 0 {
		return fmt.Errorf("switchsim: negative slot count %d", c.Slots)
	}
	return nil
}

// HorizonFor resolves the number of slots to simulate for a sequence.
func (c Config) HorizonFor(seq packet.Sequence) int {
	if c.Slots > 0 {
		return c.Slots
	}
	return seq.Horizon()
}

// IdleAdvancer is the opt-in capability that lets the event-driven engine
// jump over runs of idle slots (empty switch, no arrivals due). A policy
// implementing it promises that IdleAdvance(k) leaves it in exactly the
// state it would reach after k further slots — each consisting of
// Config.Speedup scheduling cycles — on a completely empty switch, during
// which none of its Schedule/subphase calls would return a transfer.
//
// Policies whose per-cycle state changes only when packets move (pointer
// updates on acceptance, value comparisons, matchings over occupied
// queues) implement it as a no-op; policies with free-running per-cycle
// state (rotating scan offsets) advance it in closed form. Policies that
// cannot express their idle evolution in closed form simply do not
// implement the interface and are simulated slot by slot even under
// Config.EventDriven.
type IdleAdvancer interface {
	IdleAdvance(idleSlots int)
}

// AdmitAction is a policy's decision for an arriving packet.
type AdmitAction int

const (
	// Reject discards the arriving packet.
	Reject AdmitAction = iota
	// Accept enqueues the packet; it is a policy error if the target
	// queue is full.
	Accept
	// AcceptPreempt enqueues the packet, preempting the queue's tail
	// packet if the queue is full and the tail has strictly lower
	// priority; otherwise the arrival is rejected. This is the paper's
	// preemptive admission rule.
	AcceptPreempt
	// AcceptPreemptMin enqueues the packet, preempting the queue's
	// least-valuable packet (wherever it sits) if the queue is full and
	// strictly worse. Under ByValue queues it coincides with
	// AcceptPreempt; under FIFO queues it implements the preemption rule
	// of the FIFO buffer-management literature (packets depart in
	// arrival order, but any buffered packet may be dropped).
	AcceptPreemptMin
)

// Transfer instructs the engine to move the head packet of a source queue
// to its destination queue during a scheduling cycle (or subphase).
// For CIOQ: Q_{In,Out} -> Q_Out. For the crossbar input subphase:
// Q_{In,Out} -> C_{In,Out}; output subphase: C_{In,Out} -> Q_Out.
type Transfer struct {
	In, Out int
	// PreemptIfFull allows the transfer to preempt the destination
	// queue's tail if the destination is full and the moved packet has
	// strictly higher priority. Without it a transfer into a full queue
	// is a policy error.
	PreemptIfFull bool
	// PreemptMinIfFull is the FIFO-model variant: preempt the
	// destination queue's least-valuable packet instead of its tail.
	PreemptMinIfFull bool
}
