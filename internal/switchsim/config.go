package switchsim

import (
	"fmt"

	"qswitch/internal/packet"
)

// Config describes the switch geometry and the simulation horizon.
type Config struct {
	// Inputs and Outputs are the port counts (N and M). The paper focuses
	// on N = M but all results generalize to rectangular switches (§4).
	Inputs  int
	Outputs int

	// InputBuf is B(Q_ij), the capacity of each input-side virtual output
	// queue. OutputBuf is B(Q_j). CrossBuf is B(C_ij) and only used by the
	// buffered crossbar model.
	InputBuf  int
	OutputBuf int
	CrossBuf  int

	// Speedup ŝ is the number of scheduling cycles per time slot.
	Speedup int

	// Slots is the simulation horizon. Zero means "derive from the
	// sequence": last arrival + number of packets, enough to drain any
	// backlog completely.
	Slots int

	// Validate enables per-phase invariant checking (queue ordering and
	// capacities, conservation at the end). Simulations are ~2x slower
	// with it on; tests enable it everywhere.
	Validate bool

	// Dense opts OUT of the event-driven fast path and simulates every
	// slot one by one. By default (Dense == false) the engine jumps over
	// stretches it can resolve in closed form: fully idle gaps (empty
	// switch, next arrival known) and quiescent gaps (a backlog confined
	// to the output queues, which drains policy-independently — see the
	// package documentation). Jumps are taken only for policies that
	// implement IdleAdvancer (so slot-dependent policy state advances in
	// closed form); other policies are simulated densely regardless, so
	// metrics are bit-identical to a dense run in every case. Dense exists
	// as the differential-testing oracle and as an escape hatch for
	// profiling the per-slot path.
	Dense bool

	// RecordSeries collects the per-slot transmitted value (for figures).
	RecordSeries bool

	// RecordLatency collects a latency histogram (slots between arrival
	// and transmission).
	RecordLatency bool

	// StreamMetrics swaps the latency histogram for a constant-memory P²
	// quantile sketch (Metrics.LatencySketch), so RecordLatency stays
	// bounded on unbounded streaming runs. It changes only the latency
	// *representation* — sum, max and every other metric stay exact —
	// and it is honored identically by the materialized and streaming
	// engines, so differential runs still compare with DeepEqual.
	StreamMetrics bool
}

// Check validates the configuration, applying no defaults.
func (c Config) Check(needCross bool) error {
	if c.Inputs < 1 || c.Outputs < 1 {
		return fmt.Errorf("switchsim: need at least 1 input and 1 output, got %dx%d", c.Inputs, c.Outputs)
	}
	if c.InputBuf < 1 {
		return fmt.Errorf("switchsim: input buffer capacity %d < 1", c.InputBuf)
	}
	if c.OutputBuf < 1 {
		return fmt.Errorf("switchsim: output buffer capacity %d < 1", c.OutputBuf)
	}
	if needCross && c.CrossBuf < 1 {
		return fmt.Errorf("switchsim: crossbar buffer capacity %d < 1", c.CrossBuf)
	}
	if c.Speedup < 1 {
		return fmt.Errorf("switchsim: speedup %d < 1", c.Speedup)
	}
	if c.Slots < 0 {
		return fmt.Errorf("switchsim: negative slot count %d", c.Slots)
	}
	return nil
}

// HorizonFor resolves the number of slots to simulate for a sequence.
func (c Config) HorizonFor(seq packet.Sequence) int {
	if c.Slots > 0 {
		return c.Slots
	}
	return seq.Horizon()
}

// IdleAdvancer is the opt-in capability that lets the event-driven engine
// jump over runs of slots in which scheduling is provably a no-op: idle
// stretches (empty switch, no arrivals due) and quiescent stretches (a
// backlog confined to the output queues, draining one packet per output
// per slot with no eligible scheduling edges). A policy implementing it
// promises that IdleAdvance(k) leaves it in exactly the state it would
// reach after k further slots — each consisting of Config.Speedup
// scheduling cycles — during which the switch holds no input-side (and,
// on a crossbar, no crosspoint) packets and receives no arrivals, so none
// of its Schedule/subphase calls would return a transfer. Busy output
// queues may still be draining during those slots; a conforming policy's
// per-cycle state evolution must not depend on output-queue occupancy
// when it has no transfer to offer.
//
// Policies whose per-cycle state changes only when packets move (pointer
// updates on acceptance, value comparisons, matchings over occupied
// queues) implement it as a no-op; policies with free-running per-cycle
// state (rotating scan offsets) advance it in closed form. Policies that
// cannot express their idle evolution in closed form simply do not
// implement the interface and are simulated slot by slot even with
// Config.Dense unset.
type IdleAdvancer interface {
	IdleAdvance(idleSlots int)
}

// AdmitAction is a policy's decision for an arriving packet.
type AdmitAction int

const (
	// Reject discards the arriving packet.
	Reject AdmitAction = iota
	// Accept enqueues the packet; it is a policy error if the target
	// queue is full.
	Accept
	// AcceptPreempt enqueues the packet, preempting the queue's tail
	// packet if the queue is full and the tail has strictly lower
	// priority; otherwise the arrival is rejected. This is the paper's
	// preemptive admission rule.
	AcceptPreempt
	// AcceptPreemptMin enqueues the packet, preempting the queue's
	// least-valuable packet (wherever it sits) if the queue is full and
	// strictly worse. Under ByValue queues it coincides with
	// AcceptPreempt; under FIFO queues it implements the preemption rule
	// of the FIFO buffer-management literature (packets depart in
	// arrival order, but any buffered packet may be dropped).
	AcceptPreemptMin
)

// Transfer instructs the engine to move the head packet of a source queue
// to its destination queue during a scheduling cycle (or subphase).
// For CIOQ: Q_{In,Out} -> Q_Out. For the crossbar input subphase:
// Q_{In,Out} -> C_{In,Out}; output subphase: C_{In,Out} -> Q_Out.
type Transfer struct {
	In, Out int
	// PreemptIfFull allows the transfer to preempt the destination
	// queue's tail if the destination is full and the moved packet has
	// strictly higher priority. Without it a transfer into a full queue
	// is a policy error.
	PreemptIfFull bool
	// PreemptMinIfFull is the FIFO-model variant: preempt the
	// destination queue's least-valuable packet instead of its tail.
	PreemptMinIfFull bool
}
