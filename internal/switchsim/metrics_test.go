package switchsim

import (
	"testing"

	"qswitch/internal/packet"
)

func TestLatencyQuantile(t *testing.T) {
	var m Metrics
	if m.LatencyQuantile(0.5) != 0 {
		t.Error("empty metrics quantile != 0")
	}
	// Record latencies 0 (x5), 2 (x4), 10 (x1).
	for i := 0; i < 5; i++ {
		m.recordLatency(0)
	}
	for i := 0; i < 4; i++ {
		m.recordLatency(2)
	}
	m.recordLatency(10)
	m.Sent = 10
	tests := []struct {
		q    float64
		want int
	}{
		// Sorted latencies: 0,0,0,0,0,2,2,2,2,10 — index 4 is still 0.
		{0, 0}, {0.5, 0}, {0.6, 2}, {0.85, 2}, {1.0, 10},
		{-1, 0}, {2, 10}, // clamped
	}
	for _, tc := range tests {
		if got := m.LatencyQuantile(tc.q); got != tc.want {
			t.Errorf("LatencyQuantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if m.LatencyMax != 10 {
		t.Errorf("LatencyMax = %d", m.LatencyMax)
	}
}

func TestLatencyHistogramOverflowBucket(t *testing.T) {
	var m Metrics
	m.recordLatency(latencyBuckets + 50)
	if m.LatencyHist[latencyBuckets-1] != 1 {
		t.Error("overflow latency not clamped into top bucket")
	}
	if m.LatencyMax != latencyBuckets+50 {
		t.Errorf("true max lost: %d", m.LatencyMax)
	}
}

func TestOccupancyMeans(t *testing.T) {
	cfg := baseCfg()
	cfg.Slots = 4
	// One packet stuck behind a full output: occupancies are non-zero.
	seq := seqOf(
		packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 1},
		packet.Packet{Arrival: 0, In: 0, Out: 1, Value: 1},
		packet.Packet{Arrival: 0, In: 1, Out: 0, Value: 1},
	)
	res, err := RunCIOQ(cfg, &passPolicy{}, seq)
	if err != nil {
		t.Fatal(err)
	}
	if res.M.MeanInputOccupancy() < 0 || res.M.MeanOutputOccupancy() < 0 {
		t.Error("negative occupancy")
	}
	var empty Metrics
	if empty.MeanInputOccupancy() != 0 || empty.MeanOutputOccupancy() != 0 {
		t.Error("empty metrics occupancy != 0")
	}
	if empty.MeanLatency() != 0 || empty.LossRate() != 0 {
		t.Error("empty metrics latency/loss != 0")
	}
}

func TestZeroSlotResultHelpers(t *testing.T) {
	r := &Result{}
	if r.Throughput() != 0 || r.GoodputValue() != 0 {
		t.Error("zero-slot result helpers nonzero")
	}
}

func TestStepperSwitchAccessor(t *testing.T) {
	st, err := NewCIOQStepper(baseCfg(), &passPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Switch() == nil || st.Switch().Cfg.Inputs != 2 {
		t.Error("Switch() accessor broken")
	}
}

func TestCrossbarStepperFinishDrains(t *testing.T) {
	cfg := baseCfg()
	st, err := NewCrossbarStepper(cfg, &xbarPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Load two packets for the same output; only one can transmit per
	// slot, so Finish must run extra drain slots.
	if err := st.StepSlot([]packet.Packet{
		{In: 0, Out: 0, Value: 1},
		{In: 1, Out: 0, Value: 1},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := st.Finish(10)
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Sent != 2 {
		t.Errorf("sent %d, want 2 after drain", res.M.Sent)
	}
	if _, err := st.Finish(1); err == nil {
		t.Error("double finish accepted")
	}
}

func TestConservationCatchesBadAccounting(t *testing.T) {
	var m Metrics
	m.Arrived = 2
	m.Accepted = 2
	m.Sent = 1
	// residual 0, no preemptions: 2 != 1 -> violation.
	if err := m.conservationCheck(0); err == nil {
		t.Error("conservation violation not caught")
	}
	m.Arrived = 3 // arrived != accepted+rejected
	if err := m.conservationCheck(1); err == nil {
		t.Error("admission accounting violation not caught")
	}
}
