package switchsim

import (
	"fmt"
	"strings"

	"qswitch/internal/stats"
)

// Metrics aggregates everything observable about one simulation run.
// Counts are packets; *Value fields are summed packet values, so the
// unit-value case has Count == Value throughout.
type Metrics struct {
	Arrived      int64
	ArrivedValue int64

	Accepted      int64
	AcceptedValue int64
	Rejected      int64
	RejectedValue int64

	PreemptedInput       int64
	PreemptedInputValue  int64
	PreemptedCross       int64
	PreemptedCrossValue  int64
	PreemptedOutput      int64
	PreemptedOutputValue int64

	// Transferred counts input->output moves for CIOQ; for crossbars it
	// counts input-subphase moves and TransferredCross output-subphase
	// moves.
	Transferred      int64
	TransferredCross int64

	Sent    int64
	Benefit int64 // total transmitted value — the objective

	// Latency statistics (slots between arrival and transmission),
	// populated when Config.RecordLatency is set. With
	// Config.StreamMetrics the per-bucket histogram is replaced by
	// LatencySketch, a constant-memory P² quantile sketch; sum and max
	// stay exact either way.
	LatencySum    int64
	LatencyMax    int
	LatencyHist   []int64 // bucket k = packets with latency k (capped)
	LatencySketch *stats.QuantileSketch
	latencyCapHi  bool

	// SlotBenefit is the transmitted value per slot, populated when
	// Config.RecordSeries is set.
	SlotBenefit []int64

	// Occupancy integrals: summed queue lengths sampled at the end of
	// every slot, divided by slots for time-averages.
	InputOccupSum  int64
	CrossOccupSum  int64
	OutputOccupSum int64
	slotsSampled   int64
}

const latencyBuckets = 256

// sketchQuantiles are the latency quantiles a stream-metrics run tracks.
var sketchQuantiles = []float64{0.5, 0.9, 0.99}

// EnableLatencySketch switches latency recording from the per-bucket
// histogram to the constant-memory P² sketch. The engines call it when
// Config.StreamMetrics is set, before any latency is recorded; external
// engines reproducing Metrics bit-identically must do the same.
func (m *Metrics) EnableLatencySketch() {
	m.LatencySketch = stats.NewQuantileSketch(sketchQuantiles...)
}

func (m *Metrics) recordLatency(delay int) {
	m.LatencySum += int64(delay)
	if delay > m.LatencyMax {
		m.LatencyMax = delay
	}
	if m.LatencySketch != nil {
		m.LatencySketch.Add(float64(delay))
		return
	}
	if m.LatencyHist == nil {
		m.LatencyHist = make([]int64, latencyBuckets)
	}
	if delay >= latencyBuckets {
		delay = latencyBuckets - 1
		m.latencyCapHi = true
	}
	m.LatencyHist[delay]++
}

// RecordLatency records one transmission delay (slots between arrival and
// transmission), updating the sum, maximum and histogram exactly as the
// in-package engines do. It exists for external engines (internal/fleet)
// that must produce Metrics bit-identical to RunCIOQ/RunCrossbar.
func (m *Metrics) RecordLatency(delay int) { m.recordLatency(delay) }

// AddSlotSamples records k end-of-slot occupancy samples. The occupancy
// integrals (InputOccupSum etc.) are divided by this sample count to form
// time-averages; external engines accumulating the integrals themselves
// must add one sample per simulated slot, exactly as sampleOccupancy and
// quiesce do.
func (m *Metrics) AddSlotSamples(k int64) { m.slotsSampled += k }

// MeanLatency returns the average transmission delay in slots, or 0 when
// nothing was recorded.
func (m *Metrics) MeanLatency() float64 {
	if m.Sent == 0 {
		return 0
	}
	return float64(m.LatencySum) / float64(m.Sent)
}

// LatencyQuantile returns the q-th quantile (0..1) of the recorded
// latency distribution, in slots. Histogram-backed runs read the exact
// (range-capped) bucket counts: latencies beyond the histogram range are
// clamped to its top bucket (LatencyMax holds the true maximum).
// Sketch-backed runs (Config.StreamMetrics) answer from the P² markers,
// rounded to the nearest slot. Returns 0 when no latency was recorded.
func (m *Metrics) LatencyQuantile(q float64) int {
	if m.LatencySketch != nil {
		return int(m.LatencySketch.Query(q) + 0.5)
	}
	if m.LatencyHist == nil {
		return 0
	}
	var total int64
	for _, b := range m.LatencyHist {
		total += b
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(total-1))
	var seen int64
	for k, b := range m.LatencyHist {
		seen += b
		if b > 0 && seen > target {
			return k
		}
	}
	return len(m.LatencyHist) - 1
}

// LossRate returns the fraction of arrived packets never transmitted
// (rejected or preempted), by count.
func (m *Metrics) LossRate() float64 {
	if m.Arrived == 0 {
		return 0
	}
	return 1 - float64(m.Sent)/float64(m.Arrived)
}

// MeanInputOccupancy returns the time-averaged total number of packets in
// all input queues.
func (m *Metrics) MeanInputOccupancy() float64 {
	if m.slotsSampled == 0 {
		return 0
	}
	return float64(m.InputOccupSum) / float64(m.slotsSampled)
}

// MeanOutputOccupancy returns the time-averaged total number of packets in
// all output queues.
func (m *Metrics) MeanOutputOccupancy() float64 {
	if m.slotsSampled == 0 {
		return 0
	}
	return float64(m.OutputOccupSum) / float64(m.slotsSampled)
}

// Result is the outcome of one simulation run.
type Result struct {
	Policy string
	Cfg    Config
	Slots  int
	M      Metrics
}

// Throughput is transmitted packets per slot.
func (r *Result) Throughput() float64 {
	if r.Slots == 0 {
		return 0
	}
	return float64(r.M.Sent) / float64(r.Slots)
}

// GoodputValue is transmitted value per slot.
func (r *Result) GoodputValue() float64 {
	if r.Slots == 0 {
		return 0
	}
	return float64(r.M.Benefit) / float64(r.Slots)
}

// String renders a one-line summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: benefit=%d sent=%d/%d arrived (%.1f%% loss)",
		r.Policy, r.M.Benefit, r.M.Sent, r.M.Arrived, 100*r.M.LossRate())
	if r.M.PreemptedInput+r.M.PreemptedCross+r.M.PreemptedOutput > 0 {
		fmt.Fprintf(&b, " preempt(in=%d,x=%d,out=%d)",
			r.M.PreemptedInput, r.M.PreemptedCross, r.M.PreemptedOutput)
	}
	return b.String()
}

// conservationCheck verifies that every accepted packet is accounted for:
// accepted = sent + preempted (all stages) + still queued.
func (m *Metrics) conservationCheck(residual int64) error {
	preempted := m.PreemptedInput + m.PreemptedCross + m.PreemptedOutput
	if m.Accepted != m.Sent+preempted+residual {
		return fmt.Errorf("switchsim: conservation violated: accepted=%d sent=%d preempted=%d residual=%d",
			m.Accepted, m.Sent, preempted, residual)
	}
	if m.Arrived != m.Accepted+m.Rejected {
		return fmt.Errorf("switchsim: admission accounting violated: arrived=%d accepted=%d rejected=%d",
			m.Arrived, m.Accepted, m.Rejected)
	}
	return nil
}
