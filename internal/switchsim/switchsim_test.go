package switchsim

import (
	"strings"
	"testing"

	"qswitch/internal/packet"
	"qswitch/internal/queue"
)

// passPolicy is a minimal well-behaved CIOQ policy: accept when possible,
// transfer row-major first-fit.
type passPolicy struct {
	cfg     Config
	admit   func(sw *CIOQ, p packet.Packet) AdmitAction
	sched   func(sw *CIOQ, slot, cycle int) []Transfer
	inDisc  queue.Discipline
	outDisc queue.Discipline
}

func (s *passPolicy) Name() string { return "test-pass" }
func (s *passPolicy) Disciplines() (queue.Discipline, queue.Discipline) {
	return s.inDisc, s.outDisc
}
func (s *passPolicy) Reset(cfg Config) { s.cfg = cfg }
func (s *passPolicy) Admit(sw *CIOQ, p packet.Packet) AdmitAction {
	if s.admit != nil {
		return s.admit(sw, p)
	}
	if sw.IQ[p.In][p.Out].Full() {
		return Reject
	}
	return Accept
}
func (s *passPolicy) Schedule(sw *CIOQ, slot, cycle int) []Transfer {
	if s.sched != nil {
		return s.sched(sw, slot, cycle)
	}
	usedOut := make([]bool, s.cfg.Outputs)
	var out []Transfer
	for i := 0; i < s.cfg.Inputs; i++ {
		for j := 0; j < s.cfg.Outputs; j++ {
			if !usedOut[j] && !sw.IQ[i][j].Empty() && !sw.OQ[j].Full() {
				usedOut[j] = true
				out = append(out, Transfer{In: i, Out: j})
				break
			}
		}
	}
	return out
}

func baseCfg() Config {
	return Config{
		Inputs: 2, Outputs: 2,
		InputBuf: 2, OutputBuf: 2, CrossBuf: 2,
		Speedup: 1, Validate: true,
	}
}

func seqOf(ps ...packet.Packet) packet.Sequence {
	return packet.Sequence(ps).Normalize()
}

func TestConfigCheck(t *testing.T) {
	good := baseCfg()
	if err := good.Check(true); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bads := []Config{
		{Inputs: 0, Outputs: 1, InputBuf: 1, OutputBuf: 1, Speedup: 1},
		{Inputs: 1, Outputs: 0, InputBuf: 1, OutputBuf: 1, Speedup: 1},
		{Inputs: 1, Outputs: 1, InputBuf: 0, OutputBuf: 1, Speedup: 1},
		{Inputs: 1, Outputs: 1, InputBuf: 1, OutputBuf: 0, Speedup: 1},
		{Inputs: 1, Outputs: 1, InputBuf: 1, OutputBuf: 1, Speedup: 0},
		{Inputs: 1, Outputs: 1, InputBuf: 1, OutputBuf: 1, Speedup: 1, Slots: -1},
	}
	for k, c := range bads {
		if err := c.Check(false); err == nil {
			t.Errorf("bad config %d accepted", k)
		}
	}
	noCross := baseCfg()
	noCross.CrossBuf = 0
	if err := noCross.Check(false); err != nil {
		t.Errorf("CIOQ config with CrossBuf=0 rejected: %v", err)
	}
	if err := noCross.Check(true); err == nil {
		t.Error("crossbar config with CrossBuf=0 accepted")
	}
}

func TestSimpleFlowThrough(t *testing.T) {
	cfg := baseCfg()
	seq := seqOf(
		packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 1},
		packet.Packet{Arrival: 0, In: 1, Out: 1, Value: 1},
	)
	res, err := RunCIOQ(cfg, &passPolicy{}, seq)
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Sent != 2 || res.M.Benefit != 2 {
		t.Errorf("sent=%d benefit=%d, want 2,2", res.M.Sent, res.M.Benefit)
	}
	if res.M.Rejected != 0 || res.M.PreemptedInput != 0 {
		t.Error("unexpected losses on an uncontended run")
	}
}

func TestPacketDrainsWithinHorizon(t *testing.T) {
	cfg := baseCfg()
	// 8 packets all to output 0: horizon auto-extends so all survivors
	// drain; capacity allows 2 (per input queue) * 2 inputs + ... with
	// output buffer 2. Conservation is validated internally.
	var ps []packet.Packet
	for k := 0; k < 8; k++ {
		ps = append(ps, packet.Packet{Arrival: 0, In: k % 2, Out: 0, Value: 1})
	}
	res, err := RunCIOQ(cfg, &passPolicy{}, seqOf(ps...))
	if err != nil {
		t.Fatal(err)
	}
	// 2 inputs x InputBuf 2 = 4 accepted at slot 0, rest rejected.
	if res.M.Accepted != 4 || res.M.Rejected != 4 {
		t.Errorf("accepted=%d rejected=%d, want 4,4", res.M.Accepted, res.M.Rejected)
	}
	if res.M.Sent != 4 {
		t.Errorf("sent=%d, want all 4 accepted packets drained", res.M.Sent)
	}
}

func TestMatchingViolationsRejected(t *testing.T) {
	cfg := baseCfg()
	seq := seqOf(
		packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 1},
		packet.Packet{Arrival: 0, In: 0, Out: 1, Value: 1},
		packet.Packet{Arrival: 0, In: 1, Out: 0, Value: 1},
	)
	tests := []struct {
		name string
		bad  func(sw *CIOQ, slot, cycle int) []Transfer
		want string
	}{
		{
			"two from same input",
			func(sw *CIOQ, slot, cycle int) []Transfer {
				if slot == 0 {
					return []Transfer{{In: 0, Out: 0}, {In: 0, Out: 1}}
				}
				return nil
			},
			"two transfers from input",
		},
		{
			"two to same output",
			func(sw *CIOQ, slot, cycle int) []Transfer {
				if slot == 0 {
					return []Transfer{{In: 0, Out: 0}, {In: 1, Out: 0}}
				}
				return nil
			},
			"two transfers to output",
		},
		{
			"transfer from empty queue",
			func(sw *CIOQ, slot, cycle int) []Transfer {
				return []Transfer{{In: 1, Out: 1}}
			},
			"empty",
		},
		{
			"out of range",
			func(sw *CIOQ, slot, cycle int) []Transfer {
				return []Transfer{{In: 7, Out: 0}}
			},
			"out of range",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := RunCIOQ(cfg, &passPolicy{sched: tc.bad}, seq)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestOverfullTransferRejected(t *testing.T) {
	cfg := baseCfg()
	cfg.OutputBuf = 1
	// Two packets to output 0 from different inputs; a bad policy tries
	// to push both in successive cycles while one is still queued and
	// another transmitted... force it directly: transfer into an output
	// queue that is kept full by a third packet.
	seq := seqOf(
		packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 1},
		packet.Packet{Arrival: 1, In: 1, Out: 0, Value: 1},
		packet.Packet{Arrival: 1, In: 0, Out: 0, Value: 1},
	)
	cfg.Speedup = 2
	bad := func(sw *CIOQ, slot, cycle int) []Transfer {
		if slot == 1 {
			// Output 0 still holds the slot-0 packet only if the
			// engine did not transmit yet... instead fill it in
			// cycle 0 and violate in cycle 1.
			if cycle == 0 {
				return []Transfer{{In: 0, Out: 0}}
			}
			return []Transfer{{In: 1, Out: 0}}
		}
		return nil
	}
	_, err := RunCIOQ(cfg, &passPolicy{sched: bad}, seq)
	if err == nil || !strings.Contains(err.Error(), "full") {
		t.Errorf("err = %v, want full-queue violation", err)
	}
}

func TestAcceptIntoFullQueueRejected(t *testing.T) {
	cfg := baseCfg()
	cfg.InputBuf = 1
	seq := seqOf(
		packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 1},
		packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 1},
	)
	alwaysAccept := func(sw *CIOQ, p packet.Packet) AdmitAction { return Accept }
	_, err := RunCIOQ(cfg, &passPolicy{admit: alwaysAccept, sched: func(*CIOQ, int, int) []Transfer { return nil }}, seq)
	if err == nil || !strings.Contains(err.Error(), "full") {
		t.Errorf("err = %v, want full-queue admission error", err)
	}
}

func TestAcceptPreemptAccounting(t *testing.T) {
	cfg := baseCfg()
	cfg.InputBuf = 1
	seq := seqOf(
		packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 2},
		packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 5},
		packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 1},
	)
	pol := &passPolicy{
		admit:   func(sw *CIOQ, p packet.Packet) AdmitAction { return AcceptPreempt },
		inDisc:  queue.ByValue,
		outDisc: queue.ByValue,
	}
	res, err := RunCIOQ(cfg, pol, seq)
	if err != nil {
		t.Fatal(err)
	}
	// v=2 accepted, v=5 preempts it, v=1 rejected.
	if res.M.Accepted != 2 || res.M.Rejected != 1 || res.M.PreemptedInput != 1 {
		t.Errorf("acc=%d rej=%d pre=%d, want 2,1,1", res.M.Accepted, res.M.Rejected, res.M.PreemptedInput)
	}
	if res.M.Benefit != 5 {
		t.Errorf("benefit=%d, want 5", res.M.Benefit)
	}
}

func TestSpeedupMovesMorePackets(t *testing.T) {
	// One input feeding two outputs at 2 packets/slot: with speedup 1
	// the fabric is the bottleneck (1 transfer/slot, one output always
	// starves); with speedup 2 both outputs stay busy. Truncate the
	// horizon so the backlog cannot drain after arrivals stop.
	const slots = 8
	mk := func(speedup int) *Result {
		cfg := Config{Inputs: 1, Outputs: 2, InputBuf: 2, OutputBuf: 2,
			Speedup: speedup, Slots: slots, Validate: true}
		var ps []packet.Packet
		for k := 0; k < slots; k++ {
			ps = append(ps, packet.Packet{Arrival: k, In: 0, Out: 0, Value: 1})
			ps = append(ps, packet.Packet{Arrival: k, In: 0, Out: 1, Value: 1})
		}
		res, err := RunCIOQ(cfg, &passPolicy{}, seqOf(ps...))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	s1, s2 := mk(1), mk(2)
	if s2.M.Sent <= s1.M.Sent {
		t.Errorf("speedup 2 sent %d, not more than speedup 1's %d", s2.M.Sent, s1.M.Sent)
	}
	if s2.M.Sent < int64(2*slots-4) {
		t.Errorf("speedup 2 sent only %d of %d offered", s2.M.Sent, 2*slots)
	}
}

func TestRecordSeriesSumsToBenefit(t *testing.T) {
	cfg := baseCfg()
	cfg.RecordSeries = true
	seq := seqOf(
		packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 3},
		packet.Packet{Arrival: 1, In: 1, Out: 1, Value: 4},
	)
	res, err := RunCIOQ(cfg, &passPolicy{}, seq)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, v := range res.M.SlotBenefit {
		sum += v
	}
	if sum != res.M.Benefit {
		t.Errorf("series sum %d != benefit %d", sum, res.M.Benefit)
	}
}

func TestBadSequenceRejected(t *testing.T) {
	cfg := baseCfg()
	seq := packet.Sequence{{ID: 0, In: 5, Out: 0, Value: 1}}
	if _, err := RunCIOQ(cfg, &passPolicy{}, seq); err == nil {
		t.Error("invalid sequence accepted")
	}
	if _, err := RunOQ(cfg, seq); err == nil {
		t.Error("RunOQ accepted invalid sequence")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{Policy: "x", Slots: 10}
	r.M.Sent = 5
	r.M.Benefit = 20
	r.M.Arrived = 10
	if r.Throughput() != 0.5 {
		t.Errorf("throughput %f", r.Throughput())
	}
	if r.GoodputValue() != 2.0 {
		t.Errorf("goodput %f", r.GoodputValue())
	}
	if r.M.LossRate() != 0.5 {
		t.Errorf("loss %f", r.M.LossRate())
	}
	if !strings.Contains(r.String(), "benefit=20") {
		t.Errorf("String() = %q", r.String())
	}
}

func TestOQGreedyReference(t *testing.T) {
	cfg := baseCfg()
	cfg.OutputBuf = 1
	seq := seqOf(
		packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 1},
		packet.Packet{Arrival: 0, In: 1, Out: 0, Value: 9},
		packet.Packet{Arrival: 0, In: 0, Out: 1, Value: 2},
	)
	res, err := RunOQ(cfg, seq)
	if err != nil {
		t.Fatal(err)
	}
	// Output 0 keeps only the 9 (preempting the 1); output 1 keeps the 2.
	if res.M.Benefit != 11 {
		t.Errorf("benefit %d, want 11", res.M.Benefit)
	}
	if res.M.PreemptedOutput != 1 {
		t.Errorf("preempted %d, want 1", res.M.PreemptedOutput)
	}
}

func TestLatencyHistogram(t *testing.T) {
	cfg := baseCfg()
	cfg.RecordLatency = true
	seq := seqOf(
		packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 1},
		packet.Packet{Arrival: 0, In: 0, Out: 0, Value: 1},
	)
	res, err := RunCIOQ(cfg, &passPolicy{}, seq)
	if err != nil {
		t.Fatal(err)
	}
	if res.M.LatencyHist == nil {
		t.Fatal("no histogram recorded")
	}
	var total int64
	for _, b := range res.M.LatencyHist {
		total += b
	}
	if total != res.M.Sent {
		t.Errorf("histogram total %d != sent %d", total, res.M.Sent)
	}
	if res.M.MeanLatency() <= 0 {
		t.Errorf("mean latency %f, want > 0 (second packet waits)", res.M.MeanLatency())
	}
}
