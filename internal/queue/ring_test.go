package queue

import (
	"math/rand"
	"reflect"
	"testing"

	"qswitch/internal/packet"
)

// sliceModel reimplements the queue on a plain slice, exactly as the
// pre-ring-buffer version did. It is the semantic reference for the
// property test below: any divergence between it and the ring buffer is
// a bug in the ring arithmetic.
type sliceModel struct {
	capacity int
	disc     Discipline
	items    []packet.Packet
}

func (m *sliceModel) full() bool { return len(m.items) >= m.capacity }

func (m *sliceModel) insert(p packet.Packet) {
	if m.disc == FIFO {
		m.items = append(m.items, p)
		return
	}
	lo, hi := 0, len(m.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if packet.Less(m.items[mid], p) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	m.items = append(m.items, packet.Packet{})
	copy(m.items[lo+1:], m.items[lo:])
	m.items[lo] = p
}

func (m *sliceModel) push(p packet.Packet) bool {
	if m.full() {
		return false
	}
	m.insert(p)
	return true
}

func (m *sliceModel) pushPreempt(p packet.Packet) (packet.Packet, bool, bool) {
	if !m.full() {
		m.insert(p)
		return packet.Packet{}, false, true
	}
	tail := m.items[len(m.items)-1]
	if tail.Value >= p.Value {
		return packet.Packet{}, false, false
	}
	m.items = m.items[:len(m.items)-1]
	m.insert(p)
	return tail, true, true
}

func (m *sliceModel) minValue() (packet.Packet, bool) {
	if len(m.items) == 0 {
		return packet.Packet{}, false
	}
	best := 0
	for k := 1; k < len(m.items); k++ {
		if packet.Less(m.items[best], m.items[k]) {
			best = k
		}
	}
	return m.items[best], true
}

func (m *sliceModel) pushPreemptMin(p packet.Packet) (packet.Packet, bool, bool) {
	if !m.full() {
		m.insert(p)
		return packet.Packet{}, false, true
	}
	min, _ := m.minValue()
	if min.Value >= p.Value {
		return packet.Packet{}, false, false
	}
	for k := range m.items {
		if m.items[k].ID == min.ID {
			copy(m.items[k:], m.items[k+1:])
			m.items = m.items[:len(m.items)-1]
			break
		}
	}
	m.insert(p)
	return min, true, true
}

func (m *sliceModel) popHead() (packet.Packet, bool) {
	if len(m.items) == 0 {
		return packet.Packet{}, false
	}
	p := m.items[0]
	m.items = m.items[1:]
	return p, true
}

func (m *sliceModel) popTail() (packet.Packet, bool) {
	if len(m.items) == 0 {
		return packet.Packet{}, false
	}
	p := m.items[len(m.items)-1]
	m.items = m.items[:len(m.items)-1]
	return p, true
}

// TestRingMatchesSliceSemantics drives long random push/pop/preempt
// sequences through the ring-buffer queue and the slice model in
// lockstep, comparing every return value and the full contents after
// each step. Capacities above 64 exercise the ring's growth path; small
// ones exercise wrap-around.
func TestRingMatchesSliceSemantics(t *testing.T) {
	for _, disc := range []Discipline{FIFO, ByValue} {
		for _, capacity := range []int{1, 2, 3, 7, 16, 100} {
			rng := rand.New(rand.NewSource(int64(capacity)*2 + int64(disc)))
			q := New(capacity, disc)
			m := &sliceModel{capacity: capacity, disc: disc}
			var nextID int64
			for step := 0; step < 5000; step++ {
				switch rng.Intn(6) {
				case 0, 1:
					p := packet.Packet{ID: nextID, Value: rng.Int63n(20) + 1}
					nextID++
					gotErr := q.Push(p)
					want := m.push(p)
					if (gotErr == nil) != want {
						t.Fatalf("%v cap=%d step %d: Push accepted=%v want %v", disc, capacity, step, gotErr == nil, want)
					}
				case 2:
					p := packet.Packet{ID: nextID, Value: rng.Int63n(20) + 1}
					nextID++
					gv, gd, ga := q.PushPreempt(p)
					wv, wd, wa := m.pushPreempt(p)
					if gv != wv || gd != wd || ga != wa {
						t.Fatalf("%v cap=%d step %d: PushPreempt (%v,%v,%v) want (%v,%v,%v)", disc, capacity, step, gv, gd, ga, wv, wd, wa)
					}
				case 3:
					p := packet.Packet{ID: nextID, Value: rng.Int63n(20) + 1}
					nextID++
					gv, gd, ga := q.PushPreemptMin(p)
					wv, wd, wa := m.pushPreemptMin(p)
					if gv != wv || gd != wd || ga != wa {
						t.Fatalf("%v cap=%d step %d: PushPreemptMin (%v,%v,%v) want (%v,%v,%v)", disc, capacity, step, gv, gd, ga, wv, wd, wa)
					}
				case 4:
					gp, gok := q.PopHead()
					wp, wok := m.popHead()
					if gp != wp || gok != wok {
						t.Fatalf("%v cap=%d step %d: PopHead (%v,%v) want (%v,%v)", disc, capacity, step, gp, gok, wp, wok)
					}
				case 5:
					gp, gok := q.PopTail()
					wp, wok := m.popTail()
					if gp != wp || gok != wok {
						t.Fatalf("%v cap=%d step %d: PopTail (%v,%v) want (%v,%v)", disc, capacity, step, gp, gok, wp, wok)
					}
				}
				if q.Len() != len(m.items) {
					t.Fatalf("%v cap=%d step %d: Len=%d want %d", disc, capacity, step, q.Len(), len(m.items))
				}
				snap := q.Snapshot()
				if len(snap) == 0 && len(m.items) == 0 {
					// reflect.DeepEqual distinguishes nil from empty.
				} else if !reflect.DeepEqual(snap, m.items) {
					t.Fatalf("%v cap=%d step %d: contents %v want %v", disc, capacity, step, snap, m.items)
				}
				if gm, gok := q.MinValue(); true {
					wm, wok := m.minValue()
					if gm != wm || gok != wok {
						t.Fatalf("%v cap=%d step %d: MinValue (%v,%v) want (%v,%v)", disc, capacity, step, gm, gok, wm, wok)
					}
				}
				if gh, gok := q.Head(); true {
					var wh packet.Packet
					wok2 := len(m.items) > 0
					if wok2 {
						wh = m.items[0]
					}
					if gh != wh || gok != wok2 {
						t.Fatalf("%v cap=%d step %d: Head mismatch", disc, capacity, step)
					}
				}
				if gt, gok := q.Tail(); true {
					var wt packet.Packet
					wok2 := len(m.items) > 0
					if wok2 {
						wt = m.items[len(m.items)-1]
					}
					if gt != wt || gok != wok2 {
						t.Fatalf("%v cap=%d step %d: Tail mismatch", disc, capacity, step)
					}
				}
				if err := q.CheckInvariants(); err != nil {
					t.Fatalf("%v cap=%d step %d: %v", disc, capacity, step, err)
				}
			}
		}
	}
}

// TestRingSteadyStateAllocs: once a queue has reached its high-water
// occupancy, further churn must not allocate (the simulator's hot path
// depends on this).
func TestRingSteadyStateAllocs(t *testing.T) {
	for _, disc := range []Discipline{FIFO, ByValue} {
		q := New(16, disc)
		var id int64
		for k := 0; k < 16; k++ {
			q.Push(packet.Packet{ID: id, Value: id%7 + 1})
			id++
		}
		allocs := testing.AllocsPerRun(200, func() {
			q.PopHead()
			q.PushPreemptMin(packet.Packet{ID: id, Value: id%7 + 1})
			id++
			q.PopTail()
			q.Push(packet.Packet{ID: id, Value: id%5 + 1})
			id++
		})
		if allocs != 0 {
			t.Errorf("%v: %v allocs per steady-state op batch, want 0", disc, allocs)
		}
	}
}
