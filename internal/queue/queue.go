// Package queue implements the capacity-bounded, non-FIFO packet queues
// used at the input, crosspoint and output ports of the simulated switches.
//
// The paper's model stores packets in arbitrary order ("non-FIFO queues"),
// and its weighted algorithms always act on the extremes: they transfer or
// transmit the most valuable packet and preempt the least valuable one.
// A queue therefore maintains its packets in the canonical priority order
// (value descending, ties broken by packet ID ascending — the paper's
// Assumption A3 of consistent tie-breaking), giving O(1) access to both the
// head (greatest value) and the tail (least value). A FIFO discipline is
// also provided for the unit-value algorithms, where arrival order is the
// natural (and equivalent) choice.
//
// Storage is a power-of-two ring buffer indexed from a moving head, so the
// simulator's hot operations — PopHead in the transfer and transmission
// phases, Push/PopTail at the extremes — are O(1) with no data movement,
// and a priority insertion shifts whichever side of the ring is shorter.
// Queues never allocate after reaching their high-water occupancy.
package queue

import (
	"errors"
	"fmt"

	"qswitch/internal/packet"
)

// Discipline selects the internal ordering of a queue.
type Discipline int

const (
	// FIFO keeps packets in insertion order; Head is the oldest packet.
	FIFO Discipline = iota
	// ByValue keeps packets sorted by (value desc, ID asc); Head is the
	// most valuable packet and Tail the least valuable.
	ByValue
)

// String implements fmt.Stringer.
func (d Discipline) String() string {
	switch d {
	case FIFO:
		return "fifo"
	case ByValue:
		return "byvalue"
	default:
		return fmt.Sprintf("discipline(%d)", int(d))
	}
}

// ErrFull is returned by Push when the queue is at capacity.
var ErrFull = errors.New("queue: full")

// Queue is a bounded packet buffer. The zero value is not usable; use New.
type Queue struct {
	capacity int
	disc     Discipline
	buf      []packet.Packet // ring storage; len(buf) is a power of two
	head     int             // ring index of queue position 0
	n        int             // packets stored
}

// New returns an empty queue with the given capacity and discipline.
// Capacity must be at least 1.
func New(capacity int, d Discipline) *Queue {
	if capacity < 1 {
		panic(fmt.Sprintf("queue: capacity must be >= 1, got %d", capacity))
	}
	return &Queue{capacity: capacity, disc: d, buf: make([]packet.Packet, ceilPow2(min(capacity, 64)))}
}

// NewBatch returns k independent queues of the given capacity and
// discipline whose headers and ring storage share two allocations. The
// switch simulators use it to build their Inputs×Outputs queue grids
// without thousands of small allocations; a queue that later outgrows
// its ring slice (capacity > 64 only) detaches onto its own storage.
func NewBatch(k, capacity int, d Discipline) []Queue {
	if capacity < 1 {
		panic(fmt.Sprintf("queue: capacity must be >= 1, got %d", capacity))
	}
	ring := ceilPow2(min(capacity, 64))
	backing := make([]packet.Packet, k*ring)
	qs := make([]Queue, k)
	for i := range qs {
		qs[i] = Queue{capacity: capacity, disc: d, buf: backing[i*ring : (i+1)*ring : (i+1)*ring]}
	}
	return qs
}

// Cap returns the queue capacity B(Q).
func (q *Queue) Cap() int { return q.capacity }

// Len returns the number of packets currently stored.
func (q *Queue) Len() int { return q.n }

// Empty reports whether the queue holds no packets.
func (q *Queue) Empty() bool { return q.n == 0 }

// Full reports whether the queue is at capacity.
func (q *Queue) Full() bool { return q.n >= q.capacity }

// Discipline returns the queue's ordering discipline.
func (q *Queue) Discipline() Discipline { return q.disc }

// idx maps queue position k (0 = head) to a ring index.
func (q *Queue) idx(k int) int { return (q.head + k) & (len(q.buf) - 1) }

// Head returns the packet at the queue's head without removing it:
// the oldest packet under FIFO, the most valuable under ByValue.
func (q *Queue) Head() (packet.Packet, bool) {
	if q.n == 0 {
		return packet.Packet{}, false
	}
	return q.buf[q.head], true
}

// Tail returns the packet at the queue's tail without removing it:
// the newest packet under FIFO, the least valuable under ByValue.
func (q *Queue) Tail() (packet.Packet, bool) {
	if q.n == 0 {
		return packet.Packet{}, false
	}
	return q.buf[q.idx(q.n-1)], true
}

// At returns the packet at position k (0-based; position 0 is the head).
func (q *Queue) At(k int) packet.Packet {
	if k < 0 || k >= q.n {
		panic(fmt.Sprintf("queue: At(%d) out of range [0,%d)", k, q.n))
	}
	return q.buf[q.idx(k)]
}

// Push inserts p, returning ErrFull if there is no room. Under ByValue the
// packet is placed at its priority position; under FIFO it is appended.
func (q *Queue) Push(p packet.Packet) error {
	if q.Full() {
		return ErrFull
	}
	q.insert(p)
	return nil
}

// PushPreempt inserts p, preempting the tail packet if the queue is full
// and the tail is strictly worse than p (under ByValue ordering: lower
// value, or equal value and higher ID). It implements the paper's
// preemptive admission rule "accept p if |Q| < B or v(l) < v(p)".
//
// The returned status reports whether p was accepted and, if a packet was
// preempted to make room, which one.
func (q *Queue) PushPreempt(p packet.Packet) (preempted packet.Packet, didPreempt, accepted bool) {
	if !q.Full() {
		q.insert(p)
		return packet.Packet{}, false, true
	}
	tail := q.buf[q.idx(q.n-1)]
	// Strict value comparison per the paper: equal-value packets do not
	// preempt each other.
	if tail.Value >= p.Value {
		return packet.Packet{}, false, false
	}
	q.n--
	q.insert(p)
	return tail, true, true
}

// MinValue returns the packet with the least value in the queue (ties by
// highest ID, i.e. the one the canonical order ranks last). Under ByValue
// this is the tail in O(1); under FIFO it scans.
func (q *Queue) MinValue() (packet.Packet, bool) {
	if q.n == 0 {
		return packet.Packet{}, false
	}
	if q.disc == ByValue {
		return q.buf[q.idx(q.n-1)], true
	}
	best := q.buf[q.head]
	for k := 1; k < q.n; k++ {
		if p := q.buf[q.idx(k)]; packet.Less(best, p) {
			best = p
		}
	}
	return best, true
}

// PushPreemptMin inserts p, preempting the queue's LEAST-VALUABLE packet
// (wherever it sits) if the queue is full and that packet is strictly
// worse than p. Under ByValue it coincides with PushPreempt; under FIFO
// it implements the preemption rule of the FIFO buffer-management
// literature, where packets depart in arrival order but any buffered
// packet may be dropped.
func (q *Queue) PushPreemptMin(p packet.Packet) (preempted packet.Packet, didPreempt, accepted bool) {
	if !q.Full() {
		q.insert(p)
		return packet.Packet{}, false, true
	}
	min, _ := q.MinValue()
	if min.Value >= p.Value {
		return packet.Packet{}, false, false
	}
	// Remove the minimum, preserving order of the rest.
	for k := 0; k < q.n; k++ {
		if q.buf[q.idx(k)].ID == min.ID {
			q.removeAt(k)
			break
		}
	}
	q.insert(p)
	return min, true, true
}

// PopHead removes and returns the head packet.
func (q *Queue) PopHead() (packet.Packet, bool) {
	if q.n == 0 {
		return packet.Packet{}, false
	}
	p := q.buf[q.head]
	q.head = q.idx(1)
	q.n--
	return p, true
}

// PopTail removes and returns the tail packet (used for preemption).
func (q *Queue) PopTail() (packet.Packet, bool) {
	if q.n == 0 {
		return packet.Packet{}, false
	}
	p := q.buf[q.idx(q.n-1)]
	q.n--
	return p, true
}

// TotalValue returns the sum of values of all stored packets.
func (q *Queue) TotalValue() int64 {
	var t int64
	for k := 0; k < q.n; k++ {
		t += q.buf[q.idx(k)].Value
	}
	return t
}

// Snapshot returns a copy of the queue contents in queue order
// (head first). It is intended for tests and invariant checking.
func (q *Queue) Snapshot() []packet.Packet {
	out := make([]packet.Packet, q.n)
	for k := range out {
		out[k] = q.buf[q.idx(k)]
	}
	return out
}

// Reset empties the queue.
func (q *Queue) Reset() { q.head, q.n = 0, 0 }

// CheckInvariants verifies internal consistency: length within capacity
// and, under ByValue, correct priority ordering. It returns a descriptive
// error on violation and is called by the simulator's validation mode.
func (q *Queue) CheckInvariants() error {
	if q.n > q.capacity {
		return fmt.Errorf("queue: length %d exceeds capacity %d", q.n, q.capacity)
	}
	if len(q.buf)&(len(q.buf)-1) != 0 || q.n > len(q.buf) {
		return fmt.Errorf("queue: bad ring geometry len=%d n=%d", len(q.buf), q.n)
	}
	if q.disc == ByValue {
		for k := 1; k < q.n; k++ {
			a, b := q.buf[q.idx(k-1)], q.buf[q.idx(k)]
			if !packet.Less(a, b) {
				return fmt.Errorf("queue: order violation at %d: %v before %v", k, a, b)
			}
		}
	}
	return nil
}

// insert places p according to the discipline. The caller guarantees room
// with respect to capacity; the ring grows if the backing array is full.
func (q *Queue) insert(p packet.Packet) {
	if q.n == len(q.buf) {
		q.grow()
	}
	if q.disc == FIFO {
		q.buf[q.idx(q.n)] = p
		q.n++
		return
	}
	// Binary search for the insertion point in (value desc, ID asc) order.
	lo, hi := 0, q.n
	for lo < hi {
		mid := (lo + hi) / 2
		if packet.Less(q.buf[q.idx(mid)], p) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// Open position lo by shifting the shorter side of the ring.
	if lo <= q.n-lo {
		// Shift the head segment [0, lo) one slot toward the new head.
		q.head = (q.head - 1) & (len(q.buf) - 1)
		for k := 0; k < lo; k++ {
			q.buf[q.idx(k)] = q.buf[q.idx(k+1)]
		}
	} else {
		// Shift the tail segment [lo, n) one slot away from the head.
		for k := q.n; k > lo; k-- {
			q.buf[q.idx(k)] = q.buf[q.idx(k-1)]
		}
	}
	q.buf[q.idx(lo)] = p
	q.n++
}

// removeAt deletes the packet at queue position k, preserving the order of
// the rest by closing the gap from the shorter side.
func (q *Queue) removeAt(k int) {
	if k <= q.n-1-k {
		// Shift the head segment [0, k) one slot toward the tail.
		for j := k; j > 0; j-- {
			q.buf[q.idx(j)] = q.buf[q.idx(j-1)]
		}
		q.head = q.idx(1)
	} else {
		// Shift the tail segment (k, n) one slot toward the head.
		for j := k; j < q.n-1; j++ {
			q.buf[q.idx(j)] = q.buf[q.idx(j+1)]
		}
	}
	q.n--
}

// grow doubles the ring, unwrapping the contents to index 0.
func (q *Queue) grow() {
	nb := make([]packet.Packet, len(q.buf)*2)
	k := copy(nb, q.buf[q.head:])
	copy(nb[k:], q.buf[:q.head])
	q.buf, q.head = nb, 0
}

func ceilPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}
