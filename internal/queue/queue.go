// Package queue implements the capacity-bounded, non-FIFO packet queues
// used at the input, crosspoint and output ports of the simulated switches.
//
// The paper's model stores packets in arbitrary order ("non-FIFO queues"),
// and its weighted algorithms always act on the extremes: they transfer or
// transmit the most valuable packet and preempt the least valuable one.
// A queue therefore maintains its packets in the canonical priority order
// (value descending, ties broken by packet ID ascending — the paper's
// Assumption A3 of consistent tie-breaking), giving O(1) access to both the
// head (greatest value) and the tail (least value). A FIFO discipline is
// also provided for the unit-value algorithms, where arrival order is the
// natural (and equivalent) choice.
package queue

import (
	"errors"
	"fmt"

	"qswitch/internal/packet"
)

// Discipline selects the internal ordering of a queue.
type Discipline int

const (
	// FIFO keeps packets in insertion order; Head is the oldest packet.
	FIFO Discipline = iota
	// ByValue keeps packets sorted by (value desc, ID asc); Head is the
	// most valuable packet and Tail the least valuable.
	ByValue
)

// String implements fmt.Stringer.
func (d Discipline) String() string {
	switch d {
	case FIFO:
		return "fifo"
	case ByValue:
		return "byvalue"
	default:
		return fmt.Sprintf("discipline(%d)", int(d))
	}
}

// ErrFull is returned by Push when the queue is at capacity.
var ErrFull = errors.New("queue: full")

// Queue is a bounded packet buffer. The zero value is not usable; use New.
type Queue struct {
	capacity int
	disc     Discipline
	items    []packet.Packet
}

// New returns an empty queue with the given capacity and discipline.
// Capacity must be at least 1.
func New(capacity int, d Discipline) *Queue {
	if capacity < 1 {
		panic(fmt.Sprintf("queue: capacity must be >= 1, got %d", capacity))
	}
	return &Queue{capacity: capacity, disc: d, items: make([]packet.Packet, 0, min(capacity, 64))}
}

// Cap returns the queue capacity B(Q).
func (q *Queue) Cap() int { return q.capacity }

// Len returns the number of packets currently stored.
func (q *Queue) Len() int { return len(q.items) }

// Empty reports whether the queue holds no packets.
func (q *Queue) Empty() bool { return len(q.items) == 0 }

// Full reports whether the queue is at capacity.
func (q *Queue) Full() bool { return len(q.items) >= q.capacity }

// Discipline returns the queue's ordering discipline.
func (q *Queue) Discipline() Discipline { return q.disc }

// Head returns the packet at the queue's head without removing it:
// the oldest packet under FIFO, the most valuable under ByValue.
func (q *Queue) Head() (packet.Packet, bool) {
	if len(q.items) == 0 {
		return packet.Packet{}, false
	}
	return q.items[0], true
}

// Tail returns the packet at the queue's tail without removing it:
// the newest packet under FIFO, the least valuable under ByValue.
func (q *Queue) Tail() (packet.Packet, bool) {
	if len(q.items) == 0 {
		return packet.Packet{}, false
	}
	return q.items[len(q.items)-1], true
}

// At returns the packet at position k (0-based; position 0 is the head).
func (q *Queue) At(k int) packet.Packet {
	return q.items[k]
}

// Push inserts p, returning ErrFull if there is no room. Under ByValue the
// packet is placed at its priority position; under FIFO it is appended.
func (q *Queue) Push(p packet.Packet) error {
	if q.Full() {
		return ErrFull
	}
	q.insert(p)
	return nil
}

// PushPreempt inserts p, preempting the tail packet if the queue is full
// and the tail is strictly worse than p (under ByValue ordering: lower
// value, or equal value and higher ID). It implements the paper's
// preemptive admission rule "accept p if |Q| < B or v(l) < v(p)".
//
// The returned status reports whether p was accepted and, if a packet was
// preempted to make room, which one.
func (q *Queue) PushPreempt(p packet.Packet) (preempted packet.Packet, didPreempt, accepted bool) {
	if !q.Full() {
		q.insert(p)
		return packet.Packet{}, false, true
	}
	tail := q.items[len(q.items)-1]
	// Strict value comparison per the paper: equal-value packets do not
	// preempt each other.
	if tail.Value >= p.Value {
		return packet.Packet{}, false, false
	}
	q.items = q.items[:len(q.items)-1]
	q.insert(p)
	return tail, true, true
}

// MinValue returns the packet with the least value in the queue (ties by
// highest ID, i.e. the one the canonical order ranks last). Under ByValue
// this is the tail in O(1); under FIFO it scans.
func (q *Queue) MinValue() (packet.Packet, bool) {
	if len(q.items) == 0 {
		return packet.Packet{}, false
	}
	if q.disc == ByValue {
		return q.items[len(q.items)-1], true
	}
	best := 0
	for k := 1; k < len(q.items); k++ {
		if packet.Less(q.items[best], q.items[k]) {
			best = k
		}
	}
	return q.items[best], true
}

// PushPreemptMin inserts p, preempting the queue's LEAST-VALUABLE packet
// (wherever it sits) if the queue is full and that packet is strictly
// worse than p. Under ByValue it coincides with PushPreempt; under FIFO
// it implements the preemption rule of the FIFO buffer-management
// literature, where packets depart in arrival order but any buffered
// packet may be dropped.
func (q *Queue) PushPreemptMin(p packet.Packet) (preempted packet.Packet, didPreempt, accepted bool) {
	if !q.Full() {
		q.insert(p)
		return packet.Packet{}, false, true
	}
	min, _ := q.MinValue()
	if min.Value >= p.Value {
		return packet.Packet{}, false, false
	}
	// Remove the minimum, preserving order of the rest.
	for k := range q.items {
		if q.items[k].ID == min.ID {
			copy(q.items[k:], q.items[k+1:])
			q.items = q.items[:len(q.items)-1]
			break
		}
	}
	q.insert(p)
	return min, true, true
}

// PopHead removes and returns the head packet.
func (q *Queue) PopHead() (packet.Packet, bool) {
	if len(q.items) == 0 {
		return packet.Packet{}, false
	}
	p := q.items[0]
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	return p, true
}

// PopTail removes and returns the tail packet (used for preemption).
func (q *Queue) PopTail() (packet.Packet, bool) {
	if len(q.items) == 0 {
		return packet.Packet{}, false
	}
	p := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	return p, true
}

// TotalValue returns the sum of values of all stored packets.
func (q *Queue) TotalValue() int64 {
	var t int64
	for _, p := range q.items {
		t += p.Value
	}
	return t
}

// Snapshot returns a copy of the queue contents in queue order
// (head first). It is intended for tests and invariant checking.
func (q *Queue) Snapshot() []packet.Packet {
	out := make([]packet.Packet, len(q.items))
	copy(out, q.items)
	return out
}

// Reset empties the queue.
func (q *Queue) Reset() { q.items = q.items[:0] }

// CheckInvariants verifies internal consistency: length within capacity
// and, under ByValue, correct priority ordering. It returns a descriptive
// error on violation and is called by the simulator's validation mode.
func (q *Queue) CheckInvariants() error {
	if len(q.items) > q.capacity {
		return fmt.Errorf("queue: length %d exceeds capacity %d", len(q.items), q.capacity)
	}
	if q.disc == ByValue {
		for k := 1; k < len(q.items); k++ {
			if !packet.Less(q.items[k-1], q.items[k]) {
				return fmt.Errorf("queue: order violation at %d: %v before %v", k, q.items[k-1], q.items[k])
			}
		}
	}
	return nil
}

// insert places p according to the discipline. The caller guarantees room.
func (q *Queue) insert(p packet.Packet) {
	if q.disc == FIFO {
		q.items = append(q.items, p)
		return
	}
	// Binary search for the insertion point in (value desc, ID asc) order.
	lo, hi := 0, len(q.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if packet.Less(q.items[mid], p) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.items = append(q.items, packet.Packet{})
	copy(q.items[lo+1:], q.items[lo:])
	q.items[lo] = p
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
