package queue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"qswitch/internal/packet"
)

func pkt(id int64, v int64) packet.Packet { return packet.Packet{ID: id, Value: v} }

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0, FIFO)
}

func TestFIFOOrdering(t *testing.T) {
	q := New(3, FIFO)
	for i := int64(0); i < 3; i++ {
		if err := q.Push(pkt(i, 10-i)); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if err := q.Push(pkt(9, 100)); err != ErrFull {
		t.Fatalf("push into full queue: got %v, want ErrFull", err)
	}
	for i := int64(0); i < 3; i++ {
		p, ok := q.PopHead()
		if !ok || p.ID != i {
			t.Fatalf("pop %d: got %v ok=%v", i, p, ok)
		}
	}
	if _, ok := q.PopHead(); ok {
		t.Error("pop from empty queue succeeded")
	}
}

func TestByValueOrdering(t *testing.T) {
	q := New(5, ByValue)
	vals := []int64{3, 9, 1, 9, 5}
	for i, v := range vals {
		if err := q.Push(pkt(int64(i), v)); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	// Head must be the highest value with the lowest ID among ties.
	head, _ := q.Head()
	if head.Value != 9 || head.ID != 1 {
		t.Errorf("head = %v, want value 9 id 1", head)
	}
	tail, _ := q.Tail()
	if tail.Value != 1 {
		t.Errorf("tail = %v, want value 1", tail)
	}
	var got []int64
	for {
		p, ok := q.PopHead()
		if !ok {
			break
		}
		got = append(got, p.Value)
	}
	want := []int64{9, 9, 5, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestPushPreemptSemantics(t *testing.T) {
	q := New(2, ByValue)
	q.Push(pkt(0, 5))
	q.Push(pkt(1, 3))

	// Equal value must NOT preempt (strict inequality in the paper).
	if _, did, acc := q.PushPreempt(pkt(2, 3)); did || acc {
		t.Errorf("equal-value packet preempted/accepted: did=%v acc=%v", did, acc)
	}
	// Lower value must be rejected.
	if _, did, acc := q.PushPreempt(pkt(3, 2)); did || acc {
		t.Errorf("lower-value packet preempted/accepted: did=%v acc=%v", did, acc)
	}
	// Higher value preempts the tail (the minimum).
	victim, did, acc := q.PushPreempt(pkt(4, 7))
	if !did || !acc {
		t.Fatalf("higher-value packet not accepted: did=%v acc=%v", did, acc)
	}
	if victim.Value != 3 {
		t.Errorf("preempted %v, want the value-3 tail", victim)
	}
	head, _ := q.Head()
	if head.Value != 7 {
		t.Errorf("head %v, want value 7", head)
	}
	// Non-full queue accepts without preemption.
	q2 := New(2, ByValue)
	if _, did, acc := q2.PushPreempt(pkt(9, 1)); did || !acc {
		t.Errorf("push into empty queue: did=%v acc=%v", did, acc)
	}
}

func TestPopTail(t *testing.T) {
	q := New(3, ByValue)
	q.Push(pkt(0, 5))
	q.Push(pkt(1, 8))
	p, ok := q.PopTail()
	if !ok || p.Value != 5 {
		t.Fatalf("PopTail = %v, want value 5", p)
	}
	p, ok = q.PopTail()
	if !ok || p.Value != 8 {
		t.Fatalf("PopTail = %v, want value 8", p)
	}
	if _, ok := q.PopTail(); ok {
		t.Error("PopTail on empty queue succeeded")
	}
}

func TestAccessors(t *testing.T) {
	q := New(4, FIFO)
	if !q.Empty() || q.Full() || q.Len() != 0 || q.Cap() != 4 {
		t.Error("fresh queue accessors wrong")
	}
	q.Push(pkt(0, 2))
	q.Push(pkt(1, 3))
	if q.Empty() || q.Full() || q.Len() != 2 {
		t.Error("partially filled queue accessors wrong")
	}
	if q.TotalValue() != 5 {
		t.Errorf("TotalValue = %d, want 5", q.TotalValue())
	}
	if q.At(0).ID != 0 || q.At(1).ID != 1 {
		t.Error("At returned wrong packets")
	}
	snap := q.Snapshot()
	snap[0].Value = 99
	if q.At(0).Value == 99 {
		t.Error("Snapshot aliases internal storage")
	}
	q.Reset()
	if !q.Empty() {
		t.Error("Reset did not empty the queue")
	}
	if q.Discipline() != FIFO {
		t.Error("Discipline lost")
	}
}

func TestDisciplineString(t *testing.T) {
	if FIFO.String() != "fifo" || ByValue.String() != "byvalue" {
		t.Error("discipline names wrong")
	}
	if Discipline(42).String() == "" {
		t.Error("unknown discipline renders empty")
	}
}

// TestByValueMatchesReferenceModel drives the queue and a naive reference
// (sorted slice) with identical random operations and checks behavioral
// equality — a model-based property test.
func TestByValueMatchesReferenceModel(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		q := New(capacity, ByValue)
		var ref []packet.Packet
		sortRef := func() {
			sort.Slice(ref, func(a, b int) bool { return packet.Less(ref[a], ref[b]) })
		}
		for op := 0; op < 200; op++ {
			switch rng.Intn(4) {
			case 0: // PushPreempt
				p := pkt(int64(op), int64(rng.Intn(6)+1))
				victim, did, acc := q.PushPreempt(p)
				// Reference semantics.
				if len(ref) < capacity {
					ref = append(ref, p)
					sortRef()
					if !acc || did {
						return false
					}
				} else {
					tail := ref[len(ref)-1]
					if tail.Value < p.Value {
						ref[len(ref)-1] = p
						sortRef()
						if !acc || !did || victim != tail {
							return false
						}
					} else if acc || did {
						return false
					}
				}
			case 1: // PopHead
				p, ok := q.PopHead()
				if len(ref) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || p != ref[0] {
						return false
					}
					ref = ref[1:]
				}
			case 2: // PopTail
				p, ok := q.PopTail()
				if len(ref) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || p != ref[len(ref)-1] {
						return false
					}
					ref = ref[:len(ref)-1]
				}
			default: // Push
				p := pkt(int64(op), int64(rng.Intn(6)+1))
				err := q.Push(p)
				if len(ref) < capacity {
					if err != nil {
						return false
					}
					ref = append(ref, p)
					sortRef()
				} else if err != ErrFull {
					return false
				}
			}
			if q.Len() != len(ref) {
				return false
			}
			if err := q.CheckInvariants(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCheckInvariantsCatchesViolations(t *testing.T) {
	q := New(2, ByValue)
	q.Push(pkt(0, 1))
	q.Push(pkt(1, 9))
	if err := q.CheckInvariants(); err != nil {
		t.Fatalf("valid queue flagged: %v", err)
	}
}

func TestFIFOPushPreemptUsesInsertionOrderTail(t *testing.T) {
	// Under FIFO, PushPreempt compares against the newest packet; the
	// unit-value algorithms never rely on this, but the semantics must
	// still be deterministic.
	q := New(1, FIFO)
	q.Push(pkt(0, 5))
	victim, did, acc := q.PushPreempt(pkt(1, 9))
	if !did || !acc || victim.ID != 0 {
		t.Errorf("FIFO preempt: victim=%v did=%v acc=%v", victim, did, acc)
	}
}
