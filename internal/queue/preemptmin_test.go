package queue

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMinValue(t *testing.T) {
	for _, disc := range []Discipline{FIFO, ByValue} {
		q := New(4, disc)
		if _, ok := q.MinValue(); ok {
			t.Errorf("%v: MinValue on empty queue", disc)
		}
		q.Push(pkt(0, 5))
		q.Push(pkt(1, 2))
		q.Push(pkt(2, 9))
		min, ok := q.MinValue()
		if !ok || min.Value != 2 {
			t.Errorf("%v: MinValue = %v, want value 2", disc, min)
		}
	}
}

func TestMinValueTieBreaksByHighestID(t *testing.T) {
	// Equal values: the canonical order ranks the higher ID as "worse",
	// so it is the preemption victim — under both disciplines.
	for _, disc := range []Discipline{FIFO, ByValue} {
		q := New(3, disc)
		q.Push(pkt(10, 4))
		q.Push(pkt(20, 4))
		min, _ := q.MinValue()
		if min.ID != 20 {
			t.Errorf("%v: min tie-break chose id %d, want 20", disc, min.ID)
		}
	}
}

func TestPushPreemptMinFIFO(t *testing.T) {
	q := New(3, FIFO)
	q.Push(pkt(0, 7))
	q.Push(pkt(1, 2)) // the min, in the middle after the next push
	q.Push(pkt(2, 5))

	// Lower or equal value than min: rejected.
	if _, did, acc := q.PushPreemptMin(pkt(3, 2)); did || acc {
		t.Error("equal-to-min arrival accepted")
	}
	// Higher: the value-2 packet goes, FIFO order of the rest preserved.
	victim, did, acc := q.PushPreemptMin(pkt(4, 9))
	if !did || !acc || victim.Value != 2 {
		t.Fatalf("victim=%v did=%v acc=%v", victim, did, acc)
	}
	want := []int64{0, 2, 4} // IDs in FIFO order
	for _, id := range want {
		p, ok := q.PopHead()
		if !ok || p.ID != id {
			t.Fatalf("FIFO order broken: got %v, want id %d", p, id)
		}
	}
}

func TestPushPreemptMinNotFull(t *testing.T) {
	q := New(2, FIFO)
	if victim, did, acc := q.PushPreemptMin(pkt(0, 1)); did || !acc || victim.ID != 0 && victim.Value != 0 {
		t.Errorf("push into empty queue: did=%v acc=%v", did, acc)
	}
}

// TestPushPreemptMinAgreesWithPushPreemptByValue: under ByValue ordering
// the tail IS the minimum, so both preemption flavors must agree exactly.
func TestPushPreemptMinAgreesWithPushPreemptByValue(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(3, ByValue)
		b := New(3, ByValue)
		for op := 0; op < 60; op++ {
			p := pkt(int64(op), int64(rng.Intn(8)+1))
			v1, d1, a1 := a.PushPreempt(p)
			v2, d2, a2 := b.PushPreemptMin(p)
			if v1 != v2 || d1 != d2 || a1 != a2 {
				return false
			}
			if rng.Intn(3) == 0 {
				p1, ok1 := a.PopHead()
				p2, ok2 := b.PopHead()
				if p1 != p2 || ok1 != ok2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPushPreemptMinKeepsInvariants(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw%5) + 1
		rng := rand.New(rand.NewSource(seed))
		for _, disc := range []Discipline{FIFO, ByValue} {
			q := New(capacity, disc)
			for op := 0; op < 100; op++ {
				switch rng.Intn(3) {
				case 0:
					q.PushPreemptMin(pkt(int64(op), int64(rng.Intn(9)+1)))
				case 1:
					q.PopHead()
				default:
					q.PopTail()
				}
				if err := q.CheckInvariants(); err != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
