package packet

import (
	"fmt"
	"sort"
)

// Packet is a fixed-size unit of traffic traversing the switch.
//
// ID is unique within a sequence and doubles as the deterministic
// tie-breaker whenever two packets have equal value (the paper's
// Assumption A3: "ties are broken arbitrarily but consistently").
type Packet struct {
	ID      int64 // unique, ascending in arrival order
	Arrival int   // time slot of arrival, 0-based
	In      int   // ingress port, 0-based
	Out     int   // egress port, 0-based
	Value   int64 // service value, >= 1 (1 for the unit-value case)
}

// String renders a compact human-readable form used in error messages.
func (p Packet) String() string {
	return fmt.Sprintf("pkt{id=%d t=%d %d->%d v=%d}", p.ID, p.Arrival, p.In, p.Out, p.Value)
}

// Less orders packets by value descending, then by ID ascending. It defines
// the canonical priority order used by all value-aware queues and policies.
func Less(a, b Packet) bool {
	if a.Value != b.Value {
		return a.Value > b.Value
	}
	return a.ID < b.ID
}

// Sequence is an arrival sequence: packets sorted by (Arrival, ID).
type Sequence []Packet

// Validate checks structural well-formedness of a sequence against the
// given port counts: sorted arrivals, unique ascending IDs, ports in range
// and strictly positive values.
func (s Sequence) Validate(inputs, outputs int) error {
	var prevArrival int
	var prevID int64 = -1
	for k, p := range s {
		if p.Arrival < prevArrival {
			return fmt.Errorf("packet %d: arrival %d before previous %d", k, p.Arrival, prevArrival)
		}
		if p.ID <= prevID {
			return fmt.Errorf("packet %d: id %d not ascending (prev %d)", k, p.ID, prevID)
		}
		if p.In < 0 || p.In >= inputs {
			return fmt.Errorf("packet %d: input port %d out of range [0,%d)", k, p.In, inputs)
		}
		if p.Out < 0 || p.Out >= outputs {
			return fmt.Errorf("packet %d: output port %d out of range [0,%d)", k, p.Out, outputs)
		}
		if p.Value < 1 {
			return fmt.Errorf("packet %d: value %d < 1", k, p.Value)
		}
		prevArrival, prevID = p.Arrival, p.ID
	}
	return nil
}

// TotalValue sums the values of all packets in the sequence.
func (s Sequence) TotalValue() int64 {
	var t int64
	for _, p := range s {
		t += p.Value
	}
	return t
}

// MaxSlot returns the largest arrival slot in the sequence, or -1 if empty.
func (s Sequence) MaxSlot() int {
	if len(s) == 0 {
		return -1
	}
	return s[len(s)-1].Arrival
}

// Horizon returns the number of simulation slots needed to both admit every
// packet and drain any backlog: last arrival + the number of packets
// (at one transmission per output per slot nothing can remain after that),
// with a minimum of one slot.
func (s Sequence) Horizon() int {
	h := s.MaxSlot() + 1 + len(s)
	if h < 1 {
		h = 1
	}
	return h
}

// NextArrival returns the earliest arrival slot >= from, or -1 when no
// packet arrives at or after that slot. The sequence is sorted by
// arrival, so this is a binary search; callers that advance through the
// sequence monotonically (the event-driven simulators) instead keep a
// cursor and read the next packet's Arrival in O(1). It never allocates.
func (s Sequence) NextArrival(from int) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].Arrival < from {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(s) {
		return -1
	}
	return s[lo].Arrival
}

// BySlot splits the sequence into per-slot arrival groups covering slots
// [0, slots). Packets arriving at or beyond `slots` are dropped from the
// grouping (they can never be admitted within the simulated horizon).
func (s Sequence) BySlot(slots int) [][]Packet {
	out := make([][]Packet, slots)
	// A well-formed sequence is sorted by (Arrival, ID), so each slot's
	// packets are a contiguous run and the per-slot views can alias the
	// sequence with no copying. Callers must not mutate the views.
	for k := 0; k < len(s); {
		a := s[k].Arrival
		start := k
		for k < len(s) && s[k].Arrival == a {
			k++
		}
		if a < 0 || a >= slots {
			continue
		}
		if out[a] != nil {
			// Unsorted input (never produced by generators, but BySlot
			// historically tolerated it): fall back to copying.
			return s.bySlotUnsorted(slots)
		}
		out[a] = s[start:k:k]
	}
	return out
}

func (s Sequence) bySlotUnsorted(slots int) [][]Packet {
	out := make([][]Packet, slots)
	for _, p := range s {
		if p.Arrival >= 0 && p.Arrival < slots {
			out[p.Arrival] = append(out[p.Arrival], p)
		}
	}
	return out
}

// Normalize sorts the sequence by (Arrival, ID) and reassigns IDs to be the
// ascending sequence 0..len-1 in that order. It is used by generators that
// assemble traffic from independent sub-streams.
func (s Sequence) Normalize() Sequence {
	sort.Slice(s, func(a, b int) bool {
		if s[a].Arrival != s[b].Arrival {
			return s[a].Arrival < s[b].Arrival
		}
		return s[a].ID < s[b].ID
	})
	for i := range s {
		s[i].ID = int64(i)
	}
	return s
}

// Clone returns a deep copy of the sequence.
func (s Sequence) Clone() Sequence {
	out := make(Sequence, len(s))
	copy(out, s)
	return out
}

// IsUnit reports whether all packets have value exactly 1.
func (s Sequence) IsUnit() bool {
	for _, p := range s {
		if p.Value != 1 {
			return false
		}
	}
	return true
}

// CountByPair returns an Inputs x Outputs matrix of packet counts, useful
// for asserting generator traffic matrices in tests.
func (s Sequence) CountByPair(inputs, outputs int) [][]int {
	m := make([][]int, inputs)
	for i := range m {
		m[i] = make([]int, outputs)
	}
	for _, p := range s {
		if p.In >= 0 && p.In < inputs && p.Out >= 0 && p.Out < outputs {
			m[p.In][p.Out]++
		}
	}
	return m
}
