package packet

// Sequence manipulation utilities: composing, shifting and filtering
// workloads. They back the trace tooling and let experiments build
// structured scenarios (e.g. a background load merged with an adversarial
// foreground burst).

// Merge combines multiple sequences into one, reassigning IDs in
// (arrival, original order) so the result is a valid sequence.
func Merge(seqs ...Sequence) Sequence {
	var out Sequence
	for _, s := range seqs {
		out = append(out, s...)
	}
	return out.Normalize()
}

// Shift returns a copy of the sequence with every arrival moved by delta
// slots. Arrivals shifted below zero are clamped to slot 0.
func (s Sequence) Shift(delta int) Sequence {
	out := s.Clone()
	for i := range out {
		out[i].Arrival += delta
		if out[i].Arrival < 0 {
			out[i].Arrival = 0
		}
	}
	return out.Normalize()
}

// Concat appends b after a ends: b's arrivals are shifted past a's last
// arrival slot.
func Concat(a, b Sequence) Sequence {
	offset := a.MaxSlot() + 1
	return Merge(a, b.Shift(offset))
}

// Filter returns the packets for which keep returns true, renumbered.
func (s Sequence) Filter(keep func(Packet) bool) Sequence {
	var out Sequence
	for _, p := range s {
		if keep(p) {
			out = append(out, p)
		}
	}
	return out.Normalize()
}

// ForOutput restricts the sequence to packets destined to output j.
func (s Sequence) ForOutput(j int) Sequence {
	return s.Filter(func(p Packet) bool { return p.Out == j })
}

// ForInput restricts the sequence to packets entering at input i.
func (s Sequence) ForInput(i int) Sequence {
	return s.Filter(func(p Packet) bool { return p.In == i })
}

// ScaleValues multiplies every packet value by factor (>= 1 keeps the
// sequence valid). Useful for studying value-magnitude invariance: all
// algorithms in the paper are scale-free.
func (s Sequence) ScaleValues(factor int64) Sequence {
	out := s.Clone()
	for i := range out {
		out[i].Value *= factor
	}
	return out
}

// WithUnitValues replaces every value by 1, converting a weighted
// workload into its unit-value shadow (used by experiments comparing the
// unit and weighted algorithms on identical arrival patterns).
func (s Sequence) WithUnitValues() Sequence {
	out := s.Clone()
	for i := range out {
		out[i].Value = 1
	}
	return out
}

// Window restricts the sequence to arrivals in [from, to) and rebases
// them so the window starts at slot 0.
func (s Sequence) Window(from, to int) Sequence {
	return s.Filter(func(p Packet) bool {
		return p.Arrival >= from && p.Arrival < to
	}).Shift(-from)
}

// Stats summarizes a sequence for reports.
type SeqStats struct {
	Packets    int
	TotalValue int64
	MaxValue   int64
	Slots      int     // last arrival + 1
	MeanLoad   float64 // packets per slot over the arrival window
}

// Summarize computes summary statistics.
func (s Sequence) Summarize() SeqStats {
	st := SeqStats{Packets: len(s), Slots: s.MaxSlot() + 1}
	for _, p := range s {
		st.TotalValue += p.Value
		if p.Value > st.MaxValue {
			st.MaxValue = p.Value
		}
	}
	if st.Slots > 0 {
		st.MeanLoad = float64(st.Packets) / float64(st.Slots)
	}
	return st
}
