package packet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// traceStreamWindow is how many records a TraceStream decodes per refill.
// 512 records is 16 KiB of wire data — one buffered read — and bounds the
// stream's steady-state memory regardless of trace length.
const traceStreamWindow = 512

// TraceStream reads a binary trace (the QSWTRC01 format of trace.go)
// incrementally: the header is parsed on open, records are decoded a
// window at a time into a reusable buffer, and the CRC64 trailer is
// verified when the last record has been consumed. Memory use is one
// window regardless of the trace size, so traces far larger than RAM
// replay through the streaming engines.
//
// Every record passes the same checks a full ReadBinary load applies —
// field range checks at decode time plus the sequence ordering invariants
// (nondecreasing arrivals, strictly ascending IDs) checked incrementally —
// and failures carry the record index and byte offset. One caveat is
// inherent to streaming: the checksum confirms the bytes *behind* the read
// position, so a corrupted tail is only detected when reached, after
// earlier records have already been handed out.
type TraceStream struct {
	// Inputs and Outputs are the port geometry from the trace header.
	Inputs  int
	Outputs int

	f     *os.File
	cr    *crcReader
	nr    *countingReader
	count uint64 // records per the header
	read  uint64 // records decoded so far

	buf Sequence
	pos int

	prevArrival int
	prevID      int64

	done bool // all records consumed and the trailer verified
	err  error
}

// OpenTraceStream opens a binary trace file for incremental reading. The
// header (magic, geometry, count) is read eagerly so geometry errors
// surface before any simulation starts; record decoding is lazy. JSON
// traces are not streamable — use LoadTrace for those.
func OpenTraceStream(path string) (*TraceStream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open trace stream: %w", err)
	}
	ts, err := newTraceStream(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("open trace stream %s: %w", path, err)
	}
	ts.f = f
	return ts, nil
}

// newTraceStream parses the header from r and readies the record cursor.
func newTraceStream(r io.Reader) (*TraceStream, error) {
	cr := &crcReader{r: r}
	nr := &countingReader{r: bufio.NewReader(cr)}
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(nr, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic at byte offset %d: %w", nr.off, err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var inputs, outputs uint32
	var count uint64
	if err := binary.Read(nr, binary.LittleEndian, &inputs); err != nil {
		return nil, fmt.Errorf("trace: reading header at byte offset %d: %w", nr.off, err)
	}
	if err := binary.Read(nr, binary.LittleEndian, &outputs); err != nil {
		return nil, fmt.Errorf("trace: reading header at byte offset %d: %w", nr.off, err)
	}
	if err := binary.Read(nr, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trace: reading header at byte offset %d: %w", nr.off, err)
	}
	if count > 1<<40 {
		return nil, fmt.Errorf("trace: implausible packet count %d", count)
	}
	return &TraceStream{
		Inputs: int(inputs), Outputs: int(outputs),
		cr: cr, nr: nr, count: count,
		buf:    make(Sequence, 0, traceStreamWindow),
		prevID: -1,
	}, nil
}

// fill decodes the next window of records, validating each against the
// trace geometry and the sequence ordering invariants. When the final
// record has been decoded it reads and verifies the CRC trailer.
func (t *TraceStream) fill() {
	if t.err != nil || t.done || t.pos < len(t.buf) {
		return
	}
	t.buf = t.buf[:0]
	t.pos = 0
	var rec [32]byte
	for n := 0; n < traceStreamWindow && t.read < t.count; n++ {
		if _, err := io.ReadFull(t.nr, rec[:]); err != nil {
			t.err = fmt.Errorf("trace: reading record %d of %d at byte offset %d: %w", t.read, t.count, t.nr.off, err)
			return
		}
		p, err := decodeRecord(rec[:], t.Inputs, t.Outputs)
		if err != nil {
			t.err = fmt.Errorf("trace: reading record %d of %d at byte offset %d: %w", t.read, t.count, t.nr.off, err)
			return
		}
		if p.Arrival < t.prevArrival {
			t.err = fmt.Errorf("trace: record %d at byte offset %d: arrival %d before previous %d",
				t.read, t.nr.off, p.Arrival, t.prevArrival)
			return
		}
		if p.ID <= t.prevID {
			t.err = fmt.Errorf("trace: record %d at byte offset %d: id %d not ascending (prev %d)",
				t.read, t.nr.off, p.ID, t.prevID)
			return
		}
		t.prevArrival, t.prevID = p.Arrival, p.ID
		t.buf = append(t.buf, p)
		t.read++
	}
	if t.read == t.count {
		t.finish()
	}
}

// finish reads the trailer and verifies the checksum over everything
// before it.
func (t *TraceStream) finish() {
	trailerOff := t.nr.off
	var trailer [8]byte
	if _, err := io.ReadFull(t.nr, trailer[:]); err != nil {
		t.err = fmt.Errorf("trace: reading checksum at byte offset %d: %w", t.nr.off, err)
		return
	}
	want := t.cr.sum
	got := binary.LittleEndian.Uint64(trailer[:])
	if got != want {
		t.err = fmt.Errorf("trace: checksum mismatch over bytes [0, %d): file has %#x, computed %#x",
			trailerOff, got, want)
		return
	}
	t.done = true
}

// Peek implements ArrivalStream.
func (t *TraceStream) Peek() (Packet, bool) {
	t.fill()
	if t.err != nil || t.pos >= len(t.buf) {
		return Packet{}, false
	}
	return t.buf[t.pos], true
}

// Next implements ArrivalStream.
func (t *TraceStream) Next() (Packet, bool) {
	p, ok := t.Peek()
	if ok {
		t.pos++
	}
	return p, ok
}

// Err implements ArrivalStream: nil after a clean, checksum-verified end
// of trace, the failure otherwise.
func (t *TraceStream) Err() error { return t.err }

// Close releases the underlying file. It does not verify any unread
// remainder of the trace.
func (t *TraceStream) Close() error {
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	return err
}
