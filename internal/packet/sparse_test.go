package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// sparseGens instantiates the sparse-workload generator family with
// seed-dependent parameters for property tests.
func sparseGens(rng *rand.Rand) []Generator {
	return []Generator{
		PoissonBurst{OffMean: 20 + rng.Float64()*300, BurstMean: 1 + rng.Float64()*6, Values: UniformValues{Hi: 1 << 20}},
		Diurnal{Load: 0.05 + rng.Float64()*0.3, Period: 16 + rng.Intn(200), Amplitude: 0.5 + rng.Float64(), Values: ZipfValues{Hi: 1000, S: 1.2}},
		HeavyTail{Alpha: 1.1 + rng.Float64(), MinGap: 1 + rng.Float64()*20, Values: GeometricValues{P: 0.25, Hi: 256}},
		BurstyBlocking{OffMean: 50 + rng.Float64()*300, Burst: 2 + rng.Intn(8), Fanin: 1 + rng.Intn(4), Values: UniformValues{Hi: 100}},
	}
}

func TestSparseGeneratorsProduceValidSparseSequences(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, gen := range sparseGens(rng) {
			seq := gen.Generate(rand.New(rand.NewSource(seed)), 4, 4, 2000)
			if err := seq.Validate(4, 4); err != nil {
				t.Fatalf("%s seed %d: invalid sequence: %v", gen.Name(), seed, err)
			}
			// Determinism: same seed, same sequence.
			again := gen.Generate(rand.New(rand.NewSource(seed)), 4, 4, 2000)
			if len(again) != len(seq) {
				t.Fatalf("%s seed %d: nondeterministic length %d vs %d", gen.Name(), seed, len(again), len(seq))
			}
			for i := range seq {
				if seq[i] != again[i] {
					t.Fatalf("%s seed %d: nondeterministic packet %d", gen.Name(), seed, i)
				}
			}
			// Sparsity: these parameterizations must leave most slots idle,
			// otherwise the event-driven differential tests exercise nothing.
			occupied := map[int]bool{}
			for _, p := range seq {
				occupied[p.Arrival] = true
			}
			if len(occupied) > 1600 {
				t.Errorf("%s seed %d: %d of 2000 slots busy — not sparse", gen.Name(), seed, len(occupied))
			}
		}
	}
}

// TestNextArrivalMatchesLinearScan checks the binary search against the
// obvious linear definition on sparse traces, including the cursor-style
// monotone walk the simulators perform.
func TestNextArrivalMatchesLinearScan(t *testing.T) {
	linear := func(s Sequence, from int) int {
		for _, p := range s {
			if p.Arrival >= from {
				return p.Arrival
			}
		}
		return -1
	}
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, gen := range sparseGens(rng) {
			seq := gen.Generate(rand.New(rand.NewSource(seed)), 3, 3, 800)
			horizon := seq.MaxSlot() + 3
			for from := 0; from <= horizon; from++ {
				if got, want := seq.NextArrival(from), linear(seq, from); got != want {
					t.Fatalf("%s seed %d: NextArrival(%d) = %d, want %d", gen.Name(), seed, from, got, want)
				}
			}
		}
	}
	if got := (Sequence{}).NextArrival(0); got != -1 {
		t.Errorf("empty sequence: NextArrival(0) = %d, want -1", got)
	}
	tr := &Trace{Inputs: 2, Outputs: 2, Packets: Sequence{{ID: 0, Arrival: 7, In: 0, Out: 1, Value: 1}}}
	if got := tr.NextArrival(3); got != 7 {
		t.Errorf("Trace.NextArrival(3) = %d, want 7", got)
	}
}

// TestSparseTraceRoundTripProperty drives the binary and JSON codecs with
// random sparse traces from the new generators: encode/decode must be
// exact, and any single-byte corruption or truncation of the binary form
// must be rejected (CRC64 trailer).
func TestSparseTraceRoundTripProperty(t *testing.T) {
	f := func(seed int64, pick uint8, corruptAt uint16, cutAt uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		gens := sparseGens(rng)
		gen := gens[int(pick)%len(gens)]
		seq := gen.Generate(rng, 3, 5, 400)
		tr := &Trace{Inputs: 3, Outputs: 5, Packets: seq}

		var bin bytes.Buffer
		if err := tr.WriteBinary(&bin); err != nil {
			t.Logf("write binary: %v", err)
			return false
		}
		got, err := ReadBinary(bytes.NewReader(bin.Bytes()))
		if err != nil {
			t.Logf("read binary: %v", err)
			return false
		}
		if got.Inputs != tr.Inputs || got.Outputs != tr.Outputs || len(got.Packets) != len(tr.Packets) {
			return false
		}
		for i := range got.Packets {
			if got.Packets[i] != tr.Packets[i] {
				return false
			}
		}

		var js bytes.Buffer
		if err := tr.WriteJSON(&js); err != nil {
			t.Logf("write json: %v", err)
			return false
		}
		gotJSON, err := ReadJSON(bytes.NewReader(js.Bytes()))
		if err != nil {
			t.Logf("read json: %v", err)
			return false
		}
		if len(gotJSON.Packets) != len(tr.Packets) {
			return false
		}
		for i := range gotJSON.Packets {
			if gotJSON.Packets[i] != tr.Packets[i] {
				return false
			}
		}

		// Single-byte corruption anywhere must be detected: the CRC covers
		// everything before the trailer, and a damaged trailer no longer
		// matches the recomputed sum.
		raw := bin.Bytes()
		mut := make([]byte, len(raw))
		copy(mut, raw)
		pos := int(corruptAt) % len(mut)
		mut[pos] ^= 0x40
		if _, err := ReadBinary(bytes.NewReader(mut)); err == nil {
			t.Logf("corruption at byte %d/%d not detected", pos, len(mut))
			return false
		}

		// Any strict prefix must be rejected too.
		cut := int(cutAt) % len(raw)
		if _, err := ReadBinary(bytes.NewReader(raw[:cut])); err == nil {
			t.Logf("truncation to %d/%d bytes not detected", cut, len(raw))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
